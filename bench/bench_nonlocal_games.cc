// E8/E9/E10 -- Paper Examples II.1, IV.1, IV.2 and the GHZ discussion:
//   * |+> measures 50/50                      (Example II.1)
//   * Bell pair gives perfectly correlated outcomes (Example IV.1)
//   * CHSH: classical 0.75 vs quantum cos^2(pi/8) ~ 0.8536 (Example IV.2)
//   * GHZ: classical 0.75 vs quantum 1.0
// All classical bounds from exhaustive deterministic-strategy enumeration;
// quantum values exact + sampled.

#include <cmath>
#include <cstdio>

#include "qdm/circuit/circuit.h"
#include "qdm/common/rng.h"
#include "qdm/common/strings.h"
#include "qdm/common/table_printer.h"
#include "qdm/nonlocal/games.h"
#include "qdm/nonlocal/magic_square.h"
#include "qdm/sim/statevector.h"

int main() {
  qdm::Rng rng(2024);

  // Example II.1.
  qdm::circuit::Circuit plus(1);
  plus.H(0);
  qdm::sim::Statevector psi = qdm::sim::RunCircuit(plus);
  int ones = 0;
  for (int s = 0; s < 100000; ++s) {
    ones += static_cast<int>(psi.SampleBasisState(&rng));
  }
  std::printf("Example II.1: P(measure 1 | |+>) = %.4f (paper: 0.5)\n",
              ones / 100000.0);

  // Example IV.1.
  qdm::circuit::Circuit bell_circuit(2);
  bell_circuit.H(0).CX(0, 1);
  int correlated = 0;
  for (int s = 0; s < 100000; ++s) {
    const uint64_t z =
        qdm::sim::RunCircuit(bell_circuit).SampleBasisState(&rng);
    if (z == 0 || z == 3) ++correlated;
  }
  std::printf("Example IV.1: P(outcomes equal | Bell) = %.4f (paper: 1.0)\n\n",
              correlated / 100000.0);

  // CHSH and GHZ.
  qdm::TablePrinter table({"game", "classical (paper)", "classical (measured)",
                           "quantum (paper)", "quantum (exact)",
                           "quantum (sampled)"});
  {
    auto chsh = qdm::nonlocal::ChshGame();
    auto strategy = qdm::nonlocal::OptimalChshStrategy();
    table.AddRow({"CHSH", "0.75",
                  qdm::StrFormat("%.4f",
                                 qdm::nonlocal::ClassicalValueTwoPlayer(chsh)),
                  "~0.85",
                  qdm::StrFormat(
                      "%.6f",
                      qdm::nonlocal::QuantumValueTwoPlayer(chsh, strategy)),
                  qdm::StrFormat("%.4f",
                                 qdm::nonlocal::PlayTwoPlayerGame(
                                     chsh, strategy, 200000, &rng))});
  }
  {
    auto ghz = qdm::nonlocal::GhzGame();
    auto strategy = qdm::nonlocal::OptimalGhzStrategy();
    table.AddRow({"GHZ", "0.75",
                  qdm::StrFormat(
                      "%.4f", qdm::nonlocal::ClassicalValueThreePlayer(ghz)),
                  "1.0",
                  qdm::StrFormat(
                      "%.6f",
                      qdm::nonlocal::QuantumValueThreePlayer(ghz, strategy)),
                  qdm::StrFormat("%.4f",
                                 qdm::nonlocal::PlayThreePlayerGame(
                                     ghz, strategy, 200000, &rng))});
  }
  {
    // Extension: Mermin-Peres magic square (pseudo-telepathy; the natural
    // next entry in Sec IV-A's progression after CHSH and GHZ).
    table.AddRow({"magic square", "8/9",
                  qdm::StrFormat("%.4f",
                                 qdm::nonlocal::ClassicalValueMagicSquare()),
                  "1.0", "1.000000",
                  qdm::StrFormat("%.4f",
                                 qdm::nonlocal::PlayMagicSquareQuantum(
                                     20000, &rng))});
  }
  std::printf("E9/E10: nonlocal game values\n%s\n", table.ToString().c_str());
  std::printf("cos^2(pi/8) = %.6f\n", std::pow(std::cos(M_PI / 8), 2));
  return 0;
}
