// E11 -- Paper Fig. 1c and Sec I (248 km fiber entanglement distribution):
// the basic unit of a quantum internet is two end nodes plus a repeater.
// Regenerates the rate-vs-distance figure: direct generation decays
// exponentially with fiber length; a midpoint repeater (entanglement
// swapping) flattens the decay and overtakes beyond a crossover distance;
// fidelity degrades with swap count and memory wait. Also reports the
// purification trade-off (fidelity up, rate down).

#include <cstdio>

#include "qdm/common/rng.h"
#include "qdm/common/strings.h"
#include "qdm/common/table_printer.h"
#include "qdm/qnet/repeater.h"

int main() {
  qdm::Rng rng(2024);

  qdm::TablePrinter table({"distance km", "direct rate Hz", "1-repeater Hz",
                           "3-repeater Hz", "direct F", "1-rep F", "3-rep F"});
  for (double km : {25.0, 50.0, 100.0, 150.0, 200.0, 250.0}) {
    qdm::qnet::ChainConfig config;
    config.total_distance_km = km;
    config.memory_t_s = 0.5;

    auto run = [&](int repeaters) {
      config.num_repeaters = repeaters;
      return qdm::qnet::SimulateChain(config, /*target_pairs=*/200,
                                      /*max_seconds=*/1e9, &rng);
    };
    auto direct = run(0);
    auto one = run(1);
    auto three = run(3);
    table.AddRow({qdm::StrFormat("%.0f", km),
                  qdm::StrFormat("%.3g", direct.rate_hz),
                  qdm::StrFormat("%.3g", one.rate_hz),
                  qdm::StrFormat("%.3g", three.rate_hz),
                  qdm::StrFormat("%.3f", direct.mean_fidelity),
                  qdm::StrFormat("%.3f", one.mean_fidelity),
                  qdm::StrFormat("%.3f", three.mean_fidelity)});
  }
  std::printf(
      "E11: entanglement distribution rate and fidelity vs distance\n%s\n",
              table.ToString().c_str());

  // Purification ablation at 100 km, 1 repeater.
  qdm::qnet::ChainConfig config;
  config.total_distance_km = 100;
  config.num_repeaters = 1;
  config.link.initial_fidelity = 0.9;
  auto plain = qdm::qnet::SimulateChain(config, 300, 1e9, &rng);
  config.purify_segments = true;
  auto purified = qdm::qnet::SimulateChain(config, 300, 1e9, &rng);
  qdm::TablePrinter purify_table({"variant", "rate Hz", "mean fidelity"});
  purify_table.AddRow({"plain swap", qdm::StrFormat("%.3g", plain.rate_hz),
                       qdm::StrFormat("%.4f", plain.mean_fidelity)});
  purify_table.AddRow({"BBPSSW purified",
                       qdm::StrFormat("%.3g", purified.rate_hz),
                       qdm::StrFormat("%.4f", purified.mean_fidelity)});
  std::printf("Purification trade-off at 100 km (F0 = 0.9):\n%s\n",
              purify_table.ToString().c_str());
  std::printf("Shape check: direct rate falls ~10x per 50 km (0.2 dB/km);\n"
              "repeaters overtake direct generation as distance grows but\n"
              "deliver lower fidelity; purification buys fidelity with "
              "rate.\n");
  return 0;
}
