// E13 -- Paper Sec IV-B(1,2): data management when data cannot be copied.
// Regenerates the placement-cost series: replicating classical objects vs
// migrating quantum objects across a 4-node line network, the fidelity decay
// of repeatedly migrated quantum payloads, and fault-injected rerouting.

#include <cstdio>

#include "qdm/common/rng.h"
#include "qdm/common/strings.h"
#include "qdm/common/table_printer.h"
#include "qdm/qnet/distributed_store.h"

namespace {

qdm::qnet::QuantumNetwork LineNetwork(int nodes, double hop_km) {
  qdm::qnet::QuantumNetwork net;
  for (int i = 0; i < nodes; ++i) net.AddNode(qdm::StrFormat("dc%d", i));
  qdm::qnet::FiberLinkConfig link;
  link.length_km = hop_km;
  for (int i = 0; i + 1 < nodes; ++i) {
    QDM_CHECK(net.AddLink(i, i + 1, link).ok());
  }
  return net;
}

}  // namespace

int main() {
  qdm::Rng rng(2024);

  // Classical replication vs quantum migration over increasing distance.
  qdm::TablePrinter table({"hops", "classical replicate", "QKD bits used",
                           "quantum migrate", "EPR pairs", "payload fidelity"});
  for (int hops : {1, 2, 3}) {
    qdm::qnet::DistributedQuantumStore store(
        LineNetwork(hops + 1, 40),
        qdm::qnet::DistributedQuantumStore::Options{},
        &rng);
    QDM_CHECK(store.PutClassical(0, "ledger", "txn,amount\n901,12.5\n").ok());
    QDM_CHECK(store.PutQuantum(0, "qcredential",
                               qdm::qnet::Qubit::FromAngles(0.8, 0.4)).ok());

    qdm::Status replicate = store.ReplicateClassical("ledger", hops);
    qdm::Status migrate = store.MigrateQuantum("qcredential", hops);
    table.AddRow({qdm::StrFormat("%d", hops),
                  replicate.ok() ? "ok" : replicate.ToString(),
                  qdm::StrFormat("%.0f", store.stats().qkd_secure_bits),
                  migrate.ok() ? "ok" : migrate.ToString(),
                  qdm::StrFormat("%d", store.stats().epr_pairs_consumed),
                  qdm::StrFormat("%.4f",
                                 *store.QuantumFidelity("qcredential"))});
  }
  std::printf("E13: classical replication vs quantum migration\n%s\n",
              table.ToString().c_str());

  // Fidelity decay with repeated migration under weak memories.
  qdm::TablePrinter decay({"migrations", "mean payload fidelity (40 trials)"});
  for (int migrations : {1, 2, 4, 8}) {
    double total = 0.0;
    for (int t = 0; t < 40; ++t) {
      qdm::qnet::DistributedQuantumStore::Options options;
      options.memory_t_s = 0.002;
      qdm::qnet::DistributedQuantumStore store(LineNetwork(3, 60), options,
                                               &rng);
      QDM_CHECK(
          store.PutQuantum(0, "q", qdm::qnet::Qubit::FromAngles(1.1, 0.2))
              .ok());
      for (int m = 0; m < migrations; ++m) {
        QDM_CHECK(store.MigrateQuantum("q", (m % 2) ? 0 : 2).ok());
      }
      total += *store.QuantumFidelity("q");
    }
    decay.AddRow({qdm::StrFormat("%d", migrations),
                  qdm::StrFormat("%.4f", total / 40)});
  }
  std::printf(
      "Quantum payload fidelity vs migration count (harsh memories):\n%s\n",
              decay.ToString().c_str());

  // Fault injection: link failure forces rerouting or typed failure.
  qdm::qnet::QuantumNetwork ring = LineNetwork(4, 40);
  QDM_CHECK(
      ring.AddLink(0, 3, qdm::qnet::FiberLinkConfig{.length_km = 200}).ok());
  qdm::qnet::DistributedQuantumStore store(
      ring, qdm::qnet::DistributedQuantumStore::Options{}, &rng);
  QDM_CHECK(store.PutQuantum(0, "q", qdm::qnet::Qubit::Zero()).ok());
  QDM_CHECK(store.network().SetLinkUp(1, 2, false).ok());
  qdm::Status rerouted = store.MigrateQuantum("q", 3);
  std::printf("fault injection: with link dc1-dc2 down, migration 0 -> 3 %s\n"
              "(rerouted over the 200 km backup edge)\n",
              rerouted.ok() ? "succeeded" : rerouted.ToString().c_str());
  std::printf("\nShape check: replication leaves copies everywhere; migration\n"
              "never does (no-cloning); fidelity decays with every migration\n"
              "over imperfect entanglement; failures reroute when a path "
              "exists.\n");
  return 0;
}
