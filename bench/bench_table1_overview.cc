// E1 -- Paper Table I: "Recent data management works using quantum computers:
// an overview". Regenerates the table with MEASURED columns: every surveyed
// (DB problem, formulation, quantum algorithm, machine family) row is
// executed end-to-end in this toolkit and reports solution validity and
// optimality.
//
// Instance sizes follow the surveyed papers' own hardware experiments: the
// gate-based (QAOA/VQE/Grover) rows run "hardware-scale" instances of
// <= ~10 qubits, exactly the regime [21-28] report on IBM-Q class devices;
// annealing rows run larger instances, as [20, 29, 30] did on D-Wave.
//
//   [20]      MQO            QUBO  --    annealing
//   [21,22]   MQO            QUBO  QAOA  gate-based
//   [23-25]   join ordering  QUBO  QAOA  gate- & annealing-based
//   [26]      join ordering  QUBO  VQE   gate- & annealing-based
//   [27]      join ordering  --    VQC   gate-based
//   [28]      schema match   QUBO  QAOA  gate- & annealing-based
//   [29-31]   transactions   QUBO  --    annealing (+ Grover in [31])

#include <cstdio>

#include "qdm/anneal/solver.h"
#include "qdm/common/rng.h"
#include "qdm/common/strings.h"
#include "qdm/common/table_printer.h"
#include "qdm/db/join_optimizer.h"
#include "qdm/qml/vqc_join_agent.h"
#include "qdm/qopt/join_order_qubo.h"
#include "qdm/qopt/mqo.h"
#include "qdm/qopt/schema_matching.h"
#include "qdm/qopt/txn_scheduling.h"

namespace {

std::string Verdict(bool feasible, double achieved, double optimum) {
  if (!feasible) return "INFEASIBLE";
  const double gap = optimum == 0.0 ? std::abs(achieved - optimum)
                                    : std::abs(achieved / optimum - 1.0);
  return gap <= 1e-6 ? "optimal" : qdm::StrFormat("gap %.1f%%", 100 * gap);
}

}  // namespace

int main() {
  qdm::Rng rng(2024);
  qdm::TablePrinter table({"ref", "DB problem", "formulation", "algorithm",
                           "backend", "qubits", "result"});

  // Every backend is dispatched by name through the QuboSolver registry.
  auto sample = [&rng](const std::string& solver_name,
                       const qdm::anneal::Qubo& qubo,
                       qdm::anneal::SolverOptions options) {
    options.rng = &rng;
    auto set = qdm::anneal::SolveWith(solver_name, qubo, options);
    QDM_CHECK(set.ok()) << solver_name << ": " << set.status();
    return std::move(set).value();
  };
  const qdm::anneal::SolverOptions kAnnealerOptions{.num_reads = 20,
                                                    .num_sweeps = 500,
                                                    .num_replicas = 12};
  const qdm::anneal::SolverOptions kQaoaOptions{.num_reads = 100,
                                                .layers = 3,
                                                .restarts = 4};

  // ---- [20] MQO on the annealer: D-Wave-scale instance (27 qubits). -------
  {
    qdm::qopt::MqoProblem mqo = qdm::qopt::GenerateMqoProblem(9, 3, 0.3, &rng);
    qdm::anneal::Qubo qubo = qdm::qopt::MqoToQubo(mqo);
    const double optimum = qdm::qopt::ExhaustiveMqo(mqo).cost;
    auto s = sample("parallel_tempering", qubo, kAnnealerOptions);
    auto d = qdm::qopt::DecodeMqoSample(mqo, s.best().assignment);
    table.AddRow({"[20]", "multiple query optimization", "QUBO", "--",
                  "annealing", qdm::StrFormat("%d", qubo.num_variables()),
                  Verdict(d.feasible, d.cost, optimum)});
  }
  // ---- [21, 22] MQO via QAOA: gate-hardware-scale (6 qubits). --------------
  {
    qdm::qopt::MqoProblem mqo = qdm::qopt::GenerateMqoProblem(3, 2, 0.4, &rng);
    qdm::anneal::Qubo qubo = qdm::qopt::MqoToQubo(mqo);
    const double optimum = qdm::qopt::ExhaustiveMqo(mqo).cost;
    auto s = sample("qaoa", qubo, kQaoaOptions);
    auto d = qdm::qopt::DecodeMqoSample(mqo, s.best().assignment);
    table.AddRow({"[21,22]", "multiple query optimization", "QUBO", "QAOA",
                  "gate-based", qdm::StrFormat("%d", qubo.num_variables()),
                  Verdict(d.feasible, d.cost, optimum)});
  }
  // ---- [23-25] join ordering: QAOA on 3 relations (9 qubits), annealing on
  // 4 relations (16 qubits). --------------------------------------------------
  {
    qdm::Rng graph_rng(7);
    qdm::db::JoinGraph small = qdm::db::JoinGraph::RandomChain(3, &graph_rng);
    qdm::qopt::JoinOrderQubo enc_small(small);
    const double opt_small = qdm::qopt::LogCostProxy(
        qdm::qopt::OptimalOrderUnderProxy(small), small);
    auto s = sample("qaoa", enc_small.qubo(), kQaoaOptions);
    auto order = enc_small.DecodeWithRepair(s.best().assignment);
    table.AddRow({"[23-25]", "join ordering (left-deep)", "MILP/BILP->QUBO",
                  "QAOA", "gate-based", "9",
                  Verdict(true, qdm::qopt::LogCostProxy(order, small),
                          opt_small)});

    qdm::db::JoinGraph larger = qdm::db::JoinGraph::RandomChain(4, &graph_rng);
    qdm::qopt::JoinOrderQubo enc_larger(larger);
    const double opt_larger = qdm::qopt::LogCostProxy(
        qdm::qopt::OptimalOrderUnderProxy(larger), larger);
    auto sa = sample("parallel_tempering", enc_larger.qubo(),
                     {.num_reads = 30, .num_sweeps = 500, .num_replicas = 12});
    auto sa_order = enc_larger.DecodeWithRepair(sa.best().assignment);
    table.AddRow({"[23-25]", "join ordering (left-deep)", "MILP/BILP->QUBO",
                  "--", "annealing", "16",
                  Verdict(true, qdm::qopt::LogCostProxy(sa_order, larger),
                          opt_larger)});

    // ---- [26] bushy-target join ordering via VQE (9 qubits). ----------------
    auto v = sample("vqe", enc_small.qubo(),
                    {.num_reads = 100, .layers = 3, .restarts = 4});
    auto v_order = enc_small.DecodeWithRepair(v.best().assignment);
    table.AddRow({"[26]", "join ordering (bushy target)", "QUBO", "VQE",
                  "gate-based", "9",
                  Verdict(true, qdm::qopt::LogCostProxy(v_order, small),
                          opt_small)});

    // ---- [27] join ordering as learning with a VQC (4 relations). -----------
    qdm::qml::VqcJoinOrderAgent agent(
        larger, qdm::qml::VqcJoinOrderAgent::Options{.episodes = 120}, &rng);
    agent.Train();
    table.AddRow({"[27]", "join ordering", "learning (MDP)", "VQC",
                  "gate-based", "4",
                  Verdict(true,
                          qdm::qopt::LogCostProxy(agent.BestVisitedOrder(),
                                                  larger),
                          opt_larger)});
  }
  // ---- [28] schema matching: QAOA on 3x3 (9 qubits), annealing on 5x5. -----
  {
    auto small = qdm::qopt::GenerateSchemaMatching(3, 3, 0.1, &rng);
    qdm::anneal::Qubo small_qubo = qdm::qopt::SchemaMatchingToQubo(small);
    const double small_opt =
        -qdm::qopt::HungarianMatching(small).total_similarity;
    auto s = sample("qaoa", small_qubo,
                    {.num_reads = 200, .layers = 4, .restarts = 6});
    auto d = qdm::qopt::DecodeMatching(small, s.best().assignment);
    table.AddRow({"[28]", "schema matching", "QUBO", "QAOA", "gate-based", "9",
                  Verdict(d.feasible, -d.total_similarity, small_opt)});

    auto larger = qdm::qopt::GenerateSchemaMatching(5, 5, 0.1, &rng);
    qdm::anneal::Qubo larger_qubo = qdm::qopt::SchemaMatchingToQubo(larger);
    const double larger_opt =
        -qdm::qopt::HungarianMatching(larger).total_similarity;
    auto sa = sample("parallel_tempering", larger_qubo, kAnnealerOptions);
    auto dsa = qdm::qopt::DecodeMatching(larger, sa.best().assignment);
    table.AddRow({"[28]", "schema matching", "QUBO", "--", "annealing", "25",
                  Verdict(dsa.feasible, -dsa.total_similarity, larger_opt)});
  }
  // ---- [29-31] transaction scheduling. --------------------------------------
  {
    auto txns = qdm::qopt::GenerateTxnSchedule(5, 6, 2, 0, &rng);
    qdm::anneal::Qubo qubo = qdm::qopt::TxnScheduleToQubo(txns);
    const int best_makespan = qdm::qopt::ExhaustiveSchedule(txns).makespan;

    auto verdict = [&](const qdm::anneal::Sample& sample) {
      qdm::qopt::Schedule schedule =
          qdm::qopt::DecodeSchedule(txns, sample.assignment);
      if (!schedule.feasible) return std::string("INFEASIBLE");
      if (schedule.conflicting_pairs_same_slot > 0) {
        return qdm::StrFormat("%d conflicts co-located",
                              schedule.conflicting_pairs_same_slot);
      }
      if (schedule.makespan == best_makespan) return std::string("optimal");
      return qdm::StrFormat("conflict-free, makespan %d (opt %d)",
                            schedule.makespan, best_makespan);
    };

    auto s = sample("parallel_tempering", qubo,
                    {.num_reads = 30, .num_sweeps = 500, .num_replicas = 12});
    table.AddRow({"[29,30]", "transaction scheduling (2PL)", "QUBO", "--",
                  "annealing", qdm::StrFormat("%d", qubo.num_variables()),
                  verdict(s.best())});
    if (qubo.num_variables() <= 18) {
      auto g = sample("grover_min", qubo, {.num_reads = 3});
      table.AddRow({"[31]", "transaction scheduling (2PL)", "QUBO",
                    "Grover min-search", "gate-based",
                    qdm::StrFormat("%d", qubo.num_variables()),
                    verdict(g.best())});
    }
  }

  std::printf("E1: Table I regenerated with measured outcomes\n%s\n",
              table.ToString().c_str());
  std::printf("Every surveyed pipeline runs end-to-end in this toolkit; the\n"
              "result column reports optimality against the classical ground\n"
              "truth. Gate-based rows use hardware-scale instances (<= ~10\n"
              "qubits), matching the device scales the surveyed papers "
              "used.\n");
  return 0;
}
