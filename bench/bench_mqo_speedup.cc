// E4 -- Paper Sec III-B on Trummer & Koch [VLDB'16]: MQO on an annealer
// "demonstrated 1000x speedup ... compared to state-of-the-art MQO solutions
// at that time, although only for a limited subset of MQO problems."
//
// Shape to reproduce, including the caveat: as instances grow, exhaustive
// search blows up exponentially (x9 per +2 queries at 3 plans/query) while
// the annealer's time grows mildly -- the speedup therefore grows by orders
// of magnitude. On sparsely-shared instances the annealer stays at the
// optimum; on densely-shared ones quality drifts ("limited subset").
// Absolute times are not comparable to a physical D-Wave; the shape is.

#include <chrono>
#include <cstdio>
#include <vector>

#include "qdm/anneal/solver.h"
#include "qdm/common/rng.h"
#include "qdm/common/strings.h"
#include "qdm/common/table_printer.h"
#include "qdm/qopt/mqo.h"
#include "sweep_util.h"

namespace {

double MillisSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

// Batch fan-out sweep: a fixed batch of MQO instances (one QUBO per query
// group) through qopt::SolveMqoBatch at increasing pool widths. items/s is
// the CI perf-gate metric; the "identical" column asserts the batch
// determinism guarantee (seed + index derivation) across thread counts.
void RunBatchSweep(const qdm_bench::SweepFlags& flags) {
  const int kInstances = 32;
  qdm::Rng gen_rng(7);
  std::vector<qdm::qopt::MqoProblem> problems;
  problems.reserve(kInstances);
  for (int i = 0; i < kInstances; ++i) {
    problems.push_back(qdm::qopt::GenerateMqoProblem(8, 3, 0.3, &gen_rng));
  }
  qdm::anneal::SolverOptions options;
  options.num_reads = 10;
  options.num_sweeps = 600;
  options.seed = 7;

  using Batch = std::vector<qdm::qopt::MqoSolution>;
  qdm_bench::RunThreadSweep<Batch>(
      "Batch sweep: 32 MQO instances (8 queries x 3 plans) through\n"
      "SolveMqoBatch on simulated_annealing, seed-derived per instance\n"
      "(bit-identical at every thread count).",
      kInstances, "items/s",
      [&problems, &options](int threads) {
        auto solutions = qdm::qopt::SolveMqoBatch(
            problems, "simulated_annealing", options, 0.0, threads);
        QDM_CHECK(solutions.ok()) << solutions.status();
        return *solutions;
      },
      [](const Batch& a, const Batch& b) {
        if (a.size() != b.size()) return false;
        for (size_t i = 0; i < a.size(); ++i) {
          if (a[i].plan_choice != b[i].plan_choice || a[i].cost != b[i].cost) {
            return false;
          }
        }
        return true;
      },
      "mqo_batch_items_per_s", flags);
}

}  // namespace

int main(int argc, char** argv) {
  const qdm_bench::SweepFlags flags = qdm_bench::ParseSweepFlags(argc, argv);
  if (flags.sweep_only) {
    RunBatchSweep(flags);
    return 0;
  }
  qdm::Rng rng(2024);
  qdm::TablePrinter table({"queries", "sharing", "vars", "exhaustive ms",
                           "anneal ms", "anneal/opt", "tabu ms", "tabu/opt",
                           "pipeline speedup"});

  for (int queries : {3, 5, 7, 9, 11, 13, 15}) {
    for (double sharing : {0.1, 0.3}) {
      const int plans = 3;
      qdm::qopt::MqoProblem problem =
          qdm::qopt::GenerateMqoProblem(queries, plans, sharing, &rng);

      auto start_exhaustive = std::chrono::steady_clock::now();
      qdm::qopt::MqoSolution exact = qdm::qopt::ExhaustiveMqo(problem);
      const double exhaustive_ms = MillisSince(start_exhaustive);

      qdm::anneal::Qubo qubo = qdm::qopt::MqoToQubo(problem);
      auto& registry = qdm::anneal::SolverRegistry::Global();

      // Annealer stand-in: parallel tempering, reads scaled with size.
      auto annealer = registry.Create("parallel_tempering");
      QDM_CHECK(annealer.ok()) << annealer.status();
      qdm::anneal::SolverOptions pt_options;
      pt_options.num_replicas = 12;
      pt_options.num_sweeps = 500;
      pt_options.num_reads = 2 * queries;
      pt_options.rng = &rng;
      auto start_anneal = std::chrono::steady_clock::now();
      auto samples = (*annealer)->Solve(qubo, pt_options);
      const double anneal_ms = MillisSince(start_anneal);
      QDM_CHECK(samples.ok()) << samples.status();
      qdm::qopt::MqoSolution annealed =
          qdm::qopt::DecodeMqoSample(problem, samples->best().assignment);

      // Hybrid-pipeline arm: tabu on the same QUBO (the classical component
      // real annealer pipelines use for post-processing, cf. qbsolv).
      auto tabu = registry.Create("tabu_search");
      QDM_CHECK(tabu.ok()) << tabu.status();
      qdm::anneal::SolverOptions tabu_options;
      tabu_options.max_iterations = 2000;
      tabu_options.num_reads = 2 * queries;
      tabu_options.rng = &rng;
      auto start_tabu = std::chrono::steady_clock::now();
      auto tabu_samples = (*tabu)->Solve(qubo, tabu_options);
      const double tabu_ms = MillisSince(start_tabu);
      QDM_CHECK(tabu_samples.ok()) << tabu_samples.status();
      qdm::qopt::MqoSolution tabu_solution =
          qdm::qopt::DecodeMqoSample(problem, tabu_samples->best().assignment);

      table.AddRow({qdm::StrFormat("%d", queries),
                    qdm::StrFormat("%.1f", sharing),
                    qdm::StrFormat("%d", problem.num_variables()),
                    qdm::StrFormat("%.2f", exhaustive_ms),
                    qdm::StrFormat("%.1f", anneal_ms),
                    qdm::StrFormat("%.4f",
                                   annealed.feasible ? annealed.cost / exact.cost
                                                     : -1.0),
                    qdm::StrFormat("%.1f", tabu_ms),
                    qdm::StrFormat("%.4f", tabu_solution.feasible
                                               ? tabu_solution.cost / exact.cost
                                               : -1.0),
                    qdm::StrFormat("%.1fx", exhaustive_ms / tabu_ms)});
    }
  }
  std::printf("E4: MQO -- exhaustive search vs the QUBO pipeline\n%s\n",
              table.ToString().c_str());
  std::printf(
      "Shape check: exhaustive time grows ~9x per +2 queries while QUBO-\n"
      "pipeline time grows mildly, so the speedup climbs orders of magnitude\n"
      "(extrapolating the exponential gap passes 1000x near ~21 queries).\n"
      "The tabu arm holds quality ~1.0 throughout; the pure annealing arm\n"
      "drifts on densely-shared instances -- the \"limited subset of MQO\n"
      "problems\" caveat of [20], reproduced.\n\n");
  RunBatchSweep(flags);
  return 0;
}
