// E4 -- Paper Sec III-B on Trummer & Koch [VLDB'16]: MQO on an annealer
// "demonstrated 1000x speedup ... compared to state-of-the-art MQO solutions
// at that time, although only for a limited subset of MQO problems."
//
// Shape to reproduce, including the caveat: as instances grow, exhaustive
// search blows up exponentially (x9 per +2 queries at 3 plans/query) while
// the annealer's time grows mildly -- the speedup therefore grows by orders
// of magnitude. On sparsely-shared instances the annealer stays at the
// optimum; on densely-shared ones quality drifts ("limited subset").
// Absolute times are not comparable to a physical D-Wave; the shape is.

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "qdm/anneal/solver.h"
#include "qdm/common/rng.h"
#include "qdm/common/strings.h"
#include "qdm/common/table_printer.h"
#include "qdm/qopt/mqo.h"
#include "sweep_util.h"

namespace {

double MillisSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

// Batch fan-out sweep: a fixed batch of MQO instances (one QUBO per query
// group) through qopt::SolveMqoBatch at increasing pool widths. items/s is
// the CI perf-gate metric; the "identical" column asserts the batch
// determinism guarantee (seed + index derivation) across thread counts.
void RunBatchSweep(const qdm_bench::SweepFlags& flags,
                   qdm_bench::MetricsJson* metrics) {
  const int kInstances = 32;
  qdm::Rng gen_rng(7);
  std::vector<qdm::qopt::MqoProblem> problems;
  problems.reserve(kInstances);
  for (int i = 0; i < kInstances; ++i) {
    problems.push_back(qdm::qopt::GenerateMqoProblem(8, 3, 0.3, &gen_rng));
  }
  qdm::anneal::SolverOptions options;
  options.num_reads = 10;
  options.num_sweeps = 600;
  options.seed = 7;

  using Batch = std::vector<qdm::qopt::MqoSolution>;
  qdm_bench::RunThreadSweep<Batch>(
      "Batch sweep: 32 MQO instances (8 queries x 3 plans) through\n"
      "SolveMqoBatch on simulated_annealing, seed-derived per instance\n"
      "(bit-identical at every thread count).",
      kInstances, "items/s",
      [&problems, &options](int threads) {
        auto solutions = qdm::qopt::SolveMqoBatch(
            problems, "simulated_annealing", options, 0.0, threads);
        QDM_CHECK(solutions.ok()) << solutions.status();
        return *solutions;
      },
      [](const Batch& a, const Batch& b) {
        if (a.size() != b.size()) return false;
        for (size_t i = 0; i < a.size(); ++i) {
          if (a[i].plan_choice != b[i].plan_choice || a[i].cost != b[i].cost) {
            return false;
          }
        }
        return true;
      },
      "mqo_batch_items_per_s", flags, metrics);
}

// Portfolio sweep: the same MQO batch through a "race:*" backend vs each
// member alone, plus the "adaptive:*" selector over the same members.
// Reports items/s per arm (the racing overhead is the metric — a race pays
// for every member it runs, while the adaptive selector stops paying the
// losing member after its explore window) and best-energy win rates of the
// race against each solo member, recorded as exact metrics: they are pure
// functions of the seeds, so any drift is a behavior change the perf gate
// should catch. The adaptive arm's committed member index is likewise
// seed-exact, and its items/s advantage over the race is asserted at bench
// runtime.
void RunPortfolioSweep(const qdm_bench::SweepFlags& flags,
                       qdm_bench::MetricsJson* metrics) {
  const int kInstances = 32;
  qdm::Rng gen_rng(11);
  std::vector<qdm::anneal::Qubo> qubos;
  qubos.reserve(kInstances);
  for (int i = 0; i < kInstances; ++i) {
    qubos.push_back(qdm::qopt::MqoToQubo(
        qdm::qopt::GenerateMqoProblem(8, 3, 0.3, &gen_rng)));
  }
  qdm::anneal::SolverOptions options;
  options.num_reads = 10;
  options.num_sweeps = 600;
  options.seed = 11;

  struct Arm {
    const char* solver;
    const char* label;   // Short key used in metric names.
  };
  const Arm kArms[] = {
      {"simulated_annealing", "sa"},
      {"tabu_search", "tabu"},
      {"race:simulated_annealing+tabu_search", "race"},
      {"adaptive:simulated_annealing+tabu_search", "adaptive"},
  };
  using Batch = std::vector<qdm::anneal::SampleSet>;
  std::vector<Batch> reference;
  for (const Arm& arm : kArms) {
    reference.push_back(qdm_bench::RunThreadSweep<Batch>(
        qdm::StrFormat("Portfolio sweep arm '%s': 32 MQO QUBOs through\n"
                       "SolveBatchParallel (bit-identical at every thread "
                       "count).",
                       arm.solver)
            .c_str(),
        kInstances, "items/s",
        [&qubos, &options, &arm](int threads) {
          auto sets = qdm::anneal::SolveBatchParallel(arm.solver, qubos,
                                                      options, threads);
          QDM_CHECK(sets.ok()) << arm.solver << ": " << sets.status();
          return *sets;
        },
        [](const Batch& a, const Batch& b) {
          if (a.size() != b.size()) return false;
          for (size_t i = 0; i < a.size(); ++i) {
            if (a[i].size() != b[i].size()) return false;
            for (size_t s = 0; s < a[i].size(); ++s) {
              const qdm::anneal::Sample& sa = a[i].samples()[s];
              const qdm::anneal::Sample& sb = b[i].samples()[s];
              if (sa.assignment != sb.assignment || sa.energy != sb.energy) {
                return false;
              }
            }
          }
          return true;
        },
        qdm::StrFormat("mqo_port_%s_items_per_s", arm.label).c_str(), flags,
        metrics));
  }

  // Best-energy scoreboard: the race vs each solo member, per instance.
  const Batch& race = reference[2];
  qdm::TablePrinter table(
      {"vs member", "race wins", "ties", "losses", "win rate"});
  for (size_t m = 0; m < 2; ++m) {
    int wins = 0, ties = 0, losses = 0;
    for (int i = 0; i < kInstances; ++i) {
      const double race_best = race[i].best().energy;
      const double solo_best = reference[m][i].best().energy;
      if (race_best < solo_best) {
        ++wins;
      } else if (race_best == solo_best) {
        ++ties;
      } else {
        ++losses;
      }
    }
    // The race runs member 0 (simulated_annealing) with the very seed the
    // solo arm uses, so against that member it can tie but never lose —
    // assert the hedge's no-regression contract at bench runtime.
    if (m == 0) {
      QDM_CHECK(losses == 0) << "race lost to its own member seed";
    }
    table.AddRow({kArms[m].solver, qdm::StrFormat("%d", wins),
                  qdm::StrFormat("%d", ties), qdm::StrFormat("%d", losses),
                  qdm::StrFormat("%.3f", 1.0 * wins / kInstances)});
    metrics->AddExact(
        qdm::StrFormat("mqo_port_race_win_rate_vs_%s", kArms[m].label),
        1.0 * wins / kInstances);
  }
  std::printf(
      "Portfolio scoreboard: best QUBO energy of "
      "race:simulated_annealing+tabu_search\nagainst each member alone "
      "(win = strictly lower energy on that instance).\n%s\n",
      table.ToString().c_str());

  // Adaptive selector head-to-head: on this batch the selector races both
  // members for 8 explore instances, then commits to the win-rate winner
  // for the remaining 24 — about 40 member-solves against the race's 64 —
  // so its items/s must beat the race on the same seeds. The committed arm
  // index is a pure function of the seeds ("commit:<arm>:<member>" on every
  // post-explore SampleSet), recorded as an exact perf-gate metric.
  const Batch& adaptive = reference[3];
  const std::string& decision = adaptive.back().decision();
  const std::vector<std::string> decision_parts = qdm::StrSplit(decision, ':');
  QDM_CHECK(decision_parts.size() == 3 && decision_parts[0] == "commit")
      << "adaptive arm ended the batch without a commit decision: '"
      << decision << "'";
  metrics->AddExact("mqo_adaptive_commit_arm",
                    std::stod(decision_parts[1]));
  const auto timed_items_per_s = [&qubos, &options](const char* solver) {
    const auto start = std::chrono::steady_clock::now();
    auto sets = qdm::anneal::SolveBatchParallel(solver, qubos, options,
                                                /*num_threads=*/4);
    QDM_CHECK(sets.ok()) << solver << ": " << sets.status();
    return 1000.0 * kInstances / MillisSince(start);
  };
  const double race_items_per_s = timed_items_per_s(kArms[2].solver);
  const double adaptive_items_per_s = timed_items_per_s(kArms[3].solver);
  QDM_CHECK(adaptive_items_per_s > race_items_per_s)
      << "adaptive did not beat race on the skewed MQO batch ("
      << adaptive_items_per_s << " vs " << race_items_per_s << " items/s)";
  std::printf(
      "Adaptive head-to-head (4 threads): adaptive %.1f items/s vs race "
      "%.1f\nitems/s (%.2fx); committed to arm %s ('%s') after the "
      "8-instance\nexplore window.\n\n",
      adaptive_items_per_s, race_items_per_s,
      adaptive_items_per_s / race_items_per_s, decision_parts[1].c_str(),
      decision_parts[2].c_str());
}

// Noise sweep: the same MQO QUBOs through the "noisy:<model>:qaoa" family
// (docs/noise.md) at increasing depolarizing rates. 4-variable instances
// keep the bridge on the exact density-matrix path, so the reported
// noise_fidelity is a deterministic function of the seed: it is recorded as
// an exact perf-gate metric, and the NISQ contract — fidelity degrades
// monotonically with the error rate — is QDM_CHECKed at bench runtime.
void RunNoiseSweep(const qdm_bench::SweepFlags& flags,
                   qdm_bench::MetricsJson* metrics) {
  (void)flags;
  const int kInstances = 8;
  qdm::Rng gen_rng(13);
  std::vector<qdm::anneal::Qubo> qubos;
  qubos.reserve(kInstances);
  for (int i = 0; i < kInstances; ++i) {
    qubos.push_back(qdm::qopt::MqoToQubo(
        qdm::qopt::GenerateMqoProblem(2, 2, 0.3, &gen_rng)));
  }
  qdm::anneal::SolverOptions options;
  options.num_reads = 10;
  options.layers = 1;
  options.restarts = 1;
  options.seed = 13;

  struct Point {
    const char* model;  // Noise-model token of the solver name.
    const char* label;  // Short key used in metric names.
  };
  const Point kPoints[] = {{"depol@0.0", "p0"},
                           {"depol@0.001", "p001"},
                           {"depol@0.01", "p01"},
                           {"depol@0.05", "p05"}};
  qdm::TablePrinter table(
      {"solver", "total ms", "items/s", "mean fidelity"});
  double previous_fidelity = 2.0;  // Above any reachable fidelity.
  for (const Point& point : kPoints) {
    const std::string solver =
        qdm::StrFormat("noisy:%s:qaoa", point.model);
    const auto start = std::chrono::steady_clock::now();
    auto sets =
        qdm::anneal::SolveBatchParallel(solver, qubos, options, 1);
    const double ms = MillisSince(start);
    QDM_CHECK(sets.ok()) << solver << ": " << sets.status();
    double fidelity = 0.0;
    for (const qdm::anneal::SampleSet& set : *sets) {
      fidelity += set.noise_fidelity();
    }
    fidelity /= kInstances;
    QDM_CHECK(fidelity <= previous_fidelity + 1e-12)
        << solver << ": fidelity " << fidelity
        << " not monotone under rising noise (previous "
        << previous_fidelity << ")";
    previous_fidelity = fidelity;
    const double items_per_s = 1000.0 * kInstances / ms;
    table.AddRow({solver, qdm::StrFormat("%.1f", ms),
                  qdm::StrFormat("%.1f", items_per_s),
                  qdm::StrFormat("%.6f", fidelity)});
    metrics->Add(qdm::StrFormat("mqo_noise_%s_items_per_s", point.label),
                 items_per_s);
    metrics->AddExact(qdm::StrFormat("mqo_noise_%s_fidelity", point.label),
                      fidelity);
  }
  std::printf(
      "Noise sweep: 8 MQO QUBOs (2 queries x 2 plans) through the noisy:*\n"
      "family at rising depolarizing rates; mean noise_fidelity must degrade\n"
      "monotonically (checked), and each value is seed-exact (perf-gated).\n"
      "%s\n",
      table.ToString().c_str());
}

}  // namespace

int main(int argc, char** argv) {
  const qdm_bench::SweepFlags flags = qdm_bench::ParseSweepFlags(argc, argv);
  qdm_bench::MetricsJson metrics;
  if (flags.sweep_only) {
    RunBatchSweep(flags, &metrics);
    RunPortfolioSweep(flags, &metrics);
    RunNoiseSweep(flags, &metrics);
    if (flags.json_path != nullptr) metrics.WriteTo(flags.json_path);
    return 0;
  }
  qdm::Rng rng(2024);
  qdm::TablePrinter table({"queries", "sharing", "vars", "exhaustive ms",
                           "anneal ms", "anneal/opt", "tabu ms", "tabu/opt",
                           "pipeline speedup"});

  for (int queries : {3, 5, 7, 9, 11, 13, 15}) {
    for (double sharing : {0.1, 0.3}) {
      const int plans = 3;
      qdm::qopt::MqoProblem problem =
          qdm::qopt::GenerateMqoProblem(queries, plans, sharing, &rng);

      auto start_exhaustive = std::chrono::steady_clock::now();
      qdm::qopt::MqoSolution exact = qdm::qopt::ExhaustiveMqo(problem);
      const double exhaustive_ms = MillisSince(start_exhaustive);

      qdm::anneal::Qubo qubo = qdm::qopt::MqoToQubo(problem);
      auto& registry = qdm::anneal::SolverRegistry::Global();

      // Annealer stand-in: parallel tempering, reads scaled with size.
      auto annealer = registry.Create("parallel_tempering");
      QDM_CHECK(annealer.ok()) << annealer.status();
      qdm::anneal::SolverOptions pt_options;
      pt_options.num_replicas = 12;
      pt_options.num_sweeps = 500;
      pt_options.num_reads = 2 * queries;
      pt_options.rng = &rng;
      auto start_anneal = std::chrono::steady_clock::now();
      auto samples = (*annealer)->Solve(qubo, pt_options);
      const double anneal_ms = MillisSince(start_anneal);
      QDM_CHECK(samples.ok()) << samples.status();
      qdm::qopt::MqoSolution annealed =
          qdm::qopt::DecodeMqoSample(problem, samples->best().assignment);

      // Hybrid-pipeline arm: tabu on the same QUBO (the classical component
      // real annealer pipelines use for post-processing, cf. qbsolv).
      auto tabu = registry.Create("tabu_search");
      QDM_CHECK(tabu.ok()) << tabu.status();
      qdm::anneal::SolverOptions tabu_options;
      tabu_options.max_iterations = 2000;
      tabu_options.num_reads = 2 * queries;
      tabu_options.rng = &rng;
      auto start_tabu = std::chrono::steady_clock::now();
      auto tabu_samples = (*tabu)->Solve(qubo, tabu_options);
      const double tabu_ms = MillisSince(start_tabu);
      QDM_CHECK(tabu_samples.ok()) << tabu_samples.status();
      qdm::qopt::MqoSolution tabu_solution =
          qdm::qopt::DecodeMqoSample(problem, tabu_samples->best().assignment);

      table.AddRow({qdm::StrFormat("%d", queries),
                    qdm::StrFormat("%.1f", sharing),
                    qdm::StrFormat("%d", problem.num_variables()),
                    qdm::StrFormat("%.2f", exhaustive_ms),
                    qdm::StrFormat("%.1f", anneal_ms),
                    qdm::StrFormat("%.4f", annealed.feasible
                                               ? annealed.cost / exact.cost
                                               : -1.0),
                    qdm::StrFormat("%.1f", tabu_ms),
                    qdm::StrFormat("%.4f", tabu_solution.feasible
                                               ? tabu_solution.cost / exact.cost
                                               : -1.0),
                    qdm::StrFormat("%.1fx", exhaustive_ms / tabu_ms)});
    }
  }
  std::printf("E4: MQO -- exhaustive search vs the QUBO pipeline\n%s\n",
              table.ToString().c_str());
  std::printf(
      "Shape check: exhaustive time grows ~9x per +2 queries while QUBO-\n"
      "pipeline time grows mildly, so the speedup climbs orders of magnitude\n"
      "(extrapolating the exponential gap passes 1000x near ~21 queries).\n"
      "The tabu arm holds quality ~1.0 throughout; the pure annealing arm\n"
      "drifts on densely-shared instances -- the \"limited subset of MQO\n"
      "problems\" caveat of [20], reproduced.\n\n");
  RunBatchSweep(flags, &metrics);
  RunPortfolioSweep(flags, &metrics);
  RunNoiseSweep(flags, &metrics);
  if (flags.json_path != nullptr) metrics.WriteTo(flags.json_path);
  return 0;
}
