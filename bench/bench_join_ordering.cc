// E5 -- Paper Sec III-B on Schonberger et al. [SIGMOD'22/'23]: join ordering
// via QUBO. Regenerates the quality-by-topology table: for each query shape
// (chain/star/cycle/clique) and size, the geometric-mean C_out cost ratio to
// the optimal left-deep plan for (a) annealing on the QUBO, (b) tabu on the
// QUBO (hybrid pipeline), (c) the QUBO encoding's own optimum (encoding gap),
// (d) greedy GOO and (e) random orders. The bushy column reports the
// left-deep-vs-bushy optimum gap motivating [25, 26].
//
// --sweep-only / --json additionally run the NISQ noise sweep: join-order
// QUBOs through the "noisy:<model>:qaoa" family (docs/noise.md) at rising
// depolarizing rates, with the seed-exact noise_fidelity values fed to the
// CI perf gate and monotone degradation checked in-binary.

#include <chrono>
#include <cmath>
#include <cstdio>
#include <vector>

#include "qdm/anneal/solver.h"
#include "qdm/common/rng.h"
#include "qdm/common/strings.h"
#include "qdm/common/table_printer.h"
#include "qdm/db/join_optimizer.h"
#include "qdm/qopt/join_order_qubo.h"
#include "sweep_util.h"

namespace {

// Noise sweep: 3-relation join-order QUBOs (9 variables — past the density
// cutoff, so this exercises the per-shot TRAJECTORY path, complementing the
// density-path sweep in bench_mqo_speedup) through "noisy:depol@p:qaoa".
// The mean noise_fidelity at each rate is a pure function of the seed:
// recorded as an exact perf-gate metric and QDM_CHECKed to degrade
// monotonically as the error rate rises.
void RunNoiseSweep(const qdm_bench::SweepFlags& flags,
                   qdm_bench::MetricsJson* metrics) {
  (void)flags;
  const int kInstances = 8;
  qdm::Rng gen_rng(31);
  std::vector<qdm::anneal::Qubo> qubos;
  qubos.reserve(kInstances);
  using qdm::db::QueryShape;
  const QueryShape kShapes[] = {QueryShape::kChain, QueryShape::kStar,
                                QueryShape::kCycle, QueryShape::kClique};
  for (int i = 0; i < kInstances; ++i) {
    qdm::db::JoinGraph g =
        qdm::db::MakeRandomQuery(kShapes[i % 4], 3, &gen_rng);
    qubos.push_back(qdm::qopt::JoinOrderQubo(g).qubo());
  }
  qdm::anneal::SolverOptions options;
  options.num_reads = 32;
  options.layers = 1;
  options.restarts = 1;
  options.seed = 31;

  struct Point {
    const char* model;  // Noise-model token of the solver name.
    const char* label;  // Short key used in metric names.
  };
  const Point kPoints[] = {{"depol@0.0", "p0"},
                           {"depol@0.001", "p001"},
                           {"depol@0.01", "p01"},
                           {"depol@0.05", "p05"}};
  qdm::TablePrinter table(
      {"solver", "total ms", "items/s", "mean fidelity"});
  double previous_fidelity = 2.0;  // Above any reachable fidelity.
  for (const Point& point : kPoints) {
    const std::string solver =
        qdm::StrFormat("noisy:%s:qaoa", point.model);
    const auto start = std::chrono::steady_clock::now();
    auto sets =
        qdm::anneal::SolveBatchParallel(solver, qubos, options, 1);
    const double ms = std::chrono::duration<double, std::milli>(
                          std::chrono::steady_clock::now() - start)
                          .count();
    QDM_CHECK(sets.ok()) << solver << ": " << sets.status();
    double fidelity = 0.0;
    for (const qdm::anneal::SampleSet& set : *sets) {
      fidelity += set.noise_fidelity();
    }
    fidelity /= kInstances;
    QDM_CHECK(fidelity <= previous_fidelity + 1e-12)
        << solver << ": fidelity " << fidelity
        << " not monotone under rising noise (previous "
        << previous_fidelity << ")";
    previous_fidelity = fidelity;
    const double items_per_s = 1000.0 * kInstances / ms;
    table.AddRow({solver, qdm::StrFormat("%.1f", ms),
                  qdm::StrFormat("%.1f", items_per_s),
                  qdm::StrFormat("%.6f", fidelity)});
    metrics->Add(qdm::StrFormat("join_noise_%s_items_per_s", point.label),
                 items_per_s);
    metrics->AddExact(qdm::StrFormat("join_noise_%s_fidelity", point.label),
                      fidelity);
  }
  std::printf(
      "Noise sweep: 8 join-order QUBOs (3 relations, all shapes) through\n"
      "the noisy:* family on the trajectory path; mean noise_fidelity must\n"
      "degrade monotonically (checked) and is seed-exact (perf-gated).\n"
      "%s\n",
      table.ToString().c_str());
}

}  // namespace

int main(int argc, char** argv) {
  const qdm_bench::SweepFlags flags = qdm_bench::ParseSweepFlags(argc, argv);
  qdm_bench::MetricsJson metrics;
  if (flags.sweep_only) {
    RunNoiseSweep(flags, &metrics);
    if (flags.json_path != nullptr) metrics.WriteTo(flags.json_path);
    return 0;
  }
  qdm::Rng rng(2024);
  qdm::TablePrinter table({"shape", "n", "anneal/opt", "tabu/opt",
                           "proxy-opt/opt", "greedy/opt", "log10 random/opt",
                           "bushy gain", "feasible"});

  using qdm::db::QueryShape;
  for (QueryShape shape : {QueryShape::kChain, QueryShape::kStar,
                           QueryShape::kCycle, QueryShape::kClique}) {
    for (int n : {4, 6, 8}) {
      const int kSeeds = 8;
      double log_anneal = 0, log_tabu = 0, log_proxy = 0, log_greedy = 0,
             log_random = 0, log_bushy = 0;
      int feasible = 0;
      for (int seed = 0; seed < kSeeds; ++seed) {
        qdm::db::JoinGraph g = qdm::db::MakeRandomQuery(shape, n, &rng);
        const double optimal = qdm::db::OptimalLeftDeepPlan(g).cost;

        // (c) encoding gap: proxy optimum evaluated in true C_out.
        std::vector<int> proxy_best = qdm::qopt::OptimalOrderUnderProxy(g);
        log_proxy +=
            std::log(qdm::db::PermutationCost(proxy_best, g) / optimal);

        // (a) annealer on the QUBO with repair decoding; effort scales with n.
        // Both QUBO arms dispatch through the QuboSolver registry (Figure 2's
        // interchangeable-backend seam).
        qdm::anneal::SolverOptions anneal_options;
        anneal_options.num_sweeps = 300 * n;
        anneal_options.num_reads = 4 * n;
        anneal_options.rng = &rng;
        auto annealed = qdm::qopt::SolveJoinOrder(g, "simulated_annealing",
                                                  anneal_options);
        QDM_CHECK(annealed.ok()) << annealed.status();
        if (annealed->strict_feasible) ++feasible;
        log_anneal +=
            std::log(qdm::db::PermutationCost(annealed->order, g) / optimal);

        // (b) tabu on the same QUBO.
        qdm::anneal::SolverOptions tabu_options;
        tabu_options.max_iterations = 400 * n;
        tabu_options.num_reads = 2 * n;
        tabu_options.rng = &rng;
        auto tabu = qdm::qopt::SolveJoinOrder(g, "tabu_search", tabu_options);
        QDM_CHECK(tabu.ok()) << tabu.status();
        log_tabu +=
            std::log(qdm::db::PermutationCost(tabu->order, g) / optimal);

        // (d, e) classical baselines.
        log_greedy +=
            std::log(qdm::db::GreedyOperatorOrdering(g).cost / optimal);
        log_random +=
            std::log(qdm::db::RandomLeftDeepPlan(g, &rng).cost / optimal);

        // Bushy gain (left-deep optimum / bushy optimum >= 1).
        log_bushy += std::log(optimal / qdm::db::OptimalBushyPlan(g).cost);
      }
      auto geomean = [&](double log_sum) { return std::exp(log_sum / kSeeds); };
      table.AddRow({qdm::db::QueryShapeToString(shape), qdm::StrFormat("%d", n),
                    qdm::StrFormat("%.2f", geomean(log_anneal)),
                    qdm::StrFormat("%.2f", geomean(log_tabu)),
                    qdm::StrFormat("%.2f", geomean(log_proxy)),
                    qdm::StrFormat("%.2f", geomean(log_greedy)),
                    qdm::StrFormat("%.1f",
                                   log_random / kSeeds / std::log(10.0)),
                    qdm::StrFormat("%.2f", geomean(log_bushy)),
                    qdm::StrFormat("%d/%d", feasible, kSeeds)});
    }
  }
  std::printf("E5: join ordering quality by topology (geometric-mean C_out "
              "ratios; 1.0 = left-deep optimal)\n%s\n",
              table.ToString().c_str());
  std::printf(
      "Shape check: the QUBO pipeline (anneal/tabu) stays within a small\n"
      "factor of optimal and is astronomically better than random orders\n"
      "(note the log10 column); the encoding's own optimum (proxy) is near\n"
      "1.0, so remaining gaps are solver-side, matching the co-design\n"
      "observations of [24].\n\n");
  RunNoiseSweep(flags, &metrics);
  if (flags.json_path != nullptr) metrics.WriteTo(flags.json_path);
  return 0;
}
