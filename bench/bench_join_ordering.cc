// E5 -- Paper Sec III-B on Schonberger et al. [SIGMOD'22/'23]: join ordering
// via QUBO. Regenerates the quality-by-topology table: for each query shape
// (chain/star/cycle/clique) and size, the geometric-mean C_out cost ratio to
// the optimal left-deep plan for (a) annealing on the QUBO, (b) tabu on the
// QUBO (hybrid pipeline), (c) the QUBO encoding's own optimum (encoding gap),
// (d) greedy GOO and (e) random orders. The bushy column reports the
// left-deep-vs-bushy optimum gap motivating [25, 26].

#include <cmath>
#include <cstdio>

#include "qdm/anneal/solver.h"
#include "qdm/common/rng.h"
#include "qdm/common/strings.h"
#include "qdm/common/table_printer.h"
#include "qdm/db/join_optimizer.h"
#include "qdm/qopt/join_order_qubo.h"

int main() {
  qdm::Rng rng(2024);
  qdm::TablePrinter table({"shape", "n", "anneal/opt", "tabu/opt",
                           "proxy-opt/opt", "greedy/opt", "log10 random/opt",
                           "bushy gain", "feasible"});

  using qdm::db::QueryShape;
  for (QueryShape shape : {QueryShape::kChain, QueryShape::kStar,
                           QueryShape::kCycle, QueryShape::kClique}) {
    for (int n : {4, 6, 8}) {
      const int kSeeds = 8;
      double log_anneal = 0, log_tabu = 0, log_proxy = 0, log_greedy = 0,
             log_random = 0, log_bushy = 0;
      int feasible = 0;
      for (int seed = 0; seed < kSeeds; ++seed) {
        qdm::db::JoinGraph g = qdm::db::MakeRandomQuery(shape, n, &rng);
        const double optimal = qdm::db::OptimalLeftDeepPlan(g).cost;

        // (c) encoding gap: proxy optimum evaluated in true C_out.
        std::vector<int> proxy_best = qdm::qopt::OptimalOrderUnderProxy(g);
        log_proxy +=
            std::log(qdm::db::PermutationCost(proxy_best, g) / optimal);

        // (a) annealer on the QUBO with repair decoding; effort scales with n.
        // Both QUBO arms dispatch through the QuboSolver registry (Figure 2's
        // interchangeable-backend seam).
        qdm::anneal::SolverOptions anneal_options;
        anneal_options.num_sweeps = 300 * n;
        anneal_options.num_reads = 4 * n;
        anneal_options.rng = &rng;
        auto annealed = qdm::qopt::SolveJoinOrder(g, "simulated_annealing",
                                                  anneal_options);
        QDM_CHECK(annealed.ok()) << annealed.status();
        if (annealed->strict_feasible) ++feasible;
        log_anneal +=
            std::log(qdm::db::PermutationCost(annealed->order, g) / optimal);

        // (b) tabu on the same QUBO.
        qdm::anneal::SolverOptions tabu_options;
        tabu_options.max_iterations = 400 * n;
        tabu_options.num_reads = 2 * n;
        tabu_options.rng = &rng;
        auto tabu = qdm::qopt::SolveJoinOrder(g, "tabu_search", tabu_options);
        QDM_CHECK(tabu.ok()) << tabu.status();
        log_tabu +=
            std::log(qdm::db::PermutationCost(tabu->order, g) / optimal);

        // (d, e) classical baselines.
        log_greedy +=
            std::log(qdm::db::GreedyOperatorOrdering(g).cost / optimal);
        log_random +=
            std::log(qdm::db::RandomLeftDeepPlan(g, &rng).cost / optimal);

        // Bushy gain (left-deep optimum / bushy optimum >= 1).
        log_bushy += std::log(optimal / qdm::db::OptimalBushyPlan(g).cost);
      }
      auto geomean = [&](double log_sum) { return std::exp(log_sum / kSeeds); };
      table.AddRow({qdm::db::QueryShapeToString(shape), qdm::StrFormat("%d", n),
                    qdm::StrFormat("%.2f", geomean(log_anneal)),
                    qdm::StrFormat("%.2f", geomean(log_tabu)),
                    qdm::StrFormat("%.2f", geomean(log_proxy)),
                    qdm::StrFormat("%.2f", geomean(log_greedy)),
                    qdm::StrFormat("%.1f",
                                   log_random / kSeeds / std::log(10.0)),
                    qdm::StrFormat("%.2f", geomean(log_bushy)),
                    qdm::StrFormat("%d/%d", feasible, kSeeds)});
    }
  }
  std::printf("E5: join ordering quality by topology (geometric-mean C_out "
              "ratios; 1.0 = left-deep optimal)\n%s\n",
              table.ToString().c_str());
  std::printf(
      "Shape check: the QUBO pipeline (anneal/tabu) stays within a small\n"
      "factor of optimal and is astronomically better than random orders\n"
      "(note the log10 column); the encoding's own optimum (proxy) is near\n"
      "1.0, so remaining gaps are solver-side, matching the co-design\n"
      "observations of [24].\n");
  return 0;
}
