// Network front-end throughput sweep: N client threads drive M small
// simulated-annealing jobs through a loopback qdmd server (QdmClient ->
// HTTP -> SolverService), sweeping the client count over {1, 2, 4, 8}
// against a fixed 4-worker server. Every pass re-solves the same job
// portfolio, and the sweep asserts the wire determinism contract at bench
// runtime: results are bit-identical across client counts (and therefore
// to the in-process path — tests/net_e2e_test.cc proves that leg).
//
// Each job is one connection (submit) plus one blocking wait connection,
// so the metric prices the full remote loop: TCP setup, JSON encode,
// HTTP parse, service scheduling, JSON decode.
//
// Perf-gate metrics (scripts/perf_gate.py, ratio-compared):
//   net_jobs_per_s_t<N>  completed remote jobs/s with N client threads.
//
// Usage mirrors the other sweeps: --sweep-only --json PATH for CI.

#include <memory>
#include <thread>
#include <vector>

#include "qdm/anneal/qubo.h"
#include "qdm/anneal/sampler.h"
#include "qdm/anneal/solver.h"
#include "qdm/common/check.h"
#include "qdm/common/rng.h"
#include "qdm/net/client.h"
#include "qdm/net/server.h"
#include "sweep_util.h"

namespace {

using qdm::Rng;
using qdm::anneal::Qubo;
using qdm::anneal::SampleSet;
using qdm::anneal::SolverOptions;
using qdm::net::QdmClient;
using qdm::net::QdmServer;
using qdm::net::ServerConfig;

constexpr int kJobs = 48;
constexpr int kVariables = 24;
constexpr int kServerWorkers = 4;

Qubo MakeQubo(int num_variables, uint64_t seed) {
  Rng rng(seed);
  Qubo qubo(num_variables);
  for (int i = 0; i < num_variables; ++i) {
    qubo.AddLinear(i, rng.Uniform(-1, 1));
    for (int j = i + 1; j < num_variables; ++j) {
      qubo.AddQuadratic(i, j, rng.Uniform(-1, 1));
    }
  }
  return qubo;
}

SolverOptions JobOptions(uint64_t seed) {
  SolverOptions options;
  options.num_reads = 4;
  options.num_sweeps = 200;
  options.seed = seed;
  return options;
}

bool SampleSetsEqual(const SampleSet& a, const SampleSet& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a.samples()[i].energy != b.samples()[i].energy ||
        a.samples()[i].assignment != b.samples()[i].assignment) {
      return false;
    }
  }
  return true;
}

// One timed pass: a fresh loopback server, `clients` client threads
// splitting kJobs round-robin, each job a full remote Solve (submit +
// wait). Results land in job order, so passes compare index by index.
std::vector<SampleSet> RunPass(int clients) {
  ServerConfig config;
  config.port = 0;
  config.service.num_workers = kServerWorkers;
  config.service.max_queue_depth = 0;  // Unbounded: the bench never sheds.
  auto server = QdmServer::Start(config);
  QDM_CHECK(server.ok()) << server.status();

  std::vector<SampleSet> results(kJobs);
  std::vector<std::thread> threads;
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([&server, &results, c, clients] {
      QdmClient client((*server)->port());
      for (int j = c; j < kJobs; j += clients) {
        auto result = client.Solve("simulated_annealing",
                                   MakeQubo(kVariables, 17 + j),
                                   JobOptions(1000 + j));
        QDM_CHECK(result.ok()) << result.status();
        results[j] = std::move(*result);
      }
    });
  }
  for (auto& thread : threads) thread.join();
  (*server)->Stop();
  return results;
}

}  // namespace

int main(int argc, char** argv) {
  const qdm_bench::SweepFlags flags = qdm_bench::ParseSweepFlags(argc, argv);

  qdm_bench::RunThreadSweep<std::vector<SampleSet>>(
      "Network front-end throughput (loopback qdmd, 4 server workers, "
      "48 remote simulated-annealing jobs, 24 variables)",
      kJobs, "jobs/s", [](int clients) { return RunPass(clients); },
      [](const std::vector<SampleSet>& a, const std::vector<SampleSet>& b) {
        if (a.size() != b.size()) return false;
        for (size_t i = 0; i < a.size(); ++i) {
          if (!SampleSetsEqual(a[i], b[i])) return false;
        }
        return true;
      },
      "net_jobs_per_s", flags);
  return 0;
}
