// E15 -- Table I row [27] (Winker et al., BiDEDE'23): join ordering as a
// learning problem with a variational quantum circuit. Regenerates the
// learning-curve table: episode cost over training windows, plus the final
// deployed plan against random / greedy / DP-optimal baselines.

#include <cstdio>

#include "qdm/common/rng.h"
#include "qdm/common/strings.h"
#include "qdm/common/table_printer.h"
#include "qdm/db/join_optimizer.h"
#include "qdm/qml/vqc_join_agent.h"
#include "qdm/qopt/join_order_qubo.h"

int main() {
  qdm::Rng rng(2024);

  qdm::TablePrinter curve({"query", "episodes 1-30", "episodes 61-90",
                           "final 30", "best visited", "proxy optimum"});
  qdm::TablePrinter plans(
      {"query", "vqc best/opt", "greedy/opt", "random/opt"});

  for (int q = 0; q < 3; ++q) {
    qdm::db::JoinGraph g = qdm::db::MakeRandomQuery(
        q == 0 ? qdm::db::QueryShape::kChain
               : (q == 1 ? qdm::db::QueryShape::kStar
                         : qdm::db::QueryShape::kCycle),
        5, &rng);
    qdm::qml::VqcJoinOrderAgent::Options options;
    options.episodes = 150;
    qdm::qml::VqcJoinOrderAgent agent(g, options, &rng);
    auto stats = agent.Train();

    auto window_mean = [&](int from, int count) {
      double total = 0;
      for (int e = from; e < from + count; ++e) total += stats.episode_costs[e];
      return total / count;
    };
    const double proxy_opt =
        qdm::qopt::LogCostProxy(qdm::qopt::OptimalOrderUnderProxy(g), g);
    curve.AddRow({qdm::StrFormat("Q%d", q),
                  qdm::StrFormat("%.2f", window_mean(0, 30)),
                  qdm::StrFormat("%.2f", window_mean(60, 30)),
                  qdm::StrFormat("%.2f", window_mean(120, 30)),
                  qdm::StrFormat("%.2f", agent.BestVisitedCost()),
                  qdm::StrFormat("%.2f", proxy_opt)});

    // Deployed-plan quality in true C_out terms.
    const double optimal = qdm::db::OptimalLeftDeepPlan(g).cost;
    const double vqc_cost =
        qdm::db::PermutationCost(agent.BestVisitedOrder(), g);
    const double greedy_cost = qdm::db::GreedyOperatorOrdering(g).cost;
    double random_cost = 0;
    for (int t = 0; t < 50; ++t) {
      random_cost += qdm::db::RandomLeftDeepPlan(g, &rng).cost;
    }
    random_cost /= 50;
    plans.AddRow({qdm::StrFormat("Q%d", q),
                  qdm::StrFormat("%.2f", vqc_cost / optimal),
                  qdm::StrFormat("%.2f", greedy_cost / optimal),
                  qdm::StrFormat("%.2f", random_cost / optimal)});
  }

  std::printf("E15: VQC Q-learning for join ordering -- learning curves\n%s\n",
              curve.ToString().c_str());
  std::printf("Deployed plan quality (C_out ratio to left-deep optimum):\n%s\n",
              plans.ToString().c_str());
  std::printf("Shape check: later training windows at or below early ones;\n"
              "best-visited plans near the proxy optimum and well below the\n"
              "random baseline, consistent with [27]'s reported behaviour.\n");
  return 0;
}
