// Async solver service throughput sweep. Drives the SolverService with a
// fixed portfolio of small simulated-annealing jobs submitted from two
// producer threads, sweeping the service worker cap over {1, 2, 4, 8}, and
// asserts the determinism contract at bench runtime: every job's async
// SampleSet is bit-identical to the 1-worker reference batch (which itself
// matches the synchronous path — service_test.cc proves that leg).
//
// Perf-gate metrics (scripts/perf_gate.py, ratio-compared):
//   service_jobs_per_s_t<W>  completed jobs/s with W service workers.
//
// Usage mirrors the other sweeps: --sweep-only --json PATH for CI.

#include <thread>
#include <vector>

#include "qdm/anneal/qubo.h"
#include "qdm/anneal/sampler.h"
#include "qdm/anneal/solver.h"
#include "qdm/common/check.h"
#include "qdm/common/rng.h"
#include "qdm/service/solver_service.h"
#include "sweep_util.h"

namespace {

using qdm::Rng;
using qdm::anneal::Qubo;
using qdm::anneal::SampleSet;
using qdm::anneal::SolverOptions;
using qdm::service::JobId;
using qdm::service::ServiceConfig;
using qdm::service::ServiceStats;
using qdm::service::SolverService;

constexpr int kJobs = 48;
constexpr int kProducers = 2;
constexpr int kVariables = 24;

Qubo MakeQubo(int num_variables, uint64_t seed) {
  Rng rng(seed);
  Qubo qubo(num_variables);
  for (int i = 0; i < num_variables; ++i) {
    qubo.AddLinear(i, rng.Uniform(-1, 1));
    for (int j = i + 1; j < num_variables; ++j) {
      qubo.AddQuadratic(i, j, rng.Uniform(-1, 1));
    }
  }
  return qubo;
}

SolverOptions JobOptions(uint64_t seed) {
  SolverOptions options;
  options.num_reads = 4;
  options.num_sweeps = 200;
  options.seed = seed;
  return options;
}

bool SampleSetsEqual(const SampleSet& a, const SampleSet& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a.samples()[i].energy != b.samples()[i].energy ||
        a.samples()[i].assignment != b.samples()[i].assignment) {
      return false;
    }
  }
  return true;
}

// One timed pass: kProducers threads submit kJobs jobs into a service with
// `workers` worker tasks, then every job is awaited. Returns the results in
// job order (independent of completion order, by construction of the ids).
std::vector<SampleSet> RunPass(int workers) {
  SolverService service(ServiceConfig{workers, /*max_queue_depth=*/0, 0});
  std::vector<JobId> ids(kJobs);
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&service, &ids, p] {
      for (int j = p; j < kJobs; j += kProducers) {
        auto submitted =
            service.Submit("simulated_annealing", MakeQubo(kVariables, 17 + j),
                           JobOptions(1000 + j));
        QDM_CHECK(submitted.ok()) << submitted.status();
        ids[j] = submitted->id;
      }
    });
  }
  for (auto& producer : producers) producer.join();

  std::vector<SampleSet> results;
  results.reserve(kJobs);
  for (int j = 0; j < kJobs; ++j) {
    auto result = service.Wait(ids[j]);
    QDM_CHECK(result.ok()) << result.status();
    QDM_CHECK(result->size() == 1);
    results.push_back(std::move((*result)[0]));
  }

  const ServiceStats stats = service.stats();
  QDM_CHECK(stats.submitted == static_cast<uint64_t>(kJobs));
  QDM_CHECK(stats.completed == static_cast<uint64_t>(kJobs));
  QDM_CHECK(stats.queued + stats.running + stats.completed + stats.cancelled +
                stats.deadline_exceeded ==
            stats.submitted)
      << "stats conservation violated";
  return results;
}

}  // namespace

int main(int argc, char** argv) {
  const qdm_bench::SweepFlags flags = qdm_bench::ParseSweepFlags(argc, argv);

  qdm_bench::RunThreadSweep<std::vector<SampleSet>>(
      "Async solver service throughput "
      "(2 producers x 48 simulated-annealing jobs, 24 variables)",
      kJobs, "jobs/s", [](int workers) { return RunPass(workers); },
      [](const std::vector<SampleSet>& a, const std::vector<SampleSet>& b) {
        if (a.size() != b.size()) return false;
        for (size_t i = 0; i < a.size(); ++i) {
          if (!SampleSetsEqual(a[i], b[i])) return false;
        }
        return true;
      },
      "service_jobs_per_s", flags);
  return 0;
}
