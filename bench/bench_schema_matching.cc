// E6 -- Table I row [28] (Fritsch & Scherzinger, VLDB'23): schema matching as
// QUBO on quantum hardware. Regenerates the quality table: QUBO ground truth
// (exact solver), annealing, and QAOA against the Hungarian optimum and the
// greedy baseline, over instance sizes and noise levels.

#include <cstdio>

#include "qdm/anneal/solver.h"
#include "qdm/common/rng.h"
#include "qdm/common/strings.h"
#include "qdm/common/table_printer.h"
#include "qdm/qopt/schema_matching.h"

int main() {
  qdm::Rng rng(2024);
  qdm::TablePrinter table({"attrs", "noise", "hungarian", "qubo-exact",
                           "anneal", "qaoa", "greedy"});

  for (int n : {3, 4, 5, 6}) {
    for (double noise : {0.05, 0.2}) {
      const int kSeeds = 6;
      double hungarian = 0, exact = 0, anneal = 0, qaoa_sim = 0, greedy = 0;
      for (int seed = 0; seed < kSeeds; ++seed) {
        auto problem = qdm::qopt::GenerateSchemaMatching(n, n, noise, &rng);
        hungarian += qdm::qopt::HungarianMatching(problem).total_similarity;
        greedy += qdm::qopt::GreedyMatching(problem).total_similarity;

        // All QUBO arms dispatch by name through the QuboSolver registry.
        if (problem.num_variables() <= 25) {
          qdm::anneal::SolverOptions exact_options;
          exact_options.num_reads = 1;
          auto ground = qdm::qopt::SolveSchemaMatching(problem, "exact",
                                                       exact_options);
          QDM_CHECK(ground.ok()) << ground.status();
          exact += ground->total_similarity;
        }

        qdm::anneal::SolverOptions anneal_options;
        anneal_options.num_sweeps = 600;
        anneal_options.num_reads = 20;
        anneal_options.rng = &rng;
        auto decoded = qdm::qopt::SolveSchemaMatching(
            problem, "simulated_annealing", anneal_options);
        QDM_CHECK(decoded.ok()) << decoded.status();
        anneal += decoded->feasible ? decoded->total_similarity : 0.0;

        // QAOA only on the smallest instances (n*n simulated qubits).
        if (n <= 4) {
          qdm::anneal::SolverOptions qaoa_options;
          qaoa_options.layers = 2;
          qaoa_options.restarts = 2;
          qaoa_options.num_reads = 30;
          qaoa_options.rng = &rng;
          auto qaoa_decoded =
              qdm::qopt::SolveSchemaMatching(problem, "qaoa", qaoa_options);
          QDM_CHECK(qaoa_decoded.ok()) << qaoa_decoded.status();
          qaoa_sim +=
              qaoa_decoded->feasible ? qaoa_decoded->total_similarity : 0.0;
        }
      }
      table.AddRow(
          {qdm::StrFormat("%dx%d", n, n), qdm::StrFormat("%.2f", noise),
           qdm::StrFormat("%.3f", hungarian / kSeeds),
           n * n <= 25 ? qdm::StrFormat("%.3f", exact / kSeeds) : "-",
           qdm::StrFormat("%.3f", anneal / kSeeds),
           n <= 4 ? qdm::StrFormat("%.3f", qaoa_sim / kSeeds) : "-",
           qdm::StrFormat("%.3f", greedy / kSeeds)});
    }
  }
  std::printf("E6: schema matching total similarity (higher is better)\n%s\n",
              table.ToString().c_str());
  std::printf("Shape check: qubo-exact == hungarian (the encoding is exact);\n"
              "anneal tracks it closely; greedy trails on noisy instances.\n");
  return 0;
}
