// E6 -- Table I row [28] (Fritsch & Scherzinger, VLDB'23): schema matching as
// QUBO on quantum hardware. Regenerates the quality table: QUBO ground truth
// (exact solver), annealing, and QAOA against the Hungarian optimum and the
// greedy baseline, over instance sizes and noise levels.

#include <cstdio>

#include "qdm/algo/qaoa.h"
#include "qdm/anneal/exact_solver.h"
#include "qdm/anneal/simulated_annealing.h"
#include "qdm/common/rng.h"
#include "qdm/common/strings.h"
#include "qdm/common/table_printer.h"
#include "qdm/qopt/schema_matching.h"

int main() {
  qdm::Rng rng(2024);
  qdm::TablePrinter table({"attrs", "noise", "hungarian", "qubo-exact",
                           "anneal", "qaoa", "greedy"});

  for (int n : {3, 4, 5, 6}) {
    for (double noise : {0.05, 0.2}) {
      const int kSeeds = 6;
      double hungarian = 0, exact = 0, anneal = 0, qaoa_sim = 0, greedy = 0;
      for (int seed = 0; seed < kSeeds; ++seed) {
        auto problem = qdm::qopt::GenerateSchemaMatching(n, n, noise, &rng);
        hungarian += qdm::qopt::HungarianMatching(problem).total_similarity;
        greedy += qdm::qopt::GreedyMatching(problem).total_similarity;

        qdm::anneal::Qubo qubo = qdm::qopt::SchemaMatchingToQubo(problem);
        if (qubo.num_variables() <= 25) {
          auto ground = qdm::anneal::ExactSolver::Solve(qubo);
          exact += qdm::qopt::DecodeMatching(problem, ground.assignment)
                       .total_similarity;
        }

        qdm::anneal::SimulatedAnnealer annealer(
            qdm::anneal::AnnealSchedule{.num_sweeps = 600});
        auto samples = annealer.SampleQubo(qubo, 20, &rng);
        auto decoded =
            qdm::qopt::DecodeMatching(problem, samples.best().assignment);
        anneal += decoded.feasible ? decoded.total_similarity : 0.0;

        // QAOA only on the smallest instances (n*n simulated qubits).
        if (n <= 4) {
          qdm::algo::QaoaSampler sampler(
              qdm::algo::QaoaSampler::Options{.layers = 2, .restarts = 2});
          auto qaoa_samples = sampler.SampleQubo(qubo, 30, &rng);
          auto qaoa_decoded =
              qdm::qopt::DecodeMatching(problem, qaoa_samples.best().assignment);
          qaoa_sim += qaoa_decoded.feasible ? qaoa_decoded.total_similarity : 0.0;
        }
      }
      table.AddRow(
          {qdm::StrFormat("%dx%d", n, n), qdm::StrFormat("%.2f", noise),
           qdm::StrFormat("%.3f", hungarian / kSeeds),
           n * n <= 25 ? qdm::StrFormat("%.3f", exact / kSeeds) : "-",
           qdm::StrFormat("%.3f", anneal / kSeeds),
           n <= 4 ? qdm::StrFormat("%.3f", qaoa_sim / kSeeds) : "-",
           qdm::StrFormat("%.3f", greedy / kSeeds)});
    }
  }
  std::printf("E6: schema matching total similarity (higher is better)\n%s\n",
              table.ToString().c_str());
  std::printf("Shape check: qubo-exact == hungarian (the encoding is exact);\n"
              "anneal tracks it closely; greedy trails on noisy instances.\n");
  return 0;
}
