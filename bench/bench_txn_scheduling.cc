// E7 -- Table I rows [29-31] (Bittner & Groppe; Groppe & Groppe): transaction
// scheduling by quantum annealing / Grover search to avoid 2PL blocking.
// Regenerates the blocking table: wait steps under strict two-phase locking
// for the naive single-slot schedule, greedy coloring, QUBO + annealing, and
// Grover minimum search (small instances), plus achieved makespans.

#include <cstdio>
#include <vector>

#include "qdm/anneal/solver.h"
#include "qdm/common/rng.h"
#include "qdm/common/strings.h"
#include "qdm/common/table_printer.h"
#include "qdm/qopt/txn_scheduling.h"
#include "sweep_util.h"

namespace {

// Epoch fan-out sweep: a stream of per-epoch transaction batches (one QUBO
// per epoch, as in Bittner & Groppe's continuous scheduler) dispatched
// through qopt::SolveTxnScheduleEpochs at increasing pool widths. items/s
// (epochs per second) is the CI perf-gate metric; results are checked
// bit-identical across thread counts (seed + index derivation).
void RunEpochSweep(const qdm_bench::SweepFlags& flags) {
  const int kEpochs = 32;
  qdm::Rng gen_rng(7);
  std::vector<qdm::qopt::TxnScheduleProblem> epochs;
  epochs.reserve(kEpochs);
  for (int e = 0; e < kEpochs; ++e) {
    epochs.push_back(
        qdm::qopt::GenerateTxnSchedule(8, 8, 2, /*num_slots=*/0, &gen_rng));
  }
  qdm::anneal::SolverOptions options;
  options.num_reads = 10;
  options.num_sweeps = 600;
  options.seed = 7;

  using Batch = std::vector<qdm::qopt::Schedule>;
  qdm_bench::RunThreadSweep<Batch>(
      "Epoch sweep: 32 scheduling epochs (8 txns each) through\n"
      "SolveTxnScheduleEpochs on simulated_annealing, seed-derived per\n"
      "epoch (bit-identical at every thread count).",
      kEpochs, "epochs/s",
      [&epochs, &options](int threads) {
        auto schedules = qdm::qopt::SolveTxnScheduleEpochs(
            epochs, "simulated_annealing", options, 0.0, 1.0, threads);
        QDM_CHECK(schedules.ok()) << schedules.status();
        return *schedules;
      },
      [](const Batch& a, const Batch& b) {
        if (a.size() != b.size()) return false;
        for (size_t i = 0; i < a.size(); ++i) {
          if (a[i].slot_of_txn != b[i].slot_of_txn) return false;
        }
        return true;
      },
      "txn_epochs_items_per_s", flags);
}

}  // namespace

int main(int argc, char** argv) {
  const qdm_bench::SweepFlags flags = qdm_bench::ParseSweepFlags(argc, argv);
  if (flags.sweep_only) {
    RunEpochSweep(flags);
    return 0;
  }
  qdm::Rng rng(2024);
  qdm::TablePrinter table({"txns", "conflicts", "naive wait", "greedy wait",
                           "anneal wait", "grover wait", "greedy span",
                           "anneal span", "grover span"});

  for (int txns : {4, 6, 8, 10}) {
    const int kSeeds = 5;
    double naive_wait = 0, greedy_wait = 0, anneal_wait = 0, grover_wait = 0;
    double greedy_span = 0, anneal_span = 0, grover_span = 0;
    double conflicts = 0;
    bool grover_ran = false;
    for (int seed = 0; seed < kSeeds; ++seed) {
      auto problem = qdm::qopt::GenerateTxnSchedule(
          txns, txns, 2, /*num_slots=*/0, &rng);
      conflicts += static_cast<double>(problem.ConflictPairs().size());

      qdm::qopt::Schedule naive;
      naive.slot_of_txn.assign(problem.num_txns(), 0);
      naive.feasible = true;
      naive.makespan = 1;
      naive_wait += qdm::qopt::SimulateTwoPhaseLocking(problem, naive)
                        .total_wait_steps;

      qdm::qopt::Schedule greedy = qdm::qopt::GreedyColoringSchedule(problem);
      greedy_wait += qdm::qopt::SimulateTwoPhaseLocking(problem, greedy)
                         .total_wait_steps;
      greedy_span += greedy.makespan;

      // Both quantum arms dispatch through the QuboSolver registry.
      qdm::anneal::SolverOptions anneal_options;
      anneal_options.num_sweeps = 1500;
      anneal_options.num_reads = 30;
      anneal_options.rng = &rng;
      auto annealed = qdm::qopt::SolveTxnSchedule(problem,
                                                  "simulated_annealing",
                                                  anneal_options);
      QDM_CHECK(annealed.ok()) << annealed.status();
      if (annealed->feasible) {
        anneal_wait += qdm::qopt::SimulateTwoPhaseLocking(problem, *annealed)
                           .total_wait_steps;
        anneal_span += annealed->makespan;
      }

      // Grover minimum search (Groppe & Groppe '21) where the register fits.
      if (problem.num_variables() <= 16) {
        grover_ran = true;
        qdm::anneal::SolverOptions grover_options;
        grover_options.num_reads = 3;
        grover_options.rng = &rng;
        auto gschedule =
            qdm::qopt::SolveTxnSchedule(problem, "grover_min", grover_options);
        QDM_CHECK(gschedule.ok()) << gschedule.status();
        if (gschedule->feasible) {
          grover_wait += qdm::qopt::SimulateTwoPhaseLocking(problem, *gschedule)
                             .total_wait_steps;
          grover_span += gschedule->makespan;
        }
      }
    }
    table.AddRow({qdm::StrFormat("%d", txns),
                  qdm::StrFormat("%.1f", conflicts / kSeeds),
                  qdm::StrFormat("%.1f", naive_wait / kSeeds),
                  qdm::StrFormat("%.1f", greedy_wait / kSeeds),
                  qdm::StrFormat("%.1f", anneal_wait / kSeeds),
                  grover_ran ? qdm::StrFormat("%.1f", grover_wait / kSeeds)
                             : "-",
                  qdm::StrFormat("%.1f", greedy_span / kSeeds),
                  qdm::StrFormat("%.1f", anneal_span / kSeeds),
                  grover_ran ? qdm::StrFormat("%.1f", grover_span / kSeeds)
                             : "-"});
  }
  std::printf("E7: 2PL blocking (total wait steps) by scheduler\n%s\n",
              table.ToString().c_str());
  std::printf("Shape check: naive blocking grows with conflicts; every\n"
              "optimized schedule eliminates blocking entirely (0 waits),\n"
              "the headline claim of [29, 30]; annealed makespans stay close\n"
              "to greedy coloring.\n\n");
  RunEpochSweep(flags);
  return 0;
}
