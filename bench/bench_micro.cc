// Microbenchmarks (google-benchmark) for the toolkit's hot paths: gate
// application, annealing sweeps, QUBO construction, DP join optimization and
// hash-join execution. These are engineering benchmarks, not paper
// experiments; they track the substrate's raw speed.

#include <benchmark/benchmark.h>

#include "qdm/anneal/solver.h"
#include "qdm/circuit/circuit.h"
#include "qdm/common/rng.h"
#include "qdm/db/executor.h"
#include "qdm/db/join_optimizer.h"
#include "qdm/db/workload.h"
#include "qdm/qopt/mqo.h"
#include "qdm/sim/statevector.h"

namespace {

void BM_Hadamard1Q(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  qdm::sim::Statevector sv(n);
  const qdm::linalg::Matrix h =
      qdm::circuit::SingleQubitMatrix(qdm::circuit::GateKind::kH, {});
  for (auto _ : state) {
    for (int q = 0; q < n; ++q) sv.Apply1Q(h, q);
    benchmark::DoNotOptimize(sv.amplitudes().data());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_Hadamard1Q)->Arg(10)->Arg(16)->Arg(20);

// The two ApplyDiagonalPhase paths: per-element std::function indirection vs
// a precomputed diagonal. The precomputed overload is the hot path of the
// QAOA/Grover inner loops; the benchmark first asserts both paths produce
// the same state, then measures each.
void BM_DiagonalPhaseFunction(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const uint64_t dim = uint64_t{1} << n;
  std::vector<double> diagonal(dim);
  for (uint64_t z = 0; z < dim; ++z) {
    diagonal[z] = 0.01 * static_cast<double>(z % 97);
  }
  qdm::sim::Statevector sv(n);
  for (auto _ : state) {
    sv.ApplyDiagonalPhase([&](uint64_t z) { return -0.5 * diagonal[z]; });
    benchmark::DoNotOptimize(sv.amplitudes().data());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(dim));
}
BENCHMARK(BM_DiagonalPhaseFunction)->Arg(16)->Arg(20);

void BM_DiagonalPhasePrecomputed(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const uint64_t dim = uint64_t{1} << n;
  std::vector<double> diagonal(dim);
  for (uint64_t z = 0; z < dim; ++z) {
    diagonal[z] = 0.01 * static_cast<double>(z % 97);
  }
  // Assertion: the precomputed overload matches the std::function path.
  {
    qdm::sim::Statevector via_function(n);
    qdm::sim::Statevector via_diagonal(n);
    via_function.ApplyDiagonalPhase(
        [&](uint64_t z) { return -0.5 * diagonal[z]; });
    via_diagonal.ApplyDiagonalPhase(diagonal, -0.5);
    QDM_CHECK_GT(via_function.FidelityWith(via_diagonal), 1.0 - 1e-12)
        << "precomputed-diagonal fast path diverged from the callable path";
  }
  qdm::sim::Statevector sv(n);
  for (auto _ : state) {
    sv.ApplyDiagonalPhase(diagonal, -0.5);
    benchmark::DoNotOptimize(sv.amplitudes().data());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(dim));
}
BENCHMARK(BM_DiagonalPhasePrecomputed)->Arg(16)->Arg(20);

// Thread sweep over the parallel gate kernels on a 20-qubit state (the
// regime the QAOA/Grover workloads bottleneck in). Serial cutoff is forced
// low so every row times the same dispatch path; threads=1 is the serial
// baseline the perf gate compares the parallel rows against. Each sweep
// first asserts the parallel state is bit-identical to the serial one —
// the kernel-level determinism guarantee, measured where it is claimed.
void BM_Hadamard1QThreads(benchmark::State& state) {
  const int n = 20;
  const int threads = static_cast<int>(state.range(0));
  const qdm::sim::ExecutionConfig config{threads, /*serial_cutoff=*/2};
  const qdm::linalg::Matrix h =
      qdm::circuit::SingleQubitMatrix(qdm::circuit::GateKind::kH, {});
  {
    qdm::sim::Statevector serial(n);
    serial.set_execution_config({1, 2});
    qdm::sim::Statevector parallel(n);
    parallel.set_execution_config(config);
    for (int q = 0; q < n; ++q) serial.Apply1Q(h, q);
    for (int q = 0; q < n; ++q) parallel.Apply1Q(h, q);
    QDM_CHECK(serial.amplitudes() == parallel.amplitudes())
        << "parallel Apply1Q diverged from the serial kernel";
  }
  qdm::sim::Statevector sv(n);
  sv.set_execution_config(config);
  for (auto _ : state) {
    for (int q = 0; q < n; ++q) sv.Apply1Q(h, q);
    benchmark::DoNotOptimize(sv.amplitudes().data());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_Hadamard1QThreads)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->UseRealTime();

void BM_DiagonalPhaseThreads(benchmark::State& state) {
  const int n = 20;
  const int threads = static_cast<int>(state.range(0));
  const uint64_t dim = uint64_t{1} << n;
  std::vector<double> diagonal(dim);
  for (uint64_t z = 0; z < dim; ++z) {
    diagonal[z] = 0.01 * static_cast<double>(z % 97);
  }
  const qdm::sim::ExecutionConfig config{threads, /*serial_cutoff=*/2};
  {
    qdm::sim::Statevector serial(n);
    serial.set_execution_config({1, 2});
    qdm::sim::Statevector parallel(n);
    parallel.set_execution_config(config);
    serial.ApplyDiagonalPhase(diagonal, -0.5);
    parallel.ApplyDiagonalPhase(diagonal, -0.5);
    QDM_CHECK(serial.amplitudes() == parallel.amplitudes())
        << "parallel ApplyDiagonalPhase diverged from the serial kernel";
  }
  qdm::sim::Statevector sv(n);
  sv.set_execution_config(config);
  for (auto _ : state) {
    sv.ApplyDiagonalPhase(diagonal, -0.5);
    benchmark::DoNotOptimize(sv.amplitudes().data());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(dim));
}
BENCHMARK(BM_DiagonalPhaseThreads)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->UseRealTime();

void BM_CnotLadder(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  qdm::circuit::Circuit c(n);
  c.H(0);
  for (int q = 0; q + 1 < n; ++q) c.CX(q, q + 1);
  for (auto _ : state) {
    qdm::sim::Statevector sv = qdm::sim::RunCircuit(c);
    benchmark::DoNotOptimize(sv.amplitudes().data());
  }
}
BENCHMARK(BM_CnotLadder)->Arg(12)->Arg(18);

void BM_AnnealSweeps(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  qdm::Rng rng(1);
  qdm::anneal::Qubo qubo(n);
  for (int i = 0; i < n; ++i) qubo.AddLinear(i, rng.Uniform(-1, 1));
  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < n && j < i + 8; ++j) {
      qubo.AddQuadratic(i, j, rng.Uniform(-1, 1));
    }
  }
  auto annealer =
      qdm::anneal::SolverRegistry::Global().Create("simulated_annealing");
  QDM_CHECK(annealer.ok()) << annealer.status();
  qdm::anneal::SolverOptions options;
  options.num_reads = 1;
  options.num_sweeps = 100;
  options.rng = &rng;
  for (auto _ : state) {
    auto set = (*annealer)->Solve(qubo, options);
    benchmark::DoNotOptimize(set->best().energy);
  }
  state.SetItemsProcessed(state.iterations() * 100 * n);  // Flips proposed.
}
BENCHMARK(BM_AnnealSweeps)->Arg(64)->Arg(256)->Arg(1024);

void BM_MqoQuboBuild(benchmark::State& state) {
  qdm::Rng rng(2);
  auto problem = qdm::qopt::GenerateMqoProblem(
      static_cast<int>(state.range(0)), 3, 0.3, &rng);
  for (auto _ : state) {
    auto qubo = qdm::qopt::MqoToQubo(problem);
    benchmark::DoNotOptimize(qubo.num_variables());
  }
}
BENCHMARK(BM_MqoQuboBuild)->Arg(8)->Arg(32);

void BM_OptimalBushyPlan(benchmark::State& state) {
  qdm::Rng rng(3);
  auto graph = qdm::db::JoinGraph::RandomClique(
      static_cast<int>(state.range(0)), &rng);
  for (auto _ : state) {
    auto plan = qdm::db::OptimalBushyPlan(graph);
    benchmark::DoNotOptimize(plan.cost);
  }
}
BENCHMARK(BM_OptimalBushyPlan)->Arg(8)->Arg(12);

void BM_HashJoinExecution(benchmark::State& state) {
  qdm::Rng rng(4);
  auto workload = qdm::db::GenerateJoinWorkload(
      qdm::db::QueryShape::kChain, 4,
      qdm::db::WorkloadOptions{.min_rows = 100, .max_rows = 400}, &rng);
  auto plan = qdm::db::OptimalLeftDeepPlan(workload.graph);
  for (auto _ : state) {
    auto result =
        qdm::db::ExecuteJoinTree(plan.tree, workload.graph, workload.catalog);
    benchmark::DoNotOptimize(result->num_rows());
  }
}
BENCHMARK(BM_HashJoinExecution);

}  // namespace

BENCHMARK_MAIN();
