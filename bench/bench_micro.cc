// Microbenchmarks (google-benchmark) for the toolkit's hot paths: gate
// application, annealing sweeps, QUBO construction, DP join optimization and
// hash-join execution. These are engineering benchmarks, not paper
// experiments; they track the substrate's raw speed.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <limits>
#include <memory>
#include <utility>
#include <vector>

#include "qdm/anneal/backend_cache.h"
#include "qdm/anneal/embedded_solver.h"
#include "qdm/anneal/embedding.h"
#include "qdm/anneal/solver.h"
#include "qdm/anneal/topology.h"
#include "qdm/circuit/circuit.h"
#include "qdm/common/rng.h"
#include "qdm/db/executor.h"
#include "qdm/db/join_optimizer.h"
#include "qdm/db/workload.h"
#include "qdm/qopt/mqo.h"
#include "qdm/sim/statevector.h"

namespace {

void BM_Hadamard1Q(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  qdm::sim::Statevector sv(n);
  const qdm::linalg::Matrix h =
      qdm::circuit::SingleQubitMatrix(qdm::circuit::GateKind::kH, {});
  for (auto _ : state) {
    for (int q = 0; q < n; ++q) sv.Apply1Q(h, q);
    benchmark::DoNotOptimize(sv.amplitudes().data());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_Hadamard1Q)->Arg(10)->Arg(16)->Arg(20);

// The two ApplyDiagonalPhase paths: per-element std::function indirection vs
// a precomputed diagonal. The precomputed overload is the hot path of the
// QAOA/Grover inner loops; the benchmark first asserts both paths produce
// the same state, then measures each.
void BM_DiagonalPhaseFunction(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const uint64_t dim = uint64_t{1} << n;
  std::vector<double> diagonal(dim);
  for (uint64_t z = 0; z < dim; ++z) {
    diagonal[z] = 0.01 * static_cast<double>(z % 97);
  }
  qdm::sim::Statevector sv(n);
  for (auto _ : state) {
    sv.ApplyDiagonalPhase([&](uint64_t z) { return -0.5 * diagonal[z]; });
    benchmark::DoNotOptimize(sv.amplitudes().data());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(dim));
}
BENCHMARK(BM_DiagonalPhaseFunction)->Arg(16)->Arg(20);

void BM_DiagonalPhasePrecomputed(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const uint64_t dim = uint64_t{1} << n;
  std::vector<double> diagonal(dim);
  for (uint64_t z = 0; z < dim; ++z) {
    diagonal[z] = 0.01 * static_cast<double>(z % 97);
  }
  // Assertion: the precomputed overload matches the std::function path.
  {
    qdm::sim::Statevector via_function(n);
    qdm::sim::Statevector via_diagonal(n);
    via_function.ApplyDiagonalPhase(
        [&](uint64_t z) { return -0.5 * diagonal[z]; });
    via_diagonal.ApplyDiagonalPhase(diagonal, -0.5);
    QDM_CHECK_GT(via_function.FidelityWith(via_diagonal), 1.0 - 1e-12)
        << "precomputed-diagonal fast path diverged from the callable path";
  }
  qdm::sim::Statevector sv(n);
  for (auto _ : state) {
    sv.ApplyDiagonalPhase(diagonal, -0.5);
    benchmark::DoNotOptimize(sv.amplitudes().data());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(dim));
}
BENCHMARK(BM_DiagonalPhasePrecomputed)->Arg(16)->Arg(20);

// Thread sweep over the parallel gate kernels on a 20-qubit state (the
// regime the QAOA/Grover workloads bottleneck in). Serial cutoff is forced
// low so every row times the same dispatch path; threads=1 is the serial
// baseline the perf gate compares the parallel rows against. Each sweep
// first asserts the parallel state is bit-identical to the serial one —
// the kernel-level determinism guarantee, measured where it is claimed.
void BM_Hadamard1QThreads(benchmark::State& state) {
  const int n = 20;
  const int threads = static_cast<int>(state.range(0));
  const qdm::sim::ExecutionConfig config{threads, /*serial_cutoff=*/2};
  const qdm::linalg::Matrix h =
      qdm::circuit::SingleQubitMatrix(qdm::circuit::GateKind::kH, {});
  {
    qdm::sim::Statevector serial(n);
    serial.set_execution_config({1, 2});
    qdm::sim::Statevector parallel(n);
    parallel.set_execution_config(config);
    for (int q = 0; q < n; ++q) serial.Apply1Q(h, q);
    for (int q = 0; q < n; ++q) parallel.Apply1Q(h, q);
    QDM_CHECK(serial.amplitudes() == parallel.amplitudes())
        << "parallel Apply1Q diverged from the serial kernel";
  }
  qdm::sim::Statevector sv(n);
  sv.set_execution_config(config);
  for (auto _ : state) {
    for (int q = 0; q < n; ++q) sv.Apply1Q(h, q);
    benchmark::DoNotOptimize(sv.amplitudes().data());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_Hadamard1QThreads)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->UseRealTime();

void BM_DiagonalPhaseThreads(benchmark::State& state) {
  const int n = 20;
  const int threads = static_cast<int>(state.range(0));
  const uint64_t dim = uint64_t{1} << n;
  std::vector<double> diagonal(dim);
  for (uint64_t z = 0; z < dim; ++z) {
    diagonal[z] = 0.01 * static_cast<double>(z % 97);
  }
  const qdm::sim::ExecutionConfig config{threads, /*serial_cutoff=*/2};
  {
    qdm::sim::Statevector serial(n);
    serial.set_execution_config({1, 2});
    qdm::sim::Statevector parallel(n);
    parallel.set_execution_config(config);
    serial.ApplyDiagonalPhase(diagonal, -0.5);
    parallel.ApplyDiagonalPhase(diagonal, -0.5);
    QDM_CHECK(serial.amplitudes() == parallel.amplitudes())
        << "parallel ApplyDiagonalPhase diverged from the serial kernel";
  }
  qdm::sim::Statevector sv(n);
  sv.set_execution_config(config);
  for (auto _ : state) {
    sv.ApplyDiagonalPhase(diagonal, -0.5);
    benchmark::DoNotOptimize(sv.amplitudes().data());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(dim));
}
BENCHMARK(BM_DiagonalPhaseThreads)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->UseRealTime();

// Thread x SIMD sweeps over the controlled-phase and swap kernels ("t" is
// the thread count, "simd" 0/1 forces SimdMode::kScalar / kSimd). These are
// the remaining two hot-kernel families (the QAOA cost layers of compiled
// circuits use controlled phases; qubit routing uses swaps); the sweep rows
// let the perf gate see both the thread scaling and the vector speedup of
// each, and every row first asserts bit-identity against the serial scalar
// reference on a random state — the SIMD contract, measured where it is
// claimed.
qdm::sim::Statevector RandomBenchState(int n, uint64_t seed) {
  qdm::Rng rng(seed);
  std::vector<qdm::Complex> amps(uint64_t{1} << n);
  for (qdm::Complex& a : amps) {
    a = qdm::Complex(rng.Uniform(-1, 1), rng.Uniform(-1, 1));
  }
  return qdm::sim::Statevector::FromAmplitudes(std::move(amps),
                                               /*normalize=*/true);
}

void BM_ControlledPhaseThreads(benchmark::State& state) {
  const int n = 20;
  const int threads = static_cast<int>(state.range(0));
  const qdm::sim::SimdMode simd = state.range(1) != 0
                                      ? qdm::sim::SimdMode::kSimd
                                      : qdm::sim::SimdMode::kScalar;
  const qdm::sim::ExecutionConfig config{threads, /*serial_cutoff=*/2, simd};
  const qdm::linalg::Matrix rz =
      qdm::circuit::SingleQubitMatrix(qdm::circuit::GateKind::kRZ, {0.37});
  const std::vector<int> controls = {3, 17};
  const int target = 11;
  {
    qdm::sim::Statevector serial = RandomBenchState(n, 0xCAFE);
    qdm::sim::Statevector swept = serial;
    serial.set_execution_config({1, 2, qdm::sim::SimdMode::kScalar});
    swept.set_execution_config(config);
    serial.ApplyControlled1Q(controls, target, rz);
    swept.ApplyControlled1Q(controls, target, rz);
    QDM_CHECK(serial.amplitudes() == swept.amplitudes())
        << "ApplyControlled1Q diverged from the serial scalar kernel";
  }
  qdm::sim::Statevector sv = RandomBenchState(n, 0xCAFE);
  sv.set_execution_config(config);
  for (auto _ : state) {
    sv.ApplyControlled1Q(controls, target, rz);
    benchmark::DoNotOptimize(sv.amplitudes().data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(uint64_t{1} << n));
}
BENCHMARK(BM_ControlledPhaseThreads)
    ->ArgsProduct({{1, 2, 4, 8}, {0, 1}})
    ->ArgNames({"t", "simd"})
    ->UseRealTime();

void BM_SwapThreads(benchmark::State& state) {
  const int n = 20;
  const int threads = static_cast<int>(state.range(0));
  const qdm::sim::SimdMode simd = state.range(1) != 0
                                      ? qdm::sim::SimdMode::kSimd
                                      : qdm::sim::SimdMode::kScalar;
  const qdm::sim::ExecutionConfig config{threads, /*serial_cutoff=*/2, simd};
  {
    qdm::sim::Statevector serial = RandomBenchState(n, 0xBEEF);
    qdm::sim::Statevector swept = serial;
    serial.set_execution_config({1, 2, qdm::sim::SimdMode::kScalar});
    swept.set_execution_config(config);
    serial.ApplySwap(2, 18);
    swept.ApplySwap(2, 18);
    QDM_CHECK(serial.amplitudes() == swept.amplitudes())
        << "ApplySwap diverged from the serial scalar kernel";
  }
  qdm::sim::Statevector sv = RandomBenchState(n, 0xBEEF);
  sv.set_execution_config(config);
  for (auto _ : state) {
    sv.ApplySwap(2, 18);
    benchmark::DoNotOptimize(sv.amplitudes().data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(uint64_t{1} << n));
}
BENCHMARK(BM_SwapThreads)
    ->ArgsProduct({{1, 2, 4, 8}, {0, 1}})
    ->ArgNames({"t", "simd"})
    ->UseRealTime();

// Backend-creation cost, cold vs cached (backend_cache.h). Both arms end
// with an embedded:simulated_annealing:pegasus:6 backend READY TO SOLVE a
// kEmbedVars-variable instance — i.e. with its clique-embedding plan
// materialised, which is where the construction cost actually lives (the
// pegasus adjacency itself is computed on demand). The cold arm re-pays
// what every per-instance creation paid before the cache landed: topology
// + fresh plan + base construction per backend. The cached arm is the
// per-worker batch fan-out path after first touch: a registry Create that
// shares the topology, plus the shared_ptr plan lookup that
// EmbeddedSolver::Solve performs with its own topology member.
constexpr int kEmbedVars = 20;  // pegasus:6 clique capacity (4 * (m - 1)).

std::unique_ptr<qdm::anneal::QuboSolver> CreateColdEmbedded() {
  auto topology = qdm::anneal::MakeTopology("pegasus:6");
  QDM_CHECK(topology.ok()) << topology.status();
  auto plan = qdm::anneal::CliqueEmbedding(kEmbedVars, **topology);
  QDM_CHECK(plan.ok()) << plan.status();
  benchmark::DoNotOptimize(plan->chains.data());
  auto base =
      qdm::anneal::SolverRegistry::Global().Create("simulated_annealing");
  QDM_CHECK(base.ok()) << base.status();
  return std::make_unique<qdm::anneal::EmbeddedSolver>(
      "embedded:simulated_annealing:pegasus:6", "simulated_annealing",
      std::move(*base),
      std::shared_ptr<const qdm::anneal::HardwareTopology>(
          std::move(*topology)));
}

std::unique_ptr<qdm::anneal::QuboSolver> CreateCachedEmbedded() {
  auto solver = qdm::anneal::SolverRegistry::Global().Create(
      "embedded:simulated_annealing:pegasus:6");
  QDM_CHECK(solver.ok()) << solver.status();
  // The solver's first Solve fetches the plan through the cache with its
  // own topology member — mirror that lookup here so the arm covers the
  // full "ready to solve kEmbedVars variables" cost.
  static const std::shared_ptr<const qdm::anneal::HardwareTopology> topology =
      [] {
        auto t = qdm::anneal::GetCachedTopology("pegasus:6");
        QDM_CHECK(t.ok()) << t.status();
        return std::move(t).value();
      }();
  auto plan = qdm::anneal::GetCachedCliqueEmbedding(kEmbedVars, *topology);
  QDM_CHECK(plan.ok()) << plan.status();
  benchmark::DoNotOptimize((*plan)->chains.data());
  return std::move(solver).value();
}

// The acceptance contract of the cache — cached creation at least 5x the
// cold items/s — asserted at bench runtime on a short timed pass, so a
// regression to per-creation plan construction aborts the bench run
// instead of waiting for the baseline comparison. Each arm is timed as the
// minimum over interleaved blocks, which discards scheduler interference
// instead of averaging it in.
void CheckCachedCreationSpeedup() {
  static const bool checked = [] {
    (void)CreateCachedEmbedded();  // Warm the cache.
    const int kBlocks = 8;
    const int kRepsPerBlock = 16;
    double cold_ns = std::numeric_limits<double>::infinity();
    double cached_ns = std::numeric_limits<double>::infinity();
    for (int b = 0; b < kBlocks; ++b) {
      const auto t0 = std::chrono::steady_clock::now();
      for (int i = 0; i < kRepsPerBlock; ++i) {
        benchmark::DoNotOptimize(CreateColdEmbedded().get());
      }
      const auto t1 = std::chrono::steady_clock::now();
      for (int i = 0; i < kRepsPerBlock; ++i) {
        benchmark::DoNotOptimize(CreateCachedEmbedded().get());
      }
      const auto t2 = std::chrono::steady_clock::now();
      cold_ns = std::min(
          cold_ns, std::chrono::duration<double, std::nano>(t1 - t0).count());
      cached_ns = std::min(
          cached_ns, std::chrono::duration<double, std::nano>(t2 - t1).count());
    }
    QDM_CHECK(cold_ns >= 5.0 * cached_ns)
        << "cached embedded-backend creation is only "
        << cold_ns / cached_ns << "x the cold path (contract: >= 5x)";
    return true;
  }();
  (void)checked;
}

void BM_BackendCreateCold(benchmark::State& state) {
  CheckCachedCreationSpeedup();
  for (auto _ : state) {
    benchmark::DoNotOptimize(CreateColdEmbedded().get());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BackendCreateCold);

void BM_BackendCreateCached(benchmark::State& state) {
  CheckCachedCreationSpeedup();
  for (auto _ : state) {
    benchmark::DoNotOptimize(CreateCachedEmbedded().get());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BackendCreateCached);

// Portfolio dispatch on a skewed batch (every instance favors the same
// member): the race pays for both members on all 32 instances, while the
// adaptive selector stops paying the losing arm after its 8-instance
// explore window. Same batch, same seeds — items/s is the cost of hedging.
void BM_PortfolioBatch(benchmark::State& state) {
  const bool adaptive = state.range(0) != 0;
  const char* solver = adaptive ? "adaptive:simulated_annealing+tabu_search"
                                : "race:simulated_annealing+tabu_search";
  const int kInstances = 32;
  qdm::Rng gen_rng(21);
  std::vector<qdm::anneal::Qubo> qubos;
  qubos.reserve(kInstances);
  for (int i = 0; i < kInstances; ++i) {
    qubos.push_back(qdm::qopt::MqoToQubo(
        qdm::qopt::GenerateMqoProblem(6, 3, 0.3, &gen_rng)));
  }
  qdm::anneal::SolverOptions options;
  options.num_reads = 5;
  options.num_sweeps = 300;
  options.seed = 21;
  for (auto _ : state) {
    auto sets = qdm::anneal::SolveBatchParallel(solver, qubos, options,
                                                /*num_threads=*/4);
    QDM_CHECK(sets.ok()) << solver << ": " << sets.status();
    benchmark::DoNotOptimize(sets->data());
  }
  state.SetItemsProcessed(state.iterations() * kInstances);
}
BENCHMARK(BM_PortfolioBatch)
    ->Arg(0)
    ->Arg(1)
    ->ArgName("adaptive")
    ->UseRealTime();

void BM_CnotLadder(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  qdm::circuit::Circuit c(n);
  c.H(0);
  for (int q = 0; q + 1 < n; ++q) c.CX(q, q + 1);
  for (auto _ : state) {
    qdm::sim::Statevector sv = qdm::sim::RunCircuit(c);
    benchmark::DoNotOptimize(sv.amplitudes().data());
  }
}
BENCHMARK(BM_CnotLadder)->Arg(12)->Arg(18);

void BM_AnnealSweeps(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  qdm::Rng rng(1);
  qdm::anneal::Qubo qubo(n);
  for (int i = 0; i < n; ++i) qubo.AddLinear(i, rng.Uniform(-1, 1));
  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < n && j < i + 8; ++j) {
      qubo.AddQuadratic(i, j, rng.Uniform(-1, 1));
    }
  }
  auto annealer =
      qdm::anneal::SolverRegistry::Global().Create("simulated_annealing");
  QDM_CHECK(annealer.ok()) << annealer.status();
  qdm::anneal::SolverOptions options;
  options.num_reads = 1;
  options.num_sweeps = 100;
  options.rng = &rng;
  for (auto _ : state) {
    auto set = (*annealer)->Solve(qubo, options);
    benchmark::DoNotOptimize(set->best().energy);
  }
  state.SetItemsProcessed(state.iterations() * 100 * n);  // Flips proposed.
}
BENCHMARK(BM_AnnealSweeps)->Arg(64)->Arg(256)->Arg(1024);

void BM_MqoQuboBuild(benchmark::State& state) {
  qdm::Rng rng(2);
  auto problem = qdm::qopt::GenerateMqoProblem(
      static_cast<int>(state.range(0)), 3, 0.3, &rng);
  for (auto _ : state) {
    auto qubo = qdm::qopt::MqoToQubo(problem);
    benchmark::DoNotOptimize(qubo.num_variables());
  }
}
BENCHMARK(BM_MqoQuboBuild)->Arg(8)->Arg(32);

void BM_OptimalBushyPlan(benchmark::State& state) {
  qdm::Rng rng(3);
  auto graph = qdm::db::JoinGraph::RandomClique(
      static_cast<int>(state.range(0)), &rng);
  for (auto _ : state) {
    auto plan = qdm::db::OptimalBushyPlan(graph);
    benchmark::DoNotOptimize(plan.cost);
  }
}
BENCHMARK(BM_OptimalBushyPlan)->Arg(8)->Arg(12);

void BM_HashJoinExecution(benchmark::State& state) {
  qdm::Rng rng(4);
  auto workload = qdm::db::GenerateJoinWorkload(
      qdm::db::QueryShape::kChain, 4,
      qdm::db::WorkloadOptions{.min_rows = 100, .max_rows = 400}, &rng);
  auto plan = qdm::db::OptimalLeftDeepPlan(workload.graph);
  for (auto _ : state) {
    auto result =
        qdm::db::ExecuteJoinTree(plan.tree, workload.graph, workload.catalog);
    benchmark::DoNotOptimize(result->num_rows());
  }
}
BENCHMARK(BM_HashJoinExecution);

}  // namespace

// Custom main so the report carries the SIMD tier the binary actually
// selected (CMake option + CPUID + QDM_SIMD env): the perf-gate CI step logs
// context.qdm_simd_tier next to the numbers, so a regression caused by a
// dispatch change (e.g. the runner losing AVX2) is visible at a glance.
int main(int argc, char** argv) {
  benchmark::AddCustomContext(
      "qdm_simd_tier",
      qdm::sim::simd::TierName(qdm::sim::simd::DetectedTier()));
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
