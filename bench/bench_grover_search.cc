// E3 -- Paper Sec III-A: "To search a specific record in an unsorted database
// of N records, classical algorithms require O(N) operations, while Grover's
// algorithm achieves this in O(sqrt(N)) operations."
//
// Regenerates the query-complexity series: for each N, the measured oracle
// queries of the classical random scan (expected (N+1)/2), textbook Grover
// (floor(pi/4 sqrt(N))), and BBHT when the match count is unknown; plus
// Grover's pre-measurement success probability.

#include <cmath>
#include <cstdio>

#include "qdm/algo/grover.h"
#include "qdm/common/rng.h"
#include "qdm/common/strings.h"
#include "qdm/common/table_printer.h"
#include "qdm/qdb/quantum_database.h"

int main() {
  qdm::Rng rng(2024);
  qdm::TablePrinter table({"N", "classical avg", "grover", "pi/4*sqrt(N)",
                           "bbht avg", "grover P(success)", "speedup"});

  for (int n = 4; n <= 12; n += 2) {
    const uint64_t size = uint64_t{1} << n;
    std::vector<int64_t> records(size);
    for (uint64_t i = 0; i < size; ++i) records[i] = static_cast<int64_t>(i);
    auto db = qdm::qdb::QuantumDatabase::Create(records);
    QDM_CHECK(db.ok());

    const int kTrials = 30;
    double classical_total = 0, grover_total = 0, bbht_total = 0, success = 0;
    for (int t = 0; t < kTrials; ++t) {
      const int64_t key = rng.UniformInt(0, static_cast<int64_t>(size) - 1);
      qdm::qdb::SearchStats c = db->ClassicalSearchWhere(
          [&](int64_t r) { return r == key; }, &rng);
      classical_total += static_cast<double>(c.oracle_queries);

      qdm::algo::CountingOracle oracle(
          [&](uint64_t x) { return records[x] == key; });
      qdm::algo::GroverResult g = qdm::algo::GroverSearch(n, &oracle, 1, &rng);
      grover_total += static_cast<double>(g.oracle_queries);
      success += g.success_probability;

      qdm::qdb::SearchStats b = db->GroverSearchWhere(
          [&](int64_t r) { return r == key; }, &rng);
      bbht_total += static_cast<double>(b.oracle_queries);
    }
    const double classical_avg = classical_total / kTrials;
    const double grover_avg = grover_total / kTrials;
    table.AddRow({qdm::StrFormat("%llu", static_cast<unsigned long long>(size)),
                  qdm::StrFormat("%.1f", classical_avg),
                  qdm::StrFormat("%.0f", grover_avg),
                  qdm::StrFormat(
                      "%.1f", M_PI / 4 * std::sqrt(static_cast<double>(size))),
                  qdm::StrFormat("%.1f", bbht_total / kTrials),
                  qdm::StrFormat("%.4f", success / kTrials),
                  qdm::StrFormat("%.1fx", classical_avg / grover_avg)});
  }
  std::printf("E3: Grover vs classical database search (oracle queries)\n%s\n",
              table.ToString().c_str());
  std::printf("Shape check: classical grows ~N/2, Grover ~pi/4 sqrt(N); the\n"
              "speedup column should roughly double per 4x N.\n");
  return 0;
}
