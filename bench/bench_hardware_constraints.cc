// E14 -- Paper Sec III-C(3): "we still face many practical constraints such
// as the restricted number of qubits as well as noisy operations."
// Ablations for the design choices DESIGN.md calls out:
//   (1) logical vs Chimera-embedded physical qubit counts (qubit overhead),
//   (2) chain-strength sweep: too weak -> broken chains, too strong ->
//       frozen landscape,
//   (3) penalty-weight sweep for constraint encodings,
//   (4) solution quality under depolarizing gate noise (QAOA).

#include <cstdio>

#include "qdm/algo/qaoa.h"
#include "qdm/anneal/chimera.h"
#include "qdm/anneal/embedding.h"
#include "qdm/anneal/solver.h"
#include "qdm/common/rng.h"
#include "qdm/common/strings.h"
#include "qdm/common/table_printer.h"
#include "qdm/qopt/mqo.h"
#include "qdm/sim/noise.h"

int main() {
  qdm::Rng rng(2024);

  // (1) Embedding overhead.
  qdm::TablePrinter overhead({"logical vars", "chimera", "physical qubits",
                              "max chain", "overhead"});
  for (int n : {4, 8, 12, 16}) {
    const int cells = (n + 3) / 4;
    qdm::anneal::ChimeraGraph graph(cells, cells, 4);
    auto embedding = qdm::anneal::CliqueEmbedding(n, graph);
    QDM_CHECK(embedding.ok());
    overhead.AddRow({qdm::StrFormat("%d", n),
                     qdm::StrFormat("C(%d,%d,4)", cells, cells),
                     qdm::StrFormat("%d", embedding->TotalPhysicalQubits()),
                     qdm::StrFormat("%d", embedding->MaxChainLength()),
                     qdm::StrFormat("%.1fx",
                                    static_cast<double>(
                                        embedding->TotalPhysicalQubits()) / n)});
  }
  std::printf("E14.1: minor-embedding qubit overhead (clique embedding)\n%s\n",
              overhead.ToString().c_str());

  // A fixed 8-variable MQO instance for the sweeps.
  qdm::qopt::MqoProblem problem = qdm::qopt::GenerateMqoProblem(4, 2, 0.4, &rng);
  qdm::anneal::Qubo qubo = qdm::qopt::MqoToQubo(problem);
  auto& registry = qdm::anneal::SolverRegistry::Global();
  auto ground = qdm::anneal::SolveWith("exact", qubo, {.num_reads = 1});
  QDM_CHECK(ground.ok()) << ground.status();
  const double optimum = ground->best().energy;

  // (2) Chain-strength sweep on Chimera-embedded annealing. The base
  // annealer comes from the registry and is adapted back to the Sampler
  // interface for the embedding combinator.
  qdm::TablePrinter chains({"chain strength", "success rate",
                            "mean chain breaks"});
  auto base_solver = registry.Create("simulated_annealing");
  QDM_CHECK(base_solver.ok()) << base_solver.status();
  std::unique_ptr<qdm::anneal::Sampler> base = qdm::anneal::WrapAsSampler(
      std::move(*base_solver), {.num_sweeps = 400});
  for (double strength : {0.05, 0.2, 1.0, 5.0, 25.0, 125.0}) {
    qdm::anneal::EmbeddedSampler sampler(base.get(),
                                         qdm::anneal::ChimeraGraph(2, 2, 4),
                                         strength);
    qdm::anneal::SampleSet set = sampler.SampleQubo(qubo, 30, &rng);
    double breaks = 0;
    for (const auto& s : set.samples()) breaks += s.chain_break_fraction;
    chains.AddRow({qdm::StrFormat("%.2f", strength),
                   qdm::StrFormat("%.2f", set.SuccessRate(optimum)),
                   qdm::StrFormat("%.3f", breaks / set.size())});
  }
  std::printf("E14.2: chain-strength sweep (8 logical vars on C(2,2,4))\n%s\n",
              chains.ToString().c_str());

  // (3) Penalty-weight sweep on the logical QUBO.
  qdm::TablePrinter penalties({"penalty x auto", "feasible rate",
                               "success rate"});
  for (double scale : {0.02, 0.1, 0.5, 1.0, 5.0, 25.0}) {
    // Reconstruct with an explicit penalty value.
    double auto_penalty = 0.0;
    {
      qdm::anneal::Qubo probe = qdm::qopt::MqoToQubo(problem, -1.0);
      (void)probe;  // auto penalty is internal; recompute below.
    }
    // Derive the auto penalty from the instance the same way MqoToQubo does.
    double max_cost = 0.0;
    for (const auto& costs : problem.plan_costs) {
      for (double c : costs) max_cost = std::max(max_cost, c);
    }
    auto_penalty = max_cost + 1.0;  // Savings touch is instance-specific; this
                                    // underestimates slightly, which is fine
                                    // for a relative sweep.
    qdm::anneal::Qubo swept = qdm::qopt::MqoToQubo(problem, scale * auto_penalty);
    qdm::anneal::SampleSet set = base->SampleQubo(swept, 40, &rng);
    int feasible = 0, optimal_hits = 0;
    for (const auto& s : set.samples()) {
      auto decoded = qdm::qopt::DecodeMqoSample(problem, s.assignment);
      if (decoded.feasible) {
        ++feasible;
        if (decoded.cost <= qdm::qopt::ExhaustiveMqo(problem).cost + 1e-9) {
          ++optimal_hits;
        }
      }
    }
    penalties.AddRow({qdm::StrFormat("%.2f", scale),
                      qdm::StrFormat("%.2f", feasible / 40.0),
                      qdm::StrFormat("%.2f", optimal_hits / 40.0)});
  }
  std::printf("E14.3: constraint-penalty sweep\n%s\n", penalties.ToString().c_str());

  // (4) QAOA under depolarizing gate noise.
  qdm::TablePrinter noise_table({"depolarizing p", "mean cost (sampled)",
                                 "optimum"});
  qdm::algo::Qaoa qaoa(qubo, 2);
  qdm::algo::CoordinateDescent optimizer;
  auto opt = qaoa.Optimize(&optimizer, 3, &rng);
  qdm::circuit::Circuit circuit = qaoa.BuildCircuit(opt.parameters);
  const std::vector<double> diag = qdm::algo::BuildDiagonal(qubo);
  for (double p : {0.0, 0.002, 0.01, 0.05}) {
    qdm::sim::NoiseModel model;
    model.depolarizing_1q = p;
    model.depolarizing_2q = 2 * p;
    qdm::sim::TrajectorySimulator sim(model);
    const double mean =
        sim.AverageDiagonalExpectation(circuit, diag, /*trajectories=*/200, &rng);
    noise_table.AddRow({qdm::StrFormat("%.3f", p), qdm::StrFormat("%.3f", mean),
                        qdm::StrFormat("%.3f", optimum)});
  }
  std::printf("E14.4: QAOA energy under depolarizing noise\n%s\n",
              noise_table.ToString().c_str());
  std::printf("Shape check: qubit overhead grows ~2 sqrt(n)x; success peaks at\n"
              "intermediate chain strengths and penalties (too small breaks\n"
              "constraints, too large freezes the landscape); noise drives the\n"
              "QAOA energy toward the uniform-sampling mean.\n");
  return 0;
}
