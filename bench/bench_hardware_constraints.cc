// E14 -- Paper Sec III-C(3): "we still face many practical constraints such
// as the restricted number of qubits as well as noisy operations."
// Ablations for the design choices DESIGN.md calls out:
//   (1) logical vs physical qubit counts across hardware topologies
//       (Chimera / Pegasus / Zephyr minor-embedding overhead),
//   (2) chain-strength sweep: too weak -> broken chains, too strong ->
//       frozen landscape,
//   (3) penalty-weight sweep for constraint encodings,
//   (4) solution quality under depolarizing gate noise (QAOA),
//   (5) chain-break resolution policy comparison on a weak-chain regime,
//   (6) per-topology embedded batch sweep through the registry's
//       "embedded:<base>:<topology>" backends and SolveBatchParallel,
//       feeding items/s + max-chain-length + chain-break-fraction metrics
//       to scripts/perf_gate.py (--sweep-only --json PATH).

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "qdm/algo/qaoa.h"
#include "qdm/anneal/backend_cache.h"
#include "qdm/anneal/chimera.h"
#include "qdm/anneal/embedded_solver.h"
#include "qdm/anneal/embedding.h"
#include "qdm/anneal/solver.h"
#include "qdm/anneal/topology.h"
#include "qdm/common/rng.h"
#include "qdm/common/strings.h"
#include "qdm/common/table_printer.h"
#include "qdm/qopt/mqo.h"
#include "qdm/sim/noise.h"
#include "sweep_util.h"

namespace {

/// The registry backends swept in E14.6 — one per topology family, all over
/// the same annealing base so the topology is the only variable.
constexpr const char* kSweepBackends[] = {
    "embedded:simulated_annealing:chimera:4x4x4",
    "embedded:simulated_annealing:pegasus:6",
    "embedded:simulated_annealing:zephyr:4",
};

bool SameSampleSets(const std::vector<qdm::anneal::SampleSet>& a,
                    const std::vector<qdm::anneal::SampleSet>& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i].size() != b[i].size()) return false;
    for (size_t s = 0; s < a[i].size(); ++s) {
      const qdm::anneal::Sample& x = a[i].samples()[s];
      const qdm::anneal::Sample& y = b[i].samples()[s];
      if (x.assignment != y.assignment || x.energy != y.energy ||
          x.chain_break_fraction != y.chain_break_fraction) {
        return false;
      }
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  const qdm_bench::SweepFlags flags = qdm_bench::ParseSweepFlags(argc, argv);
  qdm::Rng rng(2024);

  // A fixed MQO workload: one 8-variable instance for the ablations plus a
  // batch of distinct instances for the per-topology sweep.
  qdm::qopt::MqoProblem problem =
      qdm::qopt::GenerateMqoProblem(4, 2, 0.4, &rng);
  qdm::anneal::Qubo qubo = qdm::qopt::MqoToQubo(problem);
  auto& registry = qdm::anneal::SolverRegistry::Global();

  if (!flags.sweep_only) {
    // (1) Embedding overhead per hardware topology.
    qdm::TablePrinter overhead({"logical vars", "topology", "hw qubits",
                                "physical qubits", "max chain", "overhead"});
    for (int n : {4, 8, 12, 16}) {
      const int cells = (n + 3) / 4;
      std::vector<std::string> specs = {
          qdm::StrFormat("chimera:%dx%dx4", cells, cells), "pegasus:6",
          "zephyr:4"};
      for (const std::string& spec : specs) {
        auto topology = qdm::anneal::MakeTopology(spec);
        QDM_CHECK(topology.ok()) << topology.status();
        auto embedding = qdm::anneal::CliqueEmbedding(n, **topology);
        QDM_CHECK(embedding.ok()) << embedding.status();
        overhead.AddRow(
            {qdm::StrFormat("%d", n), (*topology)->name(),
             qdm::StrFormat("%d", (*topology)->num_qubits()),
             qdm::StrFormat("%d", embedding->TotalPhysicalQubits()),
             qdm::StrFormat("%d", embedding->MaxChainLength()),
             qdm::StrFormat("%.1fx",
                            static_cast<double>(
                                embedding->TotalPhysicalQubits()) / n)});
      }
    }
    std::printf(
        "E14.1: minor-embedding qubit overhead (clique embedding)\n%s\n",
                overhead.ToString().c_str());

    auto ground = qdm::anneal::SolveWith("exact", qubo, {.num_reads = 1});
    QDM_CHECK(ground.ok()) << ground.status();
    const double optimum = ground->best().energy;

    // (2) Chain-strength sweep on Chimera-embedded annealing. The base
    // annealer comes from the registry and is adapted back to the Sampler
    // interface for the embedding combinator.
    qdm::TablePrinter chains({"chain strength", "success rate",
                              "mean chain breaks"});
    auto base_solver = registry.Create("simulated_annealing");
    QDM_CHECK(base_solver.ok()) << base_solver.status();
    std::unique_ptr<qdm::anneal::Sampler> base = qdm::anneal::WrapAsSampler(
        std::move(*base_solver), {.num_sweeps = 400});
    for (double strength : {0.05, 0.2, 1.0, 5.0, 25.0, 125.0}) {
      qdm::anneal::EmbeddedSampler sampler(
          base.get(), std::make_shared<qdm::anneal::ChimeraGraph>(2, 2, 4),
          strength);
      qdm::anneal::SampleSet set = sampler.SampleQubo(qubo, 30, &rng);
      double breaks = 0;
      for (const auto& s : set.samples()) breaks += s.chain_break_fraction;
      chains.AddRow({qdm::StrFormat("%.2f", strength),
                     qdm::StrFormat("%.2f", set.SuccessRate(optimum)),
                     qdm::StrFormat("%.3f", breaks / set.size())});
    }
    std::printf(
        "E14.2: chain-strength sweep (8 logical vars on C(2,2,4))\n%s\n",
                chains.ToString().c_str());

    // (3) Penalty-weight sweep on the logical QUBO.
    qdm::TablePrinter penalties({"penalty x auto", "feasible rate",
                                 "success rate"});
    for (double scale : {0.02, 0.1, 0.5, 1.0, 5.0, 25.0}) {
      // Derive the auto penalty from the instance the same way MqoToQubo does.
      double max_cost = 0.0;
      for (const auto& costs : problem.plan_costs) {
        for (double c : costs) max_cost = std::max(max_cost, c);
      }
      const double auto_penalty = max_cost + 1.0;  // Savings touch is
                                                   // instance-specific; this
                                                   // underestimates slightly,
                                                   // fine for a relative sweep.
      qdm::anneal::Qubo swept =
          qdm::qopt::MqoToQubo(problem, scale * auto_penalty);
      qdm::anneal::SampleSet set = base->SampleQubo(swept, 40, &rng);
      int feasible = 0, optimal_hits = 0;
      for (const auto& s : set.samples()) {
        auto decoded = qdm::qopt::DecodeMqoSample(problem, s.assignment);
        if (decoded.feasible) {
          ++feasible;
          if (decoded.cost <= qdm::qopt::ExhaustiveMqo(problem).cost + 1e-9) {
            ++optimal_hits;
          }
        }
      }
      penalties.AddRow({qdm::StrFormat("%.2f", scale),
                        qdm::StrFormat("%.2f", feasible / 40.0),
                        qdm::StrFormat("%.2f", optimal_hits / 40.0)});
    }
    std::printf("E14.3: constraint-penalty sweep\n%s\n",
                penalties.ToString().c_str());

    // (4) QAOA under depolarizing gate noise.
    qdm::TablePrinter noise_table({"depolarizing p", "mean cost (sampled)",
                                   "optimum"});
    qdm::algo::Qaoa qaoa(qubo, 2);
    qdm::algo::CoordinateDescent optimizer;
    auto opt = qaoa.Optimize(&optimizer, 3, &rng);
    qdm::circuit::Circuit circuit = qaoa.BuildCircuit(opt.parameters);
    const std::vector<double> diag = qdm::algo::BuildDiagonal(qubo);
    for (double p : {0.0, 0.002, 0.01, 0.05}) {
      qdm::sim::NoiseModel model;
      model.depolarizing_1q = p;
      model.depolarizing_2q = 2 * p;
      qdm::sim::TrajectorySimulator sim(model);
      const double mean = sim.AverageDiagonalExpectation(circuit, diag,
                                                         /*trajectories=*/200,
                                                         &rng);
      noise_table.AddRow({qdm::StrFormat("%.3f", p),
                          qdm::StrFormat("%.3f", mean),
                          qdm::StrFormat("%.3f", optimum)});
    }
    std::printf("E14.4: QAOA energy under depolarizing noise\n%s\n",
                noise_table.ToString().c_str());

    // (5) Chain-break policy comparison in the weak-chain regime, through
    // the registry backend and its options knobs.
    qdm::TablePrinter policies({"policy", "success rate", "mean breaks",
                                "samples kept"});
    for (qdm::anneal::ChainBreakPolicy policy :
         {qdm::anneal::ChainBreakPolicy::kMajorityVote,
          qdm::anneal::ChainBreakPolicy::kMinimizeEnergy,
          qdm::anneal::ChainBreakPolicy::kDiscard}) {
      qdm::anneal::SolverOptions options;
      options.num_reads = 40;
      options.num_sweeps = 150;
      options.seed = 99;
      options.chain_strength = 0.3;  // Deliberately weak: chains break.
      options.chain_break_policy = policy;
      auto set = qdm::anneal::SolveWith(
          "embedded:simulated_annealing:chimera:2x2x4", qubo, options);
      QDM_CHECK(set.ok()) << set.status();
      double breaks = 0;
      for (const auto& s : set->samples()) breaks += s.chain_break_fraction;
      policies.AddRow({qdm::anneal::ToString(policy),
                       qdm::StrFormat("%.2f", set->SuccessRate(optimum)),
                       qdm::StrFormat("%.3f", breaks / set->size()),
                       qdm::StrFormat("%zu/40", set->size())});
    }
    std::printf(
        "E14.5: chain-break policy comparison (chain strength 0.3)\n%s\n",
                policies.ToString().c_str());

    std::printf(
        "Shape check: qubit overhead grows ~2 sqrt(n)x; success peaks at\n"
        "intermediate chain strengths and penalties (too small breaks\n"
        "constraints, too large freezes the landscape); noise drives the\n"
        "QAOA energy toward the uniform-sampling mean.\n\n");
  }

  // (6) Per-topology embedded batch sweep: the same logical batch fanned out
  // through SolveBatchParallel under each hardware topology's registry
  // backend. Reuses PR 2's ThreadPool seam; results must be bit-identical
  // at every thread count (asserted inside RunThreadSweep).
  std::vector<qdm::anneal::Qubo> batch;
  {
    qdm::Rng batch_rng(4242);
    for (int i = 0; i < 8; ++i) {
      batch.push_back(qdm::qopt::MqoToQubo(
          qdm::qopt::GenerateMqoProblem(4, 2, 0.4, &batch_rng)));
    }
  }
  qdm::anneal::SolverOptions options;
  options.num_reads = 10;
  options.num_sweeps = 200;
  options.seed = 7;

  qdm_bench::MetricsJson metrics;
  qdm::TablePrinter summary({"backend", "hw qubits", "max chain",
                             "chain breaks", "items/s (t=1)"});
  const qdm::anneal::BackendCacheStats cache_before =
      qdm::anneal::GetBackendCacheStats();
  for (const char* backend : kSweepBackends) {
    auto solver = registry.Create(backend);
    QDM_CHECK(solver.ok()) << solver.status();
    const auto& topology =
        static_cast<const qdm::anneal::EmbeddedSolver&>(**solver).topology();
    const std::string prefix =
        qdm::StrFormat("hw_embed_%s", topology.family().c_str());

    std::vector<qdm::anneal::SampleSet> reference =
        qdm_bench::RunThreadSweep<std::vector<qdm::anneal::SampleSet>>(
            qdm::StrFormat("E14.6: embedded batch sweep — %s", backend)
                .c_str(),
            static_cast<int>(batch.size()), "items/s",
            [&](int threads) {
              auto result = qdm::anneal::SolveBatchParallel(backend, batch,
                                                            options, threads);
              QDM_CHECK(result.ok()) << backend << ": " << result.status();
              return std::move(result).value();
            },
            SameSampleSets, prefix.c_str(), flags, &metrics);

    // Chain geometry + break statistics of the 1-thread reference — gated
    // as EXACT metrics (perf_gate compares them for equality, not ratio):
    // they are pure functions of the seeds and topology, so any drift in
    // either direction is a real behavior change.
    auto embedding = qdm::anneal::CliqueEmbedding(
        batch[0].num_variables(), topology);
    QDM_CHECK(embedding.ok()) << embedding.status();
    double breaks = 0;
    size_t samples = 0;
    for (const auto& set : reference) {
      for (const auto& s : set.samples()) breaks += s.chain_break_fraction;
      samples += set.size();
    }
    const double break_fraction = samples > 0 ? breaks / samples : 0.0;
    metrics.AddExact(prefix + "_max_chain_len", embedding->MaxChainLength());
    metrics.AddExact(prefix + "_chain_break_fraction", break_fraction);
    summary.AddRow({backend, qdm::StrFormat("%d", topology.num_qubits()),
                    qdm::StrFormat("%d", embedding->MaxChainLength()),
                    qdm::StrFormat("%.3f", break_fraction), "see sweep above"});
  }
  std::printf("E14.6: per-topology summary\n%s\n", summary.ToString().c_str());

  // Cache-effectiveness gate: the sweep's topology/plan traffic through
  // backend_cache.h is a pure function of the fixed workload under
  // --sweep-only (the CI invocation — the gated JSON is only written
  // there), so the construction/hit deltas are recorded as EXACT metrics.
  // A regression back to per-instance construction shows up as a
  // constructions jump (and hits drop) against the pinned baseline.
  const qdm::anneal::BackendCacheStats cache_after =
      qdm::anneal::GetBackendCacheStats();
  const double topo_constructions = static_cast<double>(
      cache_after.topology_constructions - cache_before.topology_constructions);
  const double topo_hits = static_cast<double>(cache_after.topology_hits -
                                               cache_before.topology_hits);
  const double plan_constructions =
      static_cast<double>(cache_after.embedding_constructions -
                          cache_before.embedding_constructions);
  const double plan_hits = static_cast<double>(cache_after.embedding_hits -
                                               cache_before.embedding_hits);
  metrics.AddExact("hw_cache_topology_constructions", topo_constructions);
  metrics.AddExact("hw_cache_topology_hits", topo_hits);
  metrics.AddExact("hw_cache_embedding_constructions", plan_constructions);
  metrics.AddExact("hw_cache_embedding_hits", plan_hits);
  std::printf(
      "Backend-cache effectiveness across the sweep: %g topology\n"
      "constructions / %g hits, %g embedding-plan constructions / %g hits\n"
      "(exact-gated; one construction per distinct artifact).\n\n",
      topo_constructions, topo_hits, plan_constructions, plan_hits);

  if (flags.json_path != nullptr) metrics.WriteTo(flags.json_path);
  return 0;
}
