// E12 -- Paper Sec IV-B: "Quantum nonlocality serves as the theoretical
// foundation of protocols for secure communication and key distribution."
// Regenerates the BB84 security table: key rate vs channel noise, the abort
// cliff at the 11% QBER threshold, and eavesdropper detection; then runs a
// QKD-secured replication of a relation across the simulated internet.

#include <cstdio>

#include "qdm/common/rng.h"
#include "qdm/common/strings.h"
#include "qdm/common/table_printer.h"
#include "qdm/qnet/distributed_store.h"
#include "qdm/qnet/e91.h"
#include "qdm/qnet/qkd.h"

int main() {
  qdm::Rng rng(2024);

  qdm::TablePrinter table({"channel error", "eve", "QBER", "sifted",
                           "secure bits", "secret fraction", "verdict"});
  auto run = [&](double error, bool eve) {
    qdm::qnet::Bb84Config config;
    config.num_raw_bits = 16384;
    config.channel_error = error;
    config.eavesdropper = eve;
    qdm::qnet::Bb84Result r = qdm::qnet::RunBb84(config, &rng);
    table.AddRow({qdm::StrFormat("%.3f", error), eve ? "yes" : "no",
                  qdm::StrFormat("%.3f", r.estimated_qber),
                  qdm::StrFormat("%d", r.sifted_bits),
                  qdm::StrFormat("%.0f", r.secure_key_bits),
                  qdm::StrFormat("%.3f", r.sifted_bits
                                             ? r.secure_key_bits / r.sifted_bits
                                             : 0.0),
                  r.aborted ? "ABORT" : "key ok"});
  };
  for (double error : {0.0, 0.02, 0.05, 0.08, 0.12}) run(error, false);
  run(0.0, true);
  run(0.02, true);
  std::printf("E12: BB84 key distribution under noise and eavesdropping\n%s\n",
              table.ToString().c_str());

  // Secure replication across a 3-node internet (Fig. 1c layout).
  qdm::qnet::QuantumNetwork network;
  int a = network.AddNode("dc-europe");
  int r = network.AddNode("repeater");
  int b = network.AddNode("dc-america");
  qdm::qnet::FiberLinkConfig fiber;
  fiber.length_km = 80;
  QDM_CHECK(network.AddLink(a, r, fiber).ok());
  QDM_CHECK(network.AddLink(r, b, fiber).ok());
  qdm::qnet::DistributedQuantumStore store(
      network, qdm::qnet::DistributedQuantumStore::Options{}, &rng);

  const std::string relation = "k,v\n1,alpha\n2,beta\n3,gamma\n";
  QDM_CHECK(store.PutClassical(a, "dim_table", relation).ok());
  qdm::Status status = store.ReplicateClassical("dim_table", b);
  std::printf(
      "QKD-secured replication of %zu payload bytes across 160 km: %s\n",
              relation.size(), status.ToString().c_str());
  std::printf("sessions: %d, secure bits: %.0f (need %zu)\n",
              store.stats().qkd_sessions, store.stats().qkd_secure_bits,
              relation.size() * 8);
  // E91: security certified by the CHSH statistic itself (Sec IV-A theory
  // powering Sec IV-B practice).
  qdm::TablePrinter e91_table({"pair fidelity", "eve", "S (measured)",
                               "S (analytic)", "QBER", "verdict"});
  auto run_e91 = [&](double fidelity, bool eve) {
    qdm::qnet::E91Config config;
    config.num_pairs = 30000;
    config.pair_fidelity = fidelity;
    config.eavesdropper = eve;
    qdm::qnet::E91Result r = qdm::qnet::RunE91(config, &rng);
    e91_table.AddRow({qdm::StrFormat("%.2f", fidelity), eve ? "yes" : "no",
                      qdm::StrFormat("%.3f", r.s_value),
                      eve ? "1.414" : qdm::StrFormat(
                                          "%.3f",
                                          qdm::qnet::ExpectedE91S(fidelity)),
                      qdm::StrFormat("%.3f", r.qber),
                      r.aborted ? "ABORT (S <= 2)" : "key ok"});
  };
  for (double fidelity : {1.0, 0.9, 0.8, 0.7}) run_e91(fidelity, false);
  run_e91(1.0, true);
  std::printf("E91 entanglement-based QKD (CHSH-certified security):\n%s\n",
              e91_table.ToString().c_str());

  std::printf("\nShape check: secret fraction decays with QBER and hits the\n"
              "abort cliff near 11%%; intercept-resend forces ~25%% QBER and\n"
              "always aborts. In E91 the CHSH value S is the security meter:\n"
              "S tracks 2*sqrt(2)*w and crosses the classical bound 2 near\n"
              "F ~ 0.78; an intercept-resend attack pins S at sqrt(2).\n");
  return 0;
}
