// Shared scaffolding for the batch fan-out sweeps (bench_mqo_speedup,
// bench_txn_scheduling): flag parsing, the thread-count timing loop with its
// identical-results assertion, the report table, and the perf-gate JSON.
// Keeping this in one place means the sweep protocol and the JSON metric
// schema the CI gate consumes cannot drift between benches.

#ifndef QDM_BENCH_SWEEP_UTIL_H_
#define QDM_BENCH_SWEEP_UTIL_H_

#include <chrono>
#include <cstdio>
#include <cstring>
#include <functional>
#include <string>
#include <vector>

#include "qdm/common/check.h"
#include "qdm/common/strings.h"
#include "qdm/common/table_printer.h"

namespace qdm_bench {

struct SweepFlags {
  bool sweep_only = false;          // --sweep-only: skip the paper tables.
  const char* json_path = nullptr;  // --json PATH: write perf-gate metrics.
};

inline SweepFlags ParseSweepFlags(int argc, char** argv) {
  SweepFlags flags;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--sweep-only") == 0) {
      flags.sweep_only = true;
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      flags.json_path = argv[++i];
    }
  }
  return flags;
}

/// Runs `solve(threads)` for threads in {1, 2, 4, 8}, timing each pass and
/// QDM_CHECKing results equal (`equal`) to the 1-thread reference — the
/// batch determinism guarantee, asserted at bench runtime. Prints a
/// `header` + table (items/s, speedup vs 1 thread) and, when
/// `flags.json_path` is set, writes {"metrics": {"<metric_prefix>_t<T>":
/// items_per_second}} for scripts/perf_gate.py.
template <typename Batch>
inline void RunThreadSweep(
    const char* header, int num_items, const char* items_column,
    const std::function<Batch(int threads)>& solve,
    const std::function<bool(const Batch&, const Batch&)>& equal,
    const char* metric_prefix, const SweepFlags& flags) {
  qdm::TablePrinter table({"threads", "batch", "total ms", items_column,
                           "speedup", "identical"});
  Batch reference;
  double base_items_per_s = 0.0;
  int diverged_at = 0;  // 0 = all thread counts matched the reference.
  std::string json = "{\n  \"metrics\": {\n";
  const std::vector<int> thread_counts = {1, 2, 4, 8};
  for (size_t t = 0; t < thread_counts.size(); ++t) {
    const int threads = thread_counts[t];
    const auto start = std::chrono::steady_clock::now();
    Batch batch = solve(threads);
    const double ms = std::chrono::duration<double, std::milli>(
                          std::chrono::steady_clock::now() - start)
                          .count();
    const double items_per_s = 1000.0 * num_items / ms;
    bool identical = true;
    if (threads == 1) {
      reference = batch;
      base_items_per_s = items_per_s;
    } else {
      identical = equal(batch, reference);
      if (!identical && diverged_at == 0) diverged_at = threads;
    }
    table.AddRow({qdm::StrFormat("%d", threads),
                  qdm::StrFormat("%d", num_items),
                  qdm::StrFormat("%.1f", ms),
                  qdm::StrFormat("%.1f", items_per_s),
                  qdm::StrFormat("%.2fx", items_per_s / base_items_per_s),
                  identical ? "yes" : "NO"});
    json += qdm::StrFormat("    \"%s_t%d\": %.3f%s\n", metric_prefix, threads,
                           items_per_s,
                           t + 1 < thread_counts.size() ? "," : "");
  }
  json += "  }\n}\n";
  // Print the full table before enforcing determinism, so a violation still
  // leaves the per-thread evidence on screen; abort before writing JSON so
  // the perf gate never ingests numbers from a broken run.
  std::printf("%s\n%s\n", header, table.ToString().c_str());
  QDM_CHECK(diverged_at == 0) << metric_prefix << " results diverged at "
                              << diverged_at << " threads";
  if (flags.json_path != nullptr) {
    std::FILE* f = std::fopen(flags.json_path, "w");
    QDM_CHECK(f != nullptr) << "cannot write " << flags.json_path;
    std::fputs(json.c_str(), f);
    std::fclose(f);
    std::printf("wrote %s\n", flags.json_path);
  }
}

}  // namespace qdm_bench

#endif  // QDM_BENCH_SWEEP_UTIL_H_
