// Shared scaffolding for the batch fan-out sweeps (bench_mqo_speedup,
// bench_txn_scheduling): flag parsing, the thread-count timing loop with its
// identical-results assertion, the report table, and the perf-gate JSON.
// Keeping this in one place means the sweep protocol and the JSON metric
// schema the CI gate consumes cannot drift between benches.

#ifndef QDM_BENCH_SWEEP_UTIL_H_
#define QDM_BENCH_SWEEP_UTIL_H_

#include <chrono>
#include <cstdio>
#include <cstring>
#include <functional>
#include <string>
#include <vector>

#include "qdm/common/check.h"
#include "qdm/common/strings.h"
#include "qdm/common/table_printer.h"

namespace qdm_bench {

struct SweepFlags {
  bool sweep_only = false;          // --sweep-only: skip the paper tables.
  const char* json_path = nullptr;  // --json PATH: write perf-gate metrics.
};

inline SweepFlags ParseSweepFlags(int argc, char** argv) {
  SweepFlags flags;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--sweep-only") == 0) {
      flags.sweep_only = true;
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      flags.json_path = argv[++i];
    }
  }
  return flags;
}

/// Accumulates metrics across several sweeps (e.g. one RunThreadSweep per
/// hardware topology) and writes them as one perf-gate JSON document. Two
/// classes of metric: Add() for throughput numbers the gate compares as
/// ratios (only regressions fail), AddExact() for deterministic quantities
/// (chain lengths, break fractions) the gate compares for EQUALITY — any
/// drift, in either direction, is a behavior change and fails CI. Keeps
/// insertion order; names must be unique per run (the gate keys on them).
class MetricsJson {
 public:
  void Add(const std::string& name, double value) {
    metrics_.emplace_back(name, value);
  }

  void AddExact(const std::string& name, double value) {
    exact_metrics_.emplace_back(name, value);
  }

  std::string ToString() const {
    std::string json = "{\n";
    // Throughput metrics are rounded for readability; exact metrics keep
    // full double precision — the gate compares them for equality, and
    // quantizing here would silently weaken that contract.
    json += Section("metrics", metrics_, /*full_precision=*/false,
                    !exact_metrics_.empty());
    if (!exact_metrics_.empty()) {
      json += Section("exact_metrics", exact_metrics_,
                      /*full_precision=*/true, false);
    }
    json += "}\n";
    return json;
  }

  void WriteTo(const char* path) const {
    std::FILE* f = std::fopen(path, "w");
    QDM_CHECK(f != nullptr) << "cannot write " << path;
    std::fputs(ToString().c_str(), f);
    std::fclose(f);
    std::printf("wrote %s\n", path);
  }

 private:
  static std::string Section(
      const char* key, const std::vector<std::pair<std::string, double>>& kv,
      bool full_precision, bool trailing_comma) {
    std::string json = qdm::StrFormat("  \"%s\": {\n", key);
    for (size_t i = 0; i < kv.size(); ++i) {
      json += qdm::StrFormat("    \"%s\": ", kv[i].first.c_str());
      json += full_precision ? qdm::StrFormat("%.17g", kv[i].second)
                             : qdm::StrFormat("%.3f", kv[i].second);
      json += i + 1 < kv.size() ? ",\n" : "\n";
    }
    json += qdm::StrFormat("  }%s\n", trailing_comma ? "," : "");
    return json;
  }

  std::vector<std::pair<std::string, double>> metrics_;
  std::vector<std::pair<std::string, double>> exact_metrics_;
};

/// Runs `solve(threads)` for threads in {1, 2, 4, 8}, timing each pass and
/// QDM_CHECKing results equal (`equal`) to the 1-thread reference — the
/// batch determinism guarantee, asserted at bench runtime. Prints a
/// `header` + table (items/s, speedup vs 1 thread) and records
/// "<metric_prefix>_t<T>" -> items_per_second metrics for
/// scripts/perf_gate.py: into `collector` when one is given (the caller
/// aggregates several sweeps into one file), otherwise into a standalone
/// JSON file at `flags.json_path` (when set). Returns the 1-thread
/// reference batch so callers can derive further metrics from it.
template <typename Batch>
inline Batch RunThreadSweep(
    const char* header, int num_items, const char* items_column,
    const std::function<Batch(int threads)>& solve,
    const std::function<bool(const Batch&, const Batch&)>& equal,
    const char* metric_prefix, const SweepFlags& flags,
    MetricsJson* collector = nullptr) {
  qdm::TablePrinter table({"threads", "batch", "total ms", items_column,
                           "speedup", "identical"});
  Batch reference;
  double base_items_per_s = 0.0;
  int diverged_at = 0;  // 0 = all thread counts matched the reference.
  MetricsJson local;
  MetricsJson* metrics = collector != nullptr ? collector : &local;
  const std::vector<int> thread_counts = {1, 2, 4, 8};
  for (size_t t = 0; t < thread_counts.size(); ++t) {
    const int threads = thread_counts[t];
    const auto start = std::chrono::steady_clock::now();
    Batch batch = solve(threads);
    const double ms = std::chrono::duration<double, std::milli>(
                          std::chrono::steady_clock::now() - start)
                          .count();
    const double items_per_s = 1000.0 * num_items / ms;
    bool identical = true;
    if (threads == 1) {
      reference = batch;
      base_items_per_s = items_per_s;
    } else {
      identical = equal(batch, reference);
      if (!identical && diverged_at == 0) diverged_at = threads;
    }
    table.AddRow({qdm::StrFormat("%d", threads),
                  qdm::StrFormat("%d", num_items),
                  qdm::StrFormat("%.1f", ms),
                  qdm::StrFormat("%.1f", items_per_s),
                  qdm::StrFormat("%.2fx", items_per_s / base_items_per_s),
                  identical ? "yes" : "NO"});
    metrics->Add(qdm::StrFormat("%s_t%d", metric_prefix, threads),
                 items_per_s);
  }
  // Print the full table before enforcing determinism, so a violation still
  // leaves the per-thread evidence on screen; abort before writing JSON so
  // the perf gate never ingests numbers from a broken run.
  std::printf("%s\n%s\n", header, table.ToString().c_str());
  QDM_CHECK(diverged_at == 0) << metric_prefix << " results diverged at "
                              << diverged_at << " threads";
  if (collector == nullptr && flags.json_path != nullptr) {
    local.WriteTo(flags.json_path);
  }
  return reference;
}

}  // namespace qdm_bench

#endif  // QDM_BENCH_SWEEP_UTIL_H_
