// E2 -- Paper Figure 2: "Roadmap for solving data management problems on
// quantum computers": DB problem -> QUBO -> {quantum annealer} or
// {gate-based: QAOA, VQE, Grover, QPE}. One MQO instance is pushed down every
// arm of the figure; all arms must land on the same known optimum. QPE is
// demonstrated on its natural task (eigenphase readout), as the figure lists
// it among the gate-based algorithms.

#include <cstdio>

#include "qdm/algo/qpe.h"
#include "qdm/anneal/solver.h"
#include "qdm/common/rng.h"
#include "qdm/common/strings.h"
#include "qdm/common/table_printer.h"
#include "qdm/qopt/mqo.h"

int main() {
  qdm::Rng rng(2024);

  // The data management problem: a 3-query x 3-plan MQO instance (9 binary
  // variables after reformulation).
  qdm::qopt::MqoProblem problem =
      qdm::qopt::GenerateMqoProblem(3, 3, 0.35, &rng);
  qdm::anneal::Qubo qubo = qdm::qopt::MqoToQubo(problem);
  const double optimum = qdm::qopt::ExhaustiveMqo(problem).cost;
  std::printf("E2: Figure 2 roadmap -- one MQO instance, every arm\n");
  std::printf("instance: 3 queries x 3 plans -> QUBO with %d variables; "
              "exhaustive optimum %.3f\n\n", qubo.num_variables(), optimum);

  qdm::TablePrinter table({"Figure-2 arm", "backend", "best cost", "optimal?"});
  // Every arm is dispatched by registry name — the same MQO instance flows
  // through interchangeable annealing, classical, and gate-based backends.
  auto report = [&](const std::string& arm, const std::string& solver_name,
                    qdm::anneal::SolverOptions options) {
    options.rng = &rng;
    auto set = qdm::anneal::SolveWith(solver_name, qubo, options);
    QDM_CHECK(set.ok()) << set.status();
    auto decoded = qdm::qopt::DecodeMqoSample(problem, set->best().assignment);
    table.AddRow({arm, solver_name,
                  decoded.feasible ? qdm::StrFormat("%.3f", decoded.cost)
                                   : "infeasible",
                  decoded.feasible && decoded.cost <= optimum + 1e-9 ? "yes"
                                                                     : "no"});
  };

  report("QUBO -> quantum annealer", "simulated_annealing",
         {.num_reads = 40, .num_sweeps = 1000});
  report("QUBO -> quantum annealer", "parallel_tempering", {.num_reads = 10});
  report("QUBO -> classical heuristic", "tabu_search", {.num_reads = 10});
  report("QUBO -> ground truth", "exact", {.num_reads = 1});
  report("QUBO -> gate-based", "qaoa",
         {.num_reads = 60, .layers = 3, .restarts = 3});
  report("QUBO -> gate-based", "vqe",
         {.num_reads = 60, .layers = 2, .restarts = 3});
  report("QUBO -> gate-based", "grover_min", {.num_reads = 3});
  std::printf("%s\n", table.ToString().c_str());

  // QPE demonstration (the remaining algorithm in Figure 2's gate-based box).
  qdm::TablePrinter qpe_table(
      {"phase", "precision qubits", "estimate", "error"});
  for (double phase : {0.1875, 0.3141, 0.7071}) {
    qdm::algo::QpeResult r = qdm::algo::EstimatePhase(phase, 8, &rng);
    double err = std::abs(r.estimate - phase);
    err = std::min(err, 1.0 - err);
    qpe_table.AddRow({qdm::StrFormat("%.4f", phase), "8",
                      qdm::StrFormat("%.4f", r.estimate),
                      qdm::StrFormat("%.5f", err)});
  }
  std::printf("QPE (quantum phase estimation) readout accuracy:\n%s\n",
              qpe_table.ToString().c_str());
  std::printf("Shape check: every roadmap arm reaches the exhaustive optimum\n"
              "on this instance; QPE errors are below 2^-8.\n");
  return 0;
}
