// Quickstart tour of the qdm toolkit: qubits and entanglement (paper Sec II),
// Grover database search (Sec III-A), and a data management problem solved on
// a simulated quantum annealer via QUBO (Sec III-B / Figure 2).
//
// Build & run:  ./build/examples/quickstart

#include <cstdio>

#include "qdm/algo/grover.h"
#include "qdm/anneal/solver.h"
#include "qdm/circuit/circuit.h"
#include "qdm/common/rng.h"
#include "qdm/qdb/quantum_database.h"
#include "qdm/qopt/mqo.h"
#include "qdm/sim/statevector.h"

int main() {
  qdm::Rng rng(42);

  // -- 1. Superposition (paper Example II.1) ---------------------------------
  std::printf("== 1. Superposition ==\n");
  qdm::circuit::Circuit plus(1);
  plus.H(0);
  qdm::sim::Statevector psi = qdm::sim::RunCircuit(plus);
  int ones = 0;
  const int kShots = 10000;
  for (int s = 0; s < kShots; ++s) {
    ones += static_cast<int>(psi.SampleBasisState(&rng));
  }
  std::printf("|+> measured 1 in %.1f%% of %d shots (expect 50%%)\n\n",
              100.0 * ones / kShots, kShots);

  // -- 2. Entanglement (paper Example IV.1) ----------------------------------
  std::printf("== 2. Bell state ==\n");
  qdm::circuit::Circuit bell(2);
  bell.H(0).CX(0, 1);
  qdm::sim::Statevector phi = qdm::sim::RunCircuit(bell);
  std::printf("%s", phi.ToString().c_str());
  qdm::sim::Statevector collapsed = phi;
  int a = collapsed.MeasureQubit(0, &rng);
  int b = collapsed.MeasureQubit(1, &rng);
  std::printf("measured qubit A=%d  =>  qubit B=%d (always equal)\n\n", a, b);

  // -- 3. Grover database search (paper Sec III-A) ---------------------------
  std::printf("== 3. Grover search over 1024 records ==\n");
  std::vector<int64_t> records(1024);
  for (size_t i = 0; i < records.size(); ++i) {
    records[i] = static_cast<int64_t>(i * 7);
  }
  auto db = qdm::qdb::QuantumDatabase::Create(records);
  qdm::qdb::SearchStats quantum = db->GroverSearchEqual(7 * 600, &rng);
  qdm::qdb::SearchStats classical =
      db->ClassicalSearchWhere([](int64_t r) { return r == 7 * 600; }, &rng);
  std::printf("quantum:   found record %lld with %lld oracle queries\n",
              static_cast<long long>(quantum.record),
              static_cast<long long>(quantum.oracle_queries));
  std::printf("classical: found record %lld with %lld oracle queries\n\n",
              static_cast<long long>(classical.record),
              static_cast<long long>(classical.oracle_queries));

  // -- 4. A database problem on the annealer (Figure 2 pipeline) -------------
  std::printf("== 4. Multiple query optimization via QUBO + annealing ==\n");
  qdm::qopt::MqoProblem mqo = qdm::qopt::GenerateMqoProblem(
      /*num_queries=*/4, /*plans_per_query=*/3, /*sharing_density=*/0.3, &rng);
  // The application never names a solver class: it asks the registry for the
  // "simulated_annealing" backend (swap the string for "tabu_search", "qaoa",
  // ... to change the Figure-2 arm).
  qdm::anneal::SolverOptions options;
  options.num_reads = 50;
  options.num_sweeps = 1000;
  options.rng = &rng;
  auto solved = qdm::qopt::SolveMqo(mqo, "simulated_annealing", options);
  QDM_CHECK(solved.ok()) << solved.status();
  qdm::qopt::MqoSolution solution = *solved;
  qdm::qopt::MqoSolution optimal = qdm::qopt::ExhaustiveMqo(mqo);
  std::printf("annealer selection cost: %.2f (exhaustive optimum %.2f)\n",
              solution.cost, optimal.cost);
  std::printf("plans: ");
  for (int p : solution.plan_choice) std::printf("%d ", p);
  std::printf("\n\n");

  // -- 5. The same problem under hardware constraints ------------------------
  // "embedded:<base>:<topology>" backends run the Sec III-B physical level:
  // clique-embed onto a simulated annealer topology (Chimera / Pegasus /
  // Zephyr), sample there, unembed. Same entry point, different registry
  // name (see docs/embedding.md).
  std::printf("== 5. MQO again, minor-embedded into Pegasus hardware ==\n");
  qdm::anneal::SolverOptions embedded_options = options;
  // Chains harden the annealing landscape (the physical problem has 6x the
  // variables, coupled ferromagnetically), so give the anneal more sweeps
  // than the logical solve above.
  embedded_options.num_sweeps = 1500;
  auto embedded = qdm::qopt::SolveMqo(
      mqo, "embedded:simulated_annealing:pegasus:6", embedded_options);
  QDM_CHECK(embedded.ok()) << embedded.status();
  std::printf("embedded selection cost: %.2f (exhaustive optimum %.2f)\n\n",
              embedded->cost, optimal.cost);

  // -- 6. The same problem on a racing solver portfolio ----------------------
  // "race:<b1>+<b2>" backends run every member on the SAME QUBO and keep the
  // winning (lowest-energy) sample set — the hybrid-system hedge for solver
  // unreliability (docs/solvers.md). Same QuboPipeline entry point, one more
  // registry name.
  std::printf("== 6. MQO again, racing a solver portfolio ==\n");
  auto raced = qdm::qopt::SolveMqo(
      mqo, "race:simulated_annealing+tabu_search", options);
  QDM_CHECK(raced.ok()) << raced.status();
  std::printf("portfolio selection cost: %.2f (exhaustive optimum %.2f)\n",
              raced->cost, optimal.cost);
  return 0;
}
