// Transaction scheduling on a quantum annealer (Bittner & Groppe; paper
// Table I): conflicting transactions are assigned to slots via QUBO so that
// two-phase locking never blocks, validated on a lock-table simulation.
//
// Build & run:  ./build/examples/txn_scheduler_demo

#include <cstdio>

#include "qdm/anneal/solver.h"
#include "qdm/common/rng.h"
#include "qdm/common/strings.h"
#include "qdm/common/table_printer.h"
#include "qdm/qopt/txn_scheduling.h"

int main() {
  qdm::Rng rng(5);

  // 8 transactions locking 2 of 8 objects each.
  qdm::qopt::TxnScheduleProblem problem =
      qdm::qopt::GenerateTxnSchedule(/*num_txns=*/8, /*num_objects=*/8,
                                     /*locks_per_txn=*/2, /*num_slots=*/0,
                                     &rng);
  std::printf("conflicting transaction pairs: %zu, slots available: %d\n\n",
              problem.ConflictPairs().size(), problem.num_slots);

  auto evaluate = [&](const std::string& name,
                      const qdm::qopt::Schedule& schedule,
                      qdm::TablePrinter* table) {
    qdm::qopt::BlockingReport report =
        qdm::qopt::SimulateTwoPhaseLocking(problem, schedule);
    std::string slots;
    for (int s : schedule.slot_of_txn) slots += qdm::StrFormat("%d ", s);
    table->AddRow({name, slots, qdm::StrFormat("%d", schedule.makespan),
                   qdm::StrFormat("%d", schedule.conflicting_pairs_same_slot),
                   qdm::StrFormat("%d", report.total_wait_steps)});
  };

  qdm::TablePrinter table(
      {"scheduler", "slot per txn", "makespan", "co-located conflicts",
       "2PL wait steps"});

  // Naive: everything in slot 0 (maximum concurrency, maximum blocking).
  qdm::qopt::Schedule naive;
  naive.slot_of_txn.assign(problem.num_txns(), 0);
  naive.feasible = true;
  naive.makespan = 1;
  for (const auto& [a, b] : problem.ConflictPairs()) {
    if (naive.slot_of_txn[a] == naive.slot_of_txn[b]) {
      ++naive.conflicting_pairs_same_slot;
    }
  }
  evaluate("all-in-one-slot", naive, &table);

  // Classical: greedy conflict-graph coloring.
  evaluate("greedy coloring", qdm::qopt::GreedyColoringSchedule(problem),
           &table);

  // Quantum annealer path: QUBO + simulated annealing, dispatched through
  // the QuboSolver registry.
  qdm::anneal::SolverOptions options;
  options.num_reads = 40;
  options.num_sweeps = 1500;
  options.rng = &rng;
  auto annealed =
      qdm::qopt::SolveTxnSchedule(problem, "simulated_annealing", options);
  QDM_CHECK(annealed.ok()) << annealed.status();
  QDM_CHECK(annealed->feasible);
  evaluate("QUBO + annealer", *annealed, &table);

  std::printf("%s\nA schedule with zero co-located conflicts never blocks "
              "under strict 2PL.\n", table.ToString().c_str());
  return 0;
}
