// The nonlocal games of paper Sec IV-A: CHSH (Example IV.2) and GHZ, with
// classical bounds from exhaustive strategy enumeration and quantum values
// from simulated entangled strategies.
//
// Build & run:  ./build/examples/nonlocal_games_demo

#include <cstdio>

#include "qdm/common/rng.h"
#include "qdm/common/strings.h"
#include "qdm/common/table_printer.h"
#include "qdm/nonlocal/games.h"

int main() {
  qdm::Rng rng(3);
  qdm::TablePrinter table(
      {"game", "classical value", "quantum value", "sampled (100k rounds)"});

  {
    qdm::nonlocal::TwoPlayerGame chsh = qdm::nonlocal::ChshGame();
    auto strategy = qdm::nonlocal::OptimalChshStrategy();
    table.AddRow({"CHSH",
                  qdm::StrFormat("%.4f",
                                 qdm::nonlocal::ClassicalValueTwoPlayer(chsh)),
                  qdm::StrFormat(
                      "%.4f",
                      qdm::nonlocal::QuantumValueTwoPlayer(chsh, strategy)),
                  qdm::StrFormat("%.4f", qdm::nonlocal::PlayTwoPlayerGame(
                                             chsh, strategy, 100000, &rng))});
  }
  {
    qdm::nonlocal::ThreePlayerGame ghz = qdm::nonlocal::GhzGame();
    auto strategy = qdm::nonlocal::OptimalGhzStrategy();
    table.AddRow({"GHZ",
                  qdm::StrFormat(
                      "%.4f", qdm::nonlocal::ClassicalValueThreePlayer(ghz)),
                  qdm::StrFormat(
                      "%.4f",
                      qdm::nonlocal::QuantumValueThreePlayer(ghz, strategy)),
                  qdm::StrFormat("%.4f", qdm::nonlocal::PlayThreePlayerGame(
                                             ghz, strategy, 100000, &rng))});
  }
  std::printf("%s\n", table.ToString().c_str());

  // Show that the CHSH quantum advantage is *discovered* by optimizing
  // measurement angles over a Bell state, not hard-coded.
  auto optimized = qdm::nonlocal::OptimizeXZAngles(qdm::nonlocal::ChshGame(),
                                                   /*restarts=*/6, &rng);
  std::printf("angle optimization over the Bell state reached %.4f "
              "(Tsirelson bound cos^2(pi/8) = 0.8536)\n",
              -optimized.value);
  return 0;
}
