// From SQL text to a quantum-optimized, executed plan: the full downstream-
// user path. A conjunctive query is parsed, bound against catalog statistics,
// reformulated as a QUBO (Figure 2), solved on the simulated annealer, and
// the resulting plan is executed and checked against the classical optimum.
//
// Build & run:  ./build/examples/sql_to_quantum_plan

#include <cstdio>

#include "qdm/anneal/solver.h"
#include "qdm/common/rng.h"
#include "qdm/db/executor.h"
#include "qdm/db/join_optimizer.h"
#include "qdm/db/query_parser.h"
#include "qdm/qopt/join_order_qubo.h"

namespace {

qdm::db::Table MakeTable(const std::string& name, int rows, int key_domain,
                         qdm::Rng* rng) {
  qdm::db::Table table(
      name, qdm::db::Schema({{"id", qdm::db::ValueType::kInt64},
                             {"fk", qdm::db::ValueType::kInt64}}));
  for (int i = 0; i < rows; ++i) {
    table.AppendUnchecked({qdm::db::Value(static_cast<int64_t>(i)),
                           qdm::db::Value(rng->UniformInt(0, key_domain - 1))});
  }
  return table;
}

}  // namespace

int main() {
  qdm::Rng rng(17);

  // A small star schema: facts reference three dimensions by id.
  qdm::db::Catalog catalog;
  QDM_CHECK(catalog.AddTable(MakeTable("facts", 300, 40, &rng)).ok());
  QDM_CHECK(catalog.AddTable(MakeTable("dim_a", 40, 40, &rng)).ok());
  QDM_CHECK(catalog.AddTable(MakeTable("dim_b", 60, 40, &rng)).ok());

  const std::string sql =
      "SELECT * FROM facts, dim_a, dim_b "
      "WHERE facts.fk = dim_a.id AND facts.id = dim_b.fk";
  std::printf("query: %s\n\n", sql.c_str());

  auto parsed = qdm::db::ParseConjunctiveQuery(sql);
  QDM_CHECK(parsed.ok()) << parsed.status();
  auto graph = qdm::db::BuildJoinGraph(*parsed, catalog);
  QDM_CHECK(graph.ok()) << graph.status();
  std::printf("bound join graph (selectivities from catalog statistics):\n%s\n",
              graph->ToString().c_str());

  // Classical reference.
  qdm::db::PlanResult dp = qdm::db::OptimalLeftDeepPlan(*graph);

  // Quantum path: QUBO -> registry-dispatched annealer -> decoded order.
  qdm::anneal::SolverOptions options;
  options.num_reads = 30;
  options.num_sweeps = 800;
  options.rng = &rng;
  auto solved =
      qdm::qopt::SolveJoinOrder(*graph, "simulated_annealing", options);
  QDM_CHECK(solved.ok()) << solved.status();
  qdm::db::JoinTreeRef quantum_plan =
      qdm::db::LeftDeepFromPermutation(solved->order);

  auto dp_result = qdm::db::ExecuteJoinTree(dp.tree, *graph, catalog);
  auto quantum_result = qdm::db::ExecuteJoinTree(quantum_plan, *graph, catalog);
  QDM_CHECK(dp_result.ok() && quantum_result.ok());

  std::printf("classical DP plan:  %s  (C_out %.0f, %zu rows)\n",
              qdm::db::TreeToString(dp.tree, *graph).c_str(), dp.cost,
              dp_result->num_rows());
  std::printf("quantum QUBO plan:  %s  (C_out %.0f, %zu rows)\n",
              qdm::db::TreeToString(quantum_plan, *graph).c_str(),
              qdm::db::CoutCost(quantum_plan, *graph),
              quantum_result->num_rows());
  QDM_CHECK(qdm::db::TableFingerprint(*dp_result) ==
            qdm::db::TableFingerprint(*quantum_result))
      << "both plans must compute the same relation";
  std::printf("\nboth plans return identical relations; SQL -> QUBO -> "
              "annealer -> executed plan, end to end.\n");
  return 0;
}
