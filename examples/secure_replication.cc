// Data management over the quantum internet (paper Sec IV): a three-node
// network (Fig. 1c: two end nodes and a repeater), QKD-secured replication of
// classical data, eavesdropper detection, and the no-cloning asymmetry for
// quantum data (replication refused; migration by teleportation).
//
// Build & run:  ./build/examples/secure_replication

#include <cstdio>

#include "qdm/common/rng.h"
#include "qdm/qnet/distributed_store.h"
#include "qdm/qnet/qkd.h"

int main() {
  qdm::Rng rng(11);

  // Amsterdam -- (repeater) -- San Francisco, 2 x 60 km segments.
  qdm::qnet::QuantumNetwork network;
  const int amsterdam = network.AddNode("amsterdam");
  const int repeater = network.AddNode("repeater");
  const int san_francisco = network.AddNode("san_francisco");
  qdm::qnet::FiberLinkConfig fiber;
  fiber.length_km = 60;
  QDM_CHECK(network.AddLink(amsterdam, repeater, fiber).ok());
  QDM_CHECK(network.AddLink(repeater, san_francisco, fiber).ok());

  qdm::qnet::DistributedQuantumStore store(
      network, qdm::qnet::DistributedQuantumStore::Options{}, &rng);

  // -- Classical data: replicate under a BB84-derived one-time pad. ----------
  std::printf("== Classical replication over QKD ==\n");
  QDM_CHECK(
      store.PutClassical(amsterdam, "orders", "order_id,total\n17,99.5\n")
          .ok());
  qdm::Status replicated = store.ReplicateClassical("orders", san_francisco);
  std::printf("replicate 'orders' -> san_francisco: %s\n",
              replicated.ToString().c_str());
  std::printf("QKD sessions: %d, secure bits banked: %.0f\n\n",
              store.stats().qkd_sessions, store.stats().qkd_secure_bits);

  // -- Eavesdropper detection on the raw QKD layer. ---------------------------
  std::printf("== BB84 with an intercept-resend eavesdropper ==\n");
  qdm::qnet::Bb84Config tapped;
  tapped.num_raw_bits = 4096;
  tapped.eavesdropper = true;
  qdm::qnet::Bb84Result session = qdm::qnet::RunBb84(tapped, &rng);
  std::printf("estimated QBER %.1f%% -> %s\n\n", 100 * session.estimated_qber,
              session.aborted ? "ABORTED (Eve detected)" : "key accepted");

  // -- Quantum data: no-cloning forbids replication; teleport instead. -------
  std::printf("== Quantum payloads ==\n");
  QDM_CHECK(store.PutQuantum(amsterdam, "qtoken",
                             qdm::qnet::Qubit::FromAngles(1.0, 0.3)).ok());
  qdm::Status refused = store.ReplicateQuantum("qtoken", san_francisco);
  std::printf("replicate 'qtoken': %s\n", refused.ToString().c_str());

  QDM_CHECK(store.MigrateQuantum("qtoken", san_francisco).ok());
  std::printf("migrated 'qtoken' to node %d via teleportation "
              "(EPR pairs consumed: %d)\n",
              *store.QuantumLocation("qtoken"),
              store.stats().epr_pairs_consumed);
  std::printf("payload fidelity after migration: %.4f\n",
              *store.QuantumFidelity("qtoken"));

  // Note: the Qubit type is move-only; `Qubit copy = q;` does not compile.
  // That is the no-cloning theorem enforced by the type system.
  return 0;
}
