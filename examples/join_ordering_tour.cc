// Join ordering across all backends of the paper's Figure 2, end to end:
// a physical database is generated, the join query is optimized by classical
// DP, by QUBO + simulated annealing, by QAOA, and by the VQC RL agent, and
// the winning plan is EXECUTED against the actual tables to verify that every
// optimizer returns the same relation (only cheaper).
//
// Build & run:  ./build/examples/join_ordering_tour

#include <cstdio>

#include "qdm/anneal/solver.h"
#include "qdm/common/rng.h"
#include "qdm/common/strings.h"
#include "qdm/common/table_printer.h"
#include "qdm/db/executor.h"
#include "qdm/db/join_optimizer.h"
#include "qdm/db/workload.h"
#include "qdm/qml/vqc_join_agent.h"
#include "qdm/qopt/join_order_qubo.h"

int main() {
  qdm::Rng rng(7);

  // A 4-relation chain query over real generated tables.
  qdm::db::GeneratedWorkload workload = qdm::db::GenerateJoinWorkload(
      qdm::db::QueryShape::kChain, 4,
      qdm::db::WorkloadOptions{.min_rows = 30, .max_rows = 120}, &rng);
  const qdm::db::JoinGraph& graph = workload.graph;
  std::printf("%s\n", graph.ToString().c_str());

  qdm::TablePrinter report({"optimizer", "order", "C_out cost", "rows out"});

  auto report_plan = [&](const std::string& name,
                         const qdm::db::JoinTreeRef& tree) {
    auto result = qdm::db::ExecuteJoinTree(tree, graph, workload.catalog);
    QDM_CHECK(result.ok()) << result.status();
    report.AddRow({name, qdm::db::TreeToString(tree, graph),
                   qdm::StrFormat("%.0f", qdm::db::CoutCost(tree, graph)),
                   qdm::StrFormat("%zu", result->num_rows())});
    return qdm::db::TableFingerprint(*result);
  };

  // 1. Classical dynamic programming (left-deep optimum).
  qdm::db::PlanResult dp = qdm::db::OptimalLeftDeepPlan(graph);
  const uint64_t reference = report_plan("DP (optimal)", dp.tree);

  // 2. QUBO + simulated annealing (the annealer arm of Figure 2), dispatched
  // through the QuboSolver registry.
  qdm::anneal::SolverOptions anneal_options;
  anneal_options.num_sweeps = 800;
  anneal_options.num_reads = 30;
  anneal_options.rng = &rng;
  auto annealed =
      qdm::qopt::SolveJoinOrder(graph, "simulated_annealing", anneal_options);
  QDM_CHECK(annealed.ok()) << annealed.status();
  QDM_CHECK(report_plan("QUBO+anneal",
                        qdm::db::LeftDeepFromPermutation(annealed->order)) ==
            reference)
      << "plans must agree on the output relation";

  // 3. QAOA (gate-based arm): same pipeline, different registry name.
  // 16 QUBO variables = 16 simulated qubits.
  qdm::anneal::SolverOptions qaoa_options;
  qaoa_options.num_reads = 40;
  qaoa_options.layers = 2;
  qaoa_options.restarts = 2;
  qaoa_options.rng = &rng;
  auto qaoa_solved = qdm::qopt::SolveJoinOrder(graph, "qaoa", qaoa_options);
  QDM_CHECK(qaoa_solved.ok()) << qaoa_solved.status();
  QDM_CHECK(report_plan("QAOA",
                        qdm::db::LeftDeepFromPermutation(qaoa_solved->order)) ==
            reference);

  // 4. VQC reinforcement learning (Winker et al.).
  qdm::qml::VqcJoinOrderAgent agent(
      graph, qdm::qml::VqcJoinOrderAgent::Options{.episodes = 120}, &rng);
  agent.Train();
  QDM_CHECK(report_plan("VQC RL",
                        qdm::db::LeftDeepFromPermutation(
                            agent.BestVisitedOrder())) ==
            reference);

  std::printf("%s\nAll optimizers produced the same relation. "
              "Cost differences are plan quality only.\n",
              report.ToString().c_str());
  return 0;
}
