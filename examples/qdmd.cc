// qdmd — the qdm solver daemon: a SolverService behind the HTTP front end
// in qdm/net (endpoints and wire format in docs/network.md).
//
//   qdmd [--port N] [--workers N] [--max-queue-depth N]
//
//   --port             TCP port on 127.0.0.1 (default 7777; 0 asks the
//                      kernel for an ephemeral port). The chosen port is
//                      printed as the first output line either way:
//                      "qdmd: listening on port <PORT>".
//   --workers          Concurrent job cap (0 = hardware default).
//   --max-queue-depth  Admission-control high watermark (0 = unbounded).
//
// SIGINT/SIGTERM trigger a graceful shutdown: stop accepting, resolve
// queued jobs Cancelled, let running jobs finish, answer every in-flight
// request, then exit 0.
//
// Smoke it with curl:
//
//   curl http://127.0.0.1:7777/healthz
//   curl -X POST http://127.0.0.1:7777/v1/jobs -d '{"version":1,
//     "type":"submit","solver":"simulated_annealing",
//     "qubo":{"num_variables":2,"offset":0,"linear":[0.5,-1],
//             "quadratic":[[0,1,2]]},
//     "options":{"num_reads":4,"seed":7}}'
//   curl -X POST http://127.0.0.1:7777/v1/jobs/1/wait

#include <signal.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>

#include "qdm/net/server.h"

namespace {

int ParseIntFlag(const char* flag, const char* text) {
  char* end = nullptr;
  const long value = std::strtol(text, &end, 10);
  if (end == text || *end != '\0' || value < 0 || value > 65535) {
    std::fprintf(stderr, "qdmd: %s expects an integer in [0, 65535], got "
                         "'%s'\n",
                 flag, text);
    std::exit(2);
  }
  return static_cast<int>(value);
}

}  // namespace

int main(int argc, char** argv) {
  qdm::net::ServerConfig config;
  config.port = 7777;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const bool has_value = i + 1 < argc;
    if (arg == "--port" && has_value) {
      config.port = ParseIntFlag("--port", argv[++i]);
    } else if (arg == "--workers" && has_value) {
      config.service.num_workers = ParseIntFlag("--workers", argv[++i]);
    } else if (arg == "--max-queue-depth" && has_value) {
      config.service.max_queue_depth =
          ParseIntFlag("--max-queue-depth", argv[++i]);
    } else if (arg == "--help" || arg == "-h") {
      std::printf(
          "usage: qdmd [--port N] [--workers N] [--max-queue-depth N]\n");
      return 0;
    } else {
      std::fprintf(stderr, "qdmd: unknown argument '%s' (see --help)\n",
                   arg.c_str());
      return 2;
    }
  }

  // Block the shutdown signals BEFORE any thread is spawned so every
  // thread inherits the mask and sigwait below is the only consumer.
  sigset_t signals;
  sigemptyset(&signals);
  sigaddset(&signals, SIGINT);
  sigaddset(&signals, SIGTERM);
  pthread_sigmask(SIG_BLOCK, &signals, nullptr);

  auto server = qdm::net::QdmServer::Start(config);
  if (!server.ok()) {
    std::fprintf(stderr, "qdmd: %s\n", server.status().ToString().c_str());
    return 1;
  }

  std::printf("qdmd: listening on port %d\n", (*server)->port());
  std::printf("qdmd: %d workers, max queue depth %d\n",
              (*server)->service().num_workers(),
              config.service.max_queue_depth);
  std::fflush(stdout);

  int signal_number = 0;
  sigwait(&signals, &signal_number);
  std::printf("qdmd: received %s, draining...\n",
              signal_number == SIGTERM ? "SIGTERM" : "SIGINT");
  std::fflush(stdout);

  (*server)->Stop();
  std::printf("qdmd: drained, bye\n");
  return 0;
}
