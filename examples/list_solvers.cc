// Dumps every exactly-registered QuboSolver name, one per line — the
// ground truth scripts/check_docs.py uses to verify that registry-name
// examples in the documentation actually resolve. With --check NAME it
// instead exercises SolverRegistry::Create — including the prefix
// resolvers ("embedded:<base>:<topology>" minor embeddings and
// "race:<b1>+<b2>" portfolios), whose name spaces are larger than
// RegisteredNames() — exiting 0 iff the name builds, so the docs checker
// can validate dynamically-resolved example names too.

#include <cstdio>
#include <cstring>

#include "qdm/anneal/solver.h"

int main(int argc, char** argv) {
  auto& registry = qdm::anneal::SolverRegistry::Global();
  if (argc == 3 && std::strcmp(argv[1], "--check") == 0) {
    auto solver = registry.Create(argv[2]);
    if (!solver.ok()) {
      std::fprintf(stderr, "%s\n", solver.status().ToString().c_str());
      return 1;
    }
    std::printf("%s\n", (*solver)->name().c_str());
    return 0;
  }
  for (const std::string& name : registry.RegisteredNames()) {
    std::printf("%s\n", name.c_str());
  }
  return 0;
}
