#!/usr/bin/env python3
"""CI documentation-rot check for qdm.

Verifies three invariants so docs/ cannot silently drift from the code:

  1. Every docs/*.md page is linked from README.md.
  2. Every relative markdown link in README.md and docs/*.md resolves to an
     existing file (anchors are stripped; http(s)/mailto links are skipped).
  3. Every concrete "embedded:<base>:<topology>", "race:<b1>+<b2>+...",
     "noisy:<model>:<base>" or "adaptive:<b1>+<b2>+..." registry-name
     example anywhere in README.md or docs/*.md (prose, inline code, fenced
     blocks) resolves in the SolverRegistry: first against the output of
     the list_solvers dump binary (--solver-names FILE, one
     exactly-registered name per line), then — for names the registry
     resolves dynamically via its "embedded:" / "race:" / "noisy:" /
     "adaptive:" prefixes — by invoking `list_solvers --check NAME` when
     --list-solvers-bin is given. Scheme placeholders like
     `embedded:<base>:<topology>` or `adaptive:<b1>+<b2>` and globs like
     `embedded:*` / `race:*` / `adaptive:*` are ignored — only
     fully-concrete names are checked.

Usage:
  ./build/examples/list_solvers > /tmp/solver_names.txt
  python3 scripts/check_docs.py --repo-root . \
      --solver-names /tmp/solver_names.txt \
      --list-solvers-bin ./build/examples/list_solvers
"""

import argparse
import os
import re
import subprocess
import sys

LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
# Fully-concrete embedded registry names: embedded:<base>:<family>:<dims>.
_EMBEDDED_NAME = r"embedded:[a-z0-9_]+:[a-z]+:[0-9]+(?:x[0-9]+)*"
EMBEDDED_NAME_RE = re.compile(rf"^{_EMBEDDED_NAME}$")
# One noise-model token: <channel>@<rate>[,<rate>,<rate>] (docs/noise.md).
_NOISE_MODEL = r"[a-z]+@[0-9]+(?:\.[0-9]+)?(?:,[0-9]+(?:\.[0-9]+)?){0,2}"
# Fully-concrete noisy names: noisy:<model>:<base>, where the base is a
# plain backend name or a concrete embedded:* name.
NOISY_NAME_RE = re.compile(
    rf"^noisy:{_NOISE_MODEL}:(?:{_EMBEDDED_NAME}|[a-z0-9_]+)$")
# One race member: a plain backend name, a concrete embedded:* name, or a
# concrete noisy:* name.
_RACE_MEMBER = (rf"(?:noisy:{_NOISE_MODEL}:(?:{_EMBEDDED_NAME}|[a-z0-9_]+)"
                rf"|{_EMBEDDED_NAME}|[a-z0-9_]+)")
# Fully-concrete portfolio names: race:<member>+<member>[+...]. The
# adaptive selector takes the same member grammar (selectors don't nest).
RACE_NAME_RE = re.compile(rf"^race:{_RACE_MEMBER}(?:\+{_RACE_MEMBER})+$")
ADAPTIVE_NAME_RE = re.compile(
    rf"^adaptive:{_RACE_MEMBER}(?:\+{_RACE_MEMBER})+$")
# Per dynamically-resolved family: (candidate-token regex — includes
# placeholder/glob forms, which the name regex then filters out; concrete
# registry-name regex).
NAME_FAMILIES = [
    (re.compile(r"embedded:[A-Za-z0-9_:*<>x-]+"), EMBEDDED_NAME_RE),
    (re.compile(r"race:[A-Za-z0-9_:*<>@.,x+-]+"), RACE_NAME_RE),
    (re.compile(r"noisy:[A-Za-z0-9_:*<>@.,x-]+"), NOISY_NAME_RE),
    (re.compile(r"adaptive:[A-Za-z0-9_:*<>@.,x+-]+"), ADAPTIVE_NAME_RE),
]


def fail(errors):
    for error in errors:
        print(f"check_docs: {error}")
    print(f"check_docs: FAILED with {len(errors)} error(s)")
    return 1


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--repo-root", default=".",
                        help="repository root containing README.md and docs/")
    parser.add_argument("--solver-names", required=True,
                        help="file with one registered solver name per line "
                             "(from the list_solvers example binary)")
    parser.add_argument("--list-solvers-bin", default=None,
                        help="path to the list_solvers binary; when given, "
                             "names missing from --solver-names are retried "
                             "with '--check NAME' (registry prefix resolution)")
    args = parser.parse_args()

    root = os.path.abspath(args.repo_root)
    readme = os.path.join(root, "README.md")
    docs_dir = os.path.join(root, "docs")
    if not os.path.isfile(readme):
        return fail([f"missing {readme}"])
    doc_pages = sorted(
        os.path.join(docs_dir, f) for f in os.listdir(docs_dir)
        if f.endswith(".md")) if os.path.isdir(docs_dir) else []
    pages = [readme] + doc_pages

    with open(args.solver_names) as f:
        registered = {line.strip() for line in f if line.strip()}
    if not registered:
        return fail([f"no solver names found in {args.solver_names}"])

    errors = []

    # 1. Every docs page is reachable from the README.
    readme_text = open(readme, encoding="utf-8").read()
    readme_targets = set()
    for target in LINK_RE.findall(readme_text):
        readme_targets.add(os.path.normpath(
            os.path.join(root, target.split("#", 1)[0])))
    for page in doc_pages:
        if page not in readme_targets:
            errors.append(
                f"{os.path.relpath(page, root)} is not linked from README.md")

    # 2. Every relative link in README + docs resolves.
    checked_names = 0
    for page in pages:
        text = open(page, encoding="utf-8").read()
        base = os.path.dirname(page)
        rel = os.path.relpath(page, root)
        for target in LINK_RE.findall(text):
            if target.startswith(("http://", "https://", "mailto:", "#")):
                continue
            path = os.path.normpath(
                os.path.join(base, target.split("#", 1)[0]))
            if not os.path.exists(path):
                errors.append(f"{rel}: broken link -> {target}")

        # 3. Concrete embedded:* / race:* / noisy:* / adaptive:*
        # registry-name examples resolve.
        for token_re, name_re in NAME_FAMILIES:
            for token in sorted(set(token_re.findall(text))):
                if not name_re.match(token):
                    continue  # Placeholder/glob forms are docs, not names.
                checked_names += 1
                if token in registered:
                    continue
                if args.list_solvers_bin is not None:
                    probe = subprocess.run(
                        [args.list_solvers_bin, "--check", token],
                        capture_output=True)
                    if probe.returncode == 0:
                        continue
                errors.append(
                    f"{rel}: registry-name example '{token}' does not "
                    f"resolve in the SolverRegistry (run list_solvers to "
                    f"see names)")

    if errors:
        return fail(errors)
    print(f"check_docs: OK — {len(pages)} pages, "
          f"{checked_names} registry-name examples verified")
    return 0


if __name__ == "__main__":
    sys.exit(main())
