#!/usr/bin/env python3
"""CI performance gate for qdm benchmarks.

Compares current items/s numbers against a checked-in baseline and fails
(exit 1) when any metric regressed by more than --max-regression (default
2x). Two input formats are understood and may be mixed freely:

  * google-benchmark JSON (bench_micro --benchmark_format=json): entries of
    "benchmarks" that report "items_per_second" are gated under their "name".
  * qdm sweep JSON ({"metrics": {name: items_per_second}}), written by
    bench_mqo_speedup / bench_txn_scheduling with --sweep-only --json PATH.

Override knob: set the environment variable QDM_PERF_GATE=off to turn the
gate into a no-op (exit 0 with a notice) — for machines whose absolute
throughput is not comparable to the recorded baseline. To refresh the
baseline after an intentional change, re-run with --update.

Usage:
  python3 scripts/perf_gate.py --baseline bench/baselines/perf_baseline.json \
      --current bench_micro.json mqo_batch.json txn_batch.json [--update]
"""

import argparse
import json
import os
import sys


def load_metrics(path):
    """Returns {metric_name: items_per_second} from either input format."""
    with open(path) as f:
        data = json.load(f)
    metrics = {}
    if "benchmarks" in data:  # google-benchmark format.
        for entry in data["benchmarks"]:
            if "items_per_second" in entry:
                metrics[entry["name"]] = float(entry["items_per_second"])
    if "metrics" in data:  # qdm sweep format.
        for name, value in data["metrics"].items():
            metrics[name] = float(value)
    if not metrics:
        sys.exit(f"perf_gate: no items/s metrics found in {path}")
    return metrics


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline", required=True,
                        help="checked-in baseline JSON ({'metrics': {...}})")
    parser.add_argument("--current", nargs="+", required=True,
                        help="one or more result JSON files to gate")
    parser.add_argument("--max-regression", type=float, default=2.0,
                        help="fail when current < baseline / this (default 2)")
    parser.add_argument("--update", action="store_true",
                        help="rewrite the baseline from the current results")
    args = parser.parse_args()

    # --update must work even where the gate itself is switched off (the
    # knob disables the comparison, not baseline maintenance).
    if args.update:
        current = {}
        for path in args.current:
            current.update(load_metrics(path))
        with open(args.baseline, "w") as f:
            json.dump({"schema": 1, "metrics": current}, f, indent=2,
                      sort_keys=True)
            f.write("\n")
        print(f"perf_gate: baseline updated with {len(current)} metrics "
              f"-> {args.baseline}")
        return 0

    if os.environ.get("QDM_PERF_GATE", "on").lower() in ("off", "0", "false"):
        print("perf_gate: QDM_PERF_GATE=off, skipping (override knob)")
        return 0

    current = {}
    for path in args.current:
        current.update(load_metrics(path))

    with open(args.baseline) as f:
        baseline = json.load(f)["metrics"]

    failures = []
    for name in sorted(baseline):
        base = float(baseline[name])
        if name not in current:
            failures.append(f"{name}: missing from current results")
            continue
        now = current[name]
        ratio = now / base if base > 0 else float("inf")
        status = "OK" if ratio >= 1.0 / args.max_regression else "REGRESSED"
        print(f"perf_gate: {name}: baseline {base:.1f} -> current {now:.1f} "
              f"items/s ({ratio:.2f}x) {status}")
        if status == "REGRESSED":
            failures.append(
                f"{name}: {now:.1f} vs baseline {base:.1f} items/s "
                f"({ratio:.2f}x < 1/{args.max_regression:g})")

    extra = sorted(set(current) - set(baseline))
    if extra:
        print(f"perf_gate: {len(extra)} metrics not in baseline (ignored): "
              + ", ".join(extra))

    if failures:
        print("perf_gate: FAILED — >%gx regression (set QDM_PERF_GATE=off to "
              "bypass, or rerun with --update after an intentional change):"
              % args.max_regression)
        for failure in failures:
            print(f"  {failure}")
        return 1
    print(f"perf_gate: all {len(baseline)} metrics within "
          f"{args.max_regression:g}x of baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
