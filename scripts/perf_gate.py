#!/usr/bin/env python3
"""CI performance gate for qdm benchmarks.

Compares current numbers against a checked-in baseline and fails (exit 1)
on a regression. Two metric classes:

  * "metrics" — throughput (items/s), gated as a RATIO: fails when current
    < baseline / --max-regression (default 2x). Improvements always pass.
  * "exact_metrics" — deterministic quantities (embedding chain lengths,
    chain-break fractions), gated for EQUALITY (tolerance 1e-9): any drift,
    in either direction, fails. These are pure functions of seeds and code,
    so a change means behavior changed and the baseline must be
    consciously refreshed.

Two input formats are understood and may be mixed freely:

  * google-benchmark JSON (bench_micro --benchmark_format=json): entries of
    "benchmarks" that report "items_per_second" are gated under their "name".
  * qdm sweep JSON ({"metrics": {...}, "exact_metrics": {...}}), written by
    bench_mqo_speedup / bench_txn_scheduling / bench_hardware_constraints
    with --sweep-only --json PATH (the exact_metrics section is optional).

Override knob: set the environment variable QDM_PERF_GATE=off to turn the
gate into a no-op (exit 0 with a notice) — for machines whose absolute
throughput is not comparable to the recorded baseline. To refresh the
baseline after an intentional change, re-run with --update.

Usage:
  python3 scripts/perf_gate.py --baseline bench/baselines/perf_baseline.json \
      --current bench_micro.json mqo_batch.json txn_batch.json hw_embed.json \
      [--update]
"""

import argparse
import json
import os
import sys

EXACT_TOLERANCE = 1e-9


def load_metrics(path):
    """Returns ({name: items/s}, {name: exact_value}) from either format."""
    with open(path) as f:
        data = json.load(f)
    metrics = {}
    exact = {}
    if "benchmarks" in data:  # google-benchmark format.
        for entry in data["benchmarks"]:
            if "items_per_second" in entry:
                metrics[entry["name"]] = float(entry["items_per_second"])
    if "metrics" in data:  # qdm sweep format.
        for name, value in data["metrics"].items():
            metrics[name] = float(value)
    if "exact_metrics" in data:
        for name, value in data["exact_metrics"].items():
            exact[name] = float(value)
    if not metrics and not exact:
        sys.exit(f"perf_gate: no metrics found in {path}")
    return metrics, exact


def load_all(paths):
    metrics = {}
    exact = {}
    for path in paths:
        m, e = load_metrics(path)
        metrics.update(m)
        exact.update(e)
    return metrics, exact


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline", required=True,
                        help="checked-in baseline JSON ({'metrics': {...}, "
                             "'exact_metrics': {...}})")
    parser.add_argument("--current", nargs="+", required=True,
                        help="one or more result JSON files to gate")
    parser.add_argument("--max-regression", type=float, default=2.0,
                        help="fail when current < baseline / this (default 2)")
    parser.add_argument("--update", action="store_true",
                        help="rewrite the baseline from the current results")
    args = parser.parse_args()

    # --update must work even where the gate itself is switched off (the
    # knob disables the comparison, not baseline maintenance).
    if args.update:
        current, current_exact = load_all(args.current)
        with open(args.baseline, "w") as f:
            json.dump({"schema": 2, "metrics": current,
                       "exact_metrics": current_exact}, f, indent=2,
                      sort_keys=True)
            f.write("\n")
        print(f"perf_gate: baseline updated with {len(current)} metrics + "
              f"{len(current_exact)} exact metrics -> {args.baseline}")
        return 0

    if os.environ.get("QDM_PERF_GATE", "on").lower() in ("off", "0", "false"):
        print("perf_gate: QDM_PERF_GATE=off, skipping (override knob)")
        return 0

    current, current_exact = load_all(args.current)

    with open(args.baseline) as f:
        baseline_doc = json.load(f)
    baseline = baseline_doc["metrics"]
    baseline_exact = baseline_doc.get("exact_metrics", {})

    failures = []
    for name in sorted(baseline):
        base = float(baseline[name])
        if name not in current:
            failures.append(f"{name}: missing from current results")
            continue
        now = current[name]
        ratio = now / base if base > 0 else float("inf")
        status = "OK" if ratio >= 1.0 / args.max_regression else "REGRESSED"
        print(f"perf_gate: {name}: baseline {base:.1f} -> current {now:.1f} "
              f"items/s ({ratio:.2f}x) {status}")
        if status == "REGRESSED":
            failures.append(
                f"{name}: {now:.1f} vs baseline {base:.1f} items/s "
                f"({ratio:.2f}x < 1/{args.max_regression:g})")

    for name in sorted(baseline_exact):
        base = float(baseline_exact[name])
        if name not in current_exact:
            failures.append(f"{name}: missing from current results (exact)")
            continue
        now = current_exact[name]
        drifted = abs(now - base) > EXACT_TOLERANCE
        status = "DRIFTED" if drifted else "OK"
        # Full precision: the comparison tolerance is 1e-9, so rounded
        # output could report two identical-looking numbers as drifted.
        print(f"perf_gate: {name}: baseline {base:.17g} -> current "
              f"{now:.17g} (exact) {status}")
        if drifted:
            failures.append(
                f"{name}: exact metric drifted {base:.17g} -> {now:.17g} "
                f"(deterministic value; a change means behavior changed)")

    extra = sorted((set(current) - set(baseline))
                   | (set(current_exact) - set(baseline_exact)))
    if extra:
        print(f"perf_gate: {len(extra)} metrics not in baseline (ignored): "
              + ", ".join(extra))

    if failures:
        print("perf_gate: FAILED (set QDM_PERF_GATE=off to bypass, or rerun "
              "with --update after an intentional change):")
        for failure in failures:
            print(f"  {failure}")
        return 1
    print(f"perf_gate: all {len(baseline)} ratio metrics within "
          f"{args.max_regression:g}x and {len(baseline_exact)} exact metrics "
          f"unchanged")
    return 0


if __name__ == "__main__":
    sys.exit(main())
