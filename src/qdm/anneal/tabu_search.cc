#include "qdm/anneal/tabu_search.h"

#include <algorithm>

#include "qdm/anneal/simulated_annealing.h"
#include "qdm/common/check.h"

namespace qdm {
namespace anneal {

SampleSet TabuSearch::SampleQubo(const Qubo& qubo, int num_reads, Rng* rng) {
  QDM_CHECK_GT(num_reads, 0);
  const QuboAdjacency adj(qubo);
  const int n = adj.num_variables();
  const int tenure =
      options_.tenure > 0 ? options_.tenure : std::min(20, n / 4 + 1);

  SampleSet result;
  for (int read = 0; read < num_reads; ++read) {
    Assignment x(n);
    for (int i = 0; i < n; ++i) x[i] = rng->Bernoulli(0.5) ? 1 : 0;
    double energy = adj.Energy(x);
    Assignment best = x;
    double best_energy = energy;

    std::vector<int> tabu_until(n, -1);
    for (int iter = 0; iter < options_.max_iterations; ++iter) {
      int chosen = -1;
      double chosen_delta = 0.0;
      for (int i = 0; i < n; ++i) {
        const double delta = adj.FlipDelta(x, i);
        const bool tabu = tabu_until[i] > iter;
        const bool aspiration = energy + delta < best_energy;
        if (tabu && !aspiration) continue;
        if (chosen == -1 || delta < chosen_delta) {
          chosen = i;
          chosen_delta = delta;
        }
      }
      if (chosen == -1) break;  // Everything tabu: restart would be needed.
      x[chosen] ^= 1;
      energy += chosen_delta;
      tabu_until[chosen] = iter + tenure;
      if (energy < best_energy) {
        best_energy = energy;
        best = x;
      }
    }
    result.Add(Sample{best, best_energy, 0.0});
  }
  return result;
}

}  // namespace anneal
}  // namespace qdm
