#include "qdm/anneal/noisy_solver.h"

#include "qdm/common/check.h"
#include "qdm/common/strings.h"

namespace qdm {
namespace anneal {

NoisySolver::NoisySolver(std::string registry_name, NoiseSpec spec,
                         std::string base_name,
                         std::unique_ptr<QuboSolver> base)
    : registry_name_(std::move(registry_name)),
      spec_(spec),
      base_name_(std::move(base_name)),
      base_(std::move(base)) {
  QDM_CHECK(base_ != nullptr);
}

Result<SampleSet> NoisySolver::Solve(const Qubo& qubo,
                                     const SolverOptions& options) {
  if (options.noise.channel != NoiseChannel::kNone) {
    return Status::InvalidArgument(StrFormat(
        "solver '%s': options.noise is already set ('%s'); a noisy:* "
        "backend supplies its own model",
        registry_name_.c_str(), options.noise.ToString().c_str()));
  }
  if (spec_.IsNoiseless()) {
    // A zero-rate model perturbs nothing: delegate with options untouched so
    // the result is bit-identical to the bare base backend.
    return base_->Solve(qubo, options);
  }
  SolverOptions noisy = options;
  noisy.noise = spec_;
  Result<SampleSet> samples = base_->Solve(qubo, noisy);
  if (!samples.ok()) {
    return Status(samples.status().code(),
                  StrFormat("noisy base '%s': %s", base_name_.c_str(),
                            samples.status().message().c_str()));
  }
  return samples;
}

Result<std::vector<SampleSet>> NoisySolver::SolveBatchThreaded(
    const std::vector<Qubo>& qubos, const SolverOptions& options,
    int num_threads) {
  // Reached only when the base solves whole batches (the adaptive:*
  // selector): forward the batch with the same options transform Solve
  // applies per instance — the noise spec is seed-independent, so
  // injecting it before or after per-instance seed derivation is
  // equivalent, and the base keeps its cross-instance schedule.
  if (options.noise.channel != NoiseChannel::kNone) {
    // The sequential reference reports this per instance; instance 0 is
    // the lowest-index failure.
    return AnnotateBatchInstanceError(
        Status::InvalidArgument(StrFormat(
            "solver '%s': options.noise is already set ('%s'); a noisy:* "
            "backend supplies its own model",
            registry_name_.c_str(), options.noise.ToString().c_str())),
        0, qubos.size());
  }
  if (spec_.IsNoiseless()) {
    return base_->SolveBatchThreaded(qubos, options, num_threads);
  }
  SolverOptions noisy = options;
  noisy.noise = spec_;
  // Base failures keep the base's own framing here (the per-instance
  // "noisy base" prefix of Solve cannot be threaded through the base's
  // batch annotation); status codes are unchanged.
  return base_->SolveBatchThreaded(qubos, noisy, num_threads);
}

Result<std::unique_ptr<QuboSolver>> MakeNoisySolver(const std::string& name) {
  const std::string kPrefix = "noisy:";
  if (!StartsWith(name, kPrefix)) {
    return Status::InvalidArgument(
        StrFormat("noisy solver name '%s' must start with '%s'", name.c_str(),
                  kPrefix.c_str()));
  }
  const std::string rest = name.substr(kPrefix.size());
  if (StartsWith(rest, kPrefix)) {
    return Status::InvalidArgument(StrFormat(
        "nested noisy backends are not supported ('%s' inside '%s'): one "
        "noise model per backend",
        rest.c_str(), name.c_str()));
  }
  const size_t colon = rest.find(':');
  if (colon == std::string::npos || colon == 0 || colon + 1 >= rest.size()) {
    return Status::InvalidArgument(StrFormat(
        "noisy solver name '%s' must have the form 'noisy:<model>:<base>'",
        name.c_str()));
  }
  const std::string model_token = rest.substr(0, colon);
  const std::string base = rest.substr(colon + 1);
  if (StartsWith(base, kPrefix)) {
    return Status::InvalidArgument(StrFormat(
        "nested noisy backends are not supported ('%s' inside '%s'): one "
        "noise model per backend",
        base.c_str(), name.c_str()));
  }
  Result<NoiseSpec> spec = ParseNoiseSpec(model_token);
  if (!spec.ok()) {
    return Status(spec.status().code(),
                  StrFormat("noisy solver '%s': %s", name.c_str(),
                            spec.status().message().c_str()));
  }
  // Resolve (not just Contains) so the base's real diagnosis survives — e.g.
  // a malformed embedded topology spec stays InvalidArgument with the spec
  // error; an unknown name stays the registry's NotFound — annotated with
  // the full noisy spec either way.
  Result<std::unique_ptr<QuboSolver>> base_solver =
      SolverRegistry::Global().Create(base);
  if (!base_solver.ok()) {
    return Status(base_solver.status().code(),
                  StrFormat("noisy solver '%s' wraps base '%s': %s",
                            name.c_str(), base.c_str(),
                            base_solver.status().message().c_str()));
  }
  return std::unique_ptr<QuboSolver>(
      std::make_unique<NoisySolver>(name, std::move(spec).value(), base,
                                    std::move(base_solver).value()));
}

bool RegisterNoisySolvers() {
  auto& registry = SolverRegistry::Global();
  // Any well-formed "noisy:<model>:<base>" name resolves on demand.
  (void)registry.RegisterPrefix("noisy:", MakeNoisySolver);
  // Eagerly register the canonical NISQ scenario so it shows up in
  // RegisteredNames() (and is covered by the every-registered-backend
  // tests). AlreadyExists on re-entry is expected and harmless.
  const char* kDefault = "noisy:depol@0.01:qaoa";
  (void)registry.Register(kDefault, [kDefault] {
    Result<std::unique_ptr<QuboSolver>> solver = MakeNoisySolver(kDefault);
    QDM_CHECK(solver.ok()) << "default noisy backend '" << kDefault
                           << "' failed to build: " << solver.status();
    return std::move(solver).value();
  });
  return true;
}

namespace {
[[maybe_unused]] const bool kNoisySolversRegistered = RegisterNoisySolvers();
}  // namespace

}  // namespace anneal
}  // namespace qdm
