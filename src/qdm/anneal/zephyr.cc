#include "qdm/anneal/zephyr.h"

#include <algorithm>

#include "qdm/common/check.h"
#include "qdm/common/strings.h"

namespace qdm {
namespace anneal {

ZephyrGraph::ZephyrGraph(int m, int t) : m_(m), t_(t) {
  QDM_CHECK_GE(m, 1);
  QDM_CHECK_GE(t, 1);
}

int ZephyrGraph::Qubit(int u, int w, int k, int j, int z) const {
  QDM_CHECK(u >= 0 && u < 2 && w >= 0 && w <= 2 * m_ && k >= 0 && k < t_ &&
            j >= 0 && j < 2 && z >= 0 && z < m_);
  return (((u * (2 * m_ + 1) + w) * t_ + k) * 2 + j) * m_ + z;
}

ZephyrGraph::Coord ZephyrGraph::Decode(int id) const {
  QDM_CHECK(id >= 0 && id < num_qubits());
  const int z = id % m_;
  int rest = id / m_;
  const int j = rest % 2;
  rest /= 2;
  const int k = rest % t_;
  rest /= t_;
  return Coord{rest / (2 * m_ + 1), rest % (2 * m_ + 1), k, j, z};
}

std::string ZephyrGraph::name() const {
  return StrFormat("zephyr:%dx%d", m_, t_);
}

bool ZephyrGraph::HasEdge(int a, int b) const {
  if (a == b) return false;
  const Coord qa = Decode(a);
  const Coord qb = Decode(b);
  if (qa.u == qb.u) {
    if (qa.w != qb.w || qa.k != qb.k) return false;
    // External: same half-offset, consecutive positions.
    if (qa.j == qb.j) return qa.z - qb.z == 1 || qb.z - qa.z == 1;
    // Odd: opposite half-offsets whose two-cell spans overlap by one cell.
    const Coord& j0 = qa.j == 0 ? qa : qb;
    const Coord& j1 = qa.j == 0 ? qb : qa;
    return j1.z == j0.z || j1.z == j0.z - 1;
  }
  // Internal: the horizontal qubit's row lies in the vertical qubit's span
  // and vice versa.
  const Coord& v = qa.u == 0 ? qa : qb;
  const Coord& h = qa.u == 0 ? qb : qa;
  const int v_lo = 2 * v.z + v.j;
  const int h_lo = 2 * h.z + h.j;
  return (h.w == v_lo || h.w == v_lo + 1) && (v.w == h_lo || v.w == h_lo + 1);
}

std::vector<std::pair<int, int>> ZephyrGraph::Edges() const {
  std::vector<std::pair<int, int>> edges;
  for (int u = 0; u < 2; ++u) {
    for (int w = 0; w <= 2 * m_; ++w) {
      for (int k = 0; k < t_; ++k) {
        for (int z = 0; z < m_; ++z) {
          for (int j = 0; j < 2; ++j) {
            const int q = Qubit(u, w, k, j, z);
            if (z + 1 < m_) edges.emplace_back(q, Qubit(u, w, k, j, z + 1));
          }
          // Odd couplers, anchored at the j = 0 segment: (0, z) overlaps
          // (1, z - 1) and (1, z).
          const int q0 = Qubit(u, w, k, 0, z);
          if (z > 0) {
            const int q1 = Qubit(u, w, k, 1, z - 1);
            edges.emplace_back(std::min(q0, q1), std::max(q0, q1));
          }
          edges.emplace_back(std::min(q0, Qubit(u, w, k, 1, z)),
                             std::max(q0, Qubit(u, w, k, 1, z)));
        }
      }
    }
  }
  // Internal couplers: each vertical segment spans two rows; in each row it
  // crosses the (at most two) horizontal segments per track that cover its
  // column.
  for (int w = 0; w <= 2 * m_; ++w) {
    for (int k = 0; k < t_; ++k) {
      for (int j = 0; j < 2; ++j) {
        for (int z = 0; z < m_; ++z) {
          const int v = Qubit(0, w, k, j, z);
          for (int row = 2 * z + j; row <= 2 * z + j + 1; ++row) {
            for (int hk = 0; hk < t_; ++hk) {
              for (int start = w - 1; start <= w; ++start) {
                if (start < 0) continue;
                const int hj = start & 1;
                const int hz = start >> 1;
                if (hz >= m_) continue;
                const int h = Qubit(1, row, hk, hj, hz);
                edges.emplace_back(std::min(v, h), std::max(v, h));
              }
            }
          }
        }
      }
    }
  }
  return edges;
}

Result<std::vector<std::vector<int>>> ZephyrGraph::CliqueChains(
    int num_logical) const {
  if (num_logical > CliqueCapacity()) {
    return Status::ResourceExhausted(StrFormat(
        "clique embedding of K_%d exceeds the %d-variable capacity of %s",
        num_logical, CliqueCapacity(), name().c_str()));
  }
  // TRIAD over the Chimera C(2m, 2m, t) copy: cell (r, c) takes the vertical
  // segments covering rows {r, r+1} in column c and the horizontal segments
  // covering columns {c, c+1} in row r; consecutive cells along a line are
  // joined by odd couplers (overlapping spans).
  return TriadCliqueChains(
      num_logical, t_,
      [this](int r, int c, int i) {
        return Qubit(0, c, i, r & 1, r >> 1);
      },
      [this](int r, int c, int i) {
        return Qubit(1, r, i, c & 1, c >> 1);
      });
}

}  // namespace anneal
}  // namespace qdm
