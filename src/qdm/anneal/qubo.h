#ifndef QDM_ANNEAL_QUBO_H_
#define QDM_ANNEAL_QUBO_H_

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

namespace qdm {
namespace anneal {

/// A 0/1 assignment to QUBO variables.
using Assignment = std::vector<int>;

/// Quadratic Unconstrained Binary Optimization model:
///
///   E(x) = offset + sum_i a_i x_i + sum_{i<j} b_ij x_i x_j,   x in {0,1}^n
///
/// This is the lingua franca of the paper's Figure 2: every data management
/// problem in Table I (MQO, join ordering, schema matching, transaction
/// scheduling) is reformulated as a Qubo and handed to an annealer or to a
/// gate-based algorithm (QAOA/VQE/Grover).
class Qubo {
 public:
  explicit Qubo(int num_variables);

  int num_variables() const { return num_variables_; }

  /// Adds `weight * x_i`.
  void AddLinear(int i, double weight);

  /// Adds `weight * x_i x_j` (i != j; key order normalized).
  void AddQuadratic(int i, int j, double weight);

  /// Adds a constant to every energy.
  void AddOffset(double offset) { offset_ += offset; }

  double linear(int i) const;
  double quadratic(int i, int j) const;
  double offset() const { return offset_; }
  const std::map<std::pair<int, int>, double>& quadratic_terms() const {
    return quadratic_;
  }

  /// E(x) for a full assignment.
  double Energy(const Assignment& x) const;

  /// Energy change from flipping variable i in assignment x. O(deg(i)).
  double FlipDelta(const Assignment& x, int i) const;

  // -- Constraint-to-penalty helpers (the standard QUBO encodings) -----------

  /// Adds penalty * (sum_{v in vars} x_v - 1)^2: "exactly one of vars".
  void AddExactlyOnePenalty(const std::vector<int>& vars, double penalty);

  /// Adds penalty * sum_{u<v} x_u x_v: "at most one of vars".
  void AddAtMostOnePenalty(const std::vector<int>& vars, double penalty);

  /// Largest |coefficient|; used to auto-scale penalties and temperature
  /// schedules.
  double MaxAbsCoefficient() const;

  /// Neighbors of variable i in the quadratic interaction graph.
  std::vector<int> Neighbors(int i) const;

  std::string ToString() const;

 private:
  int num_variables_;
  double offset_ = 0.0;
  std::vector<double> linear_;
  std::map<std::pair<int, int>, double> quadratic_;
};

/// Ising model over spins s in {-1,+1}^n:
///   E(s) = offset + sum_i h_i s_i + sum_{i<j} J_ij s_i s_j
/// The physical layer of annealers speaks Ising; the logical layer speaks
/// QUBO. The two are related by x = (1+s)/2.
struct IsingModel {
  int num_spins = 0;
  double offset = 0.0;
  std::vector<double> h;
  std::map<std::pair<int, int>, double> j;

  double Energy(const std::vector<int>& spins) const;
};

/// Exact QUBO -> Ising transformation (energies preserved:
/// E_qubo(x) == E_ising(2x-1)).
IsingModel QuboToIsing(const Qubo& qubo);

/// Exact Ising -> QUBO transformation (inverse of QuboToIsing).
Qubo IsingToQubo(const IsingModel& ising);

}  // namespace anneal
}  // namespace qdm

#endif  // QDM_ANNEAL_QUBO_H_
