#include "qdm/anneal/exact_solver.h"

#include "qdm/anneal/simulated_annealing.h"
#include "qdm/common/check.h"

namespace qdm {
namespace anneal {

Sample ExactSolver::Solve(const Qubo& qubo) {
  const int n = qubo.num_variables();
  QDM_CHECK_LE(n, 30) << "ExactSolver enumerates 2^n assignments";
  const QuboAdjacency adj(qubo);

  Assignment x(n, 0);
  double energy = adj.Energy(x);
  Assignment best = x;
  double best_energy = energy;

  // Gray-code walk: step k flips bit ctz(k).
  const uint64_t total = uint64_t{1} << n;
  for (uint64_t k = 1; k < total; ++k) {
    const int bit = __builtin_ctzll(k);
    energy += adj.FlipDelta(x, bit);
    x[bit] ^= 1;
    if (energy < best_energy) {
      best_energy = energy;
      best = x;
    }
  }
  return Sample{best, best_energy, 0.0};
}

SampleSet ExactSolver::SampleQubo(const Qubo& qubo, int /*num_reads*/,
                              Rng* /*rng*/) {
  SampleSet set;
  set.Add(Solve(qubo));
  return set;
}

}  // namespace anneal
}  // namespace qdm
