#include "qdm/anneal/noise_spec.h"

#include <cstdlib>
#include <vector>

#include "qdm/common/strings.h"

namespace qdm {
namespace anneal {

namespace {

/// Parses one probability field of `token`, rejecting non-numeric text and
/// values outside [0, 1] with the full token in the message.
Result<double> ParseRate(const std::string& token, const std::string& field) {
  if (field.empty()) {
    return Status::InvalidArgument(
        StrFormat("noise model '%s' has an empty rate", token.c_str()));
  }
  const char* begin = field.c_str();
  char* end = nullptr;
  const double value = std::strtod(begin, &end);
  if (end != begin + field.size()) {
    return Status::InvalidArgument(StrFormat(
        "noise model '%s' has unparseable rate '%s'", token.c_str(),
        field.c_str()));
  }
  if (!(value >= 0.0 && value <= 1.0)) {
    return Status::InvalidArgument(
        StrFormat("noise model '%s' rate %g outside [0, 1]", token.c_str(),
                  value));
  }
  return value;
}

}  // namespace

bool NoiseSpec::IsNoiseless() const {
  if (channel == NoiseChannel::kNone) return true;
  if (channel == NoiseChannel::kPauli) {
    return px == 0.0 && py == 0.0 && pz == 0.0;
  }
  return p == 0.0;
}

std::string NoiseSpec::ToString() const {
  switch (channel) {
    case NoiseChannel::kNone:
      return "none";
    case NoiseChannel::kDepolarizing:
      return StrFormat("depol@%g", p);
    case NoiseChannel::kPauli:
      return StrFormat("pauli@%g,%g,%g", px, py, pz);
    case NoiseChannel::kAmplitudeDamping:
      return StrFormat("damp@%g", p);
    case NoiseChannel::kPhaseDamping:
      return StrFormat("phase@%g", p);
    case NoiseChannel::kReadout:
      return StrFormat("readout@%g", p);
  }
  return "none";
}

Result<NoiseSpec> ParseNoiseSpec(const std::string& token) {
  if (token.empty()) {
    return Status::InvalidArgument(
        "noise model token is empty ('<channel>@<rate>' expected)");
  }
  const size_t at = token.find('@');
  if (at == std::string::npos) {
    return Status::InvalidArgument(StrFormat(
        "noise model '%s' is missing its '@<rate>' parameter", token.c_str()));
  }
  const std::string channel = token.substr(0, at);
  const std::string rates = token.substr(at + 1);

  NoiseSpec spec;
  if (channel == "depol") {
    spec.channel = NoiseChannel::kDepolarizing;
  } else if (channel == "pauli") {
    spec.channel = NoiseChannel::kPauli;
  } else if (channel == "damp") {
    spec.channel = NoiseChannel::kAmplitudeDamping;
  } else if (channel == "phase") {
    spec.channel = NoiseChannel::kPhaseDamping;
  } else if (channel == "readout") {
    spec.channel = NoiseChannel::kReadout;
  } else {
    return Status::InvalidArgument(StrFormat(
        "noise model '%s' names unknown channel '%s' (known: damp, depol, "
        "pauli, phase, readout)",
        token.c_str(), channel.c_str()));
  }

  if (spec.channel == NoiseChannel::kPauli) {
    const std::vector<std::string> fields = StrSplit(rates, ',');
    if (fields.size() != 3) {
      return Status::InvalidArgument(StrFormat(
          "noise model '%s' needs three ','-separated rates "
          "('pauli@<px>,<py>,<pz>')",
          token.c_str()));
    }
    QDM_ASSIGN_OR_RETURN(spec.px, ParseRate(token, fields[0]));
    QDM_ASSIGN_OR_RETURN(spec.py, ParseRate(token, fields[1]));
    QDM_ASSIGN_OR_RETURN(spec.pz, ParseRate(token, fields[2]));
    if (spec.px + spec.py + spec.pz > 1.0) {
      return Status::InvalidArgument(
          StrFormat("noise model '%s' rates sum to %g > 1", token.c_str(),
                    spec.px + spec.py + spec.pz));
    }
    return spec;
  }
  QDM_ASSIGN_OR_RETURN(spec.p, ParseRate(token, rates));
  return spec;
}

}  // namespace anneal
}  // namespace qdm
