#ifndef QDM_ANNEAL_SOLVER_H_
#define QDM_ANNEAL_SOLVER_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "qdm/anneal/embedding.h"
#include "qdm/anneal/noise_spec.h"
#include "qdm/anneal/qubo.h"
#include "qdm/anneal/sampler.h"
#include "qdm/common/rng.h"
#include "qdm/common/status.h"

namespace qdm {
namespace anneal {

/// Backend-neutral configuration for QuboSolver::Solve / SolveBatch calls.
///
/// Zero-means-default convention: every tuning knob treats its zero value
/// ("0", "0.0") as "use the backend's built-in default" — callers set only
/// the knobs they care about and hand the same struct to interchangeable
/// backends. Each backend reads only the knobs it understands and silently
/// ignores the rest. The per-knob rules:
///
///   num_reads        > 0 required (no zero-default; 0 is InvalidArgument).
///   rng / seed       see below — not zero-defaulted knobs.
///   num_sweeps       0 = backend default sweep count (annealing family).
///   beta_min/beta_max both 0 = auto-scale the inverse-temperature ladder
///                    from the problem; setting only one of the pair, or a
///                    negative value, or beta_min > beta_max is
///                    InvalidArgument (never an abort).
///   num_replicas     0 = parallel_tempering's default replica count.
///   swap_interval    0 = parallel_tempering's default swap cadence.
///   max_iterations   0 = tabu_search's default iteration budget.
///   tenure           0 = tabu_search's default tabu tenure.
///   layers           0 = default circuit depth (qaoa/vqe).
///   restarts         0 = default optimizer restarts (qaoa/vqe).
///   max_qubits       0 = backend default state-vector guard; a positive
///                    value moves the guard but is always clamped to the
///                    26-qubit diagonal cap. Oversized problems are rejected
///                    with InvalidArgument.
///   chain_strength   0.0 = auto-scale from the logical model (twice the
///                    largest |Ising coefficient|); negative is
///                    InvalidArgument. Read only by embedded:* backends.
///   chain_break_policy  zero enumerator kMajorityVote is the default;
///                    read only by embedded:* backends.
///   noise            default-constructed NoiseSpec (channel kNone) = exact
///                    noiseless simulation. Read only by the gate-based
///                    bridges (qaoa/vqe/grover_min), which then sample
///                    through the sim/ noise machinery and surface a
///                    noise_fidelity on the SampleSet; classical backends
///                    ignore it like any other unknown knob. Normally set
///                    via the `noisy:<model>:<base>` registry family
///                    rather than by hand (docs/noise.md).
///
/// Randomness: when `rng` is non-null it is used directly (and `seed` is
/// ignored); otherwise the solver seeds a local Rng from `seed` (seed 0
/// meaning the library's fixed default seed). Batch entry points derive a
/// distinct per-instance seed (see DeriveBatchOptions) and only honor `rng`
/// on the strictly sequential path.
struct SolverOptions {
  /// Number of solutions drawn (ground-truth solvers may return fewer).
  int num_reads = 10;

  Rng* rng = nullptr;
  uint64_t seed = 0;

  // -- Annealing family (simulated_annealing, parallel_tempering) ------------
  int num_sweeps = 0;
  double beta_min = 0.0;
  double beta_max = 0.0;
  int num_replicas = 0;
  int swap_interval = 0;

  // -- Tabu search -----------------------------------------------------------
  int max_iterations = 0;
  int tenure = 0;

  // -- Gate-based bridges (qaoa, vqe, grover_min) ----------------------------
  int layers = 0;
  int restarts = 0;
  int max_qubits = 0;

  // -- Embedded hardware-topology backends (embedded:<base>:<topology>) ------
  double chain_strength = 0.0;
  ChainBreakPolicy chain_break_policy = ChainBreakPolicy::kMajorityVote;

  // -- Noisy gate-based simulation (noisy:<model>:<base>) --------------------
  NoiseSpec noise;
};

/// Strategy interface of the hybrid quantum/classical architecture (Figure 2
/// of the paper; cf. Hai et al. and Zajac & Stoerl): data management
/// applications reformulate their problem as a Qubo and dispatch it — via
/// the shared qopt::QuboPipeline encode→dispatch→decode helper — to an
/// interchangeable backend obtained *by name* from the SolverRegistry; they
/// never instantiate a concrete solver class. Backends report misuse (e.g. a
/// problem too large for the method) as an error Status rather than dying.
class QuboSolver {
 public:
  virtual ~QuboSolver() = default;

  virtual Result<SampleSet> Solve(const Qubo& qubo,
                                  const SolverOptions& options) = 0;

  /// Solves a batch of independent instances. Contract (which overrides must
  /// preserve so the parallel fan-out stays interchangeable with this
  /// sequential reference):
  ///
  ///  - Ordering: result[i] is the SampleSet for qubos[i]; the output vector
  ///    has exactly qubos.size() entries on success.
  ///  - Randomness: with options.rng == nullptr, instance i is solved with
  ///    DeriveBatchOptions(options, i) — i.e. seed + i — making the batch a
  ///    pure function of (qubos, options) independent of execution order or
  ///    thread count. A non-null options.rng is honored here (shared,
  ///    sequential, order-dependent) but rejected by the parallel fan-out.
  ///  - Partial failure: all-or-nothing. The Status of the lowest-index
  ///    failing instance is returned, annotated "batch instance <i>:" when
  ///    the batch has more than one instance (a batch of one reports the
  ///    bare underlying error, so the single-shot batch-of-one wrappers
  ///    keep their original messages), and no partial results are exposed.
  ///    Instances after a failure may or may not have been attempted.
  virtual Result<std::vector<SampleSet>> SolveBatch(
      const std::vector<Qubo>& qubos, const SolverOptions& options);

  /// Whole-batch orchestration hook. SolveBatchParallel's fan-out reuses one
  /// backend per worker and assigns instances to workers dynamically, which
  /// requires Solve to be a pure function of (qubo, options). A backend
  /// whose Solve carries state across calls — the adaptive:* selector's
  /// explore/commit counter is the in-tree case — returns true here, and
  /// SolveBatchParallel hands it the WHOLE batch via SolveBatchThreaded so
  /// the backend can keep its cross-instance schedule deterministic while
  /// still parallelizing internally. Wrappers around such a backend must
  /// forward both hooks (see NoisySolver).
  virtual bool SolvesWholeBatch() const { return false; }

  /// Batch entry with a thread budget, used by SolveBatchParallel when
  /// SolvesWholeBatch() is true. Overrides must preserve the SolveBatch
  /// contract above plus the parallel fan-out's guarantees: results
  /// bit-identical for every num_threads value (num_threads <= 0 meaning
  /// ThreadPool::DefaultNumThreads()), and options.rng rejected as
  /// InvalidArgument unless num_threads == 1. The default ignores
  /// num_threads and runs the sequential SolveBatch reference.
  virtual Result<std::vector<SampleSet>> SolveBatchThreaded(
      const std::vector<Qubo>& qubos, const SolverOptions& options,
      int num_threads);

  /// Registry key and report-table label ("simulated_annealing", ...).
  virtual std::string name() const = 0;
};

/// Process-global name -> solver factory table. The four anneal-layer
/// backends (simulated_annealing, parallel_tempering, tabu_search, exact)
/// register themselves on first access; higher layers add more via static
/// registrars, which is why the build links qdm as an object library (the
/// gate-based bridges in qdm/algo register qaoa, vqe, and grover_min; the
/// embedded hardware-topology backends in qdm/anneal/embedded_solver.cc
/// register a default "embedded:<base>:<topology>" set plus the "embedded:"
/// prefix resolver; the portfolio backends in qdm/anneal/portfolio_solver.cc
/// register "race:simulated_annealing+tabu_search" plus the "race:" prefix
/// resolver).
class SolverRegistry {
 public:
  using Factory = std::function<std::unique_ptr<QuboSolver>()>;
  /// Builds a solver from a full name that was not exactly registered; used
  /// for parameterized families. Returns an error to reject the name (e.g.
  /// a malformed topology spec) — the error is surfaced verbatim by Create.
  using DynamicFactory =
      std::function<Result<std::unique_ptr<QuboSolver>>(const std::string&)>;

  static SolverRegistry& Global();

  /// Fails with AlreadyExists when `name` is taken.
  Status Register(const std::string& name, Factory factory);

  /// Registers a resolver for every name starting with `prefix` that has no
  /// exact registration ("embedded:" is the in-tree user). Exact entries
  /// always win; when several prefixes match, the longest wins. Fails with
  /// AlreadyExists when `prefix` is taken.
  Status RegisterPrefix(const std::string& prefix, DynamicFactory factory);

  /// True when `name` is exactly registered or a prefix resolver accepts it
  /// (the resolver is invoked, so this constructs and discards a backend —
  /// cheap for the plain solvers, and kept cheap for embedded:* by the
  /// topology/embedding cache in backend_cache.h; prefer Create when the
  /// instance is wanted anyway).
  bool Contains(const std::string& name) const;

  /// Exactly-registered names, sorted. Prefix-resolved families are
  /// represented by their eagerly-registered defaults only: the name space
  /// of e.g. "embedded:*" is unbounded and cannot be enumerated.
  std::vector<std::string> RegisteredNames() const;

  /// Instantiates the backend registered under `name`, falling back to the
  /// longest matching prefix resolver; NotFound (listing the registered
  /// names) when nothing matches.
  Result<std::unique_ptr<QuboSolver>> Create(const std::string& name) const;

 private:
  SolverRegistry();

  mutable std::mutex mutex_;
  std::map<std::string, Factory> factories_;
  std::map<std::string, DynamicFactory> prefix_factories_;
};

/// One-shot convenience: Create(solver_name) then Solve.
Result<SampleSet> SolveWith(const std::string& solver_name, const Qubo& qubo,
                            const SolverOptions& options);

/// Like SolveWith, but returns only the lowest-energy sample and converts an
/// empty sample set into an Internal error. (The qopt applications now share
/// this tail through qopt::QuboPipeline, which uses the batch sibling
/// BestOfEach; this single-shot form remains for direct registry users.)
Result<Sample> SolveForBest(const std::string& solver_name, const Qubo& qubo,
                            const SolverOptions& options);

// -- Batched solving ----------------------------------------------------------

/// Registry-level batch entry point: creates backend(s) registered under
/// `solver_name` and solves all `qubos`, fanning instances out across a
/// qdm::ThreadPool when num_threads != 1.
///
///  - num_threads == 1: strictly sequential on the calling thread via the
///    backend's SolveBatch (the only mode that honors options.rng).
///  - num_threads <= 0: uses ThreadPool::DefaultNumThreads().
///  - num_threads > 1: fans instances out across min(num_threads, batch
///    size) workers via ThreadPool::ParallelForWorkers (dynamic index
///    scheduling), one backend instance per WORKER, reused across every
///    instance that worker drains (QuboSolver implementations are not
///    required to be thread-safe, but one object is never shared across
///    threads). Requires options.rng == nullptr (InvalidArgument
///    otherwise): a shared RNG cannot fan out. Backends that report
///    SolvesWholeBatch() are instead handed the whole batch once via
///    SolveBatchThreaded (see QuboSolver).
///
/// Determinism guarantee: with options.rng == nullptr, instance i is always
/// solved with seed options.seed + i, so the returned SampleSets are
/// bit-identical for every num_threads value. Error semantics follow
/// QuboSolver::SolveBatch (all-or-nothing, lowest failing index reported).
Result<std::vector<SampleSet>> SolveBatchParallel(
    const std::string& solver_name, const std::vector<Qubo>& qubos,
    const SolverOptions& options, int num_threads = 0);

/// The per-instance options a batch entry solves instance `index` with:
/// identical knobs, rng cleared, and seed = options.seed + index (wrapping
/// uint64 arithmetic). Exposed so SolveBatch overrides and tests can
/// reproduce exactly what the default implementations do.
SolverOptions DeriveBatchOptions(const SolverOptions& options, size_t index);

/// Prefixes a per-instance failure with its batch position ("batch instance
/// <i>: ..."), preserving the original code so callers can still dispatch on
/// it. Batches of one keep the bare error: the single-shot entry points are
/// batch-of-one wrappers and their callers never asked for batch framing.
/// Exposed so SolveBatchThreaded overrides frame their per-instance errors
/// exactly like the sequential reference.
Status AnnotateBatchInstanceError(const Status& status, size_t index,
                                  size_t batch_size);

/// Maps each SampleSet of a batch to its lowest-energy sample, converting an
/// empty set into an Internal error naming the batch instance — the batch
/// sibling of SolveForBest and the shared tail of qopt::QuboPipeline (and
/// therefore of every qopt entry point, single-shot and batched alike).
Result<std::vector<Sample>> BestOfEach(const std::vector<SampleSet>& sets,
                                       const std::string& solver_name);

// -- Helpers for QuboSolver implementations ----------------------------------

/// Resolves the caller's Rng or materializes one in `storage` seeded from
/// `options.seed`. Shared by every backend so rng/seed semantics cannot
/// diverge between the annealing and gate-based families.
Rng* ResolveSolverRng(const SolverOptions& options,
                      std::optional<Rng>* storage);

/// Validates the backend-independent knobs: num_reads must be positive, and
/// the inverse-temperature ladder must be either fully unset (auto-scaling)
/// or a non-negative pair with beta_min <= beta_max — half-set or inverted
/// ladders are rejected.
Status ValidateSolverOptions(const SolverOptions& options);

/// Adapts a QuboSolver (with fixed options) back to the Sampler interface so
/// that sampler combinators (e.g. EmbeddedSampler) can compose registry
/// backends. The wrapper owns the solver; Solve errors abort, so validate
/// inputs beforehand when using this path.
std::unique_ptr<Sampler> WrapAsSampler(std::unique_ptr<QuboSolver> solver,
                                       SolverOptions options);

}  // namespace anneal
}  // namespace qdm

#endif  // QDM_ANNEAL_SOLVER_H_
