#ifndef QDM_ANNEAL_SOLVER_H_
#define QDM_ANNEAL_SOLVER_H_

#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "qdm/anneal/qubo.h"
#include "qdm/anneal/sampler.h"
#include "qdm/common/rng.h"
#include "qdm/common/status.h"

namespace qdm {
namespace anneal {

/// Backend-neutral configuration for one QuboSolver::Solve call. Every knob
/// has a "use the backend default" zero value; each backend reads only the
/// knobs it understands and ignores the rest, so one options struct can be
/// handed unchanged to interchangeable solvers.
struct SolverOptions {
  /// Number of solutions drawn (ground-truth solvers may return fewer).
  int num_reads = 10;

  /// Randomness: when `rng` is non-null it is used directly (and `seed` is
  /// ignored); otherwise the solver seeds a local Rng from `seed`.
  Rng* rng = nullptr;
  uint64_t seed = 0;

  // -- Annealing family (simulated_annealing, parallel_tempering) ------------
  int num_sweeps = 0;
  double beta_min = 0.0;
  double beta_max = 0.0;
  int num_replicas = 0;
  int swap_interval = 0;

  // -- Tabu search -----------------------------------------------------------
  int max_iterations = 0;
  int tenure = 0;

  // -- Gate-based bridges (qaoa, vqe, grover_min) ----------------------------
  int layers = 0;
  int restarts = 0;
  /// State-vector guard; problems with more variables than this are rejected
  /// with an InvalidArgument status instead of attempted.
  int max_qubits = 0;
};

/// Strategy interface of the hybrid quantum/classical architecture (Figure 2
/// of the paper; cf. Hai et al. and Zajac & Stoerl): data management
/// applications reformulate their problem as a Qubo and dispatch it to an
/// interchangeable backend obtained *by name* from the SolverRegistry — they
/// never instantiate a concrete solver class. Backends report misuse (e.g. a
/// problem too large for the method) as an error Status rather than dying.
class QuboSolver {
 public:
  virtual ~QuboSolver() = default;

  virtual Result<SampleSet> Solve(const Qubo& qubo,
                                  const SolverOptions& options) = 0;

  /// Registry key and report-table label ("simulated_annealing", ...).
  virtual std::string name() const = 0;
};

/// Process-global name -> solver factory table. The four anneal-layer
/// backends (simulated_annealing, parallel_tempering, tabu_search, exact)
/// register themselves on first access; higher layers add more (the
/// gate-based bridges in qdm/algo register qaoa, vqe, and grover_min via a
/// static registrar, which is why the build links qdm as an object library).
class SolverRegistry {
 public:
  using Factory = std::function<std::unique_ptr<QuboSolver>()>;

  static SolverRegistry& Global();

  /// Fails with AlreadyExists when `name` is taken.
  Status Register(const std::string& name, Factory factory);

  bool Contains(const std::string& name) const;

  /// Registered names, sorted.
  std::vector<std::string> RegisteredNames() const;

  /// Instantiates the backend registered under `name`; NotFound (listing the
  /// registered names) for unknown solvers.
  Result<std::unique_ptr<QuboSolver>> Create(const std::string& name) const;

 private:
  SolverRegistry();

  mutable std::mutex mutex_;
  std::map<std::string, Factory> factories_;
};

/// One-shot convenience: Create(solver_name) then Solve.
Result<SampleSet> SolveWith(const std::string& solver_name, const Qubo& qubo,
                            const SolverOptions& options);

/// Like SolveWith, but returns only the lowest-energy sample and converts an
/// empty sample set into an Internal error — the shared tail of the qopt
/// SolveX entry points.
Result<Sample> SolveForBest(const std::string& solver_name, const Qubo& qubo,
                            const SolverOptions& options);

// -- Helpers for QuboSolver implementations ----------------------------------

/// Resolves the caller's Rng or materializes one in `storage` seeded from
/// `options.seed`. Shared by every backend so rng/seed semantics cannot
/// diverge between the annealing and gate-based families.
Rng* ResolveSolverRng(const SolverOptions& options, std::optional<Rng>* storage);

/// Validates the backend-independent knobs: num_reads must be positive, and
/// the inverse-temperature ladder must be either fully unset (auto-scaling)
/// or a non-negative pair with beta_min <= beta_max — half-set or inverted
/// ladders are rejected.
Status ValidateSolverOptions(const SolverOptions& options);

/// Adapts a QuboSolver (with fixed options) back to the Sampler interface so
/// that sampler combinators (e.g. EmbeddedSampler) can compose registry
/// backends. The wrapper owns the solver; Solve errors abort, so validate
/// inputs beforehand when using this path.
std::unique_ptr<Sampler> WrapAsSampler(std::unique_ptr<QuboSolver> solver,
                                       SolverOptions options);

}  // namespace anneal
}  // namespace qdm

#endif  // QDM_ANNEAL_SOLVER_H_
