#include "qdm/anneal/chimera.h"

#include <algorithm>

#include "qdm/common/check.h"
#include "qdm/common/strings.h"

namespace qdm {
namespace anneal {

ChimeraGraph::ChimeraGraph(int rows, int cols, int shore)
    : rows_(rows), cols_(cols), shore_(shore) {
  QDM_CHECK_GT(rows, 0);
  QDM_CHECK_GT(cols, 0);
  QDM_CHECK_GT(shore, 0);
}

int ChimeraGraph::VerticalQubit(int r, int c, int k) const {
  QDM_CHECK(r >= 0 && r < rows_ && c >= 0 && c < cols_ && k >= 0 && k < shore_);
  return ((r * cols_ + c) * 2 + 0) * shore_ + k;
}

int ChimeraGraph::HorizontalQubit(int r, int c, int k) const {
  QDM_CHECK(r >= 0 && r < rows_ && c >= 0 && c < cols_ && k >= 0 && k < shore_);
  return ((r * cols_ + c) * 2 + 1) * shore_ + k;
}

ChimeraGraph::QubitCoord ChimeraGraph::Decode(int id) const {
  QDM_CHECK(id >= 0 && id < num_qubits());
  const int k = id % shore_;
  const int rest = id / shore_;
  const bool horizontal = rest % 2;
  const int cell = rest / 2;
  return QubitCoord{cell / cols_, cell % cols_, k, !horizontal};
}

bool ChimeraGraph::HasEdge(int a, int b) const {
  if (a == b) return false;
  const QubitCoord qa = Decode(a);
  const QubitCoord qb = Decode(b);
  // In-cell K_{L,L}: same cell, opposite shores.
  if (qa.r == qb.r && qa.c == qb.c && qa.vertical != qb.vertical) return true;
  // Vertical inter-cell: same column, same shore offset, adjacent rows.
  if (qa.vertical && qb.vertical && qa.c == qb.c && qa.k == qb.k &&
      (qa.r - qb.r == 1 || qb.r - qa.r == 1)) {
    return true;
  }
  // Horizontal inter-cell: same row, same shore offset, adjacent columns.
  if (!qa.vertical && !qb.vertical && qa.r == qb.r && qa.k == qb.k &&
      (qa.c - qb.c == 1 || qb.c - qa.c == 1)) {
    return true;
  }
  return false;
}

std::string ChimeraGraph::name() const {
  return StrFormat("chimera:%dx%dx%d", rows_, cols_, shore_);
}

int ChimeraGraph::CliqueCapacity() const {
  return shore_ * std::min(rows_, cols_);
}

Result<std::vector<std::vector<int>>> ChimeraGraph::CliqueChains(
    int num_logical) const {
  if (num_logical > CliqueCapacity()) {
    return Status::ResourceExhausted(StrFormat(
        "clique embedding of K_%d needs shore*side >= %d but hardware offers "
        "%d",
        num_logical, num_logical, CliqueCapacity()));
  }
  return TriadCliqueChains(
      num_logical, shore_,
      [this](int r, int c, int k) { return VerticalQubit(r, c, k); },
      [this](int r, int c, int k) { return HorizontalQubit(r, c, k); });
}

std::vector<std::pair<int, int>> ChimeraGraph::Edges() const {
  std::vector<std::pair<int, int>> edges;
  for (int r = 0; r < rows_; ++r) {
    for (int c = 0; c < cols_; ++c) {
      for (int kv = 0; kv < shore_; ++kv) {
        const int v = VerticalQubit(r, c, kv);
        // In-cell bipartite edges.
        for (int kh = 0; kh < shore_; ++kh) {
          edges.emplace_back(std::min(v, HorizontalQubit(r, c, kh)),
                             std::max(v, HorizontalQubit(r, c, kh)));
        }
        // Vertical neighbor below.
        if (r + 1 < rows_) {
          edges.emplace_back(v, VerticalQubit(r + 1, c, kv));
        }
      }
      for (int kh = 0; kh < shore_; ++kh) {
        if (c + 1 < cols_) {
          edges.emplace_back(HorizontalQubit(r, c, kh),
                             HorizontalQubit(r, c + 1, kh));
        }
      }
    }
  }
  return edges;
}

}  // namespace anneal
}  // namespace qdm
