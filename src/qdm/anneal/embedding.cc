#include "qdm/anneal/embedding.h"

#include <algorithm>
#include <cmath>

#include "qdm/common/check.h"
#include "qdm/common/strings.h"

namespace qdm {
namespace anneal {

int Embedding::TotalPhysicalQubits() const {
  int total = 0;
  for (const auto& chain : chains) total += static_cast<int>(chain.size());
  return total;
}

int Embedding::MaxChainLength() const {
  int max_len = 0;
  for (const auto& chain : chains) {
    max_len = std::max(max_len, static_cast<int>(chain.size()));
  }
  return max_len;
}

const char* ToString(ChainBreakPolicy policy) {
  switch (policy) {
    case ChainBreakPolicy::kMajorityVote:
      return "majority_vote";
    case ChainBreakPolicy::kMinimizeEnergy:
      return "minimize_energy";
    case ChainBreakPolicy::kDiscard:
      return "discard";
  }
  return "unknown";
}

Result<Embedding> CliqueEmbedding(int num_logical,
                                  const HardwareTopology& topology) {
  Result<std::vector<std::vector<int>>> chains =
      topology.CliqueChains(num_logical);
  if (!chains.ok()) return chains.status();
  Embedding embedding;
  embedding.chains = std::move(chains).value();
  return embedding;
}

namespace {

/// Finds one hardware coupler connecting chain_a to chain_b, or (-1,-1).
std::pair<int, int> FindCoupler(const std::vector<int>& chain_a,
                                const std::vector<int>& chain_b,
                                const HardwareTopology& topology) {
  for (int a : chain_a) {
    for (int b : chain_b) {
      if (topology.HasEdge(a, b)) return {a, b};
    }
  }
  return {-1, -1};
}

/// The zero-means-default resolution for chain_strength: twice the largest
/// |coefficient| of the logical model in Ising space, so no single logical
/// term can profitably break a chain; 1.0 for an all-zero model.
double AutoChainStrength(const IsingModel& logical_ising) {
  double max_abs = 0.0;
  for (double h : logical_ising.h) max_abs = std::max(max_abs, std::fabs(h));
  for (const auto& [key, w] : logical_ising.j) {
    max_abs = std::max(max_abs, std::fabs(w));
  }
  return max_abs > 0.0 ? 2.0 * max_abs : 1.0;
}

}  // namespace

Result<EmbeddedQubo> EmbedQubo(const Qubo& logical, const Embedding& embedding,
                               const HardwareTopology& topology,
                               double chain_strength) {
  if (embedding.num_logical() < logical.num_variables()) {
    return Status::InvalidArgument("embedding has fewer chains than variables");
  }
  if (chain_strength < 0.0) {
    return Status::InvalidArgument(
        StrFormat("chain_strength must be non-negative (0 = auto-scale), "
                  "got %g",
                  chain_strength));
  }

  // Work in Ising space (the natural space for chain couplings), then convert.
  IsingModel logical_ising = QuboToIsing(logical);
  if (chain_strength == 0.0) chain_strength = AutoChainStrength(logical_ising);
  IsingModel physical;
  physical.num_spins = topology.num_qubits();
  physical.h.assign(physical.num_spins, 0.0);
  physical.offset = logical_ising.offset;

  // Spread linear biases uniformly over chains.
  for (int i = 0; i < logical.num_variables(); ++i) {
    const auto& chain = embedding.chains[i];
    QDM_CHECK(!chain.empty());
    for (int q : chain) physical.h[q] += logical_ising.h[i] / chain.size();
  }

  // Place each logical coupling on one hardware coupler between the chains.
  for (const auto& [key, w] : logical_ising.j) {
    if (w == 0.0) continue;
    auto [a, b] = FindCoupler(embedding.chains[key.first],
                              embedding.chains[key.second], topology);
    if (a < 0) {
      return Status::FailedPrecondition(
          StrFormat("no hardware coupler between chains of x%d and x%d",
                    key.first, key.second));
    }
    physical.j[{std::min(a, b), std::max(a, b)}] += w;
  }

  // Ferromagnetic chain bonds: -chain_strength * s_a s_b on every intra-chain
  // hardware edge (energy minimized when the chain is aligned). Compensate the
  // offset so a fully-aligned physical ground state reports the logical energy.
  int num_chain_edges = 0;
  for (int i = 0; i < logical.num_variables(); ++i) {
    const auto& chain = embedding.chains[i];
    for (size_t a = 0; a < chain.size(); ++a) {
      for (size_t b = a + 1; b < chain.size(); ++b) {
        if (topology.HasEdge(chain[a], chain[b])) {
          physical.j[{std::min(chain[a], chain[b]),
                      std::max(chain[a], chain[b])}] -= chain_strength;
          ++num_chain_edges;
        }
      }
    }
  }
  physical.offset += chain_strength * num_chain_edges;

  EmbeddedQubo out{IsingToQubo(physical), embedding, chain_strength};
  return out;
}

Sample Unembed(const Qubo& logical, const EmbeddedQubo& embedded,
               const Sample& physical_sample, ChainBreakPolicy policy) {
  const int n = logical.num_variables();
  Assignment x(n, 0);
  std::vector<bool> chain_broken(n, false);
  int broken = 0;
  for (int i = 0; i < n; ++i) {
    const auto& chain = embedded.embedding.chains[i];
    int ones = 0;
    for (int q : chain) ones += physical_sample.assignment[q];
    const int len = static_cast<int>(chain.size());
    x[i] = (2 * ones > len) ? 1 : 0;
    if (ones != 0 && ones != len) {
      chain_broken[i] = true;
      ++broken;
    }
  }
  if (policy == ChainBreakPolicy::kMinimizeEnergy && broken > 0) {
    // Deterministic single-pass repair: flip each broken chain's value when
    // that lowers the logical energy given the current assignment.
    for (int i = 0; i < n; ++i) {
      if (chain_broken[i] && logical.FlipDelta(x, i) < 0.0) x[i] = 1 - x[i];
    }
  }
  Sample out;
  out.assignment = std::move(x);
  out.energy = logical.Energy(out.assignment);
  out.chain_break_fraction = n > 0 ? static_cast<double>(broken) / n : 0.0;
  return out;
}

SampleSet UnembedAll(const Qubo& logical, const EmbeddedQubo& embedded,
                     const SampleSet& physical, ChainBreakPolicy policy) {
  SampleSet logical_set;
  for (const Sample& s : physical.samples()) {
    Sample unembedded = Unembed(logical, embedded, s, policy);
    if (policy == ChainBreakPolicy::kDiscard &&
        unembedded.chain_break_fraction > 0.0) {
      continue;
    }
    logical_set.Add(std::move(unembedded));
  }
  if (policy == ChainBreakPolicy::kDiscard && logical_set.empty() &&
      !physical.empty()) {
    // All samples broken: fall back to majority vote rather than returning
    // an empty set (see ChainBreakPolicy::kDiscard).
    for (const Sample& s : physical.samples()) {
      logical_set.Add(Unembed(logical, embedded, s,
                              ChainBreakPolicy::kMajorityVote));
    }
  }
  return logical_set;
}

SampleSet EmbeddedSampler::SampleQubo(const Qubo& qubo, int num_reads,
                                      Rng* rng) {
  Result<Embedding> embedding =
      CliqueEmbedding(qubo.num_variables(), *topology_);
  QDM_CHECK(embedding.ok()) << embedding.status().ToString();
  Result<EmbeddedQubo> embedded =
      EmbedQubo(qubo, *embedding, *topology_, chain_strength_);
  QDM_CHECK(embedded.ok()) << embedded.status().ToString();

  SampleSet physical = base_->SampleQubo(embedded->physical, num_reads, rng);
  return UnembedAll(qubo, *embedded, physical, policy_);
}

}  // namespace anneal
}  // namespace qdm
