#include "qdm/anneal/embedding.h"

#include <algorithm>

#include "qdm/common/check.h"
#include "qdm/common/strings.h"

namespace qdm {
namespace anneal {

int Embedding::TotalPhysicalQubits() const {
  int total = 0;
  for (const auto& chain : chains) total += static_cast<int>(chain.size());
  return total;
}

int Embedding::MaxChainLength() const {
  int max_len = 0;
  for (const auto& chain : chains) {
    max_len = std::max(max_len, static_cast<int>(chain.size()));
  }
  return max_len;
}

Result<Embedding> CliqueEmbedding(int num_logical, const ChimeraGraph& graph) {
  const int side = std::min(graph.rows(), graph.cols());
  const int capacity = graph.shore() * side;
  if (num_logical > capacity) {
    return Status::ResourceExhausted(StrFormat(
        "clique embedding of K_%d needs shore*side >= %d but hardware offers %d",
        num_logical, num_logical, capacity));
  }
  Embedding embedding;
  embedding.chains.resize(num_logical);
  for (int i = 0; i < num_logical; ++i) {
    const int block = i / graph.shore();
    const int offset = i % graph.shore();
    // Vertical run: column `block`, all rows up to the used square.
    const int used = (num_logical + graph.shore() - 1) / graph.shore();
    for (int r = 0; r < used; ++r) {
      embedding.chains[i].push_back(graph.VerticalQubit(r, block, offset));
    }
    // Horizontal run: row `block`, all columns of the used square.
    for (int c = 0; c < used; ++c) {
      embedding.chains[i].push_back(graph.HorizontalQubit(block, c, offset));
    }
  }
  return embedding;
}

namespace {

/// Finds one hardware coupler connecting chain_a to chain_b, or (-1,-1).
std::pair<int, int> FindCoupler(const std::vector<int>& chain_a,
                                const std::vector<int>& chain_b,
                                const ChimeraGraph& graph) {
  for (int a : chain_a) {
    for (int b : chain_b) {
      if (graph.HasEdge(a, b)) return {a, b};
    }
  }
  return {-1, -1};
}

}  // namespace

Result<EmbeddedQubo> EmbedQubo(const Qubo& logical, const Embedding& embedding,
                               const ChimeraGraph& graph,
                               double chain_strength) {
  if (embedding.num_logical() < logical.num_variables()) {
    return Status::InvalidArgument("embedding has fewer chains than variables");
  }
  QDM_CHECK_GT(chain_strength, 0.0);

  // Work in Ising space (the natural space for chain couplings), then convert.
  IsingModel logical_ising = QuboToIsing(logical);
  IsingModel physical;
  physical.num_spins = graph.num_qubits();
  physical.h.assign(physical.num_spins, 0.0);
  physical.offset = logical_ising.offset;

  // Spread linear biases uniformly over chains.
  for (int i = 0; i < logical.num_variables(); ++i) {
    const auto& chain = embedding.chains[i];
    QDM_CHECK(!chain.empty());
    for (int q : chain) physical.h[q] += logical_ising.h[i] / chain.size();
  }

  // Place each logical coupling on one hardware coupler between the chains.
  for (const auto& [key, w] : logical_ising.j) {
    if (w == 0.0) continue;
    auto [a, b] = FindCoupler(embedding.chains[key.first],
                              embedding.chains[key.second], graph);
    if (a < 0) {
      return Status::FailedPrecondition(
          StrFormat("no hardware coupler between chains of x%d and x%d",
                    key.first, key.second));
    }
    physical.j[{std::min(a, b), std::max(a, b)}] += w;
  }

  // Ferromagnetic chain bonds: -chain_strength * s_a s_b on every intra-chain
  // hardware edge (energy minimized when the chain is aligned). Compensate the
  // offset so a fully-aligned physical ground state reports the logical energy.
  int num_chain_edges = 0;
  for (int i = 0; i < logical.num_variables(); ++i) {
    const auto& chain = embedding.chains[i];
    for (size_t a = 0; a < chain.size(); ++a) {
      for (size_t b = a + 1; b < chain.size(); ++b) {
        if (graph.HasEdge(chain[a], chain[b])) {
          physical.j[{std::min(chain[a], chain[b]),
                      std::max(chain[a], chain[b])}] -= chain_strength;
          ++num_chain_edges;
        }
      }
    }
  }
  physical.offset += chain_strength * num_chain_edges;

  EmbeddedQubo out{IsingToQubo(physical), embedding, chain_strength};
  return out;
}

Sample Unembed(const Qubo& logical, const EmbeddedQubo& embedded,
               const Sample& physical_sample) {
  const int n = logical.num_variables();
  Assignment x(n, 0);
  int broken = 0;
  for (int i = 0; i < n; ++i) {
    const auto& chain = embedded.embedding.chains[i];
    int ones = 0;
    for (int q : chain) ones += physical_sample.assignment[q];
    const int len = static_cast<int>(chain.size());
    x[i] = (2 * ones > len) ? 1 : 0;
    if (ones != 0 && ones != len) ++broken;
  }
  Sample out;
  out.assignment = std::move(x);
  out.energy = logical.Energy(out.assignment);
  out.chain_break_fraction = n > 0 ? static_cast<double>(broken) / n : 0.0;
  return out;
}

SampleSet EmbeddedSampler::SampleQubo(const Qubo& qubo, int num_reads, Rng* rng) {
  Result<Embedding> embedding = CliqueEmbedding(qubo.num_variables(), graph_);
  QDM_CHECK(embedding.ok()) << embedding.status().ToString();
  Result<EmbeddedQubo> embedded =
      EmbedQubo(qubo, *embedding, graph_, chain_strength_);
  QDM_CHECK(embedded.ok()) << embedded.status().ToString();

  SampleSet physical = base_->SampleQubo(embedded->physical, num_reads, rng);
  SampleSet logical;
  for (const anneal::Sample& s : physical.samples()) {
    logical.Add(Unembed(qubo, *embedded, s));
  }
  return logical;
}

}  // namespace anneal
}  // namespace qdm
