#ifndef QDM_ANNEAL_CHIMERA_H_
#define QDM_ANNEAL_CHIMERA_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "qdm/anneal/topology.h"

namespace qdm {
namespace anneal {

/// Chimera hardware topology C(M, N, L): an M x N grid of unit cells, each a
/// complete bipartite K_{L,L} between L "vertical" and L "horizontal" qubits.
/// Vertical qubits couple to the same shore index in the cells above/below;
/// horizontal qubits couple left/right. This is the working graph of the
/// D-Wave 2X-class annealers used by Trummer & Koch [VLDB'16]; the paper's
/// "physical level" mapping (Sec III-B) originally targeted exactly this
/// structure. It is one HardwareTopology implementation among several — its
/// successors PegasusGraph and ZephyrGraph plug into the same embedding
/// layer, and MakeTopology("chimera:MxNxL") builds one from a spec string.
class ChimeraGraph : public HardwareTopology {
 public:
  ChimeraGraph(int rows, int cols, int shore);

  int rows() const { return rows_; }
  int cols() const { return cols_; }
  int shore() const { return shore_; }

  /// Linear id of the vertical qubit with shore offset `k` in cell (r, c).
  int VerticalQubit(int r, int c, int k) const;
  /// Linear id of the horizontal qubit with shore offset `k` in cell (r, c).
  int HorizontalQubit(int r, int c, int k) const;

  std::string name() const override;
  std::string family() const override { return "chimera"; }
  int num_qubits() const override { return rows_ * cols_ * 2 * shore_; }
  bool HasEdge(int a, int b) const override;
  std::vector<std::pair<int, int>> Edges() const override;

  /// TRIAD capacity: shore * min(rows, cols).
  int CliqueCapacity() const override;

  /// Deterministic clique chains after Choi's TRIAD construction: variable
  /// i = shore*block + offset occupies the column of vertical qubits at
  /// (.., block, offset) plus the row of horizontal qubits at (block, ..,
  /// offset); the two runs meet (and are chained together) in the diagonal
  /// cell, and every pair of chains crosses in some cell.
  Result<std::vector<std::vector<int>>> CliqueChains(
      int num_logical) const override;

 private:
  struct QubitCoord {
    int r, c, k;
    bool vertical;
  };
  QubitCoord Decode(int id) const;

  int rows_;
  int cols_;
  int shore_;
};

}  // namespace anneal
}  // namespace qdm

#endif  // QDM_ANNEAL_CHIMERA_H_
