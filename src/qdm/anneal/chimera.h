#ifndef QDM_ANNEAL_CHIMERA_H_
#define QDM_ANNEAL_CHIMERA_H_

#include <cstdint>
#include <set>
#include <utility>
#include <vector>

namespace qdm {
namespace anneal {

/// Chimera hardware topology C(M, N, L): an M x N grid of unit cells, each a
/// complete bipartite K_{L,L} between L "vertical" and L "horizontal" qubits.
/// Vertical qubits couple to the same shore index in the cells above/below;
/// horizontal qubits couple left/right. This is the working graph of the
/// D-Wave 2X-class annealers used by Trummer & Koch [VLDB'16]; the paper's
/// "physical level" mapping (Sec III-B) targets exactly this structure.
class ChimeraGraph {
 public:
  ChimeraGraph(int rows, int cols, int shore);

  int rows() const { return rows_; }
  int cols() const { return cols_; }
  int shore() const { return shore_; }
  int num_qubits() const { return rows_ * cols_ * 2 * shore_; }

  /// Linear id of the vertical qubit with shore offset `k` in cell (r, c).
  int VerticalQubit(int r, int c, int k) const;
  /// Linear id of the horizontal qubit with shore offset `k` in cell (r, c).
  int HorizontalQubit(int r, int c, int k) const;

  /// True if physical qubits a and b are coupled in the hardware graph.
  bool HasEdge(int a, int b) const;

  /// All hardware couplers as (a, b) pairs with a < b.
  std::vector<std::pair<int, int>> Edges() const;

 private:
  struct QubitCoord {
    int r, c, k;
    bool vertical;
  };
  QubitCoord Decode(int id) const;

  int rows_;
  int cols_;
  int shore_;
};

}  // namespace anneal
}  // namespace qdm

#endif  // QDM_ANNEAL_CHIMERA_H_
