#ifndef QDM_ANNEAL_EXACT_SOLVER_H_
#define QDM_ANNEAL_EXACT_SOLVER_H_

#include <string>

#include "qdm/anneal/sampler.h"

namespace qdm {
namespace anneal {

/// Exhaustive ground-truth solver. Enumerates all 2^n assignments in Gray-code
/// order (O(deg) incremental energy updates), so it is practical up to ~28
/// variables. Every solver-quality experiment uses this as the optimum
/// reference on small instances.
class ExactSolver : public Sampler {
 public:
  /// `num_reads` is ignored; the returned set holds the global optimum (and
  /// only it).
  SampleSet SampleQubo(const Qubo& qubo, int num_reads, Rng* rng) override;
  std::string name() const override { return "exact"; }

  /// Convenience: ground-state energy and an optimal assignment.
  static Sample Solve(const Qubo& qubo);
};

}  // namespace anneal
}  // namespace qdm

#endif  // QDM_ANNEAL_EXACT_SOLVER_H_
