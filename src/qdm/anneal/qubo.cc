#include "qdm/anneal/qubo.h"

#include <algorithm>
#include <cmath>

#include "qdm/common/check.h"
#include "qdm/common/strings.h"

namespace qdm {
namespace anneal {

Qubo::Qubo(int num_variables) : num_variables_(num_variables) {
  QDM_CHECK_GT(num_variables, 0);
  linear_.assign(num_variables, 0.0);
}

void Qubo::AddLinear(int i, double weight) {
  QDM_CHECK(i >= 0 && i < num_variables_);
  linear_[i] += weight;
}

void Qubo::AddQuadratic(int i, int j, double weight) {
  QDM_CHECK(i >= 0 && i < num_variables_);
  QDM_CHECK(j >= 0 && j < num_variables_);
  QDM_CHECK_NE(i, j) << "use AddLinear for diagonal terms (x^2 == x)";
  if (i > j) std::swap(i, j);
  quadratic_[{i, j}] += weight;
}

double Qubo::linear(int i) const {
  QDM_CHECK(i >= 0 && i < num_variables_);
  return linear_[i];
}

double Qubo::quadratic(int i, int j) const {
  if (i > j) std::swap(i, j);
  auto it = quadratic_.find({i, j});
  return it == quadratic_.end() ? 0.0 : it->second;
}

double Qubo::Energy(const Assignment& x) const {
  QDM_CHECK_EQ(x.size(), static_cast<size_t>(num_variables_));
  double e = offset_;
  for (int i = 0; i < num_variables_; ++i) {
    if (x[i]) e += linear_[i];
  }
  for (const auto& [key, w] : quadratic_) {
    if (x[key.first] && x[key.second]) e += w;
  }
  return e;
}

double Qubo::FlipDelta(const Assignment& x, int i) const {
  QDM_CHECK(i >= 0 && i < num_variables_);
  // Flipping x_i changes energy by sign * (a_i + sum_j b_ij x_j).
  const double sign = x[i] ? -1.0 : 1.0;
  double local_field = linear_[i];
  // Iterate only edges touching i.
  auto lo = quadratic_.lower_bound({i, 0});
  for (auto it = lo; it != quadratic_.end() && it->first.first == i; ++it) {
    if (x[it->first.second]) local_field += it->second;
  }
  for (const auto& [key, w] : quadratic_) {
    if (key.second == i && x[key.first]) local_field += w;
  }
  return sign * local_field;
}

void Qubo::AddExactlyOnePenalty(const std::vector<int>& vars, double penalty) {
  // (sum x - 1)^2 = 1 - sum x + 2 sum_{u<v} x_u x_v   (using x^2 == x)
  AddOffset(penalty);
  for (int v : vars) AddLinear(v, -penalty);
  for (size_t a = 0; a < vars.size(); ++a) {
    for (size_t b = a + 1; b < vars.size(); ++b) {
      AddQuadratic(vars[a], vars[b], 2 * penalty);
    }
  }
}

void Qubo::AddAtMostOnePenalty(const std::vector<int>& vars, double penalty) {
  for (size_t a = 0; a < vars.size(); ++a) {
    for (size_t b = a + 1; b < vars.size(); ++b) {
      AddQuadratic(vars[a], vars[b], penalty);
    }
  }
}

double Qubo::MaxAbsCoefficient() const {
  double m = 0.0;
  for (double a : linear_) m = std::max(m, std::abs(a));
  for (const auto& [key, w] : quadratic_) m = std::max(m, std::abs(w));
  return m;
}

std::vector<int> Qubo::Neighbors(int i) const {
  std::vector<int> out;
  for (const auto& [key, w] : quadratic_) {
    if (w == 0.0) continue;
    if (key.first == i) out.push_back(key.second);
    if (key.second == i) out.push_back(key.first);
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

std::string Qubo::ToString() const {
  std::string out =
      StrFormat("Qubo(n=%d, offset=%.4g)\n", num_variables_, offset_);
  for (int i = 0; i < num_variables_; ++i) {
    if (linear_[i] != 0.0) out += StrFormat("  %.4g x%d\n", linear_[i], i);
  }
  for (const auto& [key, w] : quadratic_) {
    if (w != 0.0) {
      out += StrFormat("  %.4g x%d x%d\n", w, key.first, key.second);
    }
  }
  return out;
}

double IsingModel::Energy(const std::vector<int>& spins) const {
  QDM_CHECK_EQ(spins.size(), static_cast<size_t>(num_spins));
  double e = offset;
  for (int i = 0; i < num_spins; ++i) {
    QDM_CHECK(spins[i] == 1 || spins[i] == -1);
    e += h[i] * spins[i];
  }
  for (const auto& [key, w] : j) {
    e += w * spins[key.first] * spins[key.second];
  }
  return e;
}

IsingModel QuboToIsing(const Qubo& qubo) {
  // x = (1+s)/2:  a x = a/2 + a/2 s;  b xy = b/4 (1 + s_i + s_j + s_i s_j).
  IsingModel ising;
  ising.num_spins = qubo.num_variables();
  ising.h.assign(ising.num_spins, 0.0);
  ising.offset = qubo.offset();
  for (int i = 0; i < ising.num_spins; ++i) {
    const double a = qubo.linear(i);
    ising.offset += a / 2;
    ising.h[i] += a / 2;
  }
  for (const auto& [key, b] : qubo.quadratic_terms()) {
    ising.offset += b / 4;
    ising.h[key.first] += b / 4;
    ising.h[key.second] += b / 4;
    ising.j[key] += b / 4;
  }
  return ising;
}

Qubo IsingToQubo(const IsingModel& ising) {
  // s = 2x - 1:  h s = -h + 2h x;  J s_i s_j = J (1 - 2x_i - 2x_j + 4 x_i x_j).
  Qubo qubo(ising.num_spins);
  qubo.AddOffset(ising.offset);
  for (int i = 0; i < ising.num_spins; ++i) {
    qubo.AddOffset(-ising.h[i]);
    qubo.AddLinear(i, 2 * ising.h[i]);
  }
  for (const auto& [key, w] : ising.j) {
    qubo.AddOffset(w);
    qubo.AddLinear(key.first, -2 * w);
    qubo.AddLinear(key.second, -2 * w);
    qubo.AddQuadratic(key.first, key.second, 4 * w);
  }
  return qubo;
}

}  // namespace anneal
}  // namespace qdm
