#include "qdm/anneal/embedded_solver.h"

#include <utility>

#include "qdm/anneal/backend_cache.h"
#include "qdm/common/strings.h"

namespace qdm {
namespace anneal {

EmbeddedSolver::EmbeddedSolver(std::string registry_name, std::string base_name,
                               std::unique_ptr<QuboSolver> base,
                               std::shared_ptr<const HardwareTopology> topology)
    : registry_name_(std::move(registry_name)),
      base_name_(std::move(base_name)),
      base_(std::move(base)),
      topology_(std::move(topology)) {
  QDM_CHECK(base_ != nullptr);
  QDM_CHECK(topology_ != nullptr);
}

Result<SampleSet> EmbeddedSolver::Solve(const Qubo& qubo,
                                        const SolverOptions& options) {
  QDM_RETURN_IF_ERROR(ValidateSolverOptions(options));
  // The clique plan depends only on (topology, problem size) — served by
  // the process-wide cache, so repeated solves of same-sized problems skip
  // the TRIAD construction entirely.
  QDM_ASSIGN_OR_RETURN(
      std::shared_ptr<const Embedding> embedding,
      GetCachedCliqueEmbedding(qubo.num_variables(), *topology_));
  QDM_ASSIGN_OR_RETURN(
      EmbeddedQubo embedded,
      EmbedQubo(qubo, *embedding, *topology_, options.chain_strength));

  // EmbedQubo's physical model spans every hardware qubit, but only chain
  // qubits carry terms; dispatching it whole would make the base backend
  // sweep hundreds of free spins on production-sized topologies. Compact to
  // the chain qubits (dense re-map), solve, and expand samples back to
  // hardware ids for unembedding.
  std::vector<int> hw_of_dense;
  std::vector<int> dense_of_hw(topology_->num_qubits(), -1);
  for (const auto& chain : embedded.embedding.chains) {
    for (int q : chain) {
      if (dense_of_hw[q] < 0) {
        dense_of_hw[q] = static_cast<int>(hw_of_dense.size());
        hw_of_dense.push_back(q);
      }
    }
  }
  Qubo compact(static_cast<int>(hw_of_dense.size()));
  compact.AddOffset(embedded.physical.offset());
  for (size_t d = 0; d < hw_of_dense.size(); ++d) {
    const double h = embedded.physical.linear(hw_of_dense[d]);
    if (h != 0.0) compact.AddLinear(static_cast<int>(d), h);
  }
  for (const auto& [key, w] : embedded.physical.quadratic_terms()) {
    if (w == 0.0) continue;
    // Every quadratic term lies on a coupler between chain qubits.
    QDM_CHECK(dense_of_hw[key.first] >= 0 && dense_of_hw[key.second] >= 0);
    compact.AddQuadratic(dense_of_hw[key.first], dense_of_hw[key.second], w);
  }

  // The base backend is owned and reused across Solve calls (an
  // EmbeddedSolver instance is never shared across threads). It reads its
  // own knobs from the same options struct; the embedding knobs it does not
  // understand are ignored per the solver.h convention.
  Result<SampleSet> compact_samples = base_->Solve(compact, options);
  if (!compact_samples.ok()) {
    return Status(compact_samples.status().code(),
                  StrFormat("base '%s' on %s: %s", base_name_.c_str(),
                            topology_->name().c_str(),
                            compact_samples.status().message().c_str()));
  }
  SampleSet physical;
  for (const Sample& s : compact_samples->samples()) {
    Sample expanded;
    expanded.assignment.assign(topology_->num_qubits(), 0);
    for (size_t d = 0; d < hw_of_dense.size(); ++d) {
      expanded.assignment[hw_of_dense[d]] = s.assignment[d];
    }
    expanded.energy = s.energy;
    physical.Add(std::move(expanded));
  }
  return UnembedAll(qubo, embedded, physical, options.chain_break_policy);
}

Result<std::unique_ptr<QuboSolver>> MakeEmbeddedSolver(
    const std::string& name) {
  const std::string kPrefix = "embedded:";
  if (!StartsWith(name, kPrefix)) {
    return Status::InvalidArgument(StrFormat(
        "embedded solver name '%s' must start with '%s'", name.c_str(),
        kPrefix.c_str()));
  }
  const std::string rest = name.substr(kPrefix.size());
  const size_t colon = rest.find(':');
  if (colon == std::string::npos || colon == 0 || colon + 1 >= rest.size()) {
    return Status::InvalidArgument(StrFormat(
        "embedded solver name '%s' must have the form "
        "'embedded:<base>:<topology-spec>'",
        name.c_str()));
  }
  const std::string base = rest.substr(0, colon);
  const std::string topology_spec = rest.substr(colon + 1);
  if (base == "embedded") {
    return Status::InvalidArgument(StrFormat(
        "nested embedded backends are not supported ('%s')", name.c_str()));
  }
  // Resolve the base here (it is owned and reused by the instance, not
  // re-Created per Solve). The base token is colon-free by construction, so
  // any Create failure means an unknown plain name — reported with the
  // embedded framing rather than the registry's own NotFound.
  Result<std::unique_ptr<QuboSolver>> base_solver =
      SolverRegistry::Global().Create(base);
  if (!base_solver.ok()) {
    return Status::NotFound(StrFormat(
        "embedded solver '%s' wraps unknown base '%s' (registered: %s)",
        name.c_str(), base.c_str(),
        StrJoin(SolverRegistry::Global().RegisteredNames(), ", ").c_str()));
  }
  QDM_ASSIGN_OR_RETURN(std::shared_ptr<const HardwareTopology> topology,
                       GetCachedTopology(topology_spec));
  return std::unique_ptr<QuboSolver>(std::make_unique<EmbeddedSolver>(
      name, base, std::move(base_solver).value(), std::move(topology)));
}

bool RegisterEmbeddedSolvers() {
  auto& registry = SolverRegistry::Global();
  // Any well-formed "embedded:<base>:<topology>" name resolves on demand.
  (void)registry.RegisterPrefix("embedded:", MakeEmbeddedSolver);
  // Eagerly register a default matrix so the common names show up in
  // RegisteredNames() (and are covered by the every-registered-backend
  // tests): production-sized chimera/pegasus/zephyr under the annealing
  // family, plus an exact ground-truth backend on a single Chimera cell.
  // AlreadyExists on re-entry is expected and harmless.
  for (const char* name : {
           "embedded:simulated_annealing:chimera:4x4x4",
           "embedded:simulated_annealing:pegasus:6",
           "embedded:simulated_annealing:zephyr:4",
           "embedded:tabu_search:chimera:4x4x4",
           "embedded:parallel_tempering:chimera:4x4x4",
           "embedded:exact:chimera:1x1x4",
       }) {
    (void)registry.Register(name, [name] {
      Result<std::unique_ptr<QuboSolver>> solver = MakeEmbeddedSolver(name);
      QDM_CHECK(solver.ok()) << "default embedded backend '" << name
                             << "' failed to build: " << solver.status();
      return std::move(solver).value();
    });
  }
  return true;
}

namespace {
[[maybe_unused]] const bool kEmbeddedSolversRegistered =
    RegisterEmbeddedSolvers();
}  // namespace

}  // namespace anneal
}  // namespace qdm
