#ifndef QDM_ANNEAL_NOISY_SOLVER_H_
#define QDM_ANNEAL_NOISY_SOLVER_H_

#include <memory>
#include <string>
#include <utility>

#include "qdm/anneal/noise_spec.h"
#include "qdm/anneal/solver.h"

namespace qdm {
namespace anneal {

/// Registry backend family `noisy:<model>:<base>`: wraps any registered base
/// backend and solves with SolverOptions.noise set to the parsed model, so
/// the gate-based bridges sample through the sim/ noise machinery
/// (docs/noise.md). A noiseless model (`noisy:depol@0.0:<base>`) delegates
/// with options untouched and is bit-identical to the bare base. Composes
/// with the other prefix families in either direction:
/// `race:noisy:depol@0.01:qaoa+simulated_annealing` races a noisy arm
/// against a classical one, and `noisy:depol@0.01:embedded:qaoa:...` solves
/// the embedded problem noisily.
class NoisySolver : public QuboSolver {
 public:
  NoisySolver(std::string registry_name, NoiseSpec spec,
              std::string base_name, std::unique_ptr<QuboSolver> base);

  Result<SampleSet> Solve(const Qubo& qubo,
                          const SolverOptions& options) override;
  /// Whole-batch orchestration forwards to the base (see solver.h): a
  /// wrapped adaptive:* selector keeps its explore/commit schedule — and
  /// therefore the thread-count bit-identity contract — under the noise
  /// wrapper.
  bool SolvesWholeBatch() const override {
    return base_->SolvesWholeBatch();
  }
  Result<std::vector<SampleSet>> SolveBatchThreaded(
      const std::vector<Qubo>& qubos, const SolverOptions& options,
      int num_threads) override;
  std::string name() const override { return registry_name_; }

 private:
  std::string registry_name_;
  NoiseSpec spec_;
  std::string base_name_;
  std::unique_ptr<QuboSolver> base_;
};

/// Parses "noisy:<model>:<base>" and builds the wrapper; the error taxonomy
/// mirrors embedded:*/race:* — malformed model tokens are InvalidArgument
/// naming the token, an unknown base is the registry's NotFound annotated
/// with the full spec, and nested noisy:noisy: is rejected.
Result<std::unique_ptr<QuboSolver>> MakeNoisySolver(const std::string& name);

/// Registers the "noisy:" prefix resolver plus an eagerly-registered default
/// so the family shows up in RegisteredNames(). Invoked by a static
/// registrar; safe to call again.
bool RegisterNoisySolvers();

}  // namespace anneal
}  // namespace qdm

#endif  // QDM_ANNEAL_NOISY_SOLVER_H_
