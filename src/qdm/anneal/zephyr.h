#ifndef QDM_ANNEAL_ZEPHYR_H_
#define QDM_ANNEAL_ZEPHYR_H_

#include <string>
#include <utility>
#include <vector>

#include "qdm/anneal/topology.h"

namespace qdm {
namespace anneal {

/// Zephyr hardware topology Z(m, t), modeling the working graph of D-Wave
/// Advantage2-class annealers (Boothby, Raymond & King, "Zephyr Topology of
/// D-Wave Quantum Processors", 2021). The production annealer uses t = 4
/// (degree 20); t is kept a parameter for scaled-down test instances.
///
/// Qubits are length-2 segments on a (2m+1) x (2m+1) grid of unit cells.
/// Coordinates (u, w, k, j, z):
///   u in {0, 1}    orientation (0 = vertical segment, 1 = horizontal),
///   w in [0, 2m]   perpendicular offset (the column for vertical qubits),
///   k in [0, t)    track index within the line,
///   j in {0, 1}    half-offset of the segment along its line,
///   z in [0, m)    position along the line.
/// A vertical qubit occupies column w, rows {2z + j, 2z + j + 1}; a
/// horizontal qubit occupies row w, columns {2z + j, 2z + j + 1} — the
/// j in {0, 1} shift makes consecutive segments of opposite j overlap by one
/// cell, which is what raises the degree over Chimera.
///
/// Couplers (max degree 4t + 4; 20 for t = 4):
///   internal  (4t)  opposite orientations whose segments cross,
///   external  (2)   collinear same-j segments at consecutive z,
///   odd       (2)   collinear opposite-j segments whose spans overlap.
///
/// num_qubits = 4 t m (2m + 1); m >= 1, t >= 1.
class ZephyrGraph : public HardwareTopology {
 public:
  ZephyrGraph(int m, int t);

  int m() const { return m_; }
  int t() const { return t_; }

  /// Linear id of qubit (u, w, k, j, z); bounds-checked.
  int Qubit(int u, int w, int k, int j, int z) const;

  std::string name() const override;
  std::string family() const override { return "zephyr"; }
  int num_qubits() const override { return 4 * t_ * m_ * (2 * m_ + 1); }
  bool HasEdge(int a, int b) const override;
  std::vector<std::pair<int, int>> Edges() const override;

  /// TRIAD capacity of the embedded Chimera C(2m, 2m, t) copy: 2 t m.
  int CliqueCapacity() const override { return 2 * t_ * m_; }
  Result<std::vector<std::vector<int>>> CliqueChains(
      int num_logical) const override;

 private:
  struct Coord {
    int u, w, k, j, z;
  };
  Coord Decode(int id) const;

  int m_;
  int t_;
};

}  // namespace anneal
}  // namespace qdm

#endif  // QDM_ANNEAL_ZEPHYR_H_
