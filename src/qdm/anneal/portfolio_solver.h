#ifndef QDM_ANNEAL_PORTFOLIO_SOLVER_H_
#define QDM_ANNEAL_PORTFOLIO_SOLVER_H_

#include <memory>
#include <string>
#include <vector>

#include "qdm/anneal/solver.h"

namespace qdm {
namespace anneal {

/// Races every backend in `members` (registry names — including
/// "embedded:<base>:<topology>" ones) on the SAME qubo and returns the
/// winning member's SampleSet. The hybrid-architecture hedge of the NISQ-era
/// companion papers (Hai et al.; Zajac & Stoerl): no single device or
/// heuristic dominates, so one request fans out to many engines and the best
/// answer wins.
///
/// Contract:
///
///  - Winner: the member whose best (lowest-energy) sample is strictly
///    lowest; on equal best energies the earliest member in `members` wins
///    (backend-order tie-break), so the result never depends on timing.
///  - Randomness: with options.rng == nullptr, member i is solved with
///    DeriveBatchOptions(options, i) — i.e. seed + i — making the race a
///    pure function of (members, qubo, options), bit-identical at every
///    num_threads value. A non-null options.rng is honored only when
///    num_threads == 1 (sequential member order); any other num_threads is
///    InvalidArgument.
///  - Partial failure is the point of racing: members that fail (or return
///    an empty sample set) are dropped and the winner is picked among the
///    survivors. Only when EVERY member fails does the race fail, returning
///    the lowest-index member's Status annotated "race member <i> ('<name>')".
///  - Unknown member names are surfaced up front (before any fan-out), as
///    the registry's Create error annotated with the member name.
///
/// num_threads: 1 = strictly sequential on the calling thread (the only mode
/// honoring options.rng); <= 0 = the composition default — members run on
/// ThreadPool::Shared() via the caller-participating ForEach, which cannot
/// deadlock when the race itself runs inside a SolveBatchParallel worker
/// (the dispatching thread drains its own index counter); > 1 = a transient
/// pool of min(num_threads, members) workers, mirroring SolveBatchParallel.
///
/// Seed-derivation composition note: SolveBatchParallel solves batch
/// instance i with seed + i, so a "race:*" backend inside a batch solves
/// member m of instance i with seed + i + m. Adjacent instances therefore
/// reuse member seeds on DIFFERENT qubos/backends — harmless, but worth
/// knowing when reproducing one member's solve in isolation.
Result<SampleSet> SolveRaceParallel(const std::vector<std::string>& members,
                                    const Qubo& qubo,
                                    const SolverOptions& options,
                                    int num_threads = 0);

/// Outcome of one race, exposing WHICH member won — the per-solve telemetry
/// the adaptive:* selector (adaptive_solver.h) tallies into win counts.
/// `samples` is the winning member's SampleSet verbatim.
struct RaceOutcome {
  int winner = 0;
  SampleSet samples;
};

/// The race core over already-constructed member backends: members/solvers
/// align 1:1, each member is solved by exactly one task (so one object per
/// member satisfies the no-thread-safety contract), and the backends are
/// the caller's to reuse across calls — member construction is non-trivial
/// (an "embedded:*" member builds its topology graph; the backend cache
/// only amortizes, not eliminates, that cost). Winner selection, rng/seed
/// semantics, and num_threads modes follow the SolveRaceParallel contract
/// above. `member_label` prefixes per-member failure annotations ("race
/// member" for the race:* family, "adaptive member" for adaptive:*).
Result<RaceOutcome> RaceMemberSolvers(
    const std::vector<std::string>& members,
    const std::vector<QuboSolver*>& solvers, const Qubo& qubo,
    const SolverOptions& options, int num_threads,
    const std::string& member_label = "race member");

/// QuboSolver combinator presenting a solver portfolio behind one registry
/// name: Solve races the members via SolveRaceParallel (sequentially when
/// options.rng is set, across the shared ThreadPool otherwise) and SolveBatch
/// inherits the sequential reference, so "race:*" names compose with
/// SolveBatchParallel — and with qopt::QuboPipeline — exactly like any
/// other backend, bit-identical at every thread count.
class PortfolioSolver : public QuboSolver {
 public:
  /// `registry_name` is what name() reports — the full "race:..." string the
  /// instance was created under, so it can be re-Created by name. When
  /// `member_solvers` is non-empty it must align 1:1 with `members`; the
  /// backends are then owned and reused across Solve calls (member backend
  /// construction can be non-trivial — an "embedded:*" member builds its
  /// topology graph — so MakePortfolioSolver hands over the instances it
  /// already built for validation). An empty list is resolved lazily on
  /// first Solve.
  PortfolioSolver(std::string registry_name, std::vector<std::string> members,
                  std::vector<std::unique_ptr<QuboSolver>> member_solvers = {});

  Result<SampleSet> Solve(const Qubo& qubo,
                          const SolverOptions& options) override;
  std::string name() const override { return registry_name_; }

  const std::vector<std::string>& members() const { return members_; }

 private:
  /// Builds member_solvers_ from members_ if not yet built.
  Status EnsureMemberSolvers();

  std::string registry_name_;
  std::vector<std::string> members_;
  std::vector<std::unique_ptr<QuboSolver>> member_solvers_;
};

/// Builds a PortfolioSolver from a registry name of the form
///   "race:<b1>+<b2>[+<b3>...]"
/// e.g. "race:simulated_annealing+tabu_search",
/// "race:exact+embedded:simulated_annealing:pegasus:6". At least two
/// '+'-separated members are required (InvalidArgument otherwise; a race of
/// one is just that backend), members may be any registry-resolvable name
/// including "embedded:*" (a member that fails to resolve propagates its
/// underlying error — NotFound for unknown names, InvalidArgument for e.g. a
/// malformed topology spec — annotated with the full race name), and nesting
/// "race:" members is rejected as InvalidArgument ('+' would be ambiguous).
/// This is the resolver behind the registry's "race:" prefix:
/// SolverRegistry::Create accepts ANY well-formed race name, while
/// RegisteredNames() lists only the eagerly-registered default.
Result<std::unique_ptr<QuboSolver>> MakePortfolioSolver(
    const std::string& name);

/// Registers the default portfolio backend
/// ("race:simulated_annealing+tabu_search", visible in RegisteredNames())
/// and the "race:" prefix resolver. Invoked by a static registrar; safe to
/// call again (AlreadyExists is ignored).
bool RegisterPortfolioSolvers();

}  // namespace anneal
}  // namespace qdm

#endif  // QDM_ANNEAL_PORTFOLIO_SOLVER_H_
