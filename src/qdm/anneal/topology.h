#ifndef QDM_ANNEAL_TOPOLOGY_H_
#define QDM_ANNEAL_TOPOLOGY_H_

#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "qdm/common/status.h"

namespace qdm {
namespace anneal {

/// Abstract annealer hardware graph — the "physical level" of the paper's
/// Sec III-B mapping (logical QUBO -> minor embedding -> hardware graph).
/// Implementations model the working graphs of real quantum annealers:
/// ChimeraGraph (D-Wave 2X), PegasusGraph (Advantage), ZephyrGraph
/// (Advantage2). The embedding layer (CliqueEmbedding / EmbedQubo /
/// EmbeddedSampler) and the registry-level "embedded:<base>:<topology>"
/// backends are written against this interface only, so a topology sweep is
/// a loop over spec strings, never a code change.
///
/// Qubits are dense linear ids in [0, num_qubits()). Every implementation
/// must keep HasEdge symmetric, irreflexive, and in exact agreement with
/// Edges() (each coupler listed once as (a, b) with a < b).
class HardwareTopology {
 public:
  virtual ~HardwareTopology() = default;

  /// Canonical spec string that MakeTopology would parse back into an
  /// identical topology ("chimera:4x4x4", "pegasus:6", "zephyr:4x4").
  virtual std::string name() const = 0;

  /// Topology family ("chimera", "pegasus", "zephyr") — the first token of
  /// the spec string; used for report tables and metric prefixes.
  virtual std::string family() const = 0;

  virtual int num_qubits() const = 0;

  /// True if physical qubits a and b share a hardware coupler.
  virtual bool HasEdge(int a, int b) const = 0;

  /// All hardware couplers as (a, b) pairs with a < b, each listed once.
  virtual std::vector<std::pair<int, int>> Edges() const = 0;

  /// Largest n for which CliqueChains(n) succeeds on this topology.
  virtual int CliqueCapacity() const = 0;

  /// Deterministic clique (K_n) embedding: chains[i] is the connected set of
  /// physical qubits representing logical variable i; chains are pairwise
  /// disjoint and every pair of chains is joined by at least one hardware
  /// coupler. ResourceExhausted when num_logical > CliqueCapacity().
  virtual Result<std::vector<std::vector<int>>> CliqueChains(
      int num_logical) const = 0;
};

/// Parses a topology spec string into a topology instance. Grammar:
///
///   "chimera:<rows>x<cols>x<shore>"   e.g. "chimera:4x4x4"
///   "pegasus:<m>"                     e.g. "pegasus:6"     (m >= 2)
///   "zephyr:<m>" | "zephyr:<m>x<t>"   e.g. "zephyr:4"      (t defaults to 4)
///
/// All dimensions are positive integers. Malformed specs (unknown family,
/// missing/extra fields, non-numeric or non-positive dimensions) return
/// InvalidArgument naming the offending spec — never an abort. Specs
/// describing more than 2^24 qubits are likewise rejected with
/// InvalidArgument (the dense-id space is int-indexed).
Result<std::unique_ptr<HardwareTopology>> MakeTopology(const std::string& spec);

/// Shared skeleton of the per-topology clique constructions: Choi's TRIAD
/// clique embedding expressed against an abstract Chimera frame
/// C(frame_size, frame_size, shore). `vertical(r, c, k)` / `horizontal(r, c,
/// k)` map frame coordinates to physical qubit ids; Chimera uses its own
/// qubits directly, Pegasus/Zephyr map a Chimera subgraph of theirs (see
/// pegasus.h / zephyr.h). Variable i = shore*block + offset occupies the
/// vertical run (rows [0, used), column `block`, shore `offset`) plus the
/// horizontal run (row `block`, columns [0, used)), where
/// used = ceil(num_logical / shore); the runs meet — and every pair of
/// chains crosses — inside the used square. Callers must pre-check
/// num_logical <= shore * frame_size.
std::vector<std::vector<int>> TriadCliqueChains(
    int num_logical, int shore,
    const std::function<int(int r, int c, int k)>& vertical,
    const std::function<int(int r, int c, int k)>& horizontal);

}  // namespace anneal
}  // namespace qdm

#endif  // QDM_ANNEAL_TOPOLOGY_H_
