#ifndef QDM_ANNEAL_TABU_SEARCH_H_
#define QDM_ANNEAL_TABU_SEARCH_H_

#include <string>

#include "qdm/anneal/sampler.h"

namespace qdm {
namespace anneal {

/// Deterministic-greedy tabu search over single-bit flips: always takes the
/// best non-tabu flip, allowing uphill moves to escape local minima; a flip
/// is tabu for `tenure` iterations unless it improves the incumbent
/// (aspiration). Classic strong classical QUBO heuristic (cf. qbsolv).
class TabuSearch : public Sampler {
 public:
  struct Options {
    int max_iterations = 500;
    /// Tabu tenure; when <= 0, uses min(20, n/4 + 1).
    int tenure = 0;
  };

  TabuSearch() : options_() {}
  explicit TabuSearch(Options options) : options_(options) {}

  SampleSet SampleQubo(const Qubo& qubo, int num_reads, Rng* rng) override;
  std::string name() const override { return "tabu_search"; }

 private:
  Options options_;
};

}  // namespace anneal
}  // namespace qdm

#endif  // QDM_ANNEAL_TABU_SEARCH_H_
