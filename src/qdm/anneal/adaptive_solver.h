#ifndef QDM_ANNEAL_ADAPTIVE_SOLVER_H_
#define QDM_ANNEAL_ADAPTIVE_SOLVER_H_

#include <memory>
#include <string>
#include <vector>

#include "qdm/anneal/solver.h"

namespace qdm {
namespace anneal {

/// Adaptive portfolio selector behind one registry name
/// ("adaptive:<b1>+<b2>[+...]"): the exploit stage on top of the
/// cached-backend substrate. Where "race:*" pays every member on every
/// solve forever, "adaptive:*" races all members only for an EXPLORE
/// prefix of its solve stream, tallies which member won each race
/// (RaceOutcome telemetry, same winner rule as race:*), then COMMITS to
/// the member with the most wins and runs only that one — cutting the
/// wasted race arms under batch traffic the paper's dispatch layer cares
/// about. The trade against race:* is explicit: after the commit point
/// there is no more hedging, so a failing committed member fails the
/// solve instead of being dropped.
///
/// Schedule: solve k of an instance's lifetime (Solve calls and batch
/// instances advance the same counter) explores while k <
/// kExploreInstances, commits after. The counter makes the instance
/// STATEFUL across Solve calls, which is exactly what the per-worker batch
/// fan-out cannot reuse across dynamically scheduled instances — so the
/// class reports SolvesWholeBatch() and SolveBatchParallel hands it the
/// whole batch (SolveBatchThreaded), where it keeps the schedule
/// positional and bit-identical at any thread count. A freshly Created
/// instance therefore always sees batch instance i as lifetime solve i,
/// which is what makes the sequential service path (one Solve per
/// instance on one backend) bit-identical to SolveBatchParallel.
///
/// Decisions: every returned SampleSet carries
/// "<phase>:<arm>:<member>" in SampleSet::decision ("explore:1:
/// tabu_search", "commit:0:simulated_annealing"), rides the wire format
/// backward-compatibly, and is sufficient for bit-exact replay of the
/// solve WITHOUT re-running the race — see ReplayAdaptiveDecision.
///
/// Randomness: member m of lifetime solve k runs with
/// DeriveBatchOptions(instance_options, m) — the same seed+index rule as
/// race:* — in both phases (the committed member keeps its member offset,
/// so a decision replays with one rule). A non-null options.rng is
/// honored sequentially, like race:*.
class AdaptiveSolver : public QuboSolver {
 public:
  /// Lifetime solves raced before committing. Large enough that a noisy
  /// win-rate skew cannot flip the commit on real workloads, small enough
  /// that the explore cost amortizes within one serving batch.
  static constexpr int kExploreInstances = 8;

  /// `registry_name` is what name() reports — the full "adaptive:..."
  /// string the instance was created under. `member_solvers` aligns 1:1
  /// with `members` (MakeAdaptiveSolver hands over the backends it built
  /// for validation); they are owned and reused across Solve calls.
  AdaptiveSolver(std::string registry_name, std::vector<std::string> members,
                 std::vector<std::unique_ptr<QuboSolver>> member_solvers);

  Result<SampleSet> Solve(const Qubo& qubo,
                          const SolverOptions& options) override;
  bool SolvesWholeBatch() const override { return true; }
  Result<std::vector<SampleSet>> SolveBatchThreaded(
      const std::vector<Qubo>& qubos, const SolverOptions& options,
      int num_threads) override;
  std::string name() const override { return registry_name_; }

  const std::vector<std::string>& members() const { return members_; }

  /// The member a commit-phase solve would run right now: -1 while still
  /// exploring, else the argmax of the win tally (earliest member on
  /// ties — the same deterministic tie-break as the race winner scan).
  int committed_member() const;

  /// Win tally over the explore solves seen so far, indexed like members().
  const std::vector<int>& wins() const { return wins_; }

 private:
  /// One lifetime solve: explore (race + tally) or commit, decision
  /// recorded. `solve_threads` is the inner race fan-out mode.
  Result<SampleSet> SolveOne(const Qubo& qubo, const SolverOptions& options,
                             int solve_threads);

  std::string registry_name_;
  std::vector<std::string> members_;
  std::vector<std::unique_ptr<QuboSolver>> member_solvers_;
  uint64_t solves_seen_ = 0;
  std::vector<int> wins_;
};

/// Builds an AdaptiveSolver from a registry name of the form
///   "adaptive:<b1>+<b2>[+<b3>...]"
/// e.g. "adaptive:simulated_annealing+tabu_search",
/// "adaptive:exact+embedded:simulated_annealing:pegasus:6". Same error
/// taxonomy as the race:* family: at least two '+'-separated members
/// (InvalidArgument otherwise), empty members rejected by position,
/// nesting "adaptive:" or "race:" members rejected as InvalidArgument
/// ('+' would be ambiguous), and a member that fails to resolve propagates
/// its underlying error annotated with the full adaptive name. This is the
/// resolver behind the registry's "adaptive:" prefix.
Result<std::unique_ptr<QuboSolver>> MakeAdaptiveSolver(
    const std::string& name);

/// Re-runs the solve a recorded decision string describes, bit-identically
/// and WITHOUT racing: parses "<phase>:<arm>:<member>", resolves `member`
/// in the registry, and solves with DeriveBatchOptions(instance_options,
/// arm) — `instance_options` being exactly the options the adaptive solve
/// saw for that instance (for batch instance i through SolveBatchParallel:
/// DeriveBatchOptions(batch_options, i)). The returned SampleSet — samples
/// AND decision field — is bit-identical to the recorded one, for explore
/// decisions too (a race returns the winning member's SampleSet verbatim).
/// Malformed decision strings are InvalidArgument; the member resolves
/// through the registry's normal error taxonomy.
Result<SampleSet> ReplayAdaptiveDecision(const std::string& decision,
                                         const Qubo& qubo,
                                         const SolverOptions& instance_options);

/// Registers the default adaptive backend
/// ("adaptive:simulated_annealing+tabu_search", visible in
/// RegisteredNames()) and the "adaptive:" prefix resolver. Invoked by a
/// static registrar; safe to call again (AlreadyExists is ignored).
bool RegisterAdaptiveSolvers();

}  // namespace anneal
}  // namespace qdm

#endif  // QDM_ANNEAL_ADAPTIVE_SOLVER_H_
