#include "qdm/anneal/sampler.h"

#include <algorithm>

#include "qdm/common/check.h"

namespace qdm {
namespace anneal {

void SampleSet::Add(Sample sample) {
  auto it = std::lower_bound(
      samples_.begin(), samples_.end(), sample,
      [](const Sample& a, const Sample& b) { return a.energy < b.energy; });
  samples_.insert(it, std::move(sample));
}

const Sample& SampleSet::best() const {
  QDM_CHECK(!samples_.empty()) << "best() on empty SampleSet";
  return samples_.front();
}

double SampleSet::SuccessRate(double target_energy, double tol) const {
  if (samples_.empty()) return 0.0;
  size_t hits = 0;
  for (const Sample& s : samples_) {
    if (s.energy <= target_energy + tol) ++hits;
  }
  return static_cast<double>(hits) / samples_.size();
}

}  // namespace anneal
}  // namespace qdm
