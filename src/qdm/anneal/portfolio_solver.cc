#include "qdm/anneal/portfolio_solver.h"

#include <algorithm>
#include <utility>

#include "qdm/common/strings.h"
#include "qdm/common/thread_pool.h"

namespace qdm {
namespace anneal {

namespace {

/// Prefixes a per-member failure with its position and name, preserving the
/// original code so callers can still dispatch on it. `label` is the family
/// framing: "race member" or "adaptive member".
Status AnnotateMemberError(const Status& status, size_t index,
                           const std::string& member,
                           const std::string& label) {
  return Status(status.code(),
                StrFormat("%s %zu ('%s'): %s", label.c_str(), index,
                          member.c_str(), status.message().c_str()));
}

/// Solves one race member. Folds an empty SampleSet into an Internal error
/// so the winner scan only ever sees usable sets.
Result<SampleSet> SolveMember(QuboSolver* solver, const std::string& member,
                              const Qubo& qubo, const SolverOptions& options) {
  QDM_ASSIGN_OR_RETURN(SampleSet samples, solver->Solve(qubo, options));
  if (samples.empty()) {
    return Status::Internal(StrFormat(
        "solver '%s' returned an empty sample set", member.c_str()));
  }
  return samples;
}

/// Builds one backend per member name, annotating failures with the member
/// they belong to (the registry error alone names only itself). Backend
/// construction can be non-trivial — an "embedded:*" member builds its
/// topology graph — so callers keep and reuse the result.
Result<std::vector<std::unique_ptr<QuboSolver>>> CreateMemberSolvers(
    const std::vector<std::string>& members) {
  std::vector<std::unique_ptr<QuboSolver>> solvers;
  solvers.reserve(members.size());
  for (size_t i = 0; i < members.size(); ++i) {
    Result<std::unique_ptr<QuboSolver>> solver =
        SolverRegistry::Global().Create(members[i]);
    if (!solver.ok()) {
      return AnnotateMemberError(solver.status(), i, members[i],
                                 "race member");
    }
    solvers.push_back(std::move(solver).value());
  }
  return solvers;
}

}  // namespace

Result<RaceOutcome> RaceMemberSolvers(const std::vector<std::string>& members,
                                      const std::vector<QuboSolver*>& solvers,
                                      const Qubo& qubo,
                                      const SolverOptions& options,
                                      int num_threads,
                                      const std::string& member_label) {
  if (members.empty()) {
    return Status::InvalidArgument("a race needs at least one member backend");
  }
  if (num_threads != 1 && options.rng != nullptr) {
    return Status::InvalidArgument(
        "SolveRaceParallel with num_threads != 1 requires seed-based "
        "randomness (options.rng must be null): a shared Rng cannot be "
        "fanned out deterministically");
  }
  QDM_RETURN_IF_ERROR(ValidateSolverOptions(options));

  const size_t n = members.size();
  std::vector<Result<SampleSet>> results(n, Status::Internal("not raced"));
  // On the seed-based paths each member solves with its own derived seed —
  // results are independent of which thread ran which member.
  const auto race_member = [&members, &solvers, &qubo, &options, &results](
                               int i) {
    results[i] = SolveMember(
        solvers[i], members[i], qubo,
        options.rng != nullptr ? options : DeriveBatchOptions(options, i));
  };
  if (num_threads == 1 || n == 1) {
    for (size_t i = 0; i < n; ++i) race_member(static_cast<int>(i));
  } else if (num_threads > 1) {
    ThreadPool::ParallelFor(std::min<int>(num_threads, static_cast<int>(n)),
                            static_cast<int>(n), race_member);
  } else {
    // Composition default: the shared pool's caller-participating ForEach
    // cannot deadlock when this race runs inside a SolveBatchParallel (or
    // other pool) worker — worst case the calling thread races every member
    // itself.
    ThreadPool::Shared().ForEach(static_cast<int>(n), race_member);
  }

  // Deterministic winner scan: strictly lower best energy wins; equal best
  // energies keep the earlier member (backend-order tie-break). Failed
  // members are dropped — hedging across unreliable backends is the point —
  // unless every member failed.
  int winner = -1;
  for (size_t i = 0; i < n; ++i) {
    if (!results[i].ok()) continue;
    if (winner < 0 ||
        results[i]->best().energy < results[winner]->best().energy) {
      winner = static_cast<int>(i);
    }
  }
  if (winner < 0) {
    for (size_t i = 0; i < n; ++i) {
      if (!results[i].ok()) {
        return AnnotateMemberError(results[i].status(), i, members[i],
                                   member_label);
      }
    }
  }
  RaceOutcome outcome;
  outcome.winner = winner;
  outcome.samples = std::move(results[winner]).value();
  return outcome;
}

Result<SampleSet> SolveRaceParallel(const std::vector<std::string>& members,
                                    const Qubo& qubo,
                                    const SolverOptions& options,
                                    int num_threads) {
  if (members.empty()) {
    return Status::InvalidArgument("a race needs at least one member backend");
  }
  // Resolve every member up front: unknown names surface before any fan-out,
  // and the constructed backends are what the race runs on.
  QDM_ASSIGN_OR_RETURN(std::vector<std::unique_ptr<QuboSolver>> solvers,
                       CreateMemberSolvers(members));
  std::vector<QuboSolver*> raw;
  raw.reserve(solvers.size());
  for (const auto& solver : solvers) raw.push_back(solver.get());
  QDM_ASSIGN_OR_RETURN(RaceOutcome outcome,
                       RaceMemberSolvers(members, raw, qubo, options,
                                         num_threads));
  return std::move(outcome.samples);
}

PortfolioSolver::PortfolioSolver(
    std::string registry_name, std::vector<std::string> members,
    std::vector<std::unique_ptr<QuboSolver>> member_solvers)
    : registry_name_(std::move(registry_name)),
      members_(std::move(members)),
      member_solvers_(std::move(member_solvers)) {
  QDM_CHECK(!members_.empty()) << "portfolio " << registry_name_
                               << " has no members";
  QDM_CHECK(member_solvers_.empty() ||
            member_solvers_.size() == members_.size())
      << "portfolio " << registry_name_
      << " member backends do not align with its member names";
}

Status PortfolioSolver::EnsureMemberSolvers() {
  if (!member_solvers_.empty()) return Status::Ok();
  QDM_ASSIGN_OR_RETURN(member_solvers_, CreateMemberSolvers(members_));
  return Status::Ok();
}

Result<SampleSet> PortfolioSolver::Solve(const Qubo& qubo,
                                         const SolverOptions& options) {
  // Member backends are built once per PortfolioSolver and reused across
  // Solve calls (a QuboSolver instance is never shared across threads, and
  // within one race each member runs on exactly one task).
  QDM_RETURN_IF_ERROR(EnsureMemberSolvers());
  std::vector<QuboSolver*> raw;
  raw.reserve(member_solvers_.size());
  for (const auto& solver : member_solvers_) raw.push_back(solver.get());
  // A shared Rng can only be honored sequentially; seed-based solves hedge
  // across the shared pool (deadlock-free under SolveBatchParallel workers).
  QDM_ASSIGN_OR_RETURN(RaceOutcome outcome,
                       RaceMemberSolvers(members_, raw, qubo, options,
                                         options.rng != nullptr ? 1 : 0));
  return std::move(outcome.samples);
}

Result<std::unique_ptr<QuboSolver>> MakePortfolioSolver(
    const std::string& name) {
  const std::string kPrefix = "race:";
  if (!StartsWith(name, kPrefix)) {
    return Status::InvalidArgument(
        StrFormat("portfolio solver name '%s' must start with '%s'",
                  name.c_str(), kPrefix.c_str()));
  }
  const std::vector<std::string> members =
      StrSplit(name.substr(kPrefix.size()), '+');
  if (members.size() < 2) {
    return Status::InvalidArgument(StrFormat(
        "portfolio solver name '%s' needs at least two '+'-separated "
        "members ('race:<b1>+<b2>[+...]'); a race of one is just that "
        "backend",
        name.c_str()));
  }
  std::vector<std::unique_ptr<QuboSolver>> member_solvers;
  member_solvers.reserve(members.size());
  for (size_t i = 0; i < members.size(); ++i) {
    if (members[i].empty()) {
      return Status::InvalidArgument(StrFormat(
          "portfolio solver name '%s' has an empty member at position %zu",
          name.c_str(), i));
    }
    if (StartsWith(members[i], kPrefix)) {
      return Status::InvalidArgument(StrFormat(
          "nested race backends are not supported ('%s' inside '%s'): '+' "
          "would be ambiguous",
          members[i].c_str(), name.c_str()));
    }
    if (StartsWith(members[i], "adaptive:")) {
      return Status::InvalidArgument(StrFormat(
          "adaptive backends cannot be race members ('%s' inside '%s'): '+' "
          "would be ambiguous",
          members[i].c_str(), name.c_str()));
    }
    // Resolve (not just Contains) so a member's real diagnosis survives —
    // e.g. a malformed embedded topology spec stays InvalidArgument with
    // the spec error instead of collapsing into a generic NotFound. The
    // built backend is handed to the portfolio and reused by its races.
    Result<std::unique_ptr<QuboSolver>> member_solver =
        SolverRegistry::Global().Create(members[i]);
    if (!member_solver.ok()) {
      return Status(member_solver.status().code(),
                    StrFormat("portfolio solver '%s' member '%s': %s",
                              name.c_str(), members[i].c_str(),
                              member_solver.status().message().c_str()));
    }
    member_solvers.push_back(std::move(member_solver).value());
  }
  return std::unique_ptr<QuboSolver>(std::make_unique<PortfolioSolver>(
      name, members, std::move(member_solvers)));
}

bool RegisterPortfolioSolvers() {
  auto& registry = SolverRegistry::Global();
  // Any well-formed "race:<b1>+<b2>+..." name resolves on demand.
  (void)registry.RegisterPrefix("race:", MakePortfolioSolver);
  // Eagerly register the canonical portfolio so it shows up in
  // RegisteredNames() (and is covered by the every-registered-backend
  // tests). AlreadyExists on re-entry is expected and harmless.
  const char* kDefault = "race:simulated_annealing+tabu_search";
  (void)registry.Register(kDefault, [kDefault] {
    Result<std::unique_ptr<QuboSolver>> solver = MakePortfolioSolver(kDefault);
    QDM_CHECK(solver.ok()) << "default portfolio backend '" << kDefault
                           << "' failed to build: " << solver.status();
    return std::move(solver).value();
  });
  return true;
}

namespace {
[[maybe_unused]] const bool kPortfolioSolversRegistered =
    RegisterPortfolioSolvers();
}  // namespace

}  // namespace anneal
}  // namespace qdm
