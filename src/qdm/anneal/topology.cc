#include "qdm/anneal/topology.h"

#include <cstdlib>

#include "qdm/anneal/chimera.h"
#include "qdm/anneal/pegasus.h"
#include "qdm/anneal/zephyr.h"
#include "qdm/common/strings.h"

namespace qdm {
namespace anneal {

std::vector<std::vector<int>> TriadCliqueChains(
    int num_logical, int shore,
    const std::function<int(int r, int c, int k)>& vertical,
    const std::function<int(int r, int c, int k)>& horizontal) {
  std::vector<std::vector<int>> chains(num_logical);
  const int used = (num_logical + shore - 1) / shore;
  for (int i = 0; i < num_logical; ++i) {
    const int block = i / shore;
    const int offset = i % shore;
    // Vertical run: column `block`, all rows of the used square.
    for (int r = 0; r < used; ++r) {
      chains[i].push_back(vertical(r, block, offset));
    }
    // Horizontal run: row `block`, all columns of the used square.
    for (int c = 0; c < used; ++c) {
      chains[i].push_back(horizontal(block, c, offset));
    }
  }
  return chains;
}

namespace {

/// Parses a full positive decimal integer; false on junk, overflow, or
/// value < 1. Stricter than bare strtol: leading whitespace or sign
/// characters are junk too ("+6", " 4" are not grammar-conforming specs).
bool ParsePositiveInt(const std::string& text, int* out) {
  if (text.empty() || text[0] < '0' || text[0] > '9') return false;
  char* end = nullptr;
  const long value = std::strtol(text.c_str(), &end, 10);
  if (end != text.c_str() + text.size()) return false;
  if (value < 1 || value > 1 << 20) return false;
  *out = static_cast<int>(value);
  return true;
}

Status BadSpec(const std::string& spec, const char* why) {
  return Status::InvalidArgument(StrFormat(
      "malformed topology spec '%s': %s (grammar: chimera:<rows>x<cols>x"
      "<shore> | pegasus:<m> | zephyr:<m>[x<t>])",
      spec.c_str(), why));
}

/// Rejects specs whose qubit count would not fit comfortably in int (the
/// dense-id space of HardwareTopology). `count` is computed by the caller
/// in 64-bit arithmetic, so grammatically valid but absurd dimensions
/// surface here as InvalidArgument instead of as signed overflow inside
/// num_qubits().
constexpr long long kMaxQubits = 1LL << 24;

Status CheckQubitCount(const std::string& spec, long long count) {
  if (count > kMaxQubits) {
    return Status::InvalidArgument(
        StrFormat("topology spec '%s' describes %lld qubits, above the %lld "
                  "limit",
                  spec.c_str(), count, kMaxQubits));
  }
  return Status::Ok();
}

}  // namespace

Result<std::unique_ptr<HardwareTopology>> MakeTopology(
    const std::string& spec) {
  const size_t colon = spec.find(':');
  if (colon == std::string::npos || colon == 0 || colon + 1 >= spec.size()) {
    return BadSpec(spec, "expected '<family>:<dimensions>'");
  }
  const std::string family = spec.substr(0, colon);
  const std::vector<std::string> dims =
      StrSplit(spec.substr(colon + 1), 'x');

  if (family == "chimera") {
    int rows, cols, shore;
    if (dims.size() != 3 || !ParsePositiveInt(dims[0], &rows) ||
        !ParsePositiveInt(dims[1], &cols) ||
        !ParsePositiveInt(dims[2], &shore)) {
      return BadSpec(spec, "chimera needs three positive dimensions RxCxL");
    }
    QDM_RETURN_IF_ERROR(
        CheckQubitCount(spec, 2LL * rows * cols * shore));
    return std::unique_ptr<HardwareTopology>(
        std::make_unique<ChimeraGraph>(rows, cols, shore));
  }
  if (family == "pegasus") {
    int m;
    if (dims.size() != 1 || !ParsePositiveInt(dims[0], &m)) {
      return BadSpec(spec, "pegasus needs one positive dimension <m>");
    }
    if (m < 2) return BadSpec(spec, "pegasus requires m >= 2");
    QDM_RETURN_IF_ERROR(CheckQubitCount(spec, 24LL * m * (m - 1)));
    return std::unique_ptr<HardwareTopology>(std::make_unique<PegasusGraph>(m));
  }
  if (family == "zephyr") {
    int m, t = 4;
    if (dims.empty() || dims.size() > 2 || !ParsePositiveInt(dims[0], &m) ||
        (dims.size() == 2 && !ParsePositiveInt(dims[1], &t))) {
      return BadSpec(spec, "zephyr needs dimensions <m> or <m>x<t>");
    }
    // Two-step product: 4*t*m is at most 2^42 for in-cap dimensions, so
    // checking it first keeps the full count below 2^46 — multiplying the
    // three factors at once could overflow long long before the guard runs.
    long long count = 4LL * t * m;
    if (count <= kMaxQubits) count *= 2LL * m + 1;
    QDM_RETURN_IF_ERROR(CheckQubitCount(spec, count));
    return std::unique_ptr<HardwareTopology>(
        std::make_unique<ZephyrGraph>(m, t));
  }
  return BadSpec(spec, "unknown family");
}

}  // namespace anneal
}  // namespace qdm
