#include "qdm/anneal/pegasus.h"

#include <algorithm>

#include "qdm/common/check.h"
#include "qdm/common/strings.h"

namespace qdm {
namespace anneal {

PegasusGraph::PegasusGraph(int m) : m_(m) { QDM_CHECK_GE(m, 2); }

int PegasusGraph::VerticalShift(int k) {
  static constexpr int kShift[3] = {2, 10, 6};
  return kShift[k / 4];
}

int PegasusGraph::HorizontalShift(int k) {
  static constexpr int kShift[3] = {6, 2, 10};
  return kShift[k / 4];
}

int PegasusGraph::Qubit(int u, int w, int k, int z) const {
  QDM_CHECK(u >= 0 && u < 2 && w >= 0 && w < m_ && k >= 0 && k < 12 &&
            z >= 0 && z < m_ - 1);
  return ((u * m_ + w) * 12 + k) * (m_ - 1) + z;
}

PegasusGraph::Coord PegasusGraph::Decode(int id) const {
  QDM_CHECK(id >= 0 && id < num_qubits());
  const int z = id % (m_ - 1);
  int rest = id / (m_ - 1);
  const int k = rest % 12;
  rest /= 12;
  return Coord{rest / m_, rest % m_, k, z};
}

std::string PegasusGraph::name() const { return StrFormat("pegasus:%d", m_); }

bool PegasusGraph::HasEdge(int a, int b) const {
  if (a == b) return false;
  const Coord qa = Decode(a);
  const Coord qb = Decode(b);
  if (qa.u == qb.u) {
    // External: collinear segments at consecutive z.
    if (qa.w == qb.w && qa.k == qb.k &&
        (qa.z - qb.z == 1 || qb.z - qa.z == 1)) {
      return true;
    }
    // Odd: paired tracks (2j, 2j+1) at the same position.
    return qa.w == qb.w && qa.z == qb.z && (qa.k ^ 1) == qb.k;
  }
  // Internal: opposite orientations whose segments cross. Let v be the
  // vertical one at column x spanning 12 rows, h the horizontal one at row y
  // spanning 12 columns; they couple iff each lies in the other's span.
  const Coord& v = qa.u == 0 ? qa : qb;
  const Coord& h = qa.u == 0 ? qb : qa;
  const int x = 12 * v.w + v.k;
  const int y = 12 * h.w + h.k;
  const int v_lo = 12 * v.z + VerticalShift(v.k);
  const int h_lo = 12 * h.z + HorizontalShift(h.k);
  return y >= v_lo && y < v_lo + 12 && x >= h_lo && x < h_lo + 12;
}

std::vector<std::pair<int, int>> PegasusGraph::Edges() const {
  std::vector<std::pair<int, int>> edges;
  for (int u = 0; u < 2; ++u) {
    for (int w = 0; w < m_; ++w) {
      for (int k = 0; k < 12; ++k) {
        for (int z = 0; z < m_ - 1; ++z) {
          const int q = Qubit(u, w, k, z);
          if (z + 1 < m_ - 1) edges.emplace_back(q, Qubit(u, w, k, z + 1));
          if ((k & 1) == 0) edges.emplace_back(q, Qubit(u, w, k + 1, z));
        }
      }
    }
  }
  // Internal couplers: walk every vertical segment's 12-row span; each row is
  // a horizontal track, and at most one horizontal segment of that track
  // covers the vertical segment's column.
  for (int w = 0; w < m_; ++w) {
    for (int k = 0; k < 12; ++k) {
      const int x = 12 * w + k;
      for (int z = 0; z < m_ - 1; ++z) {
        const int v = Qubit(0, w, k, z);
        const int v_lo = 12 * z + VerticalShift(k);
        for (int y = v_lo; y < v_lo + 12; ++y) {
          const int hw = y / 12;
          const int hk = y % 12;
          if (hw >= m_) continue;
          const int rel = x - HorizontalShift(hk);
          if (rel < 0) continue;
          const int hz = rel / 12;
          if (hz >= m_ - 1) continue;
          const int h = Qubit(1, hw, hk, hz);
          edges.emplace_back(std::min(v, h), std::max(v, h));
        }
      }
    }
  }
  return edges;
}

Result<std::vector<std::vector<int>>> PegasusGraph::CliqueChains(
    int num_logical) const {
  if (num_logical > CliqueCapacity()) {
    return Status::ResourceExhausted(StrFormat(
        "clique embedding of K_%d exceeds the %d-variable capacity of %s",
        num_logical, CliqueCapacity(), name().c_str()));
  }
  // TRIAD over the middle-track-group Chimera C(m-1, m-1, 4) copy: the
  // vertical tracks k in [4, 8) (shift 10) cross the horizontal tracks
  // k in [4, 8) (shift 2) in complete K_{4,4} cells, and consecutive cells
  // along a row/column are joined by external couplers.
  return TriadCliqueChains(
      num_logical, 4,
      [this](int r, int c, int i) { return Qubit(0, c, 4 + i, r); },
      [this](int r, int c, int i) { return Qubit(1, r + 1, 4 + i, c); });
}

}  // namespace anneal
}  // namespace qdm
