#include "qdm/anneal/parallel_tempering.h"

#include <cmath>

#include "qdm/anneal/simulated_annealing.h"
#include "qdm/common/check.h"

namespace qdm {
namespace anneal {

SampleSet ParallelTempering::SampleQubo(const Qubo& qubo, int num_reads,
                                        Rng* rng) {
  QDM_CHECK_GT(num_reads, 0);
  QDM_CHECK_GE(options_.num_replicas, 2);
  const QuboAdjacency adj(qubo);
  const int n = adj.num_variables();

  double beta_min = options_.beta_min;
  double beta_max = options_.beta_max;
  if (beta_max <= 0.0) {
    const double hottest = std::max(adj.max_abs_coefficient(), 1e-9);
    const double coldest = std::max(adj.min_abs_coefficient(), 1e-9);
    beta_min = 0.1 / hottest;
    beta_max = 10.0 / coldest;
  }
  const int r = options_.num_replicas;
  std::vector<double> betas(r);
  for (int k = 0; k < r; ++k) {
    betas[k] = beta_min * std::pow(beta_max / beta_min,
                                   static_cast<double>(k) / (r - 1));
  }

  SampleSet result;
  for (int read = 0; read < num_reads; ++read) {
    std::vector<Assignment> replicas(r, Assignment(n));
    std::vector<double> energies(r);
    for (int k = 0; k < r; ++k) {
      for (int i = 0; i < n; ++i) replicas[k][i] = rng->Bernoulli(0.5) ? 1 : 0;
      energies[k] = adj.Energy(replicas[k]);
    }

    Assignment best = replicas[0];
    double best_energy = energies[0];

    for (int sweep = 0; sweep < options_.num_sweeps; ++sweep) {
      for (int k = 0; k < r; ++k) {
        for (int i = 0; i < n; ++i) {
          const double delta = adj.FlipDelta(replicas[k], i);
          if (delta <= 0.0 || rng->Uniform() < std::exp(-betas[k] * delta)) {
            replicas[k][i] ^= 1;
            energies[k] += delta;
          }
        }
        if (energies[k] < best_energy) {
          best_energy = energies[k];
          best = replicas[k];
        }
      }
      if (options_.swap_interval > 0 && sweep % options_.swap_interval == 0) {
        for (int k = 0; k + 1 < r; ++k) {
          const double arg = (betas[k + 1] - betas[k]) *
                             (energies[k + 1] - energies[k]);
          if (arg >= 0.0 || rng->Uniform() < std::exp(arg)) {
            std::swap(replicas[k], replicas[k + 1]);
            std::swap(energies[k], energies[k + 1]);
          }
        }
      }
    }
    result.Add(Sample{best, best_energy, 0.0});
  }
  return result;
}

}  // namespace anneal
}  // namespace qdm
