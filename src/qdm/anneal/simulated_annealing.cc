#include "qdm/anneal/simulated_annealing.h"

#include <cmath>

#include "qdm/common/check.h"

namespace qdm {
namespace anneal {

QuboAdjacency::QuboAdjacency(const Qubo& qubo)
    : num_variables_(qubo.num_variables()),
      offset_(qubo.offset()),
      linear_(qubo.num_variables()) {
  adjacency_.resize(num_variables_);
  double min_nonzero = 0.0;
  for (int i = 0; i < num_variables_; ++i) {
    linear_[i] = qubo.linear(i);
    if (linear_[i] != 0.0) {
      max_abs_coefficient_ =
          std::max(max_abs_coefficient_, std::abs(linear_[i]));
      min_nonzero = min_nonzero == 0.0 ? std::abs(linear_[i])
                                       : std::min(min_nonzero,
                                                  std::abs(linear_[i]));
    }
  }
  for (const auto& [key, w] : qubo.quadratic_terms()) {
    if (w == 0.0) continue;
    adjacency_[key.first].push_back({key.second, w});
    adjacency_[key.second].push_back({key.first, w});
    max_abs_coefficient_ = std::max(max_abs_coefficient_, std::abs(w));
    min_nonzero = min_nonzero == 0.0 ? std::abs(w)
                                     : std::min(min_nonzero, std::abs(w));
  }
  min_abs_coefficient_ = min_nonzero;
}

double QuboAdjacency::Energy(const Assignment& x) const {
  double e = offset_;
  for (int i = 0; i < num_variables_; ++i) {
    if (!x[i]) continue;
    e += linear_[i];
    for (const Edge& edge : adjacency_[i]) {
      if (edge.neighbor > i && x[edge.neighbor]) e += edge.weight;
    }
  }
  return e;
}

double QuboAdjacency::FlipDelta(const Assignment& x, int i) const {
  double field = linear_[i];
  for (const Edge& edge : adjacency_[i]) {
    if (x[edge.neighbor]) field += edge.weight;
  }
  return x[i] ? -field : field;
}

SampleSet SimulatedAnnealer::SampleQubo(const Qubo& qubo, int num_reads,
                                        Rng* rng) {
  QDM_CHECK_GT(num_reads, 0);
  const QuboAdjacency adj(qubo);
  const int n = adj.num_variables();

  double beta_min = schedule_.beta_min;
  double beta_max = schedule_.beta_max;
  if (beta_max <= 0.0) {
    const double hottest = std::max(adj.max_abs_coefficient(), 1e-9);
    const double coldest = std::max(adj.min_abs_coefficient(), 1e-9);
    beta_min = 0.1 / hottest;   // Hot: accepts nearly everything.
    beta_max = 10.0 / coldest;  // Cold: freezes the smallest excitation.
  }
  QDM_CHECK_GT(beta_min, 0.0);
  QDM_CHECK_GE(beta_max, beta_min);
  const int sweeps = schedule_.num_sweeps;
  const double ratio =
      sweeps > 1 ? std::pow(beta_max / beta_min, 1.0 / (sweeps - 1)) : 1.0;

  SampleSet result;
  for (int read = 0; read < num_reads; ++read) {
    Assignment x(n);
    for (int i = 0; i < n; ++i) x[i] = rng->Bernoulli(0.5) ? 1 : 0;
    double energy = adj.Energy(x);

    double beta = beta_min;
    for (int sweep = 0; sweep < sweeps; ++sweep, beta *= ratio) {
      for (int i = 0; i < n; ++i) {
        const double delta = adj.FlipDelta(x, i);
        if (delta <= 0.0 || rng->Uniform() < std::exp(-beta * delta)) {
          x[i] ^= 1;
          energy += delta;
        }
      }
    }
    result.Add(Sample{x, energy, 0.0});
  }
  return result;
}

}  // namespace anneal
}  // namespace qdm
