#include "qdm/anneal/backend_cache.h"

#include <map>
#include <mutex>
#include <utility>

namespace qdm {
namespace anneal {

namespace {

/// One mutex guards both maps and the counters. Misses construct under the
/// lock (see the header: that IS the single-construction guarantee), so a
/// hit never observes a half-built entry and TSan sees every access
/// ordered. Intentionally leaked, like SolverRegistry::Global(), so cached
/// artifacts stay usable from any shutdown context.
struct CacheState {
  std::mutex mutex;
  std::map<std::string, std::shared_ptr<const HardwareTopology>> topologies;
  // Two-level (canonical name, num_logical) keying: EmbeddedSolver::Solve
  // takes this lookup on EVERY solve, so the hot path must not allocate a
  // formatted composite key per call.
  std::map<std::string, std::map<int, std::shared_ptr<const Embedding>>>
      embeddings;
  BackendCacheStats stats;
};

CacheState& State() {
  static CacheState* state = new CacheState();
  return *state;
}

}  // namespace

Result<std::shared_ptr<const HardwareTopology>> GetCachedTopology(
    const std::string& spec) {
  CacheState& state = State();
  std::lock_guard<std::mutex> lock(state.mutex);
  auto it = state.topologies.find(spec);
  if (it != state.topologies.end()) {
    ++state.stats.topology_hits;
    return it->second;
  }
  QDM_ASSIGN_OR_RETURN(std::unique_ptr<HardwareTopology> built,
                       MakeTopology(spec));
  std::shared_ptr<const HardwareTopology> topology(std::move(built));
  ++state.stats.topology_constructions;
  state.topologies[spec] = topology;
  // Alias the canonical spelling too ("zephyr:4" -> "zephyr:4x4"), so the
  // other spelling hits the same instance instead of rebuilding it.
  state.topologies.emplace(topology->name(), topology);
  return topology;
}

Result<std::shared_ptr<const Embedding>> GetCachedCliqueEmbedding(
    int num_logical, const HardwareTopology& topology) {
  const std::string name = topology.name();
  CacheState& state = State();
  std::lock_guard<std::mutex> lock(state.mutex);
  std::map<int, std::shared_ptr<const Embedding>>& plans =
      state.embeddings[name];
  auto it = plans.find(num_logical);
  if (it != plans.end()) {
    ++state.stats.embedding_hits;
    return it->second;
  }
  QDM_ASSIGN_OR_RETURN(Embedding built,
                       CliqueEmbedding(num_logical, topology));
  auto embedding = std::make_shared<const Embedding>(std::move(built));
  ++state.stats.embedding_constructions;
  plans[num_logical] = embedding;
  return embedding;
}

BackendCacheStats GetBackendCacheStats() {
  CacheState& state = State();
  std::lock_guard<std::mutex> lock(state.mutex);
  return state.stats;
}

}  // namespace anneal
}  // namespace qdm
