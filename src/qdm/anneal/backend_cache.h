#ifndef QDM_ANNEAL_BACKEND_CACHE_H_
#define QDM_ANNEAL_BACKEND_CACHE_H_

#include <cstdint>
#include <memory>
#include <string>

#include "qdm/anneal/embedding.h"
#include "qdm/anneal/topology.h"
#include "qdm/common/status.h"

namespace qdm {
namespace anneal {

/// Process-wide immutable cache for the expensive construction artifacts
/// behind "embedded:<base>:<topology>" backend creation: HardwareTopology
/// graphs and their clique-embedding plans. The batch substrate went from
/// one backend per *instance* to one backend per *worker* (solver.h,
/// SolveBatchParallel), but workers still each Create their own backend —
/// this cache is what makes that creation a shared_ptr lookup after first
/// use instead of re-running the TRIAD construction per worker.
///
/// Semantics:
///
///  - Immutable and eviction-free: entries are shared as
///    shared_ptr<const T>, never mutated, never dropped for the process
///    lifetime. Returning the SAME pointer for the same key is part of the
///    contract (tests pin it); concurrent consumers need no copies.
///  - Single construction: the cache lock is held across a miss's
///    construction, so N threads first-touching the same spec produce
///    exactly one topology (TSan-clean; constructions are pure and
///    bounded, so the critical section is acceptable and first-touch-only).
///  - Errors are not cached: a malformed spec reports its InvalidArgument
///    every time (diagnosis is cheap; only successes are expensive).
///  - Spec aliasing: a topology is stored under the spec it was requested
///    with AND under its canonical name() ("zephyr:4" parses to
///    "zephyr:4x4"), so alias spellings share one instance after first use.
///
/// Determinism: topologies and clique embeddings are pure functions of
/// their spec/(spec, n) keys, so a cache hit is bit-identical to a fresh
/// construction — batch results cannot depend on cache state.

/// Counters for the cache-effectiveness perf-gate metric and tests. Hit and
/// construction counts are exact and deterministic for a fixed workload:
/// a regression back to per-instance backend construction shows up as a
/// topology_hits jump at fixed seed (bench_hardware_constraints gates it).
struct BackendCacheStats {
  uint64_t topology_constructions = 0;
  uint64_t topology_hits = 0;
  uint64_t embedding_constructions = 0;
  uint64_t embedding_hits = 0;
};

/// MakeTopology behind the cache: parses and builds on first use, then
/// returns the shared instance for `spec` (or any alias of it). Errors pass
/// through MakeTopology's taxonomy uncached.
Result<std::shared_ptr<const HardwareTopology>> GetCachedTopology(
    const std::string& spec);

/// CliqueEmbedding behind the cache, keyed by (topology->name(), n).
/// `topology` does not have to come from GetCachedTopology — the canonical
/// name keys the plan — but cached topologies keep the key space shared.
/// ResourceExhausted (n beyond capacity) passes through uncached.
Result<std::shared_ptr<const Embedding>> GetCachedCliqueEmbedding(
    int num_logical, const HardwareTopology& topology);

/// Snapshot of the process-wide counters (monotone since process start).
BackendCacheStats GetBackendCacheStats();

}  // namespace anneal
}  // namespace qdm

#endif  // QDM_ANNEAL_BACKEND_CACHE_H_
