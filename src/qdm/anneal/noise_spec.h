#ifndef QDM_ANNEAL_NOISE_SPEC_H_
#define QDM_ANNEAL_NOISE_SPEC_H_

#include <string>

#include "qdm/common/status.h"

namespace qdm {
namespace anneal {

/// The channel selected by a noise-model token (docs/noise.md grammar).
enum class NoiseChannel {
  kNone = 0,           // noiseless default (zero-means-default convention)
  kDepolarizing,       // depol@<p>
  kPauli,              // pauli@<px>,<py>,<pz>
  kAmplitudeDamping,   // damp@<gamma>
  kPhaseDamping,       // phase@<lambda>
  kReadout,            // readout@<p>
};

/// Backend-neutral noise-model description carried on SolverOptions.noise —
/// the anneal-layer mirror of sim::NoiseModel (the anneal layer does not
/// depend on sim/; the gate-based bridges in algo/ translate this into one
/// via algo::ToNoiseModel). Parsed from the model token of a
/// `noisy:<model>:<base>` registry name by ParseNoiseSpec.
struct NoiseSpec {
  NoiseChannel channel = NoiseChannel::kNone;
  /// Rate of the single-parameter channels (depol p / damp gamma /
  /// phase lambda / readout p).
  double p = 0.0;
  /// Per-Pauli error probabilities of the pauli channel (px + py + pz <= 1).
  double px = 0.0;
  double py = 0.0;
  double pz = 0.0;

  /// True when the spec perturbs nothing — channel unset or every rate zero
  /// (so `noisy:depol@0.0:<base>` collapses to bare `<base>` exactly).
  bool IsNoiseless() const;

  /// Canonical model token ("depol@0.01", "pauli@0.1,0,0.05", "none").
  std::string ToString() const;
};

/// Parses a noise-model token of the grammar
///
///   depol@<p> | pauli@<px>,<py>,<pz> | damp@<gamma> | phase@<lambda> |
///   readout@<p>
///
/// with every probability a decimal in [0, 1] (and px+py+pz <= 1). Malformed
/// tokens are InvalidArgument naming the offending token — never an abort —
/// mirroring the embedded:*/race:* error taxonomy.
Result<NoiseSpec> ParseNoiseSpec(const std::string& token);

}  // namespace anneal
}  // namespace qdm

#endif  // QDM_ANNEAL_NOISE_SPEC_H_
