#ifndef QDM_ANNEAL_SAMPLER_H_
#define QDM_ANNEAL_SAMPLER_H_

#include <string>
#include <utility>
#include <vector>

#include "qdm/anneal/qubo.h"
#include "qdm/common/rng.h"

namespace qdm {
namespace anneal {

/// One sampled solution with its energy.
struct Sample {
  Assignment assignment;
  double energy = 0.0;
  /// Fraction of embedding chains that disagreed internally (0 when the
  /// sample did not come through an embedding).
  double chain_break_fraction = 0.0;
};

/// A set of samples, kept sorted by ascending energy.
class SampleSet {
 public:
  SampleSet() = default;

  void Add(Sample sample);

  bool empty() const { return samples_.empty(); }
  size_t size() const { return samples_.size(); }
  const std::vector<Sample>& samples() const { return samples_; }

  /// Lowest-energy sample.
  const Sample& best() const;

  /// Fraction of samples whose energy is within `tol` of the best.
  double SuccessRate(double target_energy, double tol = 1e-9) const;

  /// Mean fidelity of the sampled states with the ideal (noiseless) state;
  /// 1.0 unless the set came through a noisy gate-based backend
  /// (docs/noise.md). Exact solves and classical backends leave it at 1.0.
  double noise_fidelity() const { return noise_fidelity_; }
  void set_noise_fidelity(double fidelity) { noise_fidelity_ = fidelity; }

  /// Which member an adaptive:* portfolio ran for this solve, recorded as
  /// "<phase>:<arm>:<member>" with phase "explore" (all members raced, arm
  /// won) or "commit" (only member `arm` ran) — see adaptive_solver.h for
  /// the grammar and ReplayAdaptiveDecision for bit-exact replay. Empty for
  /// every non-adaptive backend; rides the wire format
  /// backward-compatibly (emitted only when non-empty).
  const std::string& decision() const { return decision_; }
  void set_decision(std::string decision) { decision_ = std::move(decision); }

 private:
  std::vector<Sample> samples_;
  double noise_fidelity_ = 1.0;
  std::string decision_;
};

/// Abstract QUBO sampler — the "quantum computer" interface of the annealing
/// path in Figure 2. Implementations: SimulatedAnnealer (stand-in for the
/// D-Wave physical anneal), ParallelTempering, TabuSearch (classical
/// baselines), ExactSolver (ground truth), EmbeddedSampler (adds the
/// logical->physical Chimera mapping), and algo::QaoaSampler /
/// algo::GroverSampler on the gate-based side.
class Sampler {
 public:
  virtual ~Sampler() = default;

  /// Draws `num_reads` solutions for `qubo`.
  virtual SampleSet SampleQubo(const Qubo& qubo, int num_reads, Rng* rng) = 0;

  /// Human-readable name for report tables.
  virtual std::string name() const = 0;
};

}  // namespace anneal
}  // namespace qdm

#endif  // QDM_ANNEAL_SAMPLER_H_
