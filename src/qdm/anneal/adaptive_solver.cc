#include "qdm/anneal/adaptive_solver.h"

#include <algorithm>
#include <utility>

#include "qdm/anneal/portfolio_solver.h"
#include "qdm/common/strings.h"
#include "qdm/common/thread_pool.h"

namespace qdm {
namespace anneal {

namespace {

const char* kMemberLabel = "adaptive member";

/// Per-member failure framing, matching RaceMemberSolvers' annotation so
/// the explore and commit phases report members identically.
Status AnnotateAdaptiveMemberError(const Status& status, size_t index,
                                   const std::string& member) {
  return Status(status.code(),
                StrFormat("%s %zu ('%s'): %s", kMemberLabel, index,
                          member.c_str(), status.message().c_str()));
}

std::string DecisionString(const char* phase, int arm,
                           const std::string& member) {
  return StrFormat("%s:%d:%s", phase, arm, member.c_str());
}

/// Builds one backend per member name — the per-worker member sets of the
/// threaded batch path. Members were already resolved when the adaptive
/// solver was built, so failures here are unexpected, but they keep the
/// Make-time annotation if they happen.
Result<std::vector<std::unique_ptr<QuboSolver>>> CreateMemberSet(
    const std::string& name, const std::vector<std::string>& members) {
  std::vector<std::unique_ptr<QuboSolver>> solvers;
  solvers.reserve(members.size());
  for (size_t i = 0; i < members.size(); ++i) {
    Result<std::unique_ptr<QuboSolver>> solver =
        SolverRegistry::Global().Create(members[i]);
    if (!solver.ok()) {
      return Status(solver.status().code(),
                    StrFormat("adaptive solver '%s' member '%s': %s",
                              name.c_str(), members[i].c_str(),
                              solver.status().message().c_str()));
    }
    solvers.push_back(std::move(solver).value());
  }
  return solvers;
}

std::vector<QuboSolver*> RawPointers(
    const std::vector<std::unique_ptr<QuboSolver>>& solvers) {
  std::vector<QuboSolver*> raw;
  raw.reserve(solvers.size());
  for (const auto& solver : solvers) raw.push_back(solver.get());
  return raw;
}

}  // namespace

AdaptiveSolver::AdaptiveSolver(
    std::string registry_name, std::vector<std::string> members,
    std::vector<std::unique_ptr<QuboSolver>> member_solvers)
    : registry_name_(std::move(registry_name)),
      members_(std::move(members)),
      member_solvers_(std::move(member_solvers)),
      wins_(members_.size(), 0) {
  QDM_CHECK(members_.size() >= 2)
      << "adaptive portfolio " << registry_name_ << " needs >= 2 members";
  QDM_CHECK(member_solvers_.size() == members_.size())
      << "adaptive portfolio " << registry_name_
      << " member backends do not align with its member names";
}

int AdaptiveSolver::committed_member() const {
  if (solves_seen_ < static_cast<uint64_t>(kExploreInstances)) return -1;
  // Most wins commits; equal tallies keep the earliest member — the same
  // deterministic tie-break as the race winner scan.
  int best = 0;
  for (size_t m = 1; m < wins_.size(); ++m) {
    if (wins_[m] > wins_[best]) best = static_cast<int>(m);
  }
  return best;
}

Result<SampleSet> AdaptiveSolver::SolveOne(const Qubo& qubo,
                                           const SolverOptions& options,
                                           int solve_threads) {
  if (solves_seen_ < static_cast<uint64_t>(kExploreInstances)) {
    QDM_ASSIGN_OR_RETURN(
        RaceOutcome outcome,
        RaceMemberSolvers(members_, RawPointers(member_solvers_), qubo,
                          options, solve_threads, kMemberLabel));
    ++wins_[outcome.winner];
    ++solves_seen_;
    outcome.samples.set_decision(
        DecisionString("explore", outcome.winner, members_[outcome.winner]));
    return std::move(outcome.samples);
  }
  QDM_RETURN_IF_ERROR(ValidateSolverOptions(options));
  const int w = committed_member();
  // The committed member keeps the seed+index rule of the explore races
  // (member m solves with seed + m), so one replay rule covers both
  // phases. A caller-shared Rng is honored verbatim, as in a race.
  const SolverOptions member_options =
      options.rng != nullptr ? options : DeriveBatchOptions(options, w);
  Result<SampleSet> samples = member_solvers_[w]->Solve(qubo, member_options);
  if (!samples.ok()) {
    return AnnotateAdaptiveMemberError(samples.status(), w, members_[w]);
  }
  if (samples->empty()) {
    return AnnotateAdaptiveMemberError(
        Status::Internal(StrFormat("solver '%s' returned an empty sample set",
                                   members_[w].c_str())),
        w, members_[w]);
  }
  ++solves_seen_;
  samples->set_decision(DecisionString("commit", w, members_[w]));
  return samples;
}

Result<SampleSet> AdaptiveSolver::Solve(const Qubo& qubo,
                                        const SolverOptions& options) {
  // A shared Rng can only be honored sequentially; seed-based explore races
  // fan out across the shared pool like a race:* solve.
  return SolveOne(qubo, options, options.rng != nullptr ? 1 : 0);
}

Result<std::vector<SampleSet>> AdaptiveSolver::SolveBatchThreaded(
    const std::vector<Qubo>& qubos, const SolverOptions& options,
    int num_threads) {
  if (num_threads != 1 && options.rng != nullptr) {
    return Status::InvalidArgument(
        "SolveBatchParallel with num_threads != 1 requires seed-based "
        "randomness (options.rng must be null): a shared Rng cannot be "
        "fanned out deterministically");
  }
  QDM_RETURN_IF_ERROR(ValidateSolverOptions(options));
  if (num_threads <= 0) num_threads = ThreadPool::DefaultNumThreads();
  const size_t n = qubos.size();
  if (num_threads == 1 || n <= 1) return SolveBatch(qubos, options);

  // Positional schedule from the instance's current counter: the first
  // `explore` instances race, the rest run the committed member. A fresh
  // instance (counter 0) therefore explores instances [0, 8) and commits
  // from instance 8 — exactly what the sequential per-instance reference
  // does, at any thread count.
  const uint64_t remaining_explore =
      solves_seen_ < static_cast<uint64_t>(kExploreInstances)
          ? static_cast<uint64_t>(kExploreInstances) - solves_seen_
          : 0;
  const size_t explore = static_cast<size_t>(
      std::min<uint64_t>(static_cast<uint64_t>(n), remaining_explore));

  // Worker-local member sets: a race inside one instance runs its members
  // sequentially on that worker's own backends, so no backend is ever
  // shared across threads. Set 0 reuses the instance's own members; the
  // backend cache keeps the extra sets cheap.
  const int workers =
      std::min(num_threads, static_cast<int>(std::max<size_t>(
                                explore, n - explore)));
  std::vector<std::vector<std::unique_ptr<QuboSolver>>> extra_sets;
  std::vector<std::vector<QuboSolver*>> sets;
  sets.push_back(RawPointers(member_solvers_));
  for (int w = 1; w < workers; ++w) {
    QDM_ASSIGN_OR_RETURN(std::vector<std::unique_ptr<QuboSolver>> set,
                         CreateMemberSet(registry_name_, members_));
    extra_sets.push_back(std::move(set));
    sets.push_back(RawPointers(extra_sets.back()));
  }

  std::vector<SampleSet> results(n);

  // Explore phase: each worker races all members for the instances it
  // drains (inner races sequential — the parallelism is across instances).
  std::vector<Result<RaceOutcome>> races(explore,
                                         Status::Internal("not raced"));
  ThreadPool::ParallelForWorkers(
      std::min(num_threads, static_cast<int>(explore)),
      static_cast<int>(explore),
      [this, &sets, &qubos, &options, &races](int worker, int i) {
        races[i] =
            RaceMemberSolvers(members_, sets[worker], qubos[i],
                              DeriveBatchOptions(options, i),
                              /*num_threads=*/1, kMemberLabel);
      });
  // Tally sequentially in instance order — the win counts and the commit
  // decision are a pure function of the batch, not of the fan-out. The
  // counter advances per successful instance, mirroring the sequential
  // reference's stop-at-first-failure accounting.
  for (size_t i = 0; i < explore; ++i) {
    if (!races[i].ok()) {
      return AnnotateBatchInstanceError(races[i].status(), i, n);
    }
    RaceOutcome& outcome = *races[i];
    ++wins_[outcome.winner];
    ++solves_seen_;
    outcome.samples.set_decision(
        DecisionString("explore", outcome.winner, members_[outcome.winner]));
    results[i] = std::move(outcome.samples);
  }
  if (explore == n) return results;

  // Commit phase: only the winning member runs for the rest of the batch.
  const int w = committed_member();
  const size_t commit = n - explore;
  std::vector<Status> statuses(commit);
  ThreadPool::ParallelForWorkers(
      std::min(num_threads, static_cast<int>(commit)),
      static_cast<int>(commit),
      [this, &sets, &qubos, &options, &results, &statuses, w, explore](
          int worker, int j) {
        const size_t i = explore + j;
        Result<SampleSet> samples = sets[worker][w]->Solve(
            qubos[i],
            DeriveBatchOptions(DeriveBatchOptions(options, i), w));
        if (!samples.ok()) {
          statuses[j] =
              AnnotateAdaptiveMemberError(samples.status(), w, members_[w]);
          return;
        }
        if (samples->empty()) {
          statuses[j] = AnnotateAdaptiveMemberError(
              Status::Internal(
                  StrFormat("solver '%s' returned an empty sample set",
                            members_[w].c_str())),
              w, members_[w]);
          return;
        }
        samples->set_decision(DecisionString("commit", w, members_[w]));
        results[i] = std::move(samples).value();
      });
  for (size_t j = 0; j < commit; ++j) {
    if (!statuses[j].ok()) {
      return AnnotateBatchInstanceError(statuses[j], explore + j, n);
    }
    ++solves_seen_;
  }
  return results;
}

Result<std::unique_ptr<QuboSolver>> MakeAdaptiveSolver(
    const std::string& name) {
  const std::string kPrefix = "adaptive:";
  if (!StartsWith(name, kPrefix)) {
    return Status::InvalidArgument(
        StrFormat("adaptive solver name '%s' must start with '%s'",
                  name.c_str(), kPrefix.c_str()));
  }
  const std::vector<std::string> members =
      StrSplit(name.substr(kPrefix.size()), '+');
  if (members.size() < 2) {
    return Status::InvalidArgument(StrFormat(
        "adaptive solver name '%s' needs at least two '+'-separated "
        "members ('adaptive:<b1>+<b2>[+...]'); an adaptive portfolio of one "
        "is just that backend",
        name.c_str()));
  }
  std::vector<std::unique_ptr<QuboSolver>> member_solvers;
  member_solvers.reserve(members.size());
  for (size_t i = 0; i < members.size(); ++i) {
    if (members[i].empty()) {
      return Status::InvalidArgument(StrFormat(
          "adaptive solver name '%s' has an empty member at position %zu",
          name.c_str(), i));
    }
    if (StartsWith(members[i], kPrefix)) {
      return Status::InvalidArgument(StrFormat(
          "nested adaptive backends are not supported ('%s' inside '%s'): "
          "'+' would be ambiguous",
          members[i].c_str(), name.c_str()));
    }
    if (StartsWith(members[i], "race:")) {
      return Status::InvalidArgument(StrFormat(
          "race backends cannot be adaptive members ('%s' inside '%s'): '+' "
          "would be ambiguous",
          members[i].c_str(), name.c_str()));
    }
    // Resolve (not just Contains) so a member's real diagnosis survives —
    // e.g. a malformed embedded topology spec stays InvalidArgument with
    // the spec error instead of collapsing into a generic NotFound. The
    // built backends are handed to the selector and reused by its solves.
    Result<std::unique_ptr<QuboSolver>> member_solver =
        SolverRegistry::Global().Create(members[i]);
    if (!member_solver.ok()) {
      return Status(member_solver.status().code(),
                    StrFormat("adaptive solver '%s' member '%s': %s",
                              name.c_str(), members[i].c_str(),
                              member_solver.status().message().c_str()));
    }
    member_solvers.push_back(std::move(member_solver).value());
  }
  return std::unique_ptr<QuboSolver>(std::make_unique<AdaptiveSolver>(
      name, members, std::move(member_solvers)));
}

Result<SampleSet> ReplayAdaptiveDecision(
    const std::string& decision, const Qubo& qubo,
    const SolverOptions& instance_options) {
  const auto malformed = [&decision] {
    return Status::InvalidArgument(StrFormat(
        "adaptive decision '%s' must have the form '<phase>:<arm>:<member>' "
        "with phase 'explore' or 'commit' and a non-negative arm index",
        decision.c_str()));
  };
  const size_t first = decision.find(':');
  if (first == std::string::npos) return malformed();
  const size_t second = decision.find(':', first + 1);
  if (second == std::string::npos || second + 1 >= decision.size()) {
    return malformed();
  }
  const std::string phase = decision.substr(0, first);
  if (phase != "explore" && phase != "commit") return malformed();
  const std::string arm_token = decision.substr(first + 1, second - first - 1);
  if (arm_token.empty()) return malformed();
  size_t arm = 0;
  for (char c : arm_token) {
    if (c < '0' || c > '9') return malformed();
    arm = arm * 10 + static_cast<size_t>(c - '0');
  }
  const std::string member = decision.substr(second + 1);
  QDM_ASSIGN_OR_RETURN(std::unique_ptr<QuboSolver> solver,
                       SolverRegistry::Global().Create(member));
  // The one replay rule (see the header): the recorded member ran with the
  // arm's derived seed, in both phases.
  QDM_ASSIGN_OR_RETURN(
      SampleSet samples,
      solver->Solve(qubo, DeriveBatchOptions(instance_options, arm)));
  samples.set_decision(decision);
  return samples;
}

bool RegisterAdaptiveSolvers() {
  auto& registry = SolverRegistry::Global();
  // Any well-formed "adaptive:<b1>+<b2>+..." name resolves on demand.
  (void)registry.RegisterPrefix("adaptive:", MakeAdaptiveSolver);
  // Eagerly register the canonical selector so it shows up in
  // RegisteredNames() (and is covered by the every-registered-backend
  // tests). AlreadyExists on re-entry is expected and harmless.
  const char* kDefault = "adaptive:simulated_annealing+tabu_search";
  (void)registry.Register(kDefault, [kDefault] {
    Result<std::unique_ptr<QuboSolver>> solver = MakeAdaptiveSolver(kDefault);
    QDM_CHECK(solver.ok()) << "default adaptive backend '" << kDefault
                           << "' failed to build: " << solver.status();
    return std::move(solver).value();
  });
  return true;
}

namespace {
[[maybe_unused]] const bool kAdaptiveSolversRegistered =
    RegisterAdaptiveSolvers();
}  // namespace

}  // namespace anneal
}  // namespace qdm
