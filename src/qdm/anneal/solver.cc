#include "qdm/anneal/solver.h"

#include <algorithm>
#include <optional>
#include <utility>

#include "qdm/anneal/exact_solver.h"
#include "qdm/anneal/parallel_tempering.h"
#include "qdm/anneal/simulated_annealing.h"
#include "qdm/anneal/tabu_search.h"
#include "qdm/common/strings.h"
#include "qdm/common/thread_pool.h"

namespace qdm {
namespace anneal {

Status AnnotateBatchInstanceError(const Status& status, size_t index,
                                  size_t batch_size) {
  if (batch_size <= 1) return status;
  return Status(status.code(), StrFormat("batch instance %zu: %s", index,
                                         status.message().c_str()));
}

Result<std::vector<Sample>> BestOfEach(const std::vector<SampleSet>& sets,
                                       const std::string& solver_name) {
  std::vector<Sample> best;
  best.reserve(sets.size());
  for (size_t i = 0; i < sets.size(); ++i) {
    if (sets[i].empty()) {
      return AnnotateBatchInstanceError(
          Status::Internal(StrFormat("solver '%s' returned an empty sample "
                                     "set",
                                     solver_name.c_str())),
          i, sets.size());
    }
    best.push_back(sets[i].best());
  }
  return best;
}

SolverOptions DeriveBatchOptions(const SolverOptions& options, size_t index) {
  SolverOptions derived = options;
  derived.rng = nullptr;
  derived.seed = options.seed + static_cast<uint64_t>(index);
  return derived;
}

Result<std::vector<SampleSet>> QuboSolver::SolveBatch(
    const std::vector<Qubo>& qubos, const SolverOptions& options) {
  std::vector<SampleSet> results;
  results.reserve(qubos.size());
  for (size_t i = 0; i < qubos.size(); ++i) {
    Result<SampleSet> result =
        options.rng != nullptr
            ? Solve(qubos[i], options)
            : Solve(qubos[i], DeriveBatchOptions(options, i));
    if (!result.ok()) {
      return AnnotateBatchInstanceError(result.status(), i, qubos.size());
    }
    results.push_back(std::move(result).value());
  }
  return results;
}

Result<std::vector<SampleSet>> QuboSolver::SolveBatchThreaded(
    const std::vector<Qubo>& qubos, const SolverOptions& options,
    int num_threads) {
  // Default: the sequential reference. Only whole-batch backends
  // (SolvesWholeBatch() == true) override this with a parallel schedule.
  (void)num_threads;
  return SolveBatch(qubos, options);
}

Result<std::vector<SampleSet>> SolveBatchParallel(
    const std::string& solver_name, const std::vector<Qubo>& qubos,
    const SolverOptions& options, int num_threads) {
  if (num_threads != 1 && options.rng != nullptr) {
    return Status::InvalidArgument(
        "SolveBatchParallel with num_threads != 1 requires seed-based "
        "randomness (options.rng must be null): a shared Rng cannot be "
        "fanned out deterministically");
  }
  QDM_RETURN_IF_ERROR(ValidateSolverOptions(options));
  if (num_threads <= 0) num_threads = ThreadPool::DefaultNumThreads();
  const size_t n = qubos.size();
  if (num_threads == 1 || n <= 1) {
    QDM_ASSIGN_OR_RETURN(std::unique_ptr<QuboSolver> solver,
                         SolverRegistry::Global().Create(solver_name));
    return solver->SolveBatch(qubos, options);
  }
  // One backend per WORKER, not per instance: construction is no longer
  // assumed trivial — an embedded:* backend builds a topology graph (now
  // amortized by backend_cache.h, but still not free) — so each worker
  // builds one backend up front and reuses it across every instance it
  // drains. That reuse is sound because a backend object is never shared
  // across threads and Solve is required to be a pure function of
  // (qubo, options) on this path; backends with cross-call Solve state opt
  // out via the SolvesWholeBatch() hook below. Building the backends here,
  // before any threads spin up, also surfaces unknown-name errors early.
  const int workers = std::min(num_threads, static_cast<int>(n));
  std::vector<std::unique_ptr<QuboSolver>> backends;
  backends.reserve(workers);
  for (int w = 0; w < workers; ++w) {
    QDM_ASSIGN_OR_RETURN(std::unique_ptr<QuboSolver> backend,
                         SolverRegistry::Global().Create(solver_name));
    backends.push_back(std::move(backend));
  }
  // A backend with cross-instance Solve state (the adaptive:* selector)
  // orchestrates the whole batch itself so its schedule cannot depend on
  // which worker drained which instance.
  if (backends[0]->SolvesWholeBatch()) {
    return backends[0]->SolveBatchThreaded(qubos, options, num_threads);
  }
  // ParallelForWorkers' dynamic index scheduling keeps uneven per-instance
  // costs balanced across workers.
  std::vector<SampleSet> results(n);
  std::vector<Status> statuses(n);
  ThreadPool::ParallelForWorkers(
      num_threads, static_cast<int>(n),
      [&backends, &qubos, &options, &results, &statuses](int worker, int i) {
        Result<SampleSet> result = backends[worker]->Solve(
            qubos[i], DeriveBatchOptions(options, i));
        if (result.ok()) {
          results[i] = std::move(result).value();
        } else {
          statuses[i] = result.status();
        }
      });
  for (size_t i = 0; i < n; ++i) {
    if (!statuses[i].ok()) return AnnotateBatchInstanceError(statuses[i], i, n);
  }
  return results;
}

Rng* ResolveSolverRng(const SolverOptions& options,
                      std::optional<Rng>* storage) {
  if (options.rng != nullptr) return options.rng;
  if (options.seed != 0) {
    storage->emplace(options.seed);
  } else {
    storage->emplace();
  }
  return &storage->value();
}

Status ValidateSolverOptions(const SolverOptions& options) {
  if (options.num_reads <= 0) {
    return Status::InvalidArgument(
        StrFormat("num_reads must be positive, got %d", options.num_reads));
  }
  // The inverse-temperature ladder is auto-scaled when unset (both <= 0);
  // a half-set pair is a misuse the annealing backends would otherwise turn
  // into an abort (simulated_annealing) or NaN betas (parallel_tempering).
  const bool min_set = options.beta_min > 0.0;
  const bool max_set = options.beta_max > 0.0;
  if (options.beta_min < 0.0 || options.beta_max < 0.0) {
    return Status::InvalidArgument(
        StrFormat("beta_min/beta_max must be non-negative, got %g/%g",
                  options.beta_min, options.beta_max));
  }
  if (min_set != max_set) {
    return Status::InvalidArgument(StrFormat(
        "beta_min and beta_max must be set together (got %g/%g); leave both "
        "at 0 for auto-scaling",
        options.beta_min, options.beta_max));
  }
  if (min_set && options.beta_min > options.beta_max) {
    return Status::InvalidArgument(
        StrFormat("beta_min (%g) must not exceed beta_max (%g)",
                  options.beta_min, options.beta_max));
  }
  return Status::Ok();
}

namespace {

class SimulatedAnnealingSolver : public QuboSolver {
 public:
  Result<SampleSet> Solve(const Qubo& qubo,
                          const SolverOptions& options) override {
    QDM_RETURN_IF_ERROR(ValidateSolverOptions(options));
    AnnealSchedule schedule;
    if (options.num_sweeps > 0) schedule.num_sweeps = options.num_sweeps;
    schedule.beta_min = options.beta_min;
    schedule.beta_max = options.beta_max;
    SimulatedAnnealer annealer(schedule);
    std::optional<Rng> local;
    return annealer.SampleQubo(qubo, options.num_reads,
                               ResolveSolverRng(options, &local));
  }
  std::string name() const override { return "simulated_annealing"; }
};

class ParallelTemperingSolver : public QuboSolver {
 public:
  Result<SampleSet> Solve(const Qubo& qubo,
                          const SolverOptions& options) override {
    QDM_RETURN_IF_ERROR(ValidateSolverOptions(options));
    ParallelTempering::Options pt;
    if (options.num_replicas > 0) pt.num_replicas = options.num_replicas;
    if (options.num_sweeps > 0) pt.num_sweeps = options.num_sweeps;
    if (options.swap_interval > 0) pt.swap_interval = options.swap_interval;
    pt.beta_min = options.beta_min;
    pt.beta_max = options.beta_max;
    ParallelTempering sampler(pt);
    std::optional<Rng> local;
    return sampler.SampleQubo(qubo, options.num_reads,
                              ResolveSolverRng(options, &local));
  }
  std::string name() const override { return "parallel_tempering"; }
};

class TabuSearchSolver : public QuboSolver {
 public:
  Result<SampleSet> Solve(const Qubo& qubo,
                          const SolverOptions& options) override {
    QDM_RETURN_IF_ERROR(ValidateSolverOptions(options));
    TabuSearch::Options tabu;
    if (options.max_iterations > 0) {
      tabu.max_iterations = options.max_iterations;
    }
    if (options.tenure > 0) tabu.tenure = options.tenure;
    TabuSearch sampler(tabu);
    std::optional<Rng> local;
    return sampler.SampleQubo(qubo, options.num_reads,
                              ResolveSolverRng(options, &local));
  }
  std::string name() const override { return "tabu_search"; }
};

class ExactQuboSolver : public QuboSolver {
 public:
  static constexpr int kMaxVariables = 30;

  Result<SampleSet> Solve(const Qubo& qubo,
                          const SolverOptions& options) override {
    QDM_RETURN_IF_ERROR(ValidateSolverOptions(options));
    if (qubo.num_variables() > kMaxVariables) {
      return Status::InvalidArgument(StrFormat(
          "exact solver enumerates 2^n assignments; %d variables exceed the "
          "%d-variable limit",
          qubo.num_variables(), kMaxVariables));
    }
    ExactSolver solver;
    std::optional<Rng> local;
    return solver.SampleQubo(qubo, options.num_reads,
                             ResolveSolverRng(options, &local));
  }
  std::string name() const override { return "exact"; }
};

/// Presents a QuboSolver as a Sampler (see WrapAsSampler).
class SolverSampler : public Sampler {
 public:
  SolverSampler(std::unique_ptr<QuboSolver> solver, SolverOptions options)
      : solver_(std::move(solver)), options_(options) {}

  SampleSet SampleQubo(const Qubo& qubo, int num_reads, Rng* rng) override {
    SolverOptions options = options_;
    options.num_reads = num_reads;
    options.rng = rng;
    Result<SampleSet> result = solver_->Solve(qubo, options);
    QDM_CHECK(result.ok()) << solver_->name()
                           << " failed inside a Sampler context: "
                           << result.status();
    return std::move(result).value();
  }

  std::string name() const override { return solver_->name(); }

 private:
  std::unique_ptr<QuboSolver> solver_;
  SolverOptions options_;
};

}  // namespace

SolverRegistry& SolverRegistry::Global() {
  static SolverRegistry* registry = new SolverRegistry();
  return *registry;
}

SolverRegistry::SolverRegistry() {
  factories_["simulated_annealing"] = [] {
    return std::make_unique<SimulatedAnnealingSolver>();
  };
  factories_["parallel_tempering"] = [] {
    return std::make_unique<ParallelTemperingSolver>();
  };
  factories_["tabu_search"] = [] {
    return std::make_unique<TabuSearchSolver>();
  };
  factories_["exact"] = [] { return std::make_unique<ExactQuboSolver>(); };
}

Status SolverRegistry::Register(const std::string& name, Factory factory) {
  QDM_CHECK(factory != nullptr) << "null factory for solver " << name;
  std::lock_guard<std::mutex> lock(mutex_);
  if (factories_.count(name) > 0) {
    return Status::AlreadyExists(
        StrFormat("solver '%s' is already registered", name.c_str()));
  }
  factories_[name] = std::move(factory);
  return Status::Ok();
}

Status SolverRegistry::RegisterPrefix(const std::string& prefix,
                                      DynamicFactory factory) {
  QDM_CHECK(factory != nullptr) << "null dynamic factory for " << prefix;
  QDM_CHECK(!prefix.empty());
  std::lock_guard<std::mutex> lock(mutex_);
  if (prefix_factories_.count(prefix) > 0) {
    return Status::AlreadyExists(
        StrFormat("solver prefix '%s' is already registered", prefix.c_str()));
  }
  prefix_factories_[prefix] = std::move(factory);
  return Status::Ok();
}

bool SolverRegistry::Contains(const std::string& name) const {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (factories_.count(name) > 0) return true;
  }
  // Fall back to the prefix resolvers: a name they accept is creatable and
  // therefore "contained". Create() copies the resolver and invokes it
  // outside the lock, so resolvers may re-enter the registry.
  return Create(name).ok();
}

std::vector<std::string> SolverRegistry::RegisteredNames() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::string> names;
  names.reserve(factories_.size());
  for (const auto& [name, factory] : factories_) names.push_back(name);
  return names;
}

Result<std::unique_ptr<QuboSolver>> SolverRegistry::Create(
    const std::string& name) const {
  Factory factory;
  DynamicFactory dynamic;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = factories_.find(name);
    if (it != factories_.end()) {
      factory = it->second;
    } else {
      // Longest matching prefix wins; invoked outside the lock below so the
      // resolver may re-enter the registry (e.g. to validate a base name).
      size_t best_len = 0;
      for (const auto& [prefix, resolver] : prefix_factories_) {
        if (prefix.size() >= best_len && StartsWith(name, prefix)) {
          best_len = prefix.size();
          dynamic = resolver;
        }
      }
    }
  }
  if (factory != nullptr) return factory();
  if (dynamic != nullptr) return dynamic(name);
  return Status::NotFound(StrFormat(
      "no QUBO solver registered under '%s' (registered: %s)", name.c_str(),
      StrJoin(RegisteredNames(), ", ").c_str()));
}

Result<SampleSet> SolveWith(const std::string& solver_name, const Qubo& qubo,
                            const SolverOptions& options) {
  QDM_ASSIGN_OR_RETURN(std::unique_ptr<QuboSolver> solver,
                       SolverRegistry::Global().Create(solver_name));
  return solver->Solve(qubo, options);
}

Result<Sample> SolveForBest(const std::string& solver_name, const Qubo& qubo,
                            const SolverOptions& options) {
  QDM_ASSIGN_OR_RETURN(SampleSet samples,
                       SolveWith(solver_name, qubo, options));
  if (samples.empty()) {
    return Status::Internal(StrFormat(
        "solver '%s' returned an empty sample set", solver_name.c_str()));
  }
  return samples.best();
}

std::unique_ptr<Sampler> WrapAsSampler(std::unique_ptr<QuboSolver> solver,
                                       SolverOptions options) {
  QDM_CHECK(solver != nullptr);
  return std::make_unique<SolverSampler>(std::move(solver), options);
}

}  // namespace anneal
}  // namespace qdm
