#ifndef QDM_ANNEAL_PARALLEL_TEMPERING_H_
#define QDM_ANNEAL_PARALLEL_TEMPERING_H_

#include <string>

#include "qdm/anneal/sampler.h"

namespace qdm {
namespace anneal {

/// Replica-exchange Monte Carlo (parallel tempering). Runs `num_replicas`
/// Metropolis chains at a geometric ladder of temperatures and periodically
/// proposes replica swaps. Stronger than plain SA on rugged QUBO landscapes
/// (frustrated penalties), at higher cost; serves as the "well-tuned
/// classical heuristic" baseline in the solver-quality benches.
class ParallelTempering : public Sampler {
 public:
  struct Options {
    int num_replicas = 8;
    int num_sweeps = 200;
    /// Inverse temperatures ladder endpoints; auto-scaled when <= 0.
    double beta_min = 0.0;
    double beta_max = 0.0;
    /// Attempt replica swaps every this many sweeps.
    int swap_interval = 5;
  };

  ParallelTempering() : options_() {}
  explicit ParallelTempering(Options options) : options_(options) {}

  SampleSet SampleQubo(const Qubo& qubo, int num_reads, Rng* rng) override;
  std::string name() const override { return "parallel_tempering"; }

 private:
  Options options_;
};

}  // namespace anneal
}  // namespace qdm

#endif  // QDM_ANNEAL_PARALLEL_TEMPERING_H_
