#ifndef QDM_ANNEAL_SIMULATED_ANNEALING_H_
#define QDM_ANNEAL_SIMULATED_ANNEALING_H_

#include <string>

#include "qdm/anneal/sampler.h"

namespace qdm {
namespace anneal {

/// Configuration for the Metropolis anneal.
struct AnnealSchedule {
  /// Number of full sweeps (each sweep proposes one flip per variable).
  int num_sweeps = 200;
  /// Inverse temperature at the start / end of the geometric schedule.
  /// When beta_max <= 0 both endpoints are auto-scaled from the problem's
  /// coefficient range (hot start that accepts ~most moves, cold end that
  /// freezes single-coefficient excitations).
  double beta_min = 0.0;
  double beta_max = 0.0;
};

/// Metropolis simulated annealing over QUBO variables. This is the toolkit's
/// stand-in for the D-Wave quantum annealer: the *interface* (QUBO in,
/// low-energy samples out, quality improving with anneal length / num_reads)
/// matches the physical device; the dynamics are classical Metropolis.
class SimulatedAnnealer : public Sampler {
 public:
  explicit SimulatedAnnealer(AnnealSchedule schedule = AnnealSchedule{})
      : schedule_(schedule) {}

  SampleSet SampleQubo(const Qubo& qubo, int num_reads, Rng* rng) override;
  std::string name() const override { return "simulated_annealing"; }

  const AnnealSchedule& schedule() const { return schedule_; }

 private:
  AnnealSchedule schedule_;
};

/// Internal workhorse shared by the annealing-family samplers: a flat
/// adjacency representation of a Qubo with O(deg) flip deltas.
class QuboAdjacency {
 public:
  explicit QuboAdjacency(const Qubo& qubo);

  int num_variables() const { return num_variables_; }
  double Energy(const Assignment& x) const;
  /// Energy delta of flipping x[i].
  double FlipDelta(const Assignment& x, int i) const;

  double max_abs_coefficient() const { return max_abs_coefficient_; }
  /// Smallest nonzero |coefficient|.
  double min_abs_coefficient() const { return min_abs_coefficient_; }

 private:
  struct Edge {
    int neighbor;
    double weight;
  };
  int num_variables_;
  double offset_;
  double max_abs_coefficient_ = 0.0;
  double min_abs_coefficient_ = 0.0;
  std::vector<double> linear_;
  std::vector<std::vector<Edge>> adjacency_;
};

}  // namespace anneal
}  // namespace qdm

#endif  // QDM_ANNEAL_SIMULATED_ANNEALING_H_
