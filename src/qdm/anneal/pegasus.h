#ifndef QDM_ANNEAL_PEGASUS_H_
#define QDM_ANNEAL_PEGASUS_H_

#include <string>
#include <utility>
#include <vector>

#include "qdm/anneal/topology.h"

namespace qdm {
namespace anneal {

/// Pegasus hardware topology P(m), modeling the working graph of D-Wave
/// Advantage-class annealers (Boothby, Bunyk, Raymond & Roy, "Next-
/// Generation Topology of D-Wave Quantum Processors", arXiv:2003.00133).
///
/// Qubits are length-12 segments on a grid. Coordinates (u, w, k, z):
///   u in {0, 1}   orientation (0 = vertical segment, 1 = horizontal),
///   w in [0, m)   perpendicular offset (column of tracks for vertical),
///   k in [0, 12)  track index within the offset,
///   z in [0, m-1) position along the segment's direction.
/// A vertical qubit occupies column x = 12w + k, rows [12z + s_V(k),
/// 12z + s_V(k) + 12); a horizontal qubit occupies row y = 12w + k, columns
/// [12z + s_H(k), 12z + s_H(k) + 12), where the shift s of a track depends
/// only on its group of four (k / 4) — the group structure that makes
/// Pegasus contain three disjoint Chimera C(m-1, m-1, 4) subgraphs.
///
/// Couplers (max degree 15 = 12 internal + 2 external + 1 odd):
///   internal  segments of opposite orientation that geometrically cross,
///   external  collinear segments at consecutive z (head-to-tail),
///   odd       parallel segments in paired tracks (2j, 2j+1) at the same
///             (w, z).
///
/// num_qubits = 24 m (m-1); m >= 2.
class PegasusGraph : public HardwareTopology {
 public:
  explicit PegasusGraph(int m);

  int m() const { return m_; }

  /// Linear id of qubit (u, w, k, z); bounds-checked.
  int Qubit(int u, int w, int k, int z) const;

  std::string name() const override;
  std::string family() const override { return "pegasus"; }
  int num_qubits() const override { return 24 * m_ * (m_ - 1); }
  bool HasEdge(int a, int b) const override;
  std::vector<std::pair<int, int>> Edges() const override;

  /// TRIAD capacity of the embedded Chimera C(m-1, m-1, 4) copy: 4 (m-1).
  int CliqueCapacity() const override { return 4 * (m_ - 1); }
  Result<std::vector<std::vector<int>>> CliqueChains(
      int num_logical) const override;

 private:
  struct Coord {
    int u, w, k, z;
  };
  Coord Decode(int id) const;
  /// Per-track shift s_V / s_H (depends on the track group k / 4).
  static int VerticalShift(int k);
  static int HorizontalShift(int k);

  int m_;
};

}  // namespace anneal
}  // namespace qdm

#endif  // QDM_ANNEAL_PEGASUS_H_
