#ifndef QDM_ANNEAL_EMBEDDED_SOLVER_H_
#define QDM_ANNEAL_EMBEDDED_SOLVER_H_

#include <memory>
#include <string>

#include "qdm/anneal/embedding.h"
#include "qdm/anneal/solver.h"
#include "qdm/anneal/topology.h"

namespace qdm {
namespace anneal {

/// QuboSolver decorator implementing the paper's Sec III-B physical-level
/// pipeline behind a registry name: clique-embed the logical QUBO into a
/// hardware topology, dispatch the physical QUBO — compacted to the chain
/// qubits, so the base backend never sweeps the topology's unused free
/// spins — to the base backend, and unembed the samples with the
/// configured chain-break policy.
///
/// Knobs read (beyond what the base backend reads): options.chain_strength
/// (0.0 = auto-scale, see EmbedQubo) and options.chain_break_policy. All
/// other options pass through to the base backend untouched, so
/// "embedded:simulated_annealing:pegasus:6" honors num_sweeps exactly like
/// "simulated_annealing". Determinism: the embedding is a pure function of
/// (problem size, topology), so seed-derived batch solving through
/// SolveBatchParallel stays bit-identical at any thread count — and a
/// cached embedding plan (backend_cache.h) is bit-identical to a freshly
/// built one for the same reason.
///
/// Construction cost: the topology graph comes from the process-wide
/// backend cache (a shared_ptr lookup after first use), the base backend is
/// built ONCE here and reused across Solve calls, and the clique-embedding
/// plan for each problem size is cached process-wide — so creating and
/// running an embedded:* backend per batch WORKER (see SolveBatchParallel)
/// costs construction only on first touch.
class EmbeddedSolver : public QuboSolver {
 public:
  /// `registry_name` is what name() reports — the full "embedded:..." string
  /// the instance was created under, so it can be re-Created by name.
  /// `base` is the owned base backend (its registry name in `base_name`,
  /// kept for error messages and re-creation).
  EmbeddedSolver(std::string registry_name, std::string base_name,
                 std::unique_ptr<QuboSolver> base,
                 std::shared_ptr<const HardwareTopology> topology);

  Result<SampleSet> Solve(const Qubo& qubo,
                          const SolverOptions& options) override;
  std::string name() const override { return registry_name_; }

  const HardwareTopology& topology() const { return *topology_; }
  const std::string& base_name() const { return base_name_; }

 private:
  std::string registry_name_;
  std::string base_name_;
  std::unique_ptr<QuboSolver> base_;
  std::shared_ptr<const HardwareTopology> topology_;
};

/// Builds an EmbeddedSolver from a registry name of the form
///   "embedded:<base>:<topology-spec>"
/// e.g. "embedded:simulated_annealing:pegasus:6",
/// "embedded:tabu_search:chimera:4x4x4", "embedded:qaoa:chimera:1x1x4".
/// The base must itself resolve in the SolverRegistry (NotFound otherwise;
/// nesting "embedded:embedded:..." is rejected as InvalidArgument), and the
/// topology spec must satisfy the MakeTopology grammar (InvalidArgument
/// otherwise). This is the resolver behind the registry's "embedded:" prefix:
/// SolverRegistry::Create accepts ANY well-formed embedded name, while
/// RegisteredNames() lists only the eagerly-registered default set.
Result<std::unique_ptr<QuboSolver>> MakeEmbeddedSolver(const std::string& name);

/// Registers the default embedded backends (a chimera/pegasus/zephyr matrix
/// over annealing-family bases, visible in RegisteredNames()) and the
/// "embedded:" prefix resolver. Invoked by a static registrar; safe to call
/// again (AlreadyExists is ignored).
bool RegisterEmbeddedSolvers();

}  // namespace anneal
}  // namespace qdm

#endif  // QDM_ANNEAL_EMBEDDED_SOLVER_H_
