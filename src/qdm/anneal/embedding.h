#ifndef QDM_ANNEAL_EMBEDDING_H_
#define QDM_ANNEAL_EMBEDDING_H_

#include <string>
#include <vector>

#include "qdm/anneal/chimera.h"
#include "qdm/anneal/sampler.h"
#include "qdm/common/status.h"

namespace qdm {
namespace anneal {

/// A minor embedding: logical variable i is represented by the chain of
/// physical qubits `chains[i]` (a connected subgraph of the hardware graph).
struct Embedding {
  std::vector<std::vector<int>> chains;

  int num_logical() const { return static_cast<int>(chains.size()); }
  int TotalPhysicalQubits() const;
  int MaxChainLength() const;
};

/// Deterministic clique (K_n) embedding into Chimera, after Choi's TRIAD
/// construction: variable i = shore*block + offset occupies the full column
/// of vertical qubits at (.., block, offset) plus the full row of horizontal
/// qubits at (block, .., offset); the two paths meet (and are chained
/// together) in the diagonal cell. Supports any logical interaction graph
/// because every pair of chains is adjacent. Requires n <= shore * min(M, N).
Result<Embedding> CliqueEmbedding(int num_logical, const ChimeraGraph& graph);

/// Result of pushing a logical QUBO through an embedding: a physical QUBO
/// whose quadratic terms all lie on hardware couplers.
struct EmbeddedQubo {
  Qubo physical;
  Embedding embedding;
  double chain_strength = 0.0;
};

/// Maps `logical` onto hardware. Logical linear biases are spread uniformly
/// over the chain; each logical coupling is placed on one hardware coupler
/// connecting the two chains; chain integrity is enforced by a ferromagnetic
/// coupling of weight `chain_strength` on every intra-chain edge (in Ising
/// space; the returned model is the equivalent QUBO).
/// Fails if some logical coupling has no hardware edge between its chains.
Result<EmbeddedQubo> EmbedQubo(const Qubo& logical, const Embedding& embedding,
                               const ChimeraGraph& graph,
                               double chain_strength);

/// Collapses a physical sample back to logical variables by majority vote
/// within each chain; reports the fraction of broken (non-unanimous) chains
/// in Sample::chain_break_fraction. The returned energy is the LOGICAL
/// energy of the unembedded assignment.
Sample Unembed(const Qubo& logical, const EmbeddedQubo& embedded,
               const Sample& physical_sample);

/// Sampler decorator implementing the full logical->physical->logical loop of
/// Sec III-B: embed, sample on the (simulated) hardware topology, unembed.
class EmbeddedSampler : public Sampler {
 public:
  /// Does not take ownership of `base`; `base` must outlive this.
  EmbeddedSampler(Sampler* base, ChimeraGraph graph, double chain_strength)
      : base_(base), graph_(graph), chain_strength_(chain_strength) {}

  SampleSet SampleQubo(const Qubo& qubo, int num_reads, Rng* rng) override;
  std::string name() const override {
    return "embedded(" + base_->name() + ")";
  }

 private:
  Sampler* base_;
  ChimeraGraph graph_;
  double chain_strength_;
};

}  // namespace anneal
}  // namespace qdm

#endif  // QDM_ANNEAL_EMBEDDING_H_
