#ifndef QDM_ANNEAL_EMBEDDING_H_
#define QDM_ANNEAL_EMBEDDING_H_

#include <memory>
#include <string>
#include <vector>

#include "qdm/anneal/sampler.h"
#include "qdm/anneal/topology.h"
#include "qdm/common/status.h"

namespace qdm {
namespace anneal {

/// A minor embedding: logical variable i is represented by the chain of
/// physical qubits `chains[i]` (a connected subgraph of the hardware graph).
struct Embedding {
  std::vector<std::vector<int>> chains;

  int num_logical() const { return static_cast<int>(chains.size()); }
  int TotalPhysicalQubits() const;
  int MaxChainLength() const;
};

/// How a broken chain (physical qubits of one logical variable disagreeing)
/// is collapsed back to a logical value when unembedding. Follows the
/// zero-means-default convention of SolverOptions: the zero enumerator
/// kMajorityVote is the default policy everywhere.
enum class ChainBreakPolicy {
  /// Chain value = majority of its physical qubits (ties -> 0).
  kMajorityVote = 0,
  /// Majority vote, then greedily re-assign each broken chain (in ascending
  /// variable order) to whichever value lowers the LOGICAL energy given the
  /// other variables — a deterministic single-pass repair.
  kMinimizeEnergy = 1,
  /// Drop samples containing any broken chain. To preserve the "num_reads
  /// requested, some samples returned" contract, when EVERY sample of a set
  /// is broken the policy falls back to majority vote on all of them rather
  /// than returning an empty set.
  kDiscard = 2,
};

/// Stable lower_snake_case label ("majority_vote", ...) for tables/logs.
const char* ToString(ChainBreakPolicy policy);

/// Deterministic clique (K_n) embedding into `topology`, built from the
/// topology's native CliqueChains construction (Choi's TRIAD on Chimera and
/// on the Chimera subgraphs of Pegasus/Zephyr). Supports any logical
/// interaction graph because every pair of chains is adjacent.
/// ResourceExhausted when num_logical exceeds topology.CliqueCapacity().
Result<Embedding> CliqueEmbedding(int num_logical,
                                  const HardwareTopology& topology);

/// Result of pushing a logical QUBO through an embedding: a physical QUBO
/// whose quadratic terms all lie on hardware couplers. `chain_strength` is
/// the RESOLVED ferromagnetic coupling actually applied (never 0).
struct EmbeddedQubo {
  Qubo physical;
  Embedding embedding;
  double chain_strength = 0.0;
};

/// Maps `logical` onto hardware. Logical linear biases are spread uniformly
/// over the chain; each logical coupling is placed on one hardware coupler
/// connecting the two chains; chain integrity is enforced by a ferromagnetic
/// coupling of weight `chain_strength` on every intra-chain edge (in Ising
/// space; the returned model is the equivalent QUBO).
///
/// chain_strength follows the zero-means-default convention of solver.h:
/// 0.0 auto-scales to twice the largest |coefficient| of the logical model
/// in Ising space (falling back to 1.0 for an all-zero model) — strong
/// enough that no single logical term can profitably tear a chain, weak
/// enough not to freeze the annealing landscape. A negative value is
/// InvalidArgument (never an abort). Fails with FailedPrecondition if some
/// logical coupling has no hardware edge between its chains.
Result<EmbeddedQubo> EmbedQubo(const Qubo& logical, const Embedding& embedding,
                               const HardwareTopology& topology,
                               double chain_strength);

/// Collapses a physical sample back to logical variables, resolving broken
/// chains per `policy` (kDiscard is a sample-set-level policy and behaves
/// like kMajorityVote here; use UnembedAll for it). The fraction of broken
/// (non-unanimous) chains is reported in Sample::chain_break_fraction —
/// computed BEFORE any repair, so it measures the physical sample, not the
/// patched one. The returned energy is the LOGICAL energy of the unembedded
/// assignment.
Sample Unembed(const Qubo& logical, const EmbeddedQubo& embedded,
               const Sample& physical_sample,
               ChainBreakPolicy policy = ChainBreakPolicy::kMajorityVote);

/// Unembeds every sample of a physical SampleSet, applying `policy`
/// (including kDiscard's drop-broken-samples semantics and its documented
/// all-broken fallback).
SampleSet UnembedAll(const Qubo& logical, const EmbeddedQubo& embedded,
                     const SampleSet& physical,
                     ChainBreakPolicy policy = ChainBreakPolicy::kMajorityVote);

/// Sampler decorator implementing the full logical->physical->logical loop of
/// Sec III-B against any HardwareTopology: clique-embed, sample on the
/// (simulated) hardware topology, unembed with the configured chain-break
/// policy. Prefer the registry's "embedded:<base>:<topology>" backends (see
/// embedded_solver.h) unless you already hold a Sampler.
class EmbeddedSampler : public Sampler {
 public:
  /// Does not take ownership of `base`; `base` must outlive this.
  /// `chain_strength` 0.0 auto-scales per EmbedQubo.
  EmbeddedSampler(Sampler* base,
                  std::shared_ptr<const HardwareTopology> topology,
                  double chain_strength,
                  ChainBreakPolicy policy = ChainBreakPolicy::kMajorityVote)
      : base_(base),
        topology_(std::move(topology)),
        chain_strength_(chain_strength),
        policy_(policy) {}

  SampleSet SampleQubo(const Qubo& qubo, int num_reads, Rng* rng) override;
  std::string name() const override {
    return "embedded(" + base_->name() + " on " + topology_->name() + ")";
  }

 private:
  Sampler* base_;
  std::shared_ptr<const HardwareTopology> topology_;
  double chain_strength_;
  ChainBreakPolicy policy_;
};

}  // namespace anneal
}  // namespace qdm

#endif  // QDM_ANNEAL_EMBEDDING_H_
