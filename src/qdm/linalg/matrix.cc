#include "qdm/linalg/matrix.h"

#include <cmath>

#include "qdm/common/check.h"
#include "qdm/common/strings.h"

namespace qdm {
namespace linalg {

Matrix::Matrix(std::initializer_list<std::initializer_list<Complex>> rows) {
  rows_ = rows.size();
  cols_ = rows_ == 0 ? 0 : rows.begin()->size();
  data_.reserve(rows_ * cols_);
  for (const auto& row : rows) {
    QDM_CHECK_EQ(row.size(), cols_) << "ragged initializer for Matrix";
    for (const Complex& v : row) data_.push_back(v);
  }
}

Matrix Matrix::Identity(size_t n) {
  Matrix m(n, n);
  for (size_t i = 0; i < n; ++i) m(i, i) = Complex(1, 0);
  return m;
}

Matrix Matrix::operator+(const Matrix& other) const {
  QDM_CHECK(rows_ == other.rows_ && cols_ == other.cols_);
  Matrix out(rows_, cols_);
  for (size_t i = 0; i < data_.size(); ++i) {
    out.data_[i] = data_[i] + other.data_[i];
  }
  return out;
}

Matrix Matrix::operator-(const Matrix& other) const {
  QDM_CHECK(rows_ == other.rows_ && cols_ == other.cols_);
  Matrix out(rows_, cols_);
  for (size_t i = 0; i < data_.size(); ++i) {
    out.data_[i] = data_[i] - other.data_[i];
  }
  return out;
}

Matrix Matrix::operator*(const Matrix& other) const {
  QDM_CHECK_EQ(cols_, other.rows_) << "matrix shape mismatch in multiply";
  Matrix out(rows_, other.cols_);
  for (size_t i = 0; i < rows_; ++i) {
    for (size_t k = 0; k < cols_; ++k) {
      Complex aik = (*this)(i, k);
      if (aik == Complex(0, 0)) continue;
      for (size_t j = 0; j < other.cols_; ++j) {
        out(i, j) += aik * other(k, j);
      }
    }
  }
  return out;
}

Matrix Matrix::operator*(Complex scalar) const {
  Matrix out(rows_, cols_);
  for (size_t i = 0; i < data_.size(); ++i) out.data_[i] = data_[i] * scalar;
  return out;
}

Matrix Matrix::Adjoint() const {
  Matrix out(cols_, rows_);
  for (size_t i = 0; i < rows_; ++i) {
    for (size_t j = 0; j < cols_; ++j) {
      out(j, i) = std::conj((*this)(i, j));
    }
  }
  return out;
}

Complex Matrix::Trace() const {
  QDM_CHECK_EQ(rows_, cols_);
  Complex t(0, 0);
  for (size_t i = 0; i < rows_; ++i) t += (*this)(i, i);
  return t;
}

bool Matrix::IsUnitary(double tol) const {
  if (rows_ != cols_) return false;
  return ((*this) * Adjoint()).ApproxEqual(Identity(rows_), tol);
}

bool Matrix::IsHermitian(double tol) const {
  if (rows_ != cols_) return false;
  return ApproxEqual(Adjoint(), tol);
}

bool Matrix::ApproxEqual(const Matrix& other, double tol) const {
  if (rows_ != other.rows_ || cols_ != other.cols_) return false;
  for (size_t i = 0; i < data_.size(); ++i) {
    if (std::abs(data_[i] - other.data_[i]) > tol) return false;
  }
  return true;
}

std::vector<Complex> Matrix::Apply(const std::vector<Complex>& v) const {
  QDM_CHECK_EQ(cols_, v.size());
  std::vector<Complex> out(rows_, Complex(0, 0));
  for (size_t i = 0; i < rows_; ++i) {
    for (size_t j = 0; j < cols_; ++j) {
      out[i] += (*this)(i, j) * v[j];
    }
  }
  return out;
}

std::string Matrix::ToString() const {
  std::string out;
  for (size_t i = 0; i < rows_; ++i) {
    out += "[";
    for (size_t j = 0; j < cols_; ++j) {
      const Complex& v = (*this)(i, j);
      out += StrFormat("%+.4f%+.4fi", v.real(), v.imag());
      if (j + 1 < cols_) out += ", ";
    }
    out += "]\n";
  }
  return out;
}

Matrix Kron(const Matrix& a, const Matrix& b) {
  Matrix out(a.rows() * b.rows(), a.cols() * b.cols());
  for (size_t i = 0; i < a.rows(); ++i) {
    for (size_t j = 0; j < a.cols(); ++j) {
      const Complex aij = a(i, j);
      if (aij == Complex(0, 0)) continue;
      for (size_t k = 0; k < b.rows(); ++k) {
        for (size_t l = 0; l < b.cols(); ++l) {
          out(i * b.rows() + k, j * b.cols() + l) = aij * b(k, l);
        }
      }
    }
  }
  return out;
}

}  // namespace linalg
}  // namespace qdm
