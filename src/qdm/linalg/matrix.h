#ifndef QDM_LINALG_MATRIX_H_
#define QDM_LINALG_MATRIX_H_

#include <complex>
#include <initializer_list>
#include <string>
#include <vector>

namespace qdm {

using Complex = std::complex<double>;

namespace linalg {

/// Dense complex matrix (row-major). Sized for quantum-gate work: the toolkit
/// only ever materializes matrices up to 2^k x 2^k for small k (gates, density
/// matrices of few qubits); the state-vector simulator never materializes full
/// operators.
class Matrix {
 public:
  Matrix() : rows_(0), cols_(0) {}
  Matrix(size_t rows, size_t cols)
      : rows_(rows), cols_(cols), data_(rows * cols, Complex(0, 0)) {}

  /// Builds from nested initializer lists:
  ///   Matrix m{{1, 0}, {0, 1}};
  Matrix(std::initializer_list<std::initializer_list<Complex>> rows);

  static Matrix Identity(size_t n);
  static Matrix Zero(size_t rows, size_t cols) { return Matrix(rows, cols); }

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }

  Complex& operator()(size_t r, size_t c) { return data_[r * cols_ + c]; }
  const Complex& operator()(size_t r, size_t c) const {
    return data_[r * cols_ + c];
  }

  Matrix operator+(const Matrix& other) const;
  Matrix operator-(const Matrix& other) const;
  Matrix operator*(const Matrix& other) const;
  Matrix operator*(Complex scalar) const;

  /// Conjugate transpose.
  Matrix Adjoint() const;

  /// Sum of diagonal entries.
  Complex Trace() const;

  /// True if this is square and M * M^dagger == I within `tol`.
  bool IsUnitary(double tol = 1e-9) const;

  /// True if Hermitian within `tol`.
  bool IsHermitian(double tol = 1e-9) const;

  /// Max-abs-difference comparison.
  bool ApproxEqual(const Matrix& other, double tol = 1e-9) const;

  /// Applies this (n x n) to a vector of length n.
  std::vector<Complex> Apply(const std::vector<Complex>& v) const;

  std::string ToString() const;

 private:
  size_t rows_;
  size_t cols_;
  std::vector<Complex> data_;
};

/// Kronecker (tensor) product a (x) b.
Matrix Kron(const Matrix& a, const Matrix& b);

}  // namespace linalg
}  // namespace qdm

#endif  // QDM_LINALG_MATRIX_H_
