#include "qdm/db/join_graph.h"

#include <cmath>

#include "qdm/common/check.h"
#include "qdm/common/strings.h"

namespace qdm {
namespace db {

int JoinGraph::AddRelation(std::string name, double cardinality) {
  QDM_CHECK_GT(cardinality, 0.0);
  relations_.push_back(RelationInfo{std::move(name), cardinality});
  return static_cast<int>(relations_.size()) - 1;
}

void JoinGraph::AddEdge(int a, int b, double selectivity,
                        std::string left_column, std::string right_column) {
  QDM_CHECK(a >= 0 && a < num_relations());
  QDM_CHECK(b >= 0 && b < num_relations());
  QDM_CHECK_NE(a, b);
  QDM_CHECK(selectivity > 0.0 && selectivity <= 1.0);
  for (const JoinEdge& e : edges_) {
    QDM_CHECK(!((e.a == a && e.b == b) || (e.a == b && e.b == a)))
        << "duplicate edge " << a << "-" << b;
  }
  edges_.push_back(JoinEdge{a, b, selectivity, std::move(left_column),
                            std::move(right_column)});
}

double JoinGraph::Selectivity(int a, int b) const {
  for (const JoinEdge& e : edges_) {
    if ((e.a == a && e.b == b) || (e.a == b && e.b == a)) return e.selectivity;
  }
  return 1.0;
}

double JoinGraph::SubsetCardinality(uint32_t mask) const {
  double card = 1.0;
  for (int i = 0; i < num_relations(); ++i) {
    if (mask & (uint32_t{1} << i)) card *= relations_[i].cardinality;
  }
  for (const JoinEdge& e : edges_) {
    const uint32_t pair = (uint32_t{1} << e.a) | (uint32_t{1} << e.b);
    if ((mask & pair) == pair) card *= e.selectivity;
  }
  return card;
}

bool JoinGraph::IsConnected(uint32_t mask) const {
  if (mask == 0) return false;
  const int start = __builtin_ctz(mask);
  uint32_t visited = uint32_t{1} << start;
  bool grew = true;
  while (grew) {
    grew = false;
    for (const JoinEdge& e : edges_) {
      const uint32_t ba = uint32_t{1} << e.a;
      const uint32_t bb = uint32_t{1} << e.b;
      if ((mask & ba) && (mask & bb)) {
        if ((visited & ba) && !(visited & bb)) {
          visited |= bb;
          grew = true;
        } else if ((visited & bb) && !(visited & ba)) {
          visited |= ba;
          grew = true;
        }
      }
    }
  }
  return visited == mask;
}

std::string JoinGraph::ToString() const {
  std::string out = StrFormat("JoinGraph(%d relations)\n", num_relations());
  for (int i = 0; i < num_relations(); ++i) {
    out += StrFormat("  %s |R|=%.0f\n", relations_[i].name.c_str(),
                     relations_[i].cardinality);
  }
  for (const JoinEdge& e : edges_) {
    out += StrFormat("  %s -- %s sel=%.4g\n", relations_[e.a].name.c_str(),
                     relations_[e.b].name.c_str(), e.selectivity);
  }
  return out;
}

namespace {

double RandomCardinality(Rng* rng) {
  // Log-uniform in [10, 10000].
  return std::floor(std::pow(10.0, rng->Uniform(1.0, 4.0)));
}

/// Selectivity ~ 1/max(card_a, card_b) scaled by a random factor, the
/// standard "key-foreign key-ish" regime from the JO literature.
double RandomSelectivity(const JoinGraph& g, int a, int b, Rng* rng) {
  const double larger = std::max(g.relations()[a].cardinality,
                                 g.relations()[b].cardinality);
  const double sel = rng->Uniform(0.5, 2.0) / larger;
  return std::min(1.0, std::max(1e-7, sel));
}

JoinGraph WithRelations(int n, Rng* rng) {
  JoinGraph g;
  for (int i = 0; i < n; ++i) {
    g.AddRelation(StrFormat("R%d", i), RandomCardinality(rng));
  }
  return g;
}

}  // namespace

JoinGraph JoinGraph::RandomChain(int n, Rng* rng) {
  QDM_CHECK_GE(n, 2);
  JoinGraph g = WithRelations(n, rng);
  for (int i = 0; i + 1 < n; ++i) {
    g.AddEdge(i, i + 1, RandomSelectivity(g, i, i + 1, rng));
  }
  return g;
}

JoinGraph JoinGraph::RandomStar(int n, Rng* rng) {
  QDM_CHECK_GE(n, 2);
  JoinGraph g = WithRelations(n, rng);
  for (int i = 1; i < n; ++i) {
    g.AddEdge(0, i, RandomSelectivity(g, 0, i, rng));
  }
  return g;
}

JoinGraph JoinGraph::RandomCycle(int n, Rng* rng) {
  QDM_CHECK_GE(n, 3);
  JoinGraph g = WithRelations(n, rng);
  for (int i = 0; i < n; ++i) {
    g.AddEdge(i, (i + 1) % n, RandomSelectivity(g, i, (i + 1) % n, rng));
  }
  return g;
}

JoinGraph JoinGraph::RandomClique(int n, Rng* rng) {
  QDM_CHECK_GE(n, 2);
  JoinGraph g = WithRelations(n, rng);
  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < n; ++j) {
      g.AddEdge(i, j, RandomSelectivity(g, i, j, rng));
    }
  }
  return g;
}

const char* QueryShapeToString(QueryShape shape) {
  switch (shape) {
    case QueryShape::kChain: return "chain";
    case QueryShape::kStar: return "star";
    case QueryShape::kCycle: return "cycle";
    case QueryShape::kClique: return "clique";
  }
  return "?";
}

JoinGraph MakeRandomQuery(QueryShape shape, int n, Rng* rng) {
  switch (shape) {
    case QueryShape::kChain: return JoinGraph::RandomChain(n, rng);
    case QueryShape::kStar: return JoinGraph::RandomStar(n, rng);
    case QueryShape::kCycle: return JoinGraph::RandomCycle(n, rng);
    case QueryShape::kClique: return JoinGraph::RandomClique(n, rng);
  }
  QDM_CHECK(false);
  return JoinGraph();
}

}  // namespace db
}  // namespace qdm
