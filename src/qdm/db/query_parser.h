#ifndef QDM_DB_QUERY_PARSER_H_
#define QDM_DB_QUERY_PARSER_H_

#include <string>
#include <vector>

#include "qdm/common/status.h"
#include "qdm/db/catalog.h"
#include "qdm/db/join_graph.h"

namespace qdm {
namespace db {

/// A parsed conjunctive (select-project-join) query:
///   SELECT * FROM R0, R1, R2 WHERE R0.a = R1.b AND R1.c = R2.d
/// The paper frames its complexity discussion (Sec III-A) around exactly
/// this class; it is also the input language of every join-ordering
/// experiment here.
struct ParsedQuery {
  std::vector<std::string> tables;
  struct JoinPredicate {
    std::string left_table;
    std::string left_column;
    std::string right_table;
    std::string right_column;
  };
  std::vector<JoinPredicate> predicates;
};

/// Parses the SELECT * FROM ... [WHERE a.x = b.y AND ...] form. Keywords are
/// case-insensitive; identifiers are [A-Za-z_][A-Za-z0-9_]*.
Result<ParsedQuery> ParseConjunctiveQuery(const std::string& sql);

/// Binds a parsed query against the catalog: cardinalities come from table
/// statistics, join selectivities from the System-R uniform estimate
/// 1 / max(distinct(left column), distinct(right column)), and the physical
/// column names are attached so plans remain executable.
/// Fails on unknown tables/columns or predicates between unlisted tables.
Result<JoinGraph> BuildJoinGraph(const ParsedQuery& query,
                                 const Catalog& catalog);

}  // namespace db
}  // namespace qdm

#endif  // QDM_DB_QUERY_PARSER_H_
