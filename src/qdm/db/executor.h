#ifndef QDM_DB_EXECUTOR_H_
#define QDM_DB_EXECUTOR_H_

#include "qdm/common/status.h"
#include "qdm/db/catalog.h"
#include "qdm/db/join_tree.h"

namespace qdm {
namespace db {

/// Executes a join tree over the physical tables in `catalog`.
///
/// Column naming: every column of relation R is exposed as "R.col" in the
/// output schema. JoinEdges whose relations span the two subtrees are
/// evaluated as equi-join predicates (hash join on the first edge, residual
/// edges as post-join filters); subtrees connected by no edge produce a
/// cross product, exactly as the cost model assumes.
///
/// This is how the optimizer experiments validate plans end-to-end: every
/// join order of the same query must produce the same multiset of rows.
Result<Table> ExecuteJoinTree(const JoinTreeRef& tree, const JoinGraph& graph,
                              const Catalog& catalog);

/// Canonical fingerprint of a table's row multiset (order- and column-order-
/// insensitive given identical schemas). Used to compare plan outputs.
uint64_t TableFingerprint(const Table& table);

}  // namespace db
}  // namespace qdm

#endif  // QDM_DB_EXECUTOR_H_
