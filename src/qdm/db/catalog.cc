#include "qdm/db/catalog.h"

#include <unordered_set>

namespace qdm {
namespace db {

TableStats ComputeStats(const Table& table) {
  TableStats stats;
  stats.row_count = table.num_rows();
  stats.distinct_counts.resize(table.schema().num_columns(), 0);
  for (size_t c = 0; c < table.schema().num_columns(); ++c) {
    std::unordered_set<Value, ValueHasher> distinct;
    for (const Row& row : table.rows()) distinct.insert(row[c]);
    stats.distinct_counts[c] = distinct.size();
  }
  return stats;
}

Status Catalog::AddTable(Table table) {
  const std::string name = table.name();
  if (tables_.count(name)) {
    return Status::AlreadyExists("table " + name + " already registered");
  }
  stats_[name] = ComputeStats(table);
  tables_.emplace(name, std::move(table));
  return Status::Ok();
}

Result<const Table*> Catalog::GetTable(const std::string& name) const {
  auto it = tables_.find(name);
  if (it == tables_.end()) return Status::NotFound("no table named " + name);
  return &it->second;
}

Result<TableStats> Catalog::GetStats(const std::string& name) const {
  auto it = stats_.find(name);
  if (it == stats_.end()) return Status::NotFound("no stats for table " + name);
  return it->second;
}

std::vector<std::string> Catalog::TableNames() const {
  std::vector<std::string> names;
  names.reserve(tables_.size());
  for (const auto& [name, table] : tables_) names.push_back(name);
  return names;
}

}  // namespace db
}  // namespace qdm
