#ifndef QDM_DB_VALUE_H_
#define QDM_DB_VALUE_H_

#include <cstdint>
#include <string>
#include <variant>

namespace qdm {
namespace db {

enum class ValueType {
  kNull,
  kInt64,
  kDouble,
  kString,
};

const char* ValueTypeToString(ValueType type);

/// A single relational cell. Small tagged union; totally ordered within a
/// type (mixed-type comparison orders by type id, as SQLite does).
class Value {
 public:
  Value() : data_(std::monostate{}) {}
  explicit Value(int64_t v) : data_(v) {}
  explicit Value(double v) : data_(v) {}
  explicit Value(std::string v) : data_(std::move(v)) {}
  static Value Null() { return Value(); }

  ValueType type() const;
  bool is_null() const { return type() == ValueType::kNull; }

  int64_t AsInt64() const;
  double AsDouble() const;
  const std::string& AsString() const;

  /// SQL-style rendering ("NULL", "42", "3.14", "'abc'").
  std::string ToString() const;

  size_t Hash() const;

  friend bool operator==(const Value& a, const Value& b) {
    return a.data_ == b.data_;
  }
  friend bool operator<(const Value& a, const Value& b);

 private:
  std::variant<std::monostate, int64_t, double, std::string> data_;
};

struct ValueHasher {
  size_t operator()(const Value& v) const { return v.Hash(); }
};

}  // namespace db
}  // namespace qdm

#endif  // QDM_DB_VALUE_H_
