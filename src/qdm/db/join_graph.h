#ifndef QDM_DB_JOIN_GRAPH_H_
#define QDM_DB_JOIN_GRAPH_H_

#include <cstdint>
#include <string>
#include <vector>

#include "qdm/common/rng.h"

namespace qdm {
namespace db {

/// A relation participating in a join query.
struct RelationInfo {
  std::string name;
  double cardinality = 1.0;
};

/// A join predicate between two relations with its estimated selectivity.
/// `left_column` / `right_column` optionally bind the edge to physical
/// columns so the executor can run the plan.
struct JoinEdge {
  int a = 0;
  int b = 0;
  double selectivity = 1.0;
  std::string left_column;
  std::string right_column;
};

/// The join-ordering search problem: relations + join predicates. Mirrors
/// the standard formulation in Steinbrunn et al. [VLDBJ'97], which is also
/// what the quantum join-ordering papers [23-26] optimize over.
class JoinGraph {
 public:
  JoinGraph() = default;

  /// Adds a relation; returns its id.
  int AddRelation(std::string name, double cardinality);

  /// Adds a join predicate (a != b; at most one edge per pair).
  void AddEdge(int a, int b, double selectivity,
               std::string left_column = "", std::string right_column = "");

  int num_relations() const { return static_cast<int>(relations_.size()); }
  const std::vector<RelationInfo>& relations() const { return relations_; }
  const std::vector<JoinEdge>& edges() const { return edges_; }

  /// Combined selectivity of all predicates between a and b (1.0 if none).
  double Selectivity(int a, int b) const;

  /// Estimated cardinality of joining exactly the relations in `mask`
  /// (bit i = relation i): product of base cardinalities times the
  /// selectivities of all edges internal to the subset. Cross products
  /// contribute factor 1 (no edge).
  double SubsetCardinality(uint32_t mask) const;

  /// True if the relations in `mask` induce a connected subgraph.
  bool IsConnected(uint32_t mask) const;

  std::string ToString() const;

  // -- Standard benchmark topologies (Steinbrunn et al.) ----------------------
  // Cardinalities ~ uniform [10, 10000]; selectivities chosen so that join
  // results neither vanish nor explode, as in the join-ordering literature.

  static JoinGraph RandomChain(int n, Rng* rng);
  static JoinGraph RandomStar(int n, Rng* rng);
  static JoinGraph RandomCycle(int n, Rng* rng);
  static JoinGraph RandomClique(int n, Rng* rng);

 private:
  std::vector<RelationInfo> relations_;
  std::vector<JoinEdge> edges_;
};

/// Topology selector used by workload sweeps.
enum class QueryShape { kChain, kStar, kCycle, kClique };

const char* QueryShapeToString(QueryShape shape);
JoinGraph MakeRandomQuery(QueryShape shape, int n, Rng* rng);

}  // namespace db
}  // namespace qdm

#endif  // QDM_DB_JOIN_GRAPH_H_
