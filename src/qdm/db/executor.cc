#include "qdm/db/executor.h"

#include <algorithm>
#include <unordered_map>

#include "qdm/common/check.h"
#include "qdm/common/strings.h"

namespace qdm {
namespace db {

namespace {

/// Executes a subtree, producing a table with "Relation.column" names.
Result<Table> ExecuteNode(const JoinTreeRef& tree, const JoinGraph& graph,
                          const Catalog& catalog) {
  if (tree->is_leaf()) {
    const RelationInfo& info = graph.relations()[tree->relation];
    QDM_ASSIGN_OR_RETURN(const Table* base, catalog.GetTable(info.name));
    std::vector<Column> columns;
    for (const Column& c : base->schema().columns()) {
      columns.push_back(Column{info.name + "." + c.name, c.type});
    }
    Table renamed(info.name, Schema(std::move(columns)));
    for (const Row& row : base->rows()) renamed.AppendUnchecked(row);
    return renamed;
  }

  QDM_ASSIGN_OR_RETURN(Table left, ExecuteNode(tree->left, graph, catalog));
  QDM_ASSIGN_OR_RETURN(Table right, ExecuteNode(tree->right, graph, catalog));

  // Collect join predicates crossing the cut, as (left index, right index).
  const uint32_t left_mask = TreeMask(tree->left);
  const uint32_t right_mask = TreeMask(tree->right);
  std::vector<std::pair<size_t, size_t>> predicates;
  for (const JoinEdge& e : graph.edges()) {
    int left_rel = -1, right_rel = -1;
    std::string left_col, right_col;
    if ((left_mask >> e.a & 1) && (right_mask >> e.b & 1)) {
      left_rel = e.a;
      right_rel = e.b;
      left_col = e.left_column;
      right_col = e.right_column;
    } else if ((left_mask >> e.b & 1) && (right_mask >> e.a & 1)) {
      left_rel = e.b;
      right_rel = e.a;
      left_col = e.right_column;
      right_col = e.left_column;
    } else {
      continue;
    }
    if (left_col.empty() || right_col.empty()) {
      return Status::FailedPrecondition(StrFormat(
          "edge %d-%d has no physical column binding; cannot execute", e.a,
          e.b));
    }
    const std::string lq =
        graph.relations()[left_rel].name + "." + left_col;
    const std::string rq =
        graph.relations()[right_rel].name + "." + right_col;
    QDM_ASSIGN_OR_RETURN(size_t li, left.schema().ColumnIndex(lq));
    QDM_ASSIGN_OR_RETURN(size_t ri, right.schema().ColumnIndex(rq));
    predicates.emplace_back(li, ri);
  }

  Table output("join", left.schema().Concat(right.schema()));

  if (predicates.empty()) {
    // Cross product.
    for (const Row& lr : left.rows()) {
      for (const Row& rr : right.rows()) {
        Row combined = lr;
        combined.insert(combined.end(), rr.begin(), rr.end());
        output.AppendUnchecked(std::move(combined));
      }
    }
    return output;
  }

  // Hash join on the first predicate; residual predicates filter.
  const auto [build_col, probe_col] = predicates[0];
  std::unordered_multimap<Value, size_t, ValueHasher> hash_table;
  hash_table.reserve(left.num_rows());
  for (size_t i = 0; i < left.num_rows(); ++i) {
    hash_table.emplace(left.row(i)[build_col], i);
  }
  for (const Row& rr : right.rows()) {
    auto [begin, end] = hash_table.equal_range(rr[probe_col]);
    for (auto it = begin; it != end; ++it) {
      const Row& lr = left.row(it->second);
      bool keep = true;
      for (size_t p = 1; p < predicates.size(); ++p) {
        if (!(lr[predicates[p].first] == rr[predicates[p].second])) {
          keep = false;
          break;
        }
      }
      if (!keep) continue;
      Row combined = lr;
      combined.insert(combined.end(), rr.begin(), rr.end());
      output.AppendUnchecked(std::move(combined));
    }
  }
  return output;
}

}  // namespace

Result<Table> ExecuteJoinTree(const JoinTreeRef& tree, const JoinGraph& graph,
                              const Catalog& catalog) {
  QDM_CHECK(tree != nullptr);
  return ExecuteNode(tree, graph, catalog);
}

uint64_t TableFingerprint(const Table& table) {
  // Sort columns by name so plans that emit columns in different orders
  // fingerprint identically; then combine sorted row hashes (multiset hash).
  std::vector<size_t> col_order(table.schema().num_columns());
  for (size_t i = 0; i < col_order.size(); ++i) col_order[i] = i;
  std::sort(col_order.begin(), col_order.end(), [&](size_t a, size_t b) {
    return table.schema().column(a).name < table.schema().column(b).name;
  });

  std::vector<uint64_t> row_hashes;
  row_hashes.reserve(table.num_rows());
  for (const Row& row : table.rows()) {
    uint64_t h = 1469598103934665603ull;
    for (size_t c : col_order) {
      h ^= row[c].Hash();
      h *= 1099511628211ull;
    }
    row_hashes.push_back(h);
  }
  std::sort(row_hashes.begin(), row_hashes.end());
  uint64_t combined = 14695981039346656037ull;
  for (uint64_t h : row_hashes) {
    combined ^= h;
    combined *= 1099511628211ull;
  }
  return combined;
}

}  // namespace db
}  // namespace qdm
