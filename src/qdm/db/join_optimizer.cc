#include "qdm/db/join_optimizer.h"

#include <algorithm>
#include <limits>

#include "qdm/common/check.h"

namespace qdm {
namespace db {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
}  // namespace

PlanResult OptimalBushyPlan(const JoinGraph& graph) {
  const int n = graph.num_relations();
  QDM_CHECK_GE(n, 1);
  QDM_CHECK_LE(n, 20) << "DP over subsets is exponential";
  const uint32_t full = (uint32_t{1} << n) - 1;

  std::vector<double> best_cost(full + 1, kInf);
  std::vector<JoinTreeRef> best_tree(full + 1);
  for (int i = 0; i < n; ++i) {
    best_cost[uint32_t{1} << i] = 0.0;
    best_tree[uint32_t{1} << i] = MakeLeaf(i);
  }

  for (uint32_t mask = 1; mask <= full; ++mask) {
    if ((mask & (mask - 1)) == 0) continue;  // Singletons already seeded.
    const double output_card = graph.SubsetCardinality(mask);
    // Enumerate proper sub-splits; visit each unordered split once by
    // requiring the split to contain the lowest set bit.
    const uint32_t lowest = mask & (-mask);
    for (uint32_t sub = (mask - 1) & mask; sub > 0; sub = (sub - 1) & mask) {
      if (!(sub & lowest)) continue;
      const uint32_t rest = mask ^ sub;
      if (best_cost[sub] == kInf || best_cost[rest] == kInf) continue;
      const double cost = best_cost[sub] + best_cost[rest] + output_card;
      if (cost < best_cost[mask]) {
        best_cost[mask] = cost;
        best_tree[mask] = MakeJoin(best_tree[sub], best_tree[rest]);
      }
    }
  }
  return PlanResult{best_tree[full], best_cost[full]};
}

PlanResult OptimalLeftDeepPlan(const JoinGraph& graph) {
  const int n = graph.num_relations();
  QDM_CHECK_GE(n, 1);
  QDM_CHECK_LE(n, 20);
  const uint32_t full = (uint32_t{1} << n) - 1;

  std::vector<double> best_cost(full + 1, kInf);
  std::vector<JoinTreeRef> best_tree(full + 1);
  for (int i = 0; i < n; ++i) {
    best_cost[uint32_t{1} << i] = 0.0;
    best_tree[uint32_t{1} << i] = MakeLeaf(i);
  }

  for (uint32_t mask = 1; mask <= full; ++mask) {
    if ((mask & (mask - 1)) == 0) continue;
    const double output_card = graph.SubsetCardinality(mask);
    for (int last = 0; last < n; ++last) {
      const uint32_t bit = uint32_t{1} << last;
      if (!(mask & bit)) continue;
      const uint32_t rest = mask ^ bit;
      if (best_cost[rest] == kInf) continue;
      const double cost = best_cost[rest] + output_card;
      if (cost < best_cost[mask]) {
        best_cost[mask] = cost;
        best_tree[mask] = MakeJoin(best_tree[rest], MakeLeaf(last));
      }
    }
  }
  return PlanResult{best_tree[full], best_cost[full]};
}

PlanResult GreedyOperatorOrdering(const JoinGraph& graph) {
  const int n = graph.num_relations();
  QDM_CHECK_GE(n, 1);
  struct Partial {
    JoinTreeRef tree;
    uint32_t mask;
  };
  std::vector<Partial> forest;
  for (int i = 0; i < n; ++i) {
    forest.push_back({MakeLeaf(i), uint32_t{1} << i});
  }
  double total_cost = 0.0;
  while (forest.size() > 1) {
    double best_card = kInf;
    size_t best_a = 0, best_b = 1;
    for (size_t a = 0; a < forest.size(); ++a) {
      for (size_t b = a + 1; b < forest.size(); ++b) {
        const double card =
            graph.SubsetCardinality(forest[a].mask | forest[b].mask);
        if (card < best_card) {
          best_card = card;
          best_a = a;
          best_b = b;
        }
      }
    }
    Partial merged{MakeJoin(forest[best_a].tree, forest[best_b].tree),
                   forest[best_a].mask | forest[best_b].mask};
    total_cost += best_card;
    forest.erase(forest.begin() + best_b);
    forest.erase(forest.begin() + best_a);
    forest.push_back(std::move(merged));
  }
  return PlanResult{forest[0].tree, total_cost};
}

PlanResult RandomLeftDeepPlan(const JoinGraph& graph, Rng* rng) {
  std::vector<int> order(graph.num_relations());
  for (int i = 0; i < graph.num_relations(); ++i) order[i] = i;
  rng->Shuffle(&order);
  return PlanResult{LeftDeepFromPermutation(order),
                    PermutationCost(order, graph)};
}

PlanResult IterativeImprovementPlan(const JoinGraph& graph, int iterations,
                                    Rng* rng) {
  const int n = graph.num_relations();
  QDM_CHECK_GE(n, 2);
  std::vector<int> best_order(n);
  double best_cost = kInf;

  std::vector<int> order(n);
  for (int i = 0; i < n; ++i) order[i] = i;

  int remaining = iterations;
  while (remaining > 0) {
    rng->Shuffle(&order);
    double cost = PermutationCost(order, graph);
    --remaining;
    bool improved = true;
    while (improved && remaining > 0) {
      improved = false;
      for (int a = 0; a < n && remaining > 0; ++a) {
        for (int b = a + 1; b < n && remaining > 0; ++b) {
          std::swap(order[a], order[b]);
          const double candidate = PermutationCost(order, graph);
          --remaining;
          if (candidate < cost) {
            cost = candidate;
            improved = true;
          } else {
            std::swap(order[a], order[b]);
          }
        }
      }
    }
    if (cost < best_cost) {
      best_cost = cost;
      best_order = order;
    }
  }
  return PlanResult{LeftDeepFromPermutation(best_order), best_cost};
}

}  // namespace db
}  // namespace qdm
