#include "qdm/db/query_parser.h"

#include <algorithm>
#include <cctype>

#include "qdm/common/strings.h"

namespace qdm {
namespace db {

namespace {

struct Tokenizer {
  std::string text;
  size_t pos = 0;

  void SkipSpace() {
    while (pos < text.size() &&
           std::isspace(static_cast<unsigned char>(text[pos]))) {
      ++pos;
    }
  }

  bool AtEnd() {
    SkipSpace();
    return pos >= text.size();
  }

  /// Next token: identifier, or one of ". , = *".
  Result<std::string> Next() {
    SkipSpace();
    if (pos >= text.size()) {
      return Status::InvalidArgument("unexpected end of query");
    }
    const char c = text[pos];
    if (c == '.' || c == ',' || c == '=' || c == '*') {
      ++pos;
      return std::string(1, c);
    }
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      size_t start = pos;
      while (pos < text.size() &&
             (std::isalnum(static_cast<unsigned char>(text[pos])) ||
              text[pos] == '_')) {
        ++pos;
      }
      return text.substr(start, pos - start);
    }
    return Status::InvalidArgument(StrFormat("unexpected character '%c'", c));
  }

  /// Consumes the next token and checks it case-insensitively.
  Status Expect(const std::string& expected) {
    QDM_ASSIGN_OR_RETURN(std::string token, Next());
    if (ToLower(token) != ToLower(expected)) {
      return Status::InvalidArgument(
          StrFormat("expected '%s', got '%s'", expected.c_str(),
                    token.c_str()));
    }
    return Status::Ok();
  }
};

bool IsIdentifier(const std::string& token) {
  if (token.empty()) return false;
  if (!std::isalpha(static_cast<unsigned char>(token[0])) && token[0] != '_') {
    return false;
  }
  return true;
}

/// Parses "table.column".
Result<std::pair<std::string, std::string>> ParseColumnRef(Tokenizer* t) {
  QDM_ASSIGN_OR_RETURN(std::string table, t->Next());
  if (!IsIdentifier(table)) {
    return Status::InvalidArgument("expected table name, got '" + table + "'");
  }
  QDM_RETURN_IF_ERROR(t->Expect("."));
  QDM_ASSIGN_OR_RETURN(std::string column, t->Next());
  if (!IsIdentifier(column)) {
    return Status::InvalidArgument("expected column name, got '" + column +
                                   "'");
  }
  return std::make_pair(table, column);
}

}  // namespace

Result<ParsedQuery> ParseConjunctiveQuery(const std::string& sql) {
  Tokenizer t{sql};
  ParsedQuery query;

  QDM_RETURN_IF_ERROR(t.Expect("select"));
  QDM_RETURN_IF_ERROR(t.Expect("*"));
  QDM_RETURN_IF_ERROR(t.Expect("from"));

  // Table list.
  while (true) {
    QDM_ASSIGN_OR_RETURN(std::string table, t.Next());
    if (!IsIdentifier(table)) {
      return Status::InvalidArgument("expected table name, got '" + table +
                                     "'");
    }
    for (const std::string& existing : query.tables) {
      if (existing == table) {
        return Status::InvalidArgument("duplicate table " + table +
                                       " (self-joins need aliases, which this "
                                       "dialect does not support)");
      }
    }
    query.tables.push_back(table);
    if (t.AtEnd()) return query;  // No WHERE clause.
    QDM_ASSIGN_OR_RETURN(std::string sep, t.Next());
    if (sep == ",") continue;
    if (ToLower(sep) == "where") break;
    return Status::InvalidArgument("expected ',' or WHERE, got '" + sep + "'");
  }

  // Predicate list.
  while (true) {
    QDM_ASSIGN_OR_RETURN(auto left, ParseColumnRef(&t));
    QDM_RETURN_IF_ERROR(t.Expect("="));
    QDM_ASSIGN_OR_RETURN(auto right, ParseColumnRef(&t));
    query.predicates.push_back(ParsedQuery::JoinPredicate{
        left.first, left.second, right.first, right.second});
    if (t.AtEnd()) break;
    QDM_RETURN_IF_ERROR(t.Expect("and"));
  }
  return query;
}

Result<JoinGraph> BuildJoinGraph(const ParsedQuery& query,
                                 const Catalog& catalog) {
  if (query.tables.empty()) {
    return Status::InvalidArgument("query lists no tables");
  }
  JoinGraph graph;
  std::vector<TableStats> stats;
  for (const std::string& table : query.tables) {
    QDM_ASSIGN_OR_RETURN(TableStats s, catalog.GetStats(table));
    graph.AddRelation(table, std::max<uint64_t>(1, s.row_count));
    stats.push_back(std::move(s));
  }

  auto relation_id = [&](const std::string& table) {
    for (size_t i = 0; i < query.tables.size(); ++i) {
      if (query.tables[i] == table) return static_cast<int>(i);
    }
    return -1;
  };

  for (const auto& p : query.predicates) {
    const int left = relation_id(p.left_table);
    const int right = relation_id(p.right_table);
    if (left < 0 || right < 0) {
      return Status::InvalidArgument(
          StrFormat("predicate references table %s not in FROM",
                    (left < 0 ? p.left_table : p.right_table).c_str()));
    }
    if (left == right) {
      return Status::InvalidArgument("single-table predicates unsupported");
    }
    QDM_ASSIGN_OR_RETURN(const Table* left_table,
                         catalog.GetTable(p.left_table));
    QDM_ASSIGN_OR_RETURN(const Table* right_table,
                         catalog.GetTable(p.right_table));
    QDM_ASSIGN_OR_RETURN(size_t left_col,
                         left_table->schema().ColumnIndex(p.left_column));
    QDM_ASSIGN_OR_RETURN(size_t right_col,
                         right_table->schema().ColumnIndex(p.right_column));

    // System-R uniform estimate: 1 / max(V(left col), V(right col)).
    const uint64_t distinct = std::max<uint64_t>(
        1, std::max(stats[left].distinct_counts[left_col],
                    stats[right].distinct_counts[right_col]));
    graph.AddEdge(left, right, 1.0 / static_cast<double>(distinct),
                  p.left_column, p.right_column);
  }
  return graph;
}

}  // namespace db
}  // namespace qdm
