#include "qdm/db/join_tree.h"

#include "qdm/common/check.h"

namespace qdm {
namespace db {

JoinTreeRef MakeLeaf(int relation) {
  QDM_CHECK_GE(relation, 0);
  auto node = std::make_shared<JoinTree>();
  node->relation = relation;
  return node;
}

JoinTreeRef MakeJoin(JoinTreeRef left, JoinTreeRef right) {
  QDM_CHECK(left != nullptr && right != nullptr);
  auto node = std::make_shared<JoinTree>();
  node->left = std::move(left);
  node->right = std::move(right);
  return node;
}

uint32_t TreeMask(const JoinTreeRef& tree) {
  QDM_CHECK(tree != nullptr);
  if (tree->is_leaf()) return uint32_t{1} << tree->relation;
  return TreeMask(tree->left) | TreeMask(tree->right);
}

int TreeSize(const JoinTreeRef& tree) {
  QDM_CHECK(tree != nullptr);
  if (tree->is_leaf()) return 1;
  return TreeSize(tree->left) + TreeSize(tree->right);
}

bool IsLeftDeep(const JoinTreeRef& tree) {
  QDM_CHECK(tree != nullptr);
  if (tree->is_leaf()) return true;
  return tree->right->is_leaf() && IsLeftDeep(tree->left);
}

double CoutCost(const JoinTreeRef& tree, const JoinGraph& graph) {
  QDM_CHECK(tree != nullptr);
  if (tree->is_leaf()) return 0.0;
  return graph.SubsetCardinality(TreeMask(tree)) +
         CoutCost(tree->left, graph) + CoutCost(tree->right, graph);
}

JoinTreeRef LeftDeepFromPermutation(const std::vector<int>& order) {
  QDM_CHECK(!order.empty());
  JoinTreeRef tree = MakeLeaf(order[0]);
  for (size_t i = 1; i < order.size(); ++i) {
    tree = MakeJoin(tree, MakeLeaf(order[i]));
  }
  return tree;
}

double PermutationCost(const std::vector<int>& order, const JoinGraph& graph) {
  QDM_CHECK_GE(order.size(), 1u);
  double cost = 0.0;
  uint32_t mask = uint32_t{1} << order[0];
  for (size_t i = 1; i < order.size(); ++i) {
    mask |= uint32_t{1} << order[i];
    cost += graph.SubsetCardinality(mask);
  }
  return cost;
}

std::string TreeToString(const JoinTreeRef& tree, const JoinGraph& graph) {
  QDM_CHECK(tree != nullptr);
  if (tree->is_leaf()) return graph.relations()[tree->relation].name;
  return "(" + TreeToString(tree->left, graph) + " JOIN " +
         TreeToString(tree->right, graph) + ")";
}

}  // namespace db
}  // namespace qdm
