#include "qdm/db/workload.h"

#include <cmath>

#include "qdm/common/check.h"
#include "qdm/common/strings.h"

namespace qdm {
namespace db {

GeneratedWorkload GenerateJoinWorkload(QueryShape shape, int n,
                                       const WorkloadOptions& options,
                                       Rng* rng) {
  QDM_CHECK_GE(n, 2);
  // Start from the logical topology to learn the edge structure, then
  // rebuild it with physically-derived cardinalities and selectivities.
  JoinGraph topology = MakeRandomQuery(shape, n, rng);

  // Row counts, log-uniform.
  std::vector<int> rows(n);
  for (int i = 0; i < n; ++i) {
    const double lo = std::log(static_cast<double>(options.min_rows));
    const double hi = std::log(static_cast<double>(options.max_rows));
    rows[i] = static_cast<int>(std::exp(rng->Uniform(lo, hi)));
  }

  // Column layout: every table gets an "id" column plus one join column per
  // incident edge.
  std::vector<std::vector<Column>> columns(n);
  for (int i = 0; i < n; ++i) {
    columns[i].push_back(Column{"id", ValueType::kInt64});
  }
  struct PhysicalEdge {
    int a, b;
    std::string col_a, col_b;
    int domain;
  };
  std::vector<PhysicalEdge> physical_edges;
  for (const JoinEdge& e : topology.edges()) {
    const int smaller = std::min(rows[e.a], rows[e.b]);
    const double fraction = rng->Uniform(options.min_domain_fraction,
                                         options.max_domain_fraction);
    const int domain = std::max(2, static_cast<int>(smaller * fraction));
    const std::string col_a = StrFormat("j%d_%d", e.a, e.b);
    const std::string col_b = StrFormat("j%d_%d", e.a, e.b);
    columns[e.a].push_back(Column{col_a, ValueType::kInt64});
    columns[e.b].push_back(Column{col_b, ValueType::kInt64});
    physical_edges.push_back(PhysicalEdge{e.a, e.b, col_a, col_b, domain});
  }

  GeneratedWorkload workload;
  for (int i = 0; i < n; ++i) {
    Table table(StrFormat("R%d", i), Schema(columns[i]));
    for (int r = 0; r < rows[i]; ++r) {
      Row row;
      row.push_back(Value(static_cast<int64_t>(r)));
      for (size_t c = 1; c < columns[i].size(); ++c) {
        // Find this column's domain.
        int domain = 2;
        for (const PhysicalEdge& pe : physical_edges) {
          if ((pe.a == i && pe.col_a == columns[i][c].name) ||
              (pe.b == i && pe.col_b == columns[i][c].name)) {
            domain = pe.domain;
            break;
          }
        }
        row.push_back(Value(rng->UniformInt(0, domain - 1)));
      }
      table.AppendUnchecked(std::move(row));
    }
    QDM_CHECK(workload.catalog.AddTable(std::move(table)).ok());
  }

  // Rebuild the join graph with physical cardinalities and estimator
  // selectivities (uniform-independence: sel = 1/domain).
  for (int i = 0; i < n; ++i) {
    workload.graph.AddRelation(StrFormat("R%d", i), rows[i]);
  }
  for (const PhysicalEdge& pe : physical_edges) {
    workload.graph.AddEdge(pe.a, pe.b, 1.0 / pe.domain, pe.col_a, pe.col_b);
  }
  return workload;
}

}  // namespace db
}  // namespace qdm
