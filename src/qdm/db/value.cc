#include "qdm/db/value.h"

#include <functional>

#include "qdm/common/check.h"
#include "qdm/common/strings.h"

namespace qdm {
namespace db {

const char* ValueTypeToString(ValueType type) {
  switch (type) {
    case ValueType::kNull: return "NULL";
    case ValueType::kInt64: return "INT64";
    case ValueType::kDouble: return "DOUBLE";
    case ValueType::kString: return "STRING";
  }
  return "?";
}

ValueType Value::type() const {
  switch (data_.index()) {
    case 0: return ValueType::kNull;
    case 1: return ValueType::kInt64;
    case 2: return ValueType::kDouble;
    default: return ValueType::kString;
  }
}

int64_t Value::AsInt64() const {
  QDM_CHECK(type() == ValueType::kInt64)
      << "Value is " << ValueTypeToString(type());
  return std::get<int64_t>(data_);
}

double Value::AsDouble() const {
  if (type() == ValueType::kInt64) {
    return static_cast<double>(std::get<int64_t>(data_));
  }
  QDM_CHECK(type() == ValueType::kDouble)
      << "Value is " << ValueTypeToString(type());
  return std::get<double>(data_);
}

const std::string& Value::AsString() const {
  QDM_CHECK(type() == ValueType::kString)
      << "Value is " << ValueTypeToString(type());
  return std::get<std::string>(data_);
}

std::string Value::ToString() const {
  switch (type()) {
    case ValueType::kNull: return "NULL";
    case ValueType::kInt64:
      return StrFormat("%lld", static_cast<long long>(AsInt64()));
    case ValueType::kDouble: return StrFormat("%g", std::get<double>(data_));
    case ValueType::kString: return "'" + AsString() + "'";
  }
  return "?";
}

size_t Value::Hash() const {
  switch (type()) {
    case ValueType::kNull: return 0x9e3779b9;
    case ValueType::kInt64:
      return std::hash<int64_t>{}(std::get<int64_t>(data_));
    case ValueType::kDouble:
      return std::hash<double>{}(std::get<double>(data_));
    case ValueType::kString:
      return std::hash<std::string>{}(std::get<std::string>(data_));
  }
  return 0;
}

bool operator<(const Value& a, const Value& b) {
  if (a.data_.index() != b.data_.index()) {
    return a.data_.index() < b.data_.index();
  }
  return a.data_ < b.data_;
}

}  // namespace db
}  // namespace qdm
