#ifndef QDM_DB_JOIN_TREE_H_
#define QDM_DB_JOIN_TREE_H_

#include <memory>
#include <string>
#include <vector>

#include "qdm/db/join_graph.h"

namespace qdm {
namespace db {

/// Immutable binary join tree with structural sharing (DP tables reuse
/// subtrees). Leaves carry a relation id.
struct JoinTree;
using JoinTreeRef = std::shared_ptr<const JoinTree>;

struct JoinTree {
  int relation = -1;  // >= 0 at leaves.
  JoinTreeRef left;
  JoinTreeRef right;

  bool is_leaf() const { return relation >= 0; }
};

JoinTreeRef MakeLeaf(int relation);
JoinTreeRef MakeJoin(JoinTreeRef left, JoinTreeRef right);

/// Bitmask of relations contained in the subtree.
uint32_t TreeMask(const JoinTreeRef& tree);

/// Number of relations (leaves).
int TreeSize(const JoinTreeRef& tree);

/// True if every right child is a leaf (the left-deep space searched by
/// Selinger-style optimizers and by the QUBO encodings of [23, 24]).
bool IsLeftDeep(const JoinTreeRef& tree);

/// C_out cost: the sum of estimated intermediate-result cardinalities over
/// all internal nodes. The standard optimizer objective in the join-ordering
/// literature (and the one the quantum JO papers encode).
double CoutCost(const JoinTreeRef& tree, const JoinGraph& graph);

/// Left-deep plan from a relation order: ((r0 x r1) x r2) x ...
JoinTreeRef LeftDeepFromPermutation(const std::vector<int>& order);

/// C_out of a left-deep permutation without building the tree.
double PermutationCost(const std::vector<int>& order, const JoinGraph& graph);

/// "(((R0 ⋈ R1) ⋈ R2) ⋈ R3)"-style rendering.
std::string TreeToString(const JoinTreeRef& tree, const JoinGraph& graph);

}  // namespace db
}  // namespace qdm

#endif  // QDM_DB_JOIN_TREE_H_
