#ifndef QDM_DB_JOIN_OPTIMIZER_H_
#define QDM_DB_JOIN_OPTIMIZER_H_

#include <vector>

#include "qdm/common/rng.h"
#include "qdm/db/join_tree.h"

namespace qdm {
namespace db {

struct PlanResult {
  JoinTreeRef tree;
  double cost = 0.0;
};

/// Optimal BUSHY plan by dynamic programming over subsets (DPsize/DPsub
/// family, cross products permitted). Exponential in n; intended for the
/// n <= ~14 instances the quantum JO papers evaluate on.
PlanResult OptimalBushyPlan(const JoinGraph& graph);

/// Optimal LEFT-DEEP plan (Selinger-style DP over subsets).
PlanResult OptimalLeftDeepPlan(const JoinGraph& graph);

/// Greedy Operator Ordering: repeatedly joins the pair of partial results
/// with the smallest output cardinality. Fast classical heuristic baseline.
PlanResult GreedyOperatorOrdering(const JoinGraph& graph);

/// Left-deep plan from a uniformly random permutation (the "no optimizer"
/// baseline).
PlanResult RandomLeftDeepPlan(const JoinGraph& graph, Rng* rng);

/// Best of `iterations` random restarts of 2-opt local search over left-deep
/// permutations ("II" from Steinbrunn et al.).
PlanResult IterativeImprovementPlan(const JoinGraph& graph, int iterations,
                                    Rng* rng);

}  // namespace db
}  // namespace qdm

#endif  // QDM_DB_JOIN_OPTIMIZER_H_
