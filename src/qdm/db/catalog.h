#ifndef QDM_DB_CATALOG_H_
#define QDM_DB_CATALOG_H_

#include <map>
#include <string>
#include <vector>

#include "qdm/common/status.h"
#include "qdm/db/table.h"

namespace qdm {
namespace db {

/// Per-table statistics used by the cardinality estimator.
struct TableStats {
  uint64_t row_count = 0;
  /// Number of distinct values per column (same order as the schema).
  std::vector<uint64_t> distinct_counts;
};

/// Computes exact statistics by scanning the table.
TableStats ComputeStats(const Table& table);

/// The database: named tables plus their statistics.
class Catalog {
 public:
  Catalog() = default;

  /// Registers a table and computes its statistics. Fails on duplicates.
  Status AddTable(Table table);

  Result<const Table*> GetTable(const std::string& name) const;
  Result<TableStats> GetStats(const std::string& name) const;

  std::vector<std::string> TableNames() const;
  size_t num_tables() const { return tables_.size(); }

 private:
  std::map<std::string, Table> tables_;
  std::map<std::string, TableStats> stats_;
};

}  // namespace db
}  // namespace qdm

#endif  // QDM_DB_CATALOG_H_
