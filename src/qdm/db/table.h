#ifndef QDM_DB_TABLE_H_
#define QDM_DB_TABLE_H_

#include <string>
#include <vector>

#include "qdm/common/status.h"
#include "qdm/db/value.h"

namespace qdm {
namespace db {

/// A named, typed column.
struct Column {
  std::string name;
  ValueType type = ValueType::kInt64;
};

/// Ordered column list with name lookup.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<Column> columns);

  size_t num_columns() const { return columns_.size(); }
  const Column& column(size_t i) const;
  const std::vector<Column>& columns() const { return columns_; }

  /// Index of the column named `name`, or NotFound.
  Result<size_t> ColumnIndex(const std::string& name) const;

  /// Schema of `this` concatenated with `other` (join output), columns of
  /// `other` renamed with a prefix when they would collide.
  Schema Concat(const Schema& other) const;

  std::string ToString() const;

 private:
  std::vector<Column> columns_;
};

using Row = std::vector<Value>;

/// Row-store table. The substrate for executing join plans end-to-end so the
/// optimizer experiments can validate that every join order produces the same
/// relation.
class Table {
 public:
  Table() = default;
  Table(std::string name, Schema schema)
      : name_(std::move(name)), schema_(std::move(schema)) {}

  const std::string& name() const { return name_; }
  const Schema& schema() const { return schema_; }
  size_t num_rows() const { return rows_.size(); }
  const std::vector<Row>& rows() const { return rows_; }
  const Row& row(size_t i) const;

  /// Validates arity and types (null always allowed) before appending.
  Status Append(Row row);

  /// Unchecked append for generators that construct valid rows by design.
  void AppendUnchecked(Row row) { rows_.push_back(std::move(row)); }

  std::string ToString(size_t max_rows = 10) const;

 private:
  std::string name_;
  Schema schema_;
  std::vector<Row> rows_;
};

}  // namespace db
}  // namespace qdm

#endif  // QDM_DB_TABLE_H_
