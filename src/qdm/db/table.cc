#include "qdm/db/table.h"

#include <set>

#include "qdm/common/check.h"
#include "qdm/common/strings.h"

namespace qdm {
namespace db {

Schema::Schema(std::vector<Column> columns) : columns_(std::move(columns)) {
  std::set<std::string> names;
  for (const Column& c : columns_) {
    QDM_CHECK(names.insert(c.name).second) << "duplicate column " << c.name;
  }
}

const Column& Schema::column(size_t i) const {
  QDM_CHECK_LT(i, columns_.size());
  return columns_[i];
}

Result<size_t> Schema::ColumnIndex(const std::string& name) const {
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (columns_[i].name == name) return i;
  }
  return Status::NotFound("no column named " + name);
}

Schema Schema::Concat(const Schema& other) const {
  std::vector<Column> merged = columns_;
  std::set<std::string> names;
  for (const Column& c : columns_) names.insert(c.name);
  for (const Column& c : other.columns_) {
    Column renamed = c;
    while (names.count(renamed.name)) renamed.name = "r_" + renamed.name;
    names.insert(renamed.name);
    merged.push_back(renamed);
  }
  return Schema(std::move(merged));
}

std::string Schema::ToString() const {
  std::vector<std::string> parts;
  for (const Column& c : columns_) {
    parts.push_back(c.name + ":" + ValueTypeToString(c.type));
  }
  return "(" + StrJoin(parts, ", ") + ")";
}

const Row& Table::row(size_t i) const {
  QDM_CHECK_LT(i, rows_.size());
  return rows_[i];
}

Status Table::Append(Row row) {
  if (row.size() != schema_.num_columns()) {
    return Status::InvalidArgument(
        StrFormat("row has %zu values, schema %s has %zu columns", row.size(),
                  name_.c_str(), schema_.num_columns()));
  }
  for (size_t i = 0; i < row.size(); ++i) {
    if (!row[i].is_null() && row[i].type() != schema_.column(i).type) {
      return Status::InvalidArgument(
          StrFormat("column %s expects %s, got %s",
                    schema_.column(i).name.c_str(),
                    ValueTypeToString(schema_.column(i).type),
                    ValueTypeToString(row[i].type())));
    }
  }
  rows_.push_back(std::move(row));
  return Status::Ok();
}

std::string Table::ToString(size_t max_rows) const {
  std::string out = name_ + " " + schema_.ToString() +
                    StrFormat(" [%zu rows]\n", rows_.size());
  for (size_t i = 0; i < rows_.size() && i < max_rows; ++i) {
    std::vector<std::string> cells;
    for (const Value& v : rows_[i]) cells.push_back(v.ToString());
    out += "  " + StrJoin(cells, ", ") + "\n";
  }
  if (rows_.size() > max_rows) out += "  ...\n";
  return out;
}

}  // namespace db
}  // namespace qdm
