#ifndef QDM_DB_WORKLOAD_H_
#define QDM_DB_WORKLOAD_H_

#include "qdm/common/rng.h"
#include "qdm/db/catalog.h"
#include "qdm/db/join_graph.h"

namespace qdm {
namespace db {

/// A physical database together with the join query (and its statistics-
/// derived selectivity estimates) posed against it.
struct GeneratedWorkload {
  Catalog catalog;
  JoinGraph graph;
};

struct WorkloadOptions {
  /// Rows per table are drawn log-uniformly from [min_rows, max_rows].
  int min_rows = 20;
  int max_rows = 200;
  /// Each join column's domain size relative to the smaller table
  /// (larger domain -> more selective join).
  double min_domain_fraction = 0.5;
  double max_domain_fraction = 2.0;
};

/// Generates tables + join columns realizing the requested query shape.
/// Each JoinEdge is physically bound (both tables get an int64 column drawn
/// from a shared domain of size d) and its selectivity is set to the
/// estimator value 1/d, so estimated and actual join sizes agree in
/// expectation (uniformity holds by construction).
GeneratedWorkload GenerateJoinWorkload(QueryShape shape, int n,
                                       const WorkloadOptions& options,
                                       Rng* rng);

}  // namespace db
}  // namespace qdm

#endif  // QDM_DB_WORKLOAD_H_
