#include "qdm/qopt/bilp.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "qdm/common/check.h"
#include "qdm/common/strings.h"

namespace qdm {
namespace qopt {

double BilpProblem::Objective(const anneal::Assignment& x) const {
  QDM_CHECK_EQ(x.size(), static_cast<size_t>(num_variables));
  double value = 0.0;
  for (int i = 0; i < num_variables; ++i) {
    if (x[i]) value += objective[i];
  }
  return value;
}

bool BilpProblem::IsFeasible(const anneal::Assignment& x) const {
  for (const BilpConstraint& c : constraints) {
    double lhs = 0.0;
    for (int i = 0; i < num_variables; ++i) {
      if (x[i]) lhs += c.coefficients[i];
    }
    switch (c.relation) {
      case BilpConstraint::Relation::kLessEq:
        if (lhs > c.bound + 1e-9) return false;
        break;
      case BilpConstraint::Relation::kEq:
        if (std::abs(lhs - c.bound) > 1e-9) return false;
        break;
      case BilpConstraint::Relation::kGreaterEq:
        if (lhs < c.bound - 1e-9) return false;
        break;
    }
  }
  return true;
}

namespace {

struct BranchState {
  const BilpProblem* problem;
  anneal::Assignment assignment;
  double best_objective = std::numeric_limits<double>::infinity();
  anneal::Assignment best_assignment;
  bool found = false;
  int64_t nodes = 0;
  // Per-constraint running LHS of fixed variables.
  std::vector<double> lhs;
  // Per-constraint, per-depth remaining min/max contribution of free vars.
  std::vector<std::vector<double>> free_min;
  std::vector<std::vector<double>> free_max;
  // Objective lower bound contribution of free vars from each depth.
  std::vector<double> objective_free_min;
};

void Branch(BranchState* state, int depth, double objective_so_far) {
  ++state->nodes;
  const BilpProblem& problem = *state->problem;
  const int n = problem.num_variables;

  // Objective bound: everything already fixed plus the best the free
  // suffix could contribute.
  if (objective_so_far + state->objective_free_min[depth] >=
      state->best_objective - 1e-12) {
    return;
  }
  // Constraint reachability: each row must still be able to satisfy its
  // relation with the free suffix's min/max contributions.
  for (size_t r = 0; r < problem.constraints.size(); ++r) {
    const BilpConstraint& c = problem.constraints[r];
    const double lo = state->lhs[r] + state->free_min[r][depth];
    const double hi = state->lhs[r] + state->free_max[r][depth];
    switch (c.relation) {
      case BilpConstraint::Relation::kLessEq:
        if (lo > c.bound + 1e-9) return;
        break;
      case BilpConstraint::Relation::kEq:
        if (lo > c.bound + 1e-9 || hi < c.bound - 1e-9) return;
        break;
      case BilpConstraint::Relation::kGreaterEq:
        if (hi < c.bound - 1e-9) return;
        break;
    }
  }

  if (depth == n) {
    // All variables fixed; constraints verified by the bound checks above
    // (lo == hi == lhs at full depth).
    if (objective_so_far < state->best_objective) {
      state->best_objective = objective_so_far;
      state->best_assignment = state->assignment;
      state->found = true;
    }
    return;
  }

  // Branch: try the objective-friendlier value first.
  const int preferred = problem.objective[depth] < 0 ? 1 : 0;
  for (int value : {preferred, 1 - preferred}) {
    state->assignment[depth] = value;
    if (value) {
      for (size_t r = 0; r < problem.constraints.size(); ++r) {
        state->lhs[r] += problem.constraints[r].coefficients[depth];
      }
    }
    Branch(state, depth + 1,
           objective_so_far + (value ? problem.objective[depth] : 0.0));
    if (value) {
      for (size_t r = 0; r < problem.constraints.size(); ++r) {
        state->lhs[r] -= problem.constraints[r].coefficients[depth];
      }
    }
  }
  state->assignment[depth] = 0;
}

}  // namespace

BilpSolution SolveBilpBranchAndBound(const BilpProblem& problem) {
  QDM_CHECK_GT(problem.num_variables, 0);
  QDM_CHECK_EQ(problem.objective.size(),
               static_cast<size_t>(problem.num_variables));
  for (const auto& c : problem.constraints) {
    QDM_CHECK_EQ(c.coefficients.size(),
                 static_cast<size_t>(problem.num_variables));
  }

  BranchState state;
  state.problem = &problem;
  state.assignment.assign(problem.num_variables, 0);

  const int n = problem.num_variables;
  state.lhs.assign(problem.constraints.size(), 0.0);
  state.free_min.assign(problem.constraints.size(),
                        std::vector<double>(n + 1, 0.0));
  state.free_max.assign(problem.constraints.size(),
                        std::vector<double>(n + 1, 0.0));
  state.objective_free_min.assign(n + 1, 0.0);
  for (int depth = n - 1; depth >= 0; --depth) {
    state.objective_free_min[depth] =
        state.objective_free_min[depth + 1] +
        std::min(0.0, problem.objective[depth]);
    for (size_t r = 0; r < problem.constraints.size(); ++r) {
      const double a = problem.constraints[r].coefficients[depth];
      state.free_min[r][depth] =
          state.free_min[r][depth + 1] + std::min(0.0, a);
      state.free_max[r][depth] =
          state.free_max[r][depth + 1] + std::max(0.0, a);
    }
  }

  Branch(&state, 0, 0.0);

  BilpSolution solution;
  solution.feasible = state.found;
  solution.nodes_explored = state.nodes;
  if (state.found) {
    solution.assignment = state.best_assignment;
    solution.objective = state.best_objective;
  }
  return solution;
}

namespace {

bool IsIntegral(double v) { return std::abs(v - std::round(v)) < 1e-9; }

}  // namespace

Result<anneal::Qubo> BilpToQubo(const BilpProblem& problem, double penalty) {
  // Count slack bits first.
  struct RowSlack {
    int first_bit = -1;  // Index into the slack region; -1 for equalities.
    int num_bits = 0;
    double sign = 1.0;  // +1: A x + s == b (<=);  -1: A x - s == b (>=).
  };
  std::vector<RowSlack> slacks(problem.constraints.size());
  int slack_bits = 0;
  for (size_t r = 0; r < problem.constraints.size(); ++r) {
    const BilpConstraint& c = problem.constraints[r];
    if (c.relation == BilpConstraint::Relation::kEq) continue;
    // Integer data required for binary slack expansion.
    if (!IsIntegral(c.bound)) {
      return Status::InvalidArgument(
          StrFormat("inequality row %zu needs an integer bound", r));
    }
    double min_lhs = 0.0, max_lhs = 0.0;
    for (double a : c.coefficients) {
      if (!IsIntegral(a)) {
        return Status::InvalidArgument(StrFormat(
            "inequality row %zu needs integer coefficients", r));
      }
      min_lhs += std::min(0.0, a);
      max_lhs += std::max(0.0, a);
    }
    // Slack range: s = b - Ax in [0, b - min_lhs] for <=;
    //              s = Ax - b in [0, max_lhs - b] for >=.
    const double range = c.relation == BilpConstraint::Relation::kLessEq
                             ? c.bound - min_lhs
                             : max_lhs - c.bound;
    if (range < 0) {
      return Status::InvalidArgument(
          StrFormat("inequality row %zu is infeasible for all x", r));
    }
    int bits = 0;
    while ((int64_t{1} << bits) - 1 < static_cast<int64_t>(range + 0.5)) ++bits;
    slacks[r].first_bit = slack_bits;
    slacks[r].num_bits = bits;
    slacks[r].sign =
        c.relation == BilpConstraint::Relation::kLessEq ? 1.0 : -1.0;
    slack_bits += bits;
  }

  if (penalty <= 0.0) {
    double bound = 1.0;
    for (double c : problem.objective) bound += std::abs(c);
    penalty = bound;
  }

  anneal::Qubo qubo(problem.num_variables + slack_bits);

  for (int i = 0; i < problem.num_variables; ++i) {
    qubo.AddLinear(i, problem.objective[i]);
  }

  // Penalty rows: (sum_i a_i x_i + sign * slack - b)^2.
  for (size_t r = 0; r < problem.constraints.size(); ++r) {
    const BilpConstraint& c = problem.constraints[r];
    // Flatten the row into (variable index, coefficient) terms.
    std::vector<std::pair<int, double>> terms;
    for (int i = 0; i < problem.num_variables; ++i) {
      if (c.coefficients[i] != 0.0) terms.emplace_back(i, c.coefficients[i]);
    }
    if (slacks[r].first_bit >= 0) {
      for (int bit = 0; bit < slacks[r].num_bits; ++bit) {
        terms.emplace_back(problem.num_variables + slacks[r].first_bit + bit,
                           slacks[r].sign *
                               static_cast<double>(int64_t{1} << bit));
      }
    }
    const double b = c.bound;
    // Expand penalty * (sum a_i x_i - b)^2 using x^2 == x.
    qubo.AddOffset(penalty * b * b);
    for (const auto& [i, a] : terms) {
      qubo.AddLinear(i, penalty * (a * a - 2 * a * b));
    }
    for (size_t s = 0; s < terms.size(); ++s) {
      for (size_t t = s + 1; t < terms.size(); ++t) {
        qubo.AddQuadratic(terms[s].first, terms[t].first,
                          2 * penalty * terms[s].second * terms[t].second);
      }
    }
  }
  return qubo;
}

BilpProblem SchemaMatchingToBilp(const SchemaMatchingProblem& problem) {
  BilpProblem bilp;
  bilp.num_variables = problem.num_variables();
  bilp.objective.resize(bilp.num_variables);
  for (int i = 0; i < problem.num_source(); ++i) {
    for (int j = 0; j < problem.num_target(); ++j) {
      bilp.objective[problem.VarIndex(i, j)] = -problem.similarity[i][j];
    }
  }
  for (int i = 0; i < problem.num_source(); ++i) {
    BilpConstraint row;
    row.coefficients.assign(bilp.num_variables, 0.0);
    for (int j = 0; j < problem.num_target(); ++j) {
      row.coefficients[problem.VarIndex(i, j)] = 1.0;
    }
    row.relation = BilpConstraint::Relation::kLessEq;
    row.bound = 1.0;
    bilp.constraints.push_back(std::move(row));
  }
  for (int j = 0; j < problem.num_target(); ++j) {
    BilpConstraint col;
    col.coefficients.assign(bilp.num_variables, 0.0);
    for (int i = 0; i < problem.num_source(); ++i) {
      col.coefficients[problem.VarIndex(i, j)] = 1.0;
    }
    col.relation = BilpConstraint::Relation::kLessEq;
    col.bound = 1.0;
    bilp.constraints.push_back(std::move(col));
  }
  return bilp;
}

BilpProblem TxnScheduleToBilp(const TxnScheduleProblem& problem,
                              double slot_weight) {
  BilpProblem bilp;
  bilp.num_variables = problem.num_variables();
  bilp.objective.assign(bilp.num_variables, 0.0);
  for (int t = 0; t < problem.num_txns(); ++t) {
    for (int s = 0; s < problem.num_slots; ++s) {
      bilp.objective[problem.VarIndex(t, s)] = slot_weight * s;
    }
  }
  for (int t = 0; t < problem.num_txns(); ++t) {
    BilpConstraint one_slot;
    one_slot.coefficients.assign(bilp.num_variables, 0.0);
    for (int s = 0; s < problem.num_slots; ++s) {
      one_slot.coefficients[problem.VarIndex(t, s)] = 1.0;
    }
    one_slot.relation = BilpConstraint::Relation::kEq;
    one_slot.bound = 1.0;
    bilp.constraints.push_back(std::move(one_slot));
  }
  for (const auto& [a, b] : problem.ConflictPairs()) {
    for (int s = 0; s < problem.num_slots; ++s) {
      BilpConstraint no_share;
      no_share.coefficients.assign(bilp.num_variables, 0.0);
      no_share.coefficients[problem.VarIndex(a, s)] = 1.0;
      no_share.coefficients[problem.VarIndex(b, s)] = 1.0;
      no_share.relation = BilpConstraint::Relation::kLessEq;
      no_share.bound = 1.0;
      bilp.constraints.push_back(std::move(no_share));
    }
  }
  return bilp;
}

}  // namespace qopt
}  // namespace qdm
