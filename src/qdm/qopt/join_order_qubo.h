#ifndef QDM_QOPT_JOIN_ORDER_QUBO_H_
#define QDM_QOPT_JOIN_ORDER_QUBO_H_

#include <string>
#include <vector>

#include "qdm/anneal/qubo.h"
#include "qdm/anneal/solver.h"
#include "qdm/common/rng.h"
#include "qdm/common/status.h"
#include "qdm/db/join_graph.h"

namespace qdm {
namespace qopt {

/// Left-deep join ordering as a QUBO, following the permutation-matrix
/// encodings of Schonberger et al. [SIGMOD'22, SIGMOD'23] / Trummer & Koch's
/// MILP [SIGMOD'17]:
///
///   Variables x_{r,s} = "relation r is joined at position s" (n^2 binaries).
///   Constraints (penalty): each position holds exactly one relation and
///   each relation occupies exactly one position.
///   Objective (quadratic exactly, no approximation of the *proxy*): the sum
///   over prefixes s >= 1 of the LOG-cardinality of the prefix,
///     sum_s [ sum_r log|R_r| placed(r,<=s) + sum_{(a,b)} log sel_ab
///             placed(a,<=s) placed(b,<=s) ],
///   i.e. minimizing the geometric mean of intermediate sizes instead of
///   C_out's arithmetic sum -- the standard trick that keeps the objective
///   quadratic in x (log of a product is a sum). The proxy-vs-C_out gap is
///   measured explicitly in bench_join_ordering.
class JoinOrderQubo {
 public:
  explicit JoinOrderQubo(const db::JoinGraph& graph, double penalty = 0.0);

  int num_relations() const { return n_; }
  int num_variables() const { return n_ * n_; }
  int VarIndex(int relation, int position) const;

  const anneal::Qubo& qubo() const { return qubo_; }
  double penalty() const { return penalty_; }

  /// Strict decode: returns empty order when the assignment is not a valid
  /// permutation.
  std::vector<int> Decode(const anneal::Assignment& assignment) const;

  /// Repairing decode: always returns a permutation (greedy max-score per
  /// position, ties broken by relation id). Mirrors the "solution repair"
  /// post-processing the hardware papers apply to broken samples.
  std::vector<int> DecodeWithRepair(const anneal::Assignment& assignment) const;

 private:
  int n_;
  double penalty_;
  anneal::Qubo qubo_;
};

/// Join ordering solved end-to-end through the shared qopt::QuboPipeline:
/// encode `graph` (JoinOrderQubo), dispatch to the backend registered under
/// `solver_name`, decode the best sample with repair fallback. This (not
/// direct solver construction) is the supported way for applications to run
/// the Figure-2 pipeline; pass an "embedded:<base>:<topology>" name to run
/// it under hardware-topology constraints (note the n^2 permutation
/// encoding needs a topology whose clique capacity covers it, e.g.
/// pegasus:6 for 4 relations) or a "race:<b1>+<b2>" name to hedge across a
/// solver portfolio.
struct JoinOrderSolution {
  /// Always a full permutation (repairing decode of the best sample).
  std::vector<int> order;
  /// True when the strict (non-repairing) decode already yielded a valid
  /// permutation, i.e. the solver satisfied the encoding's constraints.
  bool strict_feasible = false;
  /// QUBO energy of the best sample.
  double best_energy = 0.0;
};

Result<JoinOrderSolution> SolveJoinOrder(const db::JoinGraph& graph,
                                         const std::string& solver_name,
                                         const anneal::SolverOptions& options,
                                         double penalty = 0.0);

/// The encoding's objective for a concrete order: sum over prefixes of
/// log-cardinality. Used to separate encoding quality from solver quality.
double LogCostProxy(const std::vector<int>& order, const db::JoinGraph& graph);

/// Best order under the log proxy by exhaustive permutation search (small n).
std::vector<int> OptimalOrderUnderProxy(const db::JoinGraph& graph);

}  // namespace qopt
}  // namespace qdm

#endif  // QDM_QOPT_JOIN_ORDER_QUBO_H_
