#ifndef QDM_QOPT_TXN_SCHEDULING_H_
#define QDM_QOPT_TXN_SCHEDULING_H_

#include <set>
#include <string>
#include <vector>

#include "qdm/anneal/qubo.h"
#include "qdm/anneal/solver.h"
#include "qdm/common/rng.h"
#include "qdm/common/status.h"

namespace qdm {
namespace qopt {

/// Transaction scheduling instance, after Bittner & Groppe [IDEAS'20 /
/// OJCC'20]: transactions with known lock sets must be assigned to execution
/// slots ("epochs"); two transactions that lock a common object conflict and
/// block each other under two-phase locking when run in the same slot. The
/// goal is a conflict-free assignment using few slots.
struct TxnScheduleProblem {
  /// lock_sets[t]: object ids transaction t locks (exclusive locks).
  std::vector<std::set<int>> lock_sets;
  int num_slots = 0;

  int num_txns() const { return static_cast<int>(lock_sets.size()); }
  int num_variables() const { return num_txns() * num_slots; }
  int VarIndex(int txn, int slot) const;

  bool Conflict(int txn_a, int txn_b) const;
  std::vector<std::pair<int, int>> ConflictPairs() const;
};

/// Random instance: each transaction locks `locks_per_txn` of `num_objects`
/// objects; `num_slots` defaults to the conflict-graph degree bound +1 so a
/// conflict-free schedule always exists.
TxnScheduleProblem GenerateTxnSchedule(int num_txns, int num_objects,
                                       int locks_per_txn, int num_slots,
                                       Rng* rng);

/// QUBO per [29, 30]: x_{t,s} = "txn t runs in slot s"; exactly-one slot per
/// transaction (penalty); heavy penalty when two conflicting transactions
/// share a slot; small linear weights favor early slots (compress makespan).
anneal::Qubo TxnScheduleToQubo(const TxnScheduleProblem& problem,
                               double conflict_penalty = 0.0,
                               double slot_weight = 1.0);

struct Schedule {
  std::vector<int> slot_of_txn;
  bool feasible = false;                 // Exactly one slot per txn.
  int conflicting_pairs_same_slot = 0;   // 0 == blocking-free under 2PL.
  int makespan = 0;                      // Highest used slot + 1.
};

Schedule DecodeSchedule(const TxnScheduleProblem& problem,
                        const anneal::Assignment& assignment);

/// Transaction scheduling end-to-end through the shared qopt::QuboPipeline:
/// TxnScheduleToQubo in, registry dispatch to `solver_name` (any name,
/// including "embedded:*" and "race:*"), strict DecodeSchedule of the best
/// sample out. A batch of one (sequential, so options.rng is honored).
Result<Schedule> SolveTxnSchedule(const TxnScheduleProblem& problem,
                                  const std::string& solver_name,
                                  const anneal::SolverOptions& options,
                                  double conflict_penalty = 0.0,
                                  double slot_weight = 1.0);

/// Batched scheduling, one QUBO per epoch of incoming transactions (the
/// per-epoch batches of Bittner & Groppe) — QuboPipeline::RunBatch with the
/// scheduling encoder/decoder: encodes every epoch, dispatches the batch
/// through anneal::SolveBatchParallel (fanning out across `num_threads`
/// pool workers when != 1), strict-decodes each best sample.
/// schedules[i] corresponds to epochs[i]. With options.rng == nullptr,
/// epoch i is solved with seed options.seed + i — bit-identical results for
/// every thread count. All-or-nothing on failure.
Result<std::vector<Schedule>> SolveTxnScheduleEpochs(
    const std::vector<TxnScheduleProblem>& epochs,
    const std::string& solver_name, const anneal::SolverOptions& options,
    double conflict_penalty = 0.0, double slot_weight = 1.0,
    int num_threads = 1);

/// Classical baseline: greedy graph coloring (largest-degree-first) of the
/// conflict graph; colors become slots.
Schedule GreedyColoringSchedule(const TxnScheduleProblem& problem);

/// Exhaustive optimal makespan among conflict-free schedules (tiny instances).
Schedule ExhaustiveSchedule(const TxnScheduleProblem& problem);

/// Validates a schedule on a strict-2PL lock-table simulation: transactions
/// of one slot run concurrently, each acquiring its locks in object order,
/// holding them to transaction end. Reports total steps spent blocked and
/// whether a deadlock occurred (possible only for conflicting co-located
/// transactions).
struct BlockingReport {
  int total_wait_steps = 0;
  bool deadlock = false;
  int completed_txns = 0;
};

BlockingReport SimulateTwoPhaseLocking(const TxnScheduleProblem& problem,
                                       const Schedule& schedule);

}  // namespace qopt
}  // namespace qdm

#endif  // QDM_QOPT_TXN_SCHEDULING_H_
