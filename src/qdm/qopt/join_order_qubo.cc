#include "qdm/qopt/join_order_qubo.h"

#include <algorithm>
#include <cmath>

#include "qdm/common/check.h"
#include "qdm/qopt/qubo_pipeline.h"

namespace qdm {
namespace qopt {

namespace {

/// Contribution multiplicity: the term x_{a,s'} (or the pair with larger
/// position s') appears in every prefix sum s in [max(s',1), n-1].
int PrefixMultiplicity(int position, int n) {
  return n - std::max(position, 1);
}

}  // namespace

JoinOrderQubo::JoinOrderQubo(const db::JoinGraph& graph, double penalty)
    : n_(graph.num_relations()),
      penalty_(penalty),
      qubo_(std::max(1, n_ * n_)) {
  QDM_CHECK_GE(n_, 2);

  // Log weights.
  std::vector<double> log_card(n_);
  for (int r = 0; r < n_; ++r) {
    log_card[r] = std::log(graph.relations()[r].cardinality);
  }

  if (penalty_ <= 0.0) {
    // Upper bound on the objective magnitude: every relation in every prefix
    // plus every selectivity in every prefix.
    double bound = 1.0;
    for (int r = 0; r < n_; ++r) bound += std::abs(log_card[r]) * (n_ - 1);
    for (const db::JoinEdge& e : graph.edges()) {
      bound += std::abs(std::log(e.selectivity)) * (n_ - 1);
    }
    penalty_ = bound;
  }

  // Objective, linear part: log|R_r| * (n - max(s,1)) for x_{r,s}.
  for (int r = 0; r < n_; ++r) {
    for (int s = 0; s < n_; ++s) {
      qubo_.AddLinear(VarIndex(r, s), log_card[r] * PrefixMultiplicity(s, n_));
    }
  }
  // Objective, quadratic part: log(sel_ab) * (n - max(s_a, s_b, 1)) for
  // x_{a,s_a} x_{b,s_b}.
  for (const db::JoinEdge& e : graph.edges()) {
    const double w = std::log(e.selectivity);
    if (w == 0.0) continue;
    for (int sa = 0; sa < n_; ++sa) {
      for (int sb = 0; sb < n_; ++sb) {
        qubo_.AddQuadratic(VarIndex(e.a, sa), VarIndex(e.b, sb),
                           w * PrefixMultiplicity(std::max(sa, sb), n_));
      }
    }
  }

  // Permutation constraints.
  for (int s = 0; s < n_; ++s) {
    std::vector<int> position_vars;
    for (int r = 0; r < n_; ++r) position_vars.push_back(VarIndex(r, s));
    qubo_.AddExactlyOnePenalty(position_vars, penalty_);
  }
  for (int r = 0; r < n_; ++r) {
    std::vector<int> relation_vars;
    for (int s = 0; s < n_; ++s) relation_vars.push_back(VarIndex(r, s));
    qubo_.AddExactlyOnePenalty(relation_vars, penalty_);
  }
}

int JoinOrderQubo::VarIndex(int relation, int position) const {
  QDM_CHECK(relation >= 0 && relation < n_);
  QDM_CHECK(position >= 0 && position < n_);
  return relation * n_ + position;
}

std::vector<int> JoinOrderQubo::Decode(
    const anneal::Assignment& assignment) const {
  QDM_CHECK_EQ(assignment.size(), static_cast<size_t>(num_variables()));
  std::vector<int> order(n_, -1);
  std::vector<int> used(n_, 0);
  for (int s = 0; s < n_; ++s) {
    int chosen = -1;
    int count = 0;
    for (int r = 0; r < n_; ++r) {
      if (assignment[VarIndex(r, s)]) {
        chosen = r;
        ++count;
      }
    }
    if (count != 1 || used[chosen]) return {};
    order[s] = chosen;
    used[chosen] = 1;
  }
  return order;
}

std::vector<int> JoinOrderQubo::DecodeWithRepair(
    const anneal::Assignment& assignment) const {
  QDM_CHECK_EQ(assignment.size(), static_cast<size_t>(num_variables()));
  std::vector<int> order(n_, -1);
  std::vector<bool> used(n_, false);
  for (int s = 0; s < n_; ++s) {
    // Prefer a relation actually selected at this position; fall back to the
    // first unused relation.
    int chosen = -1;
    for (int r = 0; r < n_; ++r) {
      if (!used[r] && assignment[VarIndex(r, s)]) {
        chosen = r;
        break;
      }
    }
    if (chosen == -1) {
      for (int r = 0; r < n_; ++r) {
        if (!used[r]) {
          chosen = r;
          break;
        }
      }
    }
    order[s] = chosen;
    used[chosen] = true;
  }
  return order;
}

double LogCostProxy(const std::vector<int>& order, const db::JoinGraph& graph) {
  QDM_CHECK_EQ(order.size(), static_cast<size_t>(graph.num_relations()));
  double total = 0.0;
  uint32_t mask = uint32_t{1} << order[0];
  for (size_t s = 1; s < order.size(); ++s) {
    mask |= uint32_t{1} << order[s];
    total += std::log(graph.SubsetCardinality(mask));
  }
  return total;
}

std::vector<int> OptimalOrderUnderProxy(const db::JoinGraph& graph) {
  const int n = graph.num_relations();
  QDM_CHECK_LE(n, 9) << "exhaustive permutation search";
  std::vector<int> order(n);
  for (int i = 0; i < n; ++i) order[i] = i;
  std::vector<int> best = order;
  double best_cost = LogCostProxy(order, graph);
  while (std::next_permutation(order.begin(), order.end())) {
    const double cost = LogCostProxy(order, graph);
    if (cost < best_cost) {
      best_cost = cost;
      best = order;
    }
  }
  return best;
}

Result<JoinOrderSolution> SolveJoinOrder(const db::JoinGraph& graph,
                                         const std::string& solver_name,
                                         const anneal::SolverOptions& options,
                                         double penalty) {
  // The encoding object is shared by both pipeline stages (it carries the
  // decode layout as well as the qubo), so build it once here and let the
  // single-problem pipeline capture it.
  JoinOrderQubo encoding(graph, penalty);
  return QuboPipeline<db::JoinGraph, JoinOrderSolution>(
             solver_name,
             [&encoding](const db::JoinGraph&) { return encoding.qubo(); },
             [&encoding](const db::JoinGraph&, const anneal::Sample& best) {
               JoinOrderSolution solution;
               // Strict decode doubles as the feasibility check; repair only
               // on failure.
               solution.order = encoding.Decode(best.assignment);
               solution.strict_feasible = !solution.order.empty();
               if (!solution.strict_feasible) {
                 solution.order = encoding.DecodeWithRepair(best.assignment);
               }
               solution.best_energy = best.energy;
               return solution;
             })
      .Run(graph, options);
}

}  // namespace qopt
}  // namespace qdm
