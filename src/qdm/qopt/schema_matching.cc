#include "qdm/qopt/schema_matching.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "qdm/common/check.h"
#include "qdm/common/strings.h"
#include "qdm/qopt/qubo_pipeline.h"

namespace qdm {
namespace qopt {

int SchemaMatchingProblem::VarIndex(int source, int target) const {
  QDM_CHECK(source >= 0 && source < num_source());
  QDM_CHECK(target >= 0 && target < num_target());
  return source * num_target() + target;
}

SchemaMatchingProblem GenerateSchemaMatching(int num_source, int num_target,
                                             double noise, Rng* rng) {
  QDM_CHECK_GE(num_source, 1);
  QDM_CHECK_GE(num_target, 1);
  SchemaMatchingProblem problem;
  for (int i = 0; i < num_source; ++i) {
    problem.source_attributes.push_back(StrFormat("s_attr%d", i));
  }
  for (int j = 0; j < num_target; ++j) {
    problem.target_attributes.push_back(StrFormat("t_attr%d", j));
  }

  // Planted matching: source i <-> target perm[i] for the first min(n,m).
  std::vector<int> perm(num_target);
  for (int j = 0; j < num_target; ++j) perm[j] = j;
  rng->Shuffle(&perm);

  problem.similarity.assign(num_source, std::vector<double>(num_target, 0.0));
  for (int i = 0; i < num_source; ++i) {
    for (int j = 0; j < num_target; ++j) {
      const bool planted = i < num_target && perm[i] == j && i < num_source;
      double sim = planted ? rng->Uniform(0.7, 1.0) : rng->Uniform(0.0, 0.5);
      sim += rng->Gaussian(0.0, noise);
      problem.similarity[i][j] = std::clamp(sim, 0.0, 1.0);
    }
  }
  return problem;
}

anneal::Qubo SchemaMatchingToQubo(const SchemaMatchingProblem& problem,
                                  double penalty) {
  if (penalty <= 0.0) {
    double bound = 1.0;
    for (const auto& row : problem.similarity) {
      for (double s : row) bound += std::abs(s);
    }
    penalty = bound;
  }
  anneal::Qubo qubo(problem.num_variables());
  for (int i = 0; i < problem.num_source(); ++i) {
    for (int j = 0; j < problem.num_target(); ++j) {
      qubo.AddLinear(problem.VarIndex(i, j), -problem.similarity[i][j]);
    }
  }
  for (int i = 0; i < problem.num_source(); ++i) {
    std::vector<int> row;
    for (int j = 0; j < problem.num_target(); ++j) {
      row.push_back(problem.VarIndex(i, j));
    }
    qubo.AddAtMostOnePenalty(row, penalty);
  }
  for (int j = 0; j < problem.num_target(); ++j) {
    std::vector<int> col;
    for (int i = 0; i < problem.num_source(); ++i) {
      col.push_back(problem.VarIndex(i, j));
    }
    qubo.AddAtMostOnePenalty(col, penalty);
  }
  return qubo;
}

Matching DecodeMatching(const SchemaMatchingProblem& problem,
                        const anneal::Assignment& assignment) {
  QDM_CHECK_EQ(assignment.size(), static_cast<size_t>(problem.num_variables()));
  Matching matching;
  std::vector<int> source_used(problem.num_source(), 0);
  std::vector<int> target_used(problem.num_target(), 0);
  for (int i = 0; i < problem.num_source(); ++i) {
    for (int j = 0; j < problem.num_target(); ++j) {
      if (!assignment[problem.VarIndex(i, j)]) continue;
      if (source_used[i] || target_used[j]) {
        matching.feasible = false;
        matching.pairs.clear();
        matching.total_similarity = 0.0;
        return matching;
      }
      source_used[i] = target_used[j] = 1;
      matching.pairs.emplace_back(i, j);
      matching.total_similarity += problem.similarity[i][j];
    }
  }
  matching.feasible = true;
  return matching;
}

Matching HungarianMatching(const SchemaMatchingProblem& problem) {
  // Pad to a square min-cost assignment: cost = max_sim - sim, dummy cells
  // cost max_sim (equivalent to similarity 0, i.e. "leave unmatched").
  const int n = std::max(problem.num_source(), problem.num_target());
  const double kMaxSim = 1.0;
  std::vector<std::vector<double>> cost(n, std::vector<double>(n, kMaxSim));
  for (int i = 0; i < problem.num_source(); ++i) {
    for (int j = 0; j < problem.num_target(); ++j) {
      cost[i][j] = kMaxSim - problem.similarity[i][j];
    }
  }

  // O(n^3) Hungarian algorithm with potentials (1-indexed internals).
  const double kInf = std::numeric_limits<double>::infinity();
  std::vector<double> u(n + 1, 0.0), v(n + 1, 0.0);
  std::vector<int> match_of_col(n + 1, 0);  // p[j]: row matched to column j.
  std::vector<int> way(n + 1, 0);
  for (int i = 1; i <= n; ++i) {
    match_of_col[0] = i;
    int j0 = 0;
    std::vector<double> minv(n + 1, kInf);
    std::vector<char> used(n + 1, false);
    do {
      used[j0] = true;
      const int i0 = match_of_col[j0];
      double delta = kInf;
      int j1 = 0;
      for (int j = 1; j <= n; ++j) {
        if (used[j]) continue;
        const double cur = cost[i0 - 1][j - 1] - u[i0] - v[j];
        if (cur < minv[j]) {
          minv[j] = cur;
          way[j] = j0;
        }
        if (minv[j] < delta) {
          delta = minv[j];
          j1 = j;
        }
      }
      for (int j = 0; j <= n; ++j) {
        if (used[j]) {
          u[match_of_col[j]] += delta;
          v[j] -= delta;
        } else {
          minv[j] -= delta;
        }
      }
      j0 = j1;
    } while (match_of_col[j0] != 0);
    do {
      const int j1 = way[j0];
      match_of_col[j0] = match_of_col[j1];
      j0 = j1;
    } while (j0);
  }

  Matching matching;
  matching.feasible = true;
  for (int j = 1; j <= n; ++j) {
    const int i = match_of_col[j] - 1;
    if (i < problem.num_source() && j - 1 < problem.num_target()) {
      // Only count real (non-dummy) pairs that actually help.
      if (problem.similarity[i][j - 1] > 0.0) {
        matching.pairs.emplace_back(i, j - 1);
        matching.total_similarity += problem.similarity[i][j - 1];
      }
    }
  }
  std::sort(matching.pairs.begin(), matching.pairs.end());
  return matching;
}

Matching GreedyMatching(const SchemaMatchingProblem& problem) {
  struct Cell {
    double sim;
    int i, j;
  };
  std::vector<Cell> cells;
  for (int i = 0; i < problem.num_source(); ++i) {
    for (int j = 0; j < problem.num_target(); ++j) {
      if (problem.similarity[i][j] > 0.0) {
        cells.push_back({problem.similarity[i][j], i, j});
      }
    }
  }
  std::sort(cells.begin(), cells.end(),
            [](const Cell& a, const Cell& b) { return a.sim > b.sim; });
  std::vector<int> source_used(problem.num_source(), 0);
  std::vector<int> target_used(problem.num_target(), 0);
  Matching matching;
  matching.feasible = true;
  for (const Cell& c : cells) {
    if (source_used[c.i] || target_used[c.j]) continue;
    source_used[c.i] = target_used[c.j] = 1;
    matching.pairs.emplace_back(c.i, c.j);
    matching.total_similarity += c.sim;
  }
  std::sort(matching.pairs.begin(), matching.pairs.end());
  return matching;
}

Result<Matching> SolveSchemaMatching(const SchemaMatchingProblem& problem,
                                     const std::string& solver_name,
                                     const anneal::SolverOptions& options,
                                     double penalty) {
  return QuboPipeline<SchemaMatchingProblem, Matching>(
             solver_name,
             [penalty](const SchemaMatchingProblem& p) {
               return SchemaMatchingToQubo(p, penalty);
             },
             [](const SchemaMatchingProblem& p, const anneal::Sample& best) {
               return DecodeMatching(p, best.assignment);
             })
      .Run(problem, options);
}

}  // namespace qopt
}  // namespace qdm
