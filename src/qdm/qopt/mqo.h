#ifndef QDM_QOPT_MQO_H_
#define QDM_QOPT_MQO_H_

#include <string>
#include <vector>

#include "qdm/anneal/qubo.h"
#include "qdm/anneal/solver.h"
#include "qdm/common/rng.h"
#include "qdm/common/status.h"

namespace qdm {
namespace qopt {

/// Multiple Query Optimization instance, after Trummer & Koch [VLDB'16]:
/// choose exactly one plan per query, minimizing total plan cost minus the
/// savings earned when two selected plans share an intermediate result.
struct MqoProblem {
  /// plan_costs[q][p]: execution cost of plan p for query q.
  std::vector<std::vector<double>> plan_costs;

  /// A pairwise saving triggered when both plans are selected.
  struct Sharing {
    int query_a = 0;
    int plan_a = 0;
    int query_b = 0;
    int plan_b = 0;
    double saving = 0.0;
  };
  std::vector<Sharing> savings;

  int num_queries() const { return static_cast<int>(plan_costs.size()); }
  int num_plans(int q) const { return static_cast<int>(plan_costs[q].size()); }
  int num_variables() const;

  /// Flat QUBO variable index of (query, plan).
  int VarIndex(int query, int plan) const;

  /// Total cost of a full plan selection (one entry per query).
  double SelectionCost(const std::vector<int>& plan_choice) const;
};

/// Random instance: costs ~ U[10, 100]; each cross-query plan pair shares an
/// intermediate result with probability `sharing_density`, saving a fraction
/// of the cheaper plan's cost (savings never exceed the plan costs, keeping
/// the objective well-posed, as in [20]).
MqoProblem GenerateMqoProblem(int num_queries, int plans_per_query,
                              double sharing_density, Rng* rng);

/// The logical-level mapping of [20]: binary variable per (query, plan),
/// exactly-one-per-query as a penalty, costs on the linear terms and savings
/// as negative quadratic couplings. With `penalty` <= 0 a safe value is
/// derived from the instance (strictly larger than any achievable objective
/// improvement from breaking a constraint).
anneal::Qubo MqoToQubo(const MqoProblem& problem, double penalty = 0.0);

/// A decoded selection. `feasible` is false when some query has zero or
/// multiple selected plans.
struct MqoSolution {
  std::vector<int> plan_choice;
  double cost = 0.0;
  bool feasible = false;
};

/// Strict decode of a QUBO assignment (no repair).
MqoSolution DecodeMqoSample(const MqoProblem& problem,
                            const anneal::Assignment& assignment);

/// MQO end-to-end through the shared qopt::QuboPipeline (see
/// qubo_pipeline.h): MqoToQubo in, registry dispatch to `solver_name`,
/// strict DecodeMqoSample of the best sample out. Any registry name works —
/// the hardware-embedded "embedded:<base>:<topology>" family (e.g.
/// "embedded:simulated_annealing:pegasus:6" runs the Sec III-B physical
/// level) and the "race:<b1>+<b2>" portfolios included. A batch of one
/// (sequential, so options.rng is honored).
Result<MqoSolution> SolveMqo(const MqoProblem& problem,
                             const std::string& solver_name,
                             const anneal::SolverOptions& options,
                             double penalty = 0.0);

/// Batched MQO, one QUBO per query group — QuboPipeline::RunBatch with the
/// MQO encoder/decoder: encodes every problem, dispatches the whole batch
/// through anneal::SolveBatchParallel (fanning out across `num_threads`
/// pool workers when != 1), and strict-decodes each best sample.
/// solutions[i] corresponds to problems[i]. Inherits the batch determinism
/// guarantee: with options.rng == nullptr, problem i is solved with seed
/// options.seed + i, independent of thread count. All-or-nothing on failure
/// (lowest failing instance reported).
Result<std::vector<MqoSolution>> SolveMqoBatch(
    const std::vector<MqoProblem>& problems, const std::string& solver_name,
    const anneal::SolverOptions& options, double penalty = 0.0,
    int num_threads = 1);

/// Classical baselines.
MqoSolution ExhaustiveMqo(const MqoProblem& problem);  // Exponential.
MqoSolution GreedyMqo(const MqoProblem& problem);      // Marginal-cost greedy.
MqoSolution LocalSearchMqo(const MqoProblem& problem, int iterations, Rng* rng);

}  // namespace qopt
}  // namespace qdm

#endif  // QDM_QOPT_MQO_H_
