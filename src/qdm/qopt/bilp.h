#ifndef QDM_QOPT_BILP_H_
#define QDM_QOPT_BILP_H_

#include <string>
#include <vector>

#include "qdm/anneal/qubo.h"
#include "qdm/common/status.h"
#include "qdm/qopt/schema_matching.h"
#include "qdm/qopt/txn_scheduling.h"

namespace qdm {
namespace qopt {

/// Binary Integer Linear Program: minimize c^T x subject to row constraints
/// A_i x (<= | == | >=) b_i with x in {0,1}^n. This is the intermediate
/// formulation layer of the paper's Table I: Schonberger et al. [23, 24] go
/// DB problem -> MILP -> BILP -> QUBO; this module provides the BILP model,
/// an exact branch-and-bound solver (the classical reference), and the
/// BILP -> QUBO transformation with binary-expanded slack variables.
struct BilpConstraint {
  enum class Relation { kLessEq, kEq, kGreaterEq };

  std::vector<double> coefficients;  // One per variable (dense).
  Relation relation = Relation::kLessEq;
  double bound = 0.0;
};

struct BilpProblem {
  int num_variables = 0;
  std::vector<double> objective;
  std::vector<BilpConstraint> constraints;

  double Objective(const anneal::Assignment& x) const;
  bool IsFeasible(const anneal::Assignment& x) const;
};

struct BilpSolution {
  anneal::Assignment assignment;
  double objective = 0.0;
  bool feasible = false;
  int64_t nodes_explored = 0;
};

/// Exact depth-first branch & bound with objective and per-constraint
/// reachability pruning. Exponential worst case; intended for the instance
/// sizes of the surveyed papers (<= ~30 variables).
BilpSolution SolveBilpBranchAndBound(const BilpProblem& problem);

/// Penalty transformation to QUBO:
///   * equality rows add penalty * (A_i x - b_i)^2;
///   * inequality rows get an integer slack in binary expansion
///     (requires integer coefficients and bounds on those rows), turning
///     A_i x + s = b_i (for <=) into an equality penalty.
/// The QUBO's first `problem.num_variables` variables are the decision
/// variables; slack bits follow. With penalty <= 0 a safe value is derived.
Result<anneal::Qubo> BilpToQubo(const BilpProblem& problem,
                                double penalty = 0.0);

// -- Table-I applications ----------------------------------------------------

/// Schema matching as BILP: maximize total similarity (min negative) under
/// at-most-one row/column constraints.
BilpProblem SchemaMatchingToBilp(const SchemaMatchingProblem& problem);

/// Transaction scheduling as BILP: exactly-one slot per transaction;
/// conflicting transactions must not share a slot (x_as + x_bs <= 1);
/// objective compresses the makespan via per-slot weights.
BilpProblem TxnScheduleToBilp(const TxnScheduleProblem& problem,
                              double slot_weight = 1.0);

}  // namespace qopt
}  // namespace qdm

#endif  // QDM_QOPT_BILP_H_
