#include "qdm/qopt/mqo.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "qdm/common/check.h"
#include "qdm/qopt/qubo_pipeline.h"

namespace qdm {
namespace qopt {

int MqoProblem::num_variables() const {
  int n = 0;
  for (const auto& costs : plan_costs) n += static_cast<int>(costs.size());
  return n;
}

int MqoProblem::VarIndex(int query, int plan) const {
  QDM_CHECK(query >= 0 && query < num_queries());
  QDM_CHECK(plan >= 0 && plan < num_plans(query));
  int base = 0;
  for (int q = 0; q < query; ++q) base += num_plans(q);
  return base + plan;
}

double MqoProblem::SelectionCost(const std::vector<int>& plan_choice) const {
  QDM_CHECK_EQ(plan_choice.size(), static_cast<size_t>(num_queries()));
  double cost = 0.0;
  for (int q = 0; q < num_queries(); ++q) {
    cost += plan_costs[q][plan_choice[q]];
  }
  for (const Sharing& s : savings) {
    if (plan_choice[s.query_a] == s.plan_a &&
        plan_choice[s.query_b] == s.plan_b) {
      cost -= s.saving;
    }
  }
  return cost;
}

MqoProblem GenerateMqoProblem(int num_queries, int plans_per_query,
                              double sharing_density, Rng* rng) {
  QDM_CHECK_GE(num_queries, 1);
  QDM_CHECK_GE(plans_per_query, 1);
  MqoProblem problem;
  problem.plan_costs.resize(num_queries);
  for (auto& costs : problem.plan_costs) {
    costs.resize(plans_per_query);
    for (double& c : costs) c = rng->Uniform(10.0, 100.0);
  }
  for (int qa = 0; qa < num_queries; ++qa) {
    for (int qb = qa + 1; qb < num_queries; ++qb) {
      for (int pa = 0; pa < plans_per_query; ++pa) {
        for (int pb = 0; pb < plans_per_query; ++pb) {
          if (!rng->Bernoulli(sharing_density)) continue;
          const double cheaper = std::min(problem.plan_costs[qa][pa],
                                          problem.plan_costs[qb][pb]);
          problem.savings.push_back(MqoProblem::Sharing{
              qa, pa, qb, pb, rng->Uniform(0.1, 0.4) * cheaper});
        }
      }
    }
  }
  return problem;
}

anneal::Qubo MqoToQubo(const MqoProblem& problem, double penalty) {
  if (penalty <= 0.0) {
    // Tight-but-safe bound. Dropping a query's only plan saves at most the
    // most expensive plan cost; adding a surplus plan gains at most the
    // savings touching any single plan. Keeping the penalty close to this
    // bound (instead of the sum over the whole instance) keeps the energy
    // landscape smooth for annealers -- the practical tuning point [20]
    // discusses at the "logical to physical" boundary.
    double max_cost = 0.0;
    for (const auto& costs : problem.plan_costs) {
      for (double c : costs) max_cost = std::max(max_cost, c);
    }
    std::vector<double> savings_touching(problem.num_variables(), 0.0);
    for (const auto& s : problem.savings) {
      savings_touching[problem.VarIndex(s.query_a, s.plan_a)] += s.saving;
      savings_touching[problem.VarIndex(s.query_b, s.plan_b)] += s.saving;
    }
    double max_touch = 0.0;
    for (double t : savings_touching) max_touch = std::max(max_touch, t);
    penalty = max_cost + max_touch + 1.0;
  }
  anneal::Qubo qubo(problem.num_variables());
  for (int q = 0; q < problem.num_queries(); ++q) {
    std::vector<int> vars;
    for (int p = 0; p < problem.num_plans(q); ++p) {
      const int v = problem.VarIndex(q, p);
      qubo.AddLinear(v, problem.plan_costs[q][p]);
      vars.push_back(v);
    }
    qubo.AddExactlyOnePenalty(vars, penalty);
  }
  for (const auto& s : problem.savings) {
    qubo.AddQuadratic(problem.VarIndex(s.query_a, s.plan_a),
                      problem.VarIndex(s.query_b, s.plan_b), -s.saving);
  }
  return qubo;
}

MqoSolution DecodeMqoSample(const MqoProblem& problem,
                            const anneal::Assignment& assignment) {
  QDM_CHECK_EQ(assignment.size(), static_cast<size_t>(problem.num_variables()));
  MqoSolution solution;
  solution.plan_choice.assign(problem.num_queries(), -1);
  solution.feasible = true;
  for (int q = 0; q < problem.num_queries(); ++q) {
    int selected = -1;
    int count = 0;
    for (int p = 0; p < problem.num_plans(q); ++p) {
      if (assignment[problem.VarIndex(q, p)]) {
        selected = p;
        ++count;
      }
    }
    if (count != 1) {
      solution.feasible = false;
      return solution;
    }
    solution.plan_choice[q] = selected;
  }
  solution.cost = problem.SelectionCost(solution.plan_choice);
  return solution;
}

MqoSolution ExhaustiveMqo(const MqoProblem& problem) {
  const int q = problem.num_queries();
  MqoSolution best;
  best.cost = 1e300;
  std::vector<int> choice(q, 0);
  while (true) {
    const double cost = problem.SelectionCost(choice);
    if (cost < best.cost) {
      best.cost = cost;
      best.plan_choice = choice;
      best.feasible = true;
    }
    // Odometer increment.
    int pos = 0;
    while (pos < q) {
      if (++choice[pos] < problem.num_plans(pos)) break;
      choice[pos] = 0;
      ++pos;
    }
    if (pos == q) break;
  }
  return best;
}

MqoSolution GreedyMqo(const MqoProblem& problem) {
  // Pick per-query cheapest plans first, then greedily switch single plans
  // while it improves the global objective (captures easy sharing wins).
  const int q = problem.num_queries();
  MqoSolution solution;
  solution.plan_choice.resize(q);
  for (int i = 0; i < q; ++i) {
    const auto& costs = problem.plan_costs[i];
    solution.plan_choice[i] = static_cast<int>(
        std::min_element(costs.begin(), costs.end()) - costs.begin());
  }
  bool improved = true;
  double cost = problem.SelectionCost(solution.plan_choice);
  while (improved) {
    improved = false;
    for (int i = 0; i < q; ++i) {
      for (int p = 0; p < problem.num_plans(i); ++p) {
        if (p == solution.plan_choice[i]) continue;
        std::vector<int> candidate = solution.plan_choice;
        candidate[i] = p;
        const double c = problem.SelectionCost(candidate);
        if (c < cost - 1e-12) {
          cost = c;
          solution.plan_choice = candidate;
          improved = true;
        }
      }
    }
  }
  solution.cost = cost;
  solution.feasible = true;
  return solution;
}

MqoSolution LocalSearchMqo(const MqoProblem& problem, int iterations,
                           Rng* rng) {
  const int q = problem.num_queries();
  MqoSolution best;
  best.cost = 1e300;
  std::vector<int> choice(q);
  int budget = iterations;
  while (budget > 0) {
    for (int i = 0; i < q; ++i) {
      choice[i] =
          static_cast<int>(rng->UniformInt(0, problem.num_plans(i) - 1));
    }
    double cost = problem.SelectionCost(choice);
    --budget;
    bool improved = true;
    while (improved && budget > 0) {
      improved = false;
      for (int i = 0; i < q && budget > 0; ++i) {
        for (int p = 0; p < problem.num_plans(i) && budget > 0; ++p) {
          if (p == choice[i]) continue;
          const int old = choice[i];
          choice[i] = p;
          const double c = problem.SelectionCost(choice);
          --budget;
          if (c < cost - 1e-12) {
            cost = c;
            improved = true;
          } else {
            choice[i] = old;
          }
        }
      }
    }
    if (cost < best.cost) {
      best.cost = cost;
      best.plan_choice = choice;
      best.feasible = true;
    }
  }
  return best;
}

namespace {

/// The MQO adapter over the shared pipeline: MqoToQubo in, DecodeMqoSample
/// out. Everything else (registry dispatch, batching, determinism, error
/// framing) is QuboPipeline.
QuboPipeline<MqoProblem, MqoSolution> MqoPipeline(
    const std::string& solver_name, double penalty) {
  return QuboPipeline<MqoProblem, MqoSolution>(
      solver_name,
      [penalty](const MqoProblem& p) { return MqoToQubo(p, penalty); },
      [](const MqoProblem& p, const anneal::Sample& best) {
        return DecodeMqoSample(p, best.assignment);
      });
}

}  // namespace

Result<MqoSolution> SolveMqo(const MqoProblem& problem,
                             const std::string& solver_name,
                             const anneal::SolverOptions& options,
                             double penalty) {
  return MqoPipeline(solver_name, penalty).Run(problem, options);
}

Result<std::vector<MqoSolution>> SolveMqoBatch(
    const std::vector<MqoProblem>& problems, const std::string& solver_name,
    const anneal::SolverOptions& options, double penalty, int num_threads) {
  return MqoPipeline(solver_name, penalty)
      .RunBatch(problems, options, num_threads);
}

}  // namespace qopt
}  // namespace qdm
