#include "qdm/qopt/txn_scheduling.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <utility>

#include "qdm/common/check.h"
#include "qdm/qopt/qubo_pipeline.h"

namespace qdm {
namespace qopt {

int TxnScheduleProblem::VarIndex(int txn, int slot) const {
  QDM_CHECK(txn >= 0 && txn < num_txns());
  QDM_CHECK(slot >= 0 && slot < num_slots);
  return txn * num_slots + slot;
}

bool TxnScheduleProblem::Conflict(int txn_a, int txn_b) const {
  for (int obj : lock_sets[txn_a]) {
    if (lock_sets[txn_b].count(obj)) return true;
  }
  return false;
}

std::vector<std::pair<int, int>> TxnScheduleProblem::ConflictPairs() const {
  std::vector<std::pair<int, int>> pairs;
  for (int a = 0; a < num_txns(); ++a) {
    for (int b = a + 1; b < num_txns(); ++b) {
      if (Conflict(a, b)) pairs.emplace_back(a, b);
    }
  }
  return pairs;
}

TxnScheduleProblem GenerateTxnSchedule(int num_txns, int num_objects,
                                       int locks_per_txn, int num_slots,
                                       Rng* rng) {
  QDM_CHECK_GE(num_txns, 1);
  QDM_CHECK_GE(num_objects, locks_per_txn);
  TxnScheduleProblem problem;
  problem.lock_sets.resize(num_txns);
  for (auto& locks : problem.lock_sets) {
    while (static_cast<int>(locks.size()) < locks_per_txn) {
      locks.insert(static_cast<int>(rng->UniformInt(0, num_objects - 1)));
    }
  }
  if (num_slots <= 0) {
    // Degree bound: max conflicts of any transaction + 1 colors suffice.
    int max_degree = 0;
    for (int t = 0; t < num_txns; ++t) {
      int degree = 0;
      for (int o = 0; o < num_txns; ++o) {
        if (o != t && problem.Conflict(t, o)) ++degree;
      }
      max_degree = std::max(max_degree, degree);
    }
    num_slots = max_degree + 1;
  }
  problem.num_slots = num_slots;
  return problem;
}

anneal::Qubo TxnScheduleToQubo(const TxnScheduleProblem& problem,
                               double conflict_penalty, double slot_weight) {
  QDM_CHECK_GT(problem.num_slots, 0);
  if (conflict_penalty <= 0.0) {
    // Must exceed anything the slot-compression weights can save.
    conflict_penalty =
        slot_weight * problem.num_txns() * problem.num_slots + 1.0;
  }
  const double assignment_penalty =
      conflict_penalty * (problem.ConflictPairs().size() + 1);

  anneal::Qubo qubo(problem.num_variables());
  // Prefer early slots (linear ramp).
  for (int t = 0; t < problem.num_txns(); ++t) {
    for (int s = 0; s < problem.num_slots; ++s) {
      qubo.AddLinear(problem.VarIndex(t, s), slot_weight * s);
    }
  }
  // Exactly one slot per transaction.
  for (int t = 0; t < problem.num_txns(); ++t) {
    std::vector<int> vars;
    for (int s = 0; s < problem.num_slots; ++s) {
      vars.push_back(problem.VarIndex(t, s));
    }
    qubo.AddExactlyOnePenalty(vars, assignment_penalty);
  }
  // Conflicting transactions must not share a slot.
  for (const auto& [a, b] : problem.ConflictPairs()) {
    for (int s = 0; s < problem.num_slots; ++s) {
      qubo.AddQuadratic(problem.VarIndex(a, s), problem.VarIndex(b, s),
                        conflict_penalty);
    }
  }
  return qubo;
}

Schedule DecodeSchedule(const TxnScheduleProblem& problem,
                        const anneal::Assignment& assignment) {
  QDM_CHECK_EQ(assignment.size(), static_cast<size_t>(problem.num_variables()));
  Schedule schedule;
  schedule.slot_of_txn.assign(problem.num_txns(), -1);
  for (int t = 0; t < problem.num_txns(); ++t) {
    int count = 0;
    for (int s = 0; s < problem.num_slots; ++s) {
      if (assignment[problem.VarIndex(t, s)]) {
        schedule.slot_of_txn[t] = s;
        ++count;
      }
    }
    if (count != 1) {
      schedule.feasible = false;
      return schedule;
    }
  }
  schedule.feasible = true;
  for (const auto& [a, b] : problem.ConflictPairs()) {
    if (schedule.slot_of_txn[a] == schedule.slot_of_txn[b]) {
      ++schedule.conflicting_pairs_same_slot;
    }
  }
  for (int slot : schedule.slot_of_txn) {
    schedule.makespan = std::max(schedule.makespan, slot + 1);
  }
  return schedule;
}

Schedule GreedyColoringSchedule(const TxnScheduleProblem& problem) {
  const int n = problem.num_txns();
  std::vector<int> order(n);
  for (int i = 0; i < n; ++i) order[i] = i;
  std::vector<int> degree(n, 0);
  for (const auto& [a, b] : problem.ConflictPairs()) {
    ++degree[a];
    ++degree[b];
  }
  std::sort(order.begin(), order.end(),
            [&](int a, int b) { return degree[a] > degree[b]; });

  Schedule schedule;
  schedule.slot_of_txn.assign(n, -1);
  for (int t : order) {
    std::vector<bool> taken(n + 1, false);
    for (int o = 0; o < n; ++o) {
      if (schedule.slot_of_txn[o] >= 0 && problem.Conflict(t, o)) {
        taken[schedule.slot_of_txn[o]] = true;
      }
    }
    int slot = 0;
    while (taken[slot]) ++slot;
    schedule.slot_of_txn[t] = slot;
  }
  schedule.feasible = true;
  schedule.conflicting_pairs_same_slot = 0;
  for (int slot : schedule.slot_of_txn) {
    schedule.makespan = std::max(schedule.makespan, slot + 1);
  }
  return schedule;
}

Schedule ExhaustiveSchedule(const TxnScheduleProblem& problem) {
  const int n = problem.num_txns();
  const int slots = problem.num_slots;
  QDM_CHECK_LE(n * std::log2(std::max(2, slots)), 24.0)
      << "exhaustive schedule search is exponential";

  Schedule best;
  best.makespan = slots + 1;
  std::vector<int> assign(n, 0);
  while (true) {
    bool conflict_free = true;
    for (const auto& [a, b] : problem.ConflictPairs()) {
      if (assign[a] == assign[b]) {
        conflict_free = false;
        break;
      }
    }
    if (conflict_free) {
      int makespan = 0;
      for (int s : assign) makespan = std::max(makespan, s + 1);
      if (makespan < best.makespan) {
        best.slot_of_txn = assign;
        best.makespan = makespan;
        best.feasible = true;
        best.conflicting_pairs_same_slot = 0;
      }
    }
    int pos = 0;
    while (pos < n) {
      if (++assign[pos] < slots) break;
      assign[pos] = 0;
      ++pos;
    }
    if (pos == n) break;
  }
  return best;
}

BlockingReport SimulateTwoPhaseLocking(const TxnScheduleProblem& problem,
                                       const Schedule& schedule) {
  BlockingReport report;
  QDM_CHECK(schedule.feasible);

  for (int slot = 0; slot < schedule.makespan; ++slot) {
    // Transactions running concurrently in this slot.
    std::vector<int> running;
    for (int t = 0; t < problem.num_txns(); ++t) {
      if (schedule.slot_of_txn[t] == slot) running.push_back(t);
    }
    if (running.empty()) continue;

    // Per-transaction lock acquisition order (sorted object ids: sorted
    // acquisition prevents deadlock, so blocking manifests as waiting).
    std::map<int, int> lock_owner;  // object -> txn holding it.
    struct TxnState {
      std::vector<int> to_acquire;
      size_t next = 0;
      bool done = false;
    };
    std::map<int, TxnState> states;
    for (int t : running) {
      TxnState st;
      st.to_acquire.assign(problem.lock_sets[t].begin(),
                           problem.lock_sets[t].end());
      states[t] = std::move(st);
    }

    int active = static_cast<int>(running.size());
    int stall_guard = 0;
    while (active > 0) {
      bool progress = false;
      for (int t : running) {
        TxnState& st = states[t];
        if (st.done) continue;
        if (st.next == st.to_acquire.size()) {
          // All locks held: commit and release (strict 2PL).
          for (int obj : st.to_acquire) lock_owner.erase(obj);
          st.done = true;
          --active;
          ++report.completed_txns;
          progress = true;
          continue;
        }
        const int obj = st.to_acquire[st.next];
        auto it = lock_owner.find(obj);
        if (it == lock_owner.end()) {
          lock_owner[obj] = t;
          ++st.next;
          progress = true;
        } else if (it->second != t) {
          ++report.total_wait_steps;  // Blocked this step.
        }
      }
      if (!progress) {
        if (++stall_guard > problem.num_txns() + 2) {
          report.deadlock = true;  // Sorted acquisition makes this unreachable,
          break;                   // kept as a safety net.
        }
      } else {
        stall_guard = 0;
      }
    }
    if (report.deadlock) break;
  }
  return report;
}

namespace {

/// The scheduling adapter over the shared pipeline: TxnScheduleToQubo in,
/// DecodeSchedule out.
QuboPipeline<TxnScheduleProblem, Schedule> TxnSchedulePipeline(
    const std::string& solver_name, double conflict_penalty,
    double slot_weight) {
  return QuboPipeline<TxnScheduleProblem, Schedule>(
      solver_name,
      [conflict_penalty, slot_weight](const TxnScheduleProblem& p) {
        return TxnScheduleToQubo(p, conflict_penalty, slot_weight);
      },
      [](const TxnScheduleProblem& p, const anneal::Sample& best) {
        return DecodeSchedule(p, best.assignment);
      });
}

}  // namespace

Result<Schedule> SolveTxnSchedule(const TxnScheduleProblem& problem,
                                  const std::string& solver_name,
                                  const anneal::SolverOptions& options,
                                  double conflict_penalty, double slot_weight) {
  return TxnSchedulePipeline(solver_name, conflict_penalty, slot_weight)
      .Run(problem, options);
}

Result<std::vector<Schedule>> SolveTxnScheduleEpochs(
    const std::vector<TxnScheduleProblem>& epochs,
    const std::string& solver_name, const anneal::SolverOptions& options,
    double conflict_penalty, double slot_weight, int num_threads) {
  return TxnSchedulePipeline(solver_name, conflict_penalty, slot_weight)
      .RunBatch(epochs, options, num_threads);
}

}  // namespace qopt
}  // namespace qdm
