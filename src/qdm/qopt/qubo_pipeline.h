#ifndef QDM_QOPT_QUBO_PIPELINE_H_
#define QDM_QOPT_QUBO_PIPELINE_H_

#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "qdm/anneal/qubo.h"
#include "qdm/anneal/sampler.h"
#include "qdm/anneal/solver.h"
#include "qdm/common/status.h"

namespace qdm {
namespace qopt {

/// The one recurring shape of the paper's Figure-2 applications: encode a
/// data-management problem as a Qubo, dispatch it by NAME through the
/// QuboSolver registry (any name works — "simulated_annealing",
/// "embedded:<base>:<topology>", "race:<b1>+<b2>",
/// "noisy:<model>:<base>", "adaptive:<b1>+<b2>", ...), and
/// strict-decode the best
/// (lowest-energy) sample back into a domain solution. SolverOptions pass
/// through untouched — including the noise knob, so every application runs
/// under a NISQ noise model by just switching the solver name
/// (docs/noise.md).
///
/// Every qopt application (SolveMqo, SolveJoinOrder, SolveSchemaMatching,
/// SolveTxnSchedule and their batch variants) is a thin adapter over this
/// template — an encoder lambda, a decoder lambda, and a solver name — so a
/// new QUBO workload needs only its encoding and decoding to get single-shot
/// AND batched entry points with the full registry behind them:
///
///   QuboPipeline<MyProblem, MySolution> pipeline(
///       solver_name,
///       [](const MyProblem& p) { return MyProblemToQubo(p); },
///       [](const MyProblem& p, const anneal::Sample& best) {
///         return DecodeMySample(p, best.assignment);
///       });
///   auto one  = pipeline.Run(problem, options);
///   auto many = pipeline.RunBatch(problems, options, /*num_threads=*/4);
///
/// Semantics are inherited wholesale from the anneal layer and therefore
/// identical across every application:
///
///  - RunBatch dispatches through anneal::SolveBatchParallel: instance i is
///    solved with seed options.seed + i when options.rng == nullptr, so
///    results are bit-identical at every num_threads value; a shared rng is
///    honored only on the sequential num_threads == 1 path.
///  - Failures are all-or-nothing with the lowest failing instance named
///    ("batch instance <i>:"), and an empty sample set is an Internal error
///    (anneal::BestOfEach). Batches of one report the bare underlying error.
///  - Run is a batch of one (sequential, so options.rng is honored) — both
///    paths exercise the same code.
///
/// Decoders receive the full best anneal::Sample (not just the assignment)
/// so applications can also surface energies or chain-break fractions.
template <typename Problem, typename Solution>
class QuboPipeline {
 public:
  using Encoder = std::function<anneal::Qubo(const Problem&)>;
  using Decoder =
      std::function<Solution(const Problem&, const anneal::Sample&)>;

  QuboPipeline(std::string solver_name, Encoder encode, Decoder decode)
      : solver_name_(std::move(solver_name)),
        encode_(std::move(encode)),
        decode_(std::move(decode)) {}

  const std::string& solver_name() const { return solver_name_; }

  /// Single-problem pipeline: encode -> dispatch -> decode the best sample.
  Result<Solution> Run(const Problem& problem,
                       const anneal::SolverOptions& options) const {
    QDM_ASSIGN_OR_RETURN(std::vector<Solution> solutions,
                         RunBatch({problem}, options, /*num_threads=*/1));
    return std::move(solutions.front());
  }

  /// Batched pipeline: encode every problem, dispatch the whole batch
  /// through anneal::SolveBatchParallel (fanning out across `num_threads`
  /// pool workers when != 1), decode each best sample. solutions[i]
  /// corresponds to problems[i].
  Result<std::vector<Solution>> RunBatch(const std::vector<Problem>& problems,
                                         const anneal::SolverOptions& options,
                                         int num_threads = 1) const {
    std::vector<anneal::Qubo> qubos;
    qubos.reserve(problems.size());
    for (const Problem& problem : problems) qubos.push_back(encode_(problem));
    QDM_ASSIGN_OR_RETURN(
        std::vector<anneal::SampleSet> sets,
        anneal::SolveBatchParallel(solver_name_, qubos, options, num_threads));
    QDM_ASSIGN_OR_RETURN(std::vector<anneal::Sample> best,
                         anneal::BestOfEach(sets, solver_name_));
    std::vector<Solution> solutions;
    solutions.reserve(problems.size());
    for (size_t i = 0; i < problems.size(); ++i) {
      solutions.push_back(decode_(problems[i], best[i]));
    }
    return solutions;
  }

 private:
  std::string solver_name_;
  Encoder encode_;
  Decoder decode_;
};

}  // namespace qopt
}  // namespace qdm

#endif  // QDM_QOPT_QUBO_PIPELINE_H_
