#ifndef QDM_QOPT_SCHEMA_MATCHING_H_
#define QDM_QOPT_SCHEMA_MATCHING_H_

#include <string>
#include <utility>
#include <vector>

#include "qdm/anneal/qubo.h"
#include "qdm/anneal/solver.h"
#include "qdm/common/rng.h"
#include "qdm/common/status.h"

namespace qdm {
namespace qopt {

/// One-to-one schema matching instance, after Fritsch & Scherzinger
/// [VLDB'23]: attributes of a source and a target schema with pairwise
/// similarity scores; select a partial matching (at most one partner per
/// attribute) maximizing total similarity.
struct SchemaMatchingProblem {
  std::vector<std::string> source_attributes;
  std::vector<std::string> target_attributes;
  /// similarity[i][j] in [0, 1] between source i and target j.
  std::vector<std::vector<double>> similarity;

  int num_source() const { return static_cast<int>(source_attributes.size()); }
  int num_target() const { return static_cast<int>(target_attributes.size()); }
  int num_variables() const { return num_source() * num_target(); }
  int VarIndex(int source, int target) const;
};

/// Instance generator with a planted ground-truth matching: matched pairs get
/// similarity ~ U[0.7, 1.0], unmatched pairs ~ U[0, 0.5] plus `noise`
/// perturbation. The planted matching covers min(n_source, n_target) pairs.
SchemaMatchingProblem GenerateSchemaMatching(int num_source, int num_target,
                                             double noise, Rng* rng);

/// QUBO: minimize -similarity[i][j] x_ij subject to at-most-one penalties per
/// source row and target column.
anneal::Qubo SchemaMatchingToQubo(const SchemaMatchingProblem& problem,
                                  double penalty = 0.0);

struct Matching {
  std::vector<std::pair<int, int>> pairs;  // (source, target)
  double total_similarity = 0.0;
  bool feasible = false;
};

/// Strict decode: infeasible when an attribute is matched twice.
Matching DecodeMatching(const SchemaMatchingProblem& problem,
                        const anneal::Assignment& assignment);

/// Schema matching end-to-end through the shared qopt::QuboPipeline:
/// SchemaMatchingToQubo in, registry dispatch to `solver_name` (any name,
/// including "embedded:*" and "race:*"), strict DecodeMatching of the best
/// sample out.
Result<Matching> SolveSchemaMatching(const SchemaMatchingProblem& problem,
                                     const std::string& solver_name,
                                     const anneal::SolverOptions& options,
                                     double penalty = 0.0);

/// Optimal max-weight matching via the Hungarian algorithm (O(n^3)).
Matching HungarianMatching(const SchemaMatchingProblem& problem);

/// Greedy baseline: repeatedly picks the highest-similarity free pair.
Matching GreedyMatching(const SchemaMatchingProblem& problem);

}  // namespace qopt
}  // namespace qdm

#endif  // QDM_QOPT_SCHEMA_MATCHING_H_
