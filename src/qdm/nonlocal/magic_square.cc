#include "qdm/nonlocal/magic_square.h"

#include <algorithm>

#include "qdm/circuit/circuit.h"
#include "qdm/common/check.h"
#include "qdm/sim/pauli.h"
#include "qdm/sim/statevector.h"

namespace qdm {
namespace nonlocal {

namespace {

// The grid of two-qubit Pauli observables. Every row is a commuting triple
// with product +I; columns multiply to +I, +I, -I, which is exactly the
// parity inconsistency that makes the game classically unwinnable.
constexpr const char* kGrid[3][3] = {
    {"XI", "IX", "XX"},
    {"IZ", "ZI", "ZZ"},
    {"XZ", "ZX", "YY"},
};

/// Required product of Alice's row signs (always +1 for this grid).
constexpr int kRowProduct[3] = {+1, +1, +1};
/// Required product of Bob's column signs.
constexpr int kColProduct[3] = {+1, +1, -1};

}  // namespace

std::string MagicSquareObservable(int row, int col) {
  QDM_CHECK(row >= 0 && row < 3 && col >= 0 && col < 3);
  return kGrid[row][col];
}

int MagicSquareSign(int row, int col) {
  QDM_CHECK(row >= 0 && row < 3 && col >= 0 && col < 3);
  return +1;  // All signs are carried by the column-product requirement.
}

double ClassicalValueMagicSquare() {
  // A deterministic Alice strategy assigns each row a sign triple with the
  // required product; 4 choices per row. Same for Bob's columns.
  auto triples_with_product = [](int product) {
    std::vector<std::array<int, 3>> triples;
    for (int mask = 0; mask < 8; ++mask) {
      std::array<int, 3> t{(mask & 1) ? -1 : 1, (mask & 2) ? -1 : 1,
                           (mask & 4) ? -1 : 1};
      if (t[0] * t[1] * t[2] == product) triples.push_back(t);
    }
    return triples;
  };

  std::array<std::vector<std::array<int, 3>>, 3> alice_rows;
  std::array<std::vector<std::array<int, 3>>, 3> bob_cols;
  for (int i = 0; i < 3; ++i) {
    alice_rows[i] = triples_with_product(kRowProduct[i]);
    bob_cols[i] = triples_with_product(kColProduct[i]);
  }

  double best = 0.0;
  // 4^3 strategies per player.
  for (int a0 = 0; a0 < 4; ++a0) {
    for (int a1 = 0; a1 < 4; ++a1) {
      for (int a2 = 0; a2 < 4; ++a2) {
        const std::array<const std::array<int, 3>*, 3> alice{
            &alice_rows[0][a0], &alice_rows[1][a1], &alice_rows[2][a2]};
        for (int b0 = 0; b0 < 4; ++b0) {
          for (int b1 = 0; b1 < 4; ++b1) {
            for (int b2 = 0; b2 < 4; ++b2) {
              const std::array<const std::array<int, 3>*, 3> bob{
                  &bob_cols[0][b0], &bob_cols[1][b1], &bob_cols[2][b2]};
              int wins = 0;
              for (int r = 0; r < 3; ++r) {
                for (int c = 0; c < 3; ++c) {
                  if ((*alice[r])[c] == (*bob[c])[r]) ++wins;
                }
              }
              best = std::max(best, wins / 9.0);
            }
          }
        }
      }
    }
  }
  return best;
}

MagicSquareRound PlayMagicSquareRound(int row, int col, Rng* rng) {
  QDM_CHECK(row >= 0 && row < 3 && col >= 0 && col < 3);
  // Two Bell pairs: Alice holds qubits {0, 1}, Bob {2, 3}; pairs (0,2), (1,3).
  circuit::Circuit prep(4);
  prep.H(0).CX(0, 2).H(1).CX(1, 3);
  sim::Statevector state = sim::RunCircuit(prep);

  MagicSquareRound result;
  // Alice measures her row's three commuting observables on qubits {0, 1}.
  for (int c = 0; c < 3; ++c) {
    result.alice_signs[c] = sim::MeasurePauliString(
        &state, MagicSquareObservable(row, c), {0, 1}, rng);
  }
  // Bob measures his column's observables on qubits {2, 3}. For this grid
  // every observable is transpose-symmetric as a two-qubit operator (X and Z
  // are symmetric; Y appears only as the pair YY, whose transpose signs
  // cancel), so Bob measures the identical strings and the Bell identity
  // (M (x) I)|Phi+> = (I (x) M^T)|Phi+> forces agreement on the shared cell.
  for (int r = 0; r < 3; ++r) {
    result.bob_signs[r] = sim::MeasurePauliString(
        &state, MagicSquareObservable(r, col), {2, 3}, rng);
  }

  const int alice_product = result.alice_signs[0] * result.alice_signs[1] *
                            result.alice_signs[2];
  const int bob_product =
      result.bob_signs[0] * result.bob_signs[1] * result.bob_signs[2];
  result.won = alice_product == kRowProduct[row] &&
               bob_product == kColProduct[col] &&
               result.alice_signs[col] == result.bob_signs[row];
  return result;
}

double PlayMagicSquareQuantum(int rounds, Rng* rng) {
  QDM_CHECK_GT(rounds, 0);
  int wins = 0;
  for (int round = 0; round < rounds; ++round) {
    const int row = static_cast<int>(rng->UniformInt(0, 2));
    const int col = static_cast<int>(rng->UniformInt(0, 2));
    if (PlayMagicSquareRound(row, col, rng).won) ++wins;
  }
  return static_cast<double>(wins) / rounds;
}

}  // namespace nonlocal
}  // namespace qdm
