#ifndef QDM_NONLOCAL_GAMES_H_
#define QDM_NONLOCAL_GAMES_H_

#include <array>
#include <functional>
#include <string>
#include <vector>

#include "qdm/algo/optimizers.h"
#include "qdm/common/rng.h"
#include "qdm/linalg/matrix.h"
#include "qdm/sim/statevector.h"

namespace qdm {
namespace nonlocal {

/// A two-player nonlocal game (paper Sec IV-A): a referee draws inputs
/// (x, y) uniformly; isolated players answer bits (a, b); they win when
/// `predicate(x, y, a, b)` holds. The paper's running example is CHSH:
/// win iff x AND y == a XOR b.
struct TwoPlayerGame {
  std::string name;
  int num_inputs = 2;  // x, y in [0, num_inputs).
  std::function<bool(int x, int y, int a, int b)> predicate;
};

/// The Clauser-Horne-Shimony-Holt game (Example IV.2).
TwoPlayerGame ChshGame();

/// Exact classical value: the maximum winning probability over all
/// deterministic strategies (shared randomness cannot beat the best
/// deterministic strategy). For CHSH this is 3/4.
double ClassicalValueTwoPlayer(const TwoPlayerGame& game);

/// A quantum strategy: a shared two-qubit state (qubit 0 = Alice, qubit 1 =
/// Bob) and one pre-measurement rotation per player per input; each player
/// applies their rotation and measures Z.
struct TwoPlayerQuantumStrategy {
  sim::Statevector shared_state{2};
  std::vector<linalg::Matrix> alice_rotations;  // [num_inputs] 2x2 unitaries.
  std::vector<linalg::Matrix> bob_rotations;
};

/// Pre-measurement rotation measuring the observable
/// cos(theta) Z + sin(theta) X (measurement in the X-Z plane).
linalg::Matrix MeasureInXZPlane(double theta);
/// Pre-measurement rotations for the Pauli X / Y observables.
linalg::Matrix MeasureX();
linalg::Matrix MeasureY();

/// Textbook-optimal CHSH strategy: shared Bell state Phi+, Alice measures
/// Z / X (theta = 0, pi/2), Bob measures at theta = pi/4, -pi/4. Achieves
/// cos^2(pi/8) ~ 0.8536.
TwoPlayerQuantumStrategy OptimalChshStrategy();

/// Exact winning probability of a quantum strategy (uniform inputs).
double QuantumValueTwoPlayer(const TwoPlayerGame& game,
                             const TwoPlayerQuantumStrategy& strategy);

/// Plays `rounds` sampled rounds (measurement randomness from `rng`) and
/// returns the empirical win rate.
double PlayTwoPlayerGame(const TwoPlayerGame& game,
                         const TwoPlayerQuantumStrategy& strategy, int rounds,
                         Rng* rng);

/// Numerically optimizes X-Z-plane measurement angles for a game over the
/// shared Bell state, starting from `restarts` random angle vectors. Used to
/// show that ~0.8536 (the Tsirelson bound for CHSH) emerges from
/// optimization rather than being hard-coded.
algo::OptimizationResult OptimizeXZAngles(const TwoPlayerGame& game,
                                          int restarts, Rng* rng);

// ---------------------------------------------------------------------------
// Three-player games (the GHZ game of Sec IV-A).

struct ThreePlayerGame {
  std::string name;
  /// Allowed referee questions (r, s, t); drawn uniformly.
  std::vector<std::array<int, 3>> questions;
  /// Win condition on (question, answers a, b, c).
  std::function<bool(const std::array<int, 3>&, int a, int b, int c)> predicate;
};

/// The Greenberger-Horne-Zeilinger game: questions {000, 011, 101, 110};
/// win iff a XOR b XOR c == r OR s OR t.
ThreePlayerGame GhzGame();

/// Max over deterministic strategies; 3/4 for GHZ.
double ClassicalValueThreePlayer(const ThreePlayerGame& game);

struct ThreePlayerQuantumStrategy {
  sim::Statevector shared_state{3};
  /// rotations[player][input bit]: pre-measurement rotation.
  std::vector<std::vector<linalg::Matrix>> rotations;
};

/// Textbook GHZ strategy: shared GHZ state; measure X on input 0 and Y on
/// input 1. Wins with probability exactly 1.
ThreePlayerQuantumStrategy OptimalGhzStrategy();

double QuantumValueThreePlayer(const ThreePlayerGame& game,
                               const ThreePlayerQuantumStrategy& strategy);

double PlayThreePlayerGame(const ThreePlayerGame& game,
                           const ThreePlayerQuantumStrategy& strategy,
                           int rounds, Rng* rng);

}  // namespace nonlocal
}  // namespace qdm

#endif  // QDM_NONLOCAL_GAMES_H_
