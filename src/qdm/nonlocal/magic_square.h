#ifndef QDM_NONLOCAL_MAGIC_SQUARE_H_
#define QDM_NONLOCAL_MAGIC_SQUARE_H_

#include <array>
#include <string>

#include "qdm/common/rng.h"

namespace qdm {
namespace nonlocal {

/// The Mermin-Peres magic square game -- the natural next step after CHSH
/// and GHZ in the paper's Sec IV-A program (a two-player PSEUDO-TELEPATHY
/// game: quantum strategies win with certainty, classical ones cannot).
///
/// Rules: the referee draws a row r and column c uniformly. Alice fills her
/// row with three signs of product +1; Bob fills his column with three signs
/// of product -1. They win when their shared cell (r, c) agrees.
///
///  * Classical value: 8/9 (no sign table has all rows multiply to +1 and
///    all columns to -1).
///  * Quantum value: 1, by measuring the 3x3 grid of two-qubit Pauli
///    observables on two shared Bell pairs:
///        XI  IX  XX
///        IZ  ZI  ZZ
///       -XZ -ZX -YY        (the sign is absorbed into the outputs)
///    Each row/column is a commuting triple, so the players can measure all
///    three observables jointly.

/// Exact classical value by exhaustive strategy enumeration: 8/9.
double ClassicalValueMagicSquare();

/// The two-qubit Pauli string (over "IXYZ") at grid cell (row, col) and the
/// sign it carries in the magic square (+1 except the bottom row's -1s).
std::string MagicSquareObservable(int row, int col);
int MagicSquareSign(int row, int col);

/// Plays `rounds` rounds of the quantum strategy on fresh Bell pairs and
/// returns the win rate (exactly 1.0: pseudo-telepathy).
double PlayMagicSquareQuantum(int rounds, Rng* rng);

/// Result of one round, exposed for tests.
struct MagicSquareRound {
  std::array<int, 3> alice_signs;  // Product must be +1.
  std::array<int, 3> bob_signs;    // Product must be -1.
  bool won = false;
};

MagicSquareRound PlayMagicSquareRound(int row, int col, Rng* rng);

}  // namespace nonlocal
}  // namespace qdm

#endif  // QDM_NONLOCAL_MAGIC_SQUARE_H_
