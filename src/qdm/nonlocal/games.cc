#include "qdm/nonlocal/games.h"

#include <array>
#include <cmath>

#include "qdm/circuit/circuit.h"
#include "qdm/common/check.h"

namespace qdm {
namespace nonlocal {

using circuit::GateKind;
using circuit::SingleQubitMatrix;
using linalg::Matrix;

TwoPlayerGame ChshGame() {
  TwoPlayerGame game;
  game.name = "CHSH";
  game.num_inputs = 2;
  game.predicate = [](int x, int y, int a, int b) {
    return ((x == 1 && y == 1) ? 1 : 0) == (a ^ b);
  };
  return game;
}

double ClassicalValueTwoPlayer(const TwoPlayerGame& game) {
  const int k = game.num_inputs;
  QDM_CHECK_LE(k, 16);
  const uint32_t num_strategies = uint32_t{1} << k;  // Bit s of strategy =
                                                     // answer to input s.
  double best = 0.0;
  for (uint32_t sa = 0; sa < num_strategies; ++sa) {
    for (uint32_t sb = 0; sb < num_strategies; ++sb) {
      int wins = 0;
      for (int x = 0; x < k; ++x) {
        for (int y = 0; y < k; ++y) {
          const int a = (sa >> x) & 1;
          const int b = (sb >> y) & 1;
          if (game.predicate(x, y, a, b)) ++wins;
        }
      }
      best = std::max(best, static_cast<double>(wins) / (k * k));
    }
  }
  return best;
}

Matrix MeasureInXZPlane(double theta) {
  return SingleQubitMatrix(GateKind::kRY, {-theta});
}

Matrix MeasureX() {
  return SingleQubitMatrix(GateKind::kH, {});
}

Matrix MeasureY() {
  return SingleQubitMatrix(GateKind::kH, {}) *
         SingleQubitMatrix(GateKind::kSdg, {});
}

namespace {

sim::Statevector BellPhiPlus() {
  circuit::Circuit c(2);
  c.H(0).CX(0, 1);
  return sim::RunCircuit(c);
}

sim::Statevector GhzState() {
  circuit::Circuit c(3);
  c.H(0).CX(0, 1).CX(0, 2);
  return sim::RunCircuit(c);
}

}  // namespace

TwoPlayerQuantumStrategy OptimalChshStrategy() {
  TwoPlayerQuantumStrategy strategy;
  strategy.shared_state = BellPhiPlus();
  strategy.alice_rotations = {MeasureInXZPlane(0.0),
                              MeasureInXZPlane(M_PI / 2)};
  strategy.bob_rotations = {MeasureInXZPlane(M_PI / 4),
                            MeasureInXZPlane(-M_PI / 4)};
  return strategy;
}

double QuantumValueTwoPlayer(const TwoPlayerGame& game,
                             const TwoPlayerQuantumStrategy& strategy) {
  QDM_CHECK_EQ(strategy.alice_rotations.size(),
               static_cast<size_t>(game.num_inputs));
  QDM_CHECK_EQ(strategy.bob_rotations.size(),
               static_cast<size_t>(game.num_inputs));
  double total = 0.0;
  for (int x = 0; x < game.num_inputs; ++x) {
    for (int y = 0; y < game.num_inputs; ++y) {
      sim::Statevector state = strategy.shared_state;
      state.Apply1Q(strategy.alice_rotations[x], 0);
      state.Apply1Q(strategy.bob_rotations[y], 1);
      for (uint64_t outcome = 0; outcome < 4; ++outcome) {
        const int a = outcome & 1;
        const int b = (outcome >> 1) & 1;
        if (game.predicate(x, y, a, b)) {
          total += std::norm(state.amplitude(outcome));
        }
      }
    }
  }
  return total / (game.num_inputs * game.num_inputs);
}

double PlayTwoPlayerGame(const TwoPlayerGame& game,
                         const TwoPlayerQuantumStrategy& strategy, int rounds,
                         Rng* rng) {
  QDM_CHECK_GT(rounds, 0);
  int wins = 0;
  for (int round = 0; round < rounds; ++round) {
    const int x = static_cast<int>(rng->UniformInt(0, game.num_inputs - 1));
    const int y = static_cast<int>(rng->UniformInt(0, game.num_inputs - 1));
    sim::Statevector state = strategy.shared_state;
    state.Apply1Q(strategy.alice_rotations[x], 0);
    state.Apply1Q(strategy.bob_rotations[y], 1);
    const uint64_t outcome = state.SampleBasisState(rng);
    const int a = outcome & 1;
    const int b = (outcome >> 1) & 1;
    if (game.predicate(x, y, a, b)) ++wins;
  }
  return static_cast<double>(wins) / rounds;
}

algo::OptimizationResult OptimizeXZAngles(const TwoPlayerGame& game,
                                          int restarts, Rng* rng) {
  QDM_CHECK_GT(restarts, 0);
  const int k = game.num_inputs;
  algo::Objective objective = [&](const std::vector<double>& angles) {
    TwoPlayerQuantumStrategy strategy;
    strategy.shared_state = BellPhiPlus();
    for (int x = 0; x < k; ++x) {
      strategy.alice_rotations.push_back(MeasureInXZPlane(angles[x]));
    }
    for (int y = 0; y < k; ++y) {
      strategy.bob_rotations.push_back(MeasureInXZPlane(angles[k + y]));
    }
    return -QuantumValueTwoPlayer(game, strategy);
  };

  algo::NelderMead optimizer;
  algo::OptimizationResult best;
  best.value = 1e300;
  for (int r = 0; r < restarts; ++r) {
    std::vector<double> initial(2 * k);
    for (double& a : initial) a = rng->Uniform(-M_PI, M_PI);
    algo::OptimizationResult run = optimizer.Minimize(objective, initial, rng);
    if (run.value < best.value) best = run;
  }
  return best;
}

ThreePlayerGame GhzGame() {
  ThreePlayerGame game;
  game.name = "GHZ";
  game.questions = {{0, 0, 0}, {0, 1, 1}, {1, 0, 1}, {1, 1, 0}};
  game.predicate = [](const std::array<int, 3>& q, int a, int b, int c) {
    const int want = (q[0] | q[1] | q[2]);
    return (a ^ b ^ c) == want;
  };
  return game;
}

double ClassicalValueThreePlayer(const ThreePlayerGame& game) {
  // Deterministic strategy per player: a map from the player's input bit to
  // an answer bit (4 options per player).
  double best = 0.0;
  for (uint32_t s0 = 0; s0 < 4; ++s0) {
    for (uint32_t s1 = 0; s1 < 4; ++s1) {
      for (uint32_t s2 = 0; s2 < 4; ++s2) {
        int wins = 0;
        for (const auto& q : game.questions) {
          const int a = (s0 >> q[0]) & 1;
          const int b = (s1 >> q[1]) & 1;
          const int c = (s2 >> q[2]) & 1;
          if (game.predicate(q, a, b, c)) ++wins;
        }
        best = std::max(best,
                        static_cast<double>(wins) / game.questions.size());
      }
    }
  }
  return best;
}

ThreePlayerQuantumStrategy OptimalGhzStrategy() {
  ThreePlayerQuantumStrategy strategy;
  strategy.shared_state = GhzState();
  strategy.rotations.assign(3, {MeasureX(), MeasureY()});
  return strategy;
}

double QuantumValueThreePlayer(const ThreePlayerGame& game,
                               const ThreePlayerQuantumStrategy& strategy) {
  QDM_CHECK_EQ(strategy.rotations.size(), 3u);
  double total = 0.0;
  for (const auto& q : game.questions) {
    sim::Statevector state = strategy.shared_state;
    for (int player = 0; player < 3; ++player) {
      QDM_CHECK_LT(static_cast<size_t>(q[player]),
                   strategy.rotations[player].size());
      state.Apply1Q(strategy.rotations[player][q[player]], player);
    }
    for (uint64_t outcome = 0; outcome < 8; ++outcome) {
      const int a = outcome & 1;
      const int b = (outcome >> 1) & 1;
      const int c = (outcome >> 2) & 1;
      if (game.predicate(q, a, b, c)) {
        total += std::norm(state.amplitude(outcome));
      }
    }
  }
  return total / game.questions.size();
}

double PlayThreePlayerGame(const ThreePlayerGame& game,
                           const ThreePlayerQuantumStrategy& strategy,
                           int rounds, Rng* rng) {
  QDM_CHECK_GT(rounds, 0);
  int wins = 0;
  for (int round = 0; round < rounds; ++round) {
    const auto& q = game.questions[rng->UniformInt(
        0, static_cast<int64_t>(game.questions.size()) - 1)];
    sim::Statevector state = strategy.shared_state;
    for (int player = 0; player < 3; ++player) {
      state.Apply1Q(strategy.rotations[player][q[player]], player);
    }
    const uint64_t outcome = state.SampleBasisState(rng);
    if (game.predicate(q, outcome & 1, (outcome >> 1) & 1,
                       (outcome >> 2) & 1)) {
      ++wins;
    }
  }
  return static_cast<double>(wins) / rounds;
}

}  // namespace nonlocal
}  // namespace qdm
