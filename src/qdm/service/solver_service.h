#ifndef QDM_SERVICE_SOLVER_SERVICE_H_
#define QDM_SERVICE_SOLVER_SERVICE_H_

#include <memory>
#include <string>
#include <vector>

#include "qdm/anneal/qubo.h"
#include "qdm/anneal/sampler.h"
#include "qdm/anneal/solver.h"
#include "qdm/common/status.h"
#include "qdm/service/future.h"
#include "qdm/service/job.h"

namespace qdm {
namespace service {

/// A Submit/SubmitRace acceptance: the opaque id (for Poll/Wait/Cancel) and
/// a typed future resolving with the job's SampleSet.
struct SubmittedJob {
  JobId id = 0;
  Future<anneal::SampleSet> future;
};

/// A SubmitBatch acceptance: id plus a future resolving with one SampleSet
/// per submitted instance (all-or-nothing, like SolveBatchParallel).
struct SubmittedBatch {
  JobId id = 0;
  Future<std::vector<anneal::SampleSet>> future;
};

/// Async execution layer over the SolverRegistry — the "solver as a
/// service" step of the ROADMAP: many concurrent clients submit QUBOs,
/// batches, or races by registry name and poll or await results, instead
/// of one synchronous caller driving Solve directly.
///
/// Execution model: accepted jobs enter a bounded FIFO queue drained by up
/// to `config.num_workers` worker tasks on the process-wide
/// ThreadPool::Shared() — the service owns no threads of its own, so any
/// number of services coexist on one pool, and jobs that internally fan
/// out (race:* members, parallel statevector kernels, nested
/// SolveBatchParallel) reuse the same pool through its
/// caller-participating ForEach, which cannot deadlock.
///
/// Determinism contract (the async extension of the batch rule in
/// docs/batching.md): a job submitted with options.seed == s resolves with
/// exactly the SampleSet(s) the synchronous path produces with seed s —
/// Solve(qubo, options) for Submit, SolveBatchParallel's per-instance
/// seed + index derivation for SubmitBatch, SolveWith("race:...") for
/// SubmitRace — regardless of queue interleaving, worker count, or what
/// other jobs are in flight. options.rng must be null (InvalidArgument):
/// a shared Rng cannot cross the async boundary deterministically.
///
/// Error taxonomy: submission-time errors (unknown solver name ->
/// NotFound, malformed "embedded:"/"race:" spec -> InvalidArgument, bad
/// options) are returned by Submit* BEFORE the job is enqueued, with the
/// same Status the synchronous registry path produces. Post-acceptance
/// failures resolve the job's future: backend errors keep their sync
/// messages (batch instances annotated "batch instance <i>: ..." exactly
/// like SolveBatchParallel), cancellation resolves Cancelled, and an
/// expired deadline resolves DeadlineExceeded.
///
/// Thread safety: every method may be called concurrently from any thread.
class SolverService {
 public:
  explicit SolverService(ServiceConfig config = {});

  /// Equivalent to Shutdown().
  ~SolverService();

  SolverService(const SolverService&) = delete;
  SolverService& operator=(const SolverService&) = delete;

  /// Submits one QUBO to the backend registered under `solver_name`
  /// (any registry-resolvable name, including "embedded:*" and "race:*").
  /// On acceptance the returned future resolves with the SampleSet that
  /// the synchronous Solve(qubo, options) produces for the same seed.
  Result<SubmittedJob> Submit(const std::string& solver_name,
                              anneal::Qubo qubo,
                              const anneal::SolverOptions& options,
                              const SubmitOptions& submit = {});

  /// Submits a batch of independent instances as ONE job (one id, one
  /// future, all-or-nothing result — the async sibling of
  /// SolveBatchParallel, bit-identical to it instance by instance via the
  /// same seed + index derivation). Instances run sequentially on the
  /// job's worker; between instances the job checks its deadline and
  /// cancellation token, so batch jobs can be stopped at instance
  /// granularity. Cross-job parallelism comes from submitting many jobs.
  Result<SubmittedBatch> SubmitBatch(const std::string& solver_name,
                                     std::vector<anneal::Qubo> qubos,
                                     const anneal::SolverOptions& options,
                                     const SubmitOptions& submit = {});

  /// Submits a portfolio race of the given registry members on one QUBO —
  /// sugar for Submit("race:<m1>+<m2>+...", ...), so the full "race:"
  /// taxonomy applies (>= 2 members, no nested races, member errors
  /// annotated with the race name) and the result is bit-identical to the
  /// synchronous SolveWith on the same race name and seed.
  Result<SubmittedJob> SubmitRace(const std::vector<std::string>& members,
                                  anneal::Qubo qubo,
                                  const anneal::SolverOptions& options,
                                  const SubmitOptions& submit = {});

  /// Non-blocking state probe; NotFound for ids never issued or already
  /// Released. Terminal snapshots carry the job's final Status.
  Result<JobSnapshot> Poll(JobId id) const;

  /// Blocks until the job is terminal and returns its result (the batch
  /// form — Submit/SubmitRace jobs yield one-element vectors; their typed
  /// future unwraps it). Safe to call repeatedly and from several threads:
  /// every call returns the same resolved Result. NotFound for unknown
  /// ids.
  Result<std::vector<anneal::SampleSet>> Wait(JobId id) const;

  /// Requests cancellation. A queued job is resolved Cancelled
  /// immediately; a running job is signalled through its cooperative
  /// token (batch jobs stop at the next instance boundary) and is
  /// GUARANTEED to resolve Cancelled — even if the backend call in flight
  /// completes, its result is discarded. Returns Ok when the request was
  /// accepted, FailedPrecondition when the job is already terminal,
  /// NotFound for unknown ids.
  Status Cancel(JobId id);

  /// Drops a terminal job's bookkeeping (ids are never reused, so a
  /// released id turns NotFound). FailedPrecondition while queued/running.
  /// Long-lived services call this after consuming results; unreleased
  /// jobs are retained until shutdown.
  Status Release(JobId id);

  /// Consistent point-in-time snapshot (see ServiceStats for the
  /// conservation law it obeys).
  ServiceStats stats() const;

  /// False while admission control is shedding load (queue reached the
  /// high watermark and has not yet drained to the low one).
  bool accepting() const;

  /// Resolved worker-task cap.
  int num_workers() const;

  /// Stops admission (further Submit* -> FailedPrecondition), cancels
  /// every queued job (their futures resolve Cancelled), and blocks until
  /// running jobs finish. Idempotent; called by the destructor.
  void Shutdown();

 private:
  struct Impl;  // Shared with worker tasks so they never outlive state.
  std::shared_ptr<Impl> impl_;
};

}  // namespace service
}  // namespace qdm

#endif  // QDM_SERVICE_SOLVER_SERVICE_H_
