#include "qdm/service/solver_service.h"

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <map>
#include <mutex>
#include <utility>

#include "qdm/common/strings.h"
#include "qdm/common/thread_pool.h"
#include "qdm/service/cancellation.h"

namespace qdm {
namespace service {

namespace {

using anneal::Qubo;
using anneal::SampleSet;
using anneal::SolverOptions;
using Clock = std::chrono::steady_clock;

unsigned long long AsULL(JobId id) {
  return static_cast<unsigned long long>(id);
}

}  // namespace

const char* JobStateToString(JobState state) {
  switch (state) {
    case JobState::kQueued:
      return "Queued";
    case JobState::kRunning:
      return "Running";
    case JobState::kSucceeded:
      return "Succeeded";
    case JobState::kFailed:
      return "Failed";
    case JobState::kCancelled:
      return "Cancelled";
    case JobState::kDeadlineExceeded:
      return "DeadlineExceeded";
  }
  return "Unknown";
}

bool JobStateFromString(const std::string& name, JobState* state) {
  // The enumerators are contiguous from kQueued to kDeadlineExceeded.
  const int last = static_cast<int>(JobState::kDeadlineExceeded);
  for (int i = 0; i <= last; ++i) {
    const JobState candidate = static_cast<JobState>(i);
    if (name == JobStateToString(candidate)) {
      *state = candidate;
      return true;
    }
  }
  return false;
}

struct SolverService::Impl {
  struct Job {
    JobId id = 0;
    std::vector<Qubo> qubos;
    SolverOptions options;
    bool has_deadline = false;
    Clock::time_point deadline;
    std::unique_ptr<anneal::QuboSolver> backend;
    CancellationSource cancel;
    JobState state = JobState::kQueued;
    // The Status the job terminated with; meaningless before a terminal
    // transition, immutable afterwards (terminal states are final), so the
    // resolving thread may read it without the service lock.
    Status final_status;
    Promise<std::vector<SampleSet>> promise;
  };

  explicit Impl(const ServiceConfig& config)
      : num_workers(config.num_workers > 0 ? config.num_workers
                                           : ThreadPool::DefaultNumThreads()),
        high_watermark(std::max(0, config.max_queue_depth)),
        low_watermark(ResolveLowWatermark(config, high_watermark)) {}

  static int ResolveLowWatermark(const ServiceConfig& config, int high) {
    if (high == 0) return 0;  // Admission control disabled.
    if (config.resume_queue_depth <= 0) return high / 2;
    return std::min(config.resume_queue_depth, high - 1);
  }

  /// Validates, builds the backend, and enqueues — every submission-time
  /// error (unknown name, malformed spec, bad options, admission refusal,
  /// shutdown) surfaces HERE, before the job exists.
  static Result<std::shared_ptr<Job>> Enqueue(
      const std::shared_ptr<Impl>& impl, const std::string& solver_name,
      std::vector<Qubo> qubos, const SolverOptions& options,
      const SubmitOptions& submit);

  /// Worker task body: pulls queued jobs until the queue is empty, then
  /// retires itself. At most `num_workers` instances are in flight; they
  /// run on ThreadPool::Shared() and hold a shared_ptr to this Impl, so a
  /// straggling drainer can never outlive the service state.
  static void DrainLoop(const std::shared_ptr<Impl>& impl);

  /// Executes one dequeued job (already marked kRunning) and resolves it.
  static void RunJob(const std::shared_ptr<Impl>& impl,
                     const std::shared_ptr<Job>& job);

  /// Moves a job into a terminal state and updates the counters. Must be
  /// called with `mutex` held; the caller resolves the promise AFTER
  /// releasing the lock (continuations may re-enter the service).
  static void Transition(Impl& impl, Job& job, JobState state, Status status);

  const int num_workers;
  const int high_watermark;
  const int low_watermark;  // 0 when admission control is disabled.

  mutable std::mutex mutex;
  std::condition_variable idle_cv;
  std::deque<std::shared_ptr<Job>> queue;
  std::map<JobId, std::shared_ptr<Job>> jobs;
  JobId next_id = 1;
  int active_drainers = 0;
  bool accepting = true;
  bool shutdown = false;
  ServiceStats stats;
};

void SolverService::Impl::Transition(Impl& impl, Job& job, JobState state,
                                     Status status) {
  QDM_CHECK(!IsTerminalJobState(job.state))
      << "job " << job.id << " transitioned twice";
  QDM_CHECK(IsTerminalJobState(state));
  if (job.state == JobState::kQueued) {
    --impl.stats.queued;
  } else {
    --impl.stats.running;
  }
  job.state = state;
  job.final_status = std::move(status);
  switch (state) {
    case JobState::kSucceeded:
    case JobState::kFailed:
      ++impl.stats.completed;
      break;
    case JobState::kCancelled:
      ++impl.stats.cancelled;
      break;
    case JobState::kDeadlineExceeded:
      ++impl.stats.deadline_exceeded;
      break;
    default:
      break;
  }
  impl.idle_cv.notify_all();
}

Result<std::shared_ptr<SolverService::Impl::Job>> SolverService::Impl::Enqueue(
    const std::shared_ptr<Impl>& impl, const std::string& solver_name,
    std::vector<Qubo> qubos, const SolverOptions& options,
    const SubmitOptions& submit) {
  if (options.rng != nullptr) {
    return Status::InvalidArgument(
        "async submission requires seed-based randomness (options.rng must "
        "be null): a shared Rng cannot cross the service boundary "
        "deterministically");
  }
  QDM_RETURN_IF_ERROR(anneal::ValidateSolverOptions(options));
  if (submit.deadline.count() < 0) {
    return Status::InvalidArgument(
        StrFormat("deadline must be non-negative, got %lld ns",
                  static_cast<long long>(submit.deadline.count())));
  }
  // Resolve the backend BEFORE enqueueing, so an unknown name (NotFound) or
  // a malformed "embedded:"/"race:" spec (InvalidArgument) is returned with
  // the registry's exact message and never occupies a queue slot.
  QDM_ASSIGN_OR_RETURN(std::unique_ptr<anneal::QuboSolver> backend,
                       anneal::SolverRegistry::Global().Create(solver_name));
  auto job = std::make_shared<Job>();
  job->qubos = std::move(qubos);
  job->options = options;
  if (submit.deadline.count() > 0) {
    job->has_deadline = true;
    job->deadline = Clock::now() + submit.deadline;
  }
  job->backend = std::move(backend);
  {
    std::lock_guard<std::mutex> lock(impl->mutex);
    if (impl->shutdown) {
      return Status::FailedPrecondition(
          "SolverService is shut down; no further submissions are accepted");
    }
    if (impl->high_watermark > 0) {
      const int queued = static_cast<int>(impl->stats.queued);
      // Hysteresis: once the queue hits the high watermark the service
      // sheds load until the backlog drains to the low watermark, instead
      // of flapping accept/reject at the boundary.
      if (!impl->accepting && queued <= impl->low_watermark) {
        impl->accepting = true;
      }
      if (impl->accepting && queued >= impl->high_watermark) {
        impl->accepting = false;
      }
      if (!impl->accepting) {
        ++impl->stats.rejected;
        return Status::ResourceExhausted(StrFormat(
            "job queue at high watermark (%d queued, max %d); admission "
            "resumes once the queue drains to %d",
            queued, impl->high_watermark, impl->low_watermark));
      }
    }
    job->id = impl->next_id++;
    ++impl->stats.submitted;
    ++impl->stats.queued;
    impl->jobs.emplace(job->id, job);
    impl->queue.push_back(job);
    if (impl->active_drainers < impl->num_workers) {
      ++impl->active_drainers;
      ThreadPool::Shared().Submit([impl] { DrainLoop(impl); });
    }
  }
  return job;
}

void SolverService::Impl::DrainLoop(const std::shared_ptr<Impl>& impl) {
  for (;;) {
    std::shared_ptr<Job> job;      // Next job to execute.
    std::shared_ptr<Job> expired;  // Deadline passed while queued.
    {
      std::lock_guard<std::mutex> lock(impl->mutex);
      while (!impl->queue.empty()) {
        std::shared_ptr<Job> candidate = std::move(impl->queue.front());
        impl->queue.pop_front();
        // Jobs cancelled while queued are already terminal and resolved;
        // their queue entry is a tombstone.
        if (candidate->state != JobState::kQueued) continue;
        if (candidate->has_deadline && Clock::now() >= candidate->deadline) {
          Transition(*impl, *candidate, JobState::kDeadlineExceeded,
                     Status::DeadlineExceeded(StrFormat(
                         "job %llu deadline expired while queued",
                         AsULL(candidate->id))));
          expired = std::move(candidate);
          break;  // Resolve outside the lock, then keep draining.
        }
        --impl->stats.queued;
        ++impl->stats.running;
        candidate->state = JobState::kRunning;
        job = std::move(candidate);
        break;
      }
      if (job == nullptr && expired == nullptr) {
        // Queue drained: this worker retires. Submit re-spawns workers as
        // new jobs arrive (both under this mutex, so a job enqueued after
        // this check always sees either a live drainer or a fresh spawn).
        --impl->active_drainers;
        impl->idle_cv.notify_all();
        return;
      }
    }
    if (expired != nullptr) {
      expired->promise.Set(expired->final_status);
      continue;
    }
    RunJob(impl, job);
  }
}

void SolverService::Impl::RunJob(const std::shared_ptr<Impl>& impl,
                                 const std::shared_ptr<Job>& job) {
  const CancellationToken token = job->cancel.token();
  const size_t n = job->qubos.size();
  std::vector<SampleSet> results;
  results.reserve(n);
  Status failure;  // Ok unless an instance failed.
  bool deadline_hit = false;
  for (size_t i = 0; i < n; ++i) {
    // Cooperative checkpoints at batch-instance granularity: a cancel or
    // an expired deadline stops the job here without solving further
    // instances (an in-flight backend call itself is never interrupted).
    if (token.cancelled()) break;
    if (job->has_deadline && Clock::now() >= job->deadline) {
      deadline_hit = true;
      break;
    }
    // Per-instance seed derivation (seed + i) — identical to the
    // synchronous SolveBatch/SolveBatchParallel contract, and for a batch
    // of one identical to Solve (seed + 0), which is what makes async
    // results bit-identical to the sync path for the same seed.
    Result<SampleSet> result = job->backend->Solve(
        job->qubos[i], anneal::DeriveBatchOptions(job->options, i));
    if (!result.ok()) {
      // anneal::AnnotateBatchInstanceError keeps the async path's framing
      // identical to the synchronous SolveBatchParallel one.
      failure = anneal::AnnotateBatchInstanceError(result.status(), i, n);
      break;
    }
    results.push_back(std::move(result).value());
  }
  {
    std::lock_guard<std::mutex> lock(impl->mutex);
    // Terminal precedence: an observed Cancel always wins (Cancel's Ok
    // return promises a kCancelled outcome), then the deadline — checked
    // once more so a backend that FINISHED after the deadline still
    // resolves DeadlineExceeded, never a stale kOk — then real failures.
    if (job->cancel.cancelled()) {
      Transition(*impl, *job, JobState::kCancelled,
                 Status::Cancelled(StrFormat("job %llu cancelled while "
                                             "running",
                                             AsULL(job->id))));
    } else if (deadline_hit ||
               (job->has_deadline && Clock::now() >= job->deadline)) {
      Transition(*impl, *job, JobState::kDeadlineExceeded,
                 Status::DeadlineExceeded(StrFormat(
                     "job %llu exceeded its deadline", AsULL(job->id))));
    } else if (!failure.ok()) {
      Transition(*impl, *job, JobState::kFailed, failure);
    } else {
      Transition(*impl, *job, JobState::kSucceeded, Status::Ok());
    }
  }
  // Resolve outside the lock: continuations run on this thread and may
  // re-enter the service (Poll, further Submits, ...).
  if (job->final_status.ok()) {
    job->promise.Set(std::move(results));
  } else {
    job->promise.Set(job->final_status);
  }
}

SolverService::SolverService(ServiceConfig config)
    : impl_(std::make_shared<Impl>(config)) {}

SolverService::~SolverService() { Shutdown(); }

Result<SubmittedJob> SolverService::Submit(const std::string& solver_name,
                                           Qubo qubo,
                                           const SolverOptions& options,
                                           const SubmitOptions& submit) {
  std::vector<Qubo> qubos;
  qubos.push_back(std::move(qubo));
  QDM_ASSIGN_OR_RETURN(
      std::shared_ptr<Impl::Job> job,
      Impl::Enqueue(impl_, solver_name, std::move(qubos), options, submit));
  SubmittedJob submitted;
  submitted.id = job->id;
  // Unwrap the batch-of-one through a continuation — the typed future
  // resolves on the worker the moment the job does.
  submitted.future = job->promise.future().Then<SampleSet>(
      [](const Result<std::vector<SampleSet>>& result) -> Result<SampleSet> {
        if (!result.ok()) return result.status();
        QDM_CHECK(result->size() == 1)
            << "single-qubo job resolved with " << result->size()
            << " sample sets";
        return result->front();
      });
  return submitted;
}

Result<SubmittedBatch> SolverService::SubmitBatch(
    const std::string& solver_name, std::vector<Qubo> qubos,
    const SolverOptions& options, const SubmitOptions& submit) {
  QDM_ASSIGN_OR_RETURN(
      std::shared_ptr<Impl::Job> job,
      Impl::Enqueue(impl_, solver_name, std::move(qubos), options, submit));
  SubmittedBatch submitted;
  submitted.id = job->id;
  submitted.future = job->promise.future();
  return submitted;
}

Result<SubmittedJob> SolverService::SubmitRace(
    const std::vector<std::string>& members, Qubo qubo,
    const SolverOptions& options, const SubmitOptions& submit) {
  // Delegating to the "race:" registry family keeps one taxonomy: member
  // validation (>= 2 members, no nested races, unknown/malformed members)
  // and the deterministic best-energy contract all come from
  // MakePortfolioSolver, exactly as on the synchronous path.
  return Submit("race:" + StrJoin(members, "+"), std::move(qubo), options,
                submit);
}

Result<JobSnapshot> SolverService::Poll(JobId id) const {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  auto it = impl_->jobs.find(id);
  if (it == impl_->jobs.end()) {
    return Status::NotFound(StrFormat(
        "no job with id %llu (never submitted, or released)", AsULL(id)));
  }
  JobSnapshot snapshot;
  snapshot.id = id;
  snapshot.state = it->second->state;
  snapshot.status = it->second->final_status;
  return snapshot;
}

Result<std::vector<SampleSet>> SolverService::Wait(JobId id) const {
  Future<std::vector<SampleSet>> future;
  {
    std::lock_guard<std::mutex> lock(impl_->mutex);
    auto it = impl_->jobs.find(id);
    if (it == impl_->jobs.end()) {
      return Status::NotFound(StrFormat(
          "no job with id %llu (never submitted, or released)", AsULL(id)));
    }
    future = it->second->promise.future();
  }
  // Blocking happens outside the lock; repeated Waits re-read the same
  // resolved result (double-Wait is well-defined and cheap).
  return future.Get();
}

Status SolverService::Cancel(JobId id) {
  std::shared_ptr<Impl::Job> to_resolve;
  {
    std::lock_guard<std::mutex> lock(impl_->mutex);
    auto it = impl_->jobs.find(id);
    if (it == impl_->jobs.end()) {
      return Status::NotFound(StrFormat(
          "no job with id %llu (never submitted, or released)", AsULL(id)));
    }
    Impl::Job& job = *it->second;
    if (IsTerminalJobState(job.state)) {
      return Status::FailedPrecondition(
          StrFormat("job %llu is already %s", AsULL(id),
                    JobStateToString(job.state)));
    }
    job.cancel.Cancel();
    if (job.state == JobState::kQueued) {
      // Queued jobs terminate immediately (their queue entry becomes a
      // tombstone the drainer skips). Running jobs keep the kRunning state
      // until the worker observes the token; because the token was set
      // under this mutex and the worker's terminal decision reads it under
      // the same mutex, an Ok return here guarantees a kCancelled outcome.
      Impl::Transition(*impl_, job, JobState::kCancelled,
                       Status::Cancelled(StrFormat(
                           "job %llu cancelled while queued", AsULL(id))));
      to_resolve = it->second;
    }
  }
  if (to_resolve != nullptr) {
    to_resolve->promise.Set(to_resolve->final_status);
  }
  return Status::Ok();
}

Status SolverService::Release(JobId id) {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  auto it = impl_->jobs.find(id);
  if (it == impl_->jobs.end()) {
    return Status::NotFound(StrFormat(
        "no job with id %llu (never submitted, or released)", AsULL(id)));
  }
  if (!IsTerminalJobState(it->second->state)) {
    return Status::FailedPrecondition(
        StrFormat("job %llu is still %s; only terminal jobs can be released",
                  AsULL(id), JobStateToString(it->second->state)));
  }
  impl_->jobs.erase(it);
  return Status::Ok();
}

ServiceStats SolverService::stats() const {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  return impl_->stats;
}

bool SolverService::accepting() const {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  if (impl_->shutdown) return false;
  if (impl_->high_watermark == 0) return true;
  // Report what the next Submit would decide, including the hysteresis
  // resume (the flag itself only flips inside Submit).
  if (!impl_->accepting &&
      static_cast<int>(impl_->stats.queued) <= impl_->low_watermark) {
    return true;
  }
  return impl_->accepting &&
         static_cast<int>(impl_->stats.queued) < impl_->high_watermark;
}

int SolverService::num_workers() const { return impl_->num_workers; }

void SolverService::Shutdown() {
  std::vector<std::shared_ptr<Impl::Job>> to_resolve;
  {
    std::lock_guard<std::mutex> lock(impl_->mutex);
    impl_->shutdown = true;
    for (const std::shared_ptr<Impl::Job>& job : impl_->queue) {
      if (job->state != JobState::kQueued) continue;
      job->cancel.Cancel();
      Impl::Transition(*impl_, *job, JobState::kCancelled,
                       Status::Cancelled(StrFormat(
                           "job %llu cancelled by service shutdown",
                           AsULL(job->id))));
      to_resolve.push_back(job);
    }
    impl_->queue.clear();
  }
  for (const std::shared_ptr<Impl::Job>& job : to_resolve) {
    job->promise.Set(job->final_status);
  }
  // Running jobs are never abandoned (their workers reference live service
  // state); wait for them — and for retiring drainers — to finish. Must
  // not be called from inside a pool task for that reason.
  std::unique_lock<std::mutex> lock(impl_->mutex);
  impl_->idle_cv.wait(lock, [this] {
    return impl_->stats.running == 0 && impl_->active_drainers == 0;
  });
}

}  // namespace service
}  // namespace qdm
