#ifndef QDM_SERVICE_FUTURE_H_
#define QDM_SERVICE_FUTURE_H_

#include <chrono>
#include <condition_variable>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <utility>
#include <vector>

#include "qdm/common/check.h"
#include "qdm/common/status.h"

namespace qdm {
namespace service {

/// Promise/Future pair for the async solver service. Unlike std::future this
/// carries the library's Status taxonomy (the resolved value is a Result<T>,
/// never an exception — qdm is exception-free), supports deadline-bounded
/// waiting (WaitFor), and supports then-style continuations (Then) so
/// results can be transformed without a blocking thread.
///
/// Threading contract:
///  - Promise::Set resolves exactly once (a second Set aborts) and may be
///    called from any thread; all copies of the Future observe it.
///  - Futures are cheap shared handles; Wait/WaitFor/Get/ready may be
///    called from any number of threads, any number of times (Get after
///    resolution is non-blocking and always returns the same Result).
///  - Continuations run on the resolving thread (inline when the future is
///    already resolved at Then time). They must not block and must not wait
///    on other futures resolved by the same worker.
template <typename T>
class Future;

namespace internal {

template <typename T>
struct FutureState {
  std::mutex mutex;
  std::condition_variable resolved_cv;
  // Engaged exactly once; never mutated afterwards, so readers that have
  // observed resolution may keep references into it without the lock.
  std::optional<Result<T>> result;
  std::vector<std::function<void(const Result<T>&)>> continuations;
};

}  // namespace internal

template <typename T>
class Promise {
 public:
  Promise() : state_(std::make_shared<internal::FutureState<T>>()) {}

  /// The consuming handle. May be called repeatedly; every returned Future
  /// shares this promise's state.
  Future<T> future() const { return Future<T>(state_); }

  /// Resolves the future with a value or an error Status and runs any
  /// registered continuations on the calling thread. Aborts on double-Set.
  void Set(Result<T> result) {
    std::vector<std::function<void(const Result<T>&)>> continuations;
    {
      std::lock_guard<std::mutex> lock(state_->mutex);
      QDM_CHECK(!state_->result.has_value()) << "Promise resolved twice";
      state_->result.emplace(std::move(result));
      continuations.swap(state_->continuations);
      state_->resolved_cv.notify_all();
    }
    // Continuations run outside the state lock: they may create futures,
    // resolve other promises, or touch the service that resolved us.
    for (const auto& continuation : continuations) {
      continuation(*state_->result);
    }
  }

  bool resolved() const {
    std::lock_guard<std::mutex> lock(state_->mutex);
    return state_->result.has_value();
  }

 private:
  std::shared_ptr<internal::FutureState<T>> state_;
};

template <typename T>
class Future {
 public:
  /// A default-constructed future is invalid (no producer); waiting on it
  /// is a programming error and aborts.
  Future() = default;

  bool valid() const { return state_ != nullptr; }

  bool ready() const {
    QDM_CHECK(valid()) << "Future::ready() on an invalid future";
    std::lock_guard<std::mutex> lock(state_->mutex);
    return state_->result.has_value();
  }

  /// Blocks until the producing Promise resolves.
  void Wait() const {
    QDM_CHECK(valid()) << "Future::Wait() on an invalid future";
    std::unique_lock<std::mutex> lock(state_->mutex);
    state_->resolved_cv.wait(lock,
                             [this] { return state_->result.has_value(); });
  }

  /// Deadline-bounded wait: blocks up to `timeout` and returns whether the
  /// future resolved. A false return is a pure timeout — the future is
  /// untouched and may still resolve later.
  bool WaitFor(std::chrono::nanoseconds timeout) const {
    QDM_CHECK(valid()) << "Future::WaitFor() on an invalid future";
    std::unique_lock<std::mutex> lock(state_->mutex);
    return state_->resolved_cv.wait_for(
        lock, timeout, [this] { return state_->result.has_value(); });
  }

  /// Blocks until resolved, then returns the Result. The reference is
  /// stable for the lifetime of any Future/Promise sharing this state (the
  /// result is set once and never mutated).
  const Result<T>& Get() const {
    Wait();
    return *state_->result;
  }

  /// Then-style continuation: returns a future resolving with
  /// `fn(result-of-this)`. When this future is already resolved, `fn` runs
  /// inline on the calling thread; otherwise it runs on the resolving
  /// thread, after the value is published (so `Get()` inside `fn` would not
  /// block) but before `Set` returns to the producer.
  template <typename U>
  Future<U> Then(std::function<Result<U>(const Result<T>&)> fn) const {
    QDM_CHECK(valid()) << "Future::Then() on an invalid future";
    QDM_CHECK(fn != nullptr) << "Future::Then() given a null continuation";
    Promise<U> chained;
    Future<U> chained_future = chained.future();
    bool run_inline = false;
    {
      std::lock_guard<std::mutex> lock(state_->mutex);
      if (state_->result.has_value()) {
        run_inline = true;
      } else {
        state_->continuations.push_back(
            [chained, fn](const Result<T>& result) mutable {
              chained.Set(fn(result));
            });
      }
    }
    // Inline execution happens outside the lock: the continuation may
    // itself wait on or chain from this future.
    if (run_inline) chained.Set(fn(*state_->result));
    return chained_future;
  }

 private:
  friend class Promise<T>;
  explicit Future(std::shared_ptr<internal::FutureState<T>> state)
      : state_(std::move(state)) {}

  std::shared_ptr<internal::FutureState<T>> state_;
};

/// An already-resolved future (for immediate values / pre-validated errors).
template <typename T>
Future<T> MakeResolvedFuture(Result<T> result) {
  Promise<T> promise;
  promise.Set(std::move(result));
  return promise.future();
}

}  // namespace service
}  // namespace qdm

#endif  // QDM_SERVICE_FUTURE_H_
