#ifndef QDM_SERVICE_JOB_H_
#define QDM_SERVICE_JOB_H_

#include <chrono>
#include <cstdint>
#include <string>

#include "qdm/common/status.h"

namespace qdm {
namespace service {

/// Opaque handle for polling/waiting/cancelling a submitted job. Ids are
/// assigned in submission order starting at 1 and never reused within a
/// service instance; 0 is never a valid id.
using JobId = uint64_t;

/// Lifecycle of a job (see docs/service.md for the transition diagram):
///
///   kQueued ──> kRunning ──> kSucceeded | kFailed
///      │            │
///      │            ├──────> kCancelled          (Cancel observed)
///      │            └──────> kDeadlineExceeded   (deadline passed)
///      ├─────────────────────> kCancelled          (Cancel while queued)
///      └─────────────────────> kDeadlineExceeded   (expired in the queue)
///
/// The four right-hand states are terminal; a terminal job never changes
/// state again and its future is resolved exactly once.
enum class JobState {
  kQueued = 0,
  kRunning,
  kSucceeded,
  kFailed,
  kCancelled,
  kDeadlineExceeded,
};

/// Stable human-readable name ("Queued", "Running", ...).
const char* JobStateToString(JobState state);

/// Inverse of JobStateToString: resolves a stable state name back into the
/// enumerator (job snapshots travel by name through the qdm/net wire
/// protocol). Returns false for unknown names and leaves `state` untouched.
bool JobStateFromString(const std::string& name, JobState* state);

inline bool IsTerminalJobState(JobState state) {
  return state != JobState::kQueued && state != JobState::kRunning;
}

/// Point-in-time view of one job, returned by SolverService::Poll. `status`
/// is meaningful only once the state is terminal: Ok for kSucceeded, the
/// failure for kFailed, and Cancelled / DeadlineExceeded for the
/// corresponding states (the same Status the job's future resolved with).
struct JobSnapshot {
  JobId id = 0;
  JobState state = JobState::kQueued;
  Status status;
};

/// Per-submission knobs (orthogonal to the anneal::SolverOptions that tune
/// the backend itself).
struct SubmitOptions {
  /// Deadline measured from the Submit call; zero means none. A job whose
  /// deadline passes resolves DeadlineExceeded — whether it expired while
  /// queued, mid-run (checked between batch instances), or even when the
  /// backend finished after the deadline: a past-deadline job NEVER
  /// resolves kOk. Negative deadlines are InvalidArgument.
  std::chrono::nanoseconds deadline{0};
};

/// Construction-time configuration of a SolverService.
struct ServiceConfig {
  /// Maximum jobs executing concurrently (drained onto the process-wide
  /// ThreadPool::Shared(), so actual parallelism is additionally bounded by
  /// that pool's worker count). <= 0 means ThreadPool::DefaultNumThreads().
  int num_workers = 0;

  /// Admission control, high watermark: a Submit that would make the
  /// pending-queue depth exceed this is rejected with ResourceExhausted.
  /// 0 disables admission control (unbounded queue).
  int max_queue_depth = 1024;

  /// Admission control, low watermark: once a submission has been rejected,
  /// the service keeps rejecting until the queue drains to at most this
  /// depth (hysteresis — an overloaded service sheds a burst instead of
  /// oscillating at the boundary). <= 0 means max_queue_depth / 2; values
  /// >= max_queue_depth are clamped to max_queue_depth - 1.
  int resume_queue_depth = 0;
};

/// Monotonic counters (`submitted`, `rejected`, and the terminal counts)
/// plus point-in-time gauges (`queued`, `running`). Snapshots are taken
/// under the service lock, so within one snapshot the conservation law
///
///   queued + running + completed + cancelled + deadline_exceeded
///     == submitted
///
/// holds exactly at every instant (`rejected` submissions never become
/// jobs and are outside the equation).
struct ServiceStats {
  uint64_t submitted = 0;  ///< Jobs accepted into the queue.
  uint64_t rejected = 0;   ///< Submissions refused by admission control.
  uint64_t queued = 0;     ///< Currently waiting (gauge).
  uint64_t running = 0;    ///< Currently executing (gauge).
  uint64_t completed = 0;  ///< Terminal kSucceeded + kFailed.
  uint64_t cancelled = 0;  ///< Terminal kCancelled.
  uint64_t deadline_exceeded = 0;  ///< Terminal kDeadlineExceeded.
};

}  // namespace service
}  // namespace qdm

#endif  // QDM_SERVICE_JOB_H_
