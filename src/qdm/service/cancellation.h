#ifndef QDM_SERVICE_CANCELLATION_H_
#define QDM_SERVICE_CANCELLATION_H_

#include <atomic>
#include <memory>
#include <utility>

namespace qdm {
namespace service {

class CancellationSource;

/// Cooperative cancellation handle. Work holding a token polls
/// `cancelled()` at its natural checkpoints (the solver service checks
/// between batch instances) and winds down when it flips — nothing is ever
/// interrupted preemptively, so invariants held across a checkpoint stay
/// intact. Tokens are cheap copyable views; the flag lives as long as any
/// token or source referencing it.
class CancellationToken {
 public:
  /// A default-constructed token can never be cancelled (useful for code
  /// paths that take a token but have no caller to cancel them).
  CancellationToken() = default;

  bool cancelled() const {
    return flag_ != nullptr && flag_->load(std::memory_order_acquire);
  }

 private:
  friend class CancellationSource;
  explicit CancellationToken(std::shared_ptr<std::atomic<bool>> flag)
      : flag_(std::move(flag)) {}

  std::shared_ptr<std::atomic<bool>> flag_;
};

/// Producer side: owns the flag and flips it. One source fans out to any
/// number of tokens; cancellation is one-way and permanent.
class CancellationSource {
 public:
  CancellationSource() : flag_(std::make_shared<std::atomic<bool>>(false)) {}

  CancellationToken token() const { return CancellationToken(flag_); }

  void Cancel() { flag_->store(true, std::memory_order_release); }

  bool cancelled() const { return flag_->load(std::memory_order_acquire); }

 private:
  std::shared_ptr<std::atomic<bool>> flag_;
};

}  // namespace service
}  // namespace qdm

#endif  // QDM_SERVICE_CANCELLATION_H_
