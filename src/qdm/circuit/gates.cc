#include "qdm/circuit/gates.h"

#include <cmath>

#include "qdm/common/check.h"

namespace qdm {
namespace circuit {

namespace {
constexpr Complex kI0(0.0, 0.0);
constexpr Complex kR1(1.0, 0.0);
const double kInvSqrt2 = 1.0 / std::sqrt(2.0);
}  // namespace

int GateArity(GateKind kind) {
  switch (kind) {
    case GateKind::kI:
    case GateKind::kX:
    case GateKind::kY:
    case GateKind::kZ:
    case GateKind::kH:
    case GateKind::kS:
    case GateKind::kSdg:
    case GateKind::kT:
    case GateKind::kTdg:
    case GateKind::kRX:
    case GateKind::kRY:
    case GateKind::kRZ:
    case GateKind::kPhase:
    case GateKind::kU3:
      return 1;
    case GateKind::kCX:
    case GateKind::kCY:
    case GateKind::kCZ:
    case GateKind::kSwap:
    case GateKind::kCRZ:
    case GateKind::kCPhase:
    case GateKind::kRZZ:
      return 2;
    case GateKind::kCCX:
    case GateKind::kCSwap:
      return 3;
  }
  return 0;
}

int GateParamCount(GateKind kind) {
  switch (kind) {
    case GateKind::kRX:
    case GateKind::kRY:
    case GateKind::kRZ:
    case GateKind::kPhase:
    case GateKind::kCRZ:
    case GateKind::kCPhase:
    case GateKind::kRZZ:
      return 1;
    case GateKind::kU3:
      return 3;
    default:
      return 0;
  }
}

const char* GateName(GateKind kind) {
  switch (kind) {
    case GateKind::kI: return "id";
    case GateKind::kX: return "x";
    case GateKind::kY: return "y";
    case GateKind::kZ: return "z";
    case GateKind::kH: return "h";
    case GateKind::kS: return "s";
    case GateKind::kSdg: return "sdg";
    case GateKind::kT: return "t";
    case GateKind::kTdg: return "tdg";
    case GateKind::kRX: return "rx";
    case GateKind::kRY: return "ry";
    case GateKind::kRZ: return "rz";
    case GateKind::kPhase: return "p";
    case GateKind::kU3: return "u3";
    case GateKind::kCX: return "cx";
    case GateKind::kCY: return "cy";
    case GateKind::kCZ: return "cz";
    case GateKind::kSwap: return "swap";
    case GateKind::kCRZ: return "crz";
    case GateKind::kCPhase: return "cp";
    case GateKind::kRZZ: return "rzz";
    case GateKind::kCCX: return "ccx";
    case GateKind::kCSwap: return "cswap";
  }
  return "?";
}

linalg::Matrix SingleQubitMatrix(GateKind kind,
                                 const std::vector<double>& params) {
  QDM_CHECK_EQ(static_cast<size_t>(GateParamCount(kind)), params.size())
      << "wrong parameter count for gate " << GateName(kind);
  using linalg::Matrix;
  switch (kind) {
    case GateKind::kI:
      return Matrix{{kR1, kI0}, {kI0, kR1}};
    case GateKind::kX:
      return Matrix{{kI0, kR1}, {kR1, kI0}};
    case GateKind::kY:
      return Matrix{{kI0, Complex(0, -1)}, {Complex(0, 1), kI0}};
    case GateKind::kZ:
      return Matrix{{kR1, kI0}, {kI0, Complex(-1, 0)}};
    case GateKind::kH:
      return Matrix{{Complex(kInvSqrt2, 0), Complex(kInvSqrt2, 0)},
                    {Complex(kInvSqrt2, 0), Complex(-kInvSqrt2, 0)}};
    case GateKind::kS:
      return Matrix{{kR1, kI0}, {kI0, Complex(0, 1)}};
    case GateKind::kSdg:
      return Matrix{{kR1, kI0}, {kI0, Complex(0, -1)}};
    case GateKind::kT:
      return Matrix{{kR1, kI0}, {kI0, std::polar(1.0, M_PI / 4)}};
    case GateKind::kTdg:
      return Matrix{{kR1, kI0}, {kI0, std::polar(1.0, -M_PI / 4)}};
    case GateKind::kRX: {
      double t = params[0] / 2;
      return Matrix{{Complex(std::cos(t), 0), Complex(0, -std::sin(t))},
                    {Complex(0, -std::sin(t)), Complex(std::cos(t), 0)}};
    }
    case GateKind::kRY: {
      double t = params[0] / 2;
      return Matrix{{Complex(std::cos(t), 0), Complex(-std::sin(t), 0)},
                    {Complex(std::sin(t), 0), Complex(std::cos(t), 0)}};
    }
    case GateKind::kRZ: {
      double t = params[0] / 2;
      return Matrix{{std::polar(1.0, -t), kI0}, {kI0, std::polar(1.0, t)}};
    }
    case GateKind::kPhase:
      return Matrix{{kR1, kI0}, {kI0, std::polar(1.0, params[0])}};
    case GateKind::kU3: {
      double theta = params[0], phi = params[1], lambda = params[2];
      double c = std::cos(theta / 2), s = std::sin(theta / 2);
      return Matrix{{Complex(c, 0), std::polar(-s, lambda)},
                    {std::polar(s, phi), std::polar(c, phi + lambda)}};
    }
    default:
      QDM_CHECK(false) << GateName(kind) << " is not a single-qubit gate";
  }
  return linalg::Matrix();
}

}  // namespace circuit
}  // namespace qdm
