#ifndef QDM_CIRCUIT_GATES_H_
#define QDM_CIRCUIT_GATES_H_

#include <string>
#include <vector>

#include "qdm/linalg/matrix.h"

namespace qdm {
namespace circuit {

/// The gate vocabulary of the toolkit. Covers the standard gate set used by
/// the algorithms in scope (Grover, QAOA, VQE, QPE, VQC ansatze,
/// teleportation circuits).
enum class GateKind {
  // Single-qubit, fixed.
  kI,
  kX,
  kY,
  kZ,
  kH,
  kS,
  kSdg,
  kT,
  kTdg,
  // Single-qubit, parameterized (angle in params[0]; kU3 uses params[0..2]).
  kRX,
  kRY,
  kRZ,
  kPhase,
  kU3,
  // Two-qubit.
  kCX,
  kCY,
  kCZ,
  kSwap,
  kCRZ,
  kCPhase,
  kRZZ,
  // Three-qubit.
  kCCX,
  kCSwap,
};

/// Number of qubits the gate acts on.
int GateArity(GateKind kind);

/// Number of rotation parameters the gate takes (0, 1, or 3).
int GateParamCount(GateKind kind);

/// Lower-case mnemonic ("h", "cx", "rz", ...), matching OpenQASM names.
const char* GateName(GateKind kind);

/// 2x2 unitary for a single-qubit gate. `params` must match GateParamCount.
/// Convention: RX/RY/RZ(theta) = exp(-i theta P / 2);
/// Phase(l) = diag(1, e^{il});
/// U3(theta, phi, lambda) is the standard IBM parameterization.
linalg::Matrix SingleQubitMatrix(GateKind kind,
                                 const std::vector<double>& params);

}  // namespace circuit
}  // namespace qdm

#endif  // QDM_CIRCUIT_GATES_H_
