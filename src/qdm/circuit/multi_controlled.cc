#include "qdm/circuit/multi_controlled.h"

#include "qdm/common/check.h"

namespace qdm {
namespace circuit {

void AppendMultiControlledX(Circuit* c, const std::vector<int>& controls,
                            int target, const std::vector<int>& ancillas) {
  QDM_CHECK(!controls.empty());
  const int k = static_cast<int>(controls.size());
  if (k == 1) {
    c->CX(controls[0], target);
    return;
  }
  if (k == 2) {
    c->CCX(controls[0], controls[1], target);
    return;
  }
  QDM_CHECK_GE(static_cast<int>(ancillas.size()), k - 2)
      << "need " << k - 2 << " clean ancillas for " << k << " controls";

  // Compute ladder: anc[0] = c0 AND c1; anc[i] = anc[i-1] AND c[i+1].
  c->CCX(controls[0], controls[1], ancillas[0]);
  for (int i = 2; i < k - 1; ++i) {
    c->CCX(controls[i], ancillas[i - 2], ancillas[i - 1]);
  }
  // Apply: target ^= anc[k-3] AND c[k-1].
  c->CCX(controls[k - 1], ancillas[k - 3], target);
  // Uncompute the ladder.
  for (int i = k - 2; i >= 2; --i) {
    c->CCX(controls[i], ancillas[i - 2], ancillas[i - 1]);
  }
  c->CCX(controls[0], controls[1], ancillas[0]);
}

void AppendMultiControlledZ(Circuit* c, const std::vector<int>& controls,
                            int target, const std::vector<int>& ancillas) {
  if (controls.size() == 1) {
    c->CZ(controls[0], target);
    return;
  }
  c->H(target);
  AppendMultiControlledX(c, controls, target, ancillas);
  c->H(target);
}

}  // namespace circuit
}  // namespace qdm
