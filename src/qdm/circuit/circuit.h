#ifndef QDM_CIRCUIT_CIRCUIT_H_
#define QDM_CIRCUIT_CIRCUIT_H_

#include <string>
#include <vector>

#include "qdm/circuit/gates.h"

namespace qdm {
namespace circuit {

/// One gate application. `qubits` are simulator qubit indices; qubit 0 is the
/// least-significant bit of a basis-state index. For controlled gates the
/// controls come first and the target last (e.g. CX: {control, target}).
///
/// `param_ref` >= 0 marks the gate's angle as symbolic: it is resolved from an
/// external parameter vector by Circuit::BindParameters. Symbolic gates must
/// take exactly one parameter (the rotation gates).
struct Gate {
  GateKind kind;
  std::vector<int> qubits;
  std::vector<double> params;
  int param_ref = -1;
};

/// A straight-line quantum circuit (unitary; measurement is performed by the
/// simulator, not recorded as gates). Builder methods append gates and return
/// *this for chaining:
///
///   Circuit c(2);
///   c.H(0).CX(0, 1);   // Bell pair preparation
class Circuit {
 public:
  explicit Circuit(int num_qubits);

  int num_qubits() const { return num_qubits_; }
  const std::vector<Gate>& gates() const { return gates_; }
  size_t size() const { return gates_.size(); }

  // -- Fixed single-qubit gates ----------------------------------------------
  Circuit& I(int q) { return Append(GateKind::kI, {q}, {}); }
  Circuit& X(int q) { return Append(GateKind::kX, {q}, {}); }
  Circuit& Y(int q) { return Append(GateKind::kY, {q}, {}); }
  Circuit& Z(int q) { return Append(GateKind::kZ, {q}, {}); }
  Circuit& H(int q) { return Append(GateKind::kH, {q}, {}); }
  Circuit& S(int q) { return Append(GateKind::kS, {q}, {}); }
  Circuit& Sdg(int q) { return Append(GateKind::kSdg, {q}, {}); }
  Circuit& T(int q) { return Append(GateKind::kT, {q}, {}); }
  Circuit& Tdg(int q) { return Append(GateKind::kTdg, {q}, {}); }

  // -- Parameterized single-qubit gates --------------------------------------
  Circuit& RX(int q, double theta) {
    return Append(GateKind::kRX, {q}, {theta});
  }
  Circuit& RY(int q, double theta) {
    return Append(GateKind::kRY, {q}, {theta});
  }
  Circuit& RZ(int q, double theta) {
    return Append(GateKind::kRZ, {q}, {theta});
  }
  Circuit& Phase(int q, double lambda) {
    return Append(GateKind::kPhase, {q}, {lambda});
  }
  Circuit& U3(int q, double theta, double phi, double lambda) {
    return Append(GateKind::kU3, {q}, {theta, phi, lambda});
  }

  // -- Symbolic rotations (resolved by BindParameters) -----------------------
  Circuit& SymbolicRX(int q, int param_ref) {
    return AppendSymbolic(GateKind::kRX, {q}, param_ref);
  }
  Circuit& SymbolicRY(int q, int param_ref) {
    return AppendSymbolic(GateKind::kRY, {q}, param_ref);
  }
  Circuit& SymbolicRZ(int q, int param_ref) {
    return AppendSymbolic(GateKind::kRZ, {q}, param_ref);
  }

  // -- Multi-qubit gates ------------------------------------------------------
  Circuit& CX(int control, int target) {
    return Append(GateKind::kCX, {control, target}, {});
  }
  Circuit& CY(int control, int target) {
    return Append(GateKind::kCY, {control, target}, {});
  }
  Circuit& CZ(int control, int target) {
    return Append(GateKind::kCZ, {control, target}, {});
  }
  Circuit& Swap(int a, int b) { return Append(GateKind::kSwap, {a, b}, {}); }
  Circuit& CRZ(int control, int target, double theta) {
    return Append(GateKind::kCRZ, {control, target}, {theta});
  }
  Circuit& CPhase(int control, int target, double lambda) {
    return Append(GateKind::kCPhase, {control, target}, {lambda});
  }
  Circuit& RZZ(int a, int b, double theta) {
    return Append(GateKind::kRZZ, {a, b}, {theta});
  }
  Circuit& CCX(int c1, int c2, int target) {
    return Append(GateKind::kCCX, {c1, c2, target}, {});
  }
  Circuit& CSwap(int control, int a, int b) {
    return Append(GateKind::kCSwap, {control, a, b}, {});
  }

  /// Appends all gates of `other` (same qubit count required).
  Circuit& Compose(const Circuit& other);

  /// Number of distinct symbolic parameters referenced (max param_ref + 1).
  int num_parameters() const { return num_parameters_; }

  /// Returns a copy with every symbolic angle replaced by values[param_ref].
  Circuit BindParameters(const std::vector<double>& values) const;

  /// Multi-line OpenQASM-style listing ("h q[0]\ncx q[0],q[1]\n...").
  std::string ToString() const;

  /// Total two-qubit-or-larger gate count (a standard hardware-cost metric).
  int MultiQubitGateCount() const;

 private:
  Circuit& Append(GateKind kind, std::vector<int> qubits,
                  std::vector<double> params);
  Circuit& AppendSymbolic(GateKind kind, std::vector<int> qubits,
                          int param_ref);

  int num_qubits_;
  int num_parameters_ = 0;
  std::vector<Gate> gates_;
};

}  // namespace circuit
}  // namespace qdm

#endif  // QDM_CIRCUIT_CIRCUIT_H_
