#ifndef QDM_CIRCUIT_MULTI_CONTROLLED_H_
#define QDM_CIRCUIT_MULTI_CONTROLLED_H_

#include <vector>

#include "qdm/circuit/circuit.h"

namespace qdm {
namespace circuit {

/// Appends a multi-controlled X (k controls) to `c` using the standard
/// V-chain Toffoli ladder. For k <= 2 no ancillas are needed; for k >= 3 the
/// caller must provide k - 2 clean (|0>) ancilla qubits, which are returned
/// to |0> (the ladder is uncomputed).
void AppendMultiControlledX(Circuit* c, const std::vector<int>& controls,
                            int target, const std::vector<int>& ancillas);

/// Multi-controlled Z: phase-flips exactly the basis state where all controls
/// and the target are |1>. Implemented as H(target) MCX H(target).
void AppendMultiControlledZ(Circuit* c, const std::vector<int>& controls,
                            int target, const std::vector<int>& ancillas);

/// Number of clean ancillas AppendMultiControlledX/Z require for `k` controls.
inline int MultiControlledAncillaCount(int k) { return k <= 2 ? 0 : k - 2; }

}  // namespace circuit
}  // namespace qdm

#endif  // QDM_CIRCUIT_MULTI_CONTROLLED_H_
