#include "qdm/circuit/circuit.h"

#include <algorithm>

#include "qdm/common/check.h"
#include "qdm/common/strings.h"

namespace qdm {
namespace circuit {

Circuit::Circuit(int num_qubits) : num_qubits_(num_qubits) {
  QDM_CHECK_GT(num_qubits, 0);
}

Circuit& Circuit::Append(GateKind kind, std::vector<int> qubits,
                         std::vector<double> params) {
  QDM_CHECK_EQ(static_cast<size_t>(GateArity(kind)), qubits.size())
      << "wrong qubit count for " << GateName(kind);
  QDM_CHECK_EQ(static_cast<size_t>(GateParamCount(kind)), params.size())
      << "wrong param count for " << GateName(kind);
  for (size_t i = 0; i < qubits.size(); ++i) {
    QDM_CHECK(qubits[i] >= 0 && qubits[i] < num_qubits_)
        << "qubit " << qubits[i] << " out of range for " << num_qubits_
        << "-qubit circuit";
    for (size_t j = i + 1; j < qubits.size(); ++j) {
      QDM_CHECK_NE(qubits[i], qubits[j]) << "duplicate qubit in gate operands";
    }
  }
  gates_.push_back(Gate{kind, std::move(qubits), std::move(params), -1});
  return *this;
}

Circuit& Circuit::AppendSymbolic(GateKind kind, std::vector<int> qubits,
                                 int param_ref) {
  QDM_CHECK_GE(param_ref, 0);
  QDM_CHECK_EQ(GateParamCount(kind), 1)
      << "symbolic gates must take exactly one angle";
  Append(kind, std::move(qubits), {0.0});
  gates_.back().param_ref = param_ref;
  num_parameters_ = std::max(num_parameters_, param_ref + 1);
  return *this;
}

Circuit& Circuit::Compose(const Circuit& other) {
  QDM_CHECK_EQ(num_qubits_, other.num_qubits_);
  for (const Gate& g : other.gates_) {
    gates_.push_back(g);
    if (g.param_ref >= 0) {
      num_parameters_ = std::max(num_parameters_, g.param_ref + 1);
    }
  }
  return *this;
}

Circuit Circuit::BindParameters(const std::vector<double>& values) const {
  QDM_CHECK_GE(values.size(), static_cast<size_t>(num_parameters_))
      << "BindParameters: need " << num_parameters_ << " values";
  Circuit bound(num_qubits_);
  bound.gates_ = gates_;
  for (Gate& g : bound.gates_) {
    if (g.param_ref >= 0) {
      g.params[0] = values[g.param_ref];
      g.param_ref = -1;
    }
  }
  return bound;
}

std::string Circuit::ToString() const {
  std::string out;
  for (const Gate& g : gates_) {
    out += GateName(g.kind);
    if (!g.params.empty()) {
      out += "(";
      std::vector<std::string> ps;
      for (size_t i = 0; i < g.params.size(); ++i) {
        if (g.param_ref >= 0) {
          ps.push_back(StrFormat("theta[%d]", g.param_ref));
        } else {
          ps.push_back(StrFormat("%.6g", g.params[i]));
        }
      }
      out += StrJoin(ps, ",");
      out += ")";
    }
    out += " ";
    std::vector<std::string> qs;
    for (int q : g.qubits) qs.push_back(StrFormat("q[%d]", q));
    out += StrJoin(qs, ",");
    out += "\n";
  }
  return out;
}

int Circuit::MultiQubitGateCount() const {
  int count = 0;
  for (const Gate& g : gates_) {
    if (g.qubits.size() >= 2) ++count;
  }
  return count;
}

}  // namespace circuit
}  // namespace qdm
