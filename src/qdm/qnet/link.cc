#include "qdm/qnet/link.h"

#include <cmath>

#include "qdm/common/check.h"

namespace qdm {
namespace qnet {

FiberLink::FiberLink(FiberLinkConfig config) : config_(config) {
  QDM_CHECK_GT(config_.length_km, 0.0);
  QDM_CHECK_GT(config_.attempt_rate_hz, 0.0);
  QDM_CHECK(config_.initial_fidelity > 0.25 && config_.initial_fidelity <= 1.0);
}

double FiberLink::SuccessProbability() const {
  const double transmission = std::pow(
      10.0, -config_.attenuation_db_per_km * config_.length_km / 10.0);
  return config_.base_efficiency * transmission;
}

double FiberLink::AttemptDuration() const {
  const double heralding = config_.length_km / config_.speed_km_s;
  return std::max(1.0 / config_.attempt_rate_hz, heralding);
}

EprPair FiberLink::GenerateEntanglement(double now_s, Rng* rng) const {
  const double p = SuccessProbability();
  QDM_CHECK_GT(p, 0.0);
  // Geometric number of attempts.
  int64_t attempts = 1;
  while (!rng->Bernoulli(p)) ++attempts;
  EprPair pair;
  pair.fidelity = config_.initial_fidelity;
  pair.created_at_s = now_s + static_cast<double>(attempts) * AttemptDuration();
  return pair;
}

double FiberLink::ExpectedRateHz() const {
  return SuccessProbability() / AttemptDuration();
}

}  // namespace qnet
}  // namespace qdm
