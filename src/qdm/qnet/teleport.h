#ifndef QDM_QNET_TELEPORT_H_
#define QDM_QNET_TELEPORT_H_

#include "qdm/common/rng.h"
#include "qdm/qnet/entanglement.h"
#include "qdm/qnet/qubit.h"

namespace qdm {
namespace qnet {

struct TeleportResult {
  /// The qubit as it materializes at the receiver.
  Qubit received;
  /// Classical signalling delay (two bits over `distance_km`).
  double classical_latency_s = 0.0;
};

/// Quantum teleportation (Fig. 1c): consumes the payload qubit AND one EPR
/// pair; the payload re-appears at the far node after the two classical
/// correction bits arrive. Through a Werner pair of fidelity F the channel
/// acts as a depolarizing channel with parameter w = (4F-1)/3: with
/// probability w the state arrives intact, otherwise it is replaced by a
/// uniformly random Pauli corruption (averaging to the maximally mixed
/// state). The source handle is consumed -- the no-cloning theorem in
/// action: after Teleport() the sender provably holds nothing.
TeleportResult Teleport(Qubit&& payload, const EprPair& pair,
                        double distance_km, Rng* rng,
                        double classical_speed_km_s = 2.0e5);

/// Average teleportation fidelity through a Werner pair: (2F + 1) / 3.
double AverageTeleportFidelity(double pair_fidelity);

/// Gate-level teleportation on the 3-qubit simulator (payload + perfect
/// Bell pair), validating the protocol circuit itself: returns the fidelity
/// of the receiver qubit with the original payload (1.0 for a perfect pair).
double TeleportCircuitFidelity(Complex alpha, Complex beta, Rng* rng);

}  // namespace qnet
}  // namespace qdm

#endif  // QDM_QNET_TELEPORT_H_
