#ifndef QDM_QNET_E91_H_
#define QDM_QNET_E91_H_

#include "qdm/common/rng.h"

namespace qdm {
namespace qnet {

/// Ekert-91 entanglement-based key distribution: the direct bridge between
/// the paper's Sec IV-A (nonlocality, CHSH) and Sec IV-B (secure data
/// management). Alice and Bob share Bell pairs (e.g. delivered by the
/// repeater layer as Werner states of fidelity `pair_fidelity`); each round
/// both measure in a random basis from the standard E91 sets
///   Alice: {0, pi/4, pi/2},   Bob: {pi/4, pi/2, 3pi/4}  (X-Z plane angles).
/// Rounds with equal angles yield key bits; the CHSH subset estimates the
/// Bell statistic S. Any eavesdropping or decoherence drags S below the
/// Tsirelson value 2*sqrt(2); at or below the classical bound 2 the key is
/// not secret and the protocol aborts. Security is thus CERTIFIED BY
/// NONLOCALITY rather than assumed.
struct E91Config {
  int num_pairs = 4096;
  /// Werner fidelity of the delivered pairs (1.0 = ideal Bell pairs).
  double pair_fidelity = 1.0;
  /// Eve intercept-resends both halves in the Z basis.
  bool eavesdropper = false;
  /// Abort when the measured S falls to/below this (classical bound).
  double s_threshold = 2.0;
};

struct E91Result {
  /// Estimated CHSH statistic from the test rounds.
  double s_value = 0.0;
  int key_bits = 0;
  /// Error rate between Alice's and Bob's key bits.
  double qber = 0.0;
  bool aborted = false;
};

E91Result RunE91(const E91Config& config, Rng* rng);

/// Analytic S for Werner pairs with the E91 settings: S = w * 2 sqrt(2),
/// with Werner parameter w = (4F - 1)/3. Used for validation.
double ExpectedE91S(double pair_fidelity);

}  // namespace qnet
}  // namespace qdm

#endif  // QDM_QNET_E91_H_
