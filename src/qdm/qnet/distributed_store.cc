#include "qdm/qnet/distributed_store.h"

#include <algorithm>

#include "qdm/common/check.h"
#include "qdm/common/strings.h"

namespace qdm {
namespace qnet {

DistributedQuantumStore::DistributedQuantumStore(QuantumNetwork network,
                                                 Options options, Rng* rng)
    : network_(std::move(network)), options_(options), rng_(rng) {
  QDM_CHECK(rng != nullptr);
}

Status DistributedQuantumStore::PutClassical(int node, const std::string& key,
                                             std::string payload) {
  if (node < 0 || node >= network_.num_nodes()) {
    return Status::InvalidArgument("bad node id");
  }
  if (classical_.count(key) || quantum_.count(key)) {
    return Status::AlreadyExists("key already bound: " + key);
  }
  ClassicalObject object;
  object.payload = std::move(payload);
  object.locations.insert(node);
  classical_.emplace(key, std::move(object));
  return Status::Ok();
}

Status DistributedQuantumStore::ReplicateClassical(const std::string& key,
                                                   int target_node) {
  auto it = classical_.find(key);
  if (it == classical_.end()) {
    if (quantum_.count(key)) {
      return ReplicateQuantum(key, target_node);  // Typed no-cloning error.
    }
    return Status::NotFound("no classical object: " + key);
  }
  if (it->second.locations.count(target_node)) return Status::Ok();

  // Pick the nearest replica as the source.
  Result<std::vector<int>> best_route =
      Status::NotFound("no operational path to any replica");
  double best_length = 1e300;
  for (int source : it->second.locations) {
    Result<std::vector<int>> route = network_.Route(source, target_node);
    if (!route.ok()) continue;
    const double length = network_.RouteLength(*route);
    if (length < best_length) {
      best_length = length;
      best_route = route;
    }
  }
  QDM_RETURN_IF_ERROR(best_route.status());

  // Establish a one-time-pad key via BB84 across the route, then ship the
  // encrypted payload classically.
  const double needed_bits = 8.0 * it->second.payload.size();
  Bb84Config qkd;
  qkd.channel_error =
      std::min(0.5, options_.qkd_error_per_km * best_length);
  // Sifting keeps ~1/2 and sampling costs more: over-provision raw bits.
  qkd.num_raw_bits = static_cast<int>(needed_bits * 4) + 512;
  Bb84Result session = RunBb84(qkd, rng_);
  ++stats_.qkd_sessions;
  if (session.aborted || session.secure_key_bits < needed_bits) {
    return Status::FailedPrecondition(StrFormat(
        "QKD could not establish %d secure bits (got %.0f%s)",
        static_cast<int>(needed_bits), session.secure_key_bits,
        session.aborted ? ", aborted" : ""));
  }
  stats_.qkd_secure_bits += session.secure_key_bits;
  ++stats_.replications;
  it->second.locations.insert(target_node);
  return Status::Ok();
}

Result<std::set<int>> DistributedQuantumStore::ClassicalLocations(
    const std::string& key) const {
  auto it = classical_.find(key);
  if (it == classical_.end()) {
    return Status::NotFound("no classical object: " + key);
  }
  return it->second.locations;
}

Result<std::string> DistributedQuantumStore::ReadClassical(
    const std::string& key, int node) const {
  auto it = classical_.find(key);
  if (it == classical_.end()) {
    return Status::NotFound("no classical object: " + key);
  }
  if (!it->second.locations.count(node)) {
    return Status::FailedPrecondition(
        StrFormat("node %d holds no replica of %s", node, key.c_str()));
  }
  return it->second.payload;
}

Status DistributedQuantumStore::PutQuantum(int node, const std::string& key,
                                           Qubit qubit) {
  if (node < 0 || node >= network_.num_nodes()) {
    return Status::InvalidArgument("bad node id");
  }
  if (classical_.count(key) || quantum_.count(key)) {
    return Status::AlreadyExists("key already bound: " + key);
  }
  if (qubit.consumed()) {
    return Status::InvalidArgument("cannot store a consumed qubit");
  }
  QuantumObject object{std::move(qubit), Complex(0, 0), Complex(0, 0), node};
  object.reference_alpha = object.qubit.alpha();
  object.reference_beta = object.qubit.beta();
  quantum_.emplace(key, std::move(object));
  return Status::Ok();
}

Status DistributedQuantumStore::ReplicateQuantum(const std::string& key,
                                                 int /*target_node*/) {
  if (!quantum_.count(key)) {
    return Status::NotFound("no quantum object: " + key);
  }
  return Status::FailedPrecondition(
      "no-cloning theorem: quantum data cannot be replicated; "
      "use MigrateQuantum to move it");
}

Status DistributedQuantumStore::MigrateQuantum(const std::string& key,
                                               int target_node) {
  auto it = quantum_.find(key);
  if (it == quantum_.end()) {
    return Status::NotFound("no quantum object: " + key);
  }
  if (it->second.location == target_node) return Status::Ok();

  QDM_ASSIGN_OR_RETURN(std::vector<int> route,
                       network_.Route(it->second.location, target_node));
  QDM_ASSIGN_OR_RETURN(
      EprPair pair,
      network_.DistributeEntanglement(route, options_.memory_t_s,
                                      options_.swap_success, &now_s_, rng_));
  ++stats_.epr_pairs_consumed;

  TeleportResult teleported =
      Teleport(std::move(it->second.qubit), pair,
               network_.RouteLength(route), rng_);
  ++stats_.teleports;
  now_s_ += teleported.classical_latency_s;

  it->second.qubit = std::move(teleported.received);
  it->second.location = target_node;
  return Status::Ok();
}

Result<int> DistributedQuantumStore::QuantumLocation(
    const std::string& key) const {
  auto it = quantum_.find(key);
  if (it == quantum_.end()) {
    return Status::NotFound("no quantum object: " + key);
  }
  return it->second.location;
}

Result<double> DistributedQuantumStore::QuantumFidelity(
    const std::string& key) const {
  auto it = quantum_.find(key);
  if (it == quantum_.end()) {
    return Status::NotFound("no quantum object: " + key);
  }
  return it->second.qubit.FidelityWith(it->second.reference_alpha,
                                       it->second.reference_beta);
}

}  // namespace qnet
}  // namespace qdm
