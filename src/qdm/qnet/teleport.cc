#include "qdm/qnet/teleport.h"

#include <cmath>

#include "qdm/circuit/circuit.h"
#include "qdm/common/check.h"
#include "qdm/sim/statevector.h"

namespace qdm {
namespace qnet {

TeleportResult Teleport(Qubit&& payload, const EprPair& pair,
                        double distance_km, Rng* rng,
                        double classical_speed_km_s) {
  QDM_CHECK(!payload.consumed()) << "cannot teleport a consumed qubit";
  const Complex alpha = payload.alpha();
  const Complex beta = payload.beta();
  payload.Consume();  // The sender's state is destroyed by the BSM.

  Qubit received(alpha, beta);
  const double w = pair.werner();
  if (!rng->Bernoulli(std::max(0.0, w))) {
    // Depolarized: apply a uniformly random Pauli (I, X, Y, Z), which
    // averages to the maximally mixed state.
    const int pauli = static_cast<int>(rng->UniformInt(0, 3));
    using circuit::GateKind;
    const GateKind kinds[4] = {GateKind::kI, GateKind::kX, GateKind::kY,
                               GateKind::kZ};
    received.ApplyUnitary(circuit::SingleQubitMatrix(kinds[pauli], {}));
  }

  TeleportResult result{std::move(received),
                        distance_km / classical_speed_km_s};
  return result;
}

double AverageTeleportFidelity(double pair_fidelity) {
  return (2.0 * pair_fidelity + 1.0) / 3.0;
}

double TeleportCircuitFidelity(Complex alpha, Complex beta, Rng* rng) {
  // Qubits: 0 = payload, 1 = Alice's half, 2 = Bob's half.
  sim::Statevector sv = sim::Statevector::FromAmplitudes([&] {
    std::vector<Complex> amps(8, Complex(0, 0));
    amps[0] = alpha;  // |q0=alpha/beta> (x) |00>
    amps[1] = beta;
    return amps;
  }());

  circuit::Circuit bell(3);
  bell.H(1).CX(1, 2);
  sv.ApplyCircuit(bell);

  // Alice's Bell-state measurement basis change.
  circuit::Circuit bsm(3);
  bsm.CX(0, 1).H(0);
  sv.ApplyCircuit(bsm);

  const int m0 = sv.MeasureQubit(0, rng);
  const int m1 = sv.MeasureQubit(1, rng);

  // Bob's corrections: X^m1 then Z^m0.
  if (m1) {
    sv.Apply1Q(circuit::SingleQubitMatrix(circuit::GateKind::kX, {}), 2);
  }
  if (m0) {
    sv.Apply1Q(circuit::SingleQubitMatrix(circuit::GateKind::kZ, {}), 2);
  }

  // Compare Bob's qubit with the original payload. After measurement of
  // qubits 0 and 1 the state is a product; extract qubit 2's amplitudes.
  const uint64_t base =
      static_cast<uint64_t>(m0) | (static_cast<uint64_t>(m1) << 1);
  const Complex b0 = sv.amplitude(base);
  const Complex b1 = sv.amplitude(base | 4);
  const Complex overlap = std::conj(alpha) * b0 + std::conj(beta) * b1;
  return std::norm(overlap);
}

}  // namespace qnet
}  // namespace qdm
