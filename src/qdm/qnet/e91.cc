#include "qdm/qnet/e91.h"

#include <cmath>

#include "qdm/circuit/circuit.h"
#include "qdm/common/check.h"
#include "qdm/nonlocal/games.h"
#include "qdm/sim/statevector.h"

namespace qdm {
namespace qnet {

namespace {

using circuit::GateKind;
using circuit::SingleQubitMatrix;

sim::Statevector NoisyBellPair(double fidelity, Rng* rng) {
  circuit::Circuit c(2);
  c.H(0).CX(0, 1);
  sim::Statevector sv = sim::RunCircuit(c);
  // Trajectory realization of the Werner state: with probability 1 - w,
  // replace by a uniformly random Bell state via a random Pauli on one half
  // (averages to F |Phi+><Phi+| + (1-F)/3 * rest).
  const double w = (4.0 * fidelity - 1.0) / 3.0;
  if (!rng->Bernoulli(std::max(0.0, w))) {
    const GateKind paulis[4] = {GateKind::kI, GateKind::kX, GateKind::kY,
                                GateKind::kZ};
    sv.Apply1Q(SingleQubitMatrix(paulis[rng->UniformInt(0, 3)], {}), 1);
  }
  return sv;
}

}  // namespace

double ExpectedE91S(double pair_fidelity) {
  const double w = (4.0 * pair_fidelity - 1.0) / 3.0;
  return w * 2.0 * std::sqrt(2.0);
}

E91Result RunE91(const E91Config& config, Rng* rng) {
  QDM_CHECK_GT(config.num_pairs, 0);
  const double alice_angles[3] = {0.0, M_PI / 4, M_PI / 2};
  const double bob_angles[3] = {M_PI / 4, M_PI / 2, 3 * M_PI / 4};

  // CHSH correlator accumulators for the four test settings
  // (a in {0, pi/2}) x (b in {pi/4, 3pi/4}).
  double corr[2][2] = {{0, 0}, {0, 0}};
  int counts[2][2] = {{0, 0}, {0, 0}};
  int key_bits = 0, key_errors = 0;

  for (int round = 0; round < config.num_pairs; ++round) {
    sim::Statevector pair = NoisyBellPair(config.pair_fidelity, rng);

    if (config.eavesdropper) {
      // Intercept-resend in Z on both halves: collapses all correlations to
      // the computational basis.
      pair.MeasureQubit(0, rng);
      pair.MeasureQubit(1, rng);
    }

    const int a = static_cast<int>(rng->UniformInt(0, 2));
    const int b = static_cast<int>(rng->UniformInt(0, 2));
    pair.Apply1Q(nonlocal::MeasureInXZPlane(alice_angles[a]), 0);
    pair.Apply1Q(nonlocal::MeasureInXZPlane(bob_angles[b]), 1);
    const uint64_t outcome = pair.SampleBasisState(rng);
    const int alice_bit = outcome & 1;
    const int bob_bit = (outcome >> 1) & 1;

    if (alice_angles[a] == bob_angles[b]) {
      // Key round: |Phi+> correlates equal-angle measurements perfectly.
      ++key_bits;
      if (alice_bit != bob_bit) ++key_errors;
    } else if ((a == 0 || a == 2) && (b == 0 || b == 2)) {
      // CHSH test round.
      const int ai = a == 0 ? 0 : 1;
      const int bi = b == 0 ? 0 : 1;
      corr[ai][bi] += (alice_bit == bob_bit) ? 1.0 : -1.0;
      ++counts[ai][bi];
    }
  }

  E91Result result;
  auto expectation = [&](int ai, int bi) {
    return counts[ai][bi] > 0 ? corr[ai][bi] / counts[ai][bi] : 0.0;
  };
  // S = E(0, pi/4) - E(0, 3pi/4) + E(pi/2, pi/4) + E(pi/2, 3pi/4).
  result.s_value = expectation(0, 0) - expectation(0, 1) +
                   expectation(1, 0) + expectation(1, 1);
  result.key_bits = key_bits;
  result.qber = key_bits > 0 ? static_cast<double>(key_errors) / key_bits : 0.0;
  result.aborted = result.s_value <= config.s_threshold;
  if (result.aborted) result.key_bits = 0;
  return result;
}

}  // namespace qnet
}  // namespace qdm
