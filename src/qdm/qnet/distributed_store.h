#ifndef QDM_QNET_DISTRIBUTED_STORE_H_
#define QDM_QNET_DISTRIBUTED_STORE_H_

#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "qdm/common/status.h"
#include "qdm/qnet/network.h"
#include "qdm/qnet/qkd.h"
#include "qdm/qnet/qubit.h"
#include "qdm/qnet/teleport.h"

namespace qdm {
namespace qnet {

/// The forward-looking data layer of Sec IV-B: a key-value store spanning
/// quantum-internet nodes that manages BOTH classical and quantum payloads
/// under the asymmetry the paper highlights:
///
///  * classical objects can be freely REPLICATED; transfers are secured by
///    BB84 keys established over the quantum network (one key bit per
///    payload bit, one-time-pad style);
///  * quantum objects obey no-cloning: replication is a typed error; the
///    only placement change is MIGRATION by teleportation, which consumes
///    one routed EPR pair and destroys the source.
class DistributedQuantumStore {
 public:
  struct Options {
    double memory_t_s = 1.0;
    double swap_success = 0.9;
    /// Channel error assumed for QKD sessions (per km scaling keeps it
    /// simple: error = min(0.5, qkd_error_per_km * route_km)).
    double qkd_error_per_km = 0.0002;
  };

  /// `network` is copied in; `rng` must outlive the store.
  DistributedQuantumStore(QuantumNetwork network, Options options, Rng* rng);

  QuantumNetwork& network() { return network_; }

  // -- Classical objects ------------------------------------------------------

  Status PutClassical(int node, const std::string& key, std::string payload);

  /// Replicates the classical object to `target_node` over a QKD-secured
  /// channel. Fails when no key material can be established (eavesdropped
  /// or partitioned route).
  Status ReplicateClassical(const std::string& key, int target_node);

  /// Nodes currently holding a replica.
  Result<std::set<int>> ClassicalLocations(const std::string& key) const;
  Result<std::string> ReadClassical(const std::string& key, int node) const;

  // -- Quantum objects --------------------------------------------------------

  Status PutQuantum(int node, const std::string& key, Qubit qubit);

  /// ALWAYS fails with FailedPrecondition: the no-cloning theorem forbids
  /// copying quantum data. Exists so callers get a typed, documented error
  /// rather than silent misbehaviour.
  Status ReplicateQuantum(const std::string& key, int target_node);

  /// Moves the quantum object by teleportation: routes entanglement to the
  /// target, runs the teleport protocol (consuming the source), and stores
  /// the received qubit at the target node.
  Status MigrateQuantum(const std::string& key, int target_node);

  Result<int> QuantumLocation(const std::string& key) const;

  /// Fidelity of the stored qubit against the payload originally written
  /// (degrades stochastically with every migration over imperfect pairs).
  Result<double> QuantumFidelity(const std::string& key) const;

  // -- Accounting -------------------------------------------------------------

  struct Stats {
    int teleports = 0;
    int epr_pairs_consumed = 0;
    double qkd_secure_bits = 0.0;
    int qkd_sessions = 0;
    int replications = 0;
  };
  const Stats& stats() const { return stats_; }
  double now_s() const { return now_s_; }

 private:
  struct ClassicalObject {
    std::string payload;
    std::set<int> locations;
  };
  struct QuantumObject {
    Qubit qubit;
    Complex reference_alpha;
    Complex reference_beta;
    int location = 0;
  };

  QuantumNetwork network_;
  Options options_;
  Rng* rng_;
  double now_s_ = 0.0;
  Stats stats_;
  std::map<std::string, ClassicalObject> classical_;
  std::map<std::string, QuantumObject> quantum_;
};

}  // namespace qnet
}  // namespace qdm

#endif  // QDM_QNET_DISTRIBUTED_STORE_H_
