#include "qdm/qnet/entanglement.h"

#include <cmath>

#include "qdm/common/check.h"

namespace qdm {
namespace qnet {

double DecayedFidelity(double fidelity, double elapsed_s, double memory_t_s) {
  QDM_CHECK_GE(elapsed_s, 0.0);
  QDM_CHECK_GT(memory_t_s, 0.0);
  const double w = (4.0 * fidelity - 1.0) / 3.0;
  const double decayed = w * std::exp(-elapsed_s / memory_t_s);
  return (1.0 + 3.0 * decayed) / 4.0;
}

double SwapFidelity(double f1, double f2) {
  const double w1 = (4.0 * f1 - 1.0) / 3.0;
  const double w2 = (4.0 * f2 - 1.0) / 3.0;
  return (1.0 + 3.0 * w1 * w2) / 4.0;
}

double PurifyFidelity(double f1, double f2, double* success_probability) {
  // BBPSSW on Werner states (Bennett et al. '96). Writing G = (1-F)/3 for
  // the weight of each non-target Bell component:
  //   p_success = F1 F2 + F1 G2 + G1 F2 + 5 G1 G2
  //   F_out     = (F1 F2 + G1 G2) / p_success
  const double g1 = (1.0 - f1) / 3.0;
  const double g2 = (1.0 - f2) / 3.0;
  const double p = f1 * f2 + f1 * g2 + g1 * f2 + 5.0 * g1 * g2;
  QDM_CHECK_GT(p, 0.0);
  if (success_probability != nullptr) *success_probability = p;
  return (f1 * f2 + g1 * g2) / p;
}

bool AttemptPurification(EprPair* target, const EprPair& sacrifice, Rng* rng) {
  double p = 0.0;
  const double improved =
      PurifyFidelity(target->fidelity, sacrifice.fidelity, &p);
  if (!rng->Bernoulli(p)) return false;
  target->fidelity = improved;
  return true;
}

}  // namespace qnet
}  // namespace qdm
