#include "qdm/qnet/network.h"

#include <algorithm>
#include <limits>
#include <queue>

#include "qdm/common/check.h"
#include "qdm/common/strings.h"

namespace qdm {
namespace qnet {

namespace {
std::pair<int, int> Key(int a, int b) {
  return {std::min(a, b), std::max(a, b)};
}
}  // namespace

int QuantumNetwork::AddNode(std::string name) {
  node_names_.push_back(std::move(name));
  return static_cast<int>(node_names_.size()) - 1;
}

const std::string& QuantumNetwork::node_name(int id) const {
  QDM_CHECK(id >= 0 && id < num_nodes());
  return node_names_[id];
}

Status QuantumNetwork::AddLink(int a, int b, FiberLinkConfig config) {
  if (a < 0 || a >= num_nodes() || b < 0 || b >= num_nodes() || a == b) {
    return Status::InvalidArgument("bad link endpoints");
  }
  if (links_.count(Key(a, b))) {
    return Status::AlreadyExists("link already present");
  }
  links_[Key(a, b)] = config;
  return Status::Ok();
}

bool QuantumNetwork::HasLink(int a, int b) const {
  return links_.count(Key(a, b)) > 0;
}

Status QuantumNetwork::SetLinkUp(int a, int b, bool up) {
  if (!HasLink(a, b)) return Status::NotFound("no such link");
  if (up) {
    down_.erase(Key(a, b));
  } else {
    down_.insert(Key(a, b));
  }
  return Status::Ok();
}

const FiberLinkConfig* QuantumNetwork::LinkConfig(int a, int b) const {
  auto it = links_.find(Key(a, b));
  return it == links_.end() ? nullptr : &it->second;
}

Result<std::vector<int>> QuantumNetwork::Route(int a, int b) const {
  if (a < 0 || a >= num_nodes() || b < 0 || b >= num_nodes()) {
    return Status::InvalidArgument("bad route endpoints");
  }
  if (a == b) return std::vector<int>{a};

  const double kInf = std::numeric_limits<double>::infinity();
  std::vector<double> dist(num_nodes(), kInf);
  std::vector<int> prev(num_nodes(), -1);
  using Entry = std::pair<double, int>;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<Entry>> queue;
  dist[a] = 0.0;
  queue.push({0.0, a});
  while (!queue.empty()) {
    auto [d, u] = queue.top();
    queue.pop();
    if (d > dist[u]) continue;
    for (const auto& [key, config] : links_) {
      int v = -1;
      if (key.first == u) v = key.second;
      if (key.second == u) v = key.first;
      if (v < 0 || down_.count(key)) continue;
      const double nd = d + config.length_km;
      if (nd < dist[v]) {
        dist[v] = nd;
        prev[v] = u;
        queue.push({nd, v});
      }
    }
  }
  if (dist[b] == kInf) {
    return Status::NotFound(StrFormat("no operational path %s -> %s",
                                      node_name(a).c_str(),
                                      node_name(b).c_str()));
  }
  std::vector<int> route;
  for (int at = b; at != -1; at = prev[at]) route.push_back(at);
  std::reverse(route.begin(), route.end());
  return route;
}

double QuantumNetwork::RouteLength(const std::vector<int>& route) const {
  double total = 0.0;
  for (size_t i = 0; i + 1 < route.size(); ++i) {
    const FiberLinkConfig* config = LinkConfig(route[i], route[i + 1]);
    QDM_CHECK(config != nullptr);
    total += config->length_km;
  }
  return total;
}

Result<EprPair> QuantumNetwork::DistributeEntanglement(
    const std::vector<int>& route, double memory_t_s, double swap_success,
    double* now_s, Rng* rng) const {
  if (route.size() < 2) {
    return Status::InvalidArgument("route must span at least one link");
  }
  for (size_t i = 0; i + 1 < route.size(); ++i) {
    if (!HasLink(route[i], route[i + 1]) ||
        down_.count(Key(route[i], route[i + 1]))) {
      return Status::FailedPrecondition("route contains a down link");
    }
  }

  // Retry full-route attempts until every swap succeeds.
  while (true) {
    std::vector<EprPair> pairs;
    double ready_at = *now_s;
    for (size_t i = 0; i + 1 < route.size(); ++i) {
      const FiberLink link(*LinkConfig(route[i], route[i + 1]));
      pairs.push_back(link.GenerateEntanglement(*now_s, rng));
      ready_at = std::max(ready_at, pairs.back().created_at_s);
    }
    double f = DecayedFidelity(pairs[0].fidelity,
                               ready_at - pairs[0].created_at_s, memory_t_s);
    bool ok = true;
    for (size_t i = 1; i < pairs.size(); ++i) {
      const double fi = DecayedFidelity(
          pairs[i].fidelity, ready_at - pairs[i].created_at_s, memory_t_s);
      if (!rng->Bernoulli(swap_success)) {
        ok = false;
        break;
      }
      f = SwapFidelity(f, fi);
    }
    *now_s = ready_at;
    if (ok) {
      EprPair out;
      out.fidelity = f;
      out.created_at_s = ready_at;
      return out;
    }
  }
}

}  // namespace qnet
}  // namespace qdm
