#ifndef QDM_QNET_REPEATER_H_
#define QDM_QNET_REPEATER_H_

#include "qdm/common/rng.h"
#include "qdm/qnet/link.h"

namespace qdm {
namespace qnet {

/// End-to-end entanglement distribution over a chain of `num_repeaters`
/// equally spaced repeater stations (Fig. 1c is the num_repeaters = 1 case).
struct ChainConfig {
  double total_distance_km = 100.0;
  int num_repeaters = 1;
  /// Per-segment fiber parameters (length is filled in from the chain).
  FiberLinkConfig link;
  /// Quantum-memory depolarization time constant at the repeaters.
  double memory_t_s = 1.0;
  /// Bell-state-measurement success probability per swap.
  double swap_success = 0.9;
  /// Purify each segment pair with one BBPSSW round before swapping
  /// (costs an extra pair per segment; raises fidelity).
  bool purify_segments = false;
};

struct DistributionStats {
  /// Delivered end-to-end pairs per second.
  double rate_hz = 0.0;
  /// Mean fidelity of delivered pairs.
  double mean_fidelity = 0.0;
  int pairs_delivered = 0;
  double simulated_seconds = 0.0;
};

/// Monte-Carlo protocol simulation: segments generate pairs independently
/// (geometric waiting times); when adjacent pairs are both ready the
/// repeater swaps (memory decay applies to the earlier pair while it waits;
/// failed swaps discard both pairs and restart the two segments). Runs until
/// `target_pairs` deliveries or `max_seconds` of simulated time.
DistributionStats SimulateChain(const ChainConfig& config, int target_pairs,
                                double max_seconds, Rng* rng);

/// Baseline: direct generation over the full distance with no repeater
/// (single fiber of total_distance_km). The exponential loss makes this
/// collapse beyond ~a few hundred km -- the reason repeaters exist.
DistributionStats SimulateDirect(const ChainConfig& config, int target_pairs,
                                 double max_seconds, Rng* rng);

}  // namespace qnet
}  // namespace qdm

#endif  // QDM_QNET_REPEATER_H_
