#ifndef QDM_QNET_QKD_H_
#define QDM_QNET_QKD_H_

#include <vector>

#include "qdm/common/rng.h"

namespace qdm {
namespace qnet {

/// BB84 quantum key distribution (the secure-communication primitive of
/// Sec IV-B, Bennett & Brassard '84). Each raw bit is an actual single-qubit
/// simulation: Alice prepares |0>/|1>/|+>/|-> per her bit and basis, the
/// channel depolarizes, an optional eavesdropper intercept-resends, Bob
/// measures in a random basis. Sifting keeps matching-basis rounds; a sample
/// of sifted bits estimates the QBER; the protocol aborts above
/// `abort_qber`.
struct Bb84Config {
  int num_raw_bits = 4096;
  /// Physical channel error rate (bit-flip probability in the chosen basis).
  double channel_error = 0.01;
  /// Eve performs intercept-resend on every qubit (induces ~25% QBER).
  bool eavesdropper = false;
  /// Fraction of sifted bits sacrificed to estimate the QBER.
  double sample_fraction = 0.3;
  /// Abort threshold (the standard BB84 hard limit is ~11%).
  double abort_qber = 0.11;
};

struct Bb84Result {
  int sifted_bits = 0;
  double estimated_qber = 0.0;
  /// True error rate on the non-sampled sifted key (for validation).
  double actual_error_rate = 0.0;
  bool aborted = false;
  /// Asymptotic secure bits: sifted * (1 - 2 h2(QBER)), 0 when aborted.
  double secure_key_bits = 0.0;
  /// The agreed key (Alice's view, after removing sampled bits); empty when
  /// aborted.
  std::vector<int> key;
};

/// Binary entropy h2(p).
double BinaryEntropy(double p);

Bb84Result RunBb84(const Bb84Config& config, Rng* rng);

}  // namespace qnet
}  // namespace qdm

#endif  // QDM_QNET_QKD_H_
