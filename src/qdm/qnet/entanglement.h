#ifndef QDM_QNET_ENTANGLEMENT_H_
#define QDM_QNET_ENTANGLEMENT_H_

#include "qdm/common/rng.h"

namespace qdm {
namespace qnet {

/// An entangled pair in the Werner-state model: the two-qubit state
///   rho = w |Phi+><Phi+| + (1-w) I/4,
/// parameterized here by its fidelity F = <Phi+|rho|Phi+> = (1+3w)/4.
/// All protocol algebra (memory decay, swapping, purification, teleportation)
/// has closed forms for Werner states; each one is validated against the
/// exact density-matrix simulator in tests.
struct EprPair {
  double fidelity = 1.0;
  /// Simulation time (seconds) when the pair was created.
  double created_at_s = 0.0;

  /// Werner parameter w = (4F - 1) / 3.
  double werner() const { return (4.0 * fidelity - 1.0) / 3.0; }
};

/// Fidelity after `elapsed_s` seconds in imperfect quantum memory: the
/// Werner parameter decays exponentially with time constant `memory_t_s`
/// (depolarization toward the maximally mixed state, F -> 1/4).
double DecayedFidelity(double fidelity, double elapsed_s, double memory_t_s);

/// Entanglement swapping at a repeater (Fig. 1c): a Bell-state measurement
/// fuses pairs A-R and R-B into A-B. For Werner inputs the output Werner
/// parameter is the product w_out = w1 * w2.
double SwapFidelity(double f1, double f2);

/// One round of BBPSSW purification on two Werner pairs of fidelities f1,
/// f2. On success (probability `*success_probability`) the surviving pair
/// has the returned fidelity; on failure both pairs are lost.
double PurifyFidelity(double f1, double f2, double* success_probability);

/// Samples a purification round; returns true on success.
bool AttemptPurification(EprPair* target, const EprPair& sacrifice, Rng* rng);

}  // namespace qnet
}  // namespace qdm

#endif  // QDM_QNET_ENTANGLEMENT_H_
