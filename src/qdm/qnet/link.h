#ifndef QDM_QNET_LINK_H_
#define QDM_QNET_LINK_H_

#include "qdm/common/rng.h"
#include "qdm/qnet/entanglement.h"

namespace qdm {
namespace qnet {

/// Heralded entanglement generation over an optical fiber segment, the
/// elementary hardware of Fig. 1c. Parameters follow the standard fiber
/// model used for the 248 km experiment the paper cites [Neumann et al.,
/// Nature Comm '22]: photon survival decays exponentially with length at
/// `attenuation_db_per_km` (0.2 dB/km telecom fiber).
struct FiberLinkConfig {
  double length_km = 50.0;
  double attenuation_db_per_km = 0.2;
  /// Combined source + detector efficiency at zero distance.
  double base_efficiency = 0.8;
  /// Entanglement-generation attempt rate (heralding limits one attempt per
  /// photon round trip; sources can be slower).
  double attempt_rate_hz = 1e6;
  /// Fidelity of a freshly generated pair.
  double initial_fidelity = 0.98;
  /// Speed of light in fiber, km/s.
  double speed_km_s = 2.0e5;
};

class FiberLink {
 public:
  explicit FiberLink(FiberLinkConfig config);

  const FiberLinkConfig& config() const { return config_; }

  /// Per-attempt success probability: base_efficiency * 10^(-alpha L / 10).
  double SuccessProbability() const;

  /// Seconds per heralded attempt: max(1/rate, round trip L/c).
  double AttemptDuration() const;

  /// Samples the time (seconds) until the next successful pair and returns
  /// the pair, stamped with `now_s + waiting time`. Geometric in the number
  /// of attempts.
  EprPair GenerateEntanglement(double now_s, Rng* rng) const;

  /// Expected pairs per second (success probability / attempt duration).
  double ExpectedRateHz() const;

 private:
  FiberLinkConfig config_;
};

}  // namespace qnet
}  // namespace qdm

#endif  // QDM_QNET_LINK_H_
