#ifndef QDM_QNET_NETWORK_H_
#define QDM_QNET_NETWORK_H_

#include <map>
#include <set>
#include <string>
#include <vector>

#include "qdm/common/status.h"
#include "qdm/qnet/link.h"
#include "qdm/qnet/repeater.h"

namespace qdm {
namespace qnet {

/// A quantum internet topology: named nodes connected by fiber links. Nodes
/// double as repeater stations for entanglement routed through them
/// (Fig. 1c generalized to arbitrary graphs). Links can be marked down to
/// study fault tolerance and rerouting (Sec IV-B(2)).
class QuantumNetwork {
 public:
  QuantumNetwork() = default;

  int AddNode(std::string name);
  int num_nodes() const { return static_cast<int>(node_names_.size()); }
  const std::string& node_name(int id) const;

  Status AddLink(int a, int b, FiberLinkConfig config);
  bool HasLink(int a, int b) const;

  /// Marks a link up/down (fault injection).
  Status SetLinkUp(int a, int b, bool up);

  /// Shortest operational path (by fiber length) between two nodes.
  Result<std::vector<int>> Route(int a, int b) const;

  /// Total fiber length of a route.
  double RouteLength(const std::vector<int>& route) const;

  /// Generates one end-to-end pair along the (possibly heterogeneous) route:
  /// per-hop generation, memory decay while waiting, swapping at each
  /// intermediate node. Advances *now_s.
  Result<EprPair> DistributeEntanglement(const std::vector<int>& route,
                                         double memory_t_s,
                                         double swap_success, double* now_s,
                                         Rng* rng) const;

 private:
  const FiberLinkConfig* LinkConfig(int a, int b) const;

  std::vector<std::string> node_names_;
  std::map<std::pair<int, int>, FiberLinkConfig> links_;
  std::set<std::pair<int, int>> down_;
};

}  // namespace qnet
}  // namespace qdm

#endif  // QDM_QNET_NETWORK_H_
