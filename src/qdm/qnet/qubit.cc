#include "qdm/qnet/qubit.h"

#include <cmath>

#include "qdm/common/rng.h"

namespace qdm {
namespace qnet {

Qubit::Qubit(Complex alpha, Complex beta) : alpha_(alpha), beta_(beta) {
  const double norm = std::norm(alpha) + std::norm(beta);
  QDM_CHECK(std::abs(norm - 1.0) < 1e-9) << "qubit state must be normalized";
}

Qubit Qubit::FromAngles(double theta, double phi) {
  return Qubit(Complex(std::cos(theta / 2), 0),
               std::polar(std::sin(theta / 2), phi));
}

Qubit::Qubit(Qubit&& other) noexcept
    : alpha_(other.alpha_), beta_(other.beta_), consumed_(other.consumed_) {
  other.consumed_ = true;  // The moved-from handle no longer owns a state.
}

Qubit& Qubit::operator=(Qubit&& other) noexcept {
  alpha_ = other.alpha_;
  beta_ = other.beta_;
  consumed_ = other.consumed_;
  other.consumed_ = true;
  return *this;
}

double Qubit::FidelityWith(Complex a, Complex b) const {
  QDM_CHECK(!consumed_) << "qubit was consumed (no-cloning!)";
  const Complex overlap = std::conj(a) * alpha_ + std::conj(b) * beta_;
  return std::norm(overlap);
}

void Qubit::ApplyUnitary(const linalg::Matrix& u) {
  QDM_CHECK(!consumed_) << "qubit was consumed (no-cloning!)";
  QDM_CHECK(u.rows() == 2 && u.cols() == 2);
  const Complex a = u(0, 0) * alpha_ + u(0, 1) * beta_;
  const Complex b = u(1, 0) * alpha_ + u(1, 1) * beta_;
  alpha_ = a;
  beta_ = b;
}

int Qubit::Measure(Rng* rng) && {
  QDM_CHECK(!consumed_) << "qubit was consumed (no-cloning!)";
  consumed_ = true;
  return rng->Bernoulli(std::norm(beta_)) ? 1 : 0;
}

}  // namespace qnet
}  // namespace qdm
