#include "qdm/qnet/repeater.h"

#include <algorithm>
#include <vector>

#include "qdm/common/check.h"

namespace qdm {
namespace qnet {

namespace {

/// Generates one end-to-end pair along the chain; returns its fidelity and
/// advances *now_s. Returns false if the attempt budget (time limit) burst.
bool DeliverOnePair(const ChainConfig& config, double max_seconds,
                    double* now_s, double* fidelity, Rng* rng) {
  const int segments = config.num_repeaters + 1;
  FiberLinkConfig seg_config = config.link;
  seg_config.length_km = config.total_distance_km / segments;
  const FiberLink link(seg_config);

  while (*now_s < max_seconds) {
    // Generate pairs on all segments in parallel; the chain is ready at the
    // time the slowest segment finishes.
    std::vector<EprPair> pairs(segments);
    double ready_at = *now_s;
    for (int s = 0; s < segments; ++s) {
      pairs[s] = link.GenerateEntanglement(*now_s, rng);
      if (config.purify_segments) {
        // One BBPSSW round with a second pair from the same segment.
        EprPair sacrifice = link.GenerateEntanglement(*now_s, rng);
        sacrifice.created_at_s = std::max(sacrifice.created_at_s,
                                          pairs[s].created_at_s);
        if (AttemptPurification(&pairs[s], sacrifice, rng)) {
          pairs[s].created_at_s = sacrifice.created_at_s;
        } else {
          // Purification failure destroys the pair: regenerate plainly.
          pairs[s] = link.GenerateEntanglement(sacrifice.created_at_s, rng);
        }
      }
      ready_at = std::max(ready_at, pairs[s].created_at_s);
    }

    // Swap left-to-right at each repeater; pairs that waited decay.
    double f = pairs[0].fidelity;
    f = DecayedFidelity(f, ready_at - pairs[0].created_at_s, config.memory_t_s);
    bool all_swaps_ok = true;
    for (int r = 1; r < segments; ++r) {
      double fr = DecayedFidelity(pairs[r].fidelity,
                                  ready_at - pairs[r].created_at_s,
                                  config.memory_t_s);
      if (!rng->Bernoulli(config.swap_success)) {
        all_swaps_ok = false;
        break;
      }
      f = SwapFidelity(f, fr);
    }
    *now_s = ready_at;
    if (all_swaps_ok) {
      *fidelity = f;
      return true;
    }
    // Swap failure: all resources lost; retry from scratch.
  }
  return false;
}

}  // namespace

DistributionStats SimulateChain(const ChainConfig& config, int target_pairs,
                                double max_seconds, Rng* rng) {
  QDM_CHECK_GE(config.num_repeaters, 0);
  QDM_CHECK_GT(target_pairs, 0);
  DistributionStats stats;
  double now = 0.0;
  double fidelity_sum = 0.0;
  while (stats.pairs_delivered < target_pairs && now < max_seconds) {
    double f = 0.0;
    if (!DeliverOnePair(config, max_seconds, &now, &f, rng)) break;
    ++stats.pairs_delivered;
    fidelity_sum += f;
  }
  stats.simulated_seconds = now;
  if (stats.pairs_delivered > 0) {
    stats.mean_fidelity = fidelity_sum / stats.pairs_delivered;
    stats.rate_hz = stats.pairs_delivered / std::max(now, 1e-12);
  }
  return stats;
}

DistributionStats SimulateDirect(const ChainConfig& config, int target_pairs,
                                 double max_seconds, Rng* rng) {
  ChainConfig direct = config;
  direct.num_repeaters = 0;
  return SimulateChain(direct, target_pairs, max_seconds, rng);
}

}  // namespace qnet
}  // namespace qdm
