#ifndef QDM_QNET_QUBIT_H_
#define QDM_QNET_QUBIT_H_

#include <utility>

#include "qdm/common/check.h"
#include "qdm/common/rng.h"
#include "qdm/linalg/matrix.h"

namespace qdm {
namespace qnet {

/// A physical qubit payload travelling through the quantum internet: a pure
/// single-qubit state alpha|0> + beta|1>.
///
/// The type is MOVE-ONLY. This is the no-cloning theorem of Sec IV-B made
/// into an API contract: quantum data cannot be copied, only moved
/// (teleported) -- attempting to copy a Qubit is a compile error, and the
/// distributed store below therefore supports replication only for classical
/// payloads. A consumed (teleported/measured) qubit traps further use.
class Qubit {
 public:
  Qubit(Complex alpha, Complex beta);

  /// |psi> = |0>.
  static Qubit Zero() { return Qubit(Complex(1, 0), Complex(0, 0)); }
  /// |psi> = cos(theta/2)|0> + sin(theta/2)|1> with relative phase phi.
  static Qubit FromAngles(double theta, double phi);

  // No-cloning: copying is forbidden; moving transfers ownership and leaves
  // the source consumed.
  Qubit(const Qubit&) = delete;
  Qubit& operator=(const Qubit&) = delete;
  Qubit(Qubit&& other) noexcept;
  Qubit& operator=(Qubit&& other) noexcept;

  bool consumed() const { return consumed_; }

  Complex alpha() const {
    QDM_CHECK(!consumed_) << "qubit was consumed (no-cloning!)";
    return alpha_;
  }
  Complex beta() const {
    QDM_CHECK(!consumed_) << "qubit was consumed (no-cloning!)";
    return beta_;
  }

  /// |<this|other>|^2 against a reference pure state (a, b).
  double FidelityWith(Complex a, Complex b) const;

  /// Applies a single-qubit unitary in place.
  void ApplyUnitary(const linalg::Matrix& u);

  /// Destructively measures in the Z basis; consumes the qubit.
  int Measure(Rng* rng) &&;

  /// Marks the qubit consumed (used by teleportation, which destroys the
  /// source state as the no-cloning theorem demands).
  void Consume() { consumed_ = true; }

 private:
  Complex alpha_;
  Complex beta_;
  bool consumed_ = false;
};

}  // namespace qnet
}  // namespace qdm

#endif  // QDM_QNET_QUBIT_H_
