#include "qdm/qnet/qkd.h"

#include <cmath>

#include "qdm/circuit/circuit.h"
#include "qdm/common/check.h"
#include "qdm/sim/statevector.h"

namespace qdm {
namespace qnet {

double BinaryEntropy(double p) {
  if (p <= 0.0 || p >= 1.0) return 0.0;
  return -p * std::log2(p) - (1 - p) * std::log2(1 - p);
}

namespace {

using circuit::GateKind;
using circuit::SingleQubitMatrix;

/// Prepares bit `b` in basis `basis` (0 = Z: |0>/|1>, 1 = X: |+>/|->).
sim::Statevector PrepareBb84State(int bit, int basis) {
  sim::Statevector sv(1);
  if (bit) sv.Apply1Q(SingleQubitMatrix(GateKind::kX, {}), 0);
  if (basis) sv.Apply1Q(SingleQubitMatrix(GateKind::kH, {}), 0);
  return sv;
}

/// Measures in basis `basis`; collapses.
int MeasureBb84(sim::Statevector* sv, int basis, Rng* rng) {
  if (basis) sv->Apply1Q(SingleQubitMatrix(GateKind::kH, {}), 0);
  return sv->MeasureQubit(0, rng);
}

/// Channel noise: independent X and Z flips with probability e each. In the
/// Z basis only the X flip is visible, in the X basis only the Z flip, so
/// the observable bit-error rate is e in either preparation basis.
void ApplyChannelNoise(sim::Statevector* sv, double error, Rng* rng) {
  if (rng->Bernoulli(error)) {
    sv->Apply1Q(SingleQubitMatrix(GateKind::kX, {}), 0);
  }
  if (rng->Bernoulli(error)) {
    sv->Apply1Q(SingleQubitMatrix(GateKind::kZ, {}), 0);
  }
}

}  // namespace

Bb84Result RunBb84(const Bb84Config& config, Rng* rng) {
  QDM_CHECK_GT(config.num_raw_bits, 0);
  Bb84Result result;

  std::vector<int> alice_sifted, bob_sifted;
  for (int i = 0; i < config.num_raw_bits; ++i) {
    const int alice_bit = rng->Bernoulli(0.5) ? 1 : 0;
    const int alice_basis = rng->Bernoulli(0.5) ? 1 : 0;
    sim::Statevector qubit = PrepareBb84State(alice_bit, alice_basis);

    ApplyChannelNoise(&qubit, config.channel_error, rng);

    if (config.eavesdropper) {
      // Intercept-resend: Eve measures in a random basis and sends her
      // result onward, collapsing the state.
      const int eve_basis = rng->Bernoulli(0.5) ? 1 : 0;
      const int eve_bit = MeasureBb84(&qubit, eve_basis, rng);
      qubit = PrepareBb84State(eve_bit, eve_basis);
    }

    const int bob_basis = rng->Bernoulli(0.5) ? 1 : 0;
    const int bob_bit = MeasureBb84(&qubit, bob_basis, rng);

    if (alice_basis == bob_basis) {
      alice_sifted.push_back(alice_bit);
      bob_sifted.push_back(bob_bit);
    }
  }

  result.sifted_bits = static_cast<int>(alice_sifted.size());
  if (result.sifted_bits == 0) {
    result.aborted = true;
    return result;
  }

  // Sacrifice a random sample to estimate the QBER.
  int sample_errors = 0, sample_size = 0;
  int key_errors = 0, key_size = 0;
  for (size_t i = 0; i < alice_sifted.size(); ++i) {
    if (rng->Bernoulli(config.sample_fraction)) {
      ++sample_size;
      if (alice_sifted[i] != bob_sifted[i]) ++sample_errors;
    } else {
      ++key_size;
      if (alice_sifted[i] != bob_sifted[i]) ++key_errors;
      result.key.push_back(alice_sifted[i]);
    }
  }
  result.estimated_qber =
      sample_size > 0 ? static_cast<double>(sample_errors) / sample_size : 0.0;
  result.actual_error_rate =
      key_size > 0 ? static_cast<double>(key_errors) / key_size : 0.0;

  if (result.estimated_qber > config.abort_qber) {
    result.aborted = true;
    result.key.clear();
    result.secure_key_bits = 0.0;
    return result;
  }
  const double secret_fraction =
      std::max(0.0, 1.0 - 2.0 * BinaryEntropy(result.estimated_qber));
  result.secure_key_bits = key_size * secret_fraction;
  return result;
}

}  // namespace qnet
}  // namespace qdm
