#ifndef QDM_QDB_QUANTUM_DATABASE_H_
#define QDM_QDB_QUANTUM_DATABASE_H_

#include <cstdint>
#include <functional>
#include <set>
#include <vector>

#include "qdm/algo/grover.h"
#include "qdm/common/rng.h"
#include "qdm/common/status.h"

namespace qdm {
namespace qdb {

/// Outcome of a database search, with the oracle-query accounting that
/// Sec III-A uses to compare classical and quantum algorithms.
struct SearchStats {
  bool found = false;
  uint64_t index = 0;
  int64_t record = 0;
  int64_t oracle_queries = 0;
};

/// The "database" of the paper's Sec III-A: N = 2^n records addressed by
/// n-bit labels, searched by compiling a predicate into a phase oracle
/// f : {0,1}^n -> {0,1} and running Grover / BBHT on the simulated
/// gate-based machine. Classical baselines scan the same oracle.
class QuantumDatabase {
 public:
  /// `records` must have power-of-two length (pad explicitly if needed —
  /// the label space is the qubit register).
  static Result<QuantumDatabase> Create(std::vector<int64_t> records);

  int num_qubits() const { return num_qubits_; }
  size_t size() const { return records_.size(); }
  const std::vector<int64_t>& records() const { return records_; }

  /// How many records satisfy `predicate` (exact scan; free of charge — used
  /// to pick the optimal Grover iteration count, as when selectivity
  /// statistics are known).
  uint64_t CountWhere(const std::function<bool(int64_t)>& predicate) const;

  /// Grover search for a record with value == key, using catalog knowledge
  /// of the match count. Fails (found=false) when the key is absent.
  SearchStats GroverSearchEqual(int64_t key, Rng* rng) const;

  /// Grover/BBHT search with an arbitrary predicate and UNKNOWN match count.
  SearchStats GroverSearchWhere(const std::function<bool(int64_t)>& predicate,
                                Rng* rng) const;

  /// Classical baseline: random-order scan of the same oracle.
  SearchStats ClassicalSearchWhere(
      const std::function<bool(int64_t)>& predicate, Rng* rng) const;

 private:
  explicit QuantumDatabase(std::vector<int64_t> records);

  std::vector<int64_t> records_;
  int num_qubits_ = 0;
};

// ---------------------------------------------------------------------------
// Quantum set operations (Sec III-A refs [47, 48, 50]): sets given as
// membership oracles over an n-bit universe; Grover finds witnesses.

struct SetOpStats {
  bool found = false;
  uint64_t witness = 0;
  int64_t quantum_queries = 0;   // Combined-oracle applications.
  int64_t classical_queries = 0; // Scan of the same combined oracle.
};

using MembershipOracle = std::function<bool(uint64_t)>;

/// Finds an element of A intersect B (oracle AND).
SetOpStats QuantumIntersectionSearch(const MembershipOracle& in_a,
                                     const MembershipOracle& in_b,
                                     int universe_qubits, Rng* rng);

/// Finds an element of A union B (oracle OR).
SetOpStats QuantumUnionSearch(const MembershipOracle& in_a,
                              const MembershipOracle& in_b,
                              int universe_qubits, Rng* rng);

/// Finds an element of A minus B (oracle AND NOT).
SetOpStats QuantumDifferenceSearch(const MembershipOracle& in_a,
                                   const MembershipOracle& in_b,
                                   int universe_qubits, Rng* rng);

// ---------------------------------------------------------------------------
// Quantum join (Sec III-A refs [45, 49]): find matching pairs of two keyed
// relations by searching the combined (r+s)-qubit index space.

struct JoinPairStats {
  bool found = false;
  uint64_t left_index = 0;
  uint64_t right_index = 0;
  int64_t oracle_queries = 0;
};

/// One matching pair (left[i] == right[j]) via BBHT over the product space.
JoinPairStats QuantumJoinSearch(const std::vector<int64_t>& left,
                                const std::vector<int64_t>& right, Rng* rng);

/// All matching pairs via repeated BBHT with an exclusion set; also reports
/// total oracle queries. (Expected O(sqrt(N M)) for M matches in an N-sized
/// product space.)
struct JoinAllStats {
  std::vector<std::pair<uint64_t, uint64_t>> pairs;
  int64_t oracle_queries = 0;
};
JoinAllStats QuantumJoinAll(const std::vector<int64_t>& left,
                            const std::vector<int64_t>& right, Rng* rng);

// ---------------------------------------------------------------------------
// Superposition-encoded relation with manipulation operations
// (Sec III-A refs [46, 49, 51]): the relation's current extent is encoded as
// the uniform superposition over member labels; INSERT/DELETE/UPDATE rebuild
// the state; reads are quantum measurements of it.

class SuperpositionRelation {
 public:
  explicit SuperpositionRelation(int num_qubits);

  int num_qubits() const { return num_qubits_; }
  size_t cardinality() const { return members_.size(); }
  const std::set<uint64_t>& members() const { return members_; }

  Status Insert(uint64_t label);
  Status Delete(uint64_t label);
  /// Update = delete old + insert new (atomic: both checked first).
  Status Update(uint64_t old_label, uint64_t new_label);

  /// The quantum encoding: (1/sqrt(|T|)) sum_{t in T} |t>.
  sim::Statevector PrepareState() const;

  /// Reads one record by measuring a fresh encoding (uniform over members).
  Result<uint64_t> SampleMember(Rng* rng) const;

 private:
  int num_qubits_;
  std::set<uint64_t> members_;
};

}  // namespace qdb
}  // namespace qdm

#endif  // QDM_QDB_QUANTUM_DATABASE_H_
