#include "qdm/qdb/quantum_database.h"

#include <cmath>

#include "qdm/common/check.h"
#include "qdm/common/strings.h"

namespace qdm {
namespace qdb {

namespace {

bool IsPowerOfTwo(size_t n) { return n != 0 && (n & (n - 1)) == 0; }

int Log2(size_t n) {
  int k = 0;
  while ((size_t{1} << k) < n) ++k;
  return k;
}

}  // namespace

QuantumDatabase::QuantumDatabase(std::vector<int64_t> records)
    : records_(std::move(records)), num_qubits_(Log2(records_.size())) {}

Result<QuantumDatabase> QuantumDatabase::Create(std::vector<int64_t> records) {
  if (records.empty() || !IsPowerOfTwo(records.size())) {
    return Status::InvalidArgument(StrFormat(
        "record count must be a power of two, got %zu", records.size()));
  }
  if (records.size() > (size_t{1} << 24)) {
    return Status::ResourceExhausted("database exceeds simulator budget");
  }
  return QuantumDatabase(std::move(records));
}

uint64_t QuantumDatabase::CountWhere(
    const std::function<bool(int64_t)>& predicate) const {
  uint64_t count = 0;
  for (int64_t r : records_) {
    if (predicate(r)) ++count;
  }
  return count;
}

SearchStats QuantumDatabase::GroverSearchEqual(int64_t key, Rng* rng) const {
  SearchStats stats;
  const uint64_t matches = CountWhere([&](int64_t r) { return r == key; });
  if (matches == 0) return stats;

  algo::CountingOracle oracle(
      [this, key](uint64_t index) { return records_[index] == key; });
  algo::GroverResult r = algo::GroverSearch(num_qubits_, &oracle, matches, rng);
  stats.found = r.found;
  stats.index = r.measured;
  stats.record = records_[r.measured];
  stats.oracle_queries = r.oracle_queries;
  return stats;
}

SearchStats QuantumDatabase::GroverSearchWhere(
    const std::function<bool(int64_t)>& predicate, Rng* rng) const {
  algo::CountingOracle oracle(
      [this, &predicate](uint64_t index) {
        return predicate(records_[index]);
      });
  algo::GroverResult r = algo::BbhtSearch(num_qubits_, &oracle, rng);
  SearchStats stats;
  stats.found = r.found;
  stats.index = r.measured;
  stats.record = r.found ? records_[r.measured] : 0;
  stats.oracle_queries = r.oracle_queries;
  return stats;
}

SearchStats QuantumDatabase::ClassicalSearchWhere(
    const std::function<bool(int64_t)>& predicate, Rng* rng) const {
  algo::CountingOracle oracle(
      [this, &predicate](uint64_t index) {
        return predicate(records_[index]);
      });
  algo::ClassicalSearchResult r =
      algo::ClassicalLinearSearch(records_.size(), &oracle, rng);
  SearchStats stats;
  stats.found = r.found;
  stats.index = r.found_index;
  stats.record = r.found ? records_[r.found_index] : 0;
  stats.oracle_queries = r.queries;
  return stats;
}

namespace {

SetOpStats RunSetOpSearch(const MembershipOracle& combined, int universe_qubits,
                          Rng* rng) {
  SetOpStats stats;
  {
    algo::CountingOracle oracle(combined);
    algo::GroverResult r = algo::BbhtSearch(universe_qubits, &oracle, rng);
    stats.found = r.found;
    stats.witness = r.measured;
    stats.quantum_queries = r.oracle_queries;
  }
  {
    algo::CountingOracle oracle(combined);
    algo::ClassicalSearchResult r = algo::ClassicalLinearSearch(
        uint64_t{1} << universe_qubits, &oracle, rng);
    stats.classical_queries = r.queries;
  }
  return stats;
}

}  // namespace

SetOpStats QuantumIntersectionSearch(const MembershipOracle& in_a,
                                     const MembershipOracle& in_b,
                                     int universe_qubits, Rng* rng) {
  return RunSetOpSearch(
      [&](uint64_t x) { return in_a(x) && in_b(x); }, universe_qubits, rng);
}

SetOpStats QuantumUnionSearch(const MembershipOracle& in_a,
                              const MembershipOracle& in_b,
                              int universe_qubits, Rng* rng) {
  return RunSetOpSearch(
      [&](uint64_t x) { return in_a(x) || in_b(x); }, universe_qubits, rng);
}

SetOpStats QuantumDifferenceSearch(const MembershipOracle& in_a,
                                   const MembershipOracle& in_b,
                                   int universe_qubits, Rng* rng) {
  return RunSetOpSearch(
      [&](uint64_t x) { return in_a(x) && !in_b(x); }, universe_qubits, rng);
}

namespace {

int CeilLog2(size_t n) {
  int k = 0;
  while ((size_t{1} << k) < n) ++k;
  return k;
}

}  // namespace

JoinPairStats QuantumJoinSearch(const std::vector<int64_t>& left,
                                const std::vector<int64_t>& right, Rng* rng) {
  QDM_CHECK(!left.empty() && !right.empty());
  const int left_bits = std::max(1, CeilLog2(left.size()));
  const int right_bits = std::max(1, CeilLog2(right.size()));
  const uint64_t left_mask = (uint64_t{1} << left_bits) - 1;

  algo::CountingOracle oracle([&](uint64_t z) {
    const uint64_t i = z & left_mask;
    const uint64_t j = z >> left_bits;
    return i < left.size() && j < right.size() && left[i] == right[j];
  });
  algo::GroverResult r =
      algo::BbhtSearch(left_bits + right_bits, &oracle, rng);
  JoinPairStats stats;
  stats.found = r.found;
  stats.left_index = r.measured & left_mask;
  stats.right_index = r.measured >> left_bits;
  stats.oracle_queries = r.oracle_queries;
  return stats;
}

JoinAllStats QuantumJoinAll(const std::vector<int64_t>& left,
                            const std::vector<int64_t>& right, Rng* rng) {
  QDM_CHECK(!left.empty() && !right.empty());
  const int left_bits = std::max(1, CeilLog2(left.size()));
  const int right_bits = std::max(1, CeilLog2(right.size()));
  const uint64_t left_mask = (uint64_t{1} << left_bits) - 1;

  JoinAllStats stats;
  std::set<uint64_t> seen;
  while (true) {
    algo::CountingOracle oracle([&](uint64_t z) {
      if (seen.count(z)) return false;  // Exclude already-reported pairs.
      const uint64_t i = z & left_mask;
      const uint64_t j = z >> left_bits;
      return i < left.size() && j < right.size() && left[i] == right[j];
    });
    algo::GroverResult r =
        algo::BbhtSearch(left_bits + right_bits, &oracle, rng);
    stats.oracle_queries += r.oracle_queries;
    if (!r.found) break;
    seen.insert(r.measured);
    stats.pairs.emplace_back(r.measured & left_mask, r.measured >> left_bits);
  }
  return stats;
}

SuperpositionRelation::SuperpositionRelation(int num_qubits)
    : num_qubits_(num_qubits) {
  QDM_CHECK(num_qubits > 0 && num_qubits <= 24);
}

Status SuperpositionRelation::Insert(uint64_t label) {
  if (label >= (uint64_t{1} << num_qubits_)) {
    return Status::OutOfRange(StrFormat("label %llu exceeds %d-qubit space",
                                        static_cast<unsigned long long>(label),
                                        num_qubits_));
  }
  if (!members_.insert(label).second) {
    return Status::AlreadyExists("label already present (relations are sets)");
  }
  return Status::Ok();
}

Status SuperpositionRelation::Delete(uint64_t label) {
  if (members_.erase(label) == 0) {
    return Status::NotFound("label not present");
  }
  return Status::Ok();
}

Status SuperpositionRelation::Update(uint64_t old_label, uint64_t new_label) {
  if (!members_.count(old_label)) return Status::NotFound("old label missing");
  if (new_label >= (uint64_t{1} << num_qubits_)) {
    return Status::OutOfRange("new label exceeds register");
  }
  if (members_.count(new_label)) {
    return Status::AlreadyExists("new label already present");
  }
  members_.erase(old_label);
  members_.insert(new_label);
  return Status::Ok();
}

sim::Statevector SuperpositionRelation::PrepareState() const {
  QDM_CHECK(!members_.empty()) << "cannot encode the empty relation";
  std::vector<Complex> amplitudes(size_t{1} << num_qubits_, Complex(0, 0));
  const double amp = 1.0 / std::sqrt(static_cast<double>(members_.size()));
  for (uint64_t label : members_) amplitudes[label] = Complex(amp, 0);
  return sim::Statevector::FromAmplitudes(std::move(amplitudes));
}

Result<uint64_t> SuperpositionRelation::SampleMember(Rng* rng) const {
  if (members_.empty()) return Status::FailedPrecondition("relation is empty");
  return PrepareState().SampleBasisState(rng);
}

}  // namespace qdb
}  // namespace qdm
