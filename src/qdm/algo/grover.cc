#include "qdm/algo/grover.h"

#include <cmath>

#include "qdm/circuit/multi_controlled.h"
#include "qdm/common/check.h"

namespace qdm {
namespace algo {

void CountingOracle::ApplyPhaseFlip(sim::Statevector* sv) {
  ++queries_;
  auto& amps = sv->mutable_amplitudes();
  for (uint64_t z = 0; z < amps.size(); ++z) {
    if (predicate_(z)) amps[z] = -amps[z];
  }
}

int OptimalGroverIterations(uint64_t num_states, uint64_t num_marked) {
  QDM_CHECK_GT(num_marked, 0u);
  QDM_CHECK_GE(num_states, num_marked);
  const double theta = std::asin(
      std::sqrt(static_cast<double>(num_marked) / num_states));
  return static_cast<int>(std::floor(M_PI / (4 * theta)));
}

void ApplyDiffusion(sim::Statevector* sv) {
  auto& amps = sv->mutable_amplitudes();
  Complex mean(0, 0);
  for (const Complex& a : amps) mean += a;
  mean /= static_cast<double>(amps.size());
  for (Complex& a : amps) a = 2.0 * mean - a;
}

GroverResult GroverSearch(int num_qubits, CountingOracle* oracle,
                          uint64_t num_marked, Rng* rng) {
  QDM_CHECK_GT(num_qubits, 0);
  const uint64_t n = uint64_t{1} << num_qubits;
  GroverResult result;
  result.iterations = OptimalGroverIterations(n, num_marked);

  sim::Statevector sv(num_qubits);
  const linalg::Matrix h =
      circuit::SingleQubitMatrix(circuit::GateKind::kH, {});
  for (int q = 0; q < num_qubits; ++q) sv.Apply1Q(h, q);

  for (int it = 0; it < result.iterations; ++it) {
    oracle->ApplyPhaseFlip(&sv);
    ApplyDiffusion(&sv);
  }

  double success = 0.0;
  for (uint64_t z = 0; z < n; ++z) {
    if (oracle->Peek(z)) success += std::norm(sv.amplitude(z));
  }
  result.success_probability = success;
  result.measured = sv.SampleBasisState(rng);
  result.found = oracle->Peek(result.measured);
  result.oracle_queries = oracle->query_count();
  return result;
}

GroverResult BbhtSearch(int num_qubits, CountingOracle* oracle, Rng* rng) {
  QDM_CHECK_GT(num_qubits, 0);
  const uint64_t n = uint64_t{1} << num_qubits;
  const double lambda = 6.0 / 5.0;
  const linalg::Matrix h =
      circuit::SingleQubitMatrix(circuit::GateKind::kH, {});

  GroverResult result;
  double m = 1.0;
  // BBHT terminates in expected O(sqrt(N)) queries when a solution exists; the
  // cutoff bounds the no-solution case.
  const int64_t cutoff = static_cast<int64_t>(
      16 * std::ceil(std::sqrt(static_cast<double>(n)))) + 64;
  while (oracle->query_count() < cutoff) {
    const int j = static_cast<int>(rng->UniformInt(0, static_cast<int64_t>(m)));
    sim::Statevector sv(num_qubits);
    for (int q = 0; q < num_qubits; ++q) sv.Apply1Q(h, q);
    for (int it = 0; it < j; ++it) {
      oracle->ApplyPhaseFlip(&sv);
      ApplyDiffusion(&sv);
    }
    result.iterations += j;
    const uint64_t y = sv.SampleBasisState(rng);
    if (oracle->Query(y)) {  // Classical verification costs one query.
      result.measured = y;
      result.found = true;
      break;
    }
    m = std::min(lambda * m, std::sqrt(static_cast<double>(n)));
  }
  result.oracle_queries = oracle->query_count();
  return result;
}

ClassicalSearchResult ClassicalLinearSearch(uint64_t num_states,
                                            CountingOracle* oracle, Rng* rng) {
  // Scan in a random order: expected (N+1)/(M+1) probes.
  std::vector<uint64_t> order(num_states);
  for (uint64_t i = 0; i < num_states; ++i) order[i] = i;
  for (uint64_t i = num_states; i > 1; --i) {
    const uint64_t j = static_cast<uint64_t>(rng->UniformInt(0, i - 1));
    std::swap(order[i - 1], order[j]);
  }
  ClassicalSearchResult result;
  for (uint64_t x : order) {
    if (oracle->Query(x)) {
      result.found = true;
      result.found_index = x;
      break;
    }
  }
  result.queries = oracle->query_count();
  return result;
}

circuit::Circuit GroverCircuit(int num_qubits, uint64_t marked,
                               int iterations) {
  QDM_CHECK_GT(num_qubits, 0);
  QDM_CHECK_LT(marked, uint64_t{1} << num_qubits);
  const int num_ancillas =
      circuit::MultiControlledAncillaCount(num_qubits - 1);
  circuit::Circuit c(num_qubits + num_ancillas);

  std::vector<int> data(num_qubits);
  for (int q = 0; q < num_qubits; ++q) data[q] = q;
  std::vector<int> ancillas(num_ancillas);
  for (int a = 0; a < num_ancillas; ++a) ancillas[a] = num_qubits + a;

  std::vector<int> controls(data.begin(), data.end() - 1);
  const int target = data.back();

  for (int q : data) c.H(q);
  for (int it = 0; it < iterations; ++it) {
    // Oracle: phase-flip |marked>. Conjugate an all-ones MCZ with X on the
    // zero bits of `marked`.
    for (int q : data) {
      if (((marked >> q) & 1) == 0) c.X(q);
    }
    if (num_qubits == 1) {
      c.Z(0);
    } else {
      circuit::AppendMultiControlledZ(&c, controls, target, ancillas);
    }
    for (int q : data) {
      if (((marked >> q) & 1) == 0) c.X(q);
    }
    // Diffusion: H^n X^n MCZ X^n H^n.
    for (int q : data) c.H(q);
    for (int q : data) c.X(q);
    if (num_qubits == 1) {
      c.Z(0);
    } else {
      circuit::AppendMultiControlledZ(&c, controls, target, ancillas);
    }
    for (int q : data) c.X(q);
    for (int q : data) c.H(q);
  }
  return c;
}

MinimumResult DurrHoyerMinimum(int num_qubits,
                               const std::function<double(uint64_t)>& f,
                               Rng* rng) {
  QDM_CHECK_GT(num_qubits, 0);
  const uint64_t n = uint64_t{1} << num_qubits;

  MinimumResult result;
  uint64_t threshold_index =
      static_cast<uint64_t>(rng->UniformInt(0, static_cast<int64_t>(n) - 1));
  double threshold = f(threshold_index);

  // Durr-Hoyer run until the 22.5 sqrt(N) query budget is exhausted (their
  // Theorem 1 bound); each round strictly lowers the threshold.
  const int64_t budget = static_cast<int64_t>(
      22.5 * std::sqrt(static_cast<double>(n))) + 32;
  int64_t used = 0;
  while (used < budget) {
    CountingOracle below([&](uint64_t x) { return f(x) < threshold; });
    GroverResult found = BbhtSearch(num_qubits, &below, rng);
    used += found.oracle_queries;
    if (!found.found) break;  // Nothing below the threshold: done.
    threshold_index = found.measured;
    threshold = f(threshold_index);
  }
  result.argmin = threshold_index;
  result.minimum = threshold;
  result.oracle_queries = used;
  return result;
}

}  // namespace algo
}  // namespace qdm
