#ifndef QDM_ALGO_QAOA_H_
#define QDM_ALGO_QAOA_H_

#include <vector>

#include "qdm/algo/optimizers.h"
#include "qdm/anneal/qubo.h"
#include "qdm/anneal/sampler.h"
#include "qdm/anneal/solver.h"
#include "qdm/circuit/circuit.h"
#include "qdm/sim/noise.h"
#include "qdm/sim/statevector.h"

namespace qdm {
namespace algo {

/// Full 2^n energy diagonal of a QUBO (E(z) for every basis state z, with
/// variable i read from bit i). The cost Hamiltonian of QAOA/VQE/Grover-min.
std::vector<double> BuildDiagonal(const anneal::Qubo& qubo);

/// Quantum Approximate Optimization Algorithm over a QUBO cost Hamiltonian
/// (Farhi et al.; the gate-based path of the paper's Figure 2, used for MQO
/// in [21,22], join ordering in [23-26] and schema matching in [28]).
///
/// Parameters are (gamma_1..gamma_p, beta_1..beta_p). Layer l applies the
/// phase separator exp(-i gamma_l C) followed by the transverse mixer
/// RX(2 beta_l) on every qubit.
class Qaoa {
 public:
  Qaoa(const anneal::Qubo& qubo, int layers);

  int num_qubits() const { return num_qubits_; }
  int layers() const { return layers_; }
  int num_parameters() const { return 2 * layers_; }
  const std::vector<double>& diagonal() const { return diagonal_; }

  /// Fast path: evolves the state applying exp(-i gamma C) directly as
  /// diagonal phases (exact, no Trotter error).
  sim::Statevector StateForParameters(const std::vector<double>& params) const;

  /// <C> for the given parameters (exact expectation, the "infinite shots"
  /// limit).
  double Expectation(const std::vector<double>& params) const;

  /// Gate-level circuit: RZ / RZZ phase separator + RX mixer. Produces the
  /// same state as StateForParameters up to global phase (tested).
  circuit::Circuit BuildCircuit(const std::vector<double>& params) const;

  /// Classical outer loop: minimizes Expectation over the 2p angles with
  /// `restarts` random restarts.
  OptimizationResult Optimize(Optimizer* optimizer, int restarts,
                              Rng* rng) const;

 private:
  int num_qubits_;
  int layers_;
  anneal::IsingModel ising_;
  std::vector<double> diagonal_;
};

/// QAOA packaged behind the annealing Sampler interface so benches can swap
/// annealer and gate-based backends freely (Figure 2's two arms).
class QaoaSampler : public anneal::Sampler {
 public:
  struct Options {
    int layers = 2;
    int restarts = 3;
    /// Maximum problem size in qubits (state-vector guard).
    int max_qubits = 20;
  };

  QaoaSampler() : options_() {}
  explicit QaoaSampler(Options options) : options_(options) {}

  anneal::SampleSet SampleQubo(const anneal::Qubo& qubo, int num_reads,
                               Rng* rng) override;

  /// Noisy sibling of SampleQubo (docs/noise.md): the variational loop
  /// optimizes noiselessly as usual, then the optimal gate-level circuit is
  /// sampled under `model` via SampleCircuitNoisy (per-shot seed derivation
  /// from `options`; the returned set carries noise_fidelity).
  anneal::SampleSet SampleQuboNoisy(const anneal::Qubo& qubo, int num_reads,
                                    const sim::NoiseModel& model,
                                    const anneal::SolverOptions& options);

  std::string name() const override { return "qaoa"; }

 private:
  Options options_;
};

}  // namespace algo
}  // namespace qdm

#endif  // QDM_ALGO_QAOA_H_
