#ifndef QDM_ALGO_VQE_H_
#define QDM_ALGO_VQE_H_

#include <vector>

#include "qdm/algo/optimizers.h"
#include "qdm/anneal/qubo.h"
#include "qdm/anneal/sampler.h"
#include "qdm/anneal/solver.h"
#include "qdm/circuit/circuit.h"
#include "qdm/sim/noise.h"
#include "qdm/sim/statevector.h"

namespace qdm {
namespace algo {

/// Variational Quantum Eigensolver specialized to diagonal (classical-
/// optimization) Hamiltonians, as used for bushy join ordering in Nayak et
/// al. [26]. Ansatz: `layers` of per-qubit RY rotations with a linear CZ
/// entangler between them (hardware-efficient ansatz).
class Vqe {
 public:
  Vqe(const anneal::Qubo& qubo, int layers);

  int num_qubits() const { return num_qubits_; }
  int num_parameters() const { return (layers_ + 1) * num_qubits_; }
  const std::vector<double>& diagonal() const { return diagonal_; }

  /// The symbolic ansatz circuit (parameters indexed 0..num_parameters-1).
  const circuit::Circuit& ansatz() const { return ansatz_; }

  /// Binds the angles, runs the ansatz, returns the final state.
  sim::Statevector StateForParameters(const std::vector<double>& thetas) const;

  /// <C> for the bound ansatz.
  double Expectation(const std::vector<double>& thetas) const;

  /// Minimizes <C> over the ansatz angles.
  OptimizationResult Optimize(Optimizer* optimizer, int restarts,
                              Rng* rng) const;

 private:
  int num_qubits_;
  int layers_;
  std::vector<double> diagonal_;
  circuit::Circuit ansatz_;
};

/// VQE behind the Sampler interface (Figure 2's second gate-based arm).
class VqeSampler : public anneal::Sampler {
 public:
  struct Options {
    int layers = 2;
    int restarts = 3;
    int max_qubits = 18;
  };

  VqeSampler() : options_() {}
  explicit VqeSampler(Options options) : options_(options) {}

  anneal::SampleSet SampleQubo(const anneal::Qubo& qubo, int num_reads,
                               Rng* rng) override;

  /// Noisy sibling of SampleQubo (docs/noise.md): optimizes noiselessly,
  /// then samples the bound ansatz circuit under `model` via
  /// SampleCircuitNoisy (the returned set carries noise_fidelity).
  anneal::SampleSet SampleQuboNoisy(const anneal::Qubo& qubo, int num_reads,
                                    const sim::NoiseModel& model,
                                    const anneal::SolverOptions& options);

  std::string name() const override { return "vqe"; }

 private:
  Options options_;
};

}  // namespace algo
}  // namespace qdm

#endif  // QDM_ALGO_VQE_H_
