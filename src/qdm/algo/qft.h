#ifndef QDM_ALGO_QFT_H_
#define QDM_ALGO_QFT_H_

#include <vector>

#include "qdm/circuit/circuit.h"

namespace qdm {
namespace algo {

/// Appends the quantum Fourier transform on the given qubits (qubits[0] is
/// the least-significant position of the transformed integer). Includes the
/// final bit-reversal swaps, so the result is the textbook QFT:
///   |x> -> (1/sqrt(N)) sum_y exp(2 pi i x y / N) |y>.
void AppendQft(circuit::Circuit* c, const std::vector<int>& qubits);

/// Appends the inverse QFT (exact adjoint of AppendQft).
void AppendInverseQft(circuit::Circuit* c, const std::vector<int>& qubits);

/// Standalone n-qubit QFT circuit on qubits [0, n).
circuit::Circuit QftCircuit(int num_qubits);

}  // namespace algo
}  // namespace qdm

#endif  // QDM_ALGO_QFT_H_
