#ifndef QDM_ALGO_SOLVER_REGISTRATION_H_
#define QDM_ALGO_SOLVER_REGISTRATION_H_

namespace qdm {
namespace algo {

/// Registers the gate-based QuboSolver bridges (qaoa, vqe, grover_min) with
/// anneal::SolverRegistry::Global(). Idempotent; returns true. A static
/// registrar in solver_registration.cc already invokes this at load time (the
/// build links qdm as an object library so the registrar is never dropped),
/// so calling it manually is only needed in exotic link setups.
bool RegisterGateBasedSolvers();

}  // namespace algo
}  // namespace qdm

#endif  // QDM_ALGO_SOLVER_REGISTRATION_H_
