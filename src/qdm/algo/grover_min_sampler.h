#ifndef QDM_ALGO_GROVER_MIN_SAMPLER_H_
#define QDM_ALGO_GROVER_MIN_SAMPLER_H_

#include "qdm/anneal/qubo.h"
#include "qdm/anneal/sampler.h"
#include "qdm/sim/noise.h"

namespace qdm {
namespace algo {

/// QUBO minimization via Durr-Hoyer quantum minimum finding (Grover's
/// algorithm as the inner loop). This is the third gate-based arm of the
/// paper's Figure 2 and the approach of Groppe & Groppe [IDEAS'21] for
/// transaction schedule optimization: encode candidate solutions as basis
/// states and Grover-search below a descending cost threshold.
class GroverMinSampler : public anneal::Sampler {
 public:
  struct Options {
    /// State-vector guard: 2^max_qubits energies are materialized.
    int max_qubits = 20;
  };

  GroverMinSampler() : options_() {}
  explicit GroverMinSampler(Options options) : options_(options) {}

  anneal::SampleSet SampleQubo(const anneal::Qubo& qubo, int num_reads,
                               Rng* rng) override;

  /// Noisy sibling of SampleQubo (docs/noise.md): the adaptive Durr-Hoyer
  /// search has no single gate-level circuit to inject per-gate errors
  /// into, so each read's measured argmin is corrupted classically via
  /// algo::CorruptBasisState; noise_fidelity is the mean survival
  /// probability of the reads.
  anneal::SampleSet SampleQuboNoisy(const anneal::Qubo& qubo, int num_reads,
                                    const sim::NoiseModel& model, Rng* rng);

  std::string name() const override { return "grover_min"; }

  /// Oracle queries consumed by the most recent SampleQubo call.
  int64_t last_oracle_queries() const { return last_oracle_queries_; }

 private:
  Options options_;
  int64_t last_oracle_queries_ = 0;
};

}  // namespace algo
}  // namespace qdm

#endif  // QDM_ALGO_GROVER_MIN_SAMPLER_H_
