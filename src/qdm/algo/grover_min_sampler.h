#ifndef QDM_ALGO_GROVER_MIN_SAMPLER_H_
#define QDM_ALGO_GROVER_MIN_SAMPLER_H_

#include "qdm/anneal/qubo.h"
#include "qdm/anneal/sampler.h"

namespace qdm {
namespace algo {

/// QUBO minimization via Durr-Hoyer quantum minimum finding (Grover's
/// algorithm as the inner loop). This is the third gate-based arm of the
/// paper's Figure 2 and the approach of Groppe & Groppe [IDEAS'21] for
/// transaction schedule optimization: encode candidate solutions as basis
/// states and Grover-search below a descending cost threshold.
class GroverMinSampler : public anneal::Sampler {
 public:
  struct Options {
    /// State-vector guard: 2^max_qubits energies are materialized.
    int max_qubits = 20;
  };

  GroverMinSampler() : options_() {}
  explicit GroverMinSampler(Options options) : options_(options) {}

  anneal::SampleSet SampleQubo(const anneal::Qubo& qubo, int num_reads,
                               Rng* rng) override;
  std::string name() const override { return "grover_min"; }

  /// Oracle queries consumed by the most recent SampleQubo call.
  int64_t last_oracle_queries() const { return last_oracle_queries_; }

 private:
  Options options_;
  int64_t last_oracle_queries_ = 0;
};

}  // namespace algo
}  // namespace qdm

#endif  // QDM_ALGO_GROVER_MIN_SAMPLER_H_
