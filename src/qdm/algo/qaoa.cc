#include "qdm/algo/qaoa.h"

#include <cmath>
#include <optional>

#include "qdm/algo/noisy_sampling.h"
#include "qdm/common/check.h"

namespace qdm {
namespace algo {

std::vector<double> BuildDiagonal(const anneal::Qubo& qubo) {
  const int n = qubo.num_variables();
  QDM_CHECK_LE(n, 26) << "diagonal would exceed memory budget";
  const uint64_t dim = uint64_t{1} << n;
  std::vector<double> diag(dim, qubo.offset());
  for (int i = 0; i < n; ++i) {
    const double a = qubo.linear(i);
    if (a == 0.0) continue;
    const uint64_t bit = uint64_t{1} << i;
    for (uint64_t z = 0; z < dim; ++z) {
      if (z & bit) diag[z] += a;
    }
  }
  for (const auto& [key, w] : qubo.quadratic_terms()) {
    if (w == 0.0) continue;
    const uint64_t mask =
        (uint64_t{1} << key.first) | (uint64_t{1} << key.second);
    for (uint64_t z = 0; z < dim; ++z) {
      if ((z & mask) == mask) diag[z] += w;
    }
  }
  return diag;
}

Qaoa::Qaoa(const anneal::Qubo& qubo, int layers)
    : num_qubits_(qubo.num_variables()),
      layers_(layers),
      ising_(anneal::QuboToIsing(qubo)),
      diagonal_(BuildDiagonal(qubo)) {
  QDM_CHECK_GT(layers, 0);
}

sim::Statevector Qaoa::StateForParameters(
    const std::vector<double>& params) const {
  QDM_CHECK_EQ(params.size(), static_cast<size_t>(num_parameters()));
  sim::Statevector sv(num_qubits_);
  const linalg::Matrix h =
      circuit::SingleQubitMatrix(circuit::GateKind::kH, {});
  for (int q = 0; q < num_qubits_; ++q) sv.Apply1Q(h, q);

  for (int l = 0; l < layers_; ++l) {
    const double gamma = params[l];
    const double beta = params[layers_ + l];
    sv.ApplyDiagonalPhase(diagonal_, -gamma);
    const linalg::Matrix rx =
        circuit::SingleQubitMatrix(circuit::GateKind::kRX, {2 * beta});
    for (int q = 0; q < num_qubits_; ++q) sv.Apply1Q(rx, q);
  }
  return sv;
}

double Qaoa::Expectation(const std::vector<double>& params) const {
  return StateForParameters(params).ExpectationDiagonal(diagonal_);
}

circuit::Circuit Qaoa::BuildCircuit(const std::vector<double>& params) const {
  QDM_CHECK_EQ(params.size(), static_cast<size_t>(num_parameters()));
  circuit::Circuit c(num_qubits_);
  for (int q = 0; q < num_qubits_; ++q) c.H(q);

  for (int l = 0; l < layers_; ++l) {
    const double gamma = params[l];
    const double beta = params[layers_ + l];
    // exp(-i gamma C) in Ising form:
    //   C = offset + sum h_i s_i + sum J_ij s_i s_j
    // with s = 2x - 1. RZ(theta) applies phase e^{i theta/2 s}; we need
    // e^{-i gamma h s}, hence theta = -2 gamma h. RZZ(theta) applies
    // e^{-i theta/2 s_i s_j}; we need e^{-i gamma J s_i s_j}:
    // theta = 2 gamma J.
    // The constant offset contributes only a global phase and is dropped.
    for (int i = 0; i < num_qubits_; ++i) {
      if (ising_.h[i] != 0.0) c.RZ(i, -2 * gamma * ising_.h[i]);
    }
    for (const auto& [key, j] : ising_.j) {
      if (j != 0.0) c.RZZ(key.first, key.second, 2 * gamma * j);
    }
    for (int q = 0; q < num_qubits_; ++q) c.RX(q, 2 * beta);
  }
  return c;
}

OptimizationResult Qaoa::Optimize(Optimizer* optimizer, int restarts,
                                  Rng* rng) const {
  QDM_CHECK_GT(restarts, 0);
  OptimizationResult best;
  best.value = 1e300;
  Objective objective = [this](const std::vector<double>& p) {
    return Expectation(p);
  };
  for (int r = 0; r < restarts; ++r) {
    std::vector<double> initial(num_parameters());
    for (int i = 0; i < layers_; ++i) {
      initial[i] = rng->Uniform(0.0, M_PI / 4);             // gammas
      initial[layers_ + i] = rng->Uniform(0.0, M_PI / 4);   // betas
    }
    OptimizationResult run = optimizer->Minimize(objective, initial, rng);
    run.evaluations += best.evaluations;
    if (run.value < best.value) {
      best = run;
    } else {
      best.evaluations = run.evaluations;
    }
  }
  return best;
}

anneal::SampleSet QaoaSampler::SampleQubo(const anneal::Qubo& qubo,
                                          int num_reads, Rng* rng) {
  QDM_CHECK_LE(qubo.num_variables(), options_.max_qubits)
      << "QAOA statevector backend limited to " << options_.max_qubits
      << " qubits";
  Qaoa qaoa(qubo, options_.layers);
  CoordinateDescent optimizer;
  OptimizationResult opt = qaoa.Optimize(&optimizer, options_.restarts, rng);
  sim::Statevector sv = qaoa.StateForParameters(opt.parameters);

  anneal::SampleSet set;
  const std::vector<double>& diag = qaoa.diagonal();
  for (int read = 0; read < num_reads; ++read) {
    const uint64_t z = sv.SampleBasisState(rng);
    anneal::Assignment x(qubo.num_variables());
    for (int i = 0; i < qubo.num_variables(); ++i) x[i] = (z >> i) & 1;
    set.Add(anneal::Sample{std::move(x), diag[z], 0.0});
  }
  return set;
}

anneal::SampleSet QaoaSampler::SampleQuboNoisy(
    const anneal::Qubo& qubo, int num_reads, const sim::NoiseModel& model,
    const anneal::SolverOptions& options) {
  QDM_CHECK_LE(qubo.num_variables(), options_.max_qubits)
      << "QAOA statevector backend limited to " << options_.max_qubits
      << " qubits";
  Qaoa qaoa(qubo, options_.layers);
  CoordinateDescent optimizer;
  std::optional<Rng> local;
  Rng* rng = anneal::ResolveSolverRng(options, &local);
  OptimizationResult opt = qaoa.Optimize(&optimizer, options_.restarts, rng);
  // The gate-level circuit produces the same state as the fast diagonal
  // path up to global phase, which the fidelity metric is invariant to.
  return SampleCircuitNoisy(qaoa.BuildCircuit(opt.parameters),
                            qaoa.diagonal(), model, num_reads, options);
}

}  // namespace algo
}  // namespace qdm
