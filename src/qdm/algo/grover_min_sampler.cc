#include "qdm/algo/grover_min_sampler.h"

#include "qdm/algo/grover.h"
#include "qdm/algo/noisy_sampling.h"
#include "qdm/algo/qaoa.h"
#include "qdm/common/check.h"

namespace qdm {
namespace algo {

anneal::SampleSet GroverMinSampler::SampleQubo(const anneal::Qubo& qubo,
                                               int num_reads, Rng* rng) {
  QDM_CHECK_LE(qubo.num_variables(), options_.max_qubits)
      << "Grover minimum finding limited to " << options_.max_qubits
      << " qubits";
  const std::vector<double> diag = BuildDiagonal(qubo);
  const int n = qubo.num_variables();

  anneal::SampleSet set;
  last_oracle_queries_ = 0;
  for (int read = 0; read < num_reads; ++read) {
    MinimumResult min = DurrHoyerMinimum(
        n, [&](uint64_t z) { return diag[z]; }, rng);
    last_oracle_queries_ += min.oracle_queries;
    anneal::Assignment x(n);
    for (int i = 0; i < n; ++i) x[i] = (min.argmin >> i) & 1;
    set.Add(anneal::Sample{std::move(x), min.minimum, 0.0});
  }
  return set;
}

anneal::SampleSet GroverMinSampler::SampleQuboNoisy(
    const anneal::Qubo& qubo, int num_reads, const sim::NoiseModel& model,
    Rng* rng) {
  QDM_CHECK_LE(qubo.num_variables(), options_.max_qubits)
      << "Grover minimum finding limited to " << options_.max_qubits
      << " qubits";
  const std::vector<double> diag = BuildDiagonal(qubo);
  const int n = qubo.num_variables();

  anneal::SampleSet set;
  last_oracle_queries_ = 0;
  double survival_total = 0.0;
  for (int read = 0; read < num_reads; ++read) {
    MinimumResult min = DurrHoyerMinimum(
        n, [&](uint64_t z) { return diag[z]; }, rng);
    last_oracle_queries_ += min.oracle_queries;
    double survival = 1.0;
    const uint64_t z = CorruptBasisState(min.argmin, n, model, rng, &survival);
    survival_total += survival;
    anneal::Assignment x(n);
    for (int i = 0; i < n; ++i) x[i] = (z >> i) & 1;
    set.Add(anneal::Sample{std::move(x), diag[z], 0.0});
  }
  set.set_noise_fidelity(num_reads > 0 ? survival_total / num_reads : 1.0);
  return set;
}

}  // namespace algo
}  // namespace qdm
