#include "qdm/algo/qpe.h"

#include <cmath>

#include "qdm/algo/qft.h"
#include "qdm/common/check.h"
#include "qdm/sim/statevector.h"

namespace qdm {
namespace algo {

circuit::Circuit QpeCircuit(double phase, int precision_qubits) {
  QDM_CHECK_GT(precision_qubits, 0);
  const int t = precision_qubits;
  circuit::Circuit c(t + 1);

  // Prepare the eigenstate |1> on the work qubit.
  c.X(t);
  // Superpose the counting register.
  for (int q = 0; q < t; ++q) c.H(q);
  // Controlled-U^{2^q}: counting qubit q kicks back phase 2 pi * phase * 2^q.
  for (int q = 0; q < t; ++q) {
    c.CPhase(q, t, 2 * M_PI * phase * static_cast<double>(uint64_t{1} << q));
  }
  // Decode with the inverse QFT on the counting register.
  std::vector<int> counting(t);
  for (int q = 0; q < t; ++q) counting[q] = q;
  AppendInverseQft(&c, counting);
  return c;
}

QpeResult EstimatePhase(double phase, int precision_qubits, Rng* rng) {
  circuit::Circuit c = QpeCircuit(phase, precision_qubits);
  sim::Statevector sv = sim::RunCircuit(c);
  const uint64_t outcome = sv.SampleBasisState(rng);
  const uint64_t mask = (uint64_t{1} << precision_qubits) - 1;

  QpeResult result;
  result.raw = outcome & mask;
  result.precision_qubits = precision_qubits;
  result.estimate = static_cast<double>(result.raw) /
                    static_cast<double>(uint64_t{1} << precision_qubits);
  return result;
}

}  // namespace algo
}  // namespace qdm
