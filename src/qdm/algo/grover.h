#ifndef QDM_ALGO_GROVER_H_
#define QDM_ALGO_GROVER_H_

#include <cstdint>
#include <functional>

#include "qdm/circuit/circuit.h"
#include "qdm/common/rng.h"
#include "qdm/sim/statevector.h"

namespace qdm {
namespace algo {

/// A boolean membership oracle f : {0,1}^n -> {0,1} with query accounting.
/// This is the quantity the paper's Sec III-A compares algorithms by: the
/// classical scan pays one query per *record*, Grover pays one query per
/// *coherent oracle application* (which acts on all records in superposition).
class CountingOracle {
 public:
  explicit CountingOracle(std::function<bool(uint64_t)> predicate)
      : predicate_(std::move(predicate)) {}

  /// Classical query: evaluates f on a single record. Costs 1.
  bool Query(uint64_t x) {
    ++queries_;
    return predicate_(x);
  }

  /// Quantum query: applies the phase oracle |x> -> (-1)^f(x) |x> to the full
  /// register. Costs 1 (one coherent application), independent of dimension.
  void ApplyPhaseFlip(sim::Statevector* sv);

  /// Evaluates the predicate WITHOUT charging a query (used by tests and by
  /// result verification).
  bool Peek(uint64_t x) const { return predicate_(x); }

  int64_t query_count() const { return queries_; }
  void ResetCount() { queries_ = 0; }

 private:
  std::function<bool(uint64_t)> predicate_;
  int64_t queries_ = 0;
};

/// floor(pi/4 * sqrt(N/M)), the optimal Grover iteration count for N states
/// with M marked.
int OptimalGroverIterations(uint64_t num_states, uint64_t num_marked);

/// Grover's diffusion operator 2|s><s| - I (inversion about the mean).
void ApplyDiffusion(sim::Statevector* sv);

struct GroverResult {
  uint64_t measured = 0;
  bool found = false;            // Verified classically post-measurement.
  int64_t oracle_queries = 0;    // Coherent oracle applications used.
  int iterations = 0;
  /// Probability mass on marked states just before measurement.
  double success_probability = 0.0;
};

/// Textbook Grover search with known marked-state count `num_marked`.
/// Simulated exactly on the state vector; measurement uses `rng`.
GroverResult GroverSearch(int num_qubits, CountingOracle* oracle,
                          uint64_t num_marked, Rng* rng);

/// Boyer-Brassard-Hoyer-Tapp search for UNKNOWN number of marked states:
/// exponentially growing random iteration counts until a verified hit.
/// Expected O(sqrt(N/M)) oracle queries; reports failure after exhausting
/// the cutoff when no state is marked.
GroverResult BbhtSearch(int num_qubits, CountingOracle* oracle, Rng* rng);

struct ClassicalSearchResult {
  uint64_t found_index = 0;
  bool found = false;
  int64_t queries = 0;
};

/// Classical baseline: scans records in random order until the predicate
/// fires (expected (N+1)/(M+1) queries).
ClassicalSearchResult ClassicalLinearSearch(uint64_t num_states,
                                            CountingOracle* oracle, Rng* rng);

/// Gate-level Grover circuit for a single marked basis state, built from
/// H/X/CCX via the multi-controlled-Z decomposition. Data register is qubits
/// [0, num_qubits); ancillas (if any) occupy the remaining qubits of the
/// returned circuit. Used to validate the fast state-vector path against a
/// real gate decomposition.
circuit::Circuit GroverCircuit(int num_qubits, uint64_t marked, int iterations);

/// Durr-Hoyer quantum minimum finding over f : [0, 2^n) -> double.
/// Repeatedly BBHT-searches for "f(x) < f(threshold)". Expected
/// O(sqrt(N)) oracle queries to locate the global argmin.
struct MinimumResult {
  uint64_t argmin = 0;
  double minimum = 0.0;
  int64_t oracle_queries = 0;
};

MinimumResult DurrHoyerMinimum(int num_qubits,
                               const std::function<double(uint64_t)>& f,
                               Rng* rng);

}  // namespace algo
}  // namespace qdm

#endif  // QDM_ALGO_GROVER_H_
