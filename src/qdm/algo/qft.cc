#include "qdm/algo/qft.h"

#include <cmath>

#include "qdm/common/check.h"

namespace qdm {
namespace algo {

void AppendQft(circuit::Circuit* c, const std::vector<int>& qubits) {
  QDM_CHECK(!qubits.empty());
  const int n = static_cast<int>(qubits.size());
  // Process from the most-significant qubit down.
  for (int i = n - 1; i >= 0; --i) {
    c->H(qubits[i]);
    for (int j = i - 1; j >= 0; --j) {
      // Controlled phase 2*pi / 2^(i - j + 1).
      c->CPhase(qubits[j], qubits[i], M_PI / (uint64_t{1} << (i - j)));
    }
  }
  // Bit reversal.
  for (int i = 0; i < n / 2; ++i) c->Swap(qubits[i], qubits[n - 1 - i]);
}

void AppendInverseQft(circuit::Circuit* c, const std::vector<int>& qubits) {
  QDM_CHECK(!qubits.empty());
  const int n = static_cast<int>(qubits.size());
  for (int i = 0; i < n / 2; ++i) c->Swap(qubits[i], qubits[n - 1 - i]);
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < i; ++j) {
      c->CPhase(qubits[j], qubits[i], -M_PI / (uint64_t{1} << (i - j)));
    }
    c->H(qubits[i]);
  }
}

circuit::Circuit QftCircuit(int num_qubits) {
  circuit::Circuit c(num_qubits);
  std::vector<int> qubits(num_qubits);
  for (int q = 0; q < num_qubits; ++q) qubits[q] = q;
  AppendQft(&c, qubits);
  return c;
}

}  // namespace algo
}  // namespace qdm
