#include "qdm/algo/vqe.h"

#include <cmath>
#include <optional>

#include "qdm/algo/noisy_sampling.h"
#include "qdm/algo/qaoa.h"
#include "qdm/common/check.h"

namespace qdm {
namespace algo {

namespace {

circuit::Circuit BuildAnsatz(int num_qubits, int layers) {
  circuit::Circuit c(num_qubits);
  int param = 0;
  for (int q = 0; q < num_qubits; ++q) c.SymbolicRY(q, param++);
  for (int l = 0; l < layers; ++l) {
    for (int q = 0; q + 1 < num_qubits; ++q) c.CZ(q, q + 1);
    for (int q = 0; q < num_qubits; ++q) c.SymbolicRY(q, param++);
  }
  return c;
}

}  // namespace

Vqe::Vqe(const anneal::Qubo& qubo, int layers)
    : num_qubits_(qubo.num_variables()),
      layers_(layers),
      diagonal_(BuildDiagonal(qubo)),
      ansatz_(BuildAnsatz(qubo.num_variables(), layers)) {
  QDM_CHECK_GE(layers, 1);
}

sim::Statevector Vqe::StateForParameters(
    const std::vector<double>& thetas) const {
  QDM_CHECK_EQ(thetas.size(), static_cast<size_t>(num_parameters()));
  return sim::RunCircuit(ansatz_.BindParameters(thetas));
}

double Vqe::Expectation(const std::vector<double>& thetas) const {
  return StateForParameters(thetas).ExpectationDiagonal(diagonal_);
}

OptimizationResult Vqe::Optimize(Optimizer* optimizer, int restarts,
                                 Rng* rng) const {
  QDM_CHECK_GT(restarts, 0);
  OptimizationResult best;
  best.value = 1e300;
  Objective objective = [this](const std::vector<double>& p) {
    return Expectation(p);
  };
  for (int r = 0; r < restarts; ++r) {
    std::vector<double> initial(num_parameters());
    for (double& t : initial) t = rng->Uniform(-M_PI / 2, M_PI / 2);
    OptimizationResult run = optimizer->Minimize(objective, initial, rng);
    if (run.value < best.value) {
      run.evaluations += best.evaluations;
      best = run;
    } else {
      best.evaluations += run.evaluations;
    }
  }
  return best;
}

anneal::SampleSet VqeSampler::SampleQubo(const anneal::Qubo& qubo,
                                         int num_reads, Rng* rng) {
  QDM_CHECK_LE(qubo.num_variables(), options_.max_qubits)
      << "VQE statevector backend limited to " << options_.max_qubits
      << " qubits";
  Vqe vqe(qubo, options_.layers);
  NelderMead optimizer;
  OptimizationResult opt = vqe.Optimize(&optimizer, options_.restarts, rng);
  sim::Statevector sv = vqe.StateForParameters(opt.parameters);

  anneal::SampleSet set;
  const std::vector<double>& diag = vqe.diagonal();
  for (int read = 0; read < num_reads; ++read) {
    const uint64_t z = sv.SampleBasisState(rng);
    anneal::Assignment x(qubo.num_variables());
    for (int i = 0; i < qubo.num_variables(); ++i) x[i] = (z >> i) & 1;
    set.Add(anneal::Sample{std::move(x), diag[z], 0.0});
  }
  return set;
}

anneal::SampleSet VqeSampler::SampleQuboNoisy(
    const anneal::Qubo& qubo, int num_reads, const sim::NoiseModel& model,
    const anneal::SolverOptions& options) {
  QDM_CHECK_LE(qubo.num_variables(), options_.max_qubits)
      << "VQE statevector backend limited to " << options_.max_qubits
      << " qubits";
  Vqe vqe(qubo, options_.layers);
  NelderMead optimizer;
  std::optional<Rng> local;
  Rng* rng = anneal::ResolveSolverRng(options, &local);
  OptimizationResult opt = vqe.Optimize(&optimizer, options_.restarts, rng);
  return SampleCircuitNoisy(vqe.ansatz().BindParameters(opt.parameters),
                            vqe.diagonal(), model, num_reads, options);
}

}  // namespace algo
}  // namespace qdm
