#include "qdm/algo/optimizers.h"

#include <algorithm>
#include <cmath>

#include "qdm/common/check.h"

namespace qdm {
namespace algo {

OptimizationResult NelderMead::Minimize(const Objective& f,
                                        std::vector<double> initial,
                                        Rng* /*rng*/) {
  const size_t n = initial.size();
  QDM_CHECK_GT(n, 0u);
  int evals = 0;
  auto eval = [&](const std::vector<double>& x) {
    ++evals;
    return f(x);
  };

  // Build initial simplex.
  std::vector<std::vector<double>> simplex{initial};
  for (size_t i = 0; i < n; ++i) {
    auto vertex = initial;
    vertex[i] += options_.initial_step;
    simplex.push_back(vertex);
  }
  std::vector<double> values;
  values.reserve(simplex.size());
  for (const auto& v : simplex) values.push_back(eval(v));

  auto order = [&] {
    std::vector<size_t> idx(simplex.size());
    for (size_t i = 0; i < idx.size(); ++i) idx[i] = i;
    std::sort(idx.begin(), idx.end(),
              [&](size_t a, size_t b) { return values[a] < values[b]; });
    std::vector<std::vector<double>> s2;
    std::vector<double> v2;
    for (size_t i : idx) {
      s2.push_back(simplex[i]);
      v2.push_back(values[i]);
    }
    simplex = std::move(s2);
    values = std::move(v2);
  };

  while (evals < options_.max_evaluations) {
    order();
    if (values.back() - values.front() < options_.tolerance) break;

    // Centroid of all but the worst.
    std::vector<double> centroid(n, 0.0);
    for (size_t i = 0; i + 1 < simplex.size(); ++i) {
      for (size_t d = 0; d < n; ++d) centroid[d] += simplex[i][d];
    }
    for (size_t d = 0; d < n; ++d) centroid[d] /= n;

    auto blend = [&](double t) {
      std::vector<double> x(n);
      for (size_t d = 0; d < n; ++d) {
        x[d] = centroid[d] + t * (simplex.back()[d] - centroid[d]);
      }
      return x;
    };

    auto reflected = blend(-1.0);
    double fr = eval(reflected);
    if (fr < values.front()) {
      auto expanded = blend(-2.0);
      double fe = eval(expanded);
      if (fe < fr) {
        simplex.back() = expanded;
        values.back() = fe;
      } else {
        simplex.back() = reflected;
        values.back() = fr;
      }
    } else if (fr < values[values.size() - 2]) {
      simplex.back() = reflected;
      values.back() = fr;
    } else {
      auto contracted = blend(0.5);
      double fc = eval(contracted);
      if (fc < values.back()) {
        simplex.back() = contracted;
        values.back() = fc;
      } else {
        // Shrink toward the best vertex.
        for (size_t i = 1; i < simplex.size(); ++i) {
          for (size_t d = 0; d < n; ++d) {
            simplex[i][d] =
                simplex[0][d] + 0.5 * (simplex[i][d] - simplex[0][d]);
          }
          values[i] = eval(simplex[i]);
        }
      }
    }
  }
  order();
  return OptimizationResult{simplex.front(), values.front(), evals};
}

OptimizationResult Spsa::Minimize(const Objective& f,
                                  std::vector<double> initial, Rng* rng) {
  const size_t n = initial.size();
  QDM_CHECK_GT(n, 0u);
  std::vector<double> theta = initial;
  std::vector<double> best = theta;
  int evals = 0;
  double best_value = f(theta);
  ++evals;

  const double big_a = 0.1 * options_.iterations;
  for (int k = 0; k < options_.iterations; ++k) {
    const double ak = options_.a / std::pow(k + 1 + big_a, options_.alpha);
    const double ck = options_.c / std::pow(k + 1, options_.gamma);
    std::vector<double> delta(n);
    for (size_t d = 0; d < n; ++d) delta[d] = rng->Bernoulli(0.5) ? 1.0 : -1.0;

    std::vector<double> plus = theta, minus = theta;
    for (size_t d = 0; d < n; ++d) {
      plus[d] += ck * delta[d];
      minus[d] -= ck * delta[d];
    }
    const double fp = f(plus);
    const double fm = f(minus);
    evals += 2;
    for (size_t d = 0; d < n; ++d) {
      theta[d] -= ak * (fp - fm) / (2 * ck * delta[d]);
    }
    const double ft = f(theta);
    ++evals;
    if (ft < best_value) {
      best_value = ft;
      best = theta;
    }
  }
  return OptimizationResult{best, best_value, evals};
}

OptimizationResult CoordinateDescent::Minimize(const Objective& f,
                                               std::vector<double> initial,
                                               Rng* /*rng*/) {
  const size_t n = initial.size();
  QDM_CHECK_GT(n, 0u);
  std::vector<double> theta = initial;
  int evals = 0;
  double value = f(theta);
  ++evals;
  double step = options_.initial_step;

  for (int round = 0; round < options_.max_rounds && step > options_.min_step;
       ++round) {
    bool improved = false;
    for (size_t d = 0; d < n; ++d) {
      for (double direction : {+1.0, -1.0}) {
        std::vector<double> candidate = theta;
        candidate[d] += direction * step;
        const double fc = f(candidate);
        ++evals;
        if (fc < value - 1e-15) {
          theta = candidate;
          value = fc;
          improved = true;
          break;
        }
      }
    }
    if (!improved) step *= options_.shrink;
  }
  return OptimizationResult{theta, value, evals};
}

}  // namespace algo
}  // namespace qdm
