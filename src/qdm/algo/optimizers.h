#ifndef QDM_ALGO_OPTIMIZERS_H_
#define QDM_ALGO_OPTIMIZERS_H_

#include <functional>
#include <string>
#include <vector>

#include "qdm/common/rng.h"

namespace qdm {
namespace algo {

/// Objective for the classical outer loop of variational algorithms
/// (QAOA/VQE/VQC): maps a parameter vector to a scalar to minimize.
using Objective = std::function<double(const std::vector<double>&)>;

struct OptimizationResult {
  std::vector<double> parameters;
  double value = 0.0;
  int evaluations = 0;
};

/// Interface for derivative-free optimizers used by the hybrid
/// quantum-classical loop (paper Sec III-C(2)).
class Optimizer {
 public:
  virtual ~Optimizer() = default;
  virtual OptimizationResult Minimize(const Objective& f,
                                      std::vector<double> initial,
                                      Rng* rng) = 0;
  virtual std::string name() const = 0;
};

/// Nelder-Mead downhill simplex.
class NelderMead : public Optimizer {
 public:
  struct Options {
    int max_evaluations = 400;
    double initial_step = 0.5;
    double tolerance = 1e-8;
  };

  NelderMead() : options_() {}
  explicit NelderMead(Options options) : options_(options) {}

  OptimizationResult Minimize(const Objective& f, std::vector<double> initial,
                              Rng* rng) override;
  std::string name() const override { return "nelder_mead"; }

 private:
  Options options_;
};

/// Simultaneous Perturbation Stochastic Approximation: two evaluations per
/// step regardless of dimension; the standard optimizer for sampled (noisy)
/// variational objectives.
class Spsa : public Optimizer {
 public:
  struct Options {
    int iterations = 200;
    double a = 0.2;      // Step-size numerator.
    double c = 0.1;      // Perturbation size.
    double alpha = 0.602;
    double gamma = 0.101;
  };

  Spsa() : options_() {}
  explicit Spsa(Options options) : options_(options) {}

  OptimizationResult Minimize(const Objective& f, std::vector<double> initial,
                              Rng* rng) override;
  std::string name() const override { return "spsa"; }

 private:
  Options options_;
};

/// Cyclic coordinate descent with shrinking step size; simple and robust for
/// low-dimensional QAOA angle landscapes.
class CoordinateDescent : public Optimizer {
 public:
  struct Options {
    int max_rounds = 30;
    double initial_step = 0.4;
    double shrink = 0.7;
    double min_step = 1e-4;
  };

  CoordinateDescent() : options_() {}
  explicit CoordinateDescent(Options options) : options_(options) {}

  OptimizationResult Minimize(const Objective& f, std::vector<double> initial,
                              Rng* rng) override;
  std::string name() const override { return "coordinate_descent"; }

 private:
  Options options_;
};

}  // namespace algo
}  // namespace qdm

#endif  // QDM_ALGO_OPTIMIZERS_H_
