// Bridges the gate-based samplers (Figure 2's second arm) into the
// anneal::SolverRegistry so applications can dispatch "qaoa" / "vqe" /
// "grover_min" by name, interchangeably with the annealing backends.
// These names also compose with the embedded hardware-topology family
// (anneal/embedded_solver.cc): "embedded:qaoa:chimera:1x1x4" resolves via
// the registry's "embedded:" prefix and runs QAOA on the minor-embedded
// physical problem — mind the 26-qubit state-vector cap when picking the
// topology.

#include "qdm/algo/solver_registration.h"

#include <algorithm>
#include <memory>
#include <optional>

#include "qdm/algo/grover_min_sampler.h"
#include "qdm/algo/noisy_sampling.h"
#include "qdm/algo/qaoa.h"
#include "qdm/algo/vqe.h"
#include "qdm/anneal/solver.h"
#include "qdm/common/strings.h"

namespace qdm {
namespace algo {

namespace {

/// BuildDiagonal materializes 2^n doubles and hard-caps at 26 qubits; no
/// gate-based bridge can go beyond that regardless of options.max_qubits.
constexpr int kDiagonalQubitCap = 26;

/// Rejects problems whose 2^n state vector would not fit the simulator.
Status CheckFits(const anneal::Qubo& qubo, int max_qubits, const char* what) {
  if (qubo.num_variables() > max_qubits) {
    return Status::InvalidArgument(
        StrFormat("%s simulates a 2^n state vector; %d variables exceed the "
                  "%d-qubit limit",
                  what, qubo.num_variables(), max_qubits));
  }
  return Status::Ok();
}

/// Shared bridge for the two variational samplers — their Options structs
/// expose the same {layers, restarts, max_qubits} knobs.
template <typename SamplerT>
class VariationalSolver : public anneal::QuboSolver {
 public:
  VariationalSolver(std::string registry_name, const char* label)
      : registry_name_(std::move(registry_name)), label_(label) {}

  Result<anneal::SampleSet> Solve(
      const anneal::Qubo& qubo,
      const anneal::SolverOptions& options) override {
    QDM_RETURN_IF_ERROR(anneal::ValidateSolverOptions(options));
    typename SamplerT::Options opts;
    if (options.layers > 0) opts.layers = options.layers;
    if (options.restarts > 0) opts.restarts = options.restarts;
    if (options.max_qubits > 0) opts.max_qubits = options.max_qubits;
    opts.max_qubits = std::min(opts.max_qubits, kDiagonalQubitCap);
    QDM_RETURN_IF_ERROR(CheckFits(qubo, opts.max_qubits, label_));
    SamplerT sampler(opts);
    if (!options.noise.IsNoiseless()) {
      return sampler.SampleQuboNoisy(qubo, options.num_reads,
                                     ToNoiseModel(options.noise), options);
    }
    std::optional<Rng> local;
    return sampler.SampleQubo(qubo, options.num_reads,
                              anneal::ResolveSolverRng(options, &local));
  }
  std::string name() const override { return registry_name_; }

 private:
  std::string registry_name_;
  const char* label_;
};

class GroverMinSolver : public anneal::QuboSolver {
 public:
  Result<anneal::SampleSet> Solve(
      const anneal::Qubo& qubo,
      const anneal::SolverOptions& options) override {
    QDM_RETURN_IF_ERROR(anneal::ValidateSolverOptions(options));
    GroverMinSampler::Options grover;
    if (options.max_qubits > 0) grover.max_qubits = options.max_qubits;
    grover.max_qubits = std::min(grover.max_qubits, kDiagonalQubitCap);
    QDM_RETURN_IF_ERROR(
        CheckFits(qubo, grover.max_qubits, "Grover minimum finding"));
    GroverMinSampler sampler(grover);
    std::optional<Rng> local;
    Rng* rng = anneal::ResolveSolverRng(options, &local);
    if (!options.noise.IsNoiseless()) {
      return sampler.SampleQuboNoisy(qubo, options.num_reads,
                                     ToNoiseModel(options.noise), rng);
    }
    return sampler.SampleQubo(qubo, options.num_reads, rng);
  }
  std::string name() const override { return "grover_min"; }
};

}  // namespace

bool RegisterGateBasedSolvers() {
  auto& registry = anneal::SolverRegistry::Global();
  // AlreadyExists on re-entry is expected and harmless.
  (void)registry.Register("qaoa", [] {
    return std::make_unique<VariationalSolver<QaoaSampler>>("qaoa", "QAOA");
  });
  (void)registry.Register("vqe", [] {
    return std::make_unique<VariationalSolver<VqeSampler>>("vqe", "VQE");
  });
  (void)registry.Register("grover_min",
                          [] { return std::make_unique<GroverMinSolver>(); });
  return true;
}

namespace {
[[maybe_unused]] const bool kGateBasedSolversRegistered =
    RegisterGateBasedSolvers();
}  // namespace

}  // namespace algo
}  // namespace qdm
