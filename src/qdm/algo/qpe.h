#ifndef QDM_ALGO_QPE_H_
#define QDM_ALGO_QPE_H_

#include <cstdint>

#include "qdm/circuit/circuit.h"
#include "qdm/common/rng.h"

namespace qdm {
namespace algo {

/// Quantum phase estimation result.
struct QpeResult {
  /// Measured t-bit integer m; the estimate is m / 2^t.
  uint64_t raw = 0;
  double estimate = 0.0;
  int precision_qubits = 0;
};

/// Builds the canonical QPE circuit estimating the eigenphase `phase` of the
/// unitary U = diag(1, e^{2 pi i phase}) acting on an eigenstate |1>.
/// Layout: qubits [0, t) = counting register, qubit t = eigenstate register.
circuit::Circuit QpeCircuit(double phase, int precision_qubits);

/// Runs QPE and measures the counting register once.
/// |estimate - phase| <= 2^-t holds with probability >= 8/pi^2 ~ 0.81, and
/// the estimate is exact whenever phase is a t-bit dyadic rational.
QpeResult EstimatePhase(double phase, int precision_qubits, Rng* rng);

}  // namespace algo
}  // namespace qdm

#endif  // QDM_ALGO_QPE_H_
