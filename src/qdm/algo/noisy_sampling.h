#ifndef QDM_ALGO_NOISY_SAMPLING_H_
#define QDM_ALGO_NOISY_SAMPLING_H_

#include <vector>

#include "qdm/anneal/noise_spec.h"
#include "qdm/anneal/sampler.h"
#include "qdm/anneal/solver.h"
#include "qdm/circuit/circuit.h"
#include "qdm/common/rng.h"
#include "qdm/sim/noise.h"

namespace qdm {
namespace algo {

/// Largest qubit count solved with exact density-matrix channel evolution;
/// larger circuits fall back to per-shot trajectory sampling (the
/// trajectory-vs-density-matrix decision rule of docs/noise.md).
constexpr int kMaxDensityQubits = 6;

/// Translates the anneal-layer noise knob into the sim-layer model the
/// trajectory/density machinery consumes. A depol spec drives both the
/// one- and two-qubit depolarizing rates.
sim::NoiseModel ToNoiseModel(const anneal::NoiseSpec& spec);

/// Samples `num_reads` measurement outcomes of the (fully bound) circuit `c`
/// under `model`, scoring each outcome z against `diagonal` (the QUBO energy
/// of basis state z, variable i read from bit i). Small circuits
/// (<= kMaxDensityQubits) use exact density-matrix evolution; larger ones
/// run one trajectory per shot. The returned set carries noise_fidelity:
/// the ideal-state overlap of the evolved density matrix, or the mean
/// |<ideal|trajectory>|^2 on the trajectory path.
///
/// Determinism contract (docs/noise.md): with options.rng == nullptr, shot s
/// runs on its own Rng seeded `seed + s` (seed 0 mapping to the library
/// default first, mirroring ResolveSolverRng), so results are bit-identical
/// at every thread count and SolveBatchParallel instance i equals a
/// standalone solve at seed + i. A non-null options.rng draws one engine
/// value per shot as that shot's seed (sequential, order-dependent).
anneal::SampleSet SampleCircuitNoisy(const circuit::Circuit& c,
                                     const std::vector<double>& diagonal,
                                     const sim::NoiseModel& model,
                                     int num_reads,
                                     const anneal::SolverOptions& options);

/// Classical readout-corruption fallback for bridges without a gate-level
/// circuit (grover_min's adaptive Durr-Hoyer loop manipulates the
/// statevector directly, so per-gate error injection has nowhere to hook).
/// Each measured bit is corrupted once with the channel's computational-
/// basis error probabilities — depol flips with 2p/3 (X or Y), pauli with
/// px + py, damp decays a measured 1 with gamma, readout flips with p;
/// phase damping has no computational-basis effect. `survival` (if non-null)
/// receives the probability that this read came through unflipped — its
/// mean over reads is the grover-path noise_fidelity.
uint64_t CorruptBasisState(uint64_t z, int num_qubits,
                           const sim::NoiseModel& model, Rng* rng,
                           double* survival);

}  // namespace algo
}  // namespace qdm

#endif  // QDM_ALGO_NOISY_SAMPLING_H_
