#include "qdm/algo/noisy_sampling.h"

#include <algorithm>
#include <utility>

#include "qdm/common/check.h"
#include "qdm/sim/density_matrix.h"
#include "qdm/sim/statevector.h"

namespace qdm {
namespace algo {

namespace {

/// Shot s's private Rng: seeded `seed + s` (with the zero-means-default seed
/// mapping of ResolveSolverRng) on the seed path, or from one engine draw of
/// the caller's shared Rng on the sequential rng path.
Rng MakeShotRng(const anneal::SolverOptions& options, int shot) {
  if (options.rng != nullptr) return Rng(options.rng->engine()());
  const uint64_t base = options.seed != 0 ? options.seed : Rng::kDefaultSeed;
  return Rng(base + static_cast<uint64_t>(shot));
}

uint64_t ApplyReadoutFlips(uint64_t z, int num_qubits, double p, Rng* rng) {
  if (p <= 0.0) return z;
  for (int q = 0; q < num_qubits; ++q) {
    if (rng->Bernoulli(p)) z ^= uint64_t{1} << q;
  }
  return z;
}

void AddBasisSample(anneal::SampleSet* set, const std::vector<double>& diagonal,
                    int num_variables, uint64_t z) {
  anneal::Assignment x(num_variables);
  for (int i = 0; i < num_variables; ++i) x[i] = (z >> i) & 1;
  set->Add(anneal::Sample{std::move(x), diagonal[z], 0.0});
}

}  // namespace

sim::NoiseModel ToNoiseModel(const anneal::NoiseSpec& spec) {
  sim::NoiseModel model;
  switch (spec.channel) {
    case anneal::NoiseChannel::kNone:
      break;
    case anneal::NoiseChannel::kDepolarizing:
      model.depolarizing_1q = spec.p;
      model.depolarizing_2q = spec.p;
      break;
    case anneal::NoiseChannel::kPauli:
      model.pauli_px = spec.px;
      model.pauli_py = spec.py;
      model.pauli_pz = spec.pz;
      break;
    case anneal::NoiseChannel::kAmplitudeDamping:
      model.amplitude_damping = spec.p;
      break;
    case anneal::NoiseChannel::kPhaseDamping:
      model.phase_damping = spec.p;
      break;
    case anneal::NoiseChannel::kReadout:
      model.readout_flip = spec.p;
      break;
  }
  return model;
}

anneal::SampleSet SampleCircuitNoisy(const circuit::Circuit& c,
                                     const std::vector<double>& diagonal,
                                     const sim::NoiseModel& model,
                                     int num_reads,
                                     const anneal::SolverOptions& options) {
  QDM_CHECK_GT(num_reads, 0);
  const int n = c.num_qubits();
  QDM_CHECK_EQ(diagonal.size(), uint64_t{1} << n);
  const sim::Statevector ideal = sim::RunCircuit(c);
  anneal::SampleSet set;

  if (n <= kMaxDensityQubits) {
    // Exact channel semantics: evolve the density matrix once, then sample
    // its computational-basis diagonal per shot (readout errors are
    // classical bit flips on the outcome).
    const sim::DensityMatrix rho = sim::EvolveDensityMatrix(c, model);
    std::vector<double> probabilities(rho.dimension());
    for (size_t z = 0; z < probabilities.size(); ++z) {
      probabilities[z] = std::max(0.0, rho.matrix()(z, z).real());
    }
    for (int read = 0; read < num_reads; ++read) {
      Rng shot_rng = MakeShotRng(options, read);
      uint64_t z = static_cast<uint64_t>(shot_rng.Categorical(probabilities));
      z = ApplyReadoutFlips(z, n, model.readout_flip, &shot_rng);
      AddBasisSample(&set, diagonal, n, z);
    }
    set.set_noise_fidelity(rho.FidelityWithPure(ideal));
    return set;
  }

  // Trajectory path: one fresh noise realization per shot, fidelity averaged
  // over shots (|<ideal|.>|^2 is global-phase invariant, so BuildCircuit-
  // style gate decompositions compare cleanly against fast-path ideals).
  const sim::TrajectorySimulator simulator(model);
  double fidelity_total = 0.0;
  for (int read = 0; read < num_reads; ++read) {
    Rng shot_rng = MakeShotRng(options, read);
    const sim::Statevector trajectory = simulator.RunTrajectory(c, &shot_rng);
    uint64_t z = trajectory.SampleBasisState(&shot_rng);
    z = ApplyReadoutFlips(z, n, model.readout_flip, &shot_rng);
    fidelity_total += trajectory.FidelityWith(ideal);
    AddBasisSample(&set, diagonal, n, z);
  }
  set.set_noise_fidelity(fidelity_total / num_reads);
  return set;
}

uint64_t CorruptBasisState(uint64_t z, int num_qubits,
                           const sim::NoiseModel& model, Rng* rng,
                           double* survival) {
  double keep = 1.0;
  // Worst arity: the Durr-Hoyer loop's gates are two-qubit dominated.
  const double depol = std::max(model.depolarizing_1q, model.depolarizing_2q);
  const double flip = 2.0 * depol / 3.0 + model.pauli_px + model.pauli_py +
                      model.readout_flip;
  for (int q = 0; q < num_qubits; ++q) {
    const uint64_t bit = uint64_t{1} << q;
    if (flip > 0.0) {
      keep *= 1.0 - std::min(1.0, flip);
      if (rng->Bernoulli(std::min(1.0, flip))) z ^= bit;
    }
    if (model.amplitude_damping > 0.0 && (z & bit) != 0) {
      keep *= 1.0 - model.amplitude_damping;
      if (rng->Bernoulli(model.amplitude_damping)) z &= ~bit;
    }
  }
  if (survival != nullptr) *survival = keep;
  return z;
}

}  // namespace algo
}  // namespace qdm
