#include "qdm/net/server.h"

#include <errno.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <utility>

#include "qdm/anneal/solver.h"
#include "qdm/common/strings.h"
#include "qdm/net/wire.h"

namespace qdm {
namespace net {

namespace {

constexpr int kAcceptPollMillis = 200;

HttpResponse ErrorResponse(const Status& status) {
  HttpResponse response;
  response.status = StatusCodeToHttpStatus(status.code());
  response.body = EncodeErrorBody(status);
  return response;
}

HttpResponse OkResponse(std::string body) {
  HttpResponse response;
  response.status = 200;
  response.body = std::move(body);
  return response;
}

/// Strict decimal job-id parse for path segments.
bool ParseJobId(const std::string& token, service::JobId* id) {
  if (token.empty() || token.size() > 20) return false;
  uint64_t value = 0;
  for (char c : token) {
    if (c < '0' || c > '9') return false;
    const uint64_t digit = static_cast<uint64_t>(c - '0');
    if (value > (UINT64_MAX - digit) / 10) return false;
    value = value * 10 + digit;
  }
  *id = value;
  return true;
}

}  // namespace

Result<std::unique_ptr<QdmServer>> QdmServer::Start(
    const ServerConfig& config) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Status::Internal("socket() failed");

  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  struct sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(config.port));
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::bind(fd, reinterpret_cast<struct sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    const std::string message = StrFormat(
        "bind to 127.0.0.1:%d failed: %s", config.port,
        std::strerror(errno));
    ::close(fd);
    return Status::Internal(message);
  }
  if (::listen(fd, 128) != 0) {
    ::close(fd);
    return Status::Internal("listen() failed");
  }

  socklen_t addr_len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<struct sockaddr*>(&addr),
                    &addr_len) != 0) {
    ::close(fd);
    return Status::Internal("getsockname() failed");
  }
  const int bound_port = ntohs(addr.sin_port);

  std::unique_ptr<QdmServer> server(
      new QdmServer(fd, bound_port, config.service));
  return server;
}

QdmServer::QdmServer(int listen_fd, int port,
                     const service::ServiceConfig& config)
    : listen_fd_(listen_fd),
      port_(port),
      service_(new service::SolverService(config)) {
  acceptor_ = std::thread([this] { AcceptLoop(); });
}

QdmServer::~QdmServer() { Stop(); }

void QdmServer::Stop() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stopped_) return;
    stopped_ = true;
  }
  stop_.store(true, std::memory_order_release);
  acceptor_.join();
  ::close(listen_fd_);

  // Drain the service FIRST: queued jobs resolve Cancelled and running
  // jobs finish, so any connection blocked in Wait() gets its response
  // and reaches the next request boundary, where it observes stop_.
  service_->Shutdown();

  std::vector<std::thread> connections;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    connections.swap(connections_);
  }
  for (std::thread& connection : connections) connection.join();
}

void QdmServer::AcceptLoop() {
  while (!stop_.load(std::memory_order_acquire)) {
    struct pollfd pfd;
    pfd.fd = listen_fd_;
    pfd.events = POLLIN;
    pfd.revents = 0;
    const int ready = ::poll(&pfd, 1, kAcceptPollMillis);
    if (ready <= 0) continue;  // Timeout or EINTR: re-check stop_.
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) continue;
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    std::lock_guard<std::mutex> lock(mutex_);
    if (stop_.load(std::memory_order_acquire)) {
      ::close(fd);
      return;
    }
    connections_.emplace_back([this, fd] { ServeConnection(fd); });
  }
}

void QdmServer::ServeConnection(int fd) {
  HttpConnection connection(fd);
  while (true) {
    HttpRequest request;
    std::string error;
    const HttpConnection::ReadOutcome outcome =
        connection.ReadRequest(&request, &stop_, &error);
    switch (outcome) {
      case HttpConnection::ReadOutcome::kClosed:
      case HttpConnection::ReadOutcome::kStopped:
        return;
      case HttpConnection::ReadOutcome::kBad: {
        HttpResponse response =
            ErrorResponse(Status::InvalidArgument(error));
        connection.WriteResponse(response, /*keep_alive=*/false);
        return;
      }
      case HttpConnection::ReadOutcome::kRequest:
        break;
    }
    const bool keep_alive =
        request.keep_alive && !stop_.load(std::memory_order_acquire);
    if (!connection.WriteResponse(Handle(request), keep_alive)) return;
    if (!keep_alive) return;
  }
}

HttpResponse QdmServer::Handle(const HttpRequest& request) {
  if (request.target == "/healthz" && request.method == "GET") {
    return OkResponse(EncodeHealthResponse(service_->accepting()));
  }
  if (request.target == "/v1/solvers" && request.method == "GET") {
    return OkResponse(EncodeSolversResponse(
        anneal::SolverRegistry::Global().RegisteredNames()));
  }
  if (request.target == "/v1/stats" && request.method == "GET") {
    StatsResponse stats;
    stats.stats = service_->stats();
    stats.accepting = service_->accepting();
    stats.num_workers = service_->num_workers();
    return OkResponse(EncodeStatsResponse(stats));
  }
  if (request.target == "/v1/jobs" && request.method == "POST") {
    return HandleSubmit(request.body);
  }
  if (request.target.rfind("/v1/jobs/", 0) == 0) {
    return HandleJobRoute(request.method, request.target);
  }
  return ErrorResponse(Status::NotFound(StrFormat(
      "no route %s %s", request.method.c_str(), request.target.c_str())));
}

HttpResponse QdmServer::HandleSubmit(const std::string& body) {
  Result<JobRequest> decoded = DecodeJobRequest(body);
  if (!decoded.ok()) return ErrorResponse(decoded.status());
  JobRequest& request = *decoded;

  service::SubmitOptions submit;
  submit.deadline = request.deadline;

  service::JobId id = 0;
  switch (request.type) {
    case JobRequest::Type::kSubmit: {
      Result<service::SubmittedJob> job = service_->Submit(
          request.solver, std::move(request.qubos[0]), request.options,
          submit);
      if (!job.ok()) return ErrorResponse(job.status());
      id = job->id;
      break;
    }
    case JobRequest::Type::kSubmitBatch: {
      Result<service::SubmittedBatch> job = service_->SubmitBatch(
          request.solver, std::move(request.qubos), request.options, submit);
      if (!job.ok()) return ErrorResponse(job.status());
      id = job->id;
      break;
    }
    case JobRequest::Type::kSubmitRace: {
      Result<service::SubmittedJob> job = service_->SubmitRace(
          request.members, std::move(request.qubos[0]), request.options,
          submit);
      if (!job.ok()) return ErrorResponse(job.status());
      id = job->id;
      break;
    }
  }
  return OkResponse(EncodeSubmitResponse(id));
}

HttpResponse QdmServer::HandleJobRoute(const std::string& method,
                                       const std::string& target) {
  // target = /v1/jobs/<id>[/wait]
  std::string rest = target.substr(std::strlen("/v1/jobs/"));
  bool wait = false;
  const size_t slash = rest.find('/');
  if (slash != std::string::npos) {
    const std::string suffix = rest.substr(slash);
    if (suffix != "/wait") {
      return ErrorResponse(
          Status::NotFound(StrFormat("no route %s %s", method.c_str(),
                                     target.c_str())));
    }
    wait = true;
    rest = rest.substr(0, slash);
  }
  service::JobId id = 0;
  if (!ParseJobId(rest, &id)) {
    return ErrorResponse(Status::InvalidArgument(StrFormat(
        "job id: '%s' is not a decimal job id", rest.c_str())));
  }

  if (wait) {
    if (method != "POST") {
      return ErrorResponse(Status::NotFound(StrFormat(
          "no route %s %s", method.c_str(), target.c_str())));
    }
    Result<std::vector<anneal::SampleSet>> results = service_->Wait(id);
    if (!results.ok()) return ErrorResponse(results.status());
    return OkResponse(EncodeResultsResponse(*results));
  }
  if (method == "GET") {
    Result<service::JobSnapshot> snapshot = service_->Poll(id);
    if (!snapshot.ok()) return ErrorResponse(snapshot.status());
    return OkResponse(EncodeSnapshotResponse(*snapshot));
  }
  if (method == "DELETE") {
    const Status status = service_->Cancel(id);
    if (!status.ok()) return ErrorResponse(status);
    return OkResponse(EncodeCancelResponse(id));
  }
  return ErrorResponse(Status::NotFound(
      StrFormat("no route %s %s", method.c_str(), target.c_str())));
}

}  // namespace net
}  // namespace qdm
