#ifndef QDM_NET_SERVER_H_
#define QDM_NET_SERVER_H_

#include <atomic>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "qdm/common/status.h"
#include "qdm/net/http.h"
#include "qdm/service/solver_service.h"

namespace qdm {
namespace net {

/// Construction-time configuration of a QdmServer.
struct ServerConfig {
  /// TCP port to bind on 127.0.0.1; 0 asks the kernel for an ephemeral
  /// port (read it back from QdmServer::port()).
  int port = 0;

  /// Forwarded to the wrapped SolverService (worker cap, admission
  /// watermarks).
  service::ServiceConfig service;
};

/// The qdmd daemon core: a blocking HTTP/1.1 front end over one
/// SolverService. Endpoints (bodies are the qdm/net wire format, see
/// docs/network.md):
///
///   POST   /v1/jobs           submit | submit_batch | submit_race
///   GET    /v1/jobs/<id>      poll (one JobSnapshot)
///   POST   /v1/jobs/<id>/wait block until terminal, return results
///   DELETE /v1/jobs/<id>      cancel
///   GET    /v1/solvers        exactly-registered backend names
///   GET    /v1/stats          ServiceStats + accepting + num_workers
///   GET    /healthz           liveness probe
///
/// Error contract: every non-2xx response maps the underlying Status
/// through StatusCodeToHttpStatus and carries EncodeErrorBody(status) —
/// the exact (code, message) pair the synchronous in-process path
/// produces, so a remote caller sees byte-identical errors.
///
/// Threading: one acceptor thread plus one thread per live connection
/// (handlers block in SolverService::Wait, so connections cannot share
/// the solver pool without deadlock). Stop() is graceful: stop accepting,
/// shut the service down (queued jobs resolve Cancelled, running jobs
/// finish), then join every connection at its next request boundary.
class QdmServer {
 public:
  /// Binds, listens, and starts the acceptor. The only expected failure
  /// is the bind (port taken / privileged), reported as Internal.
  static Result<std::unique_ptr<QdmServer>> Start(const ServerConfig& config);

  /// Equivalent to Stop().
  ~QdmServer();

  QdmServer(const QdmServer&) = delete;
  QdmServer& operator=(const QdmServer&) = delete;

  /// The bound port (the kernel's choice when config.port was 0).
  int port() const { return port_; }

  service::SolverService& service() { return *service_; }

  /// Graceful shutdown; idempotent. Returns once every connection thread
  /// has exited and the service is drained.
  void Stop();

  /// Pure routing: maps one parsed request to its response. Public so the
  /// dispatch table is unit-testable without sockets.
  HttpResponse Handle(const HttpRequest& request);

 private:
  QdmServer(int listen_fd, int port, const service::ServiceConfig& config);

  void AcceptLoop();
  void ServeConnection(int fd);

  HttpResponse HandleSubmit(const std::string& body);
  HttpResponse HandleJobRoute(const std::string& method,
                              const std::string& target);

  int listen_fd_;
  int port_;
  std::unique_ptr<service::SolverService> service_;
  std::atomic<bool> stop_{false};
  std::thread acceptor_;
  std::mutex mutex_;  // Guards connections_.
  std::vector<std::thread> connections_;
  bool stopped_ = false;  // Guarded by mutex_; makes Stop() idempotent.
};

}  // namespace net
}  // namespace qdm

#endif  // QDM_NET_SERVER_H_
