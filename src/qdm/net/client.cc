#include "qdm/net/client.h"

#include <utility>

#include "qdm/common/strings.h"

namespace qdm {
namespace net {

namespace {

std::string JobTarget(service::JobId id, const char* suffix) {
  return StrFormat("/v1/jobs/%llu%s", static_cast<unsigned long long>(id),
                   suffix);
}

}  // namespace

Result<std::string> QdmClient::RoundTrip(const std::string& method,
                                         const std::string& target,
                                         const std::string& body) {
  QDM_ASSIGN_OR_RETURN(const HttpResponse response,
                       HttpRoundTrip(port_, method, target, body));
  if (response.status >= 200 && response.status < 300) {
    return response.body;
  }
  Status remote;
  const Status decode = DecodeErrorBody(response.body, &remote);
  if (!decode.ok()) {
    return Status::Internal(StrFormat(
        "HTTP %d with undecodable error body (%s)", response.status,
        decode.message().c_str()));
  }
  return remote;
}

Result<service::JobId> QdmClient::SubmitRequest(const JobRequest& request) {
  QDM_ASSIGN_OR_RETURN(
      const std::string body,
      RoundTrip("POST", "/v1/jobs", EncodeJobRequest(request)));
  return DecodeSubmitResponse(body);
}

Result<service::JobId> QdmClient::Submit(const std::string& solver,
                                         const anneal::Qubo& qubo,
                                         const anneal::SolverOptions& options,
                                         std::chrono::nanoseconds deadline) {
  JobRequest request;
  request.type = JobRequest::Type::kSubmit;
  request.solver = solver;
  request.qubos.push_back(qubo);
  request.options = options;
  request.deadline = deadline;
  return SubmitRequest(request);
}

Result<service::JobId> QdmClient::SubmitBatch(
    const std::string& solver, const std::vector<anneal::Qubo>& qubos,
    const anneal::SolverOptions& options, std::chrono::nanoseconds deadline) {
  JobRequest request;
  request.type = JobRequest::Type::kSubmitBatch;
  request.solver = solver;
  request.qubos = qubos;
  request.options = options;
  request.deadline = deadline;
  return SubmitRequest(request);
}

Result<service::JobId> QdmClient::SubmitRace(
    const std::vector<std::string>& members, const anneal::Qubo& qubo,
    const anneal::SolverOptions& options, std::chrono::nanoseconds deadline) {
  JobRequest request;
  request.type = JobRequest::Type::kSubmitRace;
  request.members = members;
  request.qubos.push_back(qubo);
  request.options = options;
  request.deadline = deadline;
  return SubmitRequest(request);
}

Result<service::JobSnapshot> QdmClient::Poll(service::JobId id) {
  QDM_ASSIGN_OR_RETURN(const std::string body,
                       RoundTrip("GET", JobTarget(id, ""), ""));
  return DecodeSnapshotResponse(body);
}

Result<std::vector<anneal::SampleSet>> QdmClient::Wait(service::JobId id) {
  QDM_ASSIGN_OR_RETURN(const std::string body,
                       RoundTrip("POST", JobTarget(id, "/wait"), ""));
  return DecodeResultsResponse(body);
}

Status QdmClient::Cancel(service::JobId id) {
  return RoundTrip("DELETE", JobTarget(id, ""), "").status();
}

Result<anneal::SampleSet> QdmClient::Solve(
    const std::string& solver, const anneal::Qubo& qubo,
    const anneal::SolverOptions& options) {
  QDM_ASSIGN_OR_RETURN(const service::JobId id,
                       Submit(solver, qubo, options));
  QDM_ASSIGN_OR_RETURN(std::vector<anneal::SampleSet> results, Wait(id));
  if (results.size() != 1) {
    return Status::Internal(StrFormat(
        "submit job resolved with %zu sample sets (expected 1)",
        results.size()));
  }
  return std::move(results[0]);
}

Result<std::vector<anneal::SampleSet>> QdmClient::SolveBatch(
    const std::string& solver, const std::vector<anneal::Qubo>& qubos,
    const anneal::SolverOptions& options) {
  QDM_ASSIGN_OR_RETURN(const service::JobId id,
                       SubmitBatch(solver, qubos, options));
  return Wait(id);
}

Result<std::vector<std::string>> QdmClient::ListSolvers() {
  QDM_ASSIGN_OR_RETURN(const std::string body,
                       RoundTrip("GET", "/v1/solvers", ""));
  return DecodeSolversResponse(body);
}

Result<StatsResponse> QdmClient::Stats() {
  QDM_ASSIGN_OR_RETURN(const std::string body,
                       RoundTrip("GET", "/v1/stats", ""));
  return DecodeStatsResponse(body);
}

Status QdmClient::Healthz() {
  return RoundTrip("GET", "/healthz", "").status();
}

}  // namespace net
}  // namespace qdm
