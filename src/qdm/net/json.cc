#include "qdm/net/json.h"

#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <utility>

#include "qdm/common/strings.h"

namespace qdm {
namespace net {

namespace {

constexpr int kMaxDepth = 64;

Status ParseError(size_t offset, const std::string& what) {
  return Status::InvalidArgument(
      StrFormat("JSON parse error at offset %zu: %s", offset, what.c_str()));
}

/// Recursive-descent parser over [text_, text_ + size_). Error statuses
/// carry the current byte offset.
class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  Result<JsonValue> Parse() {
    JsonValue value;
    Status status = ParseValue(&value, 0);
    if (!status.ok()) return status;
    SkipWhitespace();
    if (pos_ != text_.size()) {
      return ParseError(pos_, "trailing content after the JSON document");
    }
    return value;
  }

 private:
  void SkipWhitespace() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  bool AtEnd() const { return pos_ >= text_.size(); }

  Status ParseValue(JsonValue* out, int depth) {
    if (depth > kMaxDepth) {
      return ParseError(pos_, "nesting exceeds the depth limit");
    }
    SkipWhitespace();
    if (AtEnd()) return ParseError(pos_, "unexpected end of input");
    switch (text_[pos_]) {
      case '{':
        return ParseObject(out, depth);
      case '[':
        return ParseArray(out, depth);
      case '"':
        return ParseStringValue(out);
      case 't':
      case 'f':
        return ParseBool(out);
      case 'n':
        return ParseNull(out);
      default:
        return ParseNumber(out);
    }
  }

  Status ParseObject(JsonValue* out, int depth) {
    ++pos_;  // '{'
    JsonValue::Members members;
    SkipWhitespace();
    if (!AtEnd() && text_[pos_] == '}') {
      ++pos_;
      *out = JsonValue::MakeObject(std::move(members));
      return Status::Ok();
    }
    for (;;) {
      SkipWhitespace();
      if (AtEnd() || text_[pos_] != '"') {
        return ParseError(pos_, "expected a quoted object key");
      }
      std::string key;
      QDM_RETURN_IF_ERROR(ParseStringLiteral(&key));
      SkipWhitespace();
      if (AtEnd() || text_[pos_] != ':') {
        return ParseError(pos_, "expected ':' after object key");
      }
      ++pos_;
      JsonValue value;
      QDM_RETURN_IF_ERROR(ParseValue(&value, depth + 1));
      members.emplace_back(std::move(key), std::move(value));
      SkipWhitespace();
      if (AtEnd()) return ParseError(pos_, "unterminated object");
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == '}') {
        ++pos_;
        *out = JsonValue::MakeObject(std::move(members));
        return Status::Ok();
      }
      return ParseError(pos_, "expected ',' or '}' in object");
    }
  }

  Status ParseArray(JsonValue* out, int depth) {
    ++pos_;  // '['
    std::vector<JsonValue> items;
    SkipWhitespace();
    if (!AtEnd() && text_[pos_] == ']') {
      ++pos_;
      *out = JsonValue::MakeArray(std::move(items));
      return Status::Ok();
    }
    for (;;) {
      JsonValue value;
      QDM_RETURN_IF_ERROR(ParseValue(&value, depth + 1));
      items.push_back(std::move(value));
      SkipWhitespace();
      if (AtEnd()) return ParseError(pos_, "unterminated array");
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == ']') {
        ++pos_;
        *out = JsonValue::MakeArray(std::move(items));
        return Status::Ok();
      }
      return ParseError(pos_, "expected ',' or ']' in array");
    }
  }

  Status ParseStringValue(JsonValue* out) {
    std::string value;
    QDM_RETURN_IF_ERROR(ParseStringLiteral(&value));
    *out = JsonValue::MakeString(std::move(value));
    return Status::Ok();
  }

  Status ParseStringLiteral(std::string* out) {
    ++pos_;  // opening '"'
    std::string value;
    while (!AtEnd()) {
      const unsigned char c = static_cast<unsigned char>(text_[pos_]);
      if (c == '"') {
        ++pos_;
        *out = std::move(value);
        return Status::Ok();
      }
      if (c == '\\') {
        QDM_RETURN_IF_ERROR(ParseEscape(&value));
        continue;
      }
      if (c < 0x20) {
        return ParseError(pos_, "unescaped control character in string");
      }
      value.push_back(static_cast<char>(c));
      ++pos_;
    }
    return ParseError(pos_, "unterminated string");
  }

  Status ParseEscape(std::string* out) {
    ++pos_;  // '\\'
    if (AtEnd()) return ParseError(pos_, "dangling escape");
    const char c = text_[pos_++];
    switch (c) {
      case '"':
      case '\\':
      case '/':
        out->push_back(c);
        return Status::Ok();
      case 'b':
        out->push_back('\b');
        return Status::Ok();
      case 'f':
        out->push_back('\f');
        return Status::Ok();
      case 'n':
        out->push_back('\n');
        return Status::Ok();
      case 'r':
        out->push_back('\r');
        return Status::Ok();
      case 't':
        out->push_back('\t');
        return Status::Ok();
      case 'u':
        return ParseUnicodeEscape(out);
      default:
        return ParseError(pos_ - 1, "unknown escape character");
    }
  }

  Status ParseHex4(uint32_t* out) {
    if (pos_ + 4 > text_.size()) {
      return ParseError(pos_, "truncated \\u escape");
    }
    uint32_t value = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text_[pos_ + i];
      value <<= 4;
      if (c >= '0' && c <= '9') {
        value |= static_cast<uint32_t>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        value |= static_cast<uint32_t>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        value |= static_cast<uint32_t>(c - 'A' + 10);
      } else {
        return ParseError(pos_ + i, "invalid hex digit in \\u escape");
      }
    }
    pos_ += 4;
    *out = value;
    return Status::Ok();
  }

  Status ParseUnicodeEscape(std::string* out) {
    uint32_t code_point = 0;
    QDM_RETURN_IF_ERROR(ParseHex4(&code_point));
    if (code_point >= 0xD800 && code_point <= 0xDBFF) {
      // High surrogate: a \uXXXX low surrogate must follow.
      if (pos_ + 1 >= text_.size() || text_[pos_] != '\\' ||
          text_[pos_ + 1] != 'u') {
        return ParseError(pos_, "high surrogate not followed by \\u escape");
      }
      pos_ += 2;
      uint32_t low = 0;
      QDM_RETURN_IF_ERROR(ParseHex4(&low));
      if (low < 0xDC00 || low > 0xDFFF) {
        return ParseError(pos_ - 4, "invalid low surrogate");
      }
      code_point = 0x10000 + ((code_point - 0xD800) << 10) + (low - 0xDC00);
    } else if (code_point >= 0xDC00 && code_point <= 0xDFFF) {
      return ParseError(pos_ - 4, "unpaired low surrogate");
    }
    AppendUtf8(code_point, out);
    return Status::Ok();
  }

  static void AppendUtf8(uint32_t cp, std::string* out) {
    if (cp < 0x80) {
      out->push_back(static_cast<char>(cp));
    } else if (cp < 0x800) {
      out->push_back(static_cast<char>(0xC0 | (cp >> 6)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else if (cp < 0x10000) {
      out->push_back(static_cast<char>(0xE0 | (cp >> 12)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else {
      out->push_back(static_cast<char>(0xF0 | (cp >> 18)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    }
  }

  Status ParseBool(JsonValue* out) {
    if (text_.compare(pos_, 4, "true") == 0) {
      pos_ += 4;
      *out = JsonValue::MakeBool(true);
      return Status::Ok();
    }
    if (text_.compare(pos_, 5, "false") == 0) {
      pos_ += 5;
      *out = JsonValue::MakeBool(false);
      return Status::Ok();
    }
    return ParseError(pos_, "invalid literal");
  }

  Status ParseNull(JsonValue* out) {
    if (text_.compare(pos_, 4, "null") == 0) {
      pos_ += 4;
      *out = JsonValue();
      return Status::Ok();
    }
    return ParseError(pos_, "invalid literal");
  }

  Status ParseNumber(JsonValue* out) {
    const size_t start = pos_;
    if (!AtEnd() && text_[pos_] == '-') ++pos_;
    // Integer part: "0" or [1-9][0-9]*.
    if (AtEnd() || text_[pos_] < '0' || text_[pos_] > '9') {
      return ParseError(pos_, "expected a value");
    }
    if (text_[pos_] == '0') {
      ++pos_;
    } else {
      while (!AtEnd() && text_[pos_] >= '0' && text_[pos_] <= '9') ++pos_;
    }
    if (!AtEnd() && text_[pos_] == '.') {
      ++pos_;
      if (AtEnd() || text_[pos_] < '0' || text_[pos_] > '9') {
        return ParseError(pos_, "expected digits after decimal point");
      }
      while (!AtEnd() && text_[pos_] >= '0' && text_[pos_] <= '9') ++pos_;
    }
    if (!AtEnd() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (!AtEnd() && (text_[pos_] == '+' || text_[pos_] == '-')) ++pos_;
      if (AtEnd() || text_[pos_] < '0' || text_[pos_] > '9') {
        return ParseError(pos_, "expected digits in exponent");
      }
      while (!AtEnd() && text_[pos_] >= '0' && text_[pos_] <= '9') ++pos_;
    }
    *out = JsonValue::MakeNumberToken(text_.substr(start, pos_ - start));
    return Status::Ok();
  }

  const std::string& text_;
  size_t pos_ = 0;
};

bool TokenIsInteger(const std::string& token) {
  return token.find('.') == std::string::npos &&
         token.find('e') == std::string::npos &&
         token.find('E') == std::string::npos;
}

}  // namespace

JsonValue JsonValue::MakeBool(bool value) {
  JsonValue v;
  v.type_ = Type::kBool;
  v.bool_ = value;
  return v;
}

JsonValue JsonValue::MakeNumberToken(std::string token) {
  JsonValue v;
  v.type_ = Type::kNumber;
  v.scalar_ = std::move(token);
  return v;
}

JsonValue JsonValue::MakeString(std::string value) {
  JsonValue v;
  v.type_ = Type::kString;
  v.scalar_ = std::move(value);
  return v;
}

JsonValue JsonValue::MakeArray(std::vector<JsonValue> items) {
  JsonValue v;
  v.type_ = Type::kArray;
  v.array_ = std::move(items);
  return v;
}

JsonValue JsonValue::MakeObject(Members members) {
  JsonValue v;
  v.type_ = Type::kObject;
  v.members_ = std::move(members);
  return v;
}

const char* JsonValue::TypeName() const {
  switch (type_) {
    case Type::kNull:
      return "null";
    case Type::kBool:
      return "boolean";
    case Type::kNumber:
      return "number";
    case Type::kString:
      return "string";
    case Type::kArray:
      return "array";
    case Type::kObject:
      return "object";
  }
  return "unknown";
}

bool JsonValue::bool_value() const {
  QDM_CHECK(is_bool()) << "bool_value() on a " << TypeName();
  return bool_;
}

const std::string& JsonValue::number_token() const {
  QDM_CHECK(is_number()) << "number_token() on a " << TypeName();
  return scalar_;
}

const std::string& JsonValue::string_value() const {
  QDM_CHECK(is_string()) << "string_value() on a " << TypeName();
  return scalar_;
}

const std::vector<JsonValue>& JsonValue::array() const {
  QDM_CHECK(is_array()) << "array() on a " << TypeName();
  return array_;
}

const JsonValue::Members& JsonValue::members() const {
  QDM_CHECK(is_object()) << "members() on a " << TypeName();
  return members_;
}

const JsonValue* JsonValue::Find(const std::string& key) const {
  if (!is_object()) return nullptr;
  for (const auto& [name, value] : members_) {
    if (name == key) return &value;
  }
  return nullptr;
}

Result<double> JsonValue::AsDouble(const std::string& field) const {
  if (!is_number()) {
    return Status::InvalidArgument(StrFormat(
        "%s: expected a number, got %s", field.c_str(), TypeName()));
  }
  errno = 0;
  char* end = nullptr;
  const double value = std::strtod(scalar_.c_str(), &end);
  if (end != scalar_.c_str() + scalar_.size() || !std::isfinite(value)) {
    return Status::InvalidArgument(StrFormat(
        "%s: number '%s' does not fit a finite double (NaN/Inf are not "
        "representable on the wire)",
        field.c_str(), scalar_.c_str()));
  }
  return value;
}

Result<int64_t> JsonValue::AsInt64(const std::string& field) const {
  if (!is_number()) {
    return Status::InvalidArgument(StrFormat(
        "%s: expected an integer, got %s", field.c_str(), TypeName()));
  }
  if (!TokenIsInteger(scalar_)) {
    return Status::InvalidArgument(StrFormat(
        "%s: expected an integer, got '%s'", field.c_str(), scalar_.c_str()));
  }
  errno = 0;
  char* end = nullptr;
  const long long value = std::strtoll(scalar_.c_str(), &end, 10);
  if (errno == ERANGE || end != scalar_.c_str() + scalar_.size()) {
    return Status::InvalidArgument(StrFormat(
        "%s: integer '%s' out of int64 range", field.c_str(),
        scalar_.c_str()));
  }
  return static_cast<int64_t>(value);
}

Result<uint64_t> JsonValue::AsUint64(const std::string& field) const {
  if (!is_number()) {
    return Status::InvalidArgument(StrFormat(
        "%s: expected an unsigned integer, got %s", field.c_str(),
        TypeName()));
  }
  if (!TokenIsInteger(scalar_) || scalar_[0] == '-') {
    return Status::InvalidArgument(
        StrFormat("%s: expected an unsigned integer, got '%s'", field.c_str(),
                  scalar_.c_str()));
  }
  errno = 0;
  char* end = nullptr;
  const unsigned long long value = std::strtoull(scalar_.c_str(), &end, 10);
  if (errno == ERANGE || end != scalar_.c_str() + scalar_.size()) {
    return Status::InvalidArgument(StrFormat(
        "%s: integer '%s' out of uint64 range", field.c_str(),
        scalar_.c_str()));
  }
  return static_cast<uint64_t>(value);
}

Result<JsonValue> JsonParse(const std::string& text) {
  return Parser(text).Parse();
}

void JsonAppendQuoted(const std::string& value, std::string* out) {
  out->push_back('"');
  for (const char c : value) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\b':
        *out += "\\b";
        break;
      case '\f':
        *out += "\\f";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\r':
        *out += "\\r";
        break;
      case '\t':
        *out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          *out += StrFormat("\\u%04x", c);
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

void JsonAppendDouble(double value, std::string* out) {
  QDM_CHECK(std::isfinite(value))
      << "the wire format cannot represent NaN/Inf";
  *out += StrFormat("%.17g", value);
}

}  // namespace net
}  // namespace qdm
