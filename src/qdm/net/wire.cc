#include "qdm/net/wire.h"

#include <utility>

#include "qdm/common/strings.h"

namespace qdm {
namespace net {

namespace {

using anneal::ChainBreakPolicy;
using anneal::Qubo;
using anneal::Sample;
using anneal::SampleSet;
using anneal::SolverOptions;
using service::JobId;
using service::JobSnapshot;
using service::JobState;

Status TypeError(const std::string& field, const char* expected,
                 const JsonValue& value) {
  return Status::InvalidArgument(StrFormat("%s: expected %s, got %s",
                                           field.c_str(), expected,
                                           value.TypeName()));
}

Status MissingError(const std::string& field) {
  return Status::InvalidArgument(
      StrFormat("%s: missing required field", field.c_str()));
}

/// Strict-decode guard: every member of `value` must be in `allowed`.
Status RejectUnknownFields(const JsonValue& value, const std::string& field,
                           const std::vector<const char*>& allowed) {
  for (const auto& [key, unused] : value.members()) {
    bool known = false;
    for (const char* name : allowed) {
      if (key == name) {
        known = true;
        break;
      }
    }
    if (!known) {
      return Status::InvalidArgument(
          StrFormat("%s.%s: unknown field", field.c_str(), key.c_str()));
    }
  }
  return Status::Ok();
}

Result<int> DecodeIntField(const JsonValue& object, const std::string& field,
                           const char* key, int fallback) {
  const JsonValue* value = object.Find(key);
  if (value == nullptr) return fallback;
  const std::string path = field + "." + key;
  QDM_ASSIGN_OR_RETURN(const int64_t wide, value->AsInt64(path));
  if (wide < INT32_MIN || wide > INT32_MAX) {
    return Status::InvalidArgument(
        StrFormat("%s: integer %lld out of int range", path.c_str(),
                  static_cast<long long>(wide)));
  }
  return static_cast<int>(wide);
}

Result<double> DecodeDoubleField(const JsonValue& object,
                                 const std::string& field, const char* key,
                                 double fallback) {
  const JsonValue* value = object.Find(key);
  if (value == nullptr) return fallback;
  return value->AsDouble(field + "." + key);
}

const char* ChainBreakPolicyName(ChainBreakPolicy policy) {
  switch (policy) {
    case ChainBreakPolicy::kMajorityVote:
      return "majority_vote";
    case ChainBreakPolicy::kMinimizeEnergy:
      return "minimize_energy";
    case ChainBreakPolicy::kDiscard:
      return "discard";
  }
  return "majority_vote";
}

void AppendVersionPrefix(std::string* out) {
  *out += StrFormat("{\"version\":%d,", kWireVersion);
}

std::string WrapEnvelope(const std::string& fields) {
  std::string out;
  AppendVersionPrefix(&out);
  out += fields;
  out += "}";
  return out;
}

Result<JobId> DecodeJobIdField(const JsonValue& envelope,
                               const std::string& field, const char* key) {
  const JsonValue* id = envelope.Find(key);
  if (id == nullptr) return MissingError(field + "." + key);
  QDM_ASSIGN_OR_RETURN(const uint64_t value,
                       id->AsUint64(field + "." + key));
  return static_cast<JobId>(value);
}

}  // namespace

Result<JsonValue> ParseEnvelope(const std::string& text) {
  if (text.size() > kMaxPayloadBytes) {
    return Status::InvalidArgument(
        StrFormat("payload: %zu bytes exceeds the %zu-byte wire limit",
                  text.size(), kMaxPayloadBytes));
  }
  QDM_ASSIGN_OR_RETURN(JsonValue value, JsonParse(text));
  if (!value.is_object()) {
    return TypeError("envelope", "a JSON object", value);
  }
  const JsonValue* version = value.Find("version");
  if (version == nullptr) {
    return Status::InvalidArgument(StrFormat(
        "version: missing required field (this endpoint speaks wire "
        "version %d)",
        kWireVersion));
  }
  QDM_ASSIGN_OR_RETURN(const int64_t parsed, version->AsInt64("version"));
  if (parsed != kWireVersion) {
    return Status::InvalidArgument(StrFormat(
        "version: unsupported wire version %lld (this endpoint speaks %d)",
        static_cast<long long>(parsed), kWireVersion));
  }
  return value;
}

// -- Qubo ---------------------------------------------------------------------

void AppendQuboJson(const Qubo& qubo, std::string* out) {
  *out += StrFormat("{\"num_variables\":%d,\"offset\":",
                    qubo.num_variables());
  JsonAppendDouble(qubo.offset(), out);
  *out += ",\"linear\":[";
  for (int i = 0; i < qubo.num_variables(); ++i) {
    if (i > 0) out->push_back(',');
    JsonAppendDouble(qubo.linear(i), out);
  }
  *out += "],\"quadratic\":[";
  bool first = true;
  for (const auto& [key, weight] : qubo.quadratic_terms()) {
    if (!first) out->push_back(',');
    first = false;
    *out += StrFormat("[%d,%d,", key.first, key.second);
    JsonAppendDouble(weight, out);
    out->push_back(']');
  }
  *out += "]}";
}

Result<Qubo> DecodeQubo(const JsonValue& value, const std::string& field) {
  if (!value.is_object()) return TypeError(field, "a JSON object", value);
  QDM_RETURN_IF_ERROR(RejectUnknownFields(
      value, field, {"num_variables", "offset", "linear", "quadratic"}));

  const JsonValue* num_variables = value.Find("num_variables");
  if (num_variables == nullptr) {
    return MissingError(field + ".num_variables");
  }
  QDM_ASSIGN_OR_RETURN(const int64_t n, num_variables->AsInt64(
                                            field + ".num_variables"));
  if (n < 1 || n > kMaxWireVariables) {
    return Status::InvalidArgument(StrFormat(
        "%s.num_variables: %lld outside [1, %d]", field.c_str(),
        static_cast<long long>(n), kMaxWireVariables));
  }
  Qubo qubo(static_cast<int>(n));

  QDM_ASSIGN_OR_RETURN(const double offset,
                       DecodeDoubleField(value, field, "offset", 0.0));
  qubo.AddOffset(offset);

  const JsonValue* linear = value.Find("linear");
  if (linear != nullptr) {
    const std::string path = field + ".linear";
    if (!linear->is_array()) return TypeError(path, "an array", *linear);
    if (linear->array().size() != static_cast<size_t>(n)) {
      return Status::InvalidArgument(StrFormat(
          "%s: expected %lld entries (one per variable), got %zu",
          path.c_str(), static_cast<long long>(n), linear->array().size()));
    }
    for (size_t i = 0; i < linear->array().size(); ++i) {
      QDM_ASSIGN_OR_RETURN(
          const double weight,
          linear->array()[i].AsDouble(StrFormat("%s[%zu]", path.c_str(), i)));
      if (weight != 0.0) qubo.AddLinear(static_cast<int>(i), weight);
    }
  }

  const JsonValue* quadratic = value.Find("quadratic");
  if (quadratic != nullptr) {
    const std::string path = field + ".quadratic";
    if (!quadratic->is_array()) {
      return TypeError(path, "an array", *quadratic);
    }
    for (size_t t = 0; t < quadratic->array().size(); ++t) {
      const JsonValue& term = quadratic->array()[t];
      const std::string term_path = StrFormat("%s[%zu]", path.c_str(), t);
      if (!term.is_array() || term.array().size() != 3) {
        return Status::InvalidArgument(StrFormat(
            "%s: expected an [i, j, weight] triple", term_path.c_str()));
      }
      QDM_ASSIGN_OR_RETURN(const int64_t i,
                           term.array()[0].AsInt64(term_path + "[0]"));
      QDM_ASSIGN_OR_RETURN(const int64_t j,
                           term.array()[1].AsInt64(term_path + "[1]"));
      QDM_ASSIGN_OR_RETURN(const double weight,
                           term.array()[2].AsDouble(term_path + "[2]"));
      if (i < 0 || i >= n || j < 0 || j >= n || i == j) {
        return Status::InvalidArgument(StrFormat(
            "%s: variable pair (%lld, %lld) invalid for %lld variables",
            term_path.c_str(), static_cast<long long>(i),
            static_cast<long long>(j), static_cast<long long>(n)));
      }
      qubo.AddQuadratic(static_cast<int>(i), static_cast<int>(j), weight);
    }
  }
  return qubo;
}

// -- SolverOptions ------------------------------------------------------------

void AppendSolverOptionsJson(const SolverOptions& options, std::string* out) {
  QDM_CHECK(options.rng == nullptr)
      << "a SolverOptions with a live rng cannot cross the wire (seed-based "
         "randomness only)";
  *out += StrFormat("{\"num_reads\":%d,\"seed\":%llu,\"num_sweeps\":%d,",
                    options.num_reads,
                    static_cast<unsigned long long>(options.seed),
                    options.num_sweeps);
  *out += "\"beta_min\":";
  JsonAppendDouble(options.beta_min, out);
  *out += ",\"beta_max\":";
  JsonAppendDouble(options.beta_max, out);
  *out += StrFormat(
      ",\"num_replicas\":%d,\"swap_interval\":%d,\"max_iterations\":%d,"
      "\"tenure\":%d,\"layers\":%d,\"restarts\":%d,\"max_qubits\":%d,",
      options.num_replicas, options.swap_interval, options.max_iterations,
      options.tenure, options.layers, options.restarts, options.max_qubits);
  *out += "\"chain_strength\":";
  JsonAppendDouble(options.chain_strength, out);
  *out += StrFormat(",\"chain_break_policy\":\"%s\"}",
                    ChainBreakPolicyName(options.chain_break_policy));
}

Result<SolverOptions> DecodeSolverOptions(const JsonValue& value,
                                          const std::string& field) {
  if (!value.is_object()) return TypeError(field, "a JSON object", value);
  QDM_RETURN_IF_ERROR(RejectUnknownFields(
      value, field,
      {"num_reads", "seed", "num_sweeps", "beta_min", "beta_max",
       "num_replicas", "swap_interval", "max_iterations", "tenure", "layers",
       "restarts", "max_qubits", "chain_strength", "chain_break_policy"}));

  SolverOptions options;
  QDM_ASSIGN_OR_RETURN(
      options.num_reads,
      DecodeIntField(value, field, "num_reads", options.num_reads));
  const JsonValue* seed = value.Find("seed");
  if (seed != nullptr) {
    QDM_ASSIGN_OR_RETURN(options.seed, seed->AsUint64(field + ".seed"));
  }
  QDM_ASSIGN_OR_RETURN(options.num_sweeps,
                       DecodeIntField(value, field, "num_sweeps", 0));
  QDM_ASSIGN_OR_RETURN(options.beta_min,
                       DecodeDoubleField(value, field, "beta_min", 0.0));
  QDM_ASSIGN_OR_RETURN(options.beta_max,
                       DecodeDoubleField(value, field, "beta_max", 0.0));
  QDM_ASSIGN_OR_RETURN(options.num_replicas,
                       DecodeIntField(value, field, "num_replicas", 0));
  QDM_ASSIGN_OR_RETURN(options.swap_interval,
                       DecodeIntField(value, field, "swap_interval", 0));
  QDM_ASSIGN_OR_RETURN(options.max_iterations,
                       DecodeIntField(value, field, "max_iterations", 0));
  QDM_ASSIGN_OR_RETURN(options.tenure,
                       DecodeIntField(value, field, "tenure", 0));
  QDM_ASSIGN_OR_RETURN(options.layers,
                       DecodeIntField(value, field, "layers", 0));
  QDM_ASSIGN_OR_RETURN(options.restarts,
                       DecodeIntField(value, field, "restarts", 0));
  QDM_ASSIGN_OR_RETURN(options.max_qubits,
                       DecodeIntField(value, field, "max_qubits", 0));
  QDM_ASSIGN_OR_RETURN(options.chain_strength,
                       DecodeDoubleField(value, field, "chain_strength", 0.0));

  const JsonValue* policy = value.Find("chain_break_policy");
  if (policy != nullptr) {
    const std::string path = field + ".chain_break_policy";
    if (!policy->is_string()) return TypeError(path, "a string", *policy);
    const std::string& name = policy->string_value();
    if (name == "majority_vote") {
      options.chain_break_policy = ChainBreakPolicy::kMajorityVote;
    } else if (name == "minimize_energy") {
      options.chain_break_policy = ChainBreakPolicy::kMinimizeEnergy;
    } else if (name == "discard") {
      options.chain_break_policy = ChainBreakPolicy::kDiscard;
    } else {
      return Status::InvalidArgument(StrFormat(
          "%s: unknown policy '%s' (majority_vote | minimize_energy | "
          "discard)",
          path.c_str(), name.c_str()));
    }
  }
  return options;
}

// -- SampleSet ----------------------------------------------------------------

void AppendSampleSetJson(const SampleSet& samples, std::string* out) {
  *out += "{\"samples\":[";
  for (size_t i = 0; i < samples.size(); ++i) {
    const Sample& sample = samples.samples()[i];
    if (i > 0) out->push_back(',');
    *out += "{\"assignment\":[";
    for (size_t v = 0; v < sample.assignment.size(); ++v) {
      if (v > 0) out->push_back(',');
      *out += StrFormat("%d", sample.assignment[v]);
    }
    *out += "],\"energy\":";
    JsonAppendDouble(sample.energy, out);
    *out += ",\"chain_break_fraction\":";
    JsonAppendDouble(sample.chain_break_fraction, out);
    out->push_back('}');
  }
  out->push_back(']');
  // Emitted only when a noisy backend set it, so noiseless payloads stay
  // byte-identical to the v1 wire format.
  if (samples.noise_fidelity() != 1.0) {
    *out += ",\"noise_fidelity\":";
    JsonAppendDouble(samples.noise_fidelity(), out);
  }
  // Same conditional-field discipline: only adaptive:* solves carry a
  // decision record, so every other payload stays byte-identical to the
  // v1 wire format. The record is what makes a remote adaptive solve
  // replayable bit-exactly (anneal::ReplayAdaptiveDecision).
  if (!samples.decision().empty()) {
    *out += ",\"decision\":";
    JsonAppendQuoted(samples.decision(), out);
  }
  out->push_back('}');
}

Result<SampleSet> DecodeSampleSet(const JsonValue& value,
                                  const std::string& field) {
  if (!value.is_object()) return TypeError(field, "a JSON object", value);
  QDM_RETURN_IF_ERROR(RejectUnknownFields(
      value, field, {"samples", "noise_fidelity", "decision"}));
  const JsonValue* samples = value.Find("samples");
  if (samples == nullptr) return MissingError(field + ".samples");
  if (!samples->is_array()) {
    return TypeError(field + ".samples", "an array", *samples);
  }

  std::vector<Sample> decoded;
  decoded.reserve(samples->array().size());
  for (size_t s = 0; s < samples->array().size(); ++s) {
    const JsonValue& entry = samples->array()[s];
    const std::string path = StrFormat("%s.samples[%zu]", field.c_str(), s);
    if (!entry.is_object()) return TypeError(path, "a JSON object", entry);
    QDM_RETURN_IF_ERROR(RejectUnknownFields(
        entry, path, {"assignment", "energy", "chain_break_fraction"}));

    Sample sample;
    const JsonValue* assignment = entry.Find("assignment");
    if (assignment == nullptr) return MissingError(path + ".assignment");
    if (!assignment->is_array()) {
      return TypeError(path + ".assignment", "an array", *assignment);
    }
    sample.assignment.reserve(assignment->array().size());
    for (size_t v = 0; v < assignment->array().size(); ++v) {
      const std::string bit_path =
          StrFormat("%s.assignment[%zu]", path.c_str(), v);
      QDM_ASSIGN_OR_RETURN(const int64_t bit,
                           assignment->array()[v].AsInt64(bit_path));
      if (bit != 0 && bit != 1) {
        return Status::InvalidArgument(
            StrFormat("%s: expected 0 or 1, got %lld", bit_path.c_str(),
                      static_cast<long long>(bit)));
      }
      sample.assignment.push_back(static_cast<int>(bit));
    }

    const JsonValue* energy = entry.Find("energy");
    if (energy == nullptr) return MissingError(path + ".energy");
    QDM_ASSIGN_OR_RETURN(sample.energy, energy->AsDouble(path + ".energy"));
    QDM_ASSIGN_OR_RETURN(
        sample.chain_break_fraction,
        DecodeDoubleField(entry, path, "chain_break_fraction", 0.0));
    decoded.push_back(std::move(sample));
  }

  // SampleSet::Add inserts BEFORE samples of equal energy, so re-adding the
  // (already energy-sorted) wire order back to front reproduces the
  // original vector exactly — including the relative order of ties, which
  // the bit-identity contract covers.
  SampleSet set;
  for (size_t s = decoded.size(); s > 0; --s) {
    set.Add(std::move(decoded[s - 1]));
  }
  QDM_ASSIGN_OR_RETURN(
      const double fidelity,
      DecodeDoubleField(value, field, "noise_fidelity", 1.0));
  set.set_noise_fidelity(fidelity);
  const JsonValue* decision = value.Find("decision");
  if (decision != nullptr) {
    if (!decision->is_string()) {
      return TypeError(field + ".decision", "a string", *decision);
    }
    set.set_decision(decision->string_value());
  }
  return set;
}

// -- Job submission -----------------------------------------------------------

std::string EncodeJobRequest(const JobRequest& request) {
  std::string fields;
  switch (request.type) {
    case JobRequest::Type::kSubmit: {
      QDM_CHECK(request.qubos.size() == 1)
          << "submit carries exactly one qubo";
      fields += "\"type\":\"submit\",\"solver\":";
      JsonAppendQuoted(request.solver, &fields);
      fields += ",\"qubo\":";
      AppendQuboJson(request.qubos[0], &fields);
      break;
    }
    case JobRequest::Type::kSubmitBatch: {
      fields += "\"type\":\"submit_batch\",\"solver\":";
      JsonAppendQuoted(request.solver, &fields);
      fields += ",\"qubos\":[";
      for (size_t i = 0; i < request.qubos.size(); ++i) {
        if (i > 0) fields.push_back(',');
        AppendQuboJson(request.qubos[i], &fields);
      }
      fields += "]";
      break;
    }
    case JobRequest::Type::kSubmitRace: {
      QDM_CHECK(request.qubos.size() == 1)
          << "submit_race carries exactly one qubo";
      fields += "\"type\":\"submit_race\",\"members\":[";
      for (size_t i = 0; i < request.members.size(); ++i) {
        if (i > 0) fields.push_back(',');
        JsonAppendQuoted(request.members[i], &fields);
      }
      fields += "],\"qubo\":";
      AppendQuboJson(request.qubos[0], &fields);
      break;
    }
  }
  fields += ",\"options\":";
  AppendSolverOptionsJson(request.options, &fields);
  if (request.deadline.count() > 0) {
    fields += StrFormat(
        ",\"deadline_ns\":%llu",
        static_cast<unsigned long long>(request.deadline.count()));
  }
  return WrapEnvelope(fields);
}

Result<JobRequest> DecodeJobRequest(const std::string& body) {
  QDM_ASSIGN_OR_RETURN(const JsonValue envelope, ParseEnvelope(body));
  QDM_RETURN_IF_ERROR(RejectUnknownFields(
      envelope, "request",
      {"version", "type", "solver", "members", "qubo", "qubos", "options",
       "deadline_ns"}));

  JobRequest request;
  const JsonValue* type = envelope.Find("type");
  if (type == nullptr) return MissingError("request.type");
  if (!type->is_string()) {
    return TypeError("request.type", "a string", *type);
  }
  const std::string& type_name = type->string_value();
  if (type_name == "submit") {
    request.type = JobRequest::Type::kSubmit;
  } else if (type_name == "submit_batch") {
    request.type = JobRequest::Type::kSubmitBatch;
  } else if (type_name == "submit_race") {
    request.type = JobRequest::Type::kSubmitRace;
  } else {
    return Status::InvalidArgument(StrFormat(
        "request.type: unknown type '%s' (submit | submit_batch | "
        "submit_race)",
        type_name.c_str()));
  }

  if (request.type == JobRequest::Type::kSubmitRace) {
    const JsonValue* members = envelope.Find("members");
    if (members == nullptr) return MissingError("request.members");
    if (!members->is_array()) {
      return TypeError("request.members", "an array", *members);
    }
    for (size_t i = 0; i < members->array().size(); ++i) {
      const JsonValue& member = members->array()[i];
      if (!member.is_string()) {
        return TypeError(StrFormat("request.members[%zu]", i), "a string",
                         member);
      }
      request.members.push_back(member.string_value());
    }
  } else {
    const JsonValue* solver = envelope.Find("solver");
    if (solver == nullptr) return MissingError("request.solver");
    if (!solver->is_string()) {
      return TypeError("request.solver", "a string", *solver);
    }
    request.solver = solver->string_value();
  }

  if (request.type == JobRequest::Type::kSubmitBatch) {
    const JsonValue* qubos = envelope.Find("qubos");
    if (qubos == nullptr) return MissingError("request.qubos");
    if (!qubos->is_array()) {
      return TypeError("request.qubos", "an array", *qubos);
    }
    for (size_t i = 0; i < qubos->array().size(); ++i) {
      QDM_ASSIGN_OR_RETURN(
          Qubo qubo, DecodeQubo(qubos->array()[i],
                                StrFormat("request.qubos[%zu]", i)));
      request.qubos.push_back(std::move(qubo));
    }
  } else {
    const JsonValue* qubo = envelope.Find("qubo");
    if (qubo == nullptr) return MissingError("request.qubo");
    QDM_ASSIGN_OR_RETURN(Qubo decoded, DecodeQubo(*qubo, "request.qubo"));
    request.qubos.push_back(std::move(decoded));
  }

  const JsonValue* options = envelope.Find("options");
  if (options != nullptr) {
    QDM_ASSIGN_OR_RETURN(request.options,
                         DecodeSolverOptions(*options, "request.options"));
  }
  const JsonValue* deadline = envelope.Find("deadline_ns");
  if (deadline != nullptr) {
    QDM_ASSIGN_OR_RETURN(const uint64_t ns,
                         deadline->AsUint64("request.deadline_ns"));
    if (ns > static_cast<uint64_t>(INT64_MAX)) {
      return Status::InvalidArgument(
          "request.deadline_ns: exceeds int64 nanoseconds");
    }
    request.deadline = std::chrono::nanoseconds(static_cast<int64_t>(ns));
  }
  return request;
}

// -- Response bodies ----------------------------------------------------------

std::string EncodeErrorBody(const Status& status) {
  std::string fields = "\"error\":{\"code\":";
  JsonAppendQuoted(StatusCodeToString(status.code()), &fields);
  fields += ",\"message\":";
  JsonAppendQuoted(status.message(), &fields);
  fields += "}";
  return WrapEnvelope(fields);
}

Status DecodeErrorBody(const std::string& body, Status* remote) {
  QDM_ASSIGN_OR_RETURN(const JsonValue envelope, ParseEnvelope(body));
  const JsonValue* error = envelope.Find("error");
  if (error == nullptr) return MissingError("error");
  if (!error->is_object()) {
    return TypeError("error", "a JSON object", *error);
  }
  const JsonValue* code = error->Find("code");
  if (code == nullptr) return MissingError("error.code");
  if (!code->is_string()) return TypeError("error.code", "a string", *code);
  StatusCode parsed = StatusCode::kInternal;
  if (!StatusCodeFromString(code->string_value(), &parsed)) {
    return Status::InvalidArgument(
        StrFormat("error.code: unknown status code '%s'",
                  code->string_value().c_str()));
  }
  const JsonValue* message = error->Find("message");
  if (message == nullptr) return MissingError("error.message");
  if (!message->is_string()) {
    return TypeError("error.message", "a string", *message);
  }
  *remote = Status(parsed, message->string_value());
  return Status::Ok();
}

std::string EncodeSubmitResponse(JobId id) {
  return WrapEnvelope(
      StrFormat("\"id\":%llu", static_cast<unsigned long long>(id)));
}

Result<JobId> DecodeSubmitResponse(const std::string& body) {
  QDM_ASSIGN_OR_RETURN(const JsonValue envelope, ParseEnvelope(body));
  return DecodeJobIdField(envelope, "response", "id");
}

std::string EncodeSnapshotResponse(const JobSnapshot& snapshot) {
  std::string fields =
      StrFormat("\"id\":%llu,\"state\":\"%s\",\"status\":{\"code\":",
                static_cast<unsigned long long>(snapshot.id),
                JobStateToString(snapshot.state));
  JsonAppendQuoted(StatusCodeToString(snapshot.status.code()), &fields);
  fields += ",\"message\":";
  JsonAppendQuoted(snapshot.status.message(), &fields);
  fields += "}";
  return WrapEnvelope(fields);
}

Result<JobSnapshot> DecodeSnapshotResponse(const std::string& body) {
  QDM_ASSIGN_OR_RETURN(const JsonValue envelope, ParseEnvelope(body));
  JobSnapshot snapshot;
  QDM_ASSIGN_OR_RETURN(snapshot.id,
                       DecodeJobIdField(envelope, "response", "id"));
  const JsonValue* state = envelope.Find("state");
  if (state == nullptr) return MissingError("response.state");
  if (!state->is_string()) {
    return TypeError("response.state", "a string", *state);
  }
  if (!JobStateFromString(state->string_value(), &snapshot.state)) {
    return Status::InvalidArgument(
        StrFormat("response.state: unknown job state '%s'",
                  state->string_value().c_str()));
  }
  const JsonValue* status = envelope.Find("status");
  if (status == nullptr) return MissingError("response.status");
  if (!status->is_object()) {
    return TypeError("response.status", "a JSON object", *status);
  }
  const JsonValue* code = status->Find("code");
  if (code == nullptr) return MissingError("response.status.code");
  if (!code->is_string()) {
    return TypeError("response.status.code", "a string", *code);
  }
  StatusCode parsed = StatusCode::kOk;
  if (!StatusCodeFromString(code->string_value(), &parsed)) {
    return Status::InvalidArgument(
        StrFormat("response.status.code: unknown status code '%s'",
                  code->string_value().c_str()));
  }
  const JsonValue* message = status->Find("message");
  if (message == nullptr) return MissingError("response.status.message");
  if (!message->is_string()) {
    return TypeError("response.status.message", "a string", *message);
  }
  snapshot.status = Status(parsed, message->string_value());
  return snapshot;
}

std::string EncodeResultsResponse(const std::vector<SampleSet>& results) {
  std::string fields = "\"results\":[";
  for (size_t i = 0; i < results.size(); ++i) {
    if (i > 0) fields.push_back(',');
    AppendSampleSetJson(results[i], &fields);
  }
  fields += "]";
  return WrapEnvelope(fields);
}

Result<std::vector<SampleSet>> DecodeResultsResponse(
    const std::string& body) {
  QDM_ASSIGN_OR_RETURN(const JsonValue envelope, ParseEnvelope(body));
  const JsonValue* results = envelope.Find("results");
  if (results == nullptr) return MissingError("response.results");
  if (!results->is_array()) {
    return TypeError("response.results", "an array", *results);
  }
  std::vector<SampleSet> decoded;
  decoded.reserve(results->array().size());
  for (size_t i = 0; i < results->array().size(); ++i) {
    QDM_ASSIGN_OR_RETURN(
        SampleSet set,
        DecodeSampleSet(results->array()[i],
                        StrFormat("response.results[%zu]", i)));
    decoded.push_back(std::move(set));
  }
  return decoded;
}

std::string EncodeCancelResponse(JobId id) {
  return WrapEnvelope(StrFormat("\"id\":%llu,\"cancelled\":true",
                                static_cast<unsigned long long>(id)));
}

std::string EncodeSolversResponse(const std::vector<std::string>& names) {
  std::string fields = "\"solvers\":[";
  for (size_t i = 0; i < names.size(); ++i) {
    if (i > 0) fields.push_back(',');
    JsonAppendQuoted(names[i], &fields);
  }
  fields += "]";
  return WrapEnvelope(fields);
}

Result<std::vector<std::string>> DecodeSolversResponse(
    const std::string& body) {
  QDM_ASSIGN_OR_RETURN(const JsonValue envelope, ParseEnvelope(body));
  const JsonValue* solvers = envelope.Find("solvers");
  if (solvers == nullptr) return MissingError("response.solvers");
  if (!solvers->is_array()) {
    return TypeError("response.solvers", "an array", *solvers);
  }
  std::vector<std::string> names;
  names.reserve(solvers->array().size());
  for (size_t i = 0; i < solvers->array().size(); ++i) {
    const JsonValue& name = solvers->array()[i];
    if (!name.is_string()) {
      return TypeError(StrFormat("response.solvers[%zu]", i), "a string",
                       name);
    }
    names.push_back(name.string_value());
  }
  return names;
}

std::string EncodeStatsResponse(const StatsResponse& response) {
  const service::ServiceStats& s = response.stats;
  std::string fields = StrFormat(
      "\"stats\":{\"submitted\":%llu,\"rejected\":%llu,\"queued\":%llu,"
      "\"running\":%llu,\"completed\":%llu,\"cancelled\":%llu,"
      "\"deadline_exceeded\":%llu},\"accepting\":%s,\"num_workers\":%d",
      static_cast<unsigned long long>(s.submitted),
      static_cast<unsigned long long>(s.rejected),
      static_cast<unsigned long long>(s.queued),
      static_cast<unsigned long long>(s.running),
      static_cast<unsigned long long>(s.completed),
      static_cast<unsigned long long>(s.cancelled),
      static_cast<unsigned long long>(s.deadline_exceeded),
      response.accepting ? "true" : "false", response.num_workers);
  return WrapEnvelope(fields);
}

Result<StatsResponse> DecodeStatsResponse(const std::string& body) {
  QDM_ASSIGN_OR_RETURN(const JsonValue envelope, ParseEnvelope(body));
  const JsonValue* stats = envelope.Find("stats");
  if (stats == nullptr) return MissingError("response.stats");
  if (!stats->is_object()) {
    return TypeError("response.stats", "a JSON object", *stats);
  }
  StatsResponse response;
  struct Field {
    const char* key;
    uint64_t* slot;
  };
  const Field fields[] = {
      {"submitted", &response.stats.submitted},
      {"rejected", &response.stats.rejected},
      {"queued", &response.stats.queued},
      {"running", &response.stats.running},
      {"completed", &response.stats.completed},
      {"cancelled", &response.stats.cancelled},
      {"deadline_exceeded", &response.stats.deadline_exceeded},
  };
  for (const Field& field : fields) {
    const JsonValue* value = stats->Find(field.key);
    const std::string path = std::string("response.stats.") + field.key;
    if (value == nullptr) return MissingError(path);
    QDM_ASSIGN_OR_RETURN(*field.slot, value->AsUint64(path));
  }
  const JsonValue* accepting = envelope.Find("accepting");
  if (accepting == nullptr) return MissingError("response.accepting");
  if (!accepting->is_bool()) {
    return TypeError("response.accepting", "a boolean", *accepting);
  }
  response.accepting = accepting->bool_value();
  QDM_ASSIGN_OR_RETURN(response.num_workers,
                       DecodeIntField(envelope, "response", "num_workers", 0));
  return response;
}

std::string EncodeHealthResponse(bool accepting) {
  return WrapEnvelope(StrFormat("\"status\":\"serving\",\"accepting\":%s",
                                accepting ? "true" : "false"));
}

}  // namespace net
}  // namespace qdm
