#ifndef QDM_NET_WIRE_H_
#define QDM_NET_WIRE_H_

#include <chrono>
#include <cstddef>
#include <string>
#include <vector>

#include "qdm/anneal/qubo.h"
#include "qdm/anneal/sampler.h"
#include "qdm/anneal/solver.h"
#include "qdm/common/status.h"
#include "qdm/net/json.h"
#include "qdm/service/job.h"

namespace qdm {
namespace net {

/// JSON wire format for the qdmd solver daemon (docs/network.md).
///
/// Design invariants:
///
///  - Versioned envelope: every request and response body is a JSON object
///    carrying "version": kWireVersion. Documents with a different version
///    are rejected with InvalidArgument before any field is interpreted, so
///    the format can evolve without silent misdecodes.
///  - Bit-exact round trip: doubles are encoded with "%.17g" and decoded
///    with strtod (the exact inverse), and 64-bit integers (job ids, seeds)
///    travel as raw integer tokens, never through a double. Consequently
///    Decode*(Encode*(x)) == x bit for bit — the property that extends the
///    toolkit's determinism contract across the network (and what makes
///    recorded request/response pairs replayable for the adaptive-portfolio
///    work in the ROADMAP).
///  - Strict decoding: unknown object fields, wrong types, non-finite
///    numbers, truncated documents, and oversized payloads are all
///    InvalidArgument, with the offending field named by its dotted path
///    ("options.num_reads", "qubo.linear[3]").
///  - Stable field names: the identifiers below are the protocol; renaming
///    one is a wire-version bump.
constexpr int kWireVersion = 1;

/// Hard cap on one request/response body. Oversized payloads are rejected
/// at the envelope (and by the HTTP server before buffering that much).
constexpr size_t kMaxPayloadBytes = 8u * 1024 * 1024;

/// Cap on Qubo::num_variables accepted from the wire — a decode-side guard
/// so a hostile 4-byte body cannot demand a multi-gigabyte allocation. The
/// floor is 1: Qubo itself requires at least one variable, so the decoder
/// turns smaller counts into InvalidArgument before construction.
constexpr int kMaxWireVariables = 1 << 20;

/// Parses `text` into a JSON object and checks the size cap and the
/// "version" field. Every Decode* entry point below goes through this.
Result<JsonValue> ParseEnvelope(const std::string& text);

// -- Core model types ---------------------------------------------------------
//
// Qubo          {"num_variables": n, "offset": x, "linear": [x...],
//                "quadratic": [[i, j, x]...]}
// SolverOptions {"num_reads": n, "seed": u64, "num_sweeps": n, ...
//                every knob except `rng`, which cannot cross the wire —
//                see DecodeSolverOptions; "chain_break_policy" travels
//                by name ("majority_vote" | "minimize_energy" | "discard")}
// SampleSet     {"samples": [{"assignment": [0|1...], "energy": x,
//                "chain_break_fraction": x}...]} plus two conditional
//                fields omitted at their defaults so v1 payloads stay
//                byte-identical: "noise_fidelity" (when != 1.0, from a
//                noisy:* backend) and "decision" (when non-empty, the
//                adaptive:* "<phase>:<arm>:<member>" record that
//                ReplayAdaptiveDecision replays bit-exactly)
//
// Append* writes the canonical encoding (all fields, stable order) to
// `out`; Decode* accepts any field order, defaults omitted option knobs,
// and rejects unknown fields. `field` is the dotted path prefix used in
// error messages.

void AppendQuboJson(const anneal::Qubo& qubo, std::string* out);
Result<anneal::Qubo> DecodeQubo(const JsonValue& value,
                                const std::string& field);

void AppendSolverOptionsJson(const anneal::SolverOptions& options,
                             std::string* out);
Result<anneal::SolverOptions> DecodeSolverOptions(const JsonValue& value,
                                                  const std::string& field);

void AppendSampleSetJson(const anneal::SampleSet& samples, std::string* out);
Result<anneal::SampleSet> DecodeSampleSet(const JsonValue& value,
                                          const std::string& field);

// -- Job submission (POST /v1/jobs) -------------------------------------------

/// One submission, covering all three SolverService entry points:
///
///   {"version": 1, "type": "submit",       "solver": "...",
///    "qubo": {...},    "options": {...}, "deadline_ns": u64}
///   {"version": 1, "type": "submit_batch", "solver": "...",
///    "qubos": [{...}], "options": {...}, "deadline_ns": u64}
///   {"version": 1, "type": "submit_race",  "members": ["...", "..."],
///    "qubo": {...},    "options": {...}, "deadline_ns": u64}
///
/// "options" and "deadline_ns" are optional (defaults: default-constructed
/// SolverOptions, no deadline).
struct JobRequest {
  enum class Type { kSubmit, kSubmitBatch, kSubmitRace };

  Type type = Type::kSubmit;
  std::string solver;                // kSubmit / kSubmitBatch.
  std::vector<std::string> members;  // kSubmitRace.
  std::vector<anneal::Qubo> qubos;   // Exactly one except kSubmitBatch.
  anneal::SolverOptions options;
  std::chrono::nanoseconds deadline{0};
};

std::string EncodeJobRequest(const JobRequest& request);
Result<JobRequest> DecodeJobRequest(const std::string& body);

// -- Response bodies ----------------------------------------------------------

/// {"version": 1, "error": {"code": "NotFound", "message": "..."}} — the
/// body of every non-2xx response. The (code, message) pair IS the remote
/// Status: decoding EncodeErrorBody(s) yields s exactly, which is how the
/// client surfaces the server's sync-path Status to its caller. On success
/// the remote status is written to `*remote` and Ok is returned; a
/// malformed body is InvalidArgument (and `*remote` is untouched).
/// (An out parameter because Result<Status> would be ambiguous.)
std::string EncodeErrorBody(const Status& status);
Status DecodeErrorBody(const std::string& body, Status* remote);

/// {"version": 1, "id": n} — a job was accepted.
std::string EncodeSubmitResponse(service::JobId id);
Result<service::JobId> DecodeSubmitResponse(const std::string& body);

/// {"version": 1, "id": n, "state": "Running",
///  "status": {"code": "...", "message": "..."}} — a Poll snapshot.
std::string EncodeSnapshotResponse(const service::JobSnapshot& snapshot);
Result<service::JobSnapshot> DecodeSnapshotResponse(const std::string& body);

/// {"version": 1, "results": [<SampleSet>...]} — a successful Wait (one
/// entry per batch instance; submit/race jobs carry exactly one).
std::string EncodeResultsResponse(
    const std::vector<anneal::SampleSet>& results);
Result<std::vector<anneal::SampleSet>> DecodeResultsResponse(
    const std::string& body);

/// {"version": 1, "id": n, "cancelled": true} — a Cancel was accepted.
std::string EncodeCancelResponse(service::JobId id);

/// {"version": 1, "solvers": ["...", ...]} — RegisteredNames().
std::string EncodeSolversResponse(const std::vector<std::string>& names);
Result<std::vector<std::string>> DecodeSolversResponse(
    const std::string& body);

/// {"version": 1, "stats": {<ServiceStats counters>},
///  "accepting": bool, "num_workers": n} — GET /v1/stats.
struct StatsResponse {
  service::ServiceStats stats;
  bool accepting = true;
  int num_workers = 0;
};

std::string EncodeStatsResponse(const StatsResponse& response);
Result<StatsResponse> DecodeStatsResponse(const std::string& body);

/// {"version": 1, "status": "serving", "accepting": bool} — GET /healthz.
std::string EncodeHealthResponse(bool accepting);

}  // namespace net
}  // namespace qdm

#endif  // QDM_NET_WIRE_H_
