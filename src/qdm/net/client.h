#ifndef QDM_NET_CLIENT_H_
#define QDM_NET_CLIENT_H_

#include <chrono>
#include <string>
#include <vector>

#include "qdm/anneal/qubo.h"
#include "qdm/anneal/sampler.h"
#include "qdm/anneal/solver.h"
#include "qdm/common/status.h"
#include "qdm/net/http.h"
#include "qdm/net/wire.h"
#include "qdm/service/job.h"

namespace qdm {
namespace net {

/// C++ client for a qdmd daemon on 127.0.0.1:`port` — the remote face of
/// SolverService, method for method.
///
/// Status transparency: a failed call returns the server's EXACT Status —
/// the (code, message) pair is decoded from the error body, so remote
/// error handling is byte-identical to in-process error handling (an
/// unknown solver is the same NotFound with the same registry listing).
/// Transport-level failures (connection refused, mid-message EOF) are the
/// only Internal statuses a healthy deployment never sees.
///
/// Determinism: Solve(solver, qubo, options) with options.seed == s
/// returns the bit-identical SampleSet of the in-process synchronous
/// Solve at seed s — the wire codec round-trips doubles and seeds
/// exactly (see wire.h).
///
/// Each call opens one connection (Connection: close); the client itself
/// is stateless and therefore trivially thread-safe.
class QdmClient {
 public:
  explicit QdmClient(int port) : port_(port) {}

  int port() const { return port_; }

  // -- Job lifecycle (mirrors SolverService) ----------------------------------

  Result<service::JobId> Submit(
      const std::string& solver, const anneal::Qubo& qubo,
      const anneal::SolverOptions& options = {},
      std::chrono::nanoseconds deadline = std::chrono::nanoseconds(0));

  Result<service::JobId> SubmitBatch(
      const std::string& solver, const std::vector<anneal::Qubo>& qubos,
      const anneal::SolverOptions& options = {},
      std::chrono::nanoseconds deadline = std::chrono::nanoseconds(0));

  Result<service::JobId> SubmitRace(
      const std::vector<std::string>& members, const anneal::Qubo& qubo,
      const anneal::SolverOptions& options = {},
      std::chrono::nanoseconds deadline = std::chrono::nanoseconds(0));

  Result<service::JobSnapshot> Poll(service::JobId id);

  /// Blocks server-side until the job is terminal.
  Result<std::vector<anneal::SampleSet>> Wait(service::JobId id);

  Status Cancel(service::JobId id);

  // -- One-shot conveniences --------------------------------------------------

  /// Submit + Wait, unwrapping the single SampleSet.
  Result<anneal::SampleSet> Solve(const std::string& solver,
                                  const anneal::Qubo& qubo,
                                  const anneal::SolverOptions& options = {});

  /// SubmitBatch + Wait.
  Result<std::vector<anneal::SampleSet>> SolveBatch(
      const std::string& solver, const std::vector<anneal::Qubo>& qubos,
      const anneal::SolverOptions& options = {});

  // -- Introspection ----------------------------------------------------------

  Result<std::vector<std::string>> ListSolvers();
  Result<StatsResponse> Stats();

  /// Ok when the daemon answers /healthz with 200.
  Status Healthz();

 private:
  /// One HTTP exchange; non-2xx responses are decoded into the server's
  /// Status and returned as the error.
  Result<std::string> RoundTrip(const std::string& method,
                                const std::string& target,
                                const std::string& body);

  Result<service::JobId> SubmitRequest(const JobRequest& request);

  int port_;
};

}  // namespace net
}  // namespace qdm

#endif  // QDM_NET_CLIENT_H_
