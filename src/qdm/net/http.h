#ifndef QDM_NET_HTTP_H_
#define QDM_NET_HTTP_H_

#include <atomic>
#include <string>

#include "qdm/common/status.h"

namespace qdm {
namespace net {

/// Minimal blocking HTTP/1.1 message layer over POSIX sockets — just enough
/// protocol for the qdmd daemon and its loopback clients, with no external
/// dependencies. Supported subset: request/response with Content-Length
/// bodies (no chunked transfer encoding), keep-alive and close connection
/// semantics, loopback TCP only. Anything outside the subset is rejected
/// with a 400, never silently misread.

/// One parsed request. `target` is the raw request-target ("/v1/jobs/7");
/// query strings are not interpreted by this server.
struct HttpRequest {
  std::string method;
  std::string target;
  std::string body;
  bool keep_alive = true;
};

/// One parsed response (client side) or one to be written (server side).
struct HttpResponse {
  int status = 0;
  std::string body;
};

/// Canonical reason phrase for the status codes this server emits.
const char* HttpReasonPhrase(int status);

/// Server side of one accepted connection. Owns the fd (closed by the
/// destructor) and an input buffer carrying pipelined bytes between
/// requests.
class HttpConnection {
 public:
  explicit HttpConnection(int fd) : fd_(fd) {}
  ~HttpConnection();

  HttpConnection(const HttpConnection&) = delete;
  HttpConnection& operator=(const HttpConnection&) = delete;

  enum class ReadOutcome {
    kRequest,  ///< `*request` holds one complete request.
    kClosed,   ///< Peer closed cleanly at a request boundary.
    kStopped,  ///< `*stop` became true while idle at a request boundary.
    kBad,      ///< Malformed or oversized request; `*error` names why. The
               ///< caller should answer 400 and close.
  };

  /// Blocks until one full request arrives, polling in short slices so a
  /// raised `*stop` is observed promptly while the connection is idle. An
  /// in-flight request (some bytes buffered) is always read to completion
  /// so graceful shutdown finishes at a message boundary.
  ReadOutcome ReadRequest(HttpRequest* request,
                          const std::atomic<bool>* stop, std::string* error);

  /// Writes a complete response (status line, Content-Length, body).
  /// Returns false when the peer is gone (any write error).
  bool WriteResponse(const HttpResponse& response, bool keep_alive);

 private:
  int fd_;
  std::string buffer_;
};

/// Client side, one shot: connect to 127.0.0.1:`port`, send `method
/// target` with `body` (Connection: close), read the response, close.
/// Transport-level failures (refused connection, mid-message EOF,
/// malformed response) are Internal; HTTP-level errors come back as a
/// normal HttpResponse with a non-2xx status.
Result<HttpResponse> HttpRoundTrip(int port, const std::string& method,
                                   const std::string& target,
                                   const std::string& body);

}  // namespace net
}  // namespace qdm

#endif  // QDM_NET_HTTP_H_
