#ifndef QDM_NET_JSON_H_
#define QDM_NET_JSON_H_

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "qdm/common/check.h"
#include "qdm/common/status.h"

namespace qdm {
namespace net {

/// Minimal JSON document model for the qdm wire protocol (qdm/net/wire.h).
/// Deliberately dependency-free and exception-free: parsing failures are
/// InvalidArgument Statuses with byte offsets, and type misuse of an
/// already-parsed value is a programming error (QDM_CHECK), matching the
/// rest of the toolkit.
///
/// Numbers are stored as their RAW TOKEN TEXT and converted on demand
/// (AsDouble / AsInt64 / AsUint64). That is what makes the wire format
/// bit-exact: a double encoded with "%.17g" survives parse -> strtod
/// unchanged, and a uint64 seed is never squeezed through a double (which
/// would lose precision above 2^53). Conversion rejects overflow (e.g.
/// "1e999" -> non-finite) so NaN/Inf can never enter through the wire.
class JsonValue {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  /// Object members keep their textual order (encode/decode stability).
  using Members = std::vector<std::pair<std::string, JsonValue>>;

  JsonValue() : type_(Type::kNull) {}

  static JsonValue MakeBool(bool value);
  static JsonValue MakeNumberToken(std::string token);
  static JsonValue MakeString(std::string value);
  static JsonValue MakeArray(std::vector<JsonValue> items);
  static JsonValue MakeObject(Members members);

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_bool() const { return type_ == Type::kBool; }
  bool is_number() const { return type_ == Type::kNumber; }
  bool is_string() const { return type_ == Type::kString; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_object() const { return type_ == Type::kObject; }

  /// Stable lowercase name of the value's type ("object", "number", ...)
  /// for error messages.
  const char* TypeName() const;

  bool bool_value() const;
  const std::string& number_token() const;
  const std::string& string_value() const;
  const std::vector<JsonValue>& array() const;
  const Members& members() const;

  /// Object lookup; nullptr when absent (or when this is not an object —
  /// callers type-check first for precise error messages).
  const JsonValue* Find(const std::string& key) const;

  /// Number conversions. `field` is the dotted path used in the error
  /// message ("qubo.linear[3]"). AsDouble rejects non-finite results
  /// (overflowing literals); the integer forms reject fractions, exponents,
  /// out-of-range magnitudes, and (for uint64) negative values.
  Result<double> AsDouble(const std::string& field) const;
  Result<int64_t> AsInt64(const std::string& field) const;
  Result<uint64_t> AsUint64(const std::string& field) const;

 private:
  Type type_;
  bool bool_ = false;
  std::string scalar_;  // Number token or string payload.
  std::vector<JsonValue> array_;
  Members members_;
};

/// Parses one complete JSON document (trailing garbage is an error).
/// Accepts the full RFC 8259 grammar — objects, arrays, strings with
/// escapes incl. \uXXXX (surrogate pairs), numbers, true/false/null — with
/// a nesting-depth limit of 64. Errors are InvalidArgument with the byte
/// offset and what was expected.
Result<JsonValue> JsonParse(const std::string& text);

/// Appends `value` quoted and escaped per JSON to `out`.
void JsonAppendQuoted(const std::string& value, std::string* out);

/// Appends the shortest exact decimal form of `value` ("%.17g" — parses
/// back to the identical bits). `value` must be finite (QDM_CHECK): the
/// wire format has no representation for NaN/Inf by design.
void JsonAppendDouble(double value, std::string* out);

}  // namespace net
}  // namespace qdm

#endif  // QDM_NET_JSON_H_
