#include "qdm/net/http.h"

#include <arpa/inet.h>
#include <errno.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cctype>
#include <cstdlib>
#include <cstring>

#include "qdm/common/strings.h"
#include "qdm/net/wire.h"

namespace qdm {
namespace net {

namespace {

/// Poll slice while waiting for bytes: short enough that a stop flag is
/// observed promptly, long enough to stay off the scheduler's back.
constexpr int kPollMillis = 200;

/// Headers are small; a header block larger than this is hostile.
constexpr size_t kMaxHeaderBytes = 64 * 1024;

bool AsciiEqualsIgnoreCase(const std::string& a, const char* b) {
  size_t i = 0;
  for (; i < a.size() && b[i] != '\0'; ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return i == a.size() && b[i] == '\0';
}

std::string TrimSpace(const std::string& text) {
  size_t begin = 0;
  size_t end = text.size();
  while (begin < end && (text[begin] == ' ' || text[begin] == '\t')) ++begin;
  while (end > begin && (text[end - 1] == ' ' || text[end - 1] == '\t')) {
    --end;
  }
  return text.substr(begin, end - begin);
}

/// Writes all of `data`, riding out EINTR and partial writes.
bool WriteAll(int fd, const std::string& data) {
  size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n = ::send(fd, data.data() + sent, data.size() - sent,
                             MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    sent += static_cast<size_t>(n);
  }
  return true;
}

/// Blocking read of at least one more byte into `*buffer`. Returns 1 on
/// data, 0 on clean EOF, -1 on error.
int ReadSome(int fd, std::string* buffer) {
  char chunk[16 * 1024];
  while (true) {
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n > 0) {
      buffer->append(chunk, static_cast<size_t>(n));
      return 1;
    }
    if (n == 0) return 0;
    if (errno == EINTR) continue;
    return -1;
  }
}

/// Parses the header block in buffer[0, header_end) into method/target/
/// content-length/keep-alive. Returns an error message on malformed input.
struct ParsedHead {
  std::string method;
  std::string target;
  size_t content_length = 0;
  bool keep_alive = true;
  bool is_request = true;
  int status = 0;  // Response side.
};

bool ParseHead(const std::string& head, bool expect_request, ParsedHead* out,
               std::string* error) {
  size_t line_end = head.find("\r\n");
  if (line_end == std::string::npos) {
    *error = "missing request line terminator";
    return false;
  }
  const std::string start_line = head.substr(0, line_end);

  if (expect_request) {
    const size_t sp1 = start_line.find(' ');
    const size_t sp2 =
        sp1 == std::string::npos ? std::string::npos
                                 : start_line.find(' ', sp1 + 1);
    if (sp1 == std::string::npos || sp2 == std::string::npos) {
      *error = "malformed request line '" + start_line + "'";
      return false;
    }
    out->method = start_line.substr(0, sp1);
    out->target = start_line.substr(sp1 + 1, sp2 - sp1 - 1);
    const std::string version = start_line.substr(sp2 + 1);
    if (version != "HTTP/1.1" && version != "HTTP/1.0") {
      *error = "unsupported protocol version '" + version + "'";
      return false;
    }
    out->keep_alive = version == "HTTP/1.1";
  } else {
    // Status line: HTTP/1.1 <code> <reason>.
    if (start_line.rfind("HTTP/1.", 0) != 0 || start_line.size() < 12) {
      *error = "malformed status line '" + start_line + "'";
      return false;
    }
    out->status = std::atoi(start_line.substr(9, 3).c_str());
    if (out->status < 100 || out->status > 599) {
      *error = "malformed status code in '" + start_line + "'";
      return false;
    }
  }

  bool saw_content_length = false;
  size_t pos = line_end + 2;
  while (pos < head.size()) {
    const size_t next = head.find("\r\n", pos);
    const std::string line =
        head.substr(pos, next == std::string::npos ? std::string::npos
                                                   : next - pos);
    pos = next == std::string::npos ? head.size() : next + 2;
    if (line.empty()) continue;
    const size_t colon = line.find(':');
    if (colon == std::string::npos) {
      *error = "malformed header line '" + line + "'";
      return false;
    }
    const std::string name = line.substr(0, colon);
    const std::string value = TrimSpace(line.substr(colon + 1));
    if (AsciiEqualsIgnoreCase(name, "content-length")) {
      if (saw_content_length) {
        *error = "duplicate Content-Length header";
        return false;
      }
      saw_content_length = true;
      char* end = nullptr;
      errno = 0;
      const unsigned long long parsed =
          std::strtoull(value.c_str(), &end, 10);
      if (errno != 0 || end == value.c_str() || *end != '\0' ||
          value[0] == '-') {
        *error = "malformed Content-Length '" + value + "'";
        return false;
      }
      if (parsed > kMaxPayloadBytes) {
        *error = StrFormat(
            "payload: Content-Length %llu exceeds the %zu-byte wire limit",
            parsed, kMaxPayloadBytes);
        return false;
      }
      out->content_length = static_cast<size_t>(parsed);
    } else if (AsciiEqualsIgnoreCase(name, "connection")) {
      if (AsciiEqualsIgnoreCase(value, "close")) out->keep_alive = false;
      if (AsciiEqualsIgnoreCase(value, "keep-alive")) out->keep_alive = true;
    } else if (AsciiEqualsIgnoreCase(name, "transfer-encoding")) {
      *error = "Transfer-Encoding is not supported (use Content-Length)";
      return false;
    }
  }
  return true;
}

}  // namespace

const char* HttpReasonPhrase(int status) {
  switch (status) {
    case 200:
      return "OK";
    case 400:
      return "Bad Request";
    case 404:
      return "Not Found";
    case 405:
      return "Method Not Allowed";
    case 409:
      return "Conflict";
    case 429:
      return "Too Many Requests";
    case 500:
      return "Internal Server Error";
    case 501:
      return "Not Implemented";
    case 504:
      return "Gateway Timeout";
    default:
      return "Unknown";
  }
}

HttpConnection::~HttpConnection() {
  if (fd_ >= 0) ::close(fd_);
}

HttpConnection::ReadOutcome HttpConnection::ReadRequest(
    HttpRequest* request, const std::atomic<bool>* stop,
    std::string* error) {
  while (true) {
    const size_t header_end = buffer_.find("\r\n\r\n");
    if (header_end != std::string::npos) {
      ParsedHead head;
      if (!ParseHead(buffer_.substr(0, header_end + 2), /*expect_request=*/
                     true, &head, error)) {
        return ReadOutcome::kBad;
      }
      const size_t body_begin = header_end + 4;
      while (buffer_.size() - body_begin < head.content_length) {
        const int got = ReadSome(fd_, &buffer_);
        if (got <= 0) {
          *error = "connection dropped mid-body";
          return ReadOutcome::kBad;
        }
      }
      request->method = std::move(head.method);
      request->target = std::move(head.target);
      request->keep_alive = head.keep_alive;
      request->body = buffer_.substr(body_begin, head.content_length);
      buffer_.erase(0, body_begin + head.content_length);
      return ReadOutcome::kRequest;
    }
    if (buffer_.size() > kMaxHeaderBytes) {
      *error = StrFormat("header block exceeds %zu bytes", kMaxHeaderBytes);
      return ReadOutcome::kBad;
    }

    // Idle (or mid-header) — wait for bytes in short slices so shutdown is
    // observed at request boundaries.
    struct pollfd pfd;
    pfd.fd = fd_;
    pfd.events = POLLIN;
    pfd.revents = 0;
    const int ready = ::poll(&pfd, 1, kPollMillis);
    if (ready < 0) {
      if (errno == EINTR) continue;
      *error = "poll failed";
      return ReadOutcome::kBad;
    }
    if (ready == 0) {
      if (stop != nullptr && stop->load(std::memory_order_acquire) &&
          buffer_.empty()) {
        return ReadOutcome::kStopped;
      }
      continue;
    }
    const int got = ReadSome(fd_, &buffer_);
    if (got == 0) {
      if (buffer_.empty()) return ReadOutcome::kClosed;
      *error = "connection closed mid-request";
      return ReadOutcome::kBad;
    }
    if (got < 0) {
      *error = "read failed";
      return ReadOutcome::kBad;
    }
  }
}

bool HttpConnection::WriteResponse(const HttpResponse& response,
                                   bool keep_alive) {
  std::string head = StrFormat(
      "HTTP/1.1 %d %s\r\nContent-Type: application/json\r\n"
      "Content-Length: %zu\r\nConnection: %s\r\n\r\n",
      response.status, HttpReasonPhrase(response.status),
      response.body.size(), keep_alive ? "keep-alive" : "close");
  head += response.body;
  return WriteAll(fd_, head);
}

Result<HttpResponse> HttpRoundTrip(int port, const std::string& method,
                                   const std::string& target,
                                   const std::string& body) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::Internal("socket() failed");
  }
  struct FdCloser {
    int fd;
    ~FdCloser() { ::close(fd); }
  } closer{fd};

  struct sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd, reinterpret_cast<struct sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    return Status::Internal(
        StrFormat("connect to 127.0.0.1:%d failed: %s", port,
                  std::strerror(errno)));
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));

  std::string request = StrFormat(
      "%s %s HTTP/1.1\r\nHost: 127.0.0.1\r\n"
      "Content-Type: application/json\r\nContent-Length: %zu\r\n"
      "Connection: close\r\n\r\n",
      method.c_str(), target.c_str(), body.size());
  request += body;
  if (!WriteAll(fd, request)) {
    return Status::Internal("request write failed (peer closed?)");
  }

  std::string buffer;
  size_t header_end;
  while ((header_end = buffer.find("\r\n\r\n")) == std::string::npos) {
    if (buffer.size() > kMaxHeaderBytes) {
      return Status::Internal("response header block too large");
    }
    const int got = ReadSome(fd, &buffer);
    if (got <= 0) {
      return Status::Internal("connection closed before response headers");
    }
  }
  ParsedHead head;
  std::string error;
  if (!ParseHead(buffer.substr(0, header_end + 2), /*expect_request=*/false,
                 &head, &error)) {
    return Status::Internal("malformed response: " + error);
  }
  const size_t body_begin = header_end + 4;
  while (buffer.size() - body_begin < head.content_length) {
    const int got = ReadSome(fd, &buffer);
    if (got <= 0) {
      return Status::Internal("connection closed mid-response");
    }
  }
  HttpResponse response;
  response.status = head.status;
  response.body = buffer.substr(body_begin, head.content_length);
  return response;
}

}  // namespace net
}  // namespace qdm
