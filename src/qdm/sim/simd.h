#ifndef QDM_SIM_SIMD_H_
#define QDM_SIM_SIMD_H_

#include <cstdint>

#include "qdm/linalg/matrix.h"

namespace qdm {
namespace sim {

/// Which inner-loop tier the Statevector gate kernels run
/// (ExecutionConfig::simd). Follows the toolkit-wide zero-means-default
/// convention: kAuto defers instance config -> process-wide default ->
/// build/environment/CPU detection (simd::DetectedTier).
enum class SimdMode {
  kAuto = 0,    ///< Defer to the next resolution level.
  kScalar = 1,  ///< Force the scalar inner loops (the reference kernels).
  kSimd = 2,    ///< Use the best vector tier the build + CPU support; falls
                ///< back to scalar when none is available.
};

namespace simd {

/// Instruction tiers the inner-loop primitives are compiled for.
enum class Tier {
  kScalar,  ///< Portable std::complex loops (always available).
  kAvx2,    ///< 256-bit AVX2 lanes, two complex amplitudes per operation.
};

/// True when the vector kernels are compiled into this build at all
/// (QDM_ENABLE_SIMD=ON on an x86-64 GCC/Clang toolchain).
bool CompiledWithSimd();

/// The tier auto-dispatch resolves to on this machine: kAvx2 when the build
/// compiled it, the CPU reports AVX2+FMA, and the QDM_SIMD environment
/// variable is not "off"/"0"/"false"; kScalar otherwise. Detected once on
/// first call and cached for the process lifetime.
Tier DetectedTier();

/// Human-readable tier name ("scalar", "avx2") for logs and benches.
const char* TierName(Tier tier);

// ---------------------------------------------------------------------------
// Inner-loop run primitives.
//
// Each primitive has a *Scalar variant — the bit-identity reference,
// performing exactly the std::complex arithmetic of the serial kernels —
// and an *Avx2 variant that performs the SAME IEEE-754 operation sequence
// per amplitude (unfused multiplies/adds in scalar order, two interleaved
// re/im complex lanes per 256-bit op), so results are bit-identical to the
// scalar loops, not merely close. Builds without AVX2 support compile the
// *Avx2 symbols as forwards to the scalar variant; they are unreachable
// then because DetectedTier() reports kScalar.
// ---------------------------------------------------------------------------

/// One-qubit gate over `n` contiguous amplitude pairs:
///   lo[k] <- u00*lo[k] + u01*hi[k];  hi[k] <- u10*lo[k] + u11*hi[k].
void Apply1QRunScalar(Complex* lo, Complex* hi, uint64_t n, Complex u00,
                      Complex u01, Complex u10, Complex u11);
void Apply1QRunAvx2(Complex* lo, Complex* hi, uint64_t n, Complex u00,
                    Complex u01, Complex u10, Complex u11);

/// One-qubit gate on target qubit 0, where the `n` pairs are adjacent in
/// memory: (amp[2k], amp[2k+1]). The contiguous-run form above degenerates
/// to length-1 runs there; this layout keeps full vector width instead.
void Apply1QPairsRunScalar(Complex* amp, uint64_t n, Complex u00, Complex u01,
                           Complex u10, Complex u11);
void Apply1QPairsRunAvx2(Complex* amp, uint64_t n, Complex u00, Complex u01,
                         Complex u10, Complex u11);

/// Diagonal phase over `n` contiguous amplitudes:
///   amp[z] <- amp[z] * exp(i * scale * phases[z]).
/// The exp/polar evaluation stays scalar libm in BOTH variants (vector math
/// libraries round differently); the vector tier batches the complex
/// multiplies, which is what keeps it bit-identical to the scalar loop.
void DiagonalPhaseRunScalar(Complex* amp, const double* phases, double scale,
                            uint64_t n);
void DiagonalPhaseRunAvx2(Complex* amp, const double* phases, double scale,
                          uint64_t n);

/// Exchanges `n` contiguous amplitudes between the disjoint runs x and y.
void SwapRunScalar(Complex* x, Complex* y, uint64_t n);
void SwapRunAvx2(Complex* x, Complex* y, uint64_t n);

}  // namespace simd
}  // namespace sim
}  // namespace qdm

#endif  // QDM_SIM_SIMD_H_
