#ifndef QDM_SIM_STATEVECTOR_H_
#define QDM_SIM_STATEVECTOR_H_

#include <complex>
#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "qdm/circuit/circuit.h"
#include "qdm/common/rng.h"
#include "qdm/linalg/matrix.h"
#include "qdm/sim/simd.h"

namespace qdm {
namespace sim {

/// Execution configuration for the Statevector gate kernels.
///
/// Zero-means-default convention (same as anneal::SolverOptions): each knob
/// treats 0 as "defer to the next level". Resolution order is instance
/// config -> process-wide default (Statevector::SetDefaultExecutionConfig)
/// -> built-in default, so library paths that construct state vectors
/// internally (ApplyCircuit, the trajectory simulator, the QAOA/VQE/Grover
/// bridges in algo/) pick up a process-wide setting with no call-site churn.
///
///   num_threads    0 = defer; resolved default is
///                  ThreadPool::DefaultNumThreads(). 1 = strictly serial.
///   serial_cutoff  0 = defer; resolved default is
///                  Statevector::kDefaultSerialCutoff. States whose
///                  dimension() is below the resolved cutoff always run the
///                  serial kernels, so small states pay no fan-out overhead.
///   simd           kAuto (0) = defer; resolved default is the best tier
///                  the build + CPU support (simd::DetectedTier, which also
///                  honors the QDM_SIMD=off environment override). kScalar
///                  forces the reference scalar inner loops; kSimd requests
///                  vector inner loops and falls back to scalar when no
///                  tier is available. Orthogonal to num_threads: serial
///                  and chunk-parallel kernels both dispatch their inner
///                  runs through the resolved tier.
///
/// Determinism: the parallel kernels partition the amplitude array into
/// contiguous chunks of independent elementwise/pairwise updates — no
/// reductions are reordered — so results are bit-identical to the serial
/// kernels at every thread count (the kernel-level extension of the batch
/// layer's `seed + index` guarantee; see docs/batching.md). The SIMD tiers
/// preserve the same contract: every vector lane performs the exact scalar
/// multiply/add sequence (unfused, unreassociated), so amplitudes are
/// bit-identical across {scalar, avx2} x any thread count.
struct ExecutionConfig {
  int num_threads = 0;
  uint64_t serial_cutoff = 0;
  SimdMode simd = SimdMode::kAuto;
};

/// Dense state-vector simulator state over `num_qubits` qubits.
///
/// Convention: qubit q is bit q (least-significant = qubit 0) of the
/// basis-state index, so |q1 q0> = |10> is index 2.
///
/// This is the gate-based "quantum computer" substrate of the toolkit (the
/// paper's surveyed works run on IBM-Q class machines; all circuits in scope
/// fit in <= ~24 qubits, where exact simulation is both feasible and the
/// strongest possible verification of the algorithmic claims).
class Statevector {
 public:
  /// Initializes to |0...0>.
  explicit Statevector(int num_qubits);

  /// Takes ownership of explicit amplitudes (length must be a power of two;
  /// the vector is normalized if `normalize` is set).
  static Statevector FromAmplitudes(std::vector<Complex> amplitudes,
                                    bool normalize = false);

  // -- Kernel execution config ------------------------------------------------

  /// Resolved serial_cutoff when neither the instance nor the process-wide
  /// default sets one: states below 2^16 amplitudes stay serial.
  static constexpr uint64_t kDefaultSerialCutoff = uint64_t{1} << 16;

  /// Process-wide default ExecutionConfig, consulted by every Statevector
  /// whose own config leaves a knob at 0. Thread-safe.
  static void SetDefaultExecutionConfig(const ExecutionConfig& config);
  static ExecutionConfig DefaultExecutionConfig();

  /// Per-instance override; knobs left at 0 defer to the process default.
  void set_execution_config(const ExecutionConfig& config) {
    execution_config_ = config;
  }
  const ExecutionConfig& execution_config() const { return execution_config_; }

  /// The thread count / cutoff the kernels will actually use after the
  /// instance -> process default -> built-in resolution.
  int ResolvedNumThreads() const;
  uint64_t ResolvedSerialCutoff() const;

  /// The SIMD tier the kernel inner loops will actually dispatch to after
  /// the instance -> process default -> detection resolution: Tier::kScalar
  /// when the resolved mode is SimdMode::kScalar (or nothing better is
  /// available), simd::DetectedTier() otherwise.
  simd::Tier ResolvedSimdTier() const;

  int num_qubits() const { return num_qubits_; }
  size_t dimension() const { return amplitudes_.size(); }
  const std::vector<Complex>& amplitudes() const { return amplitudes_; }
  std::vector<Complex>& mutable_amplitudes() { return amplitudes_; }
  Complex amplitude(uint64_t basis_state) const {
    return amplitudes_[basis_state];
  }

  // -- Gate application -------------------------------------------------------

  /// Applies an arbitrary 2x2 unitary to qubit `q`.
  void Apply1Q(const linalg::Matrix& u, int q);

  /// Applies `u` to `target` on the subspace where all `controls` are |1>.
  void ApplyControlled1Q(const std::vector<int>& controls, int target,
                         const linalg::Matrix& u);

  /// Exchanges qubits a and b.
  void ApplySwap(int a, int b);

  /// Controlled swap.
  void ApplyControlledSwap(int control, int a, int b);

  /// Multiplies amplitude of basis state z by exp(i * phase(z)). This is the
  /// fast path for diagonal operators (QAOA cost layers, Grover oracles).
  /// When the execution config enables parallel kernels, `phase` is invoked
  /// concurrently from pool workers and must be safe to call concurrently
  /// for distinct z and must not throw (the toolkit is exception-free; see
  /// qdm::ThreadPool) — pure functions satisfy both.
  void ApplyDiagonalPhase(const std::function<double(uint64_t)>& phase);

  /// Same operation from a precomputed diagonal (length must equal
  /// dimension(); checked): multiplies amplitude of basis state z by
  /// exp(i * scale * phases[z]). Hot path for loops that reapply one
  /// diagonal with varying prefactors (QAOA layers, Grover oracle sweeps) —
  /// no per-element std::function indirection.
  void ApplyDiagonalPhase(const std::vector<double>& phases,
                          double scale = 1.0);

  /// Applies one circuit gate / a whole circuit (circuit must be fully bound).
  void ApplyGate(const circuit::Gate& gate);
  void ApplyCircuit(const circuit::Circuit& c);

  // -- Measurement and readout ------------------------------------------------

  /// P(qubit q measures 1).
  double ProbabilityOfOne(int q) const;

  /// Per-basis-state probabilities (|amp|^2).
  std::vector<double> Probabilities() const;

  /// Projective measurement of one qubit; collapses the state. Returns 0/1.
  int MeasureQubit(int q, Rng* rng);

  /// Measures all qubits; collapses to a basis state and returns its index.
  uint64_t MeasureAll(Rng* rng);

  /// Samples a basis state WITHOUT collapsing (repeatable readout).
  uint64_t SampleBasisState(Rng* rng) const;

  /// Draws `shots` samples; returns counts per basis state.
  std::map<uint64_t, int> Sample(int shots, Rng* rng) const;

  // -- Linear-algebra utilities -----------------------------------------------

  /// <z|H|z> expectation of a diagonal operator given its diagonal (length ==
  /// dimension()).
  double ExpectationDiagonal(const std::vector<double>& diagonal) const;

  Complex InnerProduct(const Statevector& other) const;

  /// |<this|other>|^2.
  double FidelityWith(const Statevector& other) const;

  double NormSquared() const;
  void Normalize();

  /// Debug listing of non-negligible amplitudes.
  std::string ToString(double cutoff = 1e-9) const;

 private:
  Statevector() : num_qubits_(0) {}

  /// True when a kernel should take its serial branch: resolved thread
  /// count 1, or dimension() below the resolved serial cutoff. Each kernel
  /// keeps the pre-parallel loop verbatim behind this check (the compiler
  /// vectorizes that form best) and pairs it with a chunked parallel branch
  /// proven bit-identical by statevector_parallel_test.
  bool UseSerialKernel() const;

  /// True when the kernel inner loops should dispatch to the vector run
  /// primitives (sim::simd) instead of the scalar reference loops.
  bool UseSimdKernels() const;

  /// Kernel fan-out seam: runs body(begin, end) over a partition of [0, n)
  /// into contiguous chunks dispatched over the process-wide
  /// ThreadPool::Shared() pool (caller-participating, so nested use cannot
  /// deadlock). Chunks never overlap and their boundaries depend only on
  /// (n, resolved threads), so kernels whose per-element updates are
  /// independent stay bit-identical at every thread count.
  void RunChunksParallel(
      uint64_t n, const std::function<void(uint64_t, uint64_t)>& body) const;

  int num_qubits_;
  std::vector<Complex> amplitudes_;
  ExecutionConfig execution_config_;
};

/// Runs `c` on |0...0> and returns the final state.
Statevector RunCircuit(const circuit::Circuit& c);

/// Runs `c` on |0...0> and samples `shots` measurement outcomes.
std::map<uint64_t, int> SampleCircuit(const circuit::Circuit& c, int shots,
                                      Rng* rng);

}  // namespace sim
}  // namespace qdm

#endif  // QDM_SIM_STATEVECTOR_H_
