#ifndef QDM_SIM_STATEVECTOR_H_
#define QDM_SIM_STATEVECTOR_H_

#include <complex>
#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "qdm/circuit/circuit.h"
#include "qdm/common/rng.h"
#include "qdm/linalg/matrix.h"

namespace qdm {
namespace sim {

/// Dense state-vector simulator state over `num_qubits` qubits.
///
/// Convention: qubit q is bit q (least-significant = qubit 0) of the
/// basis-state index, so |q1 q0> = |10> is index 2.
///
/// This is the gate-based "quantum computer" substrate of the toolkit (the
/// paper's surveyed works run on IBM-Q class machines; all circuits in scope
/// fit in <= ~24 qubits, where exact simulation is both feasible and the
/// strongest possible verification of the algorithmic claims).
class Statevector {
 public:
  /// Initializes to |0...0>.
  explicit Statevector(int num_qubits);

  /// Takes ownership of explicit amplitudes (length must be a power of two;
  /// the vector is normalized if `normalize` is set).
  static Statevector FromAmplitudes(std::vector<Complex> amplitudes,
                                    bool normalize = false);

  int num_qubits() const { return num_qubits_; }
  size_t dimension() const { return amplitudes_.size(); }
  const std::vector<Complex>& amplitudes() const { return amplitudes_; }
  std::vector<Complex>& mutable_amplitudes() { return amplitudes_; }
  Complex amplitude(uint64_t basis_state) const {
    return amplitudes_[basis_state];
  }

  // -- Gate application -------------------------------------------------------

  /// Applies an arbitrary 2x2 unitary to qubit `q`.
  void Apply1Q(const linalg::Matrix& u, int q);

  /// Applies `u` to `target` on the subspace where all `controls` are |1>.
  void ApplyControlled1Q(const std::vector<int>& controls, int target,
                         const linalg::Matrix& u);

  /// Exchanges qubits a and b.
  void ApplySwap(int a, int b);

  /// Controlled swap.
  void ApplyControlledSwap(int control, int a, int b);

  /// Multiplies amplitude of basis state z by exp(i * phase(z)). This is the
  /// fast path for diagonal operators (QAOA cost layers, Grover oracles).
  void ApplyDiagonalPhase(const std::function<double(uint64_t)>& phase);

  /// Same operation from a precomputed diagonal (length == dimension()):
  /// multiplies amplitude of basis state z by exp(i * scale * phases[z]).
  /// Hot path for loops that reapply one diagonal with varying prefactors
  /// (QAOA layers, Grover oracle sweeps) — no per-element std::function
  /// indirection.
  void ApplyDiagonalPhase(const std::vector<double>& phases, double scale = 1.0);

  /// Applies one circuit gate / a whole circuit (circuit must be fully bound).
  void ApplyGate(const circuit::Gate& gate);
  void ApplyCircuit(const circuit::Circuit& c);

  // -- Measurement and readout ------------------------------------------------

  /// P(qubit q measures 1).
  double ProbabilityOfOne(int q) const;

  /// Per-basis-state probabilities (|amp|^2).
  std::vector<double> Probabilities() const;

  /// Projective measurement of one qubit; collapses the state. Returns 0/1.
  int MeasureQubit(int q, Rng* rng);

  /// Measures all qubits; collapses to a basis state and returns its index.
  uint64_t MeasureAll(Rng* rng);

  /// Samples a basis state WITHOUT collapsing (repeatable readout).
  uint64_t SampleBasisState(Rng* rng) const;

  /// Draws `shots` samples; returns counts per basis state.
  std::map<uint64_t, int> Sample(int shots, Rng* rng) const;

  // -- Linear-algebra utilities -----------------------------------------------

  /// <z|H|z> expectation of a diagonal operator given its diagonal (length ==
  /// dimension()).
  double ExpectationDiagonal(const std::vector<double>& diagonal) const;

  Complex InnerProduct(const Statevector& other) const;

  /// |<this|other>|^2.
  double FidelityWith(const Statevector& other) const;

  double NormSquared() const;
  void Normalize();

  /// Debug listing of non-negligible amplitudes.
  std::string ToString(double cutoff = 1e-9) const;

 private:
  Statevector() : num_qubits_(0) {}

  int num_qubits_;
  std::vector<Complex> amplitudes_;
};

/// Runs `c` on |0...0> and returns the final state.
Statevector RunCircuit(const circuit::Circuit& c);

/// Runs `c` on |0...0> and samples `shots` measurement outcomes.
std::map<uint64_t, int> SampleCircuit(const circuit::Circuit& c, int shots,
                                      Rng* rng);

}  // namespace sim
}  // namespace qdm

#endif  // QDM_SIM_STATEVECTOR_H_
