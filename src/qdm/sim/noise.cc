#include "qdm/sim/noise.h"

#include <cmath>

#include "qdm/common/check.h"

namespace qdm {
namespace sim {

void TrajectorySimulator::MaybeApplyPauli(Statevector* sv, int qubit, double p,
                                          Rng* rng) const {
  if (p <= 0.0 || !rng->Bernoulli(p)) return;
  using circuit::GateKind;
  const GateKind paulis[3] = {GateKind::kX, GateKind::kY, GateKind::kZ};
  const GateKind chosen = paulis[rng->UniformInt(0, 2)];
  sv->Apply1Q(circuit::SingleQubitMatrix(chosen, {}), qubit);
}

Statevector TrajectorySimulator::RunTrajectory(const circuit::Circuit& c,
                                               Rng* rng) const {
  Statevector sv(c.num_qubits());
  for (const circuit::Gate& gate : c.gates()) {
    sv.ApplyGate(gate);
    const double p = gate.qubits.size() == 1 ? model_.depolarizing_1q
                                             : model_.depolarizing_2q;
    for (int q : gate.qubits) MaybeApplyPauli(&sv, q, p, rng);
  }
  return sv;
}

std::map<uint64_t, int> TrajectorySimulator::Sample(const circuit::Circuit& c,
                                                    int shots, Rng* rng) const {
  std::map<uint64_t, int> counts;
  if (model_.IsNoiseless()) {
    // One exact state, many samples.
    Statevector sv = RunCircuit(c);
    for (int s = 0; s < shots; ++s) ++counts[sv.SampleBasisState(rng)];
    return counts;
  }
  for (int s = 0; s < shots; ++s) {
    Statevector sv = RunTrajectory(c, rng);
    uint64_t outcome = sv.SampleBasisState(rng);
    if (model_.readout_flip > 0.0) {
      for (int q = 0; q < c.num_qubits(); ++q) {
        if (rng->Bernoulli(model_.readout_flip)) outcome ^= uint64_t{1} << q;
      }
    }
    ++counts[outcome];
  }
  return counts;
}

double TrajectorySimulator::AverageDiagonalExpectation(
    const circuit::Circuit& c, const std::vector<double>& diagonal,
    int trajectories, Rng* rng) const {
  QDM_CHECK_GT(trajectories, 0);
  if (model_.IsNoiseless()) {
    return RunCircuit(c).ExpectationDiagonal(diagonal);
  }
  double total = 0.0;
  for (int t = 0; t < trajectories; ++t) {
    total += RunTrajectory(c, rng).ExpectationDiagonal(diagonal);
  }
  return total / trajectories;
}

std::vector<linalg::Matrix> DepolarizingKraus(double p) {
  QDM_CHECK(p >= 0.0 && p <= 1.0);
  using linalg::Matrix;
  const double k0 = std::sqrt(1.0 - p);
  const double kp = std::sqrt(p / 3.0);
  Matrix i = circuit::SingleQubitMatrix(circuit::GateKind::kI, {});
  Matrix x = circuit::SingleQubitMatrix(circuit::GateKind::kX, {});
  Matrix y = circuit::SingleQubitMatrix(circuit::GateKind::kY, {});
  Matrix z = circuit::SingleQubitMatrix(circuit::GateKind::kZ, {});
  return {i * Complex(k0, 0), x * Complex(kp, 0), y * Complex(kp, 0),
          z * Complex(kp, 0)};
}

std::vector<linalg::Matrix> AmplitudeDampingKraus(double gamma) {
  QDM_CHECK(gamma >= 0.0 && gamma <= 1.0);
  linalg::Matrix k0{{Complex(1, 0), Complex(0, 0)},
                    {Complex(0, 0), Complex(std::sqrt(1.0 - gamma), 0)}};
  linalg::Matrix k1{{Complex(0, 0), Complex(std::sqrt(gamma), 0)},
                    {Complex(0, 0), Complex(0, 0)}};
  return {k0, k1};
}

std::vector<linalg::Matrix> PhaseDampingKraus(double lambda) {
  QDM_CHECK(lambda >= 0.0 && lambda <= 1.0);
  linalg::Matrix k0{{Complex(1, 0), Complex(0, 0)},
                    {Complex(0, 0), Complex(std::sqrt(1.0 - lambda), 0)}};
  linalg::Matrix k1{{Complex(0, 0), Complex(0, 0)},
                    {Complex(0, 0), Complex(std::sqrt(lambda), 0)}};
  return {k0, k1};
}

}  // namespace sim
}  // namespace qdm
