#include "qdm/sim/noise.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "qdm/common/check.h"

namespace qdm {
namespace sim {

namespace {

linalg::Matrix PauliMatrix(int index) {
  using circuit::GateKind;
  const GateKind paulis[3] = {GateKind::kX, GateKind::kY, GateKind::kZ};
  return circuit::SingleQubitMatrix(paulis[index], {});
}

/// Materializes one circuit gate as a full-dimension unitary by applying it
/// to every basis column. 4^n work — only used on the density-matrix
/// reference path, which is restricted to small n anyway.
linalg::Matrix FullGateUnitary(const circuit::Gate& gate, int num_qubits) {
  const uint64_t dim = uint64_t{1} << num_qubits;
  linalg::Matrix u(dim, dim);
  for (uint64_t col = 0; col < dim; ++col) {
    std::vector<Complex> amplitudes(dim, Complex(0, 0));
    amplitudes[col] = Complex(1, 0);
    Statevector basis = Statevector::FromAmplitudes(std::move(amplitudes));
    basis.ApplyGate(gate);
    for (uint64_t row = 0; row < dim; ++row) u(row, col) = basis.amplitude(row);
  }
  return u;
}

}  // namespace

void TrajectorySimulator::ApplyChannels(Statevector* sv, int qubit,
                                        double depol_p, Rng* rng) const {
  // Each active channel consumes exactly one uniform draw: the same u
  // decides both whether an error fires and which branch is taken, so the
  // trajectory's draw count depends only on (circuit, model) — never on
  // earlier branch outcomes (the fixed-draw discipline of docs/noise.md).
  if (depol_p > 0.0) {
    const double u = rng->Uniform();
    if (u < depol_p) {
      const int index =
          std::min(2, static_cast<int>(3.0 * u / depol_p));
      sv->Apply1Q(PauliMatrix(index), qubit);
    }
  }
  const double pauli_total =
      model_.pauli_px + model_.pauli_py + model_.pauli_pz;
  if (pauli_total > 0.0) {
    const double u = rng->Uniform();
    if (u < model_.pauli_px) {
      sv->Apply1Q(PauliMatrix(0), qubit);
    } else if (u < model_.pauli_px + model_.pauli_py) {
      sv->Apply1Q(PauliMatrix(1), qubit);
    } else if (u < pauli_total) {
      sv->Apply1Q(PauliMatrix(2), qubit);
    }
  }
  if (model_.amplitude_damping > 0.0) {
    // Quantum-jump unraveling: jump with probability ||K1 psi||^2 =
    // gamma * P(q = 1), otherwise apply the no-jump operator; renormalizing
    // either branch reproduces the exact channel on average.
    const double gamma = model_.amplitude_damping;
    const double p_jump = gamma * sv->ProbabilityOfOne(qubit);
    const double u = rng->Uniform();
    if (u < p_jump) {
      const linalg::Matrix jump{{Complex(0, 0), Complex(1, 0)},
                                {Complex(0, 0), Complex(0, 0)}};
      sv->Apply1Q(jump, qubit);
    } else {
      const linalg::Matrix no_jump{
          {Complex(1, 0), Complex(0, 0)},
          {Complex(0, 0), Complex(std::sqrt(1.0 - gamma), 0)}};
      sv->Apply1Q(no_jump, qubit);
    }
    sv->Normalize();
  }
  if (model_.phase_damping > 0.0) {
    const double lambda = model_.phase_damping;
    const double p_jump = lambda * sv->ProbabilityOfOne(qubit);
    const double u = rng->Uniform();
    if (u < p_jump) {
      const linalg::Matrix jump{{Complex(0, 0), Complex(0, 0)},
                                {Complex(0, 0), Complex(1, 0)}};
      sv->Apply1Q(jump, qubit);
    } else {
      const linalg::Matrix no_jump{
          {Complex(1, 0), Complex(0, 0)},
          {Complex(0, 0), Complex(std::sqrt(1.0 - lambda), 0)}};
      sv->Apply1Q(no_jump, qubit);
    }
    sv->Normalize();
  }
}

Statevector TrajectorySimulator::RunTrajectory(const circuit::Circuit& c,
                                               Rng* rng) const {
  Statevector sv(c.num_qubits());
  for (const circuit::Gate& gate : c.gates()) {
    sv.ApplyGate(gate);
    const double p = gate.qubits.size() == 1 ? model_.depolarizing_1q
                                             : model_.depolarizing_2q;
    for (int q : gate.qubits) ApplyChannels(&sv, q, p, rng);
  }
  return sv;
}

std::map<uint64_t, int> TrajectorySimulator::Sample(const circuit::Circuit& c,
                                                    int shots, Rng* rng) const {
  std::map<uint64_t, int> counts;
  if (model_.IsNoiseless()) {
    // One exact state, many samples.
    Statevector sv = RunCircuit(c);
    for (int s = 0; s < shots; ++s) ++counts[sv.SampleBasisState(rng)];
    return counts;
  }
  for (int s = 0; s < shots; ++s) {
    // One engine draw of the caller's Rng seeds the whole shot, so shot k
    // is a pure function of the k-th draw — independent of how many random
    // numbers earlier shots' error branches consumed.
    Rng shot_rng(rng->engine()());
    Statevector sv = RunTrajectory(c, &shot_rng);
    uint64_t outcome = sv.SampleBasisState(&shot_rng);
    if (model_.readout_flip > 0.0) {
      for (int q = 0; q < c.num_qubits(); ++q) {
        if (shot_rng.Bernoulli(model_.readout_flip)) {
          outcome ^= uint64_t{1} << q;
        }
      }
    }
    ++counts[outcome];
  }
  return counts;
}

double TrajectorySimulator::AverageDiagonalExpectation(
    const circuit::Circuit& c, const std::vector<double>& diagonal,
    int trajectories, Rng* rng) const {
  QDM_CHECK_GT(trajectories, 0);
  if (model_.IsNoiseless()) {
    return RunCircuit(c).ExpectationDiagonal(diagonal);
  }
  double total = 0.0;
  for (int t = 0; t < trajectories; ++t) {
    Rng shot_rng(rng->engine()());
    total += RunTrajectory(c, &shot_rng).ExpectationDiagonal(diagonal);
  }
  return total / trajectories;
}

DensityMatrix EvolveDensityMatrix(const circuit::Circuit& c,
                                  const NoiseModel& model) {
  DensityMatrix rho(c.num_qubits());
  const double pauli_total = model.pauli_px + model.pauli_py + model.pauli_pz;
  for (const circuit::Gate& gate : c.gates()) {
    rho.ApplyUnitary(FullGateUnitary(gate, c.num_qubits()));
    const double depol = gate.qubits.size() == 1 ? model.depolarizing_1q
                                                 : model.depolarizing_2q;
    // Same channel order per operand qubit as RunTrajectory.
    for (int q : gate.qubits) {
      if (depol > 0.0) rho.ApplyKraus1Q(DepolarizingKraus(depol), q);
      if (pauli_total > 0.0) {
        rho.ApplyKraus1Q(
            PauliKraus(model.pauli_px, model.pauli_py, model.pauli_pz), q);
      }
      if (model.amplitude_damping > 0.0) {
        rho.ApplyKraus1Q(AmplitudeDampingKraus(model.amplitude_damping), q);
      }
      if (model.phase_damping > 0.0) {
        rho.ApplyKraus1Q(PhaseDampingKraus(model.phase_damping), q);
      }
    }
  }
  return rho;
}

std::vector<linalg::Matrix> DepolarizingKraus(double p) {
  QDM_CHECK(p >= 0.0 && p <= 1.0);
  using linalg::Matrix;
  const double k0 = std::sqrt(1.0 - p);
  const double kp = std::sqrt(p / 3.0);
  Matrix i = circuit::SingleQubitMatrix(circuit::GateKind::kI, {});
  Matrix x = circuit::SingleQubitMatrix(circuit::GateKind::kX, {});
  Matrix y = circuit::SingleQubitMatrix(circuit::GateKind::kY, {});
  Matrix z = circuit::SingleQubitMatrix(circuit::GateKind::kZ, {});
  return {i * Complex(k0, 0), x * Complex(kp, 0), y * Complex(kp, 0),
          z * Complex(kp, 0)};
}

std::vector<linalg::Matrix> PauliKraus(double px, double py, double pz) {
  QDM_CHECK(px >= 0.0 && py >= 0.0 && pz >= 0.0 && px + py + pz <= 1.0);
  using linalg::Matrix;
  Matrix i = circuit::SingleQubitMatrix(circuit::GateKind::kI, {});
  return {i * Complex(std::sqrt(1.0 - px - py - pz), 0),
          PauliMatrix(0) * Complex(std::sqrt(px), 0),
          PauliMatrix(1) * Complex(std::sqrt(py), 0),
          PauliMatrix(2) * Complex(std::sqrt(pz), 0)};
}

std::vector<linalg::Matrix> AmplitudeDampingKraus(double gamma) {
  QDM_CHECK(gamma >= 0.0 && gamma <= 1.0);
  linalg::Matrix k0{{Complex(1, 0), Complex(0, 0)},
                    {Complex(0, 0), Complex(std::sqrt(1.0 - gamma), 0)}};
  linalg::Matrix k1{{Complex(0, 0), Complex(std::sqrt(gamma), 0)},
                    {Complex(0, 0), Complex(0, 0)}};
  return {k0, k1};
}

std::vector<linalg::Matrix> PhaseDampingKraus(double lambda) {
  QDM_CHECK(lambda >= 0.0 && lambda <= 1.0);
  linalg::Matrix k0{{Complex(1, 0), Complex(0, 0)},
                    {Complex(0, 0), Complex(std::sqrt(1.0 - lambda), 0)}};
  linalg::Matrix k1{{Complex(0, 0), Complex(0, 0)},
                    {Complex(0, 0), Complex(std::sqrt(lambda), 0)}};
  return {k0, k1};
}

}  // namespace sim
}  // namespace qdm
