#ifndef QDM_SIM_NOISE_H_
#define QDM_SIM_NOISE_H_

#include <map>
#include <vector>

#include "qdm/circuit/circuit.h"
#include "qdm/common/rng.h"
#include "qdm/sim/density_matrix.h"
#include "qdm/sim/statevector.h"

namespace qdm {
namespace sim {

/// Stochastic noise description for the trajectory simulator and the
/// density-matrix reference evolution. Models the "noisy operations"
/// constraint of NISQ machines that Sec III-C(3) of the paper highlights:
/// every sweep in bench_hardware_constraints runs against this model, and
/// the `noisy:<model>:<base>` registry backends (docs/noise.md) translate
/// their model token into one of these.
///
/// After every gate, each active channel is applied to each operand qubit in
/// a fixed order — depolarizing, Pauli, amplitude damping, phase damping —
/// identically on the trajectory path (RunTrajectory) and the density-matrix
/// path (EvolveDensityMatrix), so trajectory averages converge to the exact
/// channel semantics (pinned by noise_channel_test).
struct NoiseModel {
  /// Probability that a uniform random Pauli hits each operand qubit after a
  /// single-qubit gate.
  double depolarizing_1q = 0.0;
  /// Same, after a multi-qubit gate (applied independently per operand).
  double depolarizing_2q = 0.0;
  /// Asymmetric Pauli channel: X / Y / Z error probabilities applied to each
  /// operand qubit after every gate (px + py + pz <= 1).
  double pauli_px = 0.0;
  double pauli_py = 0.0;
  double pauli_pz = 0.0;
  /// Amplitude-damping rate gamma (T1 decay toward |0>) applied to each
  /// operand qubit after every gate.
  double amplitude_damping = 0.0;
  /// Phase-damping rate lambda (T2 dephasing) applied to each operand qubit
  /// after every gate.
  double phase_damping = 0.0;
  /// Probability that a measured bit is flipped at readout.
  double readout_flip = 0.0;

  bool IsNoiseless() const {
    return depolarizing_1q == 0.0 && depolarizing_2q == 0.0 &&
           pauli_px == 0.0 && pauli_py == 0.0 && pauli_pz == 0.0 &&
           amplitude_damping == 0.0 && phase_damping == 0.0 &&
           readout_flip == 0.0;
  }
};

/// Monte-Carlo trajectory simulator: each run draws one random error
/// realization (stochastic Paulis; quantum-jump unraveling for the damping
/// channels). Averaging trajectories converges to the density-matrix channel
/// semantics (verified against EvolveDensityMatrix in noise_channel_test).
///
/// RNG discipline: every channel application consumes exactly ONE uniform
/// draw from the trajectory's Rng regardless of whether an error fires or
/// which error is selected, so a trajectory's draw count is a pure function
/// of (circuit, model). Sample / AverageDiagonalExpectation additionally
/// derive a fresh per-shot Rng from a single engine draw of the caller's
/// Rng, making shot k's randomness independent of the branch outcomes of
/// shots < k (the determinism contract of docs/noise.md; regression-pinned
/// by noise_channel_test.ShotPrefixIndependence).
class TrajectorySimulator {
 public:
  explicit TrajectorySimulator(NoiseModel model) : model_(model) {}

  /// Runs one noisy trajectory of `c` from |0...0>.
  Statevector RunTrajectory(const circuit::Circuit& c, Rng* rng) const;

  /// Samples measurement outcomes, one fresh trajectory per shot (plus
  /// readout errors). Each shot runs on its own Rng derived from one engine
  /// draw of `rng` (see class comment).
  std::map<uint64_t, int> Sample(const circuit::Circuit& c, int shots,
                                 Rng* rng) const;

  /// Mean of a diagonal observable over `trajectories` runs, each on its own
  /// derived Rng (see class comment).
  double AverageDiagonalExpectation(const circuit::Circuit& c,
                                    const std::vector<double>& diagonal,
                                    int trajectories, Rng* rng) const;

  const NoiseModel& model() const { return model_; }

 private:
  /// Applies every active channel of `model_` to qubit `qubit` (one uniform
  /// draw per channel; `depol_p` is the arity-selected depolarizing rate).
  void ApplyChannels(Statevector* sv, int qubit, double depol_p,
                     Rng* rng) const;

  NoiseModel model_;
};

/// Evolves |0...0> through `c` under `model` with exact density-matrix
/// channel semantics: each gate is applied as a full-dimension unitary, then
/// each active channel hits each operand qubit via its Kraus operators in
/// the same fixed order as RunTrajectory. Readout flips are NOT applied (they
/// act on classical outcomes; apply them when sampling the diagonal).
/// Intended for small n — the matrix is 4^n complex entries.
DensityMatrix EvolveDensityMatrix(const circuit::Circuit& c,
                                  const NoiseModel& model);

/// Kraus operators of the standard single-qubit channels (used by the
/// density-matrix reference implementation and by qnet fidelity algebra).
std::vector<linalg::Matrix> DepolarizingKraus(double p);
std::vector<linalg::Matrix> PauliKraus(double px, double py, double pz);
std::vector<linalg::Matrix> AmplitudeDampingKraus(double gamma);
std::vector<linalg::Matrix> PhaseDampingKraus(double lambda);

}  // namespace sim
}  // namespace qdm

#endif  // QDM_SIM_NOISE_H_
