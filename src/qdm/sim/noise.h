#ifndef QDM_SIM_NOISE_H_
#define QDM_SIM_NOISE_H_

#include <map>
#include <vector>

#include "qdm/circuit/circuit.h"
#include "qdm/common/rng.h"
#include "qdm/sim/statevector.h"

namespace qdm {
namespace sim {

/// Stochastic (Pauli-twirled) noise description for the trajectory simulator.
/// Models the "noisy operations" constraint of NISQ machines that Sec III-C(3)
/// of the paper highlights: every sweep in bench_hardware_constraints runs
/// against this model.
struct NoiseModel {
  /// Probability that a uniform random Pauli hits each operand qubit after a
  /// single-qubit gate.
  double depolarizing_1q = 0.0;
  /// Same, after a multi-qubit gate (applied independently per operand).
  double depolarizing_2q = 0.0;
  /// Probability that a measured bit is flipped at readout.
  double readout_flip = 0.0;

  bool IsNoiseless() const {
    return depolarizing_1q == 0.0 && depolarizing_2q == 0.0 &&
           readout_flip == 0.0;
  }
};

/// Monte-Carlo trajectory simulator: each run draws one random Pauli-error
/// realization. Averaging trajectories converges to the density-matrix
/// channel semantics (verified against DensityMatrix in tests).
class TrajectorySimulator {
 public:
  explicit TrajectorySimulator(NoiseModel model) : model_(model) {}

  /// Runs one noisy trajectory of `c` from |0...0>.
  Statevector RunTrajectory(const circuit::Circuit& c, Rng* rng) const;

  /// Samples measurement outcomes, one fresh trajectory per shot (plus
  /// readout errors).
  std::map<uint64_t, int> Sample(const circuit::Circuit& c, int shots,
                                 Rng* rng) const;

  /// Mean of a diagonal observable over `trajectories` runs.
  double AverageDiagonalExpectation(const circuit::Circuit& c,
                                    const std::vector<double>& diagonal,
                                    int trajectories, Rng* rng) const;

  const NoiseModel& model() const { return model_; }

 private:
  void MaybeApplyPauli(Statevector* sv, int qubit, double p, Rng* rng) const;

  NoiseModel model_;
};

/// Kraus operators of the standard single-qubit channels (used by the
/// density-matrix reference implementation and by qnet fidelity algebra).
std::vector<linalg::Matrix> DepolarizingKraus(double p);
std::vector<linalg::Matrix> AmplitudeDampingKraus(double gamma);
std::vector<linalg::Matrix> PhaseDampingKraus(double lambda);

}  // namespace sim
}  // namespace qdm

#endif  // QDM_SIM_NOISE_H_
