#include "qdm/sim/statevector.h"

#include <algorithm>
#include <atomic>
#include <cmath>

#include "qdm/common/strings.h"
#include "qdm/common/thread_pool.h"
#include "qdm/sim/simd.h"

namespace qdm {
namespace sim {

namespace {

bool IsPowerOfTwo(size_t n) { return n != 0 && (n & (n - 1)) == 0; }

int Log2(size_t n) {
  int k = 0;
  while ((size_t{1} << k) < n) ++k;
  return k;
}

// Process-wide default ExecutionConfig, stored as independent atomics so the
// per-gate resolution path is lock-free (a mutex here would serialize every
// gate call of every thread in the process). The knobs are set/read
// independently, so a reader racing a concurrent SetDefaultExecutionConfig
// can observe one old and one new knob — acceptable for a tuning knob that
// callers set at startup or around a test scope, never mid-kernel.
std::atomic<int> g_default_num_threads{0};
std::atomic<uint64_t> g_default_serial_cutoff{0};
std::atomic<int> g_default_simd_mode{0};

// Re-inserts a zero bit at position `pos` into the compact index `p`: bits
// [0, pos) map through unchanged, bits >= pos shift up by one. Composing
// ascending positions maps a compact pair index onto the basis index with
// those bits held at zero — the swap kernels enumerate each amplitude pair
// exactly once this way, in runs of 2^lowest_position contiguous indices.
inline uint64_t InsertZeroBit(uint64_t p, int pos) {
  const uint64_t low = p & ((uint64_t{1} << pos) - 1);
  return ((p >> pos) << (pos + 1)) | low;
}

// Serial halves of the pair kernels, hoisted into standalone functions so
// their codegen stays isolated from the lambda-bearing parallel branches:
// this member/reference-indexed two-level group loop is the form the
// compiler SLP-vectorizes (pointer or lambda rewrites of the same loop
// measure ~1.6x slower), and it is the pre-parallel kernel verbatim.
void SerialApply1Q(std::vector<Complex>& amplitudes, size_t step, Complex u00,
                   Complex u01, Complex u10, Complex u11) {
  for (size_t group = 0; group < amplitudes.size(); group += 2 * step) {
    for (size_t i = group; i < group + step; ++i) {
      const Complex a0 = amplitudes[i];
      const Complex a1 = amplitudes[i + step];
      amplitudes[i] = u00 * a0 + u01 * a1;
      amplitudes[i + step] = u10 * a0 + u11 * a1;
    }
  }
}

void SerialApplyControlled1Q(std::vector<Complex>& amplitudes, size_t step,
                             uint64_t control_mask, Complex u00, Complex u01,
                             Complex u10, Complex u11) {
  for (size_t group = 0; group < amplitudes.size(); group += 2 * step) {
    for (size_t i = group; i < group + step; ++i) {
      if ((i & control_mask) != control_mask) continue;
      const Complex a0 = amplitudes[i];
      const Complex a1 = amplitudes[i + step];
      amplitudes[i] = u00 * a0 + u01 * a1;
      amplitudes[i + step] = u10 * a0 + u11 * a1;
    }
  }
}

}  // namespace

void Statevector::SetDefaultExecutionConfig(const ExecutionConfig& config) {
  g_default_num_threads.store(config.num_threads, std::memory_order_relaxed);
  g_default_serial_cutoff.store(config.serial_cutoff,
                                std::memory_order_relaxed);
  g_default_simd_mode.store(static_cast<int>(config.simd),
                            std::memory_order_relaxed);
}

ExecutionConfig Statevector::DefaultExecutionConfig() {
  return ExecutionConfig{
      g_default_num_threads.load(std::memory_order_relaxed),
      g_default_serial_cutoff.load(std::memory_order_relaxed),
      static_cast<SimdMode>(
          g_default_simd_mode.load(std::memory_order_relaxed))};
}

int Statevector::ResolvedNumThreads() const {
  int threads = execution_config_.num_threads;
  if (threads <= 0) {
    threads = g_default_num_threads.load(std::memory_order_relaxed);
  }
  if (threads <= 0) threads = ThreadPool::DefaultNumThreads();
  return threads;
}

uint64_t Statevector::ResolvedSerialCutoff() const {
  uint64_t cutoff = execution_config_.serial_cutoff;
  if (cutoff == 0) {
    cutoff = g_default_serial_cutoff.load(std::memory_order_relaxed);
  }
  if (cutoff == 0) cutoff = kDefaultSerialCutoff;
  return cutoff;
}

simd::Tier Statevector::ResolvedSimdTier() const {
  SimdMode mode = execution_config_.simd;
  if (mode == SimdMode::kAuto) {
    mode = static_cast<SimdMode>(
        g_default_simd_mode.load(std::memory_order_relaxed));
  }
  if (mode == SimdMode::kScalar) return simd::Tier::kScalar;
  // kAuto and kSimd both mean "best available": kSimd is the explicit
  // request form (tests, benches), and it still degrades to scalar when the
  // build, the CPU, or QDM_SIMD=off rules the vector tier out.
  return simd::DetectedTier();
}

bool Statevector::UseSimdKernels() const {
  return ResolvedSimdTier() != simd::Tier::kScalar;
}

bool Statevector::UseSerialKernel() const {
  return ResolvedNumThreads() <= 1 ||
         amplitudes_.size() < ResolvedSerialCutoff();
}

void Statevector::RunChunksParallel(
    uint64_t n, const std::function<void(uint64_t, uint64_t)>& body) const {
  // One contiguous chunk per participating thread, dispatched over the
  // process-wide shared pool (ThreadPool::Shared — no thread spawn per gate;
  // the caller participates, so nested use inside pool workers cannot
  // deadlock). The chunk boundaries depend only on (n, resolved threads) —
  // never on which worker picks which chunk — so any scheduling order
  // writes the exact same values.
  const int chunks =
      static_cast<int>(std::min<uint64_t>(ResolvedNumThreads(), n));
  const uint64_t chunk_size = (n + chunks - 1) / chunks;
  ThreadPool::Shared().ForEach(chunks, [&](int c) {
    const uint64_t begin = chunk_size * static_cast<uint64_t>(c);
    const uint64_t end = std::min(begin + chunk_size, n);
    if (begin < end) body(begin, end);
  });
}

Statevector::Statevector(int num_qubits) : num_qubits_(num_qubits) {
  QDM_CHECK_GT(num_qubits, 0);
  QDM_CHECK_LE(num_qubits, 28) << "state vector would exceed memory budget";
  amplitudes_.assign(size_t{1} << num_qubits, Complex(0, 0));
  amplitudes_[0] = Complex(1, 0);
}

Statevector Statevector::FromAmplitudes(std::vector<Complex> amplitudes,
                                        bool normalize) {
  QDM_CHECK(IsPowerOfTwo(amplitudes.size()))
      << "amplitude vector length must be a power of two";
  Statevector sv;
  sv.num_qubits_ = Log2(amplitudes.size());
  QDM_CHECK_GT(sv.num_qubits_, 0);
  sv.amplitudes_ = std::move(amplitudes);
  if (normalize) sv.Normalize();
  return sv;
}

void Statevector::Apply1Q(const linalg::Matrix& u, int q) {
  QDM_CHECK(u.rows() == 2 && u.cols() == 2);
  QDM_CHECK(q >= 0 && q < num_qubits_);
  const size_t step = size_t{1} << q;
  const Complex u00 = u(0, 0), u01 = u(0, 1), u10 = u(1, 0), u11 = u(1, 1);
  const bool use_simd = UseSimdKernels();
  Complex* amp = amplitudes_.data();
  if (UseSerialKernel()) {
    if (!use_simd) {
      SerialApply1Q(amplitudes_, step, u00, u01, u10, u11);
      return;
    }
    // Serial + SIMD. q = 0 pairs are adjacent in memory (length-1 runs
    // would waste the vector width), so they take the interleaved-pair
    // kernel; every other target walks one aligned full run per group.
    if (step == 1) {
      simd::Apply1QPairsRunAvx2(amp, amplitudes_.size() >> 1, u00, u01, u10,
                                u11);
      return;
    }
    for (size_t group = 0; group < amplitudes_.size(); group += 2 * step) {
      simd::Apply1QRunAvx2(amp + group, amp + group + step, step, u00, u01,
                           u10, u11);
    }
    return;
  }
  // Parallel branch: pair p enumerates the amplitude pairs (i, i + step)
  // with the target bit clear/set; pairs are disjoint, so chunks of the
  // pair range never share an element. Each chunk is walked as leading
  // partial group / full groups / trailing partial group to keep the inner
  // loops contiguous. Identical arithmetic per pair -> bit-identical to the
  // serial branch (pinned by statevector_parallel_test). For q = 0 a chunk
  // of the pair range IS a contiguous amplitude range, so the SIMD path
  // hands whole chunks to the interleaved-pair kernel.
  if (use_simd && step == 1) {
    RunChunksParallel(amplitudes_.size() >> 1,
                      [&](uint64_t begin, uint64_t end) {
                        simd::Apply1QPairsRunAvx2(amp + 2 * begin, end - begin,
                                                  u00, u01, u10, u11);
                      });
    return;
  }
  const uint64_t low_mask = step - 1;
  const auto apply_run = [&](uint64_t pair, uint64_t run) {
    Complex* lo = amp + (((pair & ~low_mask) << 1) | (pair & low_mask));
    Complex* hi = lo + step;
    if (use_simd) {
      simd::Apply1QRunAvx2(lo, hi, run, u00, u01, u10, u11);
      return;
    }
    for (uint64_t k = 0; k < run; ++k) {
      const Complex a0 = lo[k];
      const Complex a1 = hi[k];
      lo[k] = u00 * a0 + u01 * a1;
      hi[k] = u10 * a0 + u11 * a1;
    }
  };
  RunChunksParallel(amplitudes_.size() >> 1, [&](uint64_t begin, uint64_t end) {
    uint64_t p = begin;
    if ((p & low_mask) != 0) {  // Leading partial group.
      const uint64_t run = std::min(step - (p & low_mask), end - p);
      apply_run(p, run);
      p += run;
    }
    for (; p + step <= end; p += step) apply_run(p, step);  // Full groups.
    if (p < end) apply_run(p, end - p);  // Trailing partial group.
  });
}

void Statevector::ApplyControlled1Q(const std::vector<int>& controls,
                                    int target,
                                    const linalg::Matrix& u) {
  QDM_CHECK(u.rows() == 2 && u.cols() == 2);
  QDM_CHECK(target >= 0 && target < num_qubits_);
  uint64_t control_mask = 0;
  for (int c : controls) {
    QDM_CHECK(c >= 0 && c < num_qubits_ && c != target);
    control_mask |= uint64_t{1} << c;
  }
  const size_t step = size_t{1} << target;
  const Complex u00 = u(0, 0), u01 = u(0, 1), u10 = u(1, 0), u11 = u(1, 1);
  const bool use_simd = UseSimdKernels();
  // Split the control mask at the target: every index in a contiguous run
  // shares its bits >= target (runs never cross a group boundary), so the
  // above-target controls are tested ONCE per run — a failing run (the
  // common case for multi-controlled Grover/QPE gates) retires in one
  // compare instead of `run` element tests. Only below-target control bits
  // still vary inside a run; when there are none, the run body is the
  // unconditional Apply1Q arithmetic (and vectorizable).
  const uint64_t low_ctrl = control_mask & (step - 1);
  const uint64_t high_ctrl = control_mask & ~(step - 1);
  Complex* amp = amplitudes_.data();
  if (UseSerialKernel()) {
    if (!use_simd) {
      SerialApplyControlled1Q(amplitudes_, step, control_mask, u00, u01, u10,
                              u11);
      return;
    }
    // Serial + SIMD: group-skip walk; unconditional groups take the vector
    // kernel (step 1 has no contiguous runs to vectorize — reference loop).
    if (step == 1) {
      SerialApplyControlled1Q(amplitudes_, step, control_mask, u00, u01, u10,
                              u11);
      return;
    }
    for (size_t group = 0; group < amplitudes_.size(); group += 2 * step) {
      if ((group & high_ctrl) != high_ctrl) continue;
      if (low_ctrl == 0) {
        simd::Apply1QRunAvx2(amp + group, amp + group + step, step, u00, u01,
                             u10, u11);
        continue;
      }
      for (size_t i = group; i < group + step; ++i) {
        if ((i & low_ctrl) != low_ctrl) continue;
        const Complex a0 = amp[i];
        const Complex a1 = amp[i + step];
        amp[i] = u00 * a0 + u01 * a1;
        amp[i + step] = u10 * a0 + u11 * a1;
      }
    }
    return;
  }
  // Parallel branch: same partial/full/partial group walk as Apply1Q with
  // the per-run control split above; the control mask excludes the target
  // bit, so testing the run base covers every element of the run.
  const uint64_t low_mask = step - 1;
  const auto apply_run = [&](uint64_t pair, uint64_t run) {
    const uint64_t base = ((pair & ~low_mask) << 1) | (pair & low_mask);
    if ((base & high_ctrl) != high_ctrl) return;
    if (low_ctrl == 0) {
      if (use_simd && step > 1) {
        simd::Apply1QRunAvx2(amp + base, amp + base + step, run, u00, u01,
                             u10, u11);
        return;
      }
      for (uint64_t k = 0; k < run; ++k) {
        const uint64_t i = base + k;
        const Complex a0 = amp[i];
        const Complex a1 = amp[i + step];
        amp[i] = u00 * a0 + u01 * a1;
        amp[i + step] = u10 * a0 + u11 * a1;
      }
      return;
    }
    for (uint64_t k = 0; k < run; ++k) {
      const uint64_t i = base + k;
      if ((i & low_ctrl) != low_ctrl) continue;
      const Complex a0 = amp[i];
      const Complex a1 = amp[i + step];
      amp[i] = u00 * a0 + u01 * a1;
      amp[i + step] = u10 * a0 + u11 * a1;
    }
  };
  RunChunksParallel(amplitudes_.size() >> 1, [&](uint64_t begin, uint64_t end) {
    uint64_t p = begin;
    if ((p & low_mask) != 0) {  // Leading partial group.
      const uint64_t run = std::min(step - (p & low_mask), end - p);
      apply_run(p, run);
      p += run;
    }
    for (; p + step <= end; p += step) apply_run(p, step);  // Full groups.
    if (p < end) apply_run(p, end - p);  // Trailing partial group.
  });
}

void Statevector::ApplySwap(int a, int b) {
  QDM_CHECK(a >= 0 && a < num_qubits_ && b >= 0 && b < num_qubits_ && a != b);
  const uint64_t bit_a = uint64_t{1} << a;
  const uint64_t bit_b = uint64_t{1} << b;
  // SIMD path: enumerate each mismatched pair once through a compact pair
  // index (both swap bits deleted), which turns the predicated full scan
  // into gap-free runs of 2^min(a,b) contiguous indices — the block at
  // base|bit_a exchanges with the disjoint block at base|bit_b via wide
  // moves. Pure data movement, so any enumeration that touches each pair
  // exactly once is bit-identical; chunks partition the pair range, so no
  // two workers touch the same pair. Runs shorter than the vector width
  // (min(a, b) = 0) stay on the scalar scan below.
  if (UseSimdKernels() && std::min(a, b) >= 1) {
    const int lo_q = std::min(a, b);
    const int hi_q = std::max(a, b);
    const uint64_t run = uint64_t{1} << lo_q;
    const uint64_t pairs = amplitudes_.size() >> 2;
    Complex* amp = amplitudes_.data();
    const auto swap_run = [&](uint64_t pair, uint64_t len) {
      const uint64_t base = InsertZeroBit(InsertZeroBit(pair, lo_q), hi_q);
      simd::SwapRunAvx2(amp + (base | bit_a), amp + (base | bit_b), len);
    };
    if (UseSerialKernel()) {
      for (uint64_t p = 0; p < pairs; p += run) swap_run(p, run);
      return;
    }
    const uint64_t low_mask = run - 1;
    RunChunksParallel(pairs, [&](uint64_t begin, uint64_t end) {
      uint64_t p = begin;
      if ((p & low_mask) != 0) {  // Leading partial run.
        const uint64_t len = std::min(run - (p & low_mask), end - p);
        swap_run(p, len);
        p += len;
      }
      for (; p + run <= end; p += run) swap_run(p, run);  // Full runs.
      if (p < end) swap_run(p, end - p);  // Trailing partial run.
    });
    return;
  }
  // Visit each mismatched pair once, keyed by the index with the a-bit set
  // and the b-bit clear. The partner j fails that predicate, so even when j
  // falls in another worker's chunk only the chunk owning i touches the
  // pair — chunks write disjoint element sets.
  if (UseSerialKernel()) {
    for (size_t i = 0; i < amplitudes_.size(); ++i) {
      if ((i & bit_a) != 0 && (i & bit_b) == 0) {
        size_t j = (i & ~bit_a) | bit_b;
        std::swap(amplitudes_[i], amplitudes_[j]);
      }
    }
    return;
  }
  Complex* amp = amplitudes_.data();
  RunChunksParallel(amplitudes_.size(), [&](uint64_t begin, uint64_t end) {
    for (uint64_t i = begin; i < end; ++i) {
      if ((i & bit_a) != 0 && (i & bit_b) == 0) {
        const uint64_t j = (i & ~bit_a) | bit_b;
        std::swap(amp[i], amp[j]);
      }
    }
  });
}

void Statevector::ApplyControlledSwap(int control, int a, int b) {
  QDM_CHECK(control != a && control != b);
  if (a == b) return;  // Degenerate swap: the scan predicate never matches.
  const uint64_t bit_c = uint64_t{1} << control;
  const uint64_t bit_a = uint64_t{1} << a;
  const uint64_t bit_b = uint64_t{1} << b;
  // SIMD path: same compact-pair-index enumeration as ApplySwap, with the
  // control bit held at 1 as well (three deleted bits), in runs of
  // 2^min(control, a, b) contiguous indices.
  const int min_q = std::min(control, std::min(a, b));
  if (UseSimdKernels() && min_q >= 1) {
    int sorted[3] = {control, a, b};
    std::sort(sorted, sorted + 3);
    const uint64_t run = uint64_t{1} << min_q;
    const uint64_t pairs = amplitudes_.size() >> 3;
    Complex* amp = amplitudes_.data();
    const auto swap_run = [&](uint64_t pair, uint64_t len) {
      const uint64_t base = InsertZeroBit(
          InsertZeroBit(InsertZeroBit(pair, sorted[0]), sorted[1]), sorted[2]);
      simd::SwapRunAvx2(amp + (base | bit_c | bit_a),
                        amp + (base | bit_c | bit_b), len);
    };
    if (UseSerialKernel()) {
      for (uint64_t p = 0; p < pairs; p += run) swap_run(p, run);
      return;
    }
    const uint64_t low_mask = run - 1;
    RunChunksParallel(pairs, [&](uint64_t begin, uint64_t end) {
      uint64_t p = begin;
      if ((p & low_mask) != 0) {  // Leading partial run.
        const uint64_t len = std::min(run - (p & low_mask), end - p);
        swap_run(p, len);
        p += len;
      }
      for (; p + run <= end; p += run) swap_run(p, run);  // Full runs.
      if (p < end) swap_run(p, end - p);  // Trailing partial run.
    });
    return;
  }
  // Same pair-ownership argument as ApplySwap: the partner j shares the
  // control bit but has the a-bit clear, so no other chunk touches it.
  if (UseSerialKernel()) {
    for (size_t i = 0; i < amplitudes_.size(); ++i) {
      if ((i & bit_c) != 0 && (i & bit_a) != 0 && (i & bit_b) == 0) {
        size_t j = (i & ~bit_a) | bit_b;
        std::swap(amplitudes_[i], amplitudes_[j]);
      }
    }
    return;
  }
  Complex* amp = amplitudes_.data();
  RunChunksParallel(amplitudes_.size(), [&](uint64_t begin, uint64_t end) {
    for (uint64_t i = begin; i < end; ++i) {
      if ((i & bit_c) != 0 && (i & bit_a) != 0 && (i & bit_b) == 0) {
        const uint64_t j = (i & ~bit_a) | bit_b;
        std::swap(amp[i], amp[j]);
      }
    }
  });
}

void Statevector::ApplyDiagonalPhase(
    const std::function<double(uint64_t)>& phase) {
  const bool use_simd = UseSimdKernels();
  Complex* amp = amplitudes_.data();
  if (use_simd) {
    // The std::function stays a scalar call per z either way; staging its
    // results through a small block buffer lets the complex multiplies run
    // on vector lanes. scale = 1.0 is exact (1.0 * t == t bitwise), so this
    // matches the direct polar(1.0, phase(z)) loop bit-for-bit.
    constexpr uint64_t kBlock = 128;
    const auto apply_block = [&](uint64_t begin, uint64_t end) {
      double staged[kBlock];
      for (uint64_t z0 = begin; z0 < end; z0 += kBlock) {
        const uint64_t len = std::min(kBlock, end - z0);
        for (uint64_t k = 0; k < len; ++k) staged[k] = phase(z0 + k);
        simd::DiagonalPhaseRunAvx2(amp + z0, staged, 1.0, len);
      }
    };
    if (UseSerialKernel()) {
      apply_block(0, amplitudes_.size());
    } else {
      RunChunksParallel(amplitudes_.size(), apply_block);
    }
    return;
  }
  if (UseSerialKernel()) {
    for (size_t z = 0; z < amplitudes_.size(); ++z) {
      amplitudes_[z] *= std::polar(1.0, phase(z));
    }
    return;
  }
  RunChunksParallel(amplitudes_.size(), [&](uint64_t begin, uint64_t end) {
    for (uint64_t z = begin; z < end; ++z) {
      amp[z] *= std::polar(1.0, phase(z));
    }
  });
}

void Statevector::ApplyDiagonalPhase(const std::vector<double>& phases,
                                     double scale) {
  QDM_CHECK_EQ(phases.size(), amplitudes_.size())
      << "ApplyDiagonalPhase: diagonal length " << phases.size()
      << " must equal the state dimension " << amplitudes_.size();
  const double* phase = phases.data();
  Complex* amp = amplitudes_.data();
  if (UseSimdKernels()) {
    if (UseSerialKernel()) {
      simd::DiagonalPhaseRunAvx2(amp, phase, scale, amplitudes_.size());
      return;
    }
    RunChunksParallel(amplitudes_.size(), [&](uint64_t begin, uint64_t end) {
      simd::DiagonalPhaseRunAvx2(amp + begin, phase + begin, scale,
                                 end - begin);
    });
    return;
  }
  if (UseSerialKernel()) {
    const size_t dim = amplitudes_.size();
    for (size_t z = 0; z < dim; ++z) {
      amp[z] *= std::polar(1.0, scale * phase[z]);
    }
    return;
  }
  RunChunksParallel(amplitudes_.size(), [&](uint64_t begin, uint64_t end) {
    for (uint64_t z = begin; z < end; ++z) {
      amp[z] *= std::polar(1.0, scale * phase[z]);
    }
  });
}

void Statevector::ApplyGate(const circuit::Gate& gate) {
  using circuit::GateKind;
  QDM_CHECK_EQ(gate.param_ref, -1)
      << "cannot simulate a symbolic gate; call BindParameters first";
  switch (gate.kind) {
    case GateKind::kI:
      return;
    case GateKind::kX:
    case GateKind::kY:
    case GateKind::kZ:
    case GateKind::kH:
    case GateKind::kS:
    case GateKind::kSdg:
    case GateKind::kT:
    case GateKind::kTdg:
    case GateKind::kRX:
    case GateKind::kRY:
    case GateKind::kRZ:
    case GateKind::kPhase:
    case GateKind::kU3:
      Apply1Q(circuit::SingleQubitMatrix(gate.kind, gate.params),
              gate.qubits[0]);
      return;
    case GateKind::kCX:
      ApplyControlled1Q({gate.qubits[0]}, gate.qubits[1],
                        circuit::SingleQubitMatrix(GateKind::kX, {}));
      return;
    case GateKind::kCY:
      ApplyControlled1Q({gate.qubits[0]}, gate.qubits[1],
                        circuit::SingleQubitMatrix(GateKind::kY, {}));
      return;
    case GateKind::kCZ:
      ApplyControlled1Q({gate.qubits[0]}, gate.qubits[1],
                        circuit::SingleQubitMatrix(GateKind::kZ, {}));
      return;
    case GateKind::kSwap:
      ApplySwap(gate.qubits[0], gate.qubits[1]);
      return;
    case GateKind::kCRZ:
      ApplyControlled1Q({gate.qubits[0]}, gate.qubits[1],
                        circuit::SingleQubitMatrix(GateKind::kRZ, gate.params));
      return;
    case GateKind::kCPhase:
      ApplyControlled1Q(
          {gate.qubits[0]}, gate.qubits[1],
          circuit::SingleQubitMatrix(GateKind::kPhase, gate.params));
      return;
    case GateKind::kRZZ: {
      // RZZ(theta) = exp(-i theta/2 Z(x)Z): phase -theta/2 when bits equal,
      // +theta/2 when they differ.
      const uint64_t bit_a = uint64_t{1} << gate.qubits[0];
      const uint64_t bit_b = uint64_t{1} << gate.qubits[1];
      const double half = gate.params[0] / 2;
      for (size_t z = 0; z < amplitudes_.size(); ++z) {
        const bool equal = ((z & bit_a) != 0) == ((z & bit_b) != 0);
        amplitudes_[z] *= std::polar(1.0, equal ? -half : half);
      }
      return;
    }
    case GateKind::kCCX:
      ApplyControlled1Q({gate.qubits[0], gate.qubits[1]}, gate.qubits[2],
                        circuit::SingleQubitMatrix(GateKind::kX, {}));
      return;
    case GateKind::kCSwap:
      ApplyControlledSwap(gate.qubits[0], gate.qubits[1], gate.qubits[2]);
      return;
  }
  QDM_CHECK(false) << "unhandled gate kind";
}

void Statevector::ApplyCircuit(const circuit::Circuit& c) {
  QDM_CHECK_EQ(c.num_qubits(), num_qubits_);
  QDM_CHECK_EQ(c.num_parameters(), 0)
      << "cannot simulate a circuit with unbound parameters";
  for (const circuit::Gate& gate : c.gates()) ApplyGate(gate);
}

double Statevector::ProbabilityOfOne(int q) const {
  QDM_CHECK(q >= 0 && q < num_qubits_);
  const uint64_t bit = uint64_t{1} << q;
  double p = 0.0;
  for (size_t z = 0; z < amplitudes_.size(); ++z) {
    if (z & bit) p += std::norm(amplitudes_[z]);
  }
  return p;
}

std::vector<double> Statevector::Probabilities() const {
  std::vector<double> probs(amplitudes_.size());
  for (size_t z = 0; z < amplitudes_.size(); ++z) {
    probs[z] = std::norm(amplitudes_[z]);
  }
  return probs;
}

int Statevector::MeasureQubit(int q, Rng* rng) {
  const double p1 = ProbabilityOfOne(q);
  const int outcome = rng->Bernoulli(p1) ? 1 : 0;
  const uint64_t bit = uint64_t{1} << q;
  const double norm = std::sqrt(outcome == 1 ? p1 : 1.0 - p1);
  QDM_CHECK_GT(norm, 0.0);
  for (size_t z = 0; z < amplitudes_.size(); ++z) {
    const bool matches = ((z & bit) != 0) == (outcome == 1);
    amplitudes_[z] = matches ? amplitudes_[z] / norm : Complex(0, 0);
  }
  return outcome;
}

uint64_t Statevector::MeasureAll(Rng* rng) {
  const uint64_t outcome = SampleBasisState(rng);
  amplitudes_.assign(amplitudes_.size(), Complex(0, 0));
  amplitudes_[outcome] = Complex(1, 0);
  return outcome;
}

uint64_t Statevector::SampleBasisState(Rng* rng) const {
  double r = rng->Uniform();
  double acc = 0.0;
  for (size_t z = 0; z < amplitudes_.size(); ++z) {
    acc += std::norm(amplitudes_[z]);
    if (r < acc) return z;
  }
  return amplitudes_.size() - 1;
}

std::map<uint64_t, int> Statevector::Sample(int shots, Rng* rng) const {
  std::map<uint64_t, int> counts;
  for (int s = 0; s < shots; ++s) ++counts[SampleBasisState(rng)];
  return counts;
}

double Statevector::ExpectationDiagonal(
    const std::vector<double>& diagonal) const {
  QDM_CHECK_EQ(diagonal.size(), amplitudes_.size());
  double e = 0.0;
  for (size_t z = 0; z < amplitudes_.size(); ++z) {
    e += std::norm(amplitudes_[z]) * diagonal[z];
  }
  return e;
}

Complex Statevector::InnerProduct(const Statevector& other) const {
  QDM_CHECK_EQ(num_qubits_, other.num_qubits_);
  Complex ip(0, 0);
  for (size_t z = 0; z < amplitudes_.size(); ++z) {
    ip += std::conj(amplitudes_[z]) * other.amplitudes_[z];
  }
  return ip;
}

double Statevector::FidelityWith(const Statevector& other) const {
  return std::norm(InnerProduct(other));
}

double Statevector::NormSquared() const {
  double n = 0.0;
  for (const Complex& a : amplitudes_) n += std::norm(a);
  return n;
}

void Statevector::Normalize() {
  const double n = std::sqrt(NormSquared());
  QDM_CHECK_GT(n, 0.0) << "cannot normalize the zero vector";
  for (Complex& a : amplitudes_) a /= n;
}

std::string Statevector::ToString(double cutoff) const {
  std::string out;
  for (size_t z = 0; z < amplitudes_.size(); ++z) {
    if (std::abs(amplitudes_[z]) <= cutoff) continue;
    std::string bits;
    for (int q = num_qubits_ - 1; q >= 0; --q) {
      bits += ((z >> q) & 1) ? '1' : '0';
    }
    out += StrFormat("|%s>: %+.4f%+.4fi\n", bits.c_str(), amplitudes_[z].real(),
                     amplitudes_[z].imag());
  }
  return out;
}

Statevector RunCircuit(const circuit::Circuit& c) {
  Statevector sv(c.num_qubits());
  sv.ApplyCircuit(c);
  return sv;
}

std::map<uint64_t, int> SampleCircuit(const circuit::Circuit& c, int shots,
                                      Rng* rng) {
  return RunCircuit(c).Sample(shots, rng);
}

}  // namespace sim
}  // namespace qdm
