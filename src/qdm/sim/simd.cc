#include "qdm/sim/simd.h"

#include <cmath>
#include <complex>
#include <cstdlib>
#include <cstring>
#include <utility>

// The AVX2 tier is compiled via per-function target attributes (no global
// -mavx2), so the rest of the translation unit — and the whole library —
// stays runnable on any x86-64 machine; DetectedTier() gates every call at
// runtime.
#if defined(QDM_ENABLE_SIMD) && defined(__x86_64__) && \
    (defined(__GNUC__) || defined(__clang__))
#define QDM_SIMD_HAVE_AVX2 1
#include <immintrin.h>
#endif

namespace qdm {
namespace sim {
namespace simd {

namespace {

bool EnvDisablesSimd() {
  const char* env = std::getenv("QDM_SIMD");
  if (env == nullptr) return false;
  return std::strcmp(env, "off") == 0 || std::strcmp(env, "0") == 0 ||
         std::strcmp(env, "false") == 0;
}

Tier DetectTier() {
#if QDM_SIMD_HAVE_AVX2
  if (!EnvDisablesSimd() && __builtin_cpu_supports("avx2") &&
      __builtin_cpu_supports("fma")) {
    return Tier::kAvx2;
  }
#endif
  return Tier::kScalar;
}

}  // namespace

bool CompiledWithSimd() {
#if QDM_SIMD_HAVE_AVX2
  return true;
#else
  return false;
#endif
}

Tier DetectedTier() {
  static const Tier tier = DetectTier();
  return tier;
}

const char* TierName(Tier tier) {
  switch (tier) {
    case Tier::kScalar:
      return "scalar";
    case Tier::kAvx2:
      return "avx2";
  }
  return "unknown";
}

void Apply1QRunScalar(Complex* lo, Complex* hi, uint64_t n, Complex u00,
                      Complex u01, Complex u10, Complex u11) {
  for (uint64_t k = 0; k < n; ++k) {
    const Complex a0 = lo[k];
    const Complex a1 = hi[k];
    lo[k] = u00 * a0 + u01 * a1;
    hi[k] = u10 * a0 + u11 * a1;
  }
}

void Apply1QPairsRunScalar(Complex* amp, uint64_t n, Complex u00, Complex u01,
                           Complex u10, Complex u11) {
  for (uint64_t k = 0; k < n; ++k) {
    const Complex a0 = amp[2 * k];
    const Complex a1 = amp[2 * k + 1];
    amp[2 * k] = u00 * a0 + u01 * a1;
    amp[2 * k + 1] = u10 * a0 + u11 * a1;
  }
}

void DiagonalPhaseRunScalar(Complex* amp, const double* phases, double scale,
                            uint64_t n) {
  for (uint64_t z = 0; z < n; ++z) {
    amp[z] *= std::polar(1.0, scale * phases[z]);
  }
}

void SwapRunScalar(Complex* x, Complex* y, uint64_t n) {
  for (uint64_t k = 0; k < n; ++k) std::swap(x[k], y[k]);
}

#if QDM_SIMD_HAVE_AVX2

namespace {

// u * a over two interleaved complex lanes a = [ar0 ai0 ar1 ai1], with the
// coefficient u pre-split into ur = [u.re x4] and ui = [u.im x4]:
//   even lanes  u.re*a.re - u.im*a.im
//   odd lanes   u.re*a.im + u.im*a.re
// via one in-lane re/im swap and ADDSUBPD — the exact multiply / subtract /
// add sequence (and therefore rounding) of the scalar std::complex product,
// two pairs at a time. Deliberately NOT fused into FMA: vfmadd skips the
// intermediate rounding and would break bit-identity with the scalar
// reference kernels.
__attribute__((target("avx2"))) inline __m256d ComplexMul(__m256d ur,
                                                          __m256d ui,
                                                          __m256d a) {
  const __m256d a_swap = _mm256_permute_pd(a, 0x5);
  return _mm256_addsub_pd(_mm256_mul_pd(ur, a), _mm256_mul_pd(ui, a_swap));
}

}  // namespace

__attribute__((target("avx2"))) void Apply1QRunAvx2(Complex* lo, Complex* hi,
                                                    uint64_t n, Complex u00,
                                                    Complex u01, Complex u10,
                                                    Complex u11) {
  double* lod = reinterpret_cast<double*>(lo);
  double* hid = reinterpret_cast<double*>(hi);
  const __m256d u00r = _mm256_set1_pd(u00.real());
  const __m256d u00i = _mm256_set1_pd(u00.imag());
  const __m256d u01r = _mm256_set1_pd(u01.real());
  const __m256d u01i = _mm256_set1_pd(u01.imag());
  const __m256d u10r = _mm256_set1_pd(u10.real());
  const __m256d u10i = _mm256_set1_pd(u10.imag());
  const __m256d u11r = _mm256_set1_pd(u11.real());
  const __m256d u11i = _mm256_set1_pd(u11.imag());
  uint64_t k = 0;
  for (; k + 2 <= n; k += 2) {
    const __m256d a0 = _mm256_loadu_pd(lod + 2 * k);
    const __m256d a1 = _mm256_loadu_pd(hid + 2 * k);
    _mm256_storeu_pd(lod + 2 * k,
                     _mm256_add_pd(ComplexMul(u00r, u00i, a0),
                                   ComplexMul(u01r, u01i, a1)));
    _mm256_storeu_pd(hid + 2 * k,
                     _mm256_add_pd(ComplexMul(u10r, u10i, a0),
                                   ComplexMul(u11r, u11i, a1)));
  }
  if (k < n) {  // Odd run length: one trailing pair, reference arithmetic.
    const Complex a0 = lo[k];
    const Complex a1 = hi[k];
    lo[k] = u00 * a0 + u01 * a1;
    hi[k] = u10 * a0 + u11 * a1;
  }
}

__attribute__((target("avx2"))) void Apply1QPairsRunAvx2(Complex* amp,
                                                         uint64_t n,
                                                         Complex u00,
                                                         Complex u01,
                                                         Complex u10,
                                                         Complex u11) {
  // One full (a0, a1) pair per 256-bit register: lanes 0-1 produce the new
  // a0 with row (u00, u01), lanes 2-3 the new a1 with row (u10, u11).
  double* ad = reinterpret_cast<double*>(amp);
  const __m256d row_r =
      _mm256_setr_pd(u00.real(), u00.real(), u10.real(), u10.real());
  const __m256d row_i =
      _mm256_setr_pd(u00.imag(), u00.imag(), u10.imag(), u10.imag());
  const __m256d col_r =
      _mm256_setr_pd(u01.real(), u01.real(), u11.real(), u11.real());
  const __m256d col_i =
      _mm256_setr_pd(u01.imag(), u01.imag(), u11.imag(), u11.imag());
  for (uint64_t k = 0; k < n; ++k) {
    const __m256d a = _mm256_loadu_pd(ad + 4 * k);
    const __m256d a0_dup = _mm256_permute2f128_pd(a, a, 0x00);  // [a0, a0]
    const __m256d a1_dup = _mm256_permute2f128_pd(a, a, 0x11);  // [a1, a1]
    _mm256_storeu_pd(ad + 4 * k,
                     _mm256_add_pd(ComplexMul(row_r, row_i, a0_dup),
                                   ComplexMul(col_r, col_i, a1_dup)));
  }
}

__attribute__((target("avx2"))) void DiagonalPhaseRunAvx2(Complex* amp,
                                                          const double* phases,
                                                          double scale,
                                                          uint64_t n) {
  double* ad = reinterpret_cast<double*>(amp);
  uint64_t z = 0;
  for (; z + 2 <= n; z += 2) {
    // polar() stays scalar libm (bit-identity with the reference); only the
    // complex multiply runs on vector lanes.
    const Complex p0 = std::polar(1.0, scale * phases[z]);
    const Complex p1 = std::polar(1.0, scale * phases[z + 1]);
    const __m256d pr = _mm256_setr_pd(p0.real(), p0.real(), p1.real(),
                                      p1.real());
    const __m256d pi = _mm256_setr_pd(p0.imag(), p0.imag(), p1.imag(),
                                      p1.imag());
    const __m256d a = _mm256_loadu_pd(ad + 2 * z);
    const __m256d a_swap = _mm256_permute_pd(a, 0x5);
    _mm256_storeu_pd(ad + 2 * z, _mm256_addsub_pd(_mm256_mul_pd(a, pr),
                                                  _mm256_mul_pd(a_swap, pi)));
  }
  if (z < n) amp[z] *= std::polar(1.0, scale * phases[z]);
}

__attribute__((target("avx2"))) void SwapRunAvx2(Complex* x, Complex* y,
                                                 uint64_t n) {
  double* xd = reinterpret_cast<double*>(x);
  double* yd = reinterpret_cast<double*>(y);
  uint64_t k = 0;
  for (; k + 2 <= n; k += 2) {
    const __m256d a = _mm256_loadu_pd(xd + 2 * k);
    const __m256d b = _mm256_loadu_pd(yd + 2 * k);
    _mm256_storeu_pd(xd + 2 * k, b);
    _mm256_storeu_pd(yd + 2 * k, a);
  }
  if (k < n) std::swap(x[k], y[k]);
}

#else  // !QDM_SIMD_HAVE_AVX2

// DetectedTier() never reports kAvx2 on these builds, so the *Avx2 symbols
// are unreachable at runtime; forwarding to the scalar reference keeps every
// caller link-clean without further #ifdefs.
void Apply1QRunAvx2(Complex* lo, Complex* hi, uint64_t n, Complex u00,
                    Complex u01, Complex u10, Complex u11) {
  Apply1QRunScalar(lo, hi, n, u00, u01, u10, u11);
}

void Apply1QPairsRunAvx2(Complex* amp, uint64_t n, Complex u00, Complex u01,
                         Complex u10, Complex u11) {
  Apply1QPairsRunScalar(amp, n, u00, u01, u10, u11);
}

void DiagonalPhaseRunAvx2(Complex* amp, const double* phases, double scale,
                          uint64_t n) {
  DiagonalPhaseRunScalar(amp, phases, scale, n);
}

void SwapRunAvx2(Complex* x, Complex* y, uint64_t n) {
  SwapRunScalar(x, y, n);
}

#endif  // QDM_SIMD_HAVE_AVX2

}  // namespace simd
}  // namespace sim
}  // namespace qdm
