#include "qdm/sim/pauli.h"

#include <cmath>

#include "qdm/circuit/gates.h"
#include "qdm/common/check.h"

namespace qdm {
namespace sim {

void ApplyPauliString(Statevector* sv, const std::string& paulis,
                      const std::vector<int>& qubits) {
  QDM_CHECK_EQ(paulis.size(), qubits.size());
  using circuit::GateKind;
  for (size_t k = 0; k < paulis.size(); ++k) {
    switch (paulis[k]) {
      case 'I':
        break;
      case 'X':
        sv->Apply1Q(circuit::SingleQubitMatrix(GateKind::kX, {}), qubits[k]);
        break;
      case 'Y':
        sv->Apply1Q(circuit::SingleQubitMatrix(GateKind::kY, {}), qubits[k]);
        break;
      case 'Z':
        sv->Apply1Q(circuit::SingleQubitMatrix(GateKind::kZ, {}), qubits[k]);
        break;
      default:
        QDM_CHECK(false) << "bad Pauli '" << paulis[k] << "'";
    }
  }
}

double PauliExpectation(const Statevector& sv, const std::string& paulis,
                        const std::vector<int>& qubits) {
  Statevector transformed = sv;
  ApplyPauliString(&transformed, paulis, qubits);
  return sv.InnerProduct(transformed).real();
}

int MeasurePauliString(Statevector* sv, const std::string& paulis,
                       const std::vector<int>& qubits, Rng* rng) {
  // P(+1) = || (I + P)/2 |psi> ||^2 = (1 + <P>) / 2.
  Statevector p_psi = *sv;
  ApplyPauliString(&p_psi, paulis, qubits);
  const double expectation = sv->InnerProduct(p_psi).real();
  const double p_plus = std::min(1.0, std::max(0.0, (1.0 + expectation) / 2.0));

  const int outcome = rng->Bernoulli(p_plus) ? +1 : -1;
  auto& amps = sv->mutable_amplitudes();
  const auto& pamps = p_psi.amplitudes();
  for (size_t z = 0; z < amps.size(); ++z) {
    amps[z] = 0.5 * (amps[z] + static_cast<double>(outcome) * pamps[z]);
  }
  sv->Normalize();
  return outcome;
}

}  // namespace sim
}  // namespace qdm
