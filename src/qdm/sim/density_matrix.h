#ifndef QDM_SIM_DENSITY_MATRIX_H_
#define QDM_SIM_DENSITY_MATRIX_H_

#include <vector>

#include "qdm/linalg/matrix.h"
#include "qdm/sim/statevector.h"

namespace qdm {
namespace sim {

/// Exact density-matrix representation for SMALL systems (<= ~8 qubits).
/// Serves as the reference semantics against which the trajectory simulator
/// and the qnet Werner-state fidelity algebra are validated.
class DensityMatrix {
 public:
  /// Maximally-mixed-free constructor: rho = |0..0><0..0|.
  explicit DensityMatrix(int num_qubits);

  static DensityMatrix FromStatevector(const Statevector& sv);

  /// Two-qubit Werner state: F |Phi+><Phi+| + (1-F)/3 (I - |Phi+><Phi+|).
  /// `fidelity` is the overlap with the Bell state Phi+ = (|00>+|11>)/sqrt(2).
  static DensityMatrix WernerState(double fidelity);

  int num_qubits() const { return num_qubits_; }
  size_t dimension() const { return rho_.rows(); }
  const linalg::Matrix& matrix() const { return rho_; }

  /// rho -> U rho U^dagger with a full-dimension unitary.
  void ApplyUnitary(const linalg::Matrix& u);

  /// rho -> sum_k K rho K^dagger with full-dimension Kraus operators.
  void ApplyKraus(const std::vector<linalg::Matrix>& kraus);

  /// Applies a single-qubit channel (2x2 Kraus operators) to qubit q.
  void ApplyKraus1Q(const std::vector<linalg::Matrix>& kraus, int q);

  /// Applies a single-qubit unitary to qubit q.
  void ApplyUnitary1Q(const linalg::Matrix& u, int q);

  /// <psi| rho |psi>.
  double FidelityWithPure(const Statevector& psi) const;

  /// Tr(rho^2); 1 for pure states.
  double Purity() const;

  /// Traces out the qubits NOT listed in `keep` (keep is sorted ascending);
  /// remaining qubits are re-indexed in the order given.
  DensityMatrix PartialTrace(const std::vector<int>& keep) const;

  /// Probability that qubit q measures 1.
  double ProbabilityOfOne(int q) const;

 private:
  DensityMatrix(int num_qubits, linalg::Matrix rho)
      : num_qubits_(num_qubits), rho_(std::move(rho)) {}

  /// Embeds a 2x2 operator on qubit q into the full dimension.
  linalg::Matrix Embed1Q(const linalg::Matrix& op, int q) const;

  int num_qubits_;
  linalg::Matrix rho_;
};

}  // namespace sim
}  // namespace qdm

#endif  // QDM_SIM_DENSITY_MATRIX_H_
