#ifndef QDM_SIM_PAULI_H_
#define QDM_SIM_PAULI_H_

#include <string>
#include <vector>

#include "qdm/common/rng.h"
#include "qdm/sim/statevector.h"

namespace qdm {
namespace sim {

/// Applies the Pauli string to the state: `paulis[k]` (one of "IXYZ") acts on
/// `qubits[k]`.
void ApplyPauliString(Statevector* sv, const std::string& paulis,
                      const std::vector<int>& qubits);

/// <psi| P |psi> for the Pauli string (always real).
double PauliExpectation(const Statevector& sv, const std::string& paulis,
                        const std::vector<int>& qubits);

/// Projective measurement of the +-1-valued Pauli observable: samples an
/// eigenvalue, collapses onto the corresponding eigenspace with
/// P_+- = (I +- P)/2, and returns +1 or -1. Sequential measurements of
/// commuting strings (e.g. a magic-square row) are exactly the joint
/// measurement.
int MeasurePauliString(Statevector* sv, const std::string& paulis,
                       const std::vector<int>& qubits, Rng* rng);

}  // namespace sim
}  // namespace qdm

#endif  // QDM_SIM_PAULI_H_
