#include "qdm/sim/density_matrix.h"

#include <algorithm>
#include <cmath>

#include "qdm/common/check.h"
#include "qdm/common/thread_pool.h"

namespace qdm {
namespace sim {

using linalg::Matrix;

DensityMatrix::DensityMatrix(int num_qubits)
    : num_qubits_(num_qubits),
      rho_(size_t{1} << num_qubits, size_t{1} << num_qubits) {
  QDM_CHECK(num_qubits > 0 && num_qubits <= 10)
      << "DensityMatrix is intended for small systems";
  rho_(0, 0) = Complex(1, 0);
}

DensityMatrix DensityMatrix::FromStatevector(const Statevector& sv) {
  const size_t dim = sv.dimension();
  Matrix rho(dim, dim);
  // The O(dim^2) outer product honors the state's execution config (rows are
  // independent, so the parallel fill is bit-identical to the serial one);
  // dim^2 is the work-item count compared against the serial cutoff, and the
  // row range is chunked so concurrency never exceeds the resolved thread
  // count (mirroring the gate kernels, not the full shared-pool width).
  const auto fill_rows = [&](size_t row_begin, size_t row_end) {
    for (size_t i = row_begin; i < row_end; ++i) {
      for (size_t j = 0; j < dim; ++j) {
        rho(i, j) = sv.amplitude(i) * std::conj(sv.amplitude(j));
      }
    }
  };
  const size_t threads = static_cast<size_t>(sv.ResolvedNumThreads());
  if (threads > 1 && dim * dim >= sv.ResolvedSerialCutoff()) {
    const size_t chunks = std::min(threads, dim);
    const size_t chunk_size = (dim + chunks - 1) / chunks;
    ThreadPool::Shared().ForEach(static_cast<int>(chunks), [&](int c) {
      const size_t begin = chunk_size * static_cast<size_t>(c);
      fill_rows(begin, std::min(begin + chunk_size, dim));
    });
  } else {
    fill_rows(0, dim);
  }
  return DensityMatrix(sv.num_qubits(), std::move(rho));
}

DensityMatrix DensityMatrix::WernerState(double fidelity) {
  QDM_CHECK(fidelity >= 0.0 && fidelity <= 1.0);
  // |Phi+> = (|00> + |11>)/sqrt(2) over indices {0, 3}.
  Matrix phi(4, 4);
  phi(0, 0) = phi(0, 3) = phi(3, 0) = phi(3, 3) = Complex(0.5, 0);
  Matrix rest = Matrix::Identity(4) - phi;
  Matrix rho = phi * Complex(fidelity, 0) +
               rest * Complex((1.0 - fidelity) / 3.0, 0);
  return DensityMatrix(2, std::move(rho));
}

void DensityMatrix::ApplyUnitary(const Matrix& u) {
  QDM_CHECK_EQ(u.rows(), rho_.rows());
  rho_ = u * rho_ * u.Adjoint();
}

void DensityMatrix::ApplyKraus(const std::vector<Matrix>& kraus) {
  QDM_CHECK(!kraus.empty());
  Matrix out(rho_.rows(), rho_.cols());
  for (const Matrix& k : kraus) {
    QDM_CHECK_EQ(k.rows(), rho_.rows());
    out = out + k * rho_ * k.Adjoint();
  }
  rho_ = std::move(out);
}

Matrix DensityMatrix::Embed1Q(const Matrix& op, int q) const {
  QDM_CHECK(op.rows() == 2 && op.cols() == 2);
  QDM_CHECK(q >= 0 && q < num_qubits_);
  // Kron(a, b): `a` indexes the more-significant bits, so qubit q (bit q of
  // the index) sits at Kron position (num_qubits - 1 - q) from the left.
  Matrix full = Matrix::Identity(1);
  for (int pos = num_qubits_ - 1; pos >= 0; --pos) {
    full = linalg::Kron(full, pos == q ? op : Matrix::Identity(2));
  }
  return full;
}

void DensityMatrix::ApplyKraus1Q(const std::vector<Matrix>& kraus, int q) {
  std::vector<Matrix> embedded;
  embedded.reserve(kraus.size());
  for (const Matrix& k : kraus) embedded.push_back(Embed1Q(k, q));
  ApplyKraus(embedded);
}

void DensityMatrix::ApplyUnitary1Q(const Matrix& u, int q) {
  ApplyUnitary(Embed1Q(u, q));
}

double DensityMatrix::FidelityWithPure(const Statevector& psi) const {
  QDM_CHECK_EQ(psi.dimension(), rho_.rows());
  // <psi|rho|psi>
  Complex f(0, 0);
  for (size_t i = 0; i < rho_.rows(); ++i) {
    for (size_t j = 0; j < rho_.cols(); ++j) {
      f += std::conj(psi.amplitude(i)) * rho_(i, j) * psi.amplitude(j);
    }
  }
  return f.real();
}

double DensityMatrix::Purity() const { return (rho_ * rho_).Trace().real(); }

DensityMatrix DensityMatrix::PartialTrace(const std::vector<int>& keep) const {
  QDM_CHECK(!keep.empty());
  for (size_t i = 0; i + 1 < keep.size(); ++i) {
    QDM_CHECK_LT(keep[i], keep[i + 1]);
  }
  const int k = static_cast<int>(keep.size());
  const size_t out_dim = size_t{1} << k;
  Matrix out(out_dim, out_dim);

  std::vector<int> traced;
  for (int q = 0; q < num_qubits_; ++q) {
    bool kept = false;
    for (int kq : keep) kept |= (kq == q);
    if (!kept) traced.push_back(q);
  }
  const size_t traced_dim = size_t{1} << traced.size();

  auto compose_index = [&](size_t keep_bits, size_t traced_bits) {
    uint64_t z = 0;
    for (int i = 0; i < k; ++i) {
      if ((keep_bits >> i) & 1) z |= uint64_t{1} << keep[i];
    }
    for (size_t i = 0; i < traced.size(); ++i) {
      if ((traced_bits >> i) & 1) z |= uint64_t{1} << traced[i];
    }
    return z;
  };

  for (size_t a = 0; a < out_dim; ++a) {
    for (size_t b = 0; b < out_dim; ++b) {
      Complex sum(0, 0);
      for (size_t t = 0; t < traced_dim; ++t) {
        sum += rho_(compose_index(a, t), compose_index(b, t));
      }
      out(a, b) = sum;
    }
  }
  return DensityMatrix(k, std::move(out));
}

double DensityMatrix::ProbabilityOfOne(int q) const {
  QDM_CHECK(q >= 0 && q < num_qubits_);
  const uint64_t bit = uint64_t{1} << q;
  double p = 0.0;
  for (size_t z = 0; z < rho_.rows(); ++z) {
    if (z & bit) p += rho_(z, z).real();
  }
  return p;
}

}  // namespace sim
}  // namespace qdm
