#ifndef QDM_COMMON_STRINGS_H_
#define QDM_COMMON_STRINGS_H_

#include <string>
#include <vector>

namespace qdm {

/// printf-style formatting into a std::string.
/// (libstdc++ 12 does not ship <format>, so the toolkit provides this shim.)
std::string StrFormat(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

/// Joins `parts` with `sep` ("a", "b" -> "a,b").
std::string StrJoin(const std::vector<std::string>& parts,
                    const std::string& sep);

/// Splits `text` at every occurrence of `sep`; keeps empty fields.
std::vector<std::string> StrSplit(const std::string& text, char sep);

/// Removes leading/trailing ASCII whitespace.
std::string StrTrim(const std::string& text);

/// True if `text` starts with `prefix`.
bool StartsWith(const std::string& text, const std::string& prefix);

/// ASCII lower-casing.
std::string ToLower(const std::string& text);

}  // namespace qdm

#endif  // QDM_COMMON_STRINGS_H_
