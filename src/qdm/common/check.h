#ifndef QDM_COMMON_CHECK_H_
#define QDM_COMMON_CHECK_H_

#include <cstdlib>
#include <iostream>
#include <sstream>

namespace qdm {
namespace internal_check {

/// Accumulates a failure message and aborts the process when destroyed.
/// Used only via the QDM_CHECK macros below; invariant violations are
/// programming errors, not recoverable conditions (see Status for those).
class CheckFailure {
 public:
  CheckFailure(const char* file, int line, const char* condition) {
    stream_ << "QDM_CHECK failed at " << file << ":" << line << ": "
            << condition;
  }
  [[noreturn]] ~CheckFailure() {
    std::cerr << stream_.str() << std::endl;
    std::abort();
  }

  template <typename T>
  CheckFailure& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  std::ostringstream stream_;
};

/// Swallows streamed operands of a disabled check at zero cost.
struct NullStream {
  template <typename T>
  NullStream& operator<<(const T&) {
    return *this;
  }
};

}  // namespace internal_check
}  // namespace qdm

/// Aborts with a diagnostic if `condition` is false. Additional context can
/// be streamed: `QDM_CHECK(i < n) << "i=" << i;`
#define QDM_CHECK(condition)                                              \
  if (condition) {                                                        \
  } else /* NOLINT */                                                     \
    ::qdm::internal_check::CheckFailure(__FILE__, __LINE__, #condition)

#define QDM_CHECK_EQ(a, b) QDM_CHECK((a) == (b))
#define QDM_CHECK_NE(a, b) QDM_CHECK((a) != (b))
#define QDM_CHECK_LT(a, b) QDM_CHECK((a) < (b))
#define QDM_CHECK_LE(a, b) QDM_CHECK((a) <= (b))
#define QDM_CHECK_GT(a, b) QDM_CHECK((a) > (b))
#define QDM_CHECK_GE(a, b) QDM_CHECK((a) >= (b))

#ifdef NDEBUG
#define QDM_DCHECK(condition) \
  if (true) {                 \
  } else /* NOLINT */         \
    ::qdm::internal_check::NullStream()
#else
#define QDM_DCHECK(condition) QDM_CHECK(condition)
#endif

#endif  // QDM_COMMON_CHECK_H_
