#include "qdm/common/strings.h"

#include <cstdarg>
#include <cstdio>
#include <cctype>

namespace qdm {

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  int size = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  if (size < 0) {
    va_end(args_copy);
    return "";
  }
  std::string result(static_cast<size_t>(size), '\0');
  std::vsnprintf(result.data(), result.size() + 1, fmt, args_copy);
  va_end(args_copy);
  return result;
}

std::string StrJoin(const std::vector<std::string>& parts,
                    const std::string& sep) {
  std::string result;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) result += sep;
    result += parts[i];
  }
  return result;
}

std::vector<std::string> StrSplit(const std::string& text, char sep) {
  std::vector<std::string> parts;
  std::string current;
  for (char c : text) {
    if (c == sep) {
      parts.push_back(current);
      current.clear();
    } else {
      current.push_back(c);
    }
  }
  parts.push_back(current);
  return parts;
}

std::string StrTrim(const std::string& text) {
  size_t begin = 0;
  size_t end = text.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(text[begin]))) {
    ++begin;
  }
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(text[end - 1]))) {
    --end;
  }
  return text.substr(begin, end - begin);
}

bool StartsWith(const std::string& text, const std::string& prefix) {
  return text.size() >= prefix.size() &&
         text.compare(0, prefix.size(), prefix) == 0;
}

std::string ToLower(const std::string& text) {
  std::string result = text;
  for (char& c : result) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return result;
}

}  // namespace qdm
