#include "qdm/common/table_printer.h"

#include <algorithm>

#include "qdm/common/check.h"

namespace qdm {

TablePrinter::TablePrinter(std::vector<std::string> header)
    : header_(std::move(header)) {
  QDM_CHECK(!header_.empty());
}

void TablePrinter::AddRow(std::vector<std::string> row) {
  QDM_CHECK_EQ(row.size(), header_.size())
      << "row width " << row.size() << " != header width " << header_.size();
  rows_.push_back(std::move(row));
}

std::string TablePrinter::ToString() const {
  std::vector<size_t> widths(header_.size());
  for (size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  auto render_row = [&](const std::vector<std::string>& row) {
    std::string line;
    for (size_t c = 0; c < row.size(); ++c) {
      line += row[c];
      line.append(widths[c] - row[c].size(), ' ');
      if (c + 1 < row.size()) line += "  ";
    }
    line += '\n';
    return line;
  };

  std::string out = render_row(header_);
  size_t total = 0;
  for (size_t c = 0; c < widths.size(); ++c) {
    total += widths[c] + (c + 1 < widths.size() ? 2 : 0);
  }
  out.append(total, '-');
  out += '\n';
  for (const auto& row : rows_) out += render_row(row);
  return out;
}

}  // namespace qdm
