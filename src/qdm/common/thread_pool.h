#ifndef QDM_COMMON_THREAD_POOL_H_
#define QDM_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace qdm {

/// Fixed-size worker pool for fanning independent tasks out across threads.
/// The batching layer (anneal::SolveBatchParallel) uses it to run many QUBO
/// instances concurrently; it is deliberately minimal — submit, wait, reuse —
/// so future fan-out seams (multi-backend racing, embedded-solver sweeps) can
/// share it without inheriting scheduler policy.
///
/// Tasks must not throw (the toolkit is exception-free; failures travel as
/// Status values captured by the task itself). Submitting from inside a task
/// is allowed; destruction drains tasks already submitted.
class ThreadPool {
 public:
  /// Spawns `num_threads` workers; `num_threads <= 0` means
  /// DefaultNumThreads().
  explicit ThreadPool(int num_threads);

  /// Joins all workers after draining the queue.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_threads() const { return static_cast<int>(workers_.size()); }

  /// Enqueues `task` for execution on some worker thread.
  void Submit(std::function<void()> task);

  /// Blocks until every task submitted so far has finished. The pool stays
  /// usable afterwards (Submit/Wait cycles can repeat).
  void Wait();

  /// Worker count used for `num_threads <= 0`: the hardware concurrency,
  /// never less than 1.
  static int DefaultNumThreads();

  /// Process-wide pool shared by data-parallel kernels (the parallel
  /// statevector gate kernels dispatch their chunks here, so per-gate
  /// dispatch never spawns threads). Lazily created with
  /// DefaultNumThreads() workers and intentionally never destroyed, so it
  /// stays usable from any shutdown context.
  static ThreadPool& Shared();

  /// Runs body(i) for every i in [0, n) using this pool's workers AND the
  /// calling thread, returning when all n iterations are done. Because the
  /// caller participates in draining the shared index counter, the call
  /// makes progress even when every worker is busy — nested use from inside
  /// pool tasks cannot deadlock (worst case the caller runs all n
  /// iterations itself). `body` must be safe to call concurrently for
  /// different i and — like every task (see class comment) — must not
  /// throw: an exception escaping a worker terminates the process, and one
  /// escaping the caller's own drain would unwind past helpers still
  /// referencing the call state. Iteration-to-thread assignment is dynamic,
  /// so callers needing determinism must make body(i) independent of
  /// execution order.
  void ForEach(int n, const std::function<void(int)>& body);

  /// One-shot data parallelism: runs body(i) for every i in [0, n) across a
  /// transient pool of `num_threads` workers (dynamic index scheduling) and
  /// returns when all iterations are done. `body` must be safe to call
  /// concurrently from different threads for different i.
  static void ParallelFor(int num_threads, int n,
                          const std::function<void(int)>& body);

  /// ParallelFor variant that also hands body the stable id of the worker
  /// running it: body(worker, i) with worker in [0, min(num_threads, n)).
  /// Each worker drains indices off the shared counter, so all iterations a
  /// given worker runs see the same `worker` value — the seam that lets
  /// callers reuse one expensive per-worker resource (e.g. a solver backend)
  /// across every index that worker picks up, instead of recreating it per
  /// index. Which indices land on which worker is still dynamic, so such
  /// resources must not make body's result depend on the pairing.
  static void ParallelForWorkers(
      int num_threads, int n,
      const std::function<void(int worker, int i)>& body);

 private:
  void WorkerLoop();

  std::mutex mutex_;
  std::condition_variable work_available_;
  std::condition_variable all_done_;
  std::deque<std::function<void()>> queue_;
  int in_flight_ = 0;  // Queued + currently running tasks.
  bool shutdown_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace qdm

#endif  // QDM_COMMON_THREAD_POOL_H_
