#ifndef QDM_COMMON_RNG_H_
#define QDM_COMMON_RNG_H_

#include <cstdint>
#include <random>
#include <vector>

#include "qdm/common/check.h"

namespace qdm {

/// Deterministic pseudo-random number generator used throughout the toolkit.
/// All stochastic components (annealers, shot sampling, workload generators,
/// network simulation) take an explicit Rng so that experiments are
/// reproducible from a seed.
class Rng {
 public:
  /// Seed used when none is given (and the zero-means-default mapping of
  /// anneal::SolverOptions.seed / per-shot seed derivation resolve to it).
  static constexpr uint64_t kDefaultSeed = 0x9E3779B97F4A7C15ull;

  explicit Rng(uint64_t seed = kDefaultSeed) : engine_(seed) {}

  /// Uniform double in [0, 1).
  double Uniform() { return unit_(engine_); }

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi) { return lo + (hi - lo) * Uniform(); }

  /// Uniform integer in [lo, hi] (inclusive).
  int64_t UniformInt(int64_t lo, int64_t hi) {
    QDM_CHECK_LE(lo, hi);
    return std::uniform_int_distribution<int64_t>(lo, hi)(engine_);
  }

  /// Bernoulli trial with success probability p.
  bool Bernoulli(double p) { return Uniform() < p; }

  /// Standard normal sample.
  double Gaussian() { return normal_(engine_); }

  /// Gaussian with the given mean and standard deviation.
  double Gaussian(double mean, double stddev) {
    return mean + stddev * Gaussian();
  }

  /// Exponential sample with the given rate (mean 1/rate).
  double Exponential(double rate) {
    QDM_CHECK_GT(rate, 0.0);
    return std::exponential_distribution<double>(rate)(engine_);
  }

  /// Samples an index in [0, weights.size()) proportionally to weights.
  size_t Categorical(const std::vector<double>& weights);

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* items) {
    for (size_t i = items->size(); i > 1; --i) {
      size_t j =
          static_cast<size_t>(UniformInt(0, static_cast<int64_t>(i) - 1));
      std::swap((*items)[i - 1], (*items)[j]);
    }
  }

  /// Underlying engine, for std distributions not wrapped here.
  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
  std::uniform_real_distribution<double> unit_{0.0, 1.0};
  std::normal_distribution<double> normal_{0.0, 1.0};
};

}  // namespace qdm

#endif  // QDM_COMMON_RNG_H_
