#ifndef QDM_COMMON_TABLE_PRINTER_H_
#define QDM_COMMON_TABLE_PRINTER_H_

#include <string>
#include <vector>

namespace qdm {

/// Renders aligned, monospace report tables. Every benchmark binary uses this
/// to print the paper-style table/figure series it regenerates.
///
///   TablePrinter t({"N", "classical", "quantum"});
///   t.AddRow({"1024", "512.0", "25"});
///   std::cout << t.ToString();
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> header);

  void AddRow(std::vector<std::string> row);

  /// Renders the table with a header separator line.
  std::string ToString() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace qdm

#endif  // QDM_COMMON_TABLE_PRINTER_H_
