#include "qdm/common/status.h"

namespace qdm {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kUnimplemented:
      return "Unimplemented";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kCancelled:
      return "Cancelled";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
  }
  return "Unknown";
}

bool StatusCodeFromString(const std::string& name, StatusCode* code) {
  // The enumerators are contiguous from kOk to kDeadlineExceeded.
  const int last = static_cast<int>(StatusCode::kDeadlineExceeded);
  for (int i = 0; i <= last; ++i) {
    const StatusCode candidate = static_cast<StatusCode>(i);
    if (name == StatusCodeToString(candidate)) {
      *code = candidate;
      return true;
    }
  }
  return false;
}

int StatusCodeToHttpStatus(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return 200;
    case StatusCode::kInvalidArgument:
    case StatusCode::kOutOfRange:
      return 400;
    case StatusCode::kNotFound:
      return 404;
    case StatusCode::kAlreadyExists:
    case StatusCode::kFailedPrecondition:
    case StatusCode::kCancelled:
      return 409;
    case StatusCode::kUnimplemented:
      return 501;
    case StatusCode::kResourceExhausted:
      return 429;
    case StatusCode::kInternal:
      return 500;
    case StatusCode::kDeadlineExceeded:
      return 504;
  }
  return 500;
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string result = StatusCodeToString(code_);
  result += ": ";
  result += message_;
  return result;
}

std::ostream& operator<<(std::ostream& os, const Status& status) {
  return os << status.ToString();
}

}  // namespace qdm
