#ifndef QDM_COMMON_STATUS_H_
#define QDM_COMMON_STATUS_H_

#include <ostream>
#include <string>
#include <utility>
#include <variant>

#include "qdm/common/check.h"

namespace qdm {

/// Canonical error space for the qdm library. Mirrors the subset of the
/// absl/Arrow status codes that the toolkit actually needs.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kOutOfRange,
  kNotFound,
  kAlreadyExists,
  kFailedPrecondition,
  kUnimplemented,
  kResourceExhausted,
  kInternal,
  /// The operation was cancelled, typically by the caller (async service
  /// jobs resolve with this code after SolverService::Cancel).
  kCancelled,
  /// The operation's deadline passed before it produced a usable result
  /// (async service jobs with a SubmitOptions deadline resolve with this
  /// code whether the deadline expired while queued or while running).
  kDeadlineExceeded,
};

/// Returns a stable human-readable name for a status code ("InvalidArgument").
const char* StatusCodeToString(StatusCode code);

/// Inverse of StatusCodeToString: resolves a stable code name back into the
/// enumerator (the wire protocol in qdm/net carries codes by name, so a
/// remote Status round-trips exactly). Returns false for unknown names and
/// leaves `code` untouched.
bool StatusCodeFromString(const std::string& name, StatusCode* code);

/// Canonical HTTP response code for each StatusCode — the one mapping every
/// network front end of the toolkit uses (qdm/net), kept next to the
/// taxonomy so the two cannot drift:
///
///   kOk                 -> 200    kUnimplemented      -> 501
///   kInvalidArgument    -> 400    kResourceExhausted  -> 429
///   kOutOfRange         -> 400    kInternal           -> 500
///   kNotFound           -> 404    kCancelled          -> 409
///   kAlreadyExists      -> 409    kDeadlineExceeded   -> 504
///   kFailedPrecondition -> 409
///
/// The HTTP code is presentation only: response bodies carry the exact
/// (code name, message) pair, which is the authoritative Status.
int StatusCodeToHttpStatus(StatusCode code);

/// Result of an operation that can fail. qdm does not use C++ exceptions
/// (per the project style guide); fallible operations return `Status` or
/// `Result<T>` instead. A default-constructed `Status` is OK.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

std::ostream& operator<<(std::ostream& os, const Status& status);

/// Either a value of type `T` or an error `Status`. Accessing the value of an
/// errored result is a programming error and aborts (QDM_CHECK).
template <typename T>
class Result {
 public:
  /// Implicit construction from a value or from an error status keeps call
  /// sites terse: `return value;` / `return Status::InvalidArgument(...)`.
  Result(T value) : data_(std::move(value)) {}        // NOLINT
  Result(Status status) : data_(std::move(status)) {  // NOLINT
    QDM_CHECK(!std::get<Status>(data_).ok())
        << "Result<T> constructed from OK status without a value";
  }

  bool ok() const { return std::holds_alternative<T>(data_); }

  const Status& status() const {
    static const Status kOk;
    return ok() ? kOk : std::get<Status>(data_);
  }

  const T& value() const& {
    QDM_CHECK(ok()) << "Result::value() on error: " << status().ToString();
    return std::get<T>(data_);
  }
  T& value() & {
    QDM_CHECK(ok()) << "Result::value() on error: " << status().ToString();
    return std::get<T>(data_);
  }
  T&& value() && {
    QDM_CHECK(ok()) << "Result::value() on error: " << status().ToString();
    return std::get<T>(std::move(data_));
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the contained value or `fallback` when errored.
  T value_or(T fallback) const {
    return ok() ? std::get<T>(data_) : std::move(fallback);
  }

 private:
  std::variant<T, Status> data_;
};

/// Evaluates `expr` (a Status expression) and returns it from the enclosing
/// function if it is not OK.
#define QDM_RETURN_IF_ERROR(expr)                  \
  do {                                             \
    ::qdm::Status qdm_status_ = (expr);            \
    if (!qdm_status_.ok()) return qdm_status_;     \
  } while (false)

/// Evaluates `rexpr` (a Result<T> expression); on error returns the status,
/// otherwise assigns the value to `lhs`.
#define QDM_ASSIGN_OR_RETURN(lhs, rexpr)                        \
  QDM_ASSIGN_OR_RETURN_IMPL_(QDM_CONCAT_(qdm_result_, __LINE__), lhs, rexpr)

#define QDM_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, rexpr) \
  auto tmp = (rexpr);                               \
  if (!tmp.ok()) return tmp.status();               \
  lhs = std::move(tmp).value()

#define QDM_CONCAT_INNER_(a, b) a##b
#define QDM_CONCAT_(a, b) QDM_CONCAT_INNER_(a, b)

}  // namespace qdm

#endif  // QDM_COMMON_STATUS_H_
