#include "qdm/common/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <utility>

#include "qdm/common/check.h"

namespace qdm {

ThreadPool::ThreadPool(int num_threads) {
  if (num_threads <= 0) num_threads = DefaultNumThreads();
  workers_.reserve(num_threads);
  for (int i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutdown_ = true;
  }
  work_available_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  QDM_CHECK(task != nullptr) << "ThreadPool::Submit given a null task";
  {
    std::lock_guard<std::mutex> lock(mutex_);
    // Submitting while the destructor drains (a running task re-submitting)
    // is fine: workers keep pulling until the queue is empty, so the new
    // task still runs before the join completes.
    queue_.push_back(std::move(task));
    ++in_flight_;
  }
  work_available_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mutex_);
  all_done_.wait(lock, [this] { return in_flight_ == 0; });
}

int ThreadPool::DefaultNumThreads() {
  return std::max(1, static_cast<int>(std::thread::hardware_concurrency()));
}

void ThreadPool::ParallelFor(int num_threads, int n,
                             const std::function<void(int)>& body) {
  if (n <= 0) return;
  ThreadPool pool(num_threads);
  // Dynamic scheduling: workers pull the next index off a shared counter, so
  // uneven per-index cost cannot stall a statically assigned stripe.
  std::atomic<int> next{0};
  const int tasks = std::min(pool.num_threads(), n);
  for (int t = 0; t < tasks; ++t) {
    pool.Submit([&next, n, &body] {
      for (int i = next.fetch_add(1); i < n; i = next.fetch_add(1)) body(i);
    });
  }
  pool.Wait();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_available_.wait(lock,
                           [this] { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) return;  // Shutdown with a drained queue.
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (--in_flight_ == 0) all_done_.notify_all();
    }
  }
}

}  // namespace qdm
