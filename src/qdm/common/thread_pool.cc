#include "qdm/common/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <memory>
#include <utility>

#include "qdm/common/check.h"

namespace qdm {

ThreadPool::ThreadPool(int num_threads) {
  if (num_threads <= 0) num_threads = DefaultNumThreads();
  workers_.reserve(num_threads);
  for (int i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutdown_ = true;
  }
  work_available_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  QDM_CHECK(task != nullptr) << "ThreadPool::Submit given a null task";
  {
    std::lock_guard<std::mutex> lock(mutex_);
    // Submitting while the destructor drains (a running task re-submitting)
    // is fine: workers keep pulling until the queue is empty, so the new
    // task still runs before the join completes.
    queue_.push_back(std::move(task));
    ++in_flight_;
  }
  work_available_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mutex_);
  all_done_.wait(lock, [this] { return in_flight_ == 0; });
}

int ThreadPool::DefaultNumThreads() {
  // Cached: hardware_concurrency() is a syscall on Linux, and this sits on
  // the per-gate config-resolution path of the statevector kernels.
  static const int num_threads =
      std::max(1, static_cast<int>(std::thread::hardware_concurrency()));
  return num_threads;
}

ThreadPool& ThreadPool::Shared() {
  // Deliberately leaked (never joined): see the header.
  static ThreadPool* pool = new ThreadPool(0);
  return *pool;
}

void ThreadPool::ForEach(int n, const std::function<void(int)>& body) {
  if (n <= 0) return;
  // Per-call completion state, shared with helper tasks so a helper that is
  // scheduled after the call already returned (all indices drained by the
  // caller or other workers) still finds valid memory and exits cleanly.
  struct CallState {
    CallState(int n, std::function<void(int)> body)
        : n(n), body(std::move(body)) {}
    const int n;
    const std::function<void(int)> body;
    std::atomic<int> next{0};
    std::atomic<int> done{0};
    std::mutex mutex;
    std::condition_variable all_done;
  };
  auto state = std::make_shared<CallState>(n, body);
  const auto drain = [](const std::shared_ptr<CallState>& s) {
    for (int i = s->next.fetch_add(1); i < s->n; i = s->next.fetch_add(1)) {
      s->body(i);
      if (s->done.fetch_add(1) + 1 == s->n) {
        // Lock before notifying so the waiter cannot miss the wakeup
        // between its predicate check and its wait.
        std::lock_guard<std::mutex> lock(s->mutex);
        s->all_done.notify_all();
      }
    }
  };
  const int helpers = std::min(num_threads(), n);
  for (int t = 0; t < helpers; ++t) {
    Submit([state, drain] { drain(state); });
  }
  drain(state);  // The caller participates: nested calls always progress.
  std::unique_lock<std::mutex> lock(state->mutex);
  state->all_done.wait(lock, [&] { return state->done.load() == n; });
}

void ThreadPool::ParallelFor(int num_threads, int n,
                             const std::function<void(int)>& body) {
  if (n <= 0) return;
  ThreadPool pool(num_threads);
  // Dynamic scheduling: workers pull the next index off a shared counter, so
  // uneven per-index cost cannot stall a statically assigned stripe.
  std::atomic<int> next{0};
  const int tasks = std::min(pool.num_threads(), n);
  for (int t = 0; t < tasks; ++t) {
    pool.Submit([&next, n, &body] {
      for (int i = next.fetch_add(1); i < n; i = next.fetch_add(1)) body(i);
    });
  }
  pool.Wait();
}

void ThreadPool::ParallelForWorkers(
    int num_threads, int n,
    const std::function<void(int worker, int i)>& body) {
  if (n <= 0) return;
  ThreadPool pool(num_threads);
  // Same dynamic scheduling as ParallelFor; the submitted task's loop index
  // within the pool is the worker id handed to body.
  std::atomic<int> next{0};
  const int tasks = std::min(pool.num_threads(), n);
  for (int t = 0; t < tasks; ++t) {
    pool.Submit([&next, n, &body, t] {
      for (int i = next.fetch_add(1); i < n; i = next.fetch_add(1)) {
        body(t, i);
      }
    });
  }
  pool.Wait();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_available_.wait(lock,
                           [this] { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) return;  // Shutdown with a drained queue.
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (--in_flight_ == 0) all_done_.notify_all();
    }
  }
}

}  // namespace qdm
