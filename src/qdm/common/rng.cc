#include "qdm/common/rng.h"

namespace qdm {

size_t Rng::Categorical(const std::vector<double>& weights) {
  QDM_CHECK(!weights.empty());
  double total = 0.0;
  for (double w : weights) {
    QDM_CHECK_GE(w, 0.0);
    total += w;
  }
  QDM_CHECK_GT(total, 0.0)
      << "Categorical() needs at least one positive weight";
  double r = Uniform() * total;
  double acc = 0.0;
  for (size_t i = 0; i < weights.size(); ++i) {
    acc += weights[i];
    if (r < acc) return i;
  }
  return weights.size() - 1;  // Guard against floating-point round-off.
}

}  // namespace qdm
