#include "qdm/qml/vqc_join_agent.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "qdm/circuit/circuit.h"
#include "qdm/common/check.h"
#include "qdm/sim/statevector.h"

namespace qdm {
namespace qml {

namespace {
constexpr double kNegInf = -std::numeric_limits<double>::infinity();
}  // namespace

VqcJoinOrderAgent::VqcJoinOrderAgent(const db::JoinGraph& graph,
                                     Options options, Rng* rng)
    : graph_(graph), options_(options), rng_(rng), n_(graph.num_relations()) {
  QDM_CHECK(rng != nullptr);
  QDM_CHECK_GE(n_, 2);
  QDM_CHECK_LE(n_, 12) << "VQC agent simulates one qubit per relation";
  parameters_.resize((options_.layers + 1) * n_);
  for (double& p : parameters_) p = rng_->Uniform(-0.1, 0.1);

  // Normalize rewards by the worst log-cardinality over ALL prefixes so a
  // single-step reward lies in [-1, 0].
  reward_scale_ = 1.0;
  for (uint32_t mask = 1; mask < (uint32_t{1} << n_); ++mask) {
    reward_scale_ = std::max(
        reward_scale_, std::log(graph_.SubsetCardinality(mask) + 2.0));
  }
}

double VqcJoinOrderAgent::QValue(uint32_t state_mask, int action,
                                 const std::vector<double>& params) const {
  circuit::Circuit c(n_);
  // Basis encoding of the state: joined relations get RY(pi).
  for (int q = 0; q < n_; ++q) {
    if (state_mask & (uint32_t{1} << q)) c.RY(q, M_PI);
  }
  int p = 0;
  for (int q = 0; q < n_; ++q) c.RY(q, params[p++]);
  for (int layer = 0; layer < options_.layers; ++layer) {
    for (int q = 0; q + 1 < n_; ++q) c.CZ(q, q + 1);
    for (int q = 0; q < n_; ++q) c.RY(q, params[p++]);
  }
  sim::Statevector sv = sim::RunCircuit(c);
  // <Z_action> = 1 - 2 P(action = 1), rescaled to the return range.
  const double z = 1.0 - 2.0 * sv.ProbabilityOfOne(action);
  return z / (1.0 - options_.gamma);
}

std::vector<double> VqcJoinOrderAgent::QValues(uint32_t state_mask) const {
  std::vector<double> q(n_, kNegInf);
  for (int a = 0; a < n_; ++a) {
    if (state_mask & (uint32_t{1} << a)) continue;
    q[a] = QValue(state_mask, a, parameters_);
  }
  return q;
}

double VqcJoinOrderAgent::StepReward(uint32_t state_mask, int relation) const {
  const uint32_t next = state_mask | (uint32_t{1} << relation);
  if (state_mask == 0) return 0.0;  // Picking the first relation is free.
  return -std::log(graph_.SubsetCardinality(next)) / reward_scale_;
}

std::vector<double> VqcJoinOrderAgent::ParameterShiftGradient(
    uint32_t state_mask, int action) const {
  std::vector<double> grad(parameters_.size(), 0.0);
  std::vector<double> shifted = parameters_;
  for (size_t k = 0; k < parameters_.size(); ++k) {
    shifted[k] = parameters_[k] + M_PI / 2;
    const double plus = QValue(state_mask, action, shifted);
    shifted[k] = parameters_[k] - M_PI / 2;
    const double minus = QValue(state_mask, action, shifted);
    shifted[k] = parameters_[k];
    grad[k] = (plus - minus) / 2.0;
  }
  return grad;
}

double VqcJoinOrderAgent::TrainEpisode(double epsilon) {
  uint32_t state = 0;
  double episode_cost = 0.0;
  std::vector<int> visited_order;
  for (int step = 0; step < n_; ++step) {
    // Choose an action epsilon-greedily among unjoined relations.
    std::vector<int> available;
    for (int a = 0; a < n_; ++a) {
      if (!(state & (uint32_t{1} << a))) available.push_back(a);
    }
    QDM_CHECK(!available.empty());
    int action;
    if (rng_->Bernoulli(epsilon)) {
      action = available[rng_->UniformInt(0, available.size() - 1)];
    } else {
      std::vector<double> q = QValues(state);
      action = available[0];
      for (int a : available) {
        if (q[a] > q[action]) action = a;
      }
    }

    const double reward = StepReward(state, action);
    const uint32_t next = state | (uint32_t{1} << action);
    visited_order.push_back(action);
    if (state != 0) {
      episode_cost += std::log(graph_.SubsetCardinality(next));
    }

    // One-step TD target.
    double target = reward;
    if (next != (uint32_t{1} << n_) - 1) {
      const std::vector<double> next_q = QValues(next);
      double best_next = kNegInf;
      for (double v : next_q) best_next = std::max(best_next, v);
      target += options_.gamma * best_next;
    }

    const double prediction = QValue(state, action, parameters_);
    const double td_error = prediction - target;
    const std::vector<double> grad = ParameterShiftGradient(state, action);
    for (size_t k = 0; k < parameters_.size(); ++k) {
      parameters_[k] -= options_.learning_rate * td_error * grad[k];
    }
    state = next;
  }
  if (episode_cost < best_visited_cost_) {
    best_visited_cost_ = episode_cost;
    best_visited_order_ = visited_order;
  }
  return episode_cost;
}

VqcJoinOrderAgent::TrainingStats VqcJoinOrderAgent::Train() {
  TrainingStats stats;
  const int episodes = options_.episodes;
  for (int e = 0; e < episodes; ++e) {
    // Linear epsilon decay to a small exploration floor.
    const double epsilon =
        options_.epsilon * (1.0 - static_cast<double>(e) / episodes) + 0.02;
    stats.episode_costs.push_back(TrainEpisode(epsilon));
  }
  const int window = std::max(1, episodes / 5);
  double initial = 0.0, final_sum = 0.0;
  for (int e = 0; e < window; ++e) initial += stats.episode_costs[e];
  for (int e = episodes - window; e < episodes; ++e) {
    final_sum += stats.episode_costs[e];
  }
  stats.initial_window_mean = initial / window;
  stats.final_window_mean = final_sum / window;
  return stats;
}

std::vector<int> VqcJoinOrderAgent::GreedyOrder() const {
  std::vector<int> order;
  uint32_t state = 0;
  for (int step = 0; step < n_; ++step) {
    std::vector<double> q = QValues(state);
    int best = -1;
    for (int a = 0; a < n_; ++a) {
      if (state & (uint32_t{1} << a)) continue;
      if (best == -1 || q[a] > q[best]) best = a;
    }
    order.push_back(best);
    state |= uint32_t{1} << best;
  }
  return order;
}

}  // namespace qml
}  // namespace qdm
