#ifndef QDM_QML_VQC_JOIN_AGENT_H_
#define QDM_QML_VQC_JOIN_AGENT_H_

#include <cstdint>
#include <vector>

#include "qdm/common/rng.h"
#include "qdm/db/join_graph.h"
#include "qdm/db/join_tree.h"

namespace qdm {
namespace qml {

/// Join ordering as reinforcement learning with a variational quantum
/// circuit value function, after Winker et al. [BiDEDE'23]:
///
///  * MDP: a state is the set of already-joined relations (left-deep
///    prefix); an action appends one unjoined relation; the reward is the
///    negative normalized log-cardinality of the new intermediate result.
///  * Q-function: an n-qubit VQC. The state enters as per-qubit RY basis
///    encodings (pi for joined relations); `layers` alternations of
///    entangling CZ chains and trainable RY rotations follow; Q(s, a) is the
///    rescaled <Z> expectation on qubit a.
///  * Training: epsilon-greedy episodes with one-step TD targets; gradients
///    via the exact parameter-shift rule (each RY parameter differentiated
///    with +-pi/2 shifts).
class VqcJoinOrderAgent {
 public:
  struct Options {
    int layers = 2;
    double gamma = 0.7;          // Discount.
    double epsilon = 0.25;       // Exploration rate (decays over training).
    double learning_rate = 0.08;
    int episodes = 150;
  };

  VqcJoinOrderAgent(const db::JoinGraph& graph, Options options, Rng* rng);

  int num_parameters() const { return static_cast<int>(parameters_.size()); }
  const std::vector<double>& parameters() const { return parameters_; }

  /// Q(s, a) for every relation a (joined relations get -infinity so argmax
  /// never picks them).
  std::vector<double> QValues(uint32_t state_mask) const;

  /// Plays one epsilon-greedy episode, updating parameters after each step.
  /// Returns the episode's total C_out-proxy cost (sum of log-cardinalities).
  double TrainEpisode(double epsilon);

  struct TrainingStats {
    std::vector<double> episode_costs;  // Learning curve.
    double initial_window_mean = 0.0;   // Mean cost of the first episodes.
    double final_window_mean = 0.0;     // Mean cost of the last episodes.
  };

  /// Runs Options::episodes episodes with linearly decaying epsilon.
  TrainingStats Train();

  /// The greedy (epsilon = 0) join order under the current Q-function.
  /// NOTE: TD training with a VQC is noisy (as Winker et al. observe); the
  /// practical plan an operator would deploy is BestVisitedOrder().
  std::vector<int> GreedyOrder() const;

  /// The lowest-cost order encountered across all training episodes.
  const std::vector<int>& BestVisitedOrder() const {
    return best_visited_order_;
  }
  double BestVisitedCost() const { return best_visited_cost_; }

  /// Exact parameter-shift gradient of Q(state, action) -- exposed for the
  /// gradient-correctness property test.
  std::vector<double> ParameterShiftGradient(uint32_t state_mask,
                                             int action) const;

 private:
  double QValue(uint32_t state_mask, int action,
                const std::vector<double>& params) const;
  /// Normalized step reward for appending `relation` to `state_mask`.
  double StepReward(uint32_t state_mask, int relation) const;

  const db::JoinGraph& graph_;
  Options options_;
  Rng* rng_;
  int n_;
  double reward_scale_;  // Normalizes log-cardinalities into ~[-1, 0].
  std::vector<double> parameters_;
  std::vector<int> best_visited_order_;
  double best_visited_cost_ = 1e300;
};

}  // namespace qml
}  // namespace qdm

#endif  // QDM_QML_VQC_JOIN_AGENT_H_
