#include <gtest/gtest.h>

#include "qdm/circuit/circuit.h"

namespace qdm {
namespace circuit {
namespace {

TEST(CircuitTest, BuilderChains) {
  Circuit c(2);
  c.H(0).CX(0, 1).RZ(1, 0.5);
  EXPECT_EQ(c.size(), 3u);
  EXPECT_EQ(c.gates()[0].kind, GateKind::kH);
  EXPECT_EQ(c.gates()[1].qubits, (std::vector<int>{0, 1}));
  EXPECT_DOUBLE_EQ(c.gates()[2].params[0], 0.5);
}

TEST(CircuitTest, GateAritiesEnforced) {
  EXPECT_EQ(GateArity(GateKind::kH), 1);
  EXPECT_EQ(GateArity(GateKind::kCX), 2);
  EXPECT_EQ(GateArity(GateKind::kCCX), 3);
  EXPECT_EQ(GateParamCount(GateKind::kU3), 3);
  EXPECT_EQ(GateParamCount(GateKind::kRZZ), 1);
}

TEST(CircuitTest, ComposeAppendsGates) {
  Circuit a(2), b(2);
  a.H(0);
  b.CX(0, 1).X(1);
  a.Compose(b);
  EXPECT_EQ(a.size(), 3u);
  EXPECT_EQ(a.gates()[2].kind, GateKind::kX);
}

TEST(CircuitTest, SymbolicParametersTracked) {
  Circuit c(2);
  c.SymbolicRY(0, 0).SymbolicRY(1, 1).CX(0, 1).SymbolicRZ(0, 2);
  EXPECT_EQ(c.num_parameters(), 3);

  Circuit bound = c.BindParameters({0.1, 0.2, 0.3});
  EXPECT_EQ(bound.num_parameters(), 0);
  EXPECT_DOUBLE_EQ(bound.gates()[0].params[0], 0.1);
  EXPECT_DOUBLE_EQ(bound.gates()[1].params[0], 0.2);
  EXPECT_DOUBLE_EQ(bound.gates()[3].params[0], 0.3);
}

TEST(CircuitTest, BindLeavesConcreteGatesAlone) {
  Circuit c(1);
  c.RY(0, 1.5).SymbolicRY(0, 0);
  Circuit bound = c.BindParameters({2.5});
  EXPECT_DOUBLE_EQ(bound.gates()[0].params[0], 1.5);
  EXPECT_DOUBLE_EQ(bound.gates()[1].params[0], 2.5);
}

TEST(CircuitTest, SharedParameterReusedAcrossGates) {
  Circuit c(2);
  c.SymbolicRX(0, 0).SymbolicRX(1, 0);  // Same angle on both qubits.
  EXPECT_EQ(c.num_parameters(), 1);
  Circuit bound = c.BindParameters({0.9});
  EXPECT_DOUBLE_EQ(bound.gates()[0].params[0], 0.9);
  EXPECT_DOUBLE_EQ(bound.gates()[1].params[0], 0.9);
}

TEST(CircuitTest, ToStringListsGates) {
  Circuit c(2);
  c.H(0).CX(0, 1).RZ(1, 0.25);
  std::string s = c.ToString();
  EXPECT_NE(s.find("h q[0]"), std::string::npos);
  EXPECT_NE(s.find("cx q[0],q[1]"), std::string::npos);
  EXPECT_NE(s.find("rz(0.25) q[1]"), std::string::npos);
}

TEST(CircuitTest, MultiQubitGateCount) {
  Circuit c(3);
  c.H(0).CX(0, 1).CCX(0, 1, 2).RZ(2, 0.1).Swap(0, 2);
  EXPECT_EQ(c.MultiQubitGateCount(), 3);
}

TEST(CircuitTest, GateNamesMatchQasm) {
  EXPECT_STREQ(GateName(GateKind::kCCX), "ccx");
  EXPECT_STREQ(GateName(GateKind::kSdg), "sdg");
  EXPECT_STREQ(GateName(GateKind::kCPhase), "cp");
}

TEST(CircuitDeathTest, RejectsOutOfRangeQubit) {
  Circuit c(2);
  EXPECT_DEATH(c.H(2), "out of range");
}

TEST(CircuitDeathTest, RejectsDuplicateOperands) {
  Circuit c(2);
  EXPECT_DEATH(c.CX(1, 1), "duplicate qubit");
}

}  // namespace
}  // namespace circuit
}  // namespace qdm
