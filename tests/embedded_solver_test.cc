// The registry-visible embedded backends ("embedded:<base>:<topology>"):
// default registrations, dynamic prefix resolution of arbitrary specs,
// error taxonomy, chain-break policies on seeded broken-chain fixtures, and
// bit-identical SolveBatchParallel dispatch across thread counts.

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "qdm/anneal/chimera.h"
#include "qdm/anneal/embedded_solver.h"
#include "qdm/anneal/embedding.h"
#include "qdm/anneal/solver.h"
#include "qdm/common/rng.h"

namespace qdm {
namespace anneal {
namespace {

/// 4-variable QUBO with the unique ground state x = (1, 1, 0, 0), energy -3.
Qubo KnownGroundStateQubo() {
  Qubo q(4);
  q.AddLinear(0, -2.0);
  q.AddLinear(1, -2.0);
  q.AddLinear(2, 1.0);
  q.AddLinear(3, 1.0);
  q.AddQuadratic(0, 1, 1.0);
  q.AddQuadratic(2, 3, 3.0);
  return q;
}

TEST(EmbeddedSolverTest, DefaultBackendsAreRegisteredForEveryFamily) {
  auto& registry = SolverRegistry::Global();
  for (const std::string name : {
           "embedded:simulated_annealing:chimera:4x4x4",
           "embedded:simulated_annealing:pegasus:6",
           "embedded:simulated_annealing:zephyr:4",
           "embedded:tabu_search:chimera:4x4x4",
           "embedded:parallel_tempering:chimera:4x4x4",
           "embedded:exact:chimera:1x1x4",
       }) {
    EXPECT_TRUE(registry.Contains(name)) << name;
    const auto names = registry.RegisteredNames();
    EXPECT_NE(std::find(names.begin(), names.end(), name), names.end())
        << name;
  }
}

TEST(EmbeddedSolverTest, ArbitrarySpecsResolveThroughThePrefixFactory) {
  auto& registry = SolverRegistry::Global();
  const std::string name = "embedded:simulated_annealing:chimera:2x2x4";
  // Not eagerly registered...
  const auto names = registry.RegisteredNames();
  EXPECT_EQ(std::find(names.begin(), names.end(), name), names.end());
  // ...but still resolvable, and it reports the name it was created under.
  EXPECT_TRUE(registry.Contains(name));
  auto solver = registry.Create(name);
  ASSERT_TRUE(solver.ok()) << solver.status();
  EXPECT_EQ((*solver)->name(), name);
  auto& embedded = static_cast<EmbeddedSolver&>(**solver);
  EXPECT_EQ(embedded.base_name(), "simulated_annealing");
  EXPECT_EQ(embedded.topology().name(), "chimera:2x2x4");
}

TEST(EmbeddedSolverTest, MalformedNamesAreRejectedWithClearErrors) {
  auto& registry = SolverRegistry::Global();
  // Unknown base solver.
  auto unknown_base = registry.Create("embedded:warp_drive:chimera:2x2x4");
  ASSERT_FALSE(unknown_base.ok());
  EXPECT_EQ(unknown_base.status().code(), StatusCode::kNotFound);
  EXPECT_NE(unknown_base.status().message().find("warp_drive"),
            std::string::npos);
  // Malformed topology spec.
  auto bad_spec = registry.Create("embedded:simulated_annealing:torus:9");
  ASSERT_FALSE(bad_spec.ok());
  EXPECT_EQ(bad_spec.status().code(), StatusCode::kInvalidArgument);
  // Missing pieces.
  for (const std::string name :
       {"embedded:", "embedded:simulated_annealing",
        "embedded:simulated_annealing:"}) {
    auto result = registry.Create(name);
    ASSERT_FALSE(result.ok()) << name;
    EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument) << name;
  }
  // Nesting is rejected rather than recursing.
  auto nested =
      registry.Create("embedded:embedded:simulated_annealing:chimera:2x2x4");
  ASSERT_FALSE(nested.ok());
  EXPECT_EQ(nested.status().code(), StatusCode::kInvalidArgument);
  // Contains mirrors Create for dynamic names.
  EXPECT_FALSE(registry.Contains("embedded:warp_drive:chimera:2x2x4"));
}

TEST(EmbeddedSolverTest, FindsGroundStateOnEveryTopologyFamily) {
  const Qubo q = KnownGroundStateQubo();
  SolverOptions options;
  options.num_reads = 20;
  options.num_sweeps = 300;
  options.seed = 5;
  for (const std::string name : {
           "embedded:exact:chimera:1x1x4",
           "embedded:simulated_annealing:pegasus:2",
           "embedded:simulated_annealing:zephyr:1",
       }) {
    auto result = SolveWith(name, q, options);
    ASSERT_TRUE(result.ok()) << name << ": " << result.status();
    ASSERT_FALSE(result->empty()) << name;
    EXPECT_NEAR(result->best().energy, -3.0, 1e-9) << name;
    EXPECT_EQ(result->best().assignment, (Assignment{1, 1, 0, 0})) << name;
    // Energies are reported in LOGICAL space.
    for (const Sample& s : result->samples()) {
      EXPECT_NEAR(s.energy, q.Energy(s.assignment), 1e-9) << name;
    }
  }
}

TEST(EmbeddedSolverTest, OversizedProblemIsResourceExhausted) {
  Qubo big(5);
  for (int i = 0; i < 5; ++i) big.AddLinear(i, -1.0);
  // chimera:1x1x4 has clique capacity 4.
  auto result =
      SolveWith("embedded:simulated_annealing:chimera:1x1x4", big, {});
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kResourceExhausted);
}

TEST(EmbeddedSolverTest, BaseFailureIsAnnotatedWithBaseAndTopology) {
  // 16 logical variables chain into 2*ceil(16/4) = 8 physical qubits each on
  // pegasus:6 — a 128-variable compacted physical problem, beyond the exact
  // solver's 30-variable enumeration limit; the error must say which base
  // failed on which topology.
  Qubo wide(16);
  for (int i = 0; i < 16; ++i) wide.AddLinear(i, -1.0);
  auto result =
      SolveWith("embedded:exact:pegasus:6", wide, {.num_reads = 1});
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(result.status().message().find("base 'exact' on pegasus:6"),
            std::string::npos)
      << result.status().message();
}

TEST(EmbeddedSolverTest, PhysicalModelIsCompactedToChainQubits) {
  // A 6-variable problem on pegasus:6 occupies 24 chain qubits of the 720
  // on chip; the base backend must only ever see those 24 — pinned by
  // solving through "exact", whose 30-variable limit a non-compacted
  // dispatch (720 variables) would trip.
  Qubo q(6);
  for (int i = 0; i < 6; ++i) q.AddLinear(i, i % 2 == 0 ? -1.0 : 0.5);
  q.AddQuadratic(0, 5, 1.5);
  auto result = SolveWith("embedded:exact:pegasus:6", q, {.num_reads = 3});
  ASSERT_TRUE(result.ok()) << result.status();
  const double optimum = -3.0;  // even vars on, odd off, 0-5 coupling idle.
  EXPECT_NEAR(result->best().energy, optimum, 1e-9);
}

TEST(EmbeddedSolverTest, NegativeChainStrengthIsInvalidArgument) {
  SolverOptions options;
  options.chain_strength = -1.0;
  auto result = SolveWith("embedded:simulated_annealing:chimera:2x2x4",
                          KnownGroundStateQubo(), options);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

// -- Chain-break policies ----------------------------------------------------

/// Fixture with a hand-built broken chain: chimera:1x1x4 chains are
/// {i, 4 + i}, so a physical sample can split chain 1 deliberately.
struct BrokenChainFixture {
  static Qubo MakeLogical() {
    Qubo q(3);
    q.AddLinear(0, -1.0);
    q.AddLinear(1, 2.0);
    q.AddLinear(2, 0.5);
    q.AddQuadratic(0, 1, -4.0);
    return q;
  }
  static EmbeddedQubo MakeEmbedded(const Qubo& logical,
                                   const ChimeraGraph& graph) {
    auto embedding = CliqueEmbedding(3, graph);
    QDM_CHECK(embedding.ok());
    auto result = EmbedQubo(logical, *embedding, graph, 1.0);
    QDM_CHECK(result.ok());
    return std::move(result).value();
  }

  Qubo logical = MakeLogical();
  ChimeraGraph graph{1, 1, 4};
  EmbeddedQubo embedded = MakeEmbedded(logical, graph);

  /// Physical sample: chain 0 = {0,4} aligned to 1, chain 1 = {1,5} BROKEN
  /// (qubit 1 -> 1, qubit 5 -> 0), chain 2 = {2,6} aligned to 0.
  Sample BrokenSample() const {
    Sample s;
    s.assignment = Assignment(graph.num_qubits(), 0);
    s.assignment[0] = 1;
    s.assignment[4] = 1;
    s.assignment[1] = 1;
    return s;
  }

  /// Physical sample with every chain aligned: x = (1, 1, 0).
  Sample AlignedSample() const {
    Sample s;
    s.assignment = Assignment(graph.num_qubits(), 0);
    for (int q : {0, 4, 1, 5}) s.assignment[q] = 1;
    return s;
  }
};

TEST(ChainBreakPolicyTest, MajorityVoteTiesResolveToZeroAndReportFraction) {
  BrokenChainFixture f;
  Sample out = Unembed(f.logical, f.embedded, f.BrokenSample(),
                       ChainBreakPolicy::kMajorityVote);
  // Chain 1 split 1-of-2: tie -> 0.
  EXPECT_EQ(out.assignment, (Assignment{1, 0, 0}));
  EXPECT_NEAR(out.chain_break_fraction, 1.0 / 3.0, 1e-12);
  EXPECT_NEAR(out.energy, f.logical.Energy(out.assignment), 1e-12);
}

TEST(ChainBreakPolicyTest, MinimizeEnergyRepairsBrokenChainsOnly) {
  BrokenChainFixture f;
  Sample repaired = Unembed(f.logical, f.embedded, f.BrokenSample(),
                            ChainBreakPolicy::kMinimizeEnergy);
  // Flipping x1 to 1 gains -4 (coupling) + 2 (linear) = -2, so the repair
  // takes it; x0/x2 are intact chains and must not be touched.
  EXPECT_EQ(repaired.assignment, (Assignment{1, 1, 0}));
  EXPECT_LT(repaired.energy, f.logical.Energy({1, 0, 0}));
  // The reported fraction measures the physical sample, not the repair.
  EXPECT_NEAR(repaired.chain_break_fraction, 1.0 / 3.0, 1e-12);

  // On an unbroken sample every policy is the identity.
  for (ChainBreakPolicy policy :
       {ChainBreakPolicy::kMajorityVote, ChainBreakPolicy::kMinimizeEnergy,
        ChainBreakPolicy::kDiscard}) {
    Sample aligned = Unembed(f.logical, f.embedded, f.AlignedSample(), policy);
    EXPECT_EQ(aligned.assignment, (Assignment{1, 1, 0}));
    EXPECT_EQ(aligned.chain_break_fraction, 0.0);
  }
}

TEST(ChainBreakPolicyTest, DiscardDropsBrokenSamplesButNeverReturnsEmpty) {
  BrokenChainFixture f;
  SampleSet physical;
  physical.Add(f.BrokenSample());
  physical.Add(f.AlignedSample());
  SampleSet kept = UnembedAll(f.logical, f.embedded, physical,
                              ChainBreakPolicy::kDiscard);
  ASSERT_EQ(kept.size(), 1u);
  EXPECT_EQ(kept.best().assignment, (Assignment{1, 1, 0}));
  EXPECT_EQ(kept.best().chain_break_fraction, 0.0);

  // All-broken input: documented fallback to majority vote on everything.
  SampleSet all_broken;
  all_broken.Add(f.BrokenSample());
  SampleSet fallback = UnembedAll(f.logical, f.embedded, all_broken,
                                  ChainBreakPolicy::kDiscard);
  ASSERT_EQ(fallback.size(), 1u);
  EXPECT_EQ(fallback.best().assignment, (Assignment{1, 0, 0}));
  EXPECT_GT(fallback.best().chain_break_fraction, 0.0);
}

TEST(ChainBreakPolicyTest, PoliciesAgreeWhenChainsHold) {
  // With auto (strong) chain strength and a seeded backend, no chain breaks
  // and all three policies return bit-identical SampleSets.
  const Qubo q = KnownGroundStateQubo();
  SolverOptions options;
  options.num_reads = 10;
  options.num_sweeps = 200;
  options.seed = 11;
  std::vector<SampleSet> per_policy;
  for (ChainBreakPolicy policy :
       {ChainBreakPolicy::kMajorityVote, ChainBreakPolicy::kMinimizeEnergy,
        ChainBreakPolicy::kDiscard}) {
    options.chain_break_policy = policy;
    auto result = SolveWith("embedded:simulated_annealing:chimera:2x2x4", q,
                            options);
    ASSERT_TRUE(result.ok()) << result.status();
    for (const Sample& s : result->samples()) {
      EXPECT_EQ(s.chain_break_fraction, 0.0) << ToString(policy);
    }
    per_policy.push_back(std::move(result).value());
  }
  for (size_t p = 1; p < per_policy.size(); ++p) {
    ASSERT_EQ(per_policy[p].size(), per_policy[0].size());
    for (size_t s = 0; s < per_policy[0].size(); ++s) {
      EXPECT_EQ(per_policy[p].samples()[s].assignment,
                per_policy[0].samples()[s].assignment);
      EXPECT_EQ(per_policy[p].samples()[s].energy,
                per_policy[0].samples()[s].energy);
    }
  }
}

// -- Batch dispatch ----------------------------------------------------------

TEST(EmbeddedSolverTest, SolveBatchParallelIsBitIdenticalAcrossThreadCounts) {
  std::vector<Qubo> qubos;
  for (int k = 0; k < 6; ++k) {
    Qubo q(3);
    q.AddLinear(0, -1.0 - k);
    q.AddLinear(1, 0.5 * (k % 3));
    q.AddLinear(2, 1.0);
    q.AddQuadratic(0, 1, -0.5);
    q.AddQuadratic(1, 2, 2.0 - k);
    qubos.push_back(q);
  }
  SolverOptions options;
  options.num_reads = 4;
  options.num_sweeps = 60;
  options.seed = 17;
  for (const std::string name : {"embedded:simulated_annealing:pegasus:2",
                                 "embedded:simulated_annealing:zephyr:1"}) {
    auto one = SolveBatchParallel(name, qubos, options, /*num_threads=*/1);
    ASSERT_TRUE(one.ok()) << name << ": " << one.status();
    ASSERT_EQ(one->size(), qubos.size());
    for (int threads : {2, 8}) {
      auto many = SolveBatchParallel(name, qubos, options, threads);
      ASSERT_TRUE(many.ok()) << name << ": " << many.status();
      ASSERT_EQ(many->size(), one->size());
      for (size_t i = 0; i < one->size(); ++i) {
        ASSERT_EQ((*many)[i].size(), (*one)[i].size())
            << name << " threads=" << threads << " instance " << i;
        for (size_t s = 0; s < (*one)[i].size(); ++s) {
          EXPECT_EQ((*many)[i].samples()[s].assignment,
                    (*one)[i].samples()[s].assignment)
              << name << " threads=" << threads;
          EXPECT_EQ((*many)[i].samples()[s].energy,
                    (*one)[i].samples()[s].energy)
              << name << " threads=" << threads;
          EXPECT_EQ((*many)[i].samples()[s].chain_break_fraction,
                    (*one)[i].samples()[s].chain_break_fraction)
              << name << " threads=" << threads;
        }
      }
    }
  }
}

}  // namespace
}  // namespace anneal
}  // namespace qdm
