#include <gtest/gtest.h>

#include "qdm/circuit/gates.h"
#include "qdm/linalg/matrix.h"

namespace qdm {
namespace linalg {
namespace {

using circuit::GateKind;
using circuit::SingleQubitMatrix;

TEST(MatrixTest, IdentityAndIndexing) {
  Matrix i = Matrix::Identity(3);
  EXPECT_EQ(i.rows(), 3u);
  EXPECT_EQ(i(0, 0), Complex(1, 0));
  EXPECT_EQ(i(0, 1), Complex(0, 0));
}

TEST(MatrixTest, InitializerList) {
  Matrix m{{Complex(1, 0), Complex(2, 0)}, {Complex(3, 0), Complex(4, 0)}};
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m(1, 0), Complex(3, 0));
}

TEST(MatrixTest, MultiplyMatchesHandComputation) {
  Matrix a{{Complex(1, 0), Complex(2, 0)}, {Complex(3, 0), Complex(4, 0)}};
  Matrix b{{Complex(0, 0), Complex(1, 0)}, {Complex(1, 0), Complex(0, 0)}};
  Matrix c = a * b;
  EXPECT_EQ(c(0, 0), Complex(2, 0));
  EXPECT_EQ(c(0, 1), Complex(1, 0));
  EXPECT_EQ(c(1, 0), Complex(4, 0));
  EXPECT_EQ(c(1, 1), Complex(3, 0));
}

TEST(MatrixTest, AdjointConjugatesAndTransposes) {
  Matrix m{{Complex(1, 2), Complex(0, 1)}, {Complex(3, 0), Complex(0, -4)}};
  Matrix a = m.Adjoint();
  EXPECT_EQ(a(0, 0), Complex(1, -2));
  EXPECT_EQ(a(0, 1), Complex(3, 0));
  EXPECT_EQ(a(1, 0), Complex(0, -1));
  EXPECT_EQ(a(1, 1), Complex(0, 4));
}

TEST(MatrixTest, TraceSumsDiagonal) {
  Matrix m{{Complex(1, 1), Complex(9, 9)}, {Complex(9, 9), Complex(2, -1)}};
  EXPECT_EQ(m.Trace(), Complex(3, 0));
}

TEST(MatrixTest, ApplyToVector) {
  Matrix x = SingleQubitMatrix(GateKind::kX, {});
  std::vector<Complex> v{Complex(1, 0), Complex(0, 0)};
  auto out = x.Apply(v);
  EXPECT_EQ(out[0], Complex(0, 0));
  EXPECT_EQ(out[1], Complex(1, 0));
}

TEST(MatrixTest, KronDimensionsAndValues) {
  Matrix i2 = Matrix::Identity(2);
  Matrix x = SingleQubitMatrix(GateKind::kX, {});
  Matrix k = Kron(i2, x);
  EXPECT_EQ(k.rows(), 4u);
  // Block-diagonal [[X,0],[0,X]].
  EXPECT_EQ(k(0, 1), Complex(1, 0));
  EXPECT_EQ(k(1, 0), Complex(1, 0));
  EXPECT_EQ(k(2, 3), Complex(1, 0));
  EXPECT_EQ(k(3, 2), Complex(1, 0));
  EXPECT_EQ(k(0, 2), Complex(0, 0));
}

TEST(MatrixTest, KronNonSquare) {
  Matrix a(1, 2);
  a(0, 0) = Complex(1, 0);
  a(0, 1) = Complex(2, 0);
  Matrix b(2, 1);
  b(0, 0) = Complex(3, 0);
  b(1, 0) = Complex(4, 0);
  Matrix k = Kron(a, b);
  EXPECT_EQ(k.rows(), 2u);
  EXPECT_EQ(k.cols(), 2u);
  EXPECT_EQ(k(0, 0), Complex(3, 0));
  EXPECT_EQ(k(1, 1), Complex(8, 0));
}

class StandardGateUnitarity : public ::testing::TestWithParam<GateKind> {};

TEST_P(StandardGateUnitarity, FixedGatesAreUnitary) {
  EXPECT_TRUE(SingleQubitMatrix(GetParam(), {}).IsUnitary());
}

INSTANTIATE_TEST_SUITE_P(AllFixed, StandardGateUnitarity,
                         ::testing::Values(GateKind::kI, GateKind::kX,
                                           GateKind::kY, GateKind::kZ,
                                           GateKind::kH, GateKind::kS,
                                           GateKind::kSdg, GateKind::kT,
                                           GateKind::kTdg));

class RotationGateUnitarity
    : public ::testing::TestWithParam<std::tuple<GateKind, double>> {};

TEST_P(RotationGateUnitarity, RotationsAreUnitary) {
  auto [kind, theta] = GetParam();
  EXPECT_TRUE(SingleQubitMatrix(kind, {theta}).IsUnitary());
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, RotationGateUnitarity,
    ::testing::Combine(::testing::Values(GateKind::kRX, GateKind::kRY,
                                         GateKind::kRZ, GateKind::kPhase),
                       ::testing::Values(-2.5, -0.3, 0.0, 0.7, 3.1)));

TEST(GateMatrixTest, HIsHermitianAndSelfInverse) {
  Matrix h = SingleQubitMatrix(GateKind::kH, {});
  EXPECT_TRUE(h.IsHermitian());
  EXPECT_TRUE((h * h).ApproxEqual(Matrix::Identity(2)));
}

TEST(GateMatrixTest, SSquaredIsZ) {
  Matrix s = SingleQubitMatrix(GateKind::kS, {});
  Matrix z = SingleQubitMatrix(GateKind::kZ, {});
  EXPECT_TRUE((s * s).ApproxEqual(z));
}

TEST(GateMatrixTest, TSquaredIsS) {
  Matrix t = SingleQubitMatrix(GateKind::kT, {});
  Matrix s = SingleQubitMatrix(GateKind::kS, {});
  EXPECT_TRUE((t * t).ApproxEqual(s));
}

TEST(GateMatrixTest, U3ReproducesRy) {
  // U3(theta, 0, 0) == RY(theta) in the IBM convention.
  Matrix u = SingleQubitMatrix(GateKind::kU3, {0.7, 0.0, 0.0});
  Matrix ry = SingleQubitMatrix(GateKind::kRY, {0.7});
  EXPECT_TRUE(u.ApproxEqual(ry));
}

TEST(GateMatrixTest, XYZAnticommute) {
  Matrix x = SingleQubitMatrix(GateKind::kX, {});
  Matrix y = SingleQubitMatrix(GateKind::kY, {});
  Matrix xy = x * y, yx = y * x;
  EXPECT_TRUE((xy + yx).ApproxEqual(Matrix::Zero(2, 2)));
}

}  // namespace
}  // namespace linalg
}  // namespace qdm
