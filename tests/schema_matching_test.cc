#include <gtest/gtest.h>

#include "qdm/anneal/exact_solver.h"
#include "qdm/anneal/solver.h"
#include "qdm/common/rng.h"
#include "qdm/qopt/schema_matching.h"

namespace qdm {
namespace qopt {
namespace {

SchemaMatchingProblem TinyProblem() {
  // 2x2 with a clear diagonal matching.
  SchemaMatchingProblem p;
  p.source_attributes = {"a", "b"};
  p.target_attributes = {"x", "y"};
  p.similarity = {{0.9, 0.2}, {0.1, 0.8}};
  return p;
}

TEST(SchemaMatchingTest, HungarianFindsDiagonal) {
  Matching m = HungarianMatching(TinyProblem());
  ASSERT_EQ(m.pairs.size(), 2u);
  EXPECT_EQ(m.pairs[0], (std::pair<int, int>{0, 0}));
  EXPECT_EQ(m.pairs[1], (std::pair<int, int>{1, 1}));
  EXPECT_NEAR(m.total_similarity, 1.7, 1e-12);
}

TEST(SchemaMatchingTest, HungarianBeatsGreedyOnAdversarialCase) {
  // Greedy grabs (0,0)=0.9 then is stuck with (1,1)=0.1: total 1.0.
  // Optimal is (0,1)+(1,0) = 0.8 + 0.8 = 1.6.
  SchemaMatchingProblem p;
  p.source_attributes = {"a", "b"};
  p.target_attributes = {"x", "y"};
  p.similarity = {{0.9, 0.8}, {0.8, 0.1}};
  Matching greedy = GreedyMatching(p);
  Matching optimal = HungarianMatching(p);
  EXPECT_NEAR(greedy.total_similarity, 1.0, 1e-12);
  EXPECT_NEAR(optimal.total_similarity, 1.6, 1e-12);
}

TEST(SchemaMatchingTest, HungarianMatchesBruteForceOnRandomInstances) {
  Rng rng(3);
  for (int trial = 0; trial < 10; ++trial) {
    SchemaMatchingProblem p = GenerateSchemaMatching(4, 4, 0.1, &rng);
    // Brute force over all 4! complete matchings (leaving attributes
    // unmatched never helps with nonnegative similarities).
    std::vector<int> perm{0, 1, 2, 3};
    double best = 0;
    do {
      double total = 0;
      for (int i = 0; i < 4; ++i) total += p.similarity[i][perm[i]];
      best = std::max(best, total);
    } while (std::next_permutation(perm.begin(), perm.end()));
    Matching m = HungarianMatching(p);
    EXPECT_NEAR(m.total_similarity, best, 1e-9);
  }
}

TEST(SchemaMatchingTest, RectangularInstances) {
  Rng rng(5);
  SchemaMatchingProblem p = GenerateSchemaMatching(3, 5, 0.05, &rng);
  Matching m = HungarianMatching(p);
  EXPECT_TRUE(m.feasible);
  EXPECT_LE(m.pairs.size(), 3u);
  // Every source matched at most once.
  std::set<int> sources, targets;
  for (auto [i, j] : m.pairs) {
    EXPECT_TRUE(sources.insert(i).second);
    EXPECT_TRUE(targets.insert(j).second);
  }
}

TEST(SchemaMatchingQuboTest, FeasibleEnergyIsNegativeSimilarity) {
  SchemaMatchingProblem p = TinyProblem();
  anneal::Qubo qubo = SchemaMatchingToQubo(p);
  anneal::Assignment x(4, 0);
  x[p.VarIndex(0, 0)] = 1;
  x[p.VarIndex(1, 1)] = 1;
  EXPECT_NEAR(qubo.Energy(x), -1.7, 1e-12);
}

TEST(SchemaMatchingQuboTest, GroundStateMatchesHungarian) {
  Rng rng(7);
  for (int trial = 0; trial < 6; ++trial) {
    SchemaMatchingProblem p = GenerateSchemaMatching(4, 4, 0.1, &rng);
    anneal::Qubo qubo = SchemaMatchingToQubo(p);
    anneal::Sample ground = anneal::ExactSolver::Solve(qubo);
    Matching decoded = DecodeMatching(p, ground.assignment);
    ASSERT_TRUE(decoded.feasible);
    Matching optimal = HungarianMatching(p);
    EXPECT_NEAR(decoded.total_similarity, optimal.total_similarity, 1e-9);
  }
}

TEST(SchemaMatchingQuboTest, DoubleMatchingIsPenalized) {
  SchemaMatchingProblem p = TinyProblem();
  anneal::Qubo qubo = SchemaMatchingToQubo(p);
  // Source 0 matched to both targets.
  anneal::Assignment x(4, 0);
  x[p.VarIndex(0, 0)] = 1;
  x[p.VarIndex(0, 1)] = 1;
  EXPECT_GT(qubo.Energy(x), 0.0) << "violation must outweigh similarity gain";
  EXPECT_FALSE(DecodeMatching(p, x).feasible);
}

TEST(SchemaMatchingEndToEndTest, AnnealerRecoversPlantedMatching) {
  Rng rng(11);
  anneal::SolverOptions options;
  options.num_reads = 20;
  options.num_sweeps = 300;
  options.rng = &rng;
  int optimal_count = 0;
  for (int trial = 0; trial < 5; ++trial) {
    SchemaMatchingProblem p = GenerateSchemaMatching(5, 5, 0.05, &rng);
    Result<Matching> decoded =
        SolveSchemaMatching(p, "simulated_annealing", options);
    ASSERT_TRUE(decoded.ok()) << decoded.status();
    Matching optimal = HungarianMatching(p);
    if (decoded->feasible &&
        decoded->total_similarity >= optimal.total_similarity - 1e-9) {
      ++optimal_count;
    }
  }
  EXPECT_GE(optimal_count, 4);
}

TEST(SchemaMatchingGeneratorTest, PlantedPairsAreStrong) {
  Rng rng(13);
  SchemaMatchingProblem p = GenerateSchemaMatching(6, 6, 0.0, &rng);
  // With zero noise, Hungarian should recover a matching with total
  // similarity >= 6 * 0.7.
  Matching m = HungarianMatching(p);
  EXPECT_GE(m.total_similarity, 6 * 0.7 - 1e-9);
}

}  // namespace
}  // namespace qopt
}  // namespace qdm
