#include <gtest/gtest.h>

#include "qdm/anneal/exact_solver.h"
#include "qdm/anneal/solver.h"
#include "qdm/common/rng.h"
#include "qdm/qopt/mqo.h"

namespace qdm {
namespace qopt {
namespace {

MqoProblem TinyProblem() {
  // 2 queries x 2 plans. Costs: q0 {10, 12}, q1 {20, 14}. One sharing:
  // (q0 plan 1) + (q1 plan 0) saves 15 -> total 12 + 20 - 15 = 17 beats
  // the independent optimum 10 + 14 = 24.
  MqoProblem p;
  p.plan_costs = {{10, 12}, {20, 14}};
  p.savings.push_back(MqoProblem::Sharing{0, 1, 1, 0, 15});
  return p;
}

TEST(MqoProblemTest, SelectionCostAppliesSavings) {
  MqoProblem p = TinyProblem();
  EXPECT_DOUBLE_EQ(p.SelectionCost({0, 0}), 30);
  EXPECT_DOUBLE_EQ(p.SelectionCost({0, 1}), 24);
  EXPECT_DOUBLE_EQ(p.SelectionCost({1, 0}), 17);  // Sharing triggers.
  EXPECT_DOUBLE_EQ(p.SelectionCost({1, 1}), 26);
}

TEST(MqoProblemTest, VarIndexIsDense) {
  MqoProblem p = TinyProblem();
  EXPECT_EQ(p.num_variables(), 4);
  EXPECT_EQ(p.VarIndex(0, 0), 0);
  EXPECT_EQ(p.VarIndex(0, 1), 1);
  EXPECT_EQ(p.VarIndex(1, 0), 2);
  EXPECT_EQ(p.VarIndex(1, 1), 3);
}

TEST(MqoQuboTest, FeasibleEnergiesMatchSelectionCost) {
  MqoProblem p = TinyProblem();
  anneal::Qubo qubo = MqoToQubo(p);
  for (int p0 = 0; p0 < 2; ++p0) {
    for (int p1 = 0; p1 < 2; ++p1) {
      anneal::Assignment x(4, 0);
      x[p.VarIndex(0, p0)] = 1;
      x[p.VarIndex(1, p1)] = 1;
      EXPECT_NEAR(qubo.Energy(x), p.SelectionCost({p0, p1}), 1e-9);
    }
  }
}

TEST(MqoQuboTest, InfeasibleAssignmentsCostMore) {
  MqoProblem p = TinyProblem();
  anneal::Qubo qubo = MqoToQubo(p);
  const double best_feasible = ExhaustiveMqo(p).cost;
  // No plan for q1.
  anneal::Assignment none(4, 0);
  none[p.VarIndex(0, 0)] = 1;
  EXPECT_GT(qubo.Energy(none), best_feasible);
  // Two plans for q0.
  anneal::Assignment both(4, 0);
  both[p.VarIndex(0, 0)] = both[p.VarIndex(0, 1)] = 1;
  both[p.VarIndex(1, 0)] = 1;
  EXPECT_GT(qubo.Energy(both), best_feasible);
}

TEST(MqoQuboTest, GroundStateIsOptimalSelection) {
  Rng rng(3);
  for (int trial = 0; trial < 8; ++trial) {
    MqoProblem p = GenerateMqoProblem(4, 3, 0.3, &rng);
    anneal::Qubo qubo = MqoToQubo(p);
    anneal::Sample ground = anneal::ExactSolver::Solve(qubo);
    MqoSolution decoded = DecodeMqoSample(p, ground.assignment);
    ASSERT_TRUE(decoded.feasible) << "ground state must satisfy constraints";
    MqoSolution optimal = ExhaustiveMqo(p);
    EXPECT_NEAR(decoded.cost, optimal.cost, 1e-9);
  }
}

TEST(MqoDecodeTest, RejectsBrokenAssignments) {
  MqoProblem p = TinyProblem();
  anneal::Assignment empty(4, 0);
  EXPECT_FALSE(DecodeMqoSample(p, empty).feasible);
  anneal::Assignment doubled(4, 1);
  EXPECT_FALSE(DecodeMqoSample(p, doubled).feasible);
}

TEST(MqoBaselinesTest, GreedyMissesCoordinatedSharingWin) {
  // Reaching the sharing optimum {plan 1, plan 0} = 17 requires switching
  // BOTH queries at once; single-plan hill climbing from the independent
  // optimum {0, 1} = 24 cannot get there. This is exactly the coordination
  // structure that makes MQO NP-hard and motivates global solvers [20].
  MqoProblem p = TinyProblem();
  MqoSolution greedy = GreedyMqo(p);
  EXPECT_TRUE(greedy.feasible);
  EXPECT_DOUBLE_EQ(greedy.cost, 24);
  EXPECT_DOUBLE_EQ(ExhaustiveMqo(p).cost, 17);
}

TEST(MqoBaselinesTest, LocalSearchMatchesExhaustiveOnSmall) {
  Rng rng(7);
  for (int trial = 0; trial < 5; ++trial) {
    MqoProblem p = GenerateMqoProblem(5, 3, 0.25, &rng);
    MqoSolution exhaustive = ExhaustiveMqo(p);
    MqoSolution local = LocalSearchMqo(p, 4000, &rng);
    EXPECT_LE(exhaustive.cost, local.cost + 1e-9);
    EXPECT_NEAR(local.cost, exhaustive.cost,
                std::abs(exhaustive.cost) * 0.05 + 1e-9)
        << "local search should be near-optimal on 5x3 instances";
  }
}

TEST(MqoEndToEndTest, AnnealerSolvesGeneratedInstances) {
  // The MQO landscape has penalty barriers between feasible selections
  // (switching plans is a 2-flip move), so the anneal needs honest effort:
  // 1000 sweeps x 50 reads solves these instances reliably.
  Rng rng(11);
  anneal::SolverOptions options;
  options.num_reads = 50;
  options.num_sweeps = 1000;
  options.rng = &rng;
  int solved = 0;
  for (int trial = 0; trial < 5; ++trial) {
    MqoProblem p = GenerateMqoProblem(5, 3, 0.3, &rng);
    Result<MqoSolution> decoded = SolveMqo(p, "simulated_annealing", options);
    ASSERT_TRUE(decoded.ok()) << decoded.status();
    if (decoded->feasible &&
        decoded->cost <= ExhaustiveMqo(p).cost + 1e-9) {
      ++solved;
    }
  }
  EXPECT_GE(solved, 4);
}

TEST(MqoEndToEndTest, QaoaSolvesTinyInstance) {
  // The gate-based arm of Figure 2 on the running MQO example.
  Rng rng(13);
  MqoProblem p = TinyProblem();
  anneal::SolverOptions options;
  options.num_reads = 60;
  options.layers = 3;
  options.restarts = 4;
  options.rng = &rng;
  Result<MqoSolution> decoded = SolveMqo(p, "qaoa", options);
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  ASSERT_TRUE(decoded->feasible);
  EXPECT_DOUBLE_EQ(decoded->cost, 17);
}

TEST(MqoGeneratorTest, SavingsNeverExceedPlanCosts) {
  Rng rng(17);
  MqoProblem p = GenerateMqoProblem(6, 4, 0.5, &rng);
  for (const auto& s : p.savings) {
    EXPECT_LT(s.saving, p.plan_costs[s.query_a][s.plan_a]);
    EXPECT_LT(s.saving, p.plan_costs[s.query_b][s.plan_b]);
    EXPECT_GT(s.saving, 0);
  }
}

}  // namespace
}  // namespace qopt
}  // namespace qdm
