// Wire-format battery for qdm/net: (1) round-trip property tests — every
// codec in wire.h reproduces its input BIT-identically (doubles compared
// by representation, not by value, so even -0.0 and denormals count) for
// randomized and degenerate instances; (2) the malformed-input taxonomy —
// truncated JSON, wrong types, unknown versions and fields, NaN/Inf,
// oversized payloads, and out-of-range indices are all rejected with
// InvalidArgument naming the offending field by its dotted path.

#include "qdm/net/wire.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>
#include <string>
#include <vector>

#include "qdm/anneal/qubo.h"
#include "qdm/anneal/sampler.h"
#include "qdm/anneal/solver.h"
#include "qdm/common/rng.h"
#include "qdm/common/status.h"
#include "qdm/common/strings.h"
#include "qdm/net/json.h"
#include "qdm/service/job.h"

namespace qdm {
namespace net {
namespace {

using anneal::ChainBreakPolicy;
using anneal::Qubo;
using anneal::Sample;
using anneal::SampleSet;
using anneal::SolverOptions;
using service::JobSnapshot;
using service::JobState;

/// Representation equality: the round-trip contract is about bits, and
/// operator== on doubles would wave through -0.0 vs 0.0 (and trip on any
/// NaN that sneaked in).
bool BitEqual(double a, double b) {
  uint64_t ra = 0;
  uint64_t rb = 0;
  std::memcpy(&ra, &a, sizeof(ra));
  std::memcpy(&rb, &b, sizeof(rb));
  return ra == rb;
}

Qubo MakeQubo(int num_variables, uint64_t seed) {
  Rng rng(seed);
  Qubo qubo(num_variables);
  for (int i = 0; i < num_variables; ++i) {
    qubo.AddLinear(i, rng.Uniform(-1, 1));
    for (int j = i + 1; j < num_variables; ++j) {
      qubo.AddQuadratic(i, j, rng.Uniform(-1, 1));
    }
  }
  return qubo;
}

bool QubosBitEqual(const Qubo& a, const Qubo& b) {
  if (a.num_variables() != b.num_variables()) return false;
  if (!BitEqual(a.offset(), b.offset())) return false;
  for (int i = 0; i < a.num_variables(); ++i) {
    if (!BitEqual(a.linear(i), b.linear(i))) return false;
  }
  if (a.quadratic_terms().size() != b.quadratic_terms().size()) return false;
  auto it_a = a.quadratic_terms().begin();
  auto it_b = b.quadratic_terms().begin();
  for (; it_a != a.quadratic_terms().end(); ++it_a, ++it_b) {
    if (it_a->first != it_b->first) return false;
    if (!BitEqual(it_a->second, it_b->second)) return false;
  }
  return true;
}

bool SampleSetsBitEqual(const SampleSet& a, const SampleSet& b) {
  if (a.size() != b.size()) return false;
  if (a.decision() != b.decision()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    const Sample& sa = a.samples()[i];
    const Sample& sb = b.samples()[i];
    if (sa.assignment != sb.assignment) return false;
    if (!BitEqual(sa.energy, sb.energy)) return false;
    if (!BitEqual(sa.chain_break_fraction, sb.chain_break_fraction)) {
      return false;
    }
  }
  return true;
}

Qubo RoundTripQubo(const Qubo& qubo) {
  std::string text;
  AppendQuboJson(qubo, &text);
  Result<JsonValue> parsed = JsonParse(text);
  EXPECT_TRUE(parsed.ok()) << parsed.status();
  Result<Qubo> decoded = DecodeQubo(*parsed, "qubo");
  EXPECT_TRUE(decoded.ok()) << decoded.status();
  return *decoded;
}

SampleSet RoundTripSampleSet(const SampleSet& samples) {
  std::string text;
  AppendSampleSetJson(samples, &text);
  Result<JsonValue> parsed = JsonParse(text);
  EXPECT_TRUE(parsed.ok()) << parsed.status();
  Result<SampleSet> decoded = DecodeSampleSet(*parsed, "set");
  EXPECT_TRUE(decoded.ok()) << decoded.status();
  return *decoded;
}

/// Asserts `result` is InvalidArgument and its message names `field`.
template <typename T>
void ExpectRejected(const Result<T>& result, const std::string& field) {
  ASSERT_FALSE(result.ok()) << "expected rejection naming " << field;
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument)
      << result.status();
  EXPECT_NE(result.status().message().find(field), std::string::npos)
      << "message '" << result.status().message() << "' does not name '"
      << field << "'";
}

// ---------------------------------------------------------------------------
// Round trips: doubles and integers.
// ---------------------------------------------------------------------------

TEST(WireDoubleTest, AwkwardValuesRoundTripBitExactly) {
  const double values[] = {0.0,
                           -0.0,
                           0.1,
                           1.0 / 3.0,
                           -1234.5678,
                           1e-300,
                           1e300,
                           std::numeric_limits<double>::min(),
                           std::numeric_limits<double>::max(),
                           std::numeric_limits<double>::denorm_min(),
                           std::numeric_limits<double>::epsilon()};
  for (const double value : values) {
    std::string text = "{\"x\":";
    JsonAppendDouble(value, &text);
    text += "}";
    Result<JsonValue> parsed = JsonParse(text);
    ASSERT_TRUE(parsed.ok()) << parsed.status();
    Result<double> decoded = parsed->Find("x")->AsDouble("x");
    ASSERT_TRUE(decoded.ok()) << decoded.status();
    EXPECT_TRUE(BitEqual(value, *decoded)) << "value " << value;
  }
}

TEST(WireIntegerTest, Uint64ExtremesRoundTripExactly) {
  // 2^53 + 1 and UINT64_MAX are NOT representable as doubles — the wire
  // must carry 64-bit integers as raw tokens, never through a double.
  const uint64_t values[] = {0, 1, (1ull << 53) + 1, UINT64_MAX};
  for (const uint64_t value : values) {
    std::string text = StrFormat("{\"x\":%llu}",
                                 static_cast<unsigned long long>(value));
    Result<JsonValue> parsed = JsonParse(text);
    ASSERT_TRUE(parsed.ok()) << parsed.status();
    Result<uint64_t> decoded = parsed->Find("x")->AsUint64("x");
    ASSERT_TRUE(decoded.ok()) << decoded.status();
    EXPECT_EQ(value, *decoded);
  }
}

// ---------------------------------------------------------------------------
// Round trips: core model types.
// ---------------------------------------------------------------------------

TEST(WireQuboTest, RandomizedInstancesRoundTripBitExactly) {
  for (const int n : {1, 2, 7, 16, 33}) {
    for (uint64_t seed = 1; seed <= 5; ++seed) {
      Qubo qubo = MakeQubo(n, seed * 1000 + n);
      qubo.AddOffset(seed * 0.1234567890123456789);
      EXPECT_TRUE(QubosBitEqual(qubo, RoundTripQubo(qubo)))
          << "n=" << n << " seed=" << seed;
    }
  }
}

TEST(WireQuboTest, DegenerateInstancesRoundTrip) {
  // Smallest legal model, untouched after construction.
  EXPECT_TRUE(QubosBitEqual(Qubo(1), RoundTripQubo(Qubo(1))));

  // All-zero linear terms, no quadratic terms, negative-zero offset.
  Qubo zeros(3);
  zeros.AddOffset(-0.0);
  EXPECT_TRUE(QubosBitEqual(zeros, RoundTripQubo(zeros)));

  // Extreme coefficients.
  Qubo extreme(2);
  extreme.AddLinear(0, std::numeric_limits<double>::max());
  extreme.AddLinear(1, std::numeric_limits<double>::denorm_min());
  extreme.AddQuadratic(0, 1, -1e-300);
  extreme.AddOffset(1e300);
  EXPECT_TRUE(QubosBitEqual(extreme, RoundTripQubo(extreme)));
}

TEST(WireSolverOptionsTest, AllKnobsRoundTrip) {
  SolverOptions options;
  options.num_reads = 17;
  options.seed = UINT64_MAX;  // Not representable as a double.
  options.num_sweeps = 321;
  options.beta_min = 0.01;
  options.beta_max = 12.7;
  options.num_replicas = 9;
  options.swap_interval = 3;
  options.max_iterations = 555;
  options.tenure = 11;
  options.layers = 2;
  options.restarts = 4;
  options.max_qubits = 20;
  options.chain_strength = 3.25;
  options.chain_break_policy = ChainBreakPolicy::kDiscard;

  std::string text;
  AppendSolverOptionsJson(options, &text);
  Result<JsonValue> parsed = JsonParse(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  Result<SolverOptions> decoded = DecodeSolverOptions(*parsed, "options");
  ASSERT_TRUE(decoded.ok()) << decoded.status();

  EXPECT_EQ(decoded->num_reads, options.num_reads);
  EXPECT_EQ(decoded->seed, options.seed);
  EXPECT_EQ(decoded->num_sweeps, options.num_sweeps);
  EXPECT_TRUE(BitEqual(decoded->beta_min, options.beta_min));
  EXPECT_TRUE(BitEqual(decoded->beta_max, options.beta_max));
  EXPECT_EQ(decoded->num_replicas, options.num_replicas);
  EXPECT_EQ(decoded->swap_interval, options.swap_interval);
  EXPECT_EQ(decoded->max_iterations, options.max_iterations);
  EXPECT_EQ(decoded->tenure, options.tenure);
  EXPECT_EQ(decoded->layers, options.layers);
  EXPECT_EQ(decoded->restarts, options.restarts);
  EXPECT_EQ(decoded->max_qubits, options.max_qubits);
  EXPECT_TRUE(BitEqual(decoded->chain_strength, options.chain_strength));
  EXPECT_EQ(decoded->chain_break_policy, options.chain_break_policy);
  EXPECT_EQ(decoded->rng, nullptr);
}

TEST(WireSolverOptionsTest, OmittedKnobsDefault) {
  Result<JsonValue> parsed = JsonParse("{\"num_reads\":3}");
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  Result<SolverOptions> decoded = DecodeSolverOptions(*parsed, "options");
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_EQ(decoded->num_reads, 3);
  EXPECT_EQ(decoded->seed, 0u);
  EXPECT_EQ(decoded->num_sweeps, 0);
  EXPECT_EQ(decoded->chain_break_policy, ChainBreakPolicy::kMajorityVote);
}

TEST(WireSampleSetTest, SolverOutputRoundTripsBitExactly) {
  SolverOptions options;
  options.num_reads = 16;
  options.seed = 99;
  options.num_sweeps = 50;
  Result<SampleSet> solved =
      anneal::SolveWith("simulated_annealing", MakeQubo(8, 5), options);
  ASSERT_TRUE(solved.ok()) << solved.status();
  EXPECT_TRUE(SampleSetsBitEqual(*solved, RoundTripSampleSet(*solved)));
}

TEST(WireSampleSetTest, EqualEnergyTiesKeepTheirOrder) {
  // SampleSet::Add inserts before equal-energy samples, so tie order is
  // load-bearing: a decoder that naively re-Adds in wire order would
  // reverse each tie group. Distinct assignments at one energy expose it.
  SampleSet ties;
  for (int i = 0; i < 5; ++i) {
    Sample sample;
    sample.assignment = {i % 2, (i / 2) % 2};
    sample.energy = (i < 3) ? 1.0 : 2.0;
    ties.Add(sample);
  }
  SampleSet decoded = RoundTripSampleSet(ties);
  ASSERT_TRUE(SampleSetsBitEqual(ties, decoded));
  // Belt and braces: re-encode and compare the JSON byte for byte.
  std::string first;
  std::string second;
  AppendSampleSetJson(ties, &first);
  AppendSampleSetJson(decoded, &second);
  EXPECT_EQ(first, second);
}

TEST(WireSampleSetTest, DecisionFieldIsConditionalAndRoundTrips) {
  // Without a decision the field is omitted entirely — pre-adaptive v1
  // payloads stay byte-identical.
  SampleSet plain;
  Sample sample;
  sample.assignment = {1, 0};
  sample.energy = -2.5;
  plain.Add(sample);
  std::string without;
  AppendSampleSetJson(plain, &without);
  EXPECT_EQ(without.find("decision"), std::string::npos);

  // With one, it round-trips exactly (and only adds the one field).
  SampleSet decided = plain;
  decided.set_decision("commit:1:tabu_search");
  std::string with;
  AppendSampleSetJson(decided, &with);
  EXPECT_NE(with.find("\"decision\":\"commit:1:tabu_search\""),
            std::string::npos);
  SampleSet decoded = RoundTripSampleSet(decided);
  EXPECT_EQ(decoded.decision(), "commit:1:tabu_search");
  EXPECT_TRUE(SampleSetsBitEqual(decided, decoded));
}

TEST(WireSampleSetTest, EmptyAndDegenerateSetsRoundTrip) {
  EXPECT_TRUE(SampleSetsBitEqual(SampleSet(), RoundTripSampleSet({})));

  SampleSet empty_assignment;
  Sample sample;
  sample.energy = -0.0;
  empty_assignment.Add(sample);
  EXPECT_TRUE(SampleSetsBitEqual(empty_assignment,
                                 RoundTripSampleSet(empty_assignment)));
}

// ---------------------------------------------------------------------------
// Round trips: requests and responses.
// ---------------------------------------------------------------------------

TEST(WireJobRequestTest, AllThreeTypesRoundTrip) {
  for (const JobRequest::Type type :
       {JobRequest::Type::kSubmit, JobRequest::Type::kSubmitBatch,
        JobRequest::Type::kSubmitRace}) {
    JobRequest request;
    request.type = type;
    if (type == JobRequest::Type::kSubmitRace) {
      request.members = {"simulated_annealing", "tabu_search"};
    } else {
      request.solver = "simulated_annealing";
    }
    request.qubos.push_back(MakeQubo(4, 7));
    if (type == JobRequest::Type::kSubmitBatch) {
      request.qubos.push_back(MakeQubo(3, 8));
    }
    request.options.num_reads = 5;
    request.options.seed = (1ull << 53) + 1;
    request.deadline = std::chrono::nanoseconds(123456789);

    Result<JobRequest> decoded = DecodeJobRequest(EncodeJobRequest(request));
    ASSERT_TRUE(decoded.ok()) << decoded.status();
    EXPECT_EQ(decoded->type, request.type);
    EXPECT_EQ(decoded->solver, request.solver);
    EXPECT_EQ(decoded->members, request.members);
    ASSERT_EQ(decoded->qubos.size(), request.qubos.size());
    for (size_t i = 0; i < request.qubos.size(); ++i) {
      EXPECT_TRUE(QubosBitEqual(decoded->qubos[i], request.qubos[i]));
    }
    EXPECT_EQ(decoded->options.seed, request.options.seed);
    EXPECT_EQ(decoded->deadline, request.deadline);
  }
}

TEST(WireErrorBodyTest, EveryStatusCodeRoundTripsExactly) {
  const int last = static_cast<int>(StatusCode::kDeadlineExceeded);
  for (int i = 1; i <= last; ++i) {  // Skip kOk: error bodies are errors.
    const Status status(static_cast<StatusCode>(i),
                        "message with \"quotes\", \\ and \x01 control");
    Status remote;
    const Status decode = DecodeErrorBody(EncodeErrorBody(status), &remote);
    ASSERT_TRUE(decode.ok()) << decode;
    EXPECT_EQ(remote, status);
  }
}

TEST(WireSnapshotTest, EveryJobStateRoundTrips) {
  const int last = static_cast<int>(JobState::kDeadlineExceeded);
  for (int i = 0; i <= last; ++i) {
    JobSnapshot snapshot;
    snapshot.id = UINT64_MAX;
    snapshot.state = static_cast<JobState>(i);
    snapshot.status = Status::Cancelled("job 42 cancelled");
    Result<JobSnapshot> decoded =
        DecodeSnapshotResponse(EncodeSnapshotResponse(snapshot));
    ASSERT_TRUE(decoded.ok()) << decoded.status();
    EXPECT_EQ(decoded->id, snapshot.id);
    EXPECT_EQ(decoded->state, snapshot.state);
    EXPECT_EQ(decoded->status, snapshot.status);
  }
}

TEST(WireResponseTest, SubmitSolversStatsHealthRoundTrip) {
  Result<service::JobId> id =
      DecodeSubmitResponse(EncodeSubmitResponse(UINT64_MAX));
  ASSERT_TRUE(id.ok()) << id.status();
  EXPECT_EQ(*id, UINT64_MAX);

  const std::vector<std::string> names = {"a", "embedded:x:y", "race:a+b"};
  Result<std::vector<std::string>> solvers =
      DecodeSolversResponse(EncodeSolversResponse(names));
  ASSERT_TRUE(solvers.ok()) << solvers.status();
  EXPECT_EQ(*solvers, names);

  StatsResponse stats;
  stats.stats.submitted = 10;
  stats.stats.rejected = 2;
  stats.stats.queued = 1;
  stats.stats.running = 3;
  stats.stats.completed = 4;
  stats.stats.cancelled = 1;
  stats.stats.deadline_exceeded = 1;
  stats.accepting = false;
  stats.num_workers = 8;
  Result<StatsResponse> decoded =
      DecodeStatsResponse(EncodeStatsResponse(stats));
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_EQ(decoded->stats.submitted, stats.stats.submitted);
  EXPECT_EQ(decoded->stats.rejected, stats.stats.rejected);
  EXPECT_EQ(decoded->stats.queued, stats.stats.queued);
  EXPECT_EQ(decoded->stats.running, stats.stats.running);
  EXPECT_EQ(decoded->stats.completed, stats.stats.completed);
  EXPECT_EQ(decoded->stats.cancelled, stats.stats.cancelled);
  EXPECT_EQ(decoded->stats.deadline_exceeded,
            stats.stats.deadline_exceeded);
  EXPECT_EQ(decoded->accepting, stats.accepting);
  EXPECT_EQ(decoded->num_workers, stats.num_workers);

  // Health and results responses parse as valid envelopes.
  Result<JsonValue> health = ParseEnvelope(EncodeHealthResponse(true));
  ASSERT_TRUE(health.ok()) << health.status();

  SampleSet set;
  Sample sample;
  sample.assignment = {1, 0};
  sample.energy = 0.25;
  set.Add(sample);
  Result<std::vector<SampleSet>> results =
      DecodeResultsResponse(EncodeResultsResponse({set, set}));
  ASSERT_TRUE(results.ok()) << results.status();
  ASSERT_EQ(results->size(), 2u);
  EXPECT_TRUE(SampleSetsBitEqual((*results)[0], set));
  EXPECT_TRUE(SampleSetsBitEqual((*results)[1], set));
}

TEST(WireStringTest, EscapesAndUnicodeRoundTrip) {
  const std::string awkward =
      "tabs\tnewlines\nquotes\"backslash\\nul-adjacent\x01 utf8 \xC3\xA9";
  std::string text = "{\"s\":";
  JsonAppendQuoted(awkward, &text);
  text += "}";
  Result<JsonValue> parsed = JsonParse(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(parsed->Find("s")->string_value(), awkward);

  // Escaped-unicode forms decode too (surrogate pair -> 4-byte UTF-8).
  Result<JsonValue> unicode =
      JsonParse("{\"s\":\"\\u00e9 \\ud83d\\ude00\"}");
  ASSERT_TRUE(unicode.ok()) << unicode.status();
  EXPECT_EQ(unicode->Find("s")->string_value(),
            "\xC3\xA9 \xF0\x9F\x98\x80");
}

// ---------------------------------------------------------------------------
// Malformed-input taxonomy.
// ---------------------------------------------------------------------------

std::string ValidSubmitBody() {
  JobRequest request;
  request.solver = "simulated_annealing";
  request.qubos.push_back(MakeQubo(3, 1));
  request.options.num_reads = 2;
  return EncodeJobRequest(request);
}

TEST(WireTaxonomyTest, TruncatedJsonIsInvalidArgument) {
  const std::string body = ValidSubmitBody();
  for (const size_t keep : {size_t{0}, size_t{1}, body.size() / 2,
                            body.size() - 1}) {
    Result<JobRequest> decoded = DecodeJobRequest(body.substr(0, keep));
    ASSERT_FALSE(decoded.ok()) << "keep=" << keep;
    EXPECT_EQ(decoded.status().code(), StatusCode::kInvalidArgument);
    EXPECT_NE(decoded.status().message().find("JSON parse error"),
              std::string::npos)
        << decoded.status();
  }
}

TEST(WireTaxonomyTest, UnknownVersionIsRejectedBeforeAnyField) {
  ExpectRejected(DecodeJobRequest("{\"version\":2,\"type\":\"submit\"}"),
                 "version");
  ExpectRejected(DecodeJobRequest("{\"type\":\"submit\"}"), "version");
  ExpectRejected(DecodeJobRequest("{\"version\":\"1\"}"), "version");
}

TEST(WireTaxonomyTest, WrongTypesNameTheOffendingField) {
  ExpectRejected(
      DecodeJobRequest(
          "{\"version\":1,\"type\":\"submit\",\"solver\":7,\"qubo\":{}}"),
      "request.solver");
  ExpectRejected(
      DecodeJobRequest("{\"version\":1,\"type\":\"submit\","
                       "\"solver\":\"x\",\"qubo\":[]}"),
      "request.qubo");
  ExpectRejected(
      DecodeJobRequest(
          "{\"version\":1,\"type\":\"submit\",\"solver\":\"x\","
          "\"qubo\":{\"num_variables\":\"three\"}}"),
      "request.qubo.num_variables");
  ExpectRejected(
      DecodeJobRequest(
          "{\"version\":1,\"type\":\"submit\",\"solver\":\"x\","
          "\"qubo\":{\"num_variables\":1,\"linear\":[0]},"
          "\"options\":{\"num_reads\":\"many\"}}"),
      "request.options.num_reads");
  {
    Result<JsonValue> parsed =
        JsonParse("{\"samples\":[],\"decision\":7}");
    ASSERT_TRUE(parsed.ok()) << parsed.status();
    ExpectRejected(DecodeSampleSet(*parsed, "set"), "set.decision");
  }
}

TEST(WireTaxonomyTest, UnknownFieldsAreRejected) {
  ExpectRejected(
      DecodeJobRequest(
          "{\"version\":1,\"type\":\"submit\",\"solver\":\"x\","
          "\"qubo\":{\"num_variables\":1},\"surprise\":1}"),
      "request.surprise");
  ExpectRejected(
      DecodeJobRequest(
          "{\"version\":1,\"type\":\"submit\",\"solver\":\"x\","
          "\"qubo\":{\"num_variables\":0,\"bias\":[]}}"),
      "request.qubo.bias");
  ExpectRejected(
      DecodeJobRequest(
          "{\"version\":1,\"type\":\"submit\",\"solver\":\"x\","
          "\"qubo\":{\"num_variables\":1},"
          "\"options\":{\"temperature\":3}}"),
      "request.options.temperature");
}

TEST(WireTaxonomyTest, NanAndInfAreNotRepresentable) {
  // Raw NaN/Infinity tokens are not JSON at all.
  Result<JsonValue> nan_token = JsonParse("{\"x\":NaN}");
  ASSERT_FALSE(nan_token.ok());
  EXPECT_EQ(nan_token.status().code(), StatusCode::kInvalidArgument);

  // An overflowing literal parses as JSON but is rejected at the double
  // boundary, naming the field.
  ExpectRejected(
      DecodeJobRequest(
          "{\"version\":1,\"type\":\"submit\",\"solver\":\"x\","
          "\"qubo\":{\"num_variables\":1,\"linear\":[1e999]}}"),
      "request.qubo.linear[0]");
}

TEST(WireTaxonomyTest, OversizedPayloadIsRejectedAtTheEnvelope) {
  const std::string oversized(kMaxPayloadBytes + 1, ' ');
  Result<JobRequest> decoded = DecodeJobRequest(oversized);
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(decoded.status().message().find("wire limit"),
            std::string::npos)
      << decoded.status();
}

TEST(WireTaxonomyTest, QuboIndexRangesAreValidatedBeforeConstruction) {
  // Out-of-range and diagonal quadratic indices, negative and absurd
  // variable counts — all must be errors, never aborts.
  ExpectRejected(
      DecodeJobRequest(
          "{\"version\":1,\"type\":\"submit\",\"solver\":\"x\","
          "\"qubo\":{\"num_variables\":2,\"quadratic\":[[0,5,1.0]]}}"),
      "request.qubo.quadratic[0]");
  ExpectRejected(
      DecodeJobRequest(
          "{\"version\":1,\"type\":\"submit\",\"solver\":\"x\","
          "\"qubo\":{\"num_variables\":2,\"quadratic\":[[1,1,1.0]]}}"),
      "request.qubo.quadratic[0]");
  ExpectRejected(
      DecodeJobRequest(
          "{\"version\":1,\"type\":\"submit\",\"solver\":\"x\","
          "\"qubo\":{\"num_variables\":-1}}"),
      "request.qubo.num_variables");
  ExpectRejected(
      DecodeJobRequest(
          "{\"version\":1,\"type\":\"submit\",\"solver\":\"x\","
          "\"qubo\":{\"num_variables\":99999999}}"),
      "request.qubo.num_variables");
  ExpectRejected(
      DecodeJobRequest(
          "{\"version\":1,\"type\":\"submit\",\"solver\":\"x\","
          "\"qubo\":{\"num_variables\":2,\"linear\":[0.0]}}"),
      "request.qubo.linear");
}

TEST(WireTaxonomyTest, MiscellaneousFieldValidation) {
  // Unknown request type.
  ExpectRejected(DecodeJobRequest("{\"version\":1,\"type\":\"solve\"}"),
                 "request.type");
  // Negative seed cannot be a uint64.
  ExpectRejected(
      DecodeJobRequest(
          "{\"version\":1,\"type\":\"submit\",\"solver\":\"x\","
          "\"qubo\":{\"num_variables\":1},\"options\":{\"seed\":-1}}"),
      "request.options.seed");
  // Unknown chain-break policy.
  ExpectRejected(
      DecodeJobRequest(
          "{\"version\":1,\"type\":\"submit\",\"solver\":\"x\","
          "\"qubo\":{\"num_variables\":1},"
          "\"options\":{\"chain_break_policy\":\"vote\"}}"),
      "request.options.chain_break_policy");
  // Assignment entries must be bits.
  Result<JsonValue> parsed = JsonParse(
      "{\"samples\":[{\"assignment\":[0,2],\"energy\":0.0}]}");
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  ExpectRejected(DecodeSampleSet(*parsed, "set"), "set.samples[0]");
}

}  // namespace
}  // namespace net
}  // namespace qdm
