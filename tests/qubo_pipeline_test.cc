// qopt::QuboPipeline as the extension seam: a brand-new QUBO workload gets
// single-shot AND batched registry-dispatched entry points from nothing but
// an encoder and a decoder lambda. Also pins the semantics every adapter
// inherits: derived per-instance seeds, thread-count invariance, batch error
// framing, and "race:*" portfolio names flowing through unchanged.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

#include "qdm/anneal/solver.h"
#include "qdm/qopt/qubo_pipeline.h"

namespace qdm {
namespace qopt {
namespace {

/// The whole "application": pick exactly one of n weighted items, minimize
/// the weight. Everything below TinyPipeline is test scaffolding — the
/// adapter itself is the ~15 lines the pipeline promises.
struct PickOneProblem {
  std::vector<double> weights;
};

struct PickOneSolution {
  int chosen = -1;
  bool feasible = false;
};

anneal::Qubo PickOneToQubo(const PickOneProblem& problem) {
  const int n = static_cast<int>(problem.weights.size());
  anneal::Qubo qubo(n);
  double penalty = 1.0;
  std::vector<int> vars(n);
  for (int i = 0; i < n; ++i) {
    qubo.AddLinear(i, problem.weights[i]);
    penalty += std::abs(problem.weights[i]);
    vars[i] = i;
  }
  qubo.AddExactlyOnePenalty(vars, penalty);
  return qubo;
}

QuboPipeline<PickOneProblem, PickOneSolution> TinyPipeline(
    const std::string& solver_name) {
  return QuboPipeline<PickOneProblem, PickOneSolution>(
      solver_name, PickOneToQubo,
      [](const PickOneProblem& problem, const anneal::Sample& best) {
        PickOneSolution solution;
        for (size_t i = 0; i < problem.weights.size(); ++i) {
          if (!best.assignment[i]) continue;
          if (solution.chosen >= 0) return PickOneSolution{};  // Two picks.
          solution.chosen = static_cast<int>(i);
        }
        solution.feasible = solution.chosen >= 0;
        return solution;
      });
}

int ArgMin(const std::vector<double>& weights) {
  return static_cast<int>(
      std::min_element(weights.begin(), weights.end()) - weights.begin());
}

anneal::SolverOptions FastOptions(uint64_t seed) {
  anneal::SolverOptions options;
  options.num_reads = 5;
  options.num_sweeps = 300;
  options.max_iterations = 100;
  options.seed = seed;
  return options;
}

std::vector<PickOneProblem> ProblemBatch() {
  return {{{3.0, 1.0, 2.0}},
          {{-1.0, 4.0, 0.5, 2.0}},
          {{5.0, 5.0, 4.5}},
          {{0.25, 0.75, -0.5, 1.5}}};
}

TEST(QuboPipelineTest, RunDecodesTheOptimum) {
  for (const std::string solver : {"exact", "simulated_annealing"}) {
    for (const PickOneProblem& problem : ProblemBatch()) {
      auto solution = TinyPipeline(solver).Run(problem, FastOptions(3));
      ASSERT_TRUE(solution.ok()) << solver << ": " << solution.status();
      EXPECT_TRUE(solution->feasible) << solver;
      EXPECT_EQ(solution->chosen, ArgMin(problem.weights)) << solver;
    }
  }
}

TEST(QuboPipelineTest, RunBatchIsThreadCountInvariant) {
  const std::vector<PickOneProblem> problems = ProblemBatch();
  const auto pipeline = TinyPipeline("simulated_annealing");
  auto one = pipeline.RunBatch(problems, FastOptions(7), 1);
  ASSERT_TRUE(one.ok()) << one.status();
  ASSERT_EQ(one->size(), problems.size());
  for (int threads : {2, 8}) {
    auto many = pipeline.RunBatch(problems, FastOptions(7), threads);
    ASSERT_TRUE(many.ok()) << many.status();
    for (size_t i = 0; i < problems.size(); ++i) {
      EXPECT_EQ((*many)[i].chosen, (*one)[i].chosen)
          << threads << " threads, instance " << i;
    }
  }
}

TEST(QuboPipelineTest, BatchInstanceMatchesSingleRunWithDerivedSeed) {
  const std::vector<PickOneProblem> problems = ProblemBatch();
  const auto pipeline = TinyPipeline("simulated_annealing");
  const anneal::SolverOptions options = FastOptions(40);
  auto batch = pipeline.RunBatch(problems, options, 2);
  ASSERT_TRUE(batch.ok()) << batch.status();
  for (size_t i = 0; i < problems.size(); ++i) {
    auto solo =
        pipeline.Run(problems[i], anneal::DeriveBatchOptions(options, i));
    ASSERT_TRUE(solo.ok()) << solo.status();
    EXPECT_EQ((*batch)[i].chosen, solo->chosen) << "instance " << i;
  }
}

TEST(QuboPipelineTest, UnknownSolverNameIsNotFound) {
  auto solution =
      TinyPipeline("warp_drive").Run(ProblemBatch()[0], FastOptions(1));
  ASSERT_FALSE(solution.ok());
  EXPECT_EQ(solution.status().code(), StatusCode::kNotFound);
}

TEST(QuboPipelineTest, BatchFailureNamesTheInstanceButBatchOfOneStaysBare) {
  // Instance 1 exceeds the exact solver's 30-variable limit.
  std::vector<PickOneProblem> problems = ProblemBatch();
  problems[1].weights.assign(31, 1.0);
  auto batch = TinyPipeline("exact").RunBatch(problems, FastOptions(2), 2);
  ASSERT_FALSE(batch.ok());
  EXPECT_EQ(batch.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(batch.status().message().find("batch instance 1"),
            std::string::npos)
      << batch.status().message();

  auto single = TinyPipeline("exact").Run(problems[1], FastOptions(2));
  ASSERT_FALSE(single.ok());
  EXPECT_EQ(single.status().message().find("batch instance"),
            std::string::npos)
      << single.status().message();
}

TEST(QuboPipelineTest, PortfolioNamesFlowThroughThePipeline) {
  // "race:*" is just another registry name to the pipeline — and stays
  // deterministic through RunBatch at any thread count.
  const std::vector<PickOneProblem> problems = ProblemBatch();
  const auto pipeline = TinyPipeline("race:simulated_annealing+tabu_search");
  auto one = pipeline.RunBatch(problems, FastOptions(21), 1);
  ASSERT_TRUE(one.ok()) << one.status();
  for (size_t i = 0; i < problems.size(); ++i) {
    EXPECT_EQ((*one)[i].chosen, ArgMin(problems[i].weights))
        << "instance " << i;
  }
  for (int threads : {2, 8}) {
    auto many = pipeline.RunBatch(problems, FastOptions(21), threads);
    ASSERT_TRUE(many.ok()) << many.status();
    for (size_t i = 0; i < problems.size(); ++i) {
      EXPECT_EQ((*many)[i].chosen, (*one)[i].chosen)
          << threads << " threads, instance " << i;
    }
  }
}

}  // namespace
}  // namespace qopt
}  // namespace qdm
