// Property-style parity tests at the APPLICATION level: every gate-based
// entry point (QAOA join ordering, Grover minimum finding, QPE) must return
// identical results whether the statevector kernels run on 1 thread or 8,
// and whether the SIMD tier is on or off. The kernels are bit-identical by
// construction (statevector_parallel_test pins that), so neither parallelism
// nor vectorization can silently change a SampleSet, an energy, or a phase
// estimate — this suite guards the end-to-end claim.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "qdm/algo/qpe.h"
#include "qdm/anneal/qubo.h"
#include "qdm/anneal/solver.h"
#include "qdm/common/rng.h"
#include "qdm/db/join_graph.h"
#include "qdm/qopt/join_order_qubo.h"
#include "qdm/sim/statevector.h"

namespace qdm {
namespace {

/// Sets the process-wide kernel config for one scope; serial_cutoff 1 forces
/// the parallel path even on the small states these tests use.
class ScopedDefaultExecutionConfig {
 public:
  explicit ScopedDefaultExecutionConfig(
      int num_threads, sim::SimdMode simd = sim::SimdMode::kAuto)
      : previous_(sim::Statevector::DefaultExecutionConfig()) {
    sim::Statevector::SetDefaultExecutionConfig(
        sim::ExecutionConfig{num_threads, /*serial_cutoff=*/1, simd});
  }
  ~ScopedDefaultExecutionConfig() {
    sim::Statevector::SetDefaultExecutionConfig(previous_);
  }

 private:
  sim::ExecutionConfig previous_;
};

void ExpectIdenticalSampleSets(const anneal::SampleSet& a,
                               const anneal::SampleSet& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t s = 0; s < a.size(); ++s) {
    EXPECT_EQ(a.samples()[s].energy, b.samples()[s].energy) << "sample " << s;
    EXPECT_EQ(a.samples()[s].assignment, b.samples()[s].assignment)
        << "sample " << s;
  }
}

anneal::Qubo SmallQubo(int num_variables, uint64_t seed) {
  Rng rng(seed);
  anneal::Qubo qubo(num_variables);
  for (int i = 0; i < num_variables; ++i) qubo.AddLinear(i, rng.Uniform(-1, 1));
  for (int i = 0; i < num_variables; ++i) {
    for (int j = i + 1; j < num_variables; ++j) {
      qubo.AddQuadratic(i, j, rng.Uniform(-1, 1));
    }
  }
  return qubo;
}

TEST(AlgoParallelParityTest, QaoaJoinOrderingIdenticalAt1And8Threads) {
  Rng graph_rng(21);
  const db::JoinGraph graph = db::JoinGraph::RandomClique(3, &graph_rng);
  anneal::SolverOptions options;
  options.num_reads = 8;
  options.seed = 17;
  options.layers = 1;
  options.restarts = 1;

  qopt::JoinOrderSolution serial, parallel;
  {
    ScopedDefaultExecutionConfig scoped(1);
    auto result = qopt::SolveJoinOrder(graph, "qaoa", options);
    ASSERT_TRUE(result.ok()) << result.status();
    serial = *result;
  }
  {
    ScopedDefaultExecutionConfig scoped(8);
    auto result = qopt::SolveJoinOrder(graph, "qaoa", options);
    ASSERT_TRUE(result.ok()) << result.status();
    parallel = *result;
  }
  EXPECT_EQ(serial.order, parallel.order);
  EXPECT_EQ(serial.strict_feasible, parallel.strict_feasible);
  EXPECT_EQ(serial.best_energy, parallel.best_energy);
}

TEST(AlgoParallelParityTest, QaoaSolverSampleSetsIdenticalAt1And8Threads) {
  const anneal::Qubo qubo = SmallQubo(6, 5);
  anneal::SolverOptions options;
  options.num_reads = 10;
  options.seed = 3;
  options.layers = 2;
  options.restarts = 2;

  anneal::SampleSet serial, parallel;
  {
    ScopedDefaultExecutionConfig scoped(1);
    auto result = anneal::SolveWith("qaoa", qubo, options);
    ASSERT_TRUE(result.ok()) << result.status();
    serial = *result;
  }
  {
    ScopedDefaultExecutionConfig scoped(8);
    auto result = anneal::SolveWith("qaoa", qubo, options);
    ASSERT_TRUE(result.ok()) << result.status();
    parallel = *result;
  }
  ExpectIdenticalSampleSets(serial, parallel);
}

// The SIMD axis of the same guarantee: a full QAOA solve (cost layers via
// ApplyDiagonalPhase, mixer layers via Apply1Q, then sampling) must produce
// an identical SampleSet with the vector tier forced on vs forced off. On
// machines without a vector tier kSimd degrades to scalar and the test is
// trivially green.
TEST(AlgoParallelParityTest, QaoaSampleSetsIdenticalWithSimdOnAndOff) {
  const anneal::Qubo qubo = SmallQubo(6, 11);
  anneal::SolverOptions options;
  options.num_reads = 10;
  options.seed = 7;
  options.layers = 2;
  options.restarts = 2;

  anneal::SampleSet scalar, simd;
  {
    ScopedDefaultExecutionConfig scoped(8, sim::SimdMode::kScalar);
    auto result = anneal::SolveWith("qaoa", qubo, options);
    ASSERT_TRUE(result.ok()) << result.status();
    scalar = *result;
  }
  {
    ScopedDefaultExecutionConfig scoped(8, sim::SimdMode::kSimd);
    auto result = anneal::SolveWith("qaoa", qubo, options);
    ASSERT_TRUE(result.ok()) << result.status();
    simd = *result;
  }
  ExpectIdenticalSampleSets(scalar, simd);
}

TEST(AlgoParallelParityTest, GroverMinSampleSetsIdenticalAt1And8Threads) {
  const anneal::Qubo qubo = SmallQubo(5, 8);
  anneal::SolverOptions options;
  options.num_reads = 4;
  options.seed = 29;

  anneal::SampleSet serial, parallel;
  {
    ScopedDefaultExecutionConfig scoped(1);
    auto result = anneal::SolveWith("grover_min", qubo, options);
    ASSERT_TRUE(result.ok()) << result.status();
    serial = *result;
  }
  {
    ScopedDefaultExecutionConfig scoped(8);
    auto result = anneal::SolveWith("grover_min", qubo, options);
    ASSERT_TRUE(result.ok()) << result.status();
    parallel = *result;
  }
  ExpectIdenticalSampleSets(serial, parallel);
}

TEST(AlgoParallelParityTest, QpeEstimateIdenticalAt1And8Threads) {
  for (double phase : {0.15625, 0.3, 0.8125}) {
    algo::QpeResult serial, parallel;
    {
      ScopedDefaultExecutionConfig scoped(1);
      Rng rng(61);
      serial = algo::EstimatePhase(phase, /*precision_qubits=*/6, &rng);
    }
    {
      ScopedDefaultExecutionConfig scoped(8);
      Rng rng(61);
      parallel = algo::EstimatePhase(phase, /*precision_qubits=*/6, &rng);
    }
    EXPECT_EQ(serial.raw, parallel.raw) << "phase " << phase;
    EXPECT_EQ(serial.estimate, parallel.estimate) << "phase " << phase;
  }
}

}  // namespace
}  // namespace qdm
