#include <gtest/gtest.h>

#include <cmath>

#include "qdm/circuit/circuit.h"
#include "qdm/common/rng.h"
#include "qdm/sim/statevector.h"

namespace qdm {
namespace sim {
namespace {

using circuit::Circuit;
using circuit::GateKind;

constexpr double kTol = 1e-12;

TEST(StatevectorTest, InitializesToZeroState) {
  Statevector sv(3);
  EXPECT_EQ(sv.dimension(), 8u);
  EXPECT_NEAR(std::abs(sv.amplitude(0) - Complex(1, 0)), 0.0, kTol);
  EXPECT_NEAR(sv.NormSquared(), 1.0, kTol);
}

TEST(StatevectorTest, XFlipsQubit) {
  Statevector sv(2);
  sv.Apply1Q(circuit::SingleQubitMatrix(GateKind::kX, {}), 0);
  EXPECT_NEAR(std::abs(sv.amplitude(1) - Complex(1, 0)), 0.0, kTol);
  sv.Apply1Q(circuit::SingleQubitMatrix(GateKind::kX, {}), 1);
  EXPECT_NEAR(std::abs(sv.amplitude(3) - Complex(1, 0)), 0.0, kTol);
}

// Paper Example II.1: |psi> = (|0> + |1>)/sqrt(2) measures 0 or 1 with
// probability 1/2 each.
TEST(StatevectorTest, PaperExampleII1_HadamardGivesFiftyFifty) {
  Statevector sv(1);
  sv.Apply1Q(circuit::SingleQubitMatrix(GateKind::kH, {}), 0);
  EXPECT_NEAR(sv.ProbabilityOfOne(0), 0.5, kTol);

  Rng rng(42);
  int ones = 0;
  const int shots = 100000;
  for (int s = 0; s < shots; ++s) {
    ones += static_cast<int>(sv.SampleBasisState(&rng));
  }
  EXPECT_NEAR(ones / static_cast<double>(shots), 0.5, 0.01);
}

// Paper Example IV.1: Bell state (|00> + |11>)/sqrt(2): outcomes are
// perfectly correlated.
TEST(StatevectorTest, PaperExampleIV1_BellStateCorrelations) {
  Circuit bell(2);
  bell.H(0).CX(0, 1);
  Statevector sv = RunCircuit(bell);

  EXPECT_NEAR(std::abs(sv.amplitude(0)), 1 / std::sqrt(2.0), kTol);
  EXPECT_NEAR(std::abs(sv.amplitude(3)), 1 / std::sqrt(2.0), kTol);
  EXPECT_NEAR(std::abs(sv.amplitude(1)), 0.0, kTol);
  EXPECT_NEAR(std::abs(sv.amplitude(2)), 0.0, kTol);

  // Measuring qubit A fixes qubit B ("spooky action at a distance").
  Rng rng(7);
  for (int trial = 0; trial < 50; ++trial) {
    Statevector copy = sv;
    int a = copy.MeasureQubit(0, &rng);
    int b = copy.MeasureQubit(1, &rng);
    EXPECT_EQ(a, b);
  }
}

TEST(StatevectorTest, ControlledGateActsOnlyWhenControlSet) {
  // |10>: control (qubit 1) set -> target flips.
  Statevector sv(2);
  sv.Apply1Q(circuit::SingleQubitMatrix(GateKind::kX, {}), 1);
  sv.ApplyControlled1Q({1}, 0, circuit::SingleQubitMatrix(GateKind::kX, {}));
  EXPECT_NEAR(std::abs(sv.amplitude(3)), 1.0, kTol);

  // |00>: control clear -> no-op.
  Statevector sv2(2);
  sv2.ApplyControlled1Q({1}, 0, circuit::SingleQubitMatrix(GateKind::kX, {}));
  EXPECT_NEAR(std::abs(sv2.amplitude(0)), 1.0, kTol);
}

TEST(StatevectorTest, ToffoliTruthTable) {
  for (uint64_t in = 0; in < 8; ++in) {
    Statevector sv = Statevector::FromAmplitudes([&] {
      std::vector<Complex> a(8, Complex(0, 0));
      a[in] = Complex(1, 0);
      return a;
    }());
    Circuit c(3);
    c.CCX(0, 1, 2);
    sv.ApplyCircuit(c);
    uint64_t expected = in;
    if ((in & 1) && (in & 2)) expected ^= 4;
    EXPECT_NEAR(std::abs(sv.amplitude(expected)), 1.0, kTol) << "input " << in;
  }
}

TEST(StatevectorTest, SwapExchangesQubits) {
  // Prepare |01> (qubit 0 = 1), swap -> |10>.
  Statevector sv(2);
  sv.Apply1Q(circuit::SingleQubitMatrix(GateKind::kX, {}), 0);
  sv.ApplySwap(0, 1);
  EXPECT_NEAR(std::abs(sv.amplitude(2)), 1.0, kTol);
}

TEST(StatevectorTest, SwapEqualsThreeCnots) {
  Circuit direct(2), cnots(2);
  direct.H(0).T(1).Swap(0, 1);
  cnots.H(0).T(1).CX(0, 1).CX(1, 0).CX(0, 1);
  Statevector a = RunCircuit(direct);
  Statevector b = RunCircuit(cnots);
  EXPECT_NEAR(a.FidelityWith(b), 1.0, 1e-9);
}

TEST(StatevectorTest, RzzMatchesCxRzCxDecomposition) {
  const double theta = 0.83;
  Circuit direct(2), decomposed(2);
  direct.H(0).H(1).RZZ(0, 1, theta);
  decomposed.H(0).H(1).CX(0, 1).RZ(1, theta).CX(0, 1);
  Statevector a = RunCircuit(direct);
  Statevector b = RunCircuit(decomposed);
  EXPECT_NEAR(a.FidelityWith(b), 1.0, 1e-9);
}

TEST(StatevectorTest, DiagonalPhaseMatchesRz) {
  // RZ(theta) == global-phase * diag(1, e^{i theta}).
  const double theta = 1.1;
  Statevector a(1), b(1);
  a.Apply1Q(circuit::SingleQubitMatrix(GateKind::kH, {}), 0);
  b.Apply1Q(circuit::SingleQubitMatrix(GateKind::kH, {}), 0);
  a.Apply1Q(circuit::SingleQubitMatrix(GateKind::kRZ, {theta}), 0);
  b.ApplyDiagonalPhase([&](uint64_t z) { return z == 1 ? theta : 0.0; });
  EXPECT_NEAR(a.FidelityWith(b), 1.0, 1e-12);
}

TEST(StatevectorTest, MeasureQubitCollapses) {
  Rng rng(5);
  Circuit c(2);
  c.H(0).CX(0, 1);
  Statevector sv = RunCircuit(c);
  int outcome = sv.MeasureQubit(0, &rng);
  // After collapse the state is a definite basis state |bb>.
  EXPECT_NEAR(sv.NormSquared(), 1.0, 1e-12);
  EXPECT_NEAR(sv.ProbabilityOfOne(0), outcome, 1e-12);
  EXPECT_NEAR(sv.ProbabilityOfOne(1), outcome, 1e-12);
}

TEST(StatevectorTest, SampleMatchesProbabilities) {
  Circuit c(2);
  c.H(0).RY(1, 2 * std::asin(std::sqrt(0.2)));  // P(q1=1) = 0.2
  Statevector sv = RunCircuit(c);
  Rng rng(13);
  auto counts = sv.Sample(50000, &rng);
  double p_q1 = 0;
  for (const auto& [state, n] : counts) {
    if (state & 2) p_q1 += n;
  }
  EXPECT_NEAR(p_q1 / 50000.0, 0.2, 0.01);
}

TEST(StatevectorTest, ExpectationDiagonal) {
  Circuit c(2);
  c.H(0).H(1);  // Uniform over 4 states.
  Statevector sv = RunCircuit(c);
  std::vector<double> diag{0.0, 1.0, 2.0, 3.0};
  EXPECT_NEAR(sv.ExpectationDiagonal(diag), 1.5, 1e-12);
}

TEST(StatevectorTest, GhzStateHasTwoTerms) {
  Circuit c(3);
  c.H(0).CX(0, 1).CX(0, 2);
  Statevector sv = RunCircuit(c);
  EXPECT_NEAR(std::abs(sv.amplitude(0)), 1 / std::sqrt(2.0), kTol);
  EXPECT_NEAR(std::abs(sv.amplitude(7)), 1 / std::sqrt(2.0), kTol);
}

TEST(StatevectorTest, FromAmplitudesNormalizes) {
  auto sv = Statevector::FromAmplitudes(
      {Complex(3, 0), Complex(0, 0), Complex(0, 4), Complex(0, 0)},
      /*normalize=*/true);
  EXPECT_NEAR(sv.NormSquared(), 1.0, 1e-12);
  EXPECT_NEAR(std::abs(sv.amplitude(0)), 0.6, 1e-12);
}

TEST(StatevectorTest, InnerProductOrthogonalStates) {
  Statevector a(1), b(1);
  b.Apply1Q(circuit::SingleQubitMatrix(GateKind::kX, {}), 0);
  EXPECT_NEAR(std::abs(a.InnerProduct(b)), 0.0, kTol);
  EXPECT_NEAR(a.FidelityWith(a), 1.0, kTol);
}

TEST(StatevectorTest, CPhaseIsSymmetric) {
  const double lambda = 0.77;
  Circuit a(2), b(2);
  a.H(0).H(1).CPhase(0, 1, lambda);
  b.H(0).H(1).CPhase(1, 0, lambda);
  EXPECT_NEAR(RunCircuit(a).FidelityWith(RunCircuit(b)), 1.0, 1e-12);
}

TEST(StatevectorTest, ControlledSwapFredkin) {
  // |1,0,1> with control=qubit2: swaps qubits 0,1 -> |1,1,0>.
  Statevector sv(3);
  sv.Apply1Q(circuit::SingleQubitMatrix(GateKind::kX, {}), 2);
  sv.Apply1Q(circuit::SingleQubitMatrix(GateKind::kX, {}), 0);
  Circuit c(3);
  c.CSwap(2, 0, 1);
  sv.ApplyCircuit(c);
  EXPECT_NEAR(std::abs(sv.amplitude(0b110)), 1.0, kTol);
}

TEST(StatevectorTest, CircuitWithUnboundParamsRejected) {
  Circuit c(1);
  c.SymbolicRY(0, 0);
  Statevector sv(1);
  EXPECT_DEATH(sv.ApplyCircuit(c), "unbound");
}

}  // namespace
}  // namespace sim
}  // namespace qdm
